(* Experiments beyond the paper's tables and figures, probing the
   claims its prose makes: the section-6.6 fault masking story, the
   robustness guarantee under process variation, and design ablations
   on the vtest level and the gate current (the "speed/power
   combination" of section 6.3). *)

module Dft = Cml_dft
module L = Cml_logic

let proc = Cml_cells.Process.default

let sec66 () =
  Util.section "sec66" "Fault masking and the toggle-based test approach (section 6.6)";
  Util.paper
    [
      "some defects modify the amplitude of only one output, masking";
      "the fault from the single-sided detector; the fault must be";
      "asserted by sensitizing a path and toggling the gate (asserted";
      "half the cycles).  Pipe defects in current sources affect both";
      "outputs and are fully detectable with DC test (variant 2).";
    ];
  let v1 =
    Dft.Experiment.phase_sensitivity ~variant:(Dft.Experiment.V1 Dft.Detector.v1_default)
      ~pipe:2e3 ~freq:100e6 ~tstop:80e-9 ()
  in
  let v2 =
    Dft.Experiment.phase_sensitivity
      ~variant:
        (Dft.Experiment.V2 { cfg = Dft.Detector.v2_default; vtest = Dft.Detector.vtest_test proc })
      ~pipe:2e3 ~freq:100e6 ~tstop:80e-9 ()
  in
  Printf.printf "%-22s %12s %12s %12s\n" "detector (2 kohm pipe)" "input = 0" "input = 1"
    "toggling";
  Printf.printf "%-22s %10.3f V %10.3f V %10.3f V\n" "variant 1 (1-sided)"
    v1.Dft.Experiment.static_false v1.Dft.Experiment.static_true v1.Dft.Experiment.toggling;
  Printf.printf "%-22s %10.3f V %10.3f V %10.3f V\n" "variant 2 (2-sided)"
    v2.Dft.Experiment.static_false v2.Dft.Experiment.static_true v2.Dft.Experiment.toggling;
  Util.verdict
    (v1.Dft.Experiment.static_true > v1.Dft.Experiment.static_false +. 0.2)
    "one static phase hides the fault from the single-sided detector";
  Util.verdict
    (v1.Dft.Experiment.toggling > v1.Dft.Experiment.static_false +. 0.05)
    "toggling asserts the fault (half the cycles) for variant 1";
  Util.verdict
    (Float.abs (v2.Dft.Experiment.static_true -. v2.Dft.Experiment.static_false) < 0.05)
    "variant 2 detects in every phase: fully detectable with DC test";
  (* the pattern-generation half of the story *)
  Printf.printf "\npatterns to reach 100%% toggle coverage (random vs directed):\n";
  Printf.printf "%-12s %10s %10s\n" "circuit" "random" "directed";
  let improved = ref 0 and total = ref 0 in
  List.iter
    (fun (name, c) ->
      let width = List.length c.L.Circuit.inputs in
      let initial = L.Sim.initial c L.Value.F in
      let count patterns =
        match L.Directed.patterns_to_full_coverage c ~initial ~patterns with
        | Some n -> string_of_int n
        | None -> ">512"
      in
      let n_random = count (L.Patterns.random_patterns ~seed:7 ~width ~count:512) in
      let n_directed = count (L.Directed.directed_patterns c ~initial ~budget:512 ~seed:7 ()) in
      incr total;
      (match (int_of_string_opt n_directed, int_of_string_opt n_random) with
      | Some d, Some r when d <= r -> incr improved
      | Some _, None -> incr improved
      | _ -> ());
      Printf.printf "%-12s %10s %10s\n" name n_random n_directed)
    (L.Bench_circuits.all ());
  Util.verdict
    (2 * !improved >= !total)
    (Printf.sprintf "directed generation matches or beats random on %d/%d circuits" !improved
       !total)

let montecarlo () =
  Util.section "montecarlo"
    "Robustness under process variation (the 'never wrongly declared' claim)";
  Util.paper
    [
      "the hysteresis 'confirms that a fault free gate will never be";
      "wrongly declared defective' - a claim that must survive process";
      "spread.  We perturb every device (2% R, 5% C, 15% Is, 10% beta)";
      "across Monte-Carlo samples of a 10-gate monitored block, fault-";
      "free and with a 4 kohm pipe.";
    ];
  let r = Dft.Montecarlo.run ~samples:60 ~seed:2024 () in
  Printf.printf "samples                 : %d good + %d faulty\n" r.Dft.Montecarlo.samples
    r.Dft.Montecarlo.samples;
  Printf.printf "false alarms            : %d\n" r.Dft.Montecarlo.false_alarms;
  Printf.printf "missed detections       : %d\n" r.Dft.Montecarlo.missed;
  Printf.printf "fault-free vout range   : [%.3f, %.3f] V\n" r.Dft.Montecarlo.good_vout_min
    r.Dft.Montecarlo.good_vout_max;
  Printf.printf "worst faulty vout       : %.3f V\n" r.Dft.Montecarlo.bad_vout_max;
  Printf.printf "decision margin         : %.3f V\n" r.Dft.Montecarlo.separation;
  let st = r.Dft.Montecarlo.good_vouts in
  Printf.printf "fault-free vout stats   : mean %.4f V, sigma %.1f mV, p5 %.4f V\n"
    (Cml_numerics.Stats.mean st)
    (1e3 *. Cml_numerics.Stats.stddev st)
    (Cml_numerics.Stats.percentile st 5.0);
  Util.verdict (r.Dft.Montecarlo.false_alarms = 0) "no fault-free block wrongly declared defective";
  Util.verdict (r.Dft.Montecarlo.missed = 0) "every faulty block detected";
  Util.verdict (r.Dft.Montecarlo.separation > 0.2) "comfortable margin under spread";
  (* derating of the sharing limit under spread *)
  let h = Dft.Experiment.hysteresis () in
  match h.Dft.Experiment.switch_up with
  | None -> ()
  | Some upper ->
      let worst_vout n =
        let built = Dft.Sharing.build ~multi_emitter:true ~n () in
        let golden = built.Dft.Sharing.builder.Cml_cells.Builder.net in
        let rec worst k acc =
          if k = 10 then acc
          else begin
            let p = Cml_defects.Variation.perturb ~seed:(500 + k) golden in
            let x = Cml_spice.Engine.dc_operating_point (Cml_spice.Engine.compile p) in
            let v = Cml_spice.Engine.voltage x built.Dft.Sharing.readout.Dft.Readout.vout in
            worst (k + 1) (Float.min acc v)
          end
        in
        worst 0 Float.infinity
      in
      let ns = [ 1; 15; 30; 45 ] in
      Printf.printf "\nworst-case fault-free vout over 10 process samples:\n";
      let safe =
        List.fold_left
          (fun best n ->
            let v = worst_vout n in
            Printf.printf "  N = %2d : %.4f V %s\n" n v
              (if v > upper then "(safe)" else "(below the up-switch threshold)");
            if v > upper && n > best then n else best)
          0 ns
      in
      Printf.printf
        "derated sharing limit under variation: N = %d (nominal 45) - a margin\n\
         the paper's nominal-process analysis does not include\n"
        safe

let ablation () =
  Util.section "ablation" "Design ablations: vtest level and gate current (section 6.2/6.3)";
  Util.paper
    [
      "'depending on the transistor turn-on characteristics, it is";
      "beneficial to adjust vtest; 3.7 V was an excellent compromise'";
      "and 'the ideal load circuit parameters may need to be adjusted";
      "as a function of the cell speed/power combination'.";
    ];
  (* vtest sweep: detector sensitivity vs false-response on a clean gate *)
  Printf.printf "vtest sweep (variant 2, 5 kohm pipe vs fault-free, 100 MHz):\n";
  Printf.printf "%-10s %14s %14s %12s\n" "vtest" "drop (faulty)" "drop (clean)" "margin";
  let rows =
    List.map
      (fun vtest ->
        let resp pipe =
          (Dft.Experiment.detector_response
             ~variant:(Dft.Experiment.V2 { cfg = Dft.Detector.v2_default; vtest })
             ~freq:100e6 ~pipe ~tstop:60e-9 ())
            .Dft.Experiment.vout_drop
        in
        let bad = resp (Some 5e3) and good = resp None in
        Printf.printf "%8.2f V %12.3f V %12.3f V %10.3f V\n" vtest bad good (bad -. good);
        (vtest, bad -. good))
      [ 3.5; 3.6; 3.7; 3.8 ]
  in
  let best = List.fold_left (fun (bv, bm) (v, m) -> if m > bm then (v, m) else (bv, bm)) (0.0, -1.0) rows in
  Printf.printf "best margin at vtest = %.2f V\n" (fst best);
  Util.verdict
    (fst best >= 3.6 && fst best <= 3.8)
    "the paper's 'rail + 0.4 V' region is indeed the sweet spot";
  (* gate current (speed/power) ablation *)
  Printf.printf "\ngate current ablation (tail current scaling, 4 kohm pipe):\n";
  Printf.printf "%-12s %12s %14s\n" "i_tail" "swing" "excursion";
  List.iter
    (fun scale ->
      let p = Cml_cells.Process.with_tail_current proc (scale *. proc.Cml_cells.Process.i_tail) in
      let r =
        Dft.Experiment.detector_response ~proc:p
          ~variant:(Dft.Experiment.V2 { cfg = Dft.Detector.v2_default; vtest = Dft.Detector.vtest_test p })
          ~freq:100e6 ~pipe:(Some 4e3) ~tstop:60e-9 ()
      in
      Printf.printf "%9.2f mA %10.0f mV %12.3f V\n"
        (p.Cml_cells.Process.i_tail *. 1e3)
        (Util.mv p.Cml_cells.Process.swing)
        r.Dft.Experiment.excursion)
    [ 0.5; 1.0; 2.0 ];
  Printf.printf
    "(a fixed-resistance pipe matters less at higher gate currents: the same\n\
    \ defect is relatively weaker - the paper's point that load parameters\n\
    \ must track the chosen speed/power point)\n"

let noise_margin () =
  Util.section "noise-margin" "DC transfer curves and the noise-margin fault classes (sections 1, 4)";
  Util.paper
    [
      "the fault survey lists 'reduced noise-margin' faults, and";
      "section 4 observes that 'several defects map into increased";
      "noise-margins, or more simply, produce a low logic voltage much";
      "lower than the standard Vlow' - the class the detectors target.";
    ];
  let build b input = Cml_cells.Buffer_cell.add b ~name:"g" ~input in
  let margins_of ?prepare label =
    let m = Cml_cells.Transfer.margins (Cml_cells.Transfer.dc_transfer ~build ?prepare ()) in
    Printf.printf "%-26s gain %6.2f   NM_low %4.0f mV   NM_high %4.0f mV\n" label
      m.Cml_cells.Transfer.gain
      (1e3 *. m.Cml_cells.Transfer.nm_low)
      (1e3 *. m.Cml_cells.Transfer.nm_high);
    m
  in
  let good = margins_of "fault-free buffer" in
  let inject d b = Cml_defects.Inject.apply b.Cml_cells.Builder.net d in
  let pipe =
    margins_of
      ~prepare:(inject (Cml_defects.Defect.Pipe { device = "g.q3"; r = 4e3 }))
      "4 kohm tail pipe"
  in
  let dead =
    margins_of
      ~prepare:
        (inject (Cml_defects.Defect.Terminal_short { device = "g.q1"; t1 = "b"; t2 = "e" }))
      "B-E short (dead gate)"
  in
  Util.verdict
    (pipe.Cml_cells.Transfer.nm_high > good.Cml_cells.Transfer.nm_high +. 0.05)
    "the pipe *increases* the noise margin - logically invisible, excursion-visible";
  Util.verdict
    (Float.abs dead.Cml_cells.Transfer.gain < 0.5)
    "a hard short collapses the transfer curve (classic stuck-at class)"

let run () =
  sec66 ();
  montecarlo ();
  ablation ();
  noise_margin ()
