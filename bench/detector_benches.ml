(* Reproduction of the detector-side artefacts: Figure 7 (variant-1
   response waveform), Figure 8 (tstability/Vmax maps for variant 1),
   Figure 10 (variant 2), Figure 12 (comparator hysteresis) and
   Figure 14 (load sharing). *)

module B = Cml_cells.Builder
module Dft = Cml_dft

let proc = Cml_cells.Process.default

let v1 cfg = Dft.Experiment.V1 cfg

let v2 cfg = Dft.Experiment.V2 { cfg; vtest = Dft.Detector.vtest_test proc }

let show_tstab = function
  | Some t -> Printf.sprintf "%7.1f ns" (t *. 1e9)
  | None -> "  (>tstop)"

(* ------------------------------------------------------------------ *)

let fig7 () =
  Util.section "fig7" "Variant-1 detector response waveform (paper Fig. 7)";
  Util.paper
    [
      "with a 1 kohm pipe, a diode + 10 pF load and a 100 MHz stimulus,";
      "the detector output shows a transient decay followed by a stable";
      "rippling period; tstability is the first-minimum time, Vmax the";
      "ripple ceiling after it.";
    ];
  let r =
    Dft.Experiment.detector_response ~variant:(v1 Dft.Detector.v1_default) ~freq:100e6
      ~pipe:(Some 1e3) ~tstop:120e-9 ()
  in
  Printf.printf "tstability : %s\n" (show_tstab r.Dft.Experiment.tstability);
  Printf.printf "Vmax       : %.3f V\n" r.Dft.Experiment.vmax;
  Printf.printf "vout floor : %.3f V (from the %.1f V rail)\n"
    (proc.Cml_cells.Process.vgnd -. r.Dft.Experiment.vout_drop)
    proc.Cml_cells.Process.vgnd;
  Util.verdict (r.Dft.Experiment.tstability <> None) "transient settles within the window";
  Util.verdict (r.Dft.Experiment.vout_drop > 0.5) "strong detection of the 1 kohm pipe";
  print_endline "\ndetector output voltage:";
  print_string (Cml_wave.Ascii_plot.render ~height:13 [ ("vout", r.Dft.Experiment.vout) ])

(* ------------------------------------------------------------------ *)

let response_map ~variant ~pipes ~caps ~freqs ~tstop_of =
  List.concat_map
    (fun cap ->
      List.concat_map
        (fun pipe ->
          List.map
            (fun freq ->
              let cfg, mk = variant in
              let r =
                Dft.Experiment.detector_response
                  ~variant:(mk { cfg with Dft.Detector.c_load = cap })
                  ~freq ~pipe:(Some pipe) ~tstop:(tstop_of cap) ()
              in
              (cap, pipe, freq, r))
            freqs)
        pipes)
    caps

let print_map label rows =
  Printf.printf "%-8s %-10s %-10s %12s %12s %10s %12s\n" "cap" "pipe" "freq" "tstability"
    "t95" "Vmax" "vout drop";
  List.iter
    (fun (cap, pipe, freq, r) ->
      Printf.printf "%5.0f pF %7.0f ohm %6.0f MHz %12s %12s %8.3f V %10.3f V\n" (cap *. 1e12)
        pipe (freq /. 1e6)
        (show_tstab r.Dft.Experiment.tstability)
        (show_tstab r.Dft.Experiment.t_settle)
        r.Dft.Experiment.vmax r.Dft.Experiment.vout_drop)
    rows;
  ignore label

let tstab_exn r =
  match r.Dft.Experiment.tstability with Some t -> t | None -> Float.infinity

let settle_exn r =
  match r.Dft.Experiment.t_settle with Some t -> t | None -> Float.infinity

let find_row rows (cap, pipe, freq) =
  let _, _, _, r =
    List.find (fun (c, p, f, _) -> c = cap && p = pipe && f = freq) rows
  in
  r

let fig8 () =
  Util.section "fig8" "tstability vs frequency, pipe and load cap - variant 1 (paper Fig. 8)";
  Util.paper
    [
      "the time to a stable detector output grows significantly with";
      "frequency; the smaller 1 pF load settles much faster than 10 pF;";
      "Vmax falls as the pipe gets more severe; good results were also";
      "obtained by replacing the diode with a 160 kohm resistor.";
    ];
  let freqs = [ 50e6; 100e6; 250e6; 500e6 ] in
  let rows =
    response_map
      ~variant:(Dft.Detector.v1_default, v1)
      ~pipes:[ 1e3; 2e3 ] ~caps:[ 10e-12; 1e-12 ] ~freqs
      ~tstop_of:(fun cap -> if cap > 5e-12 then 400e-9 else 60e-9)
  in
  print_map "v1" rows;
  let t_low = settle_exn (find_row rows (10e-12, 1e3, 50e6)) in
  let t_high = settle_exn (find_row rows (10e-12, 1e3, 500e6)) in
  Util.verdict (t_high > t_low)
    (Printf.sprintf "tstability grows with frequency (%.0f -> %.0f ns at 10 pF / 1 kohm)"
       (t_low *. 1e9) (t_high *. 1e9));
  let t_small = settle_exn (find_row rows (1e-12, 1e3, 100e6)) in
  let t_big = settle_exn (find_row rows (10e-12, 1e3, 100e6)) in
  Util.verdict (t_small < t_big)
    (Printf.sprintf "smaller load settles faster (%.0f vs %.0f ns)" (t_small *. 1e9)
       (t_big *. 1e9));
  let v1k = (find_row rows (10e-12, 1e3, 100e6)).Dft.Experiment.vmax in
  let v2k = (find_row rows (10e-12, 2e3, 100e6)).Dft.Experiment.vmax in
  Util.verdict (v1k < v2k)
    (Printf.sprintf "Vmax lower for the stronger pipe (%.2f vs %.2f V)" v1k v2k);
  (* the paper's note: good results also with a 160 kohm resistor
     load, but the resistor-capacitor combination recovers much more
     slowly *)
  let r_resistor =
    Dft.Experiment.detector_response
      ~variant:
        (v1 { Dft.Detector.v1_default with Dft.Detector.load = Dft.Detector.Resistor_load 160e3 })
      ~freq:100e6 ~pipe:(Some 1e3) ~tstop:200e-9 ()
  in
  Printf.printf "\nresistor (160 kohm) load at 1 kohm / 100 MHz / 10 pF: drop %.3f V, %s\n"
    r_resistor.Dft.Experiment.vout_drop
    (show_tstab r_resistor.Dft.Experiment.tstability);
  Util.verdict (r_resistor.Dft.Experiment.vout_drop > 0.4) "resistor load also detects"

(* ------------------------------------------------------------------ *)

let fig10 () =
  Util.section "fig10"
    "tstability vs frequency, pipe and load cap - variant 2 (paper Fig. 10)";
  Util.paper
    [
      "with vtest raised in test mode (their 3.7 V), the detectable";
      "amplitude drops (0.35 V, about a 5 kohm pipe, vs 0.57 V for";
      "variant 1) and tstability is much shorter than variant 1.";
    ];
  let freqs = [ 50e6; 100e6; 250e6; 500e6 ] in
  let rows =
    response_map
      ~variant:(Dft.Detector.v2_default, v2)
      ~pipes:[ 1e3; 3e3; 5e3 ] ~caps:[ 10e-12; 1e-12 ] ~freqs
      ~tstop_of:(fun cap -> if cap > 5e-12 then 200e-9 else 60e-9)
  in
  print_map "v2" rows;
  (* threshold comparison: smallest detected amplitude per variant *)
  let pipes = [ 1e3; 2e3; 3e3; 5e3; 8e3 ] in
  let _, min_v1 =
    Dft.Experiment.amplitude_thresholds ~detect_drop:0.35
      ~variant:(v1 Dft.Detector.v1_default) ~freq:100e6 ~pipe_values:pipes ~tstop:120e-9 ()
  in
  let v2_ff =
    (Dft.Experiment.detector_response ~variant:(v2 Dft.Detector.v2_default) ~freq:100e6
       ~pipe:None ~tstop:120e-9 ())
      .Dft.Experiment.vout_drop
  in
  let rows_v2, min_v2 =
    Dft.Experiment.amplitude_thresholds ~detect_drop:(v2_ff +. 0.12)
      ~variant:(v2 Dft.Detector.v2_default) ~freq:100e6 ~pipe_values:pipes ~tstop:120e-9 ()
  in
  ignore rows_v2;
  (match (min_v1, min_v2) with
  | Some a1, Some a2 ->
      Printf.printf "\nminimal detected amplitude: variant 1 = %.2f V, variant 2 = %.2f V\n" a1
        a2;
      Util.verdict (a2 < a1)
        (Printf.sprintf "variant 2 detects smaller excursions (paper: 0.35 vs 0.57 V)");
      Util.verdict (a1 > 0.4 && a1 < 0.7) "variant-1 threshold in the 0.57 V region"
  | _ -> Util.verdict false "threshold measurement incomplete");
  let t_v1 =
    settle_exn
      (Dft.Experiment.detector_response ~variant:(v1 Dft.Detector.v1_default) ~freq:100e6
         ~pipe:(Some 2e3) ~tstop:400e-9 ())
  in
  let t_v2 =
    settle_exn
      (Dft.Experiment.detector_response ~variant:(v2 Dft.Detector.v2_default) ~freq:100e6
         ~pipe:(Some 2e3) ~tstop:400e-9 ())
  in
  Util.verdict (t_v2 < t_v1)
    (Printf.sprintf "variant-2 tstability shorter (%.0f vs %.0f ns at 2 kohm)" (t_v2 *. 1e9)
       (t_v1 *. 1e9))

(* ------------------------------------------------------------------ *)

let fig12 () =
  Util.section "fig12" "Hysteresis of the variant-3 comparator (paper Fig. 12)";
  Util.paper
    [
      "the positive feedback gives the comparator a hysteresis loop: a";
      "vout of 3.54 V is guaranteed detected, one above 3.57 V is";
      "treated as fault-free; a fault-free gate can never be wrongly";
      "declared defective.";
    ];
  let h = Dft.Experiment.hysteresis () in
  (match (h.Dft.Experiment.switch_down, h.Dft.Experiment.switch_up) with
  | Some down, Some up ->
      Printf.printf "measured switch thresholds: detect below %.3f V, pass above %.3f V\n" down
        up;
      Printf.printf "hysteresis width: %.0f mV\n" (Util.mv (up -. down));
      Util.verdict (up > down) "true hysteresis (up-switch above down-switch)";
      Util.verdict
        (Util.mv (up -. down) > 20.0 && Util.mv (up -. down) < 200.0)
        "width in the tens-of-mV range the paper's figure shows"
  | _ -> Util.verdict false "no switching observed");
  print_endline "\nvfb vs drive voltage (both sweep directions overlaid):";
  let pts = List.map (fun (v, vfb, _) -> (v, vfb)) h.Dft.Experiment.sweep in
  print_string (Cml_wave.Ascii_plot.render_xy ~height:12 ~xlabel:"vout drive (V)" [ ("vfb", pts) ])

(* ------------------------------------------------------------------ *)

let fig14 () =
  Util.section "fig14" "Load sharing: vout/vfb vs N and the safe limit (paper Fig. 14)";
  Util.paper
    [
      "the fault-free shared vout decreases linearly with N as sensor";
      "leakage accumulates; requiring vout to stay above the upper";
      "hysteresis threshold limits sharing to 45 buffers; a defective";
      "gate still collapses vout unambiguously (3.41 V at N = 1 in the";
      "paper), so sharing never masks a fault.";
    ];
  let ns = [ 1; 5; 10; 15; 20; 25; 30; 35; 40; 45; 50; 55; 60 ] in
  let pts = Dft.Sharing.sweep_n ~multi_emitter:true ~ns () in
  Printf.printf "%-6s %10s %10s %10s\n" "N" "vout" "vfb" "flag";
  List.iter
    (fun p ->
      Printf.printf "%-6d %8.4f V %8.4f V %8.4f V\n" p.Dft.Sharing.n p.Dft.Sharing.vout
        p.Dft.Sharing.vfb p.Dft.Sharing.flag)
    pts;
  (* linearity *)
  let fit_pts = List.map (fun p -> (float_of_int p.Dft.Sharing.n, p.Dft.Sharing.vout)) pts in
  let a, b = Util.linear_fit fit_pts in
  let max_resid =
    List.fold_left
      (fun acc (x, y) -> Float.max acc (Float.abs (y -. (a +. (b *. x)))))
      0.0 fit_pts
  in
  Printf.printf "\nlinear fit: vout = %.4f %+.3f mV/gate (max residual %.1f mV)\n" a
    (Util.mv b) (Util.mv max_resid);
  Util.verdict (b < 0.0 && max_resid < 0.01) "vout decreases linearly with N";
  (* the safe-sharing criterion against the measured hysteresis *)
  let h = Dft.Experiment.hysteresis () in
  (match h.Dft.Experiment.switch_up with
  | Some upper ->
      let safe = Dft.Sharing.max_safe_sharing pts ~upper_threshold:upper in
      Printf.printf "measured up-switch threshold: %.3f V -> safe sharing limit N = %d\n" upper
        safe;
      Util.verdict (safe >= 35 && safe <= 55)
        (Printf.sprintf "safe limit close to the paper's 45 (got %d)" safe)
  | None -> Util.verdict false "no hysteresis threshold");
  (* faulty cases *)
  let faulty_vout n =
    let b, faulty =
      Dft.Sharing.build_faulty ~multi_emitter:true ~n
        ~defect:(Cml_defects.Defect.Pipe { device = "x1.q3"; r = 4e3 })
        ()
    in
    (Dft.Sharing.measure_dc b ~net:faulty ()).Dft.Sharing.vout
  in
  let v1 = faulty_vout 1 and v45 = faulty_vout 45 in
  Printf.printf "faulty vout: %.3f V at N = 1, %.3f V at N = 45 (paper: 3.41 V at N = 1)\n" v1
    v45;
  (match h.Dft.Experiment.switch_down with
  | Some down ->
      Util.verdict (v1 < down && v45 < down)
        "sharing does not obstruct detection (faulty vout below the detect level)"
  | None -> ())

let run () =
  fig7 ();
  fig8 ();
  fig10 ();
  fig12 ();
  fig14 ()
