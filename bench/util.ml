(* Shared formatting and measurement helpers for the experiment
   harness. *)

module N = Cml_spice.Netlist
module E = Cml_spice.Engine
module T = Cml_spice.Transient
module B = Cml_cells.Builder

let section id title =
  let line = String.make 74 '=' in
  Printf.printf "\n%s\n%s | %s\n%s\n" line id title line

let paper lines =
  List.iteri
    (fun i l -> Printf.printf "%s %s\n" (if i = 0 then "paper   :" else "         ") l)
    lines;
  print_newline ()

let verdict ok msg = Printf.printf "%s %s\n" (if ok then "[ok]  " else "[MISS]") msg

let ps t = t *. 1e12

let mv v = v *. 1e3

(* run a transient on a (possibly faulty) chain netlist and return a
   wave accessor *)
let run_chain net ~tstop =
  let sim = E.compile net in
  let r = T.run sim net (T.config ~tstop ~max_step:10e-12 ()) in
  fun nd -> Cml_wave.Wave.create r.T.times (T.node_trace r nd)

let stage_waves chain waves i =
  let d = Cml_cells.Chain.output chain i in
  (waves d.B.p, waves d.B.n)

(* linear least squares fit y = a + b x *)
let linear_fit pts =
  let n = float_of_int (List.length pts) in
  let sx = List.fold_left (fun s (x, _) -> s +. x) 0.0 pts in
  let sy = List.fold_left (fun s (_, y) -> s +. y) 0.0 pts in
  let sxx = List.fold_left (fun s (x, _) -> s +. (x *. x)) 0.0 pts in
  let sxy = List.fold_left (fun s (x, y) -> s +. (x *. y)) 0.0 pts in
  let b = ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx)) in
  let a = (sy -. (b *. sx)) /. n in
  (a, b)
