(* Reproduction of the paper's circuit-behaviour artefacts:
   Figure 2 (stuck-at waveform), Figure 4 (swing doubling + healing),
   Table 1 (fixed-reference delays), Table 2 (actual-crossing delays)
   and Figure 5 (Vlow/Vhigh vs pipe value and frequency). *)

module N = Cml_spice.Netlist
module B = Cml_cells.Builder
module D = Cml_defects.Defect

let freq = 100e6

let proc = Cml_cells.Process.default

(* one fault-free and one faulty run of the paper's 8-buffer chain *)
let chain_pair defect =
  let chain = Cml_cells.Chain.build ~stages:8 ~freq () in
  let golden = chain.Cml_cells.Chain.builder.B.net in
  let faulty = Cml_defects.Inject.apply golden defect in
  (chain, Util.run_chain golden ~tstop:20e-9, Util.run_chain faulty ~tstop:20e-9)

(* ------------------------------------------------------------------ *)

let fig2 () =
  Util.section "fig2" "Typical stuck-at fault (paper Fig. 2)";
  Util.paper
    [
      "a collector-emitter short on Q2 of a data buffer forces the op";
      "output to stick at the low level: a classical stuck-at-0 fault.";
    ];
  let defect = D.Terminal_short { device = "x3.q2"; t1 = "c"; t2 = "e" } in
  let chain, waves_ff, waves_f = chain_pair defect in
  let w_op_ff, _ = Util.stage_waves chain waves_ff 3 in
  let w_op_f, w_on_f = Util.stage_waves chain waves_f 3 in
  let lo, hi = Cml_wave.Measure.extremes w_op_f ~t_from:10e-9 in
  let lo_ff, hi_ff = Cml_wave.Measure.extremes w_op_ff ~t_from:10e-9 in
  Printf.printf "fault-free op : low %.3f V, high %.3f V (swing %.0f mV)\n" lo_ff hi_ff
    (Util.mv (hi_ff -. lo_ff));
  Printf.printf "faulty op     : low %.3f V, high %.3f V (swing %.0f mV)\n" lo hi
    (Util.mv (hi -. lo));
  Util.verdict (hi -. lo < 0.05) "faulty output no longer toggles (stuck)";
  Util.verdict (hi < hi_ff -. 0.1) "stuck near the low rail (stuck-at 0)";
  print_endline "\nfaulty buffer outputs (opf / opbf):";
  let zoom w = Cml_wave.Wave.sub_range w ~t_from:10e-9 ~t_to:20e-9 in
  print_string
    (Cml_wave.Ascii_plot.render ~height:12 [ ("opf", zoom w_op_f); ("opbf", zoom w_on_f) ])

(* ------------------------------------------------------------------ *)

let fig4 () =
  Util.section "fig4" "Swing doubling at the DUT and healing (paper Fig. 4)";
  Util.paper
    [
      "with a 4 kohm pipe on Q3 of the 3rd buffer, the voltage swing at";
      "the faulty gate's output nearly doubles; after about 4 logic";
      "gates the degraded signal is completely restored (levels and";
      "shape).";
    ];
  let chain, waves_ff, waves_f = chain_pair (D.Pipe { device = "x3.q3"; r = 4e3 }) in
  Printf.printf "%-8s %14s %14s %10s\n" "stage" "fault-free" "faulty" "ratio";
  let ratio_at = Hashtbl.create 8 in
  List.iter
    (fun i ->
      let w_ff, _ = Util.stage_waves chain waves_ff i in
      let w_f, _ = Util.stage_waves chain waves_f i in
      let s_ff = Cml_wave.Measure.swing w_ff ~t_from:10e-9 in
      let s_f = Cml_wave.Measure.swing w_f ~t_from:10e-9 in
      Hashtbl.replace ratio_at i (s_f /. s_ff);
      Printf.printf "%-8d %11.0f mV %11.0f mV %9.2fx\n" i (Util.mv s_ff) (Util.mv s_f)
        (s_f /. s_ff))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  let r3 = Hashtbl.find ratio_at 3 and r6 = Hashtbl.find ratio_at 6 in
  Util.verdict (r3 > 1.7 && r3 < 2.6) (Printf.sprintf "DUT swing nearly doubled (%.2fx)" r3);
  Util.verdict
    (Float.abs (r6 -. 1.0) < 0.05)
    (Printf.sprintf "restored by stage 6 (%.2fx)" r6);
  let w3, w3b = Util.stage_waves chain waves_f 3 in
  let w6, _ = Util.stage_waves chain waves_f 6 in
  print_endline "\nfaulty chain, stage 3 (op/opb) and stage 6 (op6):";
  let zoom w = Cml_wave.Wave.sub_range w ~t_from:10e-9 ~t_to:20e-9 in
  print_string
    (Cml_wave.Ascii_plot.render ~height:14
       [ ("op", zoom w3); ("opb", zoom w3b); ("op6", zoom w6) ])

(* ------------------------------------------------------------------ *)

(* cumulative delay of each stage output's first crossing of
   [reference] after the input event at [t0] *)
let cumulative_delays chain waves ~reference ~t0 =
  List.map
    (fun i ->
      let w_op, w_on = Util.stage_waves chain waves i in
      let cross w =
        match Cml_wave.Measure.first_crossing ~after:t0 w ~level:reference with
        | Some t -> t -. t0
        | None -> nan
      in
      (i, cross w_op, cross w_on))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let table1 () =
  Util.section "table1" "Delays at a fixed reference voltage (paper Table 1)";
  Util.paper
    [
      "measured at the fixed crossing voltage of a fault-free output";
      "pair (their 3.165 V), the 4 kohm pipe shows up as a +58 ps shift";
      "on one DUT output and -16 ps on the other - but after a few";
      "stages the difference collapses to ~0-1 ps: the delay anomaly";
      "heals and an output-side delay test cannot see the defect.";
    ];
  let chain, waves_ff, waves_f = chain_pair (D.Pipe { device = "x3.q3"; r = 4e3 }) in
  (* the normal crossing point of an output and its complement *)
  let w3, w3b = Util.stage_waves chain waves_ff 3 in
  let reference =
    let lo, hi = Cml_wave.Measure.extremes w3 ~t_from:10e-9 in
    ignore w3b;
    (lo +. hi) /. 2.0
  in
  Printf.printf "fixed reference voltage: %.4f V\n\n" reference;
  let input = chain.Cml_cells.Chain.input in
  let t0 =
    match
      List.find_opt
        (fun t -> t > 10e-9)
        (Cml_wave.Measure.differential_crossings (waves_ff input.B.p) (waves_ff input.B.n))
    with
    | Some t -> t
    | None -> failwith "no input event"
  in
  let ff = cumulative_delays chain waves_ff ~reference ~t0 in
  let f = cumulative_delays chain waves_f ~reference ~t0 in
  Printf.printf "%-6s %10s %10s %10s %10s %8s %8s\n" "stage" "FF op" "FF opb" "pipe op"
    "pipe opb" "dt op" "dt opb";
  List.iter2
    (fun (i, a, b) (_, a', b') ->
      Printf.printf "%-6d %8.0f ps %8.0f ps %8.0f ps %8.0f ps %6.0f ps %6.0f ps\n" i
        (Util.ps a) (Util.ps b) (Util.ps a') (Util.ps b') (Util.ps (a' -. a))
        (Util.ps (b' -. b)))
    ff f;
  let dt_at sel l l' =
    let _, a, b = List.nth l (sel - 1) and _, a', b' = List.nth l' (sel - 1) in
    (a' -. a, b' -. b)
  in
  let d3op, d3on = dt_at 3 ff f in
  let d8op, d8on = dt_at 8 ff f in
  let big3 = Float.max (Float.abs (Util.ps d3op)) (Float.abs (Util.ps d3on)) in
  let big8 = Float.max (Float.abs (Util.ps d8op)) (Float.abs (Util.ps d8on)) in
  Util.verdict (big3 > 20.0)
    (Printf.sprintf "large one-sided shift at the DUT (max |dt| = %.0f ps)" big3);
  Util.verdict (big8 < 10.0)
    (Printf.sprintf "vanishing shift at the chain output (max |dt| = %.0f ps)" big8)

(* ------------------------------------------------------------------ *)

let table2 () =
  Util.section "table2" "Delays at the actual crossing voltage (paper Table 2)";
  Util.paper
    [
      "re-measuring with each pair's actual crossing point as the time";
      "reference, even the DUT's delay shift is modest (+7 ps, 13% of a";
      "gate delay in the paper) and the final-output difference is";
      "1-2 ps: the defect is not delay-testable.";
    ];
  let chain, waves_ff, waves_f = chain_pair (D.Pipe { device = "x3.q3"; r = 4e3 }) in
  let input = chain.Cml_cells.Chain.input in
  let event waves w1 w2 t0 =
    ignore waves;
    List.find_opt (fun t -> t > t0) (Cml_wave.Measure.differential_crossings w1 w2)
  in
  let cumulative waves =
    let t0 =
      match
        List.find_opt
          (fun t -> t > 10e-9)
          (Cml_wave.Measure.differential_crossings (waves input.B.p) (waves input.B.n))
      with
      | Some t -> t
      | None -> failwith "no input event"
    in
    List.map
      (fun i ->
        let w_op, w_on = Util.stage_waves chain waves i in
        match event waves w_op w_on t0 with Some t -> t -. t0 | None -> nan)
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  let ff = cumulative waves_ff and f = cumulative waves_f in
  let per_stage l = List.mapi (fun i t -> if i = 0 then t else t -. List.nth l (i - 1)) l in
  let ff_stage = per_stage ff and f_stage = per_stage f in
  Printf.printf "%-6s %12s %12s %12s %8s\n" "stage" "FF delay" "pipe delay" "dtau(cum)" "d%";
  List.iteri
    (fun k i ->
      let dcum = List.nth f k -. List.nth ff k in
      let dstage = List.nth f_stage k -. List.nth ff_stage k in
      Printf.printf "%-6d %10.1f ps %10.1f ps %10.1f ps %7.0f%%\n" i
        (Util.ps (List.nth ff_stage k))
        (Util.ps (List.nth f_stage k))
        (Util.ps dcum)
        (100.0 *. dstage /. List.nth ff_stage k))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  let d3 = Util.ps (List.nth f_stage 2 -. List.nth ff_stage 2) in
  let dfinal = Util.ps (List.nth f 7 -. List.nth ff 7) in
  Util.verdict
    (Float.abs d3 < 20.0)
    (Printf.sprintf "modest DUT-stage shift at actual crossings (%.1f ps)" d3);
  let band = 0.1 *. Util.ps (List.fold_left ( +. ) 0.0 ff_stage) in
  Util.verdict
    (Float.abs dfinal < 0.25 *. band)
    (Printf.sprintf
       "total shift at the chain output (%.1f ps) far inside the 10%% tester band (+-%.0f ps)"
       dfinal band)

(* ------------------------------------------------------------------ *)

let fig5 () =
  Util.section "fig5" "Vlow / Vhigh vs pipe value and frequency (paper Fig. 5)";
  Util.paper
    [
      "the low-level excursion grows as the pipe resistance falls (1k >";
      "3k > 5k) and shrinks as frequency rises; large pipe values come";
      "close to the defect-free levels (parametric fault nearly";
      "undetectable); Vhigh stays at the rail.";
    ];
  let freqs = [ 100e6; 250e6; 500e6; 1e9; 1.5e9; 2e9 ] in
  let cases =
    [ ("fault-free", None); ("1 kohm", Some 1e3); ("3 kohm", Some 3e3); ("5 kohm", Some 5e3) ]
  in
  let results =
    List.map
      (fun (label, pipe) -> (label, Cml_dft.Experiment.swing_vs_frequency ~pipe ~freqs ()))
      cases
  in
  Printf.printf "%-12s" "freq (MHz)";
  List.iter (fun (label, _) -> Printf.printf " %14s" label) results;
  Printf.printf "   (Vlow, V)\n";
  List.iteri
    (fun k f ->
      Printf.printf "%-12.0f" (f /. 1e6);
      List.iter
        (fun (_, rows) ->
          let _, lo, _ = List.nth rows k in
          Printf.printf " %14.3f" lo)
        results;
      print_newline ())
    freqs;
  let vlow label k =
    let rows = List.assoc label results in
    let _, lo, _ = List.nth rows k in
    lo
  in
  Util.verdict
    (vlow "1 kohm" 0 < vlow "3 kohm" 0 && vlow "3 kohm" 0 < vlow "5 kohm" 0)
    "excursion ordered by pipe severity at 100 MHz";
  Util.verdict
    (vlow "1 kohm" 5 > vlow "1 kohm" 0)
    "excursion shrinks with frequency (1 kohm, 2 GHz vs 100 MHz)";
  Util.verdict
    (vlow "5 kohm" 0 > Cml_cells.Process.v_low proc -. 0.25)
    "large pipe values approach the defect-free low level"

let run () =
  fig2 ();
  fig4 ();
  table1 ();
  table2 ();
  fig5 ()
