(* Experiment harness: regenerates every table and figure of the
   paper's evaluation, printing the paper's claim next to the measured
   result.

   Usage:
     dune exec bench/main.exe                # all experiments
     dune exec bench/main.exe -- fig4        # one experiment
     dune exec bench/main.exe -- list        # available names
     dune exec bench/main.exe -- perf        # bechamel kernel benchmarks
     dune exec bench/main.exe -- --jobs 4 campaign
     dune exec bench/main.exe -- perf --json BENCH_spice.json
     dune exec bench/main.exe -- overhead --json BENCH_spice.json *)

let experiments =
  [
    ("fig2", Analog_benches.fig2);
    ("fig4", Analog_benches.fig4);
    ("table1", Analog_benches.table1);
    ("table2", Analog_benches.table2);
    ("fig5", Analog_benches.fig5);
    ("fig7", Detector_benches.fig7);
    ("fig8", Detector_benches.fig8);
    ("fig10", Detector_benches.fig10);
    ("fig12", Detector_benches.fig12);
    ("fig14", Detector_benches.fig14);
    ("sec66", Extension_benches.sec66);
    ("montecarlo", Extension_benches.montecarlo);
    ("ablation", Extension_benches.ablation);
    ("noise-margin", Extension_benches.noise_margin);
    ("campaign", System_benches.campaign);
    ("baseline", System_benches.baseline);
    ("area", System_benches.area);
    ("toggle", System_benches.toggle);
  ]

let run_all () =
  print_endline "Reproducing: 'Design For Testability Method for CML Digital Circuits'";
  print_endline "(Antaki, Savaria, Adham, Xiong - DATE 1999)";
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (name, f) ->
      let t = Unix.gettimeofday () in
      f ();
      Printf.printf "\n[%s done in %.1f s]\n" name (Unix.gettimeofday () -. t))
    experiments;
  Printf.printf "\nall experiments done in %.1f s\n" (Unix.gettimeofday () -. t0)

(* Options may appear anywhere on the command line:
     --jobs N / -j N   worker domains for parallel sections (0 = one
                       per core)
     --json FILE       append a machine-readable entry (perf only)
     --check           exit 1 when a kernel regressed > 25% vs the
                       last committed --json entry (perf only) *)
let rec parse_options json check names = function
  | [] -> (json, check, List.rev names)
  | ("--jobs" | "-j") :: v :: rest -> (
      match int_of_string_opt v with
      | Some n when n >= 0 ->
          Cml_runtime.Pool.set_default_jobs n;
          parse_options json check names rest
      | Some _ | None ->
          Printf.eprintf "--jobs expects an integer >= 1 (or 0 for one per core), got %S\n" v;
          exit 2)
  | [ ("--jobs" | "-j") ] ->
      Printf.eprintf "--jobs expects a value\n";
      exit 2
  | "--json" :: file :: rest -> parse_options (Some file) check names rest
  | [ "--json" ] ->
      Printf.eprintf "--json expects a file name\n";
      exit 2
  | "--check" :: rest -> parse_options json true names rest
  | name :: rest -> parse_options json check (name :: names) rest

let () =
  let json, check, names = parse_options None false [] (List.tl (Array.to_list Sys.argv)) in
  match names with
  | [] -> run_all ()
  | [ "list" ] ->
      List.iter (fun (name, _) -> print_endline name) experiments;
      print_endline "perf";
      print_endline "overhead"
  | names ->
      List.iter
        (fun name ->
          match name with
          | "perf" -> Perf.run ?json ~check ()
          | "overhead" -> Perf.telemetry_overhead ?json ()
          | _ -> (
              match List.assoc_opt name experiments with
              | Some f -> f ()
              | None ->
                  Printf.eprintf "unknown experiment %S (try 'list')\n" name;
                  exit 1))
        names
