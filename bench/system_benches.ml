(* System-level reproductions: the section-5 defect campaign, the
   prior-art baseline comparison, the section-6.5 area optimisation
   (Figure 15) and the section-6.6 testing approach. *)

module D = Cml_defects.Defect
module C = Cml_defects.Campaign
module Dft = Cml_dft
module L = Cml_logic

(* ------------------------------------------------------------------ *)

let campaign_result = ref None

let run_campaign () =
  match !campaign_result with
  | Some c -> c
  | None ->
      let chain = Cml_cells.Chain.build_dc ~stages:1 ~value:true () in
      ignore chain;
      let golden = Cml_cells.Chain.build ~stages:8 ~freq:100e6 () in
      let defects =
        Cml_defects.Sites.enumerate
          golden.Cml_cells.Chain.builder.Cml_cells.Builder.net
          ~prefix:"x3"
          ~pipe_values:[ 1e3; 4e3 ]
      in
      let c = C.run ~defects () in
      campaign_result := Some c;
      c

let campaign () =
  Util.section "campaign"
    "Defect-injection campaign on the buffer (paper section 5)";
  Util.paper
    [
      "simulating realistic circuit-level defects (pipes, shorts,";
      "opens, bridges, resistor faults) shows that abnormal output";
      "excursions are common in CML, that several of them are not";
      "stuck-at testable, and that degraded signals heal after a few";
      "stages.";
    ];
  let c = run_campaign () in
  Printf.printf "%-42s %-12s %s\n" "defect" "class" "flags";
  List.iter
    (fun e ->
      match e.C.outcome with
      | C.Failed msg -> Printf.printf "%-42s %-12s %s\n" (D.describe e.C.defect) "failed" msg
      | C.Measured (_, f) ->
          let cls =
            if f.C.stuck then "stuck-at"
            else if f.C.excessive_excursion then "excursion"
            else if f.C.reduced_swing then "weak-swing"
            else if f.C.delay_detectable then "delay"
            else "benign"
          in
          Printf.printf "%-42s %-12s %s%s%s\n" (D.describe e.C.defect) cls
            (if f.C.healed then "healed " else "")
            (if f.C.delay_detectable then "delay-vis " else "")
            (if f.C.excessive_excursion && not f.C.stuck then "needs-DFT" else ""))
    c.C.entries;
  print_newline ();
  List.iter (fun (k, v) -> Printf.printf "  %-22s %d\n" k v) (C.summary c);
  let lookup k = match List.assoc_opt k (C.summary c) with Some n -> n | None -> 0 in
  Util.verdict (lookup "excessive-excursion" > 0) "excursion faults are common";
  Util.verdict (lookup "excursion-not-stuck" > 0)
    "some excursion faults escape stuck-at testing entirely";
  Util.verdict (lookup "healed" > 0) "healing observed (degraded at DUT, clean at output)"

(* ------------------------------------------------------------------ *)

let baseline () =
  Util.section "baseline"
    "Detection coverage: prior art vs the built-in detectors (sections 1, 6)";
  Util.paper
    [
      "classical stuck-at testing is far from sufficient for CML;";
      "Menon's XOR checker only verifies complementarity; path-delay";
      "testing cannot see healed faults (a gate 2x slower than nominal";
      "escapes a 10-gate chain with 10% per-gate variation); the";
      "amplitude detectors cover the parametric excursion class on top";
      "of the stuck-at class.";
    ];
  let c = run_campaign () in
  let measured =
    List.filter_map
      (fun e -> match e.C.outcome with C.Measured (_, f) -> Some f | C.Failed _ -> None)
      c.C.entries
  in
  let total = List.length measured in
  let interesting =
    List.filter
      (fun f -> f.C.stuck || f.C.excessive_excursion || f.C.reduced_swing || f.C.delay_detectable)
      measured
  in
  let n_int = List.length interesting in
  let pct name pred =
    let n = List.length (List.filter pred interesting) in
    Printf.printf "  %-26s %3d / %d observable defects (%.0f%%)\n" name n n_int
      (100.0 *. float_of_int n /. float_of_int (max 1 n_int));
    n
  in
  Printf.printf "simulated defects with measurable behaviour: %d (of %d injected)\n\n" total
    (List.length c.C.entries);
  let sa = pct "stuck-at testing" Dft.Baselines.stuck_at_detects in
  let menon = pct "Menon XOR checker" Dft.Baselines.menon_xor_detects in
  let delay = pct "path-delay testing" Dft.Baselines.delay_test_detects in
  let amp = pct "amplitude detectors" Dft.Baselines.amplitude_detector_detects in
  ignore menon;
  (* the paper's actual claim: the excursion class is invisible to
     every prior technique and fully covered by the detectors *)
  let unique =
    List.filter
      (fun f ->
        Dft.Baselines.amplitude_detector_detects f
        && (not (Dft.Baselines.stuck_at_detects f))
        && (not (Dft.Baselines.menon_xor_detects f))
        && not (Dft.Baselines.delay_test_detects f))
      interesting
  in
  Printf.printf "\ndefects only the amplitude detectors catch: %d\n" (List.length unique);
  Util.verdict (List.length unique > 0)
    "the excursion class escapes every prior technique and is caught by the DFT";
  Util.verdict (amp > sa) "amplitude detectors extend stuck-at coverage";
  Util.verdict (amp > delay) "amplitude detectors beat delay testing";
  Printf.printf
    "(the XOR checker's extra weak-swing coverage costs one full test gate\n\
    \ per circuit gate - see the 'area' experiment - and still misses every\n\
    \ excursion fault)\n";
  Printf.printf "\nthe paper's delay-escape argument (10-gate chain, 10%% tolerance):\n";
  let escapes =
    Dft.Baselines.delay_test_escape ~gate_delay:53e-12 ~stages:10 ~tolerance:0.1
      ~extra_delay:53e-12
  in
  Util.verdict escapes "a gate going 2x slower than nominal escapes the tester"

(* ------------------------------------------------------------------ *)

let area () =
  Util.section "area" "Area overhead and the multi-emitter optimisation (Fig. 15, section 6.5)";
  Util.paper
    [
      "Menon's technique costs one test gate per circuit gate (very";
      "high); the built-in detectors cost a couple of devices per gate,";
      "the dual-emitter option removes one more transistor, and sharing";
      "the load + comparator over up to 45 gates amortises the rest.";
    ];
  let schemes =
    [
      Dft.Area.Menon_xor;
      Dft.Area.Variant1 Dft.Detector.v1_default;
      Dft.Area.Variant2 Dft.Detector.v2_default;
      Dft.Area.Variant2 { Dft.Detector.v2_default with Dft.Detector.multi_emitter = true };
      Dft.Area.Variant3 { multi_emitter = false; sharing = 1 };
      Dft.Area.Variant3 { multi_emitter = true; sharing = 10 };
      Dft.Area.Variant3 { multi_emitter = true; sharing = 45 };
    ]
  in
  let gate = Dft.Area.buffer_gate () in
  Printf.printf "CML buffer gate itself: %d transistors, %d resistors\n\n" gate.Dft.Area.bjts
    gate.Dft.Area.resistors;
  Printf.printf "%-38s %10s %10s %10s %10s\n" "scheme (per monitored gate)" "BJTs" "res."
    "caps" "overhead";
  List.iter
    (fun s ->
      let b, r, c = Dft.Area.per_gate_counts s in
      Printf.printf "%-38s %10.2f %10.2f %10.2f %9.0f%%\n" (Dft.Area.scheme_name s) b r c
        (100.0 *. Dft.Area.overhead_fraction s))
    schemes;
  let ov s = Dft.Area.overhead_fraction s in
  Util.verdict
    (ov Dft.Area.Menon_xor > 3.0)
    "XOR checker costs more than a whole gate per gate";
  let v3_45 = ov (Dft.Area.Variant3 { multi_emitter = true; sharing = 45 }) in
  Util.verdict (v3_45 < 0.6)
    (Printf.sprintf "shared multi-emitter variant 3 is cheap (%.0f%% of a gate)"
       (100.0 *. v3_45));
  let two = Dft.Area.v3_sensors ~multi_emitter:false in
  let one = Dft.Area.v3_sensors ~multi_emitter:true in
  Util.verdict
    (one.Dft.Area.bjts = two.Dft.Area.bjts - 1)
    "multi-emitter removes one transistor per monitored gate"

(* ------------------------------------------------------------------ *)

let toggle () =
  Util.section "toggle" "Testing approach: toggle coverage by random patterns (section 6.6)";
  Util.paper
    [
      "amplitude faults on a single output are asserted only while the";
      "gate toggles, so the test applies random patterns to reach high";
      "toggle coverage; sequential circuits converge to a deterministic";
      "state irrespective of the power-up state (reference [13]), so";
      "coverage is well defined without a reset.";
    ];
  Printf.printf "%-10s %6s %10s %10s %10s %11s\n" "circuit" "nets" "LFSR-32" "LFSR-128"
    "LFSR-512" "self-init";
  List.iter
    (fun (name, c) ->
      let width = List.length c.L.Circuit.inputs in
      let pats count =
        L.Patterns.lfsr_patterns (L.Patterns.lfsr_create ~seed:0xACE1 ()) ~width ~count
      in
      let initial = L.Sim.initial c L.Value.F in
      let cov n = 100.0 *. L.Coverage.coverage_after c ~initial ~patterns:(pats n) in
      Printf.printf "%-10s %6d %9.1f%% %9.1f%% %9.1f%% %11s\n" name (L.Circuit.num_nets c)
        (cov 32) (cov 128) (cov 512)
        (if L.Init_convergence.self_initialising c ~patterns:(pats 128) then "yes" else "no"))
    (L.Bench_circuits.all () @ [ ("s27 (ISCAS89)", L.Bench_format.s27 ()) ]);
  (* convergence irrespective of initial state *)
  let c = L.Bench_circuits.traffic_fsm () in
  let patterns =
    L.Patterns.lfsr_patterns (L.Patterns.lfsr_create ~seed:99 ()) ~width:1 ~count:32
  in
  let r = L.Init_convergence.analyse c ~patterns ~trials:16 ~seed:3 in
  Printf.printf "\ntraffic FSM from 16 random power-up states: converged = %b%s\n"
    r.L.Init_convergence.converged
    (match r.L.Init_convergence.convergence_cycle with
    | Some k -> Printf.sprintf " after %d cycles" k
    | None -> "");
  Util.verdict r.L.Init_convergence.converged
    "random patterns synchronize the FSM from any initial state";
  let shift = L.Bench_circuits.shift_register ~bits:8 in
  let cov =
    L.Coverage.coverage_after shift
      ~initial:(L.Sim.initial shift L.Value.F)
      ~patterns:(L.Patterns.random_patterns ~seed:1 ~width:1 ~count:128)
  in
  Util.verdict (cov > 0.99)
    (Printf.sprintf "random patterns reach full toggle coverage (shift8: %.1f%%)"
       (100.0 *. cov))

let run () =
  campaign ();
  baseline ();
  area ();
  toggle ()
