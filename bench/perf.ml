(* Bechamel micro-benchmarks of the simulator kernels: sparse and
   dense LU, the full Newton DC solve, one transient step of the
   paper's 8-buffer chain, and the waveform measurements. *)

module E = Cml_spice.Engine
module T = Cml_spice.Transient

let sparse_system n =
  let t = Cml_numerics.Sparse.triplet_create n in
  for i = 0 to n - 1 do
    Cml_numerics.Sparse.add t i i 4.0;
    if i > 0 then Cml_numerics.Sparse.add t i (i - 1) (-1.0);
    if i < n - 1 then Cml_numerics.Sparse.add t i (i + 1) (-1.0);
    if i + 7 < n then Cml_numerics.Sparse.add t i (i + 7) (-0.5)
  done;
  Cml_numerics.Sparse.csc_of_pattern (Cml_numerics.Sparse.compress t)

let dense_system n =
  let m = Cml_numerics.Dense.create n in
  for i = 0 to n - 1 do
    Cml_numerics.Dense.add_entry m i i 4.0;
    if i > 0 then Cml_numerics.Dense.add_entry m i (i - 1) (-1.0);
    if i < n - 1 then Cml_numerics.Dense.add_entry m i (i + 1) (-1.0)
  done;
  m

let tests () =
  let open Bechamel in
  let a200 = sparse_system 200 in
  let d100 = dense_system 100 in
  let rhs200 = Array.init 200 (fun i -> sin (float_of_int i)) in
  let rhs100 = Array.init 100 (fun i -> cos (float_of_int i)) in
  let chain = Cml_cells.Chain.build ~stages:8 ~freq:100e6 () in
  let chain_net = chain.Cml_cells.Chain.builder.Cml_cells.Builder.net in
  let wave =
    let times = Array.init 5000 (fun i -> float_of_int i *. 1e-11) in
    let values = Array.map (fun t -> 3.0 +. (0.25 *. sin (2.0 *. Float.pi *. 1e8 *. t))) times in
    Cml_wave.Wave.create times values
  in
  [
    Test.make ~name:"sparse LU factor+solve (n=200)" (Staged.stage (fun () ->
        ignore (Cml_numerics.Sparse_lu.solve (Cml_numerics.Sparse_lu.factorize a200) rhs200)));
    Test.make ~name:"dense LU factor+solve (n=100)" (Staged.stage (fun () ->
        ignore (Cml_numerics.Dense.solve d100 rhs100)));
    Test.make ~name:"chain DC operating point" (Staged.stage (fun () ->
        let sim = E.compile chain_net in
        ignore (E.dc_operating_point sim)));
    Test.make ~name:"chain transient (2 ns)" (Staged.stage (fun () ->
        let sim = E.compile chain_net in
        ignore (T.run sim chain_net (T.config ~tstop:2e-9 ~max_step:10e-12 ()))));
    Test.make ~name:"crossing detection (5k samples)" (Staged.stage (fun () ->
        ignore (Cml_wave.Measure.crossings wave ~level:3.0)));
  ]

let run () =
  Util.section "perf" "Bechamel micro-benchmarks of the simulation kernels";
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1500 ~quota:(Time.second 1.0) ~kde:(Some 500) () in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"kernels" ~fmt:"%s %s" (tests ()))
  in
  let results =
    List.map
      (fun instance -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
           ~predictors:[| Measure.run |]) instance raw)
      instances
  in
  let merged = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Measure.run |]) instances results in
  Hashtbl.iter
    (fun _ tbl ->
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-42s %12.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "  %-42s (no estimate)\n" name)
        tbl)
    merged
