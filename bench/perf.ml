(* Bechamel micro-benchmarks of the simulator kernels (sparse/dense
   LU, the numeric-only refactorization, Newton DC, one transient of
   the paper's 8-buffer chain, waveform measurements) plus two
   system-level probes of the execution runtime:

   - solver reuse: how many full symbolic factorizations vs cheap
     numeric refactorizations a chain transient performs (the sparse
     engine must pay the symbolic cost at most once per Jacobian
     pattern, plus pivot-degradation fallbacks);
   - campaign scaling: wall-clock of the same defect campaign at
     jobs = 1 and jobs = default, with a byte-identical summary check.

   [run ~json:"BENCH_spice.json" ()] additionally dumps every number
   as JSON so the timing trajectory is machine-readable across PRs. *)

module E = Cml_spice.Engine
module T = Cml_spice.Transient

let sparse_system n =
  let t = Cml_numerics.Sparse.triplet_create n in
  for i = 0 to n - 1 do
    Cml_numerics.Sparse.add t i i 4.0;
    if i > 0 then Cml_numerics.Sparse.add t i (i - 1) (-1.0);
    if i < n - 1 then Cml_numerics.Sparse.add t i (i + 1) (-1.0);
    if i + 7 < n then Cml_numerics.Sparse.add t i (i + 7) (-0.5)
  done;
  Cml_numerics.Sparse.csc_of_pattern (Cml_numerics.Sparse.compress t)

let dense_system n =
  let m = Cml_numerics.Dense.create n in
  for i = 0 to n - 1 do
    Cml_numerics.Dense.add_entry m i i 4.0;
    if i > 0 then Cml_numerics.Dense.add_entry m i (i - 1) (-1.0);
    if i < n - 1 then Cml_numerics.Dense.add_entry m i (i + 1) (-1.0)
  done;
  m

(* The compiled c432-class design: the .bench->CML compiler's output
   is the first workload whose MNA system is big enough (~950
   unknowns) that the sparse-LU column ordering dominates the solve
   time.  The Jacobian pattern is extracted at the DC operating point;
   built once and shared across bechamel passes and the ordering
   probe. *)
let c432 =
  lazy
    (let design =
       Cml_cells.Compile.compile ~freq:200e6 (Cml_logic.Bench_circuits.c432_surrogate ())
     in
     let net = Cml_cells.Compile.netlist design in
     let sim = E.compile net in
     let x = E.dc_operating_point sim in
     let g, _ = E.ac_system sim x in
     let n = E.unknown_count sim in
     let tr = Cml_numerics.Sparse.triplet_create n in
     List.iter (fun (i, j, v) -> Cml_numerics.Sparse.add tr i j v) g;
     (net, Cml_numerics.Sparse.csc_of_pattern (Cml_numerics.Sparse.compress tr), n))

let tests () =
  let open Bechamel in
  let a200 = sparse_system 200 in
  let d100 = dense_system 100 in
  let rhs200 = Array.init 200 (fun i -> sin (float_of_int i)) in
  let rhs100 = Array.init 100 (fun i -> cos (float_of_int i)) in
  let refactor200 = Cml_numerics.Sparse_lu.factorize a200 in
  let c432_net, c432_a, c432_n = Lazy.force c432 in
  let c432_rhs = Array.init c432_n (fun i -> sin (float_of_int i)) in
  let chain = Cml_cells.Chain.build ~stages:8 ~freq:100e6 () in
  let chain_net = chain.Cml_cells.Chain.builder.Cml_cells.Builder.net in
  let wave =
    let times = Array.init 5000 (fun i -> float_of_int i *. 1e-11) in
    let values = Array.map (fun t -> 3.0 +. (0.25 *. sin (2.0 *. Float.pi *. 1e8 *. t))) times in
    Cml_wave.Wave.create times values
  in
  [
    Test.make ~name:"sparse LU factor+solve (n=200)" (Staged.stage (fun () ->
        ignore (Cml_numerics.Sparse_lu.solve (Cml_numerics.Sparse_lu.factorize a200) rhs200)));
    Test.make ~name:"sparse LU refactorize+solve (n=200)" (Staged.stage (fun () ->
        assert (Cml_numerics.Sparse_lu.refactorize refactor200 a200);
        ignore (Cml_numerics.Sparse_lu.solve refactor200 rhs200)));
    Test.make ~name:"dense LU factor+solve (n=100)" (Staged.stage (fun () ->
        ignore (Cml_numerics.Dense.solve d100 rhs100)));
    (* the fill-reducing path on a design-sized Jacobian; the
       natural-order equivalent runs ~40x longer and is measured once
       by [ordering_probe] instead of as a kernel *)
    Test.make ~name:"c432 LU factor+solve (amd)" (Staged.stage (fun () ->
        ignore
          (Cml_numerics.Sparse_lu.solve
             (Cml_numerics.Sparse_lu.factorize ~ordering:Cml_numerics.Sparse_lu.Amd c432_a)
             c432_rhs)));
    Test.make ~name:"c432 DC operating point" (Staged.stage (fun () ->
        ignore (E.dc_operating_point (E.compile c432_net))));
    Test.make ~name:"chain DC operating point" (Staged.stage (fun () ->
        let sim = E.compile chain_net in
        ignore (E.dc_operating_point sim)));
    Test.make ~name:"chain transient (2 ns)" (Staged.stage (fun () ->
        let sim = E.compile chain_net in
        ignore (T.run sim chain_net (T.config ~tstop:2e-9 ~max_step:10e-12 ()))));
    Test.make ~name:"batched campaign transient (8 lanes)" (Staged.stage (fun () ->
        (* the campaign hot loop in miniature: eight variants of the
           chain advancing in lockstep through one batch workspace *)
        let lanes = Array.init 8 (fun _ -> (E.compile chain_net, None)) in
        let cfg = T.config ~tstop:2e-9 ~max_step:10e-12 ~record_every:0 () in
        Array.iter
          (function T.Lane_done _ -> () | T.Lane_failed _ | T.Lane_incompatible -> assert false)
          (T.run_batch lanes chain_net cfg)));
    Test.make ~name:"crossing detection (5k samples)" (Staged.stage (fun () ->
        ignore (Cml_wave.Measure.crossings wave ~level:3.0)));
  ]

let kernel_estimates () =
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1500 ~quota:(Time.second 1.0) ~kde:(Some 500) () in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"kernels" ~fmt:"%s %s" (tests ()))
  in
  let results =
    List.map
      (fun instance -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
           ~predictors:[| Measure.run |]) instance raw)
      instances
  in
  let merged = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Measure.run |]) instances results in
  let acc = ref [] in
  Hashtbl.iter
    (fun _ tbl ->
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> acc := (name, est) :: !acc
          | Some _ | None -> ())
        tbl)
    merged;
  List.sort compare !acc

(* one transient of the 8-buffer chain on the sparse backend (forced:
   at 32 unknowns Auto would pick dense); the engine should do its
   symbolic analysis once and refactorize everywhere else *)
let solver_reuse () =
  let chain = Cml_cells.Chain.build ~stages:8 ~freq:100e6 () in
  let net = chain.Cml_cells.Chain.builder.Cml_cells.Builder.net in
  let sim = E.compile ~options:{ E.default_options with E.solver = E.Sparse_solver } net in
  ignore (T.run sim net (T.config ~tstop:2e-9 ~max_step:10e-12 ()));
  (E.unknown_count sim, E.solver_stats sim)

(* Amd-vs-natural comparison on the compiled design's Jacobian: fill
   (nnz of L+U) is deterministic, the factor+solve wall clocks are
   best-of-2.  The natural ordering is only ever run here — it is far
   too slow for the bechamel quota, which is the point being
   recorded. *)
type ordering_probe = {
  o_unknowns : int;
  o_nnz_a : int;
  o_nnz_natural : int;
  o_nnz_amd : int;
  o_natural_ms : float;
  o_amd_ms : float;
}

let ordering_reduction p =
  1.0 -. (float_of_int p.o_nnz_amd /. float_of_int (max 1 p.o_nnz_natural))

let ordering_probe () =
  let _, a, n = Lazy.force c432 in
  let rhs = Array.init n (fun i -> sin (float_of_int i)) in
  let measure ordering =
    let nnz = ref 0 and best = ref infinity in
    for _ = 1 to 2 do
      let t0 = Unix.gettimeofday () in
      let f = Cml_numerics.Sparse_lu.factorize ~ordering a in
      ignore (Cml_numerics.Sparse_lu.solve f rhs);
      let dt = 1e3 *. (Unix.gettimeofday () -. t0) in
      let l, u = Cml_numerics.Sparse_lu.lu_nnz f in
      nnz := l + u;
      if dt < !best then best := dt
    done;
    (!nnz, !best)
  in
  let nnz_natural, natural_ms = measure Cml_numerics.Sparse_lu.Natural in
  let nnz_amd, amd_ms = measure Cml_numerics.Sparse_lu.Amd in
  {
    o_unknowns = n;
    o_nnz_a = Cml_numerics.Sparse.nnz a;
    o_nnz_natural = nnz_natural;
    o_nnz_amd = nnz_amd;
    o_natural_ms = natural_ms;
    o_amd_ms = amd_ms;
  }

(* enough variants that a --jobs 4 run keeps every domain busy for
   several tasks (the old 4-defect batch degenerated to one task per
   domain and measured mostly the sequential reference simulation) *)
let campaign_defects () =
  let golden = Cml_cells.Chain.build ~stages:8 ~freq:100e6 () in
  let all =
    Cml_defects.Sites.enumerate golden.Cml_cells.Chain.builder.Cml_cells.Builder.net
      ~prefix:"x3" ~pipe_values:[ 1e3; 2e3; 4e3 ]
  in
  List.filteri (fun i _ -> i < 32) all

let time_campaign ~jobs defects =
  let t0 = Unix.gettimeofday () in
  let c = Cml_defects.Campaign.run ~jobs ~tstop:10e-9 ~defects () in
  (Unix.gettimeofday () -. t0, Cml_defects.Campaign.summary c)

(* ------------------------------------------------------------------ *)
(* JSON trajectory: the bench file is a history — each [--json] run
   appends one entry, so the timing record accumulates across PRs
   instead of being overwritten.  A schema-1 file (single object) is
   migrated in place into the first history entry. *)

module J = Cml_telemetry.Json

let entry_json ~jobs ~cores ~kernels ~nunk ~(stats : E.solver_stats) ~ordering ~campaign =
  let t1, tn, ndefects, summaries_match = campaign in
  J.Obj
    [
      ("jobs", J.Num (float_of_int jobs));
      ("cores", J.Num (float_of_int cores));
      ( "kernels",
        J.List
          (List.map
             (fun (name, ns) -> J.Obj [ ("name", J.Str name); ("ns_per_run", J.Num ns) ])
             kernels) );
      ( "solver",
        J.Obj
          [
            ("chain_unknowns", J.Num (float_of_int nunk));
            ("symbolic_factorizations", J.Num (float_of_int stats.E.symbolic_factorizations));
            ("numeric_refactorizations", J.Num (float_of_int stats.E.numeric_refactorizations));
            ("newton_iters", J.Num (float_of_int stats.E.newton_iters));
            ("device_loads", J.Num (float_of_int stats.E.device_loads));
            ("bypassed_loads", J.Num (float_of_int stats.E.bypassed_loads));
            ("lu_nnz_factors", J.Num (float_of_int stats.E.lu_nnz_factors));
            ("lu_fill_ratio", J.Num stats.E.lu_fill_ratio);
            ("lu_ordering", J.Str stats.E.lu_ordering);
          ] );
      ( "ordering",
        J.Obj
          [
            ("design", J.Str "c432_surrogate");
            ("unknowns", J.Num (float_of_int ordering.o_unknowns));
            ("nnz_a", J.Num (float_of_int ordering.o_nnz_a));
            ("nnz_natural", J.Num (float_of_int ordering.o_nnz_natural));
            ("nnz_amd", J.Num (float_of_int ordering.o_nnz_amd));
            ("fill_reduction", J.Num (ordering_reduction ordering));
            ("natural_ms", J.Num ordering.o_natural_ms);
            ("amd_ms", J.Num ordering.o_amd_ms);
            ( "speedup",
              J.Num
                (if ordering.o_amd_ms > 0.0 then ordering.o_natural_ms /. ordering.o_amd_ms
                 else 0.0) );
          ] );
      ( "campaign",
        J.Obj
          [
            ("defects", J.Num (float_of_int ndefects));
            ("jobs1_s", J.Num t1);
            ("jobsN_s", J.Num tn);
            ("speedup", J.Num (if tn > 0.0 then t1 /. tn else 0.0));
            ("summaries_match", J.Bool summaries_match);
          ] );
    ]

let load_history path =
  if not (Sys.file_exists path) then []
  else
    match J.parse_file path with
    | exception (J.Parse_error _ | Sys_error _) -> []
    | v -> (
        match J.member "schema" v with
        | Some (J.Str "cml-dft-perf/1") -> (
            (* pre-history file: the whole object is the only entry *)
            match v with
            | J.Obj members -> [ J.Obj (List.filter (fun (k, _) -> k <> "schema") members) ]
            | _ -> [])
        | Some (J.Str "cml-dft-perf/2") -> (
            match J.member "history" v with Some (J.List entries) -> entries | _ -> [])
        | _ -> [])

let write_history path entries =
  J.write_file path (J.Obj [ ("schema", J.Str "cml-dft-perf/2"); ("history", J.List entries) ])

let entry_kernels entry =
  match J.member "kernels" entry with
  | Some (J.List ks) ->
      List.filter_map
        (fun k ->
          match (J.member "name" k, J.member "ns_per_run" k) with
          | Some (J.Str name), Some (J.Num ns) -> Some (name, ns)
          | _ -> None)
        ks
  | _ -> []

let regression_limit = 1.25

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* The batched-campaign kernel is a whole 8-lane workload (eight
   compiles, eight DC solves, a shared macro grid) rather than a tight
   inner loop, so its run-to-run spread is closer to the campaign
   probe's than to the other kernels'; gate it at the campaign limit. *)
let kernel_limit name =
  if contains_sub name "batched campaign" then 1.5 else regression_limit

(* kernels of the new run that got slower than their per-kernel limit
   allows vs the last committed history entry: [(name, old_ns, new_ns)] *)
let regressions ~baseline ~kernels =
  let old_kernels = entry_kernels baseline in
  List.filter_map
    (fun (name, ns) ->
      match List.assoc_opt name old_kernels with
      | Some old_ns when old_ns > 0.0 && ns > kernel_limit name *. old_ns ->
          Some (name, old_ns, ns)
      | Some _ | None -> None)
    kernels

(* The campaign probe is a whole parallel workload, not a single
   kernel, so its wall clock carries scheduler and load noise the
   best-of-N bechamel estimates do not; gate it more loosely. *)
let campaign_limit = 1.5

let entry_campaign entry =
  match J.member "campaign" entry with
  | Some c -> (
      match (J.member "jobs1_s" c, J.member "jobsN_s" c) with
      | Some (J.Num t1), Some (J.Num tn) -> Some (t1, tn)
      | _ -> None)
  | _ -> None

(* The campaign probe's jobs=N wall clock depends on the worker count
   and the host, so its baseline must be the last history entry
   recorded at the same jobs AND cores — comparing a jobs=4 run
   against a jobs=1 entry (or a 16-core entry against a 1-core one)
   would flag a phantom regression or mask a real one.  Kernels are
   single-threaded and keep comparing against the last entry
   regardless of setting. *)
let entry_setting entry =
  match (J.member "jobs" entry, J.member "cores" entry) with
  | Some (J.Num j), Some (J.Num c) -> Some (int_of_float j, int_of_float c)
  | _ -> None

let last_matching ~jobs ~cores history =
  List.find_opt (fun e -> entry_setting e = Some (jobs, cores)) (List.rev history)

let campaign_regressions ~baseline ~t1 ~tn =
  match entry_campaign baseline with
  | None -> []
  | Some (o1, on) ->
      List.filter_map
        (fun (label, old_s, new_s) ->
          if old_s > 0.0 && new_s > campaign_limit *. old_s then Some (label, old_s, new_s)
          else None)
        [ ("campaign probe jobs=1 (s)", o1, t1); ("campaign probe jobs=N (s)", on, tn) ]

(* [cmldft report]-style trajectory table: every kernel against the
   last committed history entry, the campaign probe against the last
   entry at the same jobs/cores setting, so the BENCH_spice.json
   history surfaces more than the kernel gate. *)
let print_trajectory ~baseline ~campaign_baseline ~kernels ~t1 ~tn =
  print_endline "\ntiming trajectory vs last recorded entry:";
  Printf.printf "  %-42s %14s %14s %7s\n" "probe" "baseline" "current" "ratio";
  let row name old_v new_v =
    Printf.printf "  %-42s %14.1f %14.1f %6.2fx\n" name old_v new_v
      (if old_v > 0.0 then new_v /. old_v else 0.0)
  in
  let old_kernels = entry_kernels baseline in
  List.iter
    (fun (name, ns) ->
      match List.assoc_opt name old_kernels with
      | Some old_ns -> row (name ^ " (ns)") old_ns ns
      | None -> Printf.printf "  %-42s %14s %14.1f\n" (name ^ " (ns)") "-" ns)
    kernels;
  match Option.bind campaign_baseline entry_campaign with
  | Some (o1, on) ->
      row "campaign probe jobs=1 (s)" o1 t1;
      row "campaign probe jobs=N (s)" on tn
  | None -> print_endline "  (no campaign timing recorded at this jobs/cores setting)"

(* best-of-N over full bechamel passes: the per-pass OLS estimate is
   tight, but on a shared host the whole pass can be slowed by
   unrelated load, which would trip the 25% regression gate on noise.
   The minimum across passes is the usual robust choice — a kernel
   cannot run faster than the code allows, only slower. *)
let kernel_estimates_best ~passes =
  let min_merge best pass =
    List.map
      (fun (name, est) ->
        match List.assoc_opt name best with
        | Some prev -> (name, Float.min prev est)
        | None -> (name, est))
      pass
  in
  let rec go best k = if k = 0 then best else go (min_merge best (kernel_estimates ())) (k - 1) in
  go (kernel_estimates ()) (passes - 1)

let run ?json ?(check = false) () =
  Util.section "perf" "Bechamel micro-benchmarks of the simulation kernels";
  let kernels = kernel_estimates_best ~passes:3 in
  List.iter (fun (name, est) -> Printf.printf "  %-42s %12.1f ns/run\n" name est) kernels;
  let nunk, stats = solver_reuse () in
  Printf.printf "\nsolver reuse over a chain transient (%d unknowns):\n" nunk;
  Printf.printf "  symbolic factorizations   %6d\n" stats.E.symbolic_factorizations;
  Printf.printf "  numeric refactorizations  %6d\n" stats.E.numeric_refactorizations;
  Printf.printf "  newton iterations         %6d\n" stats.E.newton_iters;
  Printf.printf "  device loads              %6d\n" stats.E.device_loads;
  Printf.printf "  bypassed loads            %6d  (%.0f%%)\n" stats.E.bypassed_loads
    (if stats.E.device_loads > 0 then
       100.0 *. float_of_int stats.E.bypassed_loads /. float_of_int stats.E.device_loads
     else 0.0);
  Util.verdict
    (stats.E.numeric_refactorizations > 10 * max 1 stats.E.symbolic_factorizations)
    "symbolic analysis is amortised across Newton iterations";
  let ord = ordering_probe () in
  Printf.printf "\nfill-reducing ordering on the compiled c432 surrogate (%d unknowns, nnz(A) %d):\n"
    ord.o_unknowns ord.o_nnz_a;
  Printf.printf "  %-10s %12s %16s\n" "ordering" "nnz(L+U)" "factor+solve";
  Printf.printf "  %-10s %12d %13.1f ms\n" "natural" ord.o_nnz_natural ord.o_natural_ms;
  Printf.printf "  %-10s %12d %13.1f ms\n" "amd" ord.o_nnz_amd ord.o_amd_ms;
  let reduction = ordering_reduction ord in
  let ordering_speedup =
    if ord.o_amd_ms > 0.0 then ord.o_natural_ms /. ord.o_amd_ms else 0.0
  in
  let ordering_ok = reduction >= 0.30 in
  Util.verdict ordering_ok
    (Printf.sprintf "amd cuts nnz(L+U) by %.1f%% (gate: >= 30%%), factor+solve %.1fx faster"
       (100.0 *. reduction) ordering_speedup);
  let jobs = Cml_runtime.Pool.default_jobs () in
  let cores = Domain.recommended_domain_count () in
  let defects = campaign_defects () in
  Printf.printf "\ncampaign scaling (%d defects, jobs = 1 vs %d, %d cores):\n%!"
    (List.length defects) jobs cores;
  (* interleaved best-of-two wall clocks: background load on a shared
     host drifts over seconds, and alternating the two settings keeps
     that drift from being misread as a scaling difference *)
  let t1a, s1 = time_campaign ~jobs:1 defects in
  let tna, sn = time_campaign ~jobs defects in
  let t1b, _ = time_campaign ~jobs:1 defects in
  let tnb, _ = time_campaign ~jobs defects in
  let t1 = Float.min t1a t1b and tn = Float.min tna tnb in
  let speedup = if tn > 0.0 then t1 /. tn else 0.0 in
  (* per-core efficiency: speedup per domain actually running the
     batches — at jobs > cores the pool never runs more than [cores] *)
  let efficiency = speedup /. float_of_int (max 1 (min jobs cores)) in
  Printf.printf "  %-10s %10s %9s %10s\n" "setting" "wall (s)" "speedup" "eff/core";
  Printf.printf "  jobs = 1   %10.2f %8.2fx %9.0f%%\n" t1 1.0 100.0;
  Printf.printf "  jobs = %-3d %10.2f %8.2fx %9.0f%%\n" jobs tn speedup (100.0 *. efficiency);
  let summaries_match = s1 = sn in
  Util.verdict summaries_match "parallel summary is byte-identical to sequential";
  if cores = 1 then
    print_endline
      "  single-core host: parallel-speedup gate skipped (jobs = N cannot beat jobs = 1)"
  else
    Util.verdict (speedup >= 1.0)
      (Printf.sprintf "campaign scales: jobs = %d is no slower than jobs = 1" jobs);
  let failed_check =
    match json with
    | None -> false
    | Some path ->
        let history = load_history path in
        let entry =
          entry_json ~jobs ~cores ~kernels ~nunk ~stats ~ordering:ord
            ~campaign:(t1, tn, List.length defects, summaries_match)
        in
        write_history path (history @ [ entry ]);
        Printf.printf "wrote %s (%d history entries)\n" path (List.length history + 1);
        let campaign_baseline = last_matching ~jobs ~cores history in
        (match List.rev history with
        | [] ->
            print_endline
              "  no history yet: this run is the first entry, trajectory starts next run"
        | baseline :: _ -> print_trajectory ~baseline ~campaign_baseline ~kernels ~t1 ~tn);
        if not check then false
        else begin
          match List.rev history with
          | [] ->
              print_endline "perf check: no baseline entry, nothing to compare against";
              false
          | baseline :: _ ->
              let regs = regressions ~baseline ~kernels in
              let camp_regs =
                match campaign_baseline with
                | None -> []
                | Some b -> campaign_regressions ~baseline:b ~t1 ~tn
              in
              List.iter
                (fun (name, old_ns, ns) ->
                  Printf.printf "  REGRESSION %-42s %.1f -> %.1f ns/run (%.2fx)\n" name old_ns
                    ns (ns /. old_ns))
                regs;
              List.iter
                (fun (name, old_s, s) ->
                  Printf.printf "  REGRESSION %-42s %.2f -> %.2f s (%.2fx)\n" name old_s s
                    (s /. old_s))
                camp_regs;
              let kernels_ok = regs = [] and campaign_ok = camp_regs = [] in
              Util.verdict kernels_ok
                (Printf.sprintf
                   "no kernel regressed more than %.0f%% vs last entry (%.0f%% for the \
                    batched-campaign kernel)"
                   ((regression_limit -. 1.0) *. 100.0)
                   ((kernel_limit "batched campaign" -. 1.0) *. 100.0));
              (match campaign_baseline with
              | Some _ ->
                  Util.verdict campaign_ok
                    (Printf.sprintf
                       "campaign probe within %.0f%% of the last entry at jobs=%d cores=%d"
                       ((campaign_limit -. 1.0) *. 100.0)
                       jobs cores)
              | None ->
                  Printf.printf
                    "  campaign probe: no history entry at jobs=%d cores=%d, gate skipped\n"
                    jobs cores);
              not (kernels_ok && campaign_ok)
        end
  in
  if failed_check || (check && not ordering_ok) then exit 1

(* ------------------------------------------------------------------ *)
(* Telemetry overhead gate.

   The claim to verify: with tracing disabled, the span hooks on the
   Newton hot path cost one atomic load and a branch — i.e. the chain
   transient stays within 3% of the pre-telemetry baseline.

   Comparing a fresh wall clock against a number recorded in an
   earlier session cannot carry a 3% gate: the recorded history shows
   run-to-run host drift above 10% on this workload (see the
   interleaving comment in [run]).  So the gate is computed, not
   compared: measure the disabled start/finish pair directly (it is
   deterministic — no I/O, no allocation), multiply by the number of
   hook executions a chain transient performs, and assert that the
   product is under 3% of the recorded baseline transient time.  The
   current transient wall clock is printed alongside for context but
   only gated at the regular [regression_limit]. *)

let chain_transient_name = "kernels chain transient (2 ns)"

let overhead_limit = 0.03

(* minimum ns cost of a disabled [Trace.start]/[Trace.finish] pair *)
let disabled_pair_ns () =
  assert (not (Cml_telemetry.Trace.enabled ()));
  let n = 2_000_000 in
  let best = ref infinity in
  for _ = 1 to 5 do
    let t0 = Cml_telemetry.Clock.now_ns () in
    for _ = 1 to n do
      let tok = Cml_telemetry.Trace.start () in
      Cml_telemetry.Trace.finish ~cat:"bench" "overhead_probe" tok
    done;
    let per =
      Int64.to_float (Int64.sub (Cml_telemetry.Clock.now_ns ()) t0) /. float_of_int n
    in
    if per < !best then best := per
  done;
  !best

(* min ns cost of the disabled observer dispatch ([T.observe None]) —
   the per-accepted-step price a run with no [?observers] pays.  The
   option is laundered through [Sys.opaque_identity] so the match
   cannot be constant-folded away. *)
let disabled_observe_ns () =
  let n = 2_000_000 in
  let x = Array.make 32 0.0 in
  let obs = Sys.opaque_identity (None : T.observers option) in
  let best = ref infinity in
  for _ = 1 to 5 do
    let t0 = Cml_telemetry.Clock.now_ns () in
    for i = 1 to n do
      T.observe obs (float_of_int i) x
    done;
    let per =
      Int64.to_float (Int64.sub (Cml_telemetry.Clock.now_ns ()) t0) /. float_of_int n
    in
    if per < !best then best := per
  done;
  !best

(* min ns cost of the disabled per-accepted-step progress hook
   ([Progress.note_step]) — the price every transient pays once the
   step loop carries the live-observatory hook, whether or not an
   event stream is attached *)
let disabled_progress_ns () =
  assert (not (Cml_telemetry.Progress.enabled ()));
  let n = 2_000_000 in
  let best = ref infinity in
  for _ = 1 to 5 do
    let t0 = Cml_telemetry.Clock.now_ns () in
    for _ = 1 to n do
      Cml_telemetry.Progress.note_step ()
    done;
    let per =
      Int64.to_float (Int64.sub (Cml_telemetry.Clock.now_ns ()) t0) /. float_of_int n
    in
    if per < !best then best := per
  done;
  !best

(* min ns cost of the disabled introspection hook
   ([Introspect.note_newton] with no recorder attached) — the
   per-Newton-iteration price every solve pays now that the iteration
   loop carries the numerical-health observatory hook.  The [None] is
   laundered through [Sys.opaque_identity] so the match cannot be
   constant-folded away. *)
let disabled_introspect_ns () =
  let n = 2_000_000 in
  let x = Array.make 32 0.0 and xn = Array.make 32 0.0 in
  let rec_opt = Sys.opaque_identity (None : Cml_spice.Introspect.t option) in
  let best = ref infinity in
  for _ = 1 to 5 do
    let t0 = Cml_telemetry.Clock.now_ns () in
    for i = 1 to n do
      Cml_spice.Introspect.note_newton rec_opt ~time:(float_of_int i) ~iter:i ~x ~xn
        ~junction_error:0.0 ~junction_worst:(-1)
    done;
    let per =
      Int64.to_float (Int64.sub (Cml_telemetry.Clock.now_ns ()) t0) /. float_of_int n
    in
    if per < !best then best := per
  done;
  !best

(* min-of-[passes] wall clock of the standard chain transient, plus
   its Newton iteration count (an upper bound on the number of
   newton_solve spans: every call runs at least one iteration) and its
   accepted-step count (the number of disabled observer dispatches) *)
let chain_transient_min ~passes =
  let chain = Cml_cells.Chain.build ~stages:8 ~freq:100e6 () in
  let net = chain.Cml_cells.Chain.builder.Cml_cells.Builder.net in
  let cfg = T.config ~tstop:2e-9 ~max_step:10e-12 () in
  ignore (T.run (E.compile net) net cfg);
  let best = ref infinity and iters = ref 0 and accepted = ref 0 in
  for _ = 1 to passes do
    let sim = E.compile net in
    let t0 = Cml_telemetry.Clock.now_ns () in
    let r = T.run sim net cfg in
    let dt = Int64.to_float (Int64.sub (Cml_telemetry.Clock.now_ns ()) t0) in
    if dt < !best then begin
      best := dt;
      iters := (E.solver_stats sim).E.newton_iters;
      accepted := r.T.stats.T.accepted_steps
    end
  done;
  (!best, !iters, !accepted)

let telemetry_overhead ?json () =
  Util.section "telemetry-overhead" "Disabled-tracing cost of the telemetry span hooks";
  let baseline_ns =
    match json with
    | None -> None
    | Some path -> (
        match List.rev (load_history path) with
        | [] -> None
        | last :: _ -> List.assoc_opt chain_transient_name (entry_kernels last))
  in
  let pair = disabled_pair_ns () in
  let observe = disabled_observe_ns () in
  let progress = disabled_progress_ns () in
  let introspect = disabled_introspect_ns () in
  let run_ns, iters, accepted = chain_transient_min ~passes:10 in
  (* hook executions per transient: one newton_solve pair per Newton
     call (over-counted by iterations), the transient span, and the
     handful of dc / sweep / metrics-publish sites *)
  let hooks = iters + 16 in
  let hook_ns = pair *. float_of_int hooks in
  (* observer dispatches per transient: one per accepted step plus the
     initial point *)
  let observes = accepted + 1 in
  let observe_ns = observe *. float_of_int observes in
  (* progress hooks per transient: one note_step per accepted step *)
  let progress_ns = progress *. float_of_int (accepted + 1) in
  (* introspection hooks per transient: one note_newton per Newton
     iteration dominates; note_dt / note_lte are one per step, already
     covered by the iteration count *)
  let introspect_ns = introspect *. float_of_int (iters + accepted + 1) in
  Printf.printf "  disabled start/finish pair      %10.2f ns\n" pair;
  Printf.printf "  disabled observer dispatch      %10.2f ns\n" observe;
  Printf.printf "  disabled progress hook          %10.2f ns\n" progress;
  Printf.printf "  disabled introspection hook     %10.2f ns\n" introspect;
  Printf.printf "  chain transient (min of 10)     %10.2f ms  (%d newton iterations)\n"
    (run_ns /. 1e6) iters;
  Printf.printf "  worst-case hook time            %10.2f us  (%d hooks)\n" (hook_ns /. 1e3)
    hooks;
  Printf.printf "  worst-case observer time        %10.2f us  (%d accepted steps)\n"
    (observe_ns /. 1e3) observes;
  Printf.printf "  worst-case progress time        %10.2f us  (%d accepted steps)\n"
    (progress_ns /. 1e3) (accepted + 1);
  Printf.printf "  worst-case introspection time   %10.2f us  (%d hook sites)\n"
    (introspect_ns /. 1e3)
    (iters + accepted + 1);
  let denom, denom_what =
    match baseline_ns with
    | Some b ->
        Printf.printf "  recorded baseline transient     %10.2f ms  (current/baseline %.2fx)\n"
          (b /. 1e6) (run_ns /. b);
        (b, "recorded baseline")
    | None ->
        print_endline "  (no recorded baseline entry; gating against the current run)";
        (run_ns, "current run")
  in
  let frac = hook_ns /. denom in
  Printf.printf "  hook share of the transient     %10.4f %%\n" (frac *. 100.0);
  let ok = frac < overhead_limit in
  Util.verdict ok
    (Printf.sprintf "disabled tracing costs < %.0f%% of the %s chain transient"
       (overhead_limit *. 100.0) denom_what);
  let obs_frac = observe_ns /. denom in
  Printf.printf "  observer share of the transient %10.4f %%\n" (obs_frac *. 100.0);
  let obs_ok = obs_frac < overhead_limit in
  Util.verdict obs_ok
    (Printf.sprintf "disabled observers cost < %.0f%% of the %s chain transient"
       (overhead_limit *. 100.0) denom_what);
  let prog_frac = progress_ns /. denom in
  Printf.printf "  progress share of the transient %10.4f %%\n" (prog_frac *. 100.0);
  let prog_ok = prog_frac < overhead_limit in
  Util.verdict prog_ok
    (Printf.sprintf "disabled progress hooks cost < %.0f%% of the %s chain transient"
       (overhead_limit *. 100.0) denom_what);
  let intro_frac = introspect_ns /. denom in
  Printf.printf "  introspect share of transient   %10.4f %%\n" (intro_frac *. 100.0);
  let intro_ok = intro_frac < overhead_limit in
  Util.verdict intro_ok
    (Printf.sprintf "disabled introspection hooks cost < %.0f%% of the %s chain transient"
       (overhead_limit *. 100.0) denom_what);
  let drifted =
    match baseline_ns with Some b -> run_ns > regression_limit *. b | None -> false
  in
  if drifted then
    Util.verdict false
      (Printf.sprintf "chain transient slower than %.2fx the recorded baseline"
         regression_limit);
  if (not ok) || (not obs_ok) || (not prog_ok) || (not intro_ok) || drifted then exit 1
