(* Bechamel micro-benchmarks of the simulator kernels (sparse/dense
   LU, the numeric-only refactorization, Newton DC, one transient of
   the paper's 8-buffer chain, waveform measurements) plus two
   system-level probes of the execution runtime:

   - solver reuse: how many full symbolic factorizations vs cheap
     numeric refactorizations a chain transient performs (the sparse
     engine must pay the symbolic cost at most once per Jacobian
     pattern, plus pivot-degradation fallbacks);
   - campaign scaling: wall-clock of the same defect campaign at
     jobs = 1 and jobs = default, with a byte-identical summary check.

   [run ~json:"BENCH_spice.json" ()] additionally dumps every number
   as JSON so the timing trajectory is machine-readable across PRs. *)

module E = Cml_spice.Engine
module T = Cml_spice.Transient

let sparse_system n =
  let t = Cml_numerics.Sparse.triplet_create n in
  for i = 0 to n - 1 do
    Cml_numerics.Sparse.add t i i 4.0;
    if i > 0 then Cml_numerics.Sparse.add t i (i - 1) (-1.0);
    if i < n - 1 then Cml_numerics.Sparse.add t i (i + 1) (-1.0);
    if i + 7 < n then Cml_numerics.Sparse.add t i (i + 7) (-0.5)
  done;
  Cml_numerics.Sparse.csc_of_pattern (Cml_numerics.Sparse.compress t)

let dense_system n =
  let m = Cml_numerics.Dense.create n in
  for i = 0 to n - 1 do
    Cml_numerics.Dense.add_entry m i i 4.0;
    if i > 0 then Cml_numerics.Dense.add_entry m i (i - 1) (-1.0);
    if i < n - 1 then Cml_numerics.Dense.add_entry m i (i + 1) (-1.0)
  done;
  m

let tests () =
  let open Bechamel in
  let a200 = sparse_system 200 in
  let d100 = dense_system 100 in
  let rhs200 = Array.init 200 (fun i -> sin (float_of_int i)) in
  let rhs100 = Array.init 100 (fun i -> cos (float_of_int i)) in
  let refactor200 = Cml_numerics.Sparse_lu.factorize a200 in
  let chain = Cml_cells.Chain.build ~stages:8 ~freq:100e6 () in
  let chain_net = chain.Cml_cells.Chain.builder.Cml_cells.Builder.net in
  let wave =
    let times = Array.init 5000 (fun i -> float_of_int i *. 1e-11) in
    let values = Array.map (fun t -> 3.0 +. (0.25 *. sin (2.0 *. Float.pi *. 1e8 *. t))) times in
    Cml_wave.Wave.create times values
  in
  [
    Test.make ~name:"sparse LU factor+solve (n=200)" (Staged.stage (fun () ->
        ignore (Cml_numerics.Sparse_lu.solve (Cml_numerics.Sparse_lu.factorize a200) rhs200)));
    Test.make ~name:"sparse LU refactorize+solve (n=200)" (Staged.stage (fun () ->
        assert (Cml_numerics.Sparse_lu.refactorize refactor200 a200);
        ignore (Cml_numerics.Sparse_lu.solve refactor200 rhs200)));
    Test.make ~name:"dense LU factor+solve (n=100)" (Staged.stage (fun () ->
        ignore (Cml_numerics.Dense.solve d100 rhs100)));
    Test.make ~name:"chain DC operating point" (Staged.stage (fun () ->
        let sim = E.compile chain_net in
        ignore (E.dc_operating_point sim)));
    Test.make ~name:"chain transient (2 ns)" (Staged.stage (fun () ->
        let sim = E.compile chain_net in
        ignore (T.run sim chain_net (T.config ~tstop:2e-9 ~max_step:10e-12 ()))));
    Test.make ~name:"crossing detection (5k samples)" (Staged.stage (fun () ->
        ignore (Cml_wave.Measure.crossings wave ~level:3.0)));
  ]

let kernel_estimates () =
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1500 ~quota:(Time.second 1.0) ~kde:(Some 500) () in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"kernels" ~fmt:"%s %s" (tests ()))
  in
  let results =
    List.map
      (fun instance -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
           ~predictors:[| Measure.run |]) instance raw)
      instances
  in
  let merged = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Measure.run |]) instances results in
  let acc = ref [] in
  Hashtbl.iter
    (fun _ tbl ->
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> acc := (name, est) :: !acc
          | Some _ | None -> ())
        tbl)
    merged;
  List.sort compare !acc

(* one transient of the 8-buffer chain on the sparse backend (forced:
   at 32 unknowns Auto would pick dense); the engine should do its
   symbolic analysis once and refactorize everywhere else *)
let solver_reuse () =
  let chain = Cml_cells.Chain.build ~stages:8 ~freq:100e6 () in
  let net = chain.Cml_cells.Chain.builder.Cml_cells.Builder.net in
  let sim = E.compile ~options:{ E.default_options with E.solver = E.Sparse_solver } net in
  ignore (T.run sim net (T.config ~tstop:2e-9 ~max_step:10e-12 ()));
  (E.unknown_count sim, E.solver_stats sim)

let campaign_defects () =
  let golden = Cml_cells.Chain.build ~stages:8 ~freq:100e6 () in
  let all =
    Cml_defects.Sites.enumerate golden.Cml_cells.Chain.builder.Cml_cells.Builder.net
      ~prefix:"x3" ~pipe_values:[ 1e3; 4e3 ]
  in
  List.filteri (fun i _ -> i < 4) all

let time_campaign ~jobs defects =
  let t0 = Unix.gettimeofday () in
  let c = Cml_defects.Campaign.run ~jobs ~tstop:10e-9 ~defects () in
  (Unix.gettimeofday () -. t0, Cml_defects.Campaign.summary c)

(* ------------------------------------------------------------------ *)
(* minimal JSON emission (no dependency): every key is a known ASCII
   literal, so escaping only has to cover the benchmark names *)

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let write_json path ~jobs ~kernels ~nunk ~(stats : E.solver_stats) ~campaign =
  let t1, tn, ndefects, summaries_match = campaign in
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"cml-dft-perf/1\",\n";
  p "  \"jobs\": %d,\n" jobs;
  p "  \"kernels\": [\n";
  List.iteri
    (fun i (name, ns) ->
      p "    {\"name\": %s, \"ns_per_run\": %.1f}%s\n" (json_string name) ns
        (if i = List.length kernels - 1 then "" else ","))
    kernels;
  p "  ],\n";
  p "  \"solver\": {\n";
  p "    \"chain_unknowns\": %d,\n" nunk;
  p "    \"symbolic_factorizations\": %d,\n" stats.E.symbolic_factorizations;
  p "    \"numeric_refactorizations\": %d\n" stats.E.numeric_refactorizations;
  p "  },\n";
  p "  \"campaign\": {\n";
  p "    \"defects\": %d,\n" ndefects;
  p "    \"jobs1_s\": %.3f,\n" t1;
  p "    \"jobsN_s\": %.3f,\n" tn;
  p "    \"speedup\": %.2f,\n" (if tn > 0.0 then t1 /. tn else 0.0);
  p "    \"summaries_match\": %b\n" summaries_match;
  p "  }\n";
  p "}\n";
  close_out oc

let run ?json () =
  Util.section "perf" "Bechamel micro-benchmarks of the simulation kernels";
  let kernels = kernel_estimates () in
  List.iter (fun (name, est) -> Printf.printf "  %-42s %12.1f ns/run\n" name est) kernels;
  let nunk, stats = solver_reuse () in
  Printf.printf "\nsolver reuse over a chain transient (%d unknowns):\n" nunk;
  Printf.printf "  symbolic factorizations   %6d\n" stats.E.symbolic_factorizations;
  Printf.printf "  numeric refactorizations  %6d\n" stats.E.numeric_refactorizations;
  Util.verdict
    (stats.E.numeric_refactorizations > 10 * max 1 stats.E.symbolic_factorizations)
    "symbolic analysis is amortised across Newton iterations";
  let jobs = Cml_runtime.Pool.default_jobs () in
  let defects = campaign_defects () in
  Printf.printf "\ncampaign scaling (%d defects, jobs = 1 vs %d):\n%!"
    (List.length defects) jobs;
  let t1, s1 = time_campaign ~jobs:1 defects in
  let tn, sn = time_campaign ~jobs defects in
  Printf.printf "  jobs = 1   %8.2f s\n" t1;
  Printf.printf "  jobs = %-3d %8.2f s  (%.2fx)\n" jobs tn (if tn > 0.0 then t1 /. tn else 0.0);
  let summaries_match = s1 = sn in
  Util.verdict summaries_match "parallel summary is byte-identical to sequential";
  match json with
  | None -> ()
  | Some path ->
      write_json path ~jobs ~kernels ~nunk ~stats
        ~campaign:(t1, tn, List.length defects, summaries_match);
      Printf.printf "wrote %s\n" path
