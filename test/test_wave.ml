(* Tests for the cml_wave library: waveform container, interpolation,
   crossing/delay/level/stability measurements, CSV export and ASCII
   plotting. *)

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

let ramp = Cml_wave.Wave.create [| 0.0; 1.0; 2.0; 3.0 |] [| 0.0; 1.0; 2.0; 3.0 |]

let square_ish =
  (* 0 -> 1 -> 0 pulse with finite edges *)
  Cml_wave.Wave.create
    [| 0.0; 1.0; 2.0; 3.0; 4.0; 5.0 |]
    [| 0.0; 0.0; 1.0; 1.0; 0.0; 0.0 |]

(* ------------------------------------------------------------------ *)
(* Wave *)

let test_create_rejects_bad () =
  Alcotest.check_raises "length mismatch" (Invalid_argument "Wave.create: bad lengths")
    (fun () -> ignore (Cml_wave.Wave.create [| 0.0 |] [| 1.0; 2.0 |]));
  Alcotest.check_raises "non-increasing" (Invalid_argument "Wave.create: times must increase")
    (fun () -> ignore (Cml_wave.Wave.create [| 0.0; 0.0 |] [| 1.0; 2.0 |]))

let test_value_at_interpolates () =
  check_close "mid" 1.5 (Cml_wave.Wave.value_at ramp 1.5);
  check_close "clamp left" 0.0 (Cml_wave.Wave.value_at ramp (-1.0));
  check_close "clamp right" 3.0 (Cml_wave.Wave.value_at ramp 10.0)

let test_map_combine () =
  let doubled = Cml_wave.Wave.map (fun v -> 2.0 *. v) ramp in
  check_close "map" 3.0 (Cml_wave.Wave.value_at doubled 1.5);
  let diff = Cml_wave.Wave.combine (fun a b -> a -. b) doubled ramp in
  check_close "combine" 1.5 (Cml_wave.Wave.value_at diff 1.5)

let test_sub_range () =
  let mid = Cml_wave.Wave.sub_range ramp ~t_from:0.5 ~t_to:2.5 in
  Alcotest.(check int) "two samples" 2 (Cml_wave.Wave.length mid);
  check_close "starts at 1" 1.0 (Cml_wave.Wave.t_start mid)

let test_sub_range_empty () =
  (* a window with no samples yields the empty wave, not an exception *)
  let w = Cml_wave.Wave.sub_range ramp ~t_from:1.1 ~t_to:1.2 in
  Alcotest.(check bool) "empty" true (Cml_wave.Wave.is_empty w);
  Alcotest.(check int) "no samples" 0 (Cml_wave.Wave.length w)

let test_empty_wave_totals () =
  let e = Cml_wave.Wave.empty in
  Alcotest.(check bool) "is_empty" true (Cml_wave.Wave.is_empty e);
  Alcotest.(check bool) "vmin nan" true (Float.is_nan (Cml_wave.Wave.vmin e));
  Alcotest.(check bool) "vmax nan" true (Float.is_nan (Cml_wave.Wave.vmax e));
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Cml_wave.Wave.mean e));
  Alcotest.(check bool) "value_at nan" true (Float.is_nan (Cml_wave.Wave.value_at e 1.0));
  Alcotest.(check bool) "t_start nan" true (Float.is_nan (Cml_wave.Wave.t_start e));
  (* sub_range of empty stays empty *)
  Alcotest.(check bool) "sub_range empty" true
    (Cml_wave.Wave.is_empty (Cml_wave.Wave.sub_range e ~t_from:0.0 ~t_to:1.0))

let test_min_max_mean () =
  check_close "min" 0.0 (Cml_wave.Wave.vmin square_ish);
  check_close "max" 1.0 (Cml_wave.Wave.vmax square_ish);
  (* trapezoidal area: 0 + 0.5 + 1 + 0.5 + 0 = 2 over a span of 5 *)
  check_close "mean" 0.4 (Cml_wave.Wave.mean square_ish)

let test_shift () =
  let s = Cml_wave.Wave.shift ramp 10.0 in
  check_close "shifted start" 10.0 (Cml_wave.Wave.t_start s);
  check_close "same value" 1.5 (Cml_wave.Wave.value_at s 11.5)

(* ------------------------------------------------------------------ *)
(* Measure *)

let test_crossings_both_edges () =
  let xs = Cml_wave.Measure.crossings square_ish ~level:0.5 in
  Alcotest.(check int) "two crossings" 2 (List.length xs);
  (match xs with
  | [ a; b ] ->
      check_close "rising at 1.5" 1.5 a;
      check_close "falling at 3.5" 3.5 b
  | _ -> Alcotest.fail "expected 2")

let test_crossings_directional () =
  let rising = Cml_wave.Measure.crossings ~direction:Cml_wave.Measure.Rising square_ish ~level:0.5 in
  let falling =
    Cml_wave.Measure.crossings ~direction:Cml_wave.Measure.Falling square_ish ~level:0.5
  in
  Alcotest.(check int) "one rising" 1 (List.length rising);
  Alcotest.(check int) "one falling" 1 (List.length falling)

let test_first_crossing_after () =
  match Cml_wave.Measure.first_crossing ~after:2.0 square_ish ~level:0.5 with
  | Some t -> check_close "falling edge" 3.5 t
  | None -> Alcotest.fail "expected crossing"

let test_delay_at_reference () =
  let late = Cml_wave.Wave.shift square_ish 0.25 in
  match
    Cml_wave.Measure.delay_at_reference ~reference:0.5 ~from_wave:square_ish ~to_wave:late
      ~after:0.0 ()
  with
  | Some d -> check_close "delay" 0.25 d
  | None -> Alcotest.fail "expected delay"

let test_differential_crossings () =
  let a = Cml_wave.Wave.create [| 0.0; 1.0; 2.0 |] [| 0.0; 1.0; 0.0 |] in
  let b = Cml_wave.Wave.create [| 0.0; 1.0; 2.0 |] [| 1.0; 0.0; 1.0 |] in
  let xs = Cml_wave.Measure.differential_crossings a b in
  Alcotest.(check int) "two crossings" 2 (List.length xs);
  check_close "first" 0.5 (List.nth xs 0);
  check_close "second" 1.5 (List.nth xs 1)

let test_extremes_and_swing () =
  let lo, hi = Cml_wave.Measure.extremes square_ish ~t_from:0.0 in
  check_close "lo" 0.0 lo;
  check_close "hi" 1.0 hi;
  check_close "swing" 1.0 (Cml_wave.Measure.swing square_ish ~t_from:0.0)

let test_levels_robust_to_overshoot () =
  (* a plateau at 1.0 with a brief overshoot to 1.3 *)
  let w =
    Cml_wave.Wave.create
      [| 0.0; 0.1; 0.2; 1.0; 2.0; 3.0 |]
      [| 0.0; 1.3; 1.0; 1.0; 1.0; 1.0 |]
  in
  let _, hi = Cml_wave.Measure.levels w ~t_from:0.0 in
  Alcotest.(check bool)
    (Printf.sprintf "high level near 1.0, got %g" hi)
    true
    (hi > 0.95 && hi < 1.1)

let test_time_to_stability () =
  (* decays to a minimum at t = 3 then rebounds and ripples *)
  let w =
    Cml_wave.Wave.create
      [| 0.0; 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 |]
      [| 3.0; 2.0; 1.0; 0.5; 0.8; 0.6; 0.8 |]
  in
  (match Cml_wave.Measure.time_to_stability ~noise:0.05 w with
  | Some t -> check_close "first minimum" 3.0 t
  | None -> Alcotest.fail "expected stability");
  check_close "vmax after" 0.8 (Cml_wave.Measure.vmax_after w ~t_from:3.0)

let test_time_to_stability_monotone_none () =
  let w = Cml_wave.Wave.create [| 0.0; 1.0; 2.0 |] [| 3.0; 2.0; 1.0 |] in
  Alcotest.(check bool) "no minimum" true (Cml_wave.Measure.time_to_stability w = None)

let test_degenerate_measurements () =
  (* 0- and 1-sample waves: every measurement is total (satellite
     requirement — a diagnosis on a truncated probe must not raise) *)
  let empty = Cml_wave.Wave.empty in
  let single = Cml_wave.Wave.create [| 1.0 |] [| 0.7 |] in
  Alcotest.(check (list (float 1e-9))) "crossings empty" []
    (Cml_wave.Measure.crossings empty ~level:0.5);
  Alcotest.(check (list (float 1e-9))) "crossings single" []
    (Cml_wave.Measure.crossings single ~level:0.5);
  Alcotest.(check bool) "first_crossing empty" true
    (Cml_wave.Measure.first_crossing empty ~level:0.5 = None);
  let lo, hi = Cml_wave.Measure.extremes empty ~t_from:0.0 in
  Alcotest.(check bool) "extremes empty nan" true (Float.is_nan lo && Float.is_nan hi);
  let lo, hi = Cml_wave.Measure.extremes single ~t_from:0.0 in
  check_close "extremes single lo" 0.7 lo;
  check_close "extremes single hi" 0.7 hi;
  let lo, hi = Cml_wave.Measure.levels single ~t_from:0.0 in
  check_close "levels single lo" 0.7 lo;
  check_close "levels single hi" 0.7 hi;
  let lo, hi = Cml_wave.Measure.levels empty ~t_from:0.0 in
  Alcotest.(check bool) "levels empty nan" true (Float.is_nan lo && Float.is_nan hi);
  Alcotest.(check bool) "stability empty" true
    (Cml_wave.Measure.time_to_stability empty = None);
  Alcotest.(check bool) "stability single" true
    (Cml_wave.Measure.time_to_stability single = None);
  Alcotest.(check bool) "settling empty" true (Cml_wave.Measure.settling_time empty = None);
  Alcotest.(check bool) "diff crossings empty" true
    (Cml_wave.Measure.differential_crossings empty empty = [])

let test_period_average () =
  (* sawtooth with period 1: average 0.5 *)
  let times = Array.init 101 (fun i -> float_of_int i /. 10.0) in
  let values = Array.map (fun t -> Float.rem t 1.0) times in
  let w = Cml_wave.Wave.create times values in
  let avg = Cml_wave.Measure.period_average w ~freq:1.0 ~t_from:2.0 in
  Alcotest.(check bool) (Printf.sprintf "avg near 0.45-0.55, got %g" avg) true
    (avg > 0.4 && avg < 0.6)

(* ------------------------------------------------------------------ *)
(* Health *)

(* a square-ish wave between [lo] and [hi], with an optional extra
   excursion [dip] below [lo] in the middle of the low plateau *)
let plateau_wave ?(dip = 0.0) lo hi =
  Cml_wave.Wave.create
    [| 0.0; 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0 |]
    [| hi; hi; lo; lo -. dip; lo; hi; hi; hi |]

let test_health_profile_heals () =
  let nominal_low = 3.05 and nominal_high = 3.3 in
  let waves =
    [
      ("x1", plateau_wave nominal_low nominal_high);
      ("x2", plateau_wave ~dip:0.4 nominal_low nominal_high);  (* faulty stage *)
      ("x3", plateau_wave ~dip:0.15 nominal_low nominal_high);  (* partially recovered *)
      ("x4", plateau_wave nominal_low nominal_high);
    ]
  in
  let p = Cml_wave.Health.profile ~nominal_low ~nominal_high ~t_from:0.0 waves in
  Alcotest.(check bool) "x1 ok" true (List.nth p.Cml_wave.Health.stages 0).Cml_wave.Health.within;
  Alcotest.(check bool) "x2 degraded" false
    (List.nth p.Cml_wave.Health.stages 1).Cml_wave.Health.within;
  check_close ~eps:1e-6 "x2 excursion" 0.4
    (List.nth p.Cml_wave.Health.stages 1).Cml_wave.Health.excursion;
  Alcotest.(check (option int)) "first degraded" (Some 2) p.Cml_wave.Health.first_degraded;
  Alcotest.(check (option int)) "healed at" (Some 4) p.Cml_wave.Health.healed_at;
  Alcotest.(check (option int)) "healing depth" (Some 2) p.Cml_wave.Health.healing_depth;
  Alcotest.(check bool) "renders" true
    (String.length (Cml_wave.Health.render_text p) > 0)

let test_health_profile_unhealed () =
  let nominal_low = 3.05 and nominal_high = 3.3 in
  let waves =
    [
      ("x1", plateau_wave ~dip:0.4 nominal_low nominal_high);
      ("x2", plateau_wave ~dip:0.4 nominal_low nominal_high);
    ]
  in
  let p = Cml_wave.Health.profile ~nominal_low ~nominal_high ~t_from:0.0 waves in
  Alcotest.(check (option int)) "first degraded" (Some 1) p.Cml_wave.Health.first_degraded;
  Alcotest.(check (option int)) "never heals" None p.Cml_wave.Health.healed_at;
  Alcotest.(check (option int)) "no depth" None p.Cml_wave.Health.healing_depth

let test_health_profile_momentary_recovery () =
  (* degraded - ok - degraded again: the healthy stage in the middle
     must not count as healed *)
  let nominal_low = 3.05 and nominal_high = 3.3 in
  let waves =
    [
      ("x1", plateau_wave ~dip:0.4 nominal_low nominal_high);
      ("x2", plateau_wave nominal_low nominal_high);
      ("x3", plateau_wave ~dip:0.4 nominal_low nominal_high);
      ("x4", plateau_wave nominal_low nominal_high);
    ]
  in
  let p = Cml_wave.Health.profile ~nominal_low ~nominal_high ~t_from:0.0 waves in
  Alcotest.(check (option int)) "first degraded" (Some 1) p.Cml_wave.Health.first_degraded;
  Alcotest.(check (option int)) "healed only from x4" (Some 4) p.Cml_wave.Health.healed_at;
  Alcotest.(check (option int)) "depth 3" (Some 3) p.Cml_wave.Health.healing_depth

let test_health_profile_degenerate_wave_degrades () =
  (* an empty probe reads as degraded, never as silently healthy *)
  let p =
    Cml_wave.Health.profile ~nominal_low:3.05 ~nominal_high:3.3 ~t_from:0.0
      [ ("x1", Cml_wave.Wave.empty) ]
  in
  Alcotest.(check (option int)) "degraded" (Some 1) p.Cml_wave.Health.first_degraded

let test_detector_timeline () =
  (* detector output: quiescent 3.3, drops to a floor of 2.9 crossing
     2.95 on the way down, then ripples slightly *)
  let w =
    Cml_wave.Wave.create
      [| 0.0; 1e-9; 2e-9; 3e-9; 4e-9; 5e-9; 6e-9 |]
      [| 3.3; 3.1; 2.9; 2.92; 2.9; 2.92; 2.9 |]
  in
  let t = Cml_wave.Health.detector_timeline ~quiescent:3.3 ~threshold:2.95 w in
  (match t.Cml_wave.Health.flag_time with
  | Some ft -> check_close ~eps:1e-12 "flag at 2.95 crossing" 1.75e-9 ft
  | None -> Alcotest.fail "expected a flag time");
  (match t.Cml_wave.Health.t_stability with
  | Some ts -> check_close ~eps:1e-12 "first minimum" 2e-9 ts
  | None -> Alcotest.fail "expected stability");
  check_close ~eps:1e-6 "vmax after stability" 2.92 t.Cml_wave.Health.vmax;
  check_close ~eps:1e-6 "drop" 0.4 t.Cml_wave.Health.drop;
  Alcotest.(check bool) "renders" true
    (String.length (Cml_wave.Health.render_timeline t) > 0)

(* ------------------------------------------------------------------ *)
(* Csv / Ascii_plot *)

let test_csv_roundtrip_format () =
  let path = Filename.temp_file "cmlwave" ".csv" in
  Cml_wave.Csv.write ~path [ ("a", ramp); ("b", Cml_wave.Wave.map (fun v -> -.v) ramp) ];
  let ic = open_in path in
  let header = input_line ic in
  let first = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header" "time,a,b" header;
  Alcotest.(check bool) "first row has 3 fields" true
    (List.length (String.split_on_char ',' first) = 3)

let test_csv_rejects_mismatch () =
  let short = Cml_wave.Wave.create [| 0.0; 1.0 |] [| 0.0; 1.0 |] in
  let path = Filename.temp_file "cmlwave" ".csv" in
  (try
     Alcotest.check_raises "mismatch" (Invalid_argument "Csv.write: length mismatch for b")
       (fun () -> Cml_wave.Csv.write ~path [ ("a", ramp); ("b", short) ])
   with e ->
     Sys.remove path;
     raise e);
  Sys.remove path

let test_csv_table () =
  let path = Filename.temp_file "cmlwave" ".csv" in
  Cml_wave.Csv.write_table ~path ~header:[ "x"; "y" ] [ [ 1.0; 2.0 ]; [ 3.0; 4.0 ] ];
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  Alcotest.(check int) "3 lines" 3 (List.length !lines)

let test_vcd_analog () =
  let vcd = Cml_wave.Vcd_analog.to_string ~timescale_fs:1000 [ ("ramp", ramp) ] in
  Alcotest.(check bool) "has real var" true
    (let needle = "$var real 64" in
     let ln = String.length needle and lv = String.length vcd in
     let rec scan i = i + ln <= lv && (String.sub vcd i ln = needle || scan (i + 1)) in
     scan 0)

let test_vcd_analog_golden_multiprobe () =
  (* exact golden dump for a two-probe trace: pins down the header
     layout, identifier assignment, $dumpvars block and %.9g value
     formatting that external VCD viewers depend on *)
  let times = [| 0.0; 1e-12; 2e-12 |] in
  let a = Cml_wave.Wave.create times [| 0.0; 0.5; 1.0 |] in
  let b = Cml_wave.Wave.create times [| 1.0; 0.5; 0.0 |] in
  let got = Cml_wave.Vcd_analog.to_string ~timescale_fs:1000 [ ("a", a); ("b", b) ] in
  let expected =
    String.concat "\n"
      [
        "$version cml-dft analog dump $end";
        "$timescale 1000 fs $end";
        "$scope module analog $end";
        "$var real 64 ! a $end";
        "$var real 64 \" b $end";
        "$upscope $end";
        "$enddefinitions $end";
        "#0";
        "$dumpvars";
        "r0 !";
        "r1 \"";
        "$end";
        "#1";
        "r0.5 !";
        "r0.5 \"";
        "#2";
        "r1 !";
        "r0 \"";
        "";
      ]
  in
  Alcotest.(check string) "golden vcd" expected got

let test_vcd_analog_mismatch () =
  let short = Cml_wave.Wave.create [| 0.0; 1.0 |] [| 0.0; 1.0 |] in
  match Cml_wave.Vcd_analog.to_string [ ("a", ramp); ("b", short) ] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_ascii_plot_renders () =
  let s = Cml_wave.Ascii_plot.render [ ("ramp", ramp) ] in
  Alcotest.(check bool) "mentions series" true
    (String.length s > 0
    &&
    let re_found = ref false in
    String.iter (fun c -> if c = '*' then re_found := true) s;
    !re_found)

let test_ascii_plot_xy () =
  let s =
    Cml_wave.Ascii_plot.render_xy ~xlabel:"n"
      [ ("a", [ (1.0, 1.0); (2.0, 4.0) ]); ("b", [ (1.0, 2.0) ]) ]
  in
  Alcotest.(check bool) "non-empty" true (String.length s > 100)

(* ------------------------------------------------------------------ *)
(* Properties *)

let wave_gen =
  QCheck2.Gen.(
    int_range 2 60 >>= fun n ->
    array_size (return n) (float_range (-5.0) 5.0) >>= fun values ->
    float_range 0.1 2.0 >>= fun dt ->
    let times = Array.init n (fun i -> dt *. float_of_int i) in
    return (Cml_wave.Wave.create times values))

let prop_value_at_within_bounds =
  QCheck2.Test.make ~name:"interpolation stays within min/max" ~count:200
    QCheck2.Gen.(pair wave_gen (float_range 0.0 120.0))
    (fun (w, t) ->
      let v = Cml_wave.Wave.value_at w t in
      v >= Cml_wave.Wave.vmin w -. 1e-9 && v <= Cml_wave.Wave.vmax w +. 1e-9)

let prop_value_at_hits_samples =
  QCheck2.Test.make ~name:"interpolation is exact at sample points" ~count:200 wave_gen
    (fun w ->
      let ok = ref true in
      Array.iteri
        (fun i t ->
          if Float.abs (Cml_wave.Wave.value_at w t -. w.Cml_wave.Wave.values.(i)) > 1e-9 then
            ok := false)
        w.Cml_wave.Wave.times;
      !ok)

let prop_crossings_bracket_level =
  QCheck2.Test.make ~name:"every reported crossing really brackets the level" ~count:200
    QCheck2.Gen.(pair wave_gen (float_range (-4.0) 4.0))
    (fun (w, level) ->
      List.for_all
        (fun t ->
          Float.abs (Cml_wave.Wave.value_at w t -. level) < 1e-6
          && t >= Cml_wave.Wave.t_start w
          && t <= Cml_wave.Wave.t_end w)
        (Cml_wave.Measure.crossings w ~level))

let prop_mean_within_bounds =
  QCheck2.Test.make ~name:"trapezoidal mean lies within extremes" ~count:200 wave_gen
    (fun w ->
      let m = Cml_wave.Wave.mean w in
      m >= Cml_wave.Wave.vmin w -. 1e-9 && m <= Cml_wave.Wave.vmax w +. 1e-9)

let prop_swing_nonnegative =
  QCheck2.Test.make ~name:"swing is non-negative" ~count:200 wave_gen (fun w ->
      Cml_wave.Measure.swing w ~t_from:(Cml_wave.Wave.t_start w) >= 0.0)

let () =
  let qc = List.map (fun t -> QCheck_alcotest.to_alcotest t) in
  Alcotest.run "wave"
    [
      ( "wave",
        [
          Alcotest.test_case "create validation" `Quick test_create_rejects_bad;
          Alcotest.test_case "interpolation" `Quick test_value_at_interpolates;
          Alcotest.test_case "map/combine" `Quick test_map_combine;
          Alcotest.test_case "sub_range" `Quick test_sub_range;
          Alcotest.test_case "sub_range empty" `Quick test_sub_range_empty;
          Alcotest.test_case "empty wave totals" `Quick test_empty_wave_totals;
          Alcotest.test_case "min/max/mean" `Quick test_min_max_mean;
          Alcotest.test_case "shift" `Quick test_shift;
        ] );
      ( "measure",
        [
          Alcotest.test_case "crossings both edges" `Quick test_crossings_both_edges;
          Alcotest.test_case "crossings directional" `Quick test_crossings_directional;
          Alcotest.test_case "first crossing after" `Quick test_first_crossing_after;
          Alcotest.test_case "delay at reference" `Quick test_delay_at_reference;
          Alcotest.test_case "differential crossings" `Quick test_differential_crossings;
          Alcotest.test_case "extremes and swing" `Quick test_extremes_and_swing;
          Alcotest.test_case "robust levels" `Quick test_levels_robust_to_overshoot;
          Alcotest.test_case "time to stability" `Quick test_time_to_stability;
          Alcotest.test_case "stability none when monotone" `Quick
            test_time_to_stability_monotone_none;
          Alcotest.test_case "period average" `Quick test_period_average;
          Alcotest.test_case "degenerate measurements" `Quick test_degenerate_measurements;
        ] );
      ( "health",
        [
          Alcotest.test_case "profile heals" `Quick test_health_profile_heals;
          Alcotest.test_case "profile unhealed" `Quick test_health_profile_unhealed;
          Alcotest.test_case "momentary recovery not healed" `Quick
            test_health_profile_momentary_recovery;
          Alcotest.test_case "degenerate wave reads degraded" `Quick
            test_health_profile_degenerate_wave_degrades;
          Alcotest.test_case "detector timeline" `Quick test_detector_timeline;
        ] );
      ( "io",
        [
          Alcotest.test_case "csv format" `Quick test_csv_roundtrip_format;
          Alcotest.test_case "csv mismatch" `Quick test_csv_rejects_mismatch;
          Alcotest.test_case "csv table" `Quick test_csv_table;
          Alcotest.test_case "vcd analog" `Quick test_vcd_analog;
          Alcotest.test_case "vcd analog golden multiprobe" `Quick
            test_vcd_analog_golden_multiprobe;
          Alcotest.test_case "vcd analog mismatch" `Quick test_vcd_analog_mismatch;
          Alcotest.test_case "ascii plot" `Quick test_ascii_plot_renders;
          Alcotest.test_case "ascii xy" `Quick test_ascii_plot_xy;
        ] );
      ( "properties",
        qc
          [
            prop_value_at_within_bounds;
            prop_value_at_hits_samples;
            prop_crossings_bracket_level;
            prop_mean_within_bounds;
            prop_swing_nonnegative;
          ] );
    ]
