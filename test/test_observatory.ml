(* Live run observatory: the streaming event pipeline end to end.

   - Json non-finite floats serialize as null and finite floats
     round-trip (qcheck property);
   - the ETA estimator never raises its estimate when more lanes
     retire at a fixed clock reading;
   - a real campaign's event stream normalizes identically at
     jobs = 1 and jobs = 4, and replaying it agrees with the run
     manifest (variant count, class histogram, step totals);
   - the watch state fold and renderer are pure functions of the
     stream;
   - trend analysis units (sparkline scaling, regression flags,
     history parsing);
   - pool busy/idle accounting attributes every item exactly once. *)

module Json = Cml_telemetry.Json
module Ev = Cml_telemetry.Events
module Trend = Cml_telemetry.Trend
module Manifest = Cml_telemetry.Manifest
module Pool = Cml_runtime.Pool
module D = Cml_defects.Defect

(* ------------------------------------------------------------------ *)
(* Json: numbers always produce a parseable document *)

let float_gen =
  QCheck2.Gen.(
    oneof
      [
        float;
        oneofl [ Float.nan; Float.infinity; Float.neg_infinity; 0.0; -0.0; 1e300; -1e-300 ];
      ])

let prop_json_float_roundtrip =
  QCheck2.Test.make ~name:"Json floats round-trip; non-finite serialize as null" ~count:500
    float_gen (fun f ->
      let s = Json.to_compact_string (Json.Obj [ ("v", Json.Num f) ]) in
      match Json.member "v" (Json.parse s) with
      | Some Json.Null -> not (Float.is_finite f)
      | Some (Json.Num g) ->
          (* the writer keeps 6 significant digits: worst case is half
             an ulp at the 6th digit, 5e-6 relative *)
          Float.is_finite f
          && (f = g || Float.abs (f -. g) <= 5e-6 *. Float.max (Float.abs f) (Float.abs g))
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Estimator: retirement never pushes the ETA up *)

let prop_eta_monotone =
  QCheck2.Test.make ~name:"ETA non-increasing as lanes retire at a fixed clock" ~count:200
    QCheck2.Gen.(triple (int_range 1 1000) (int_range 0 1000) (int_range 0 1000))
    (fun (total, a, b) ->
      let a = min a total and b = min b total in
      let lo = min a b and hi = max a b in
      let now_s = 10.0 in
      let eta completed =
        let e = Ev.Estimator.create ~total ~now_s:0.0 in
        Ev.Estimator.note e ~completed;
        Ev.Estimator.eta_s e ~now_s
      in
      match (eta lo, eta hi) with
      | None, _ -> lo = 0 (* no estimate until the first retirement *)
      | Some _, None -> false
      | Some e_lo, Some e_hi -> e_hi <= e_lo +. 1e-9)

let test_eta_failed_counts_as_retired () =
  (* note takes retired lanes whatever their fate; a second note with
     a smaller count must not move the estimate backwards *)
  let e = Ev.Estimator.create ~total:10 ~now_s:0.0 in
  Ev.Estimator.note e ~completed:4;
  let eta4 = Ev.Estimator.eta_s e ~now_s:2.0 in
  Ev.Estimator.note e ~completed:2;
  Alcotest.(check bool) "note is monotonic" true (Ev.Estimator.eta_s e ~now_s:2.0 = eta4);
  match eta4 with
  | Some v -> Alcotest.(check (float 1e-9)) "eta = remaining / rate" 3.0 v
  | None -> Alcotest.fail "no estimate after retirement"

(* ------------------------------------------------------------------ *)
(* Determinism + manifest parity on a real campaign *)

let campaign_defects =
  [
    D.Pipe { device = "x2.q3"; r = 4e3 };
    D.Terminal_short { device = "x2.q2"; t1 = "c"; t2 = "e" };
    D.Open_terminal { device = "x2.q1"; terminal = "b" };
  ]

let run_campaign_with_events ~jobs ~events ~manifest =
  Ev.install (Ev.open_sink events);
  Fun.protect ~finally:Ev.close @@ fun () ->
  Cml_defects.Campaign.run ~stages:4 ~dut:2 ~freq:1e9 ~tstop:4e-9 ~jobs ~manifest
    ~defects:campaign_defects ()

let with_tmp names f =
  let paths = List.map (fun n -> Filename.temp_file "cml_obs" n) names in
  Fun.protect ~finally:(fun () -> List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths)
  @@ fun () -> f paths

let count_ev name docs =
  List.length
    (List.filter (fun j -> Json.member "ev" j = Some (Json.Str name)) docs)

let test_events_replay_parity () =
  with_tmp [ "_ev1.jsonl"; "_man1.json"; "_ev4.jsonl"; "_man4.json" ]
  @@ function
  | [ ev1; man1; ev4; man4 ] ->
      let c1 = run_campaign_with_events ~jobs:1 ~events:ev1 ~manifest:man1 in
      let _c4 = run_campaign_with_events ~jobs:4 ~events:ev4 ~manifest:man4 in
      let d1 = Ev.read_file ev1 and d4 = Ev.read_file ev4 in
      (* determinism: the normalized streams are structurally equal *)
      Alcotest.(check bool) "normalized streams identical at jobs=1 and jobs=4" true
        (Ev.normalize d1 = Ev.normalize d4);
      (* framing: one run_start, one utilization, one run_end, one
         variant_start/variant_done pair per defect *)
      Alcotest.(check int) "one run_start" 1 (count_ev "run_start" d1);
      Alcotest.(check int) "one utilization" 1 (count_ev "utilization" d1);
      Alcotest.(check int) "one run_end" 1 (count_ev "run_end" d1);
      let m = Manifest.of_json (Json.parse_file man1) in
      Alcotest.(check int) "variant_done count = manifest variants"
        (List.length m.Manifest.variants)
        (count_ev "variant_done" d1);
      Alcotest.(check int) "variant_start count = manifest variants"
        (List.length m.Manifest.variants)
        (count_ev "variant_start" d1);
      (* parity: the run_end class histogram is the manifest's *)
      let run_end =
        List.find (fun j -> Json.member "ev" j = Some (Json.Str "run_end")) d1
      in
      let classes =
        match Json.member "classes" run_end with
        | Some (Json.Obj kvs) ->
            List.map (fun (k, v) -> (k, int_of_float (Option.get (Json.to_float v)))) kvs
        | _ -> []
      in
      Alcotest.(check (list (pair string int)))
        "run_end classes = manifest class histogram" (Manifest.class_histogram m) classes;
      (* step totals: summed variant_done accepted_steps match the
         campaign's own variant telemetry *)
      let streamed_steps =
        List.fold_left
          (fun acc j ->
            if Json.member "ev" j = Some (Json.Str "variant_done") then
              match Json.member "accepted_steps" j with
              | Some (Json.Num n) -> acc + int_of_float n
              | _ -> acc
            else acc)
          0 d1
      in
      let campaign_steps =
        List.fold_left
          (fun acc (v : Manifest.variant) ->
            acc
            + int_of_float
                (Option.value ~default:0.0
                   (List.assoc_opt "accepted_steps" v.Manifest.v_metrics)))
          0 c1.Cml_defects.Campaign.variants
      in
      Alcotest.(check int) "streamed steps = campaign steps" campaign_steps streamed_steps;
      (* the utilization table accounts at least one item per variant
         and never more busy time than a domain could have *)
      List.iter
        (fun (u : Ev.domain_util) ->
          Alcotest.(check bool) "busy_s non-negative" true (u.Ev.du_busy_s >= 0.0);
          Alcotest.(check bool) "busy <= wall (single domain cannot exceed the run)" true
            (u.Ev.du_busy_s <= c1.Cml_defects.Campaign.wall_s *. 1.5))
        c1.Cml_defects.Campaign.utilization;
      let items =
        List.fold_left (fun a (u : Ev.domain_util) -> a + u.Ev.du_items) 0
          c1.Cml_defects.Campaign.utilization
      in
      Alcotest.(check bool) "utilization items cover the variants" true
        (items >= List.length campaign_defects)
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Watch state fold: a pure function of the stream *)

let synthetic_stream =
  String.concat "\n"
    [
      {|{"ev":"run_start","schema":"cml-dft-events/1","kind":"campaign","total":2,"options":{"freq":"1e9"},"timing":{"t_s":0.0,"jobs":2,"cores":4}}|};
      {|{"ev":"variant_start","idx":0,"name":"pipe","timing":{"t_s":0.1}}|};
      {|{"ev":"variant_done","idx":0,"name":"pipe","classes":["excessive-excursion"],"healing":"depth=2","accepted_steps":100,"timing":{"t_s":0.5,"seconds":0.4}}|};
      {|{"ev":"heartbeat","done":1,"failed":0,"total":2,"accepted_steps":100,"timing":{"t_s":0.5,"eta_s":0.5,"rate_per_s":2.0,"domains":[{"id":0,"started":1,"done":1,"failed":0,"steps":100,"label":"pipe"}]}}|};
      {|{"ev":"warning","key":"pool.oversubscribed","message":"8 jobs on 4 cores","timing":{"t_s":0.6}}|};
      {|{"ev":"variant_start","idx":1,"name":"short","timing":{"t_s":0.6}}|};
      {|{"ev":"variant_done","idx":1,"name":"short","classes":["failed"],"accepted_steps":0,"timing":{"t_s":0.9,"seconds":0.3}}|};
      {|{"ev":"utilization","timing":{"t_s":1.0,"wall_s":1.0,"domains":[{"id":0,"busy_s":0.7,"busy_ratio":0.7,"items":2,"longest_stall_s":0.1}]}}|};
      {|{"ev":"run_end","kind":"campaign","done":1,"failed":1,"total":2,"classes":{"excessive-excursion":1,"failed":1},"timing":{"t_s":1.0}}|};
    ]

let test_watch_state_fold () =
  let st = Ev.state_of_events (Ev.read_string synthetic_stream) in
  Alcotest.(check string) "kind" "campaign" st.Ev.w_kind;
  Alcotest.(check int) "total" 2 st.Ev.w_total;
  Alcotest.(check int) "done" 1 st.Ev.w_done;
  Alcotest.(check int) "failed" 1 st.Ev.w_failed;
  Alcotest.(check int) "steps" 100 st.Ev.w_steps;
  Alcotest.(check bool) "finished" true st.Ev.w_finished;
  Alcotest.(check (list (pair string int))) "healing histogram" [ ("depth=2", 1) ]
    st.Ev.w_healing;
  Alcotest.(check int) "one warning retained" 1 (List.length st.Ev.w_warnings);
  Alcotest.(check (option (float 1e-9))) "wall from utilization" (Some 1.0) st.Ev.w_wall_s;
  (match st.Ev.w_util with
  | [ u ] ->
      Alcotest.(check int) "util domain" 0 u.Ev.du_domain;
      Alcotest.(check (float 1e-9)) "util busy ratio" 0.7 u.Ev.du_busy_ratio
  | _ -> Alcotest.fail "expected one utilization row");
  let text = Ev.render_state st in
  let has sub =
    Alcotest.(check bool) (Printf.sprintf "render mentions %S" sub) true
      (let n = String.length text and m = String.length sub in
       let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
       go 0)
  in
  has "campaign";
  has "2/2";
  has "excessive-excursion";
  has "run complete";
  (* partial stream: not finished, mid-run counters *)
  let mid =
    Ev.state_of_events
      (Ev.read_string (String.concat "\n" (List.filteri (fun i _ -> i < 4)
         (String.split_on_char '\n' synthetic_stream))))
  in
  Alcotest.(check bool) "mid-stream not finished" false mid.Ev.w_finished;
  Alcotest.(check int) "mid-stream done" 1 mid.Ev.w_done;
  Alcotest.(check (option (float 1e-9))) "mid-stream eta" (Some 0.5) mid.Ev.w_eta_s

(* ------------------------------------------------------------------ *)
(* Trend units *)

let test_trend_sparkline () =
  Alcotest.(check string) "empty series" "" (Trend.sparkline []);
  let s = Trend.sparkline [ 1.0; 2.0; 3.0 ] in
  Alcotest.(check int) "one glyph (3 utf-8 bytes) per point" 9 (String.length s);
  Alcotest.(check string) "rising series spans the levels" "\xe2\x96\x81\xe2\x96\x84\xe2\x96\x88" s;
  Alcotest.(check string) "flat series sits mid-scale" "\xe2\x96\x84\xe2\x96\x84"
    (Trend.sparkline [ 5.0; 5.0 ])

let perf_entry ~jobs ~cores kernels campaign =
  Json.Obj
    ([
       ("jobs", Json.Num (float_of_int jobs));
       ("cores", Json.Num (float_of_int cores));
       ( "kernels",
         Json.List
           (List.map
              (fun (name, ns) ->
                Json.Obj [ ("name", Json.Str name); ("ns_per_run", Json.Num ns) ])
              kernels) );
     ]
    @
    match campaign with
    | Some (t1, tn) ->
        [ ("campaign", Json.Obj [ ("jobs1_s", Json.Num t1); ("jobsN_s", Json.Num tn) ]) ]
    | None -> [])

let test_trend_regression_flags () =
  let history =
    [
      perf_entry ~jobs:4 ~cores:4 [ ("solve", 100.0); ("batched campaign", 1000.0) ]
        (Some (10.0, 4.0));
      perf_entry ~jobs:4 ~cores:4 [ ("solve", 130.0); ("batched campaign", 1400.0) ]
        (Some (10.5, 4.1));
    ]
  in
  (match Trend.kernel_trends history with
  | [ solve; batched ] ->
      (* 1.3x > the 1.25x kernel limit *)
      Alcotest.(check bool) "solve regressed at 1.25x" true solve.Trend.k_regressed;
      (* 1.4x < the 1.5x whole-workload limit *)
      Alcotest.(check bool) "batched campaign tolerated at 1.5x" false
        batched.Trend.k_regressed;
      Alcotest.(check int) "series length" 2 (List.length solve.Trend.k_series)
  | _ -> Alcotest.fail "expected two kernel rows");
  match Trend.campaign_trend history with
  | Some c ->
      Alcotest.(check int) "probe matches both entries" 2 (List.length c.Trend.c_series);
      Alcotest.(check bool) "probe within limits" false c.Trend.c_regressed
  | None -> Alcotest.fail "expected a campaign trend"

let test_trend_baseline_matching () =
  (* the probe only compares entries recorded at the latest (jobs,
     cores) setting: a slow 2-core entry must not flag a 4-core run *)
  let history =
    [
      perf_entry ~jobs:2 ~cores:2 [] (Some (10.0, 9.0));
      perf_entry ~jobs:4 ~cores:4 [] (Some (10.0, 4.0));
    ]
  in
  match Trend.campaign_trend history with
  | Some c ->
      Alcotest.(check int) "only the matching entry" 1 (List.length c.Trend.c_series);
      Alcotest.(check bool) "no cross-setting regression" false c.Trend.c_regressed
  | None -> Alcotest.fail "expected a campaign trend"

let test_trend_history_parsing () =
  let doc_v2 =
    Json.Obj
      [
        ("schema", Json.Str "cml-dft-perf/2");
        ("history", Json.List [ perf_entry ~jobs:1 ~cores:1 [] None ]);
      ]
  in
  Alcotest.(check int) "v2 history entries" 1 (List.length (Trend.history_of_json doc_v2));
  Alcotest.(check int) "manifest is not a history" 0
    (List.length (Trend.history_of_json (Json.Obj [ ("schema", Json.Str "cml-dft-manifest/1") ])))

(* ------------------------------------------------------------------ *)
(* Pool accounting: every item attributed exactly once *)

let test_pool_utilization_accounting () =
  let before = Pool.utilization () in
  Pool.reset_stall_watermarks ();
  let n = 64 in
  let out =
    Pool.parallel_map ~jobs:4
      (fun i ->
        (* enough work per item that busy time is measurable *)
        let acc = ref 0.0 in
        for k = 1 to 2000 do
          acc := !acc +. sin (float_of_int (i * k))
        done;
        !acc)
      (Array.init n Fun.id)
  in
  Alcotest.(check int) "map computed" n (Array.length out);
  let rows = Pool.utilization_since before in
  let items = List.fold_left (fun a (_, (d : Pool.domain_stats)) -> a + d.Pool.items) 0 rows in
  Alcotest.(check int) "items attributed exactly once" n items;
  List.iter
    (fun (_, (d : Pool.domain_stats)) ->
      Alcotest.(check bool) "busy time non-negative" true (d.Pool.busy_ns >= 0L);
      Alcotest.(check bool) "stall watermark non-negative" true (d.Pool.longest_stall_ns >= 0L))
    rows;
  (* sequential fallback accounts too, against the calling domain *)
  let before = Pool.utilization () in
  ignore (Pool.parallel_map ~jobs:1 (fun i -> i + 1) (Array.init 16 Fun.id));
  let rows = Pool.utilization_since before in
  let items = List.fold_left (fun a (_, (d : Pool.domain_stats)) -> a + d.Pool.items) 0 rows in
  Alcotest.(check int) "sequential path attributed" 16 items

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "observatory"
    [
      ( "json",
        [ QCheck_alcotest.to_alcotest prop_json_float_roundtrip ] );
      ( "estimator",
        [
          QCheck_alcotest.to_alcotest prop_eta_monotone;
          Alcotest.test_case "failed lanes retire the estimate" `Quick
            test_eta_failed_counts_as_retired;
        ] );
      ( "events",
        [
          Alcotest.test_case "jobs=1/4 determinism and manifest parity" `Slow
            test_events_replay_parity;
        ] );
      ( "watch", [ Alcotest.test_case "state fold and render" `Quick test_watch_state_fold ] );
      ( "trend",
        [
          Alcotest.test_case "sparkline scaling" `Quick test_trend_sparkline;
          Alcotest.test_case "regression flags per limit" `Quick test_trend_regression_flags;
          Alcotest.test_case "best-matching baseline rule" `Quick test_trend_baseline_matching;
          Alcotest.test_case "history schema parsing" `Quick test_trend_history_parsing;
        ] );
      ( "pool",
        [
          Alcotest.test_case "utilization accounting" `Quick test_pool_utilization_accounting;
        ] );
    ]
