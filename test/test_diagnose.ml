(* End-to-end tests of the diagnosis pipeline: the paper's 3 kohm
   pipe defect on the DUT stage must read as degraded at the DUT,
   healed within a few stages, and nominal again at the chain output;
   the record must round-trip through JSON and dump a valid VCD. *)

module D = Cml_dft.Diagnose
module H = Cml_wave.Health

let pipe3k = Cml_defects.Defect.Pipe { device = "x3.q3"; r = 3000.0 }

(* one simulation shared by every test *)
let record = lazy (D.run ~defect:pipe3k ())

let test_healing_depth () =
  let d = Lazy.force record in
  Alcotest.(check (option int))
    "fault-free chain is clean" None d.D.nominal.H.first_degraded;
  Alcotest.(check (option int)) "degraded at the DUT stage" (Some d.D.dut)
    d.D.faulty.H.first_degraded;
  (match d.D.faulty.H.healing_depth with
  | Some depth ->
      Alcotest.(check bool)
        (Printf.sprintf "heals within a few stages (got %d)" depth)
        true
        (depth >= 1 && depth <= 4)
  | None -> Alcotest.fail "expected a finite healing depth");
  (* nominal again at the chain output *)
  let last = List.nth d.D.faulty.H.stages (d.D.stages - 1) in
  Alcotest.(check bool) "chain output back within tolerance" true last.H.within

let test_detector_sees_defect () =
  let d = Lazy.force record in
  (* variant-1 detector at the DUT: the static pipe is folded into the
     DC operating point, so the flag is asserted from t = 0 and the
     output sits well below the quiescent rail *)
  Alcotest.(check bool) "vout drop past the 0.15 V detect threshold" true
    (d.D.timeline.H.drop > 0.15);
  (match d.D.timeline.H.flag_time with
  | Some t -> Alcotest.(check (float 1e-12)) "flagged from the start" 0.0 t
  | None -> Alcotest.fail "expected a flag time")

let test_probed_waves () =
  let d = Lazy.force record in
  (* 2 per stage + in.p/in.n + det.vout *)
  Alcotest.(check int) "probe count" ((2 * d.D.stages) + 3) (List.length d.D.waves);
  Alcotest.(check bool) "detector wave present" true
    (not (Cml_wave.Wave.is_empty d.D.detector_wave));
  (* all waves share the faulty run's accepted-step time axis *)
  let n = Cml_wave.Wave.length d.D.detector_wave in
  List.iter
    (fun (name, w) ->
      if Cml_wave.Wave.length w <> n then Alcotest.failf "probe %s on a different axis" name)
    d.D.waves

let test_json_roundtrip () =
  let d = Lazy.force record in
  let d' = D.of_json (D.to_json d) in
  Alcotest.(check string) "defect" d.D.defect d'.D.defect;
  Alcotest.(check (list string)) "classes" d.D.classes d'.D.classes;
  Alcotest.(check int) "stages" d.D.stages d'.D.stages;
  Alcotest.(check int) "dut" d.D.dut d'.D.dut;
  Alcotest.(check (float 1e-9)) "nominal_low" d.D.nominal_low d'.D.nominal_low;
  Alcotest.(check (option int)) "first_degraded" d.D.faulty.H.first_degraded
    d'.D.faulty.H.first_degraded;
  Alcotest.(check (option int)) "healing_depth" d.D.faulty.H.healing_depth
    d'.D.faulty.H.healing_depth;
  Alcotest.(check (float 1e-9)) "drop" d.D.timeline.H.drop d'.D.timeline.H.drop;
  Alcotest.(check int) "stage tables survive"
    (List.length d.D.faulty.H.stages)
    (List.length d'.D.faulty.H.stages);
  (* waves are deliberately not serialised *)
  Alcotest.(check int) "no waves after round trip" 0 (List.length d'.D.waves);
  Alcotest.(check bool) "render still works" true
    (String.length (D.render_text d') > 0)

let test_bad_schema_rejected () =
  match D.of_json (Cml_telemetry.Json.Obj [ ("schema", Cml_telemetry.Json.Str "nope/9") ]) with
  | _ -> Alcotest.fail "expected Bad_diagnosis"
  | exception D.Bad_diagnosis _ -> ()

let test_vcd_emission () =
  let d = Lazy.force record in
  let path = Filename.temp_file "cmldiag" ".vcd" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      D.write_vcd ~timescale_fs:1000 ~path d;
      let ic = open_in path in
      let header = input_line ic in
      let n = in_channel_length ic in
      close_in ic;
      Alcotest.(check string) "vcd header" "$version cml-dft analog dump $end" header;
      Alcotest.(check bool) "non-trivial dump" true (n > 10_000));
  (* a deserialised record has no waves to dump *)
  let d' = D.of_json (D.to_json d) in
  match D.write_vcd ~path:"/dev/null" d' with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_write_read_json_file () =
  let d = Lazy.force record in
  let path = Filename.temp_file "cmldiag" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      D.write_json ~path d;
      let d' = D.read_json ~path in
      Alcotest.(check string) "defect survives the file" d.D.defect d'.D.defect;
      Alcotest.(check (option int)) "healing depth survives the file"
        d.D.faulty.H.healing_depth d'.D.faulty.H.healing_depth)

let () =
  Alcotest.run "diagnose"
    [
      ( "pipe-3k",
        [
          Alcotest.test_case "healing depth" `Slow test_healing_depth;
          Alcotest.test_case "detector sees defect" `Slow test_detector_sees_defect;
          Alcotest.test_case "probed waves" `Slow test_probed_waves;
          Alcotest.test_case "json roundtrip" `Slow test_json_roundtrip;
          Alcotest.test_case "bad schema rejected" `Quick test_bad_schema_rejected;
          Alcotest.test_case "vcd emission" `Slow test_vcd_emission;
          Alcotest.test_case "json file io" `Slow test_write_read_json_file;
        ] );
    ]
