(* Tests of the telemetry layer: span recording and ordering (a qcheck
   property over random span trees), trace-merge determinism across
   parallel campaign runs, metrics-registry parity between warm- and
   cold-started transients, and a golden Chrome-trace fixture. *)

module Trace = Cml_telemetry.Trace
module Metrics = Cml_telemetry.Metrics
module Json = Cml_telemetry.Json
module E = Cml_spice.Engine
module T = Cml_spice.Transient

let with_tracing f =
  Trace.set_enabled true;
  ignore (Trace.drain ());
  Fun.protect
    ~finally:(fun () ->
      ignore (Trace.drain ());
      Trace.set_enabled false)
    f

(* ------------------------------------------------------------------ *)
(* qcheck: recording a random tree of nested spans yields one event
   per node, drained in timestamp order, with intervals that nest or
   are disjoint — never partially overlapping. *)

type tree = Node of int * tree list

let gen_tree =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         let children =
           if n <= 0 then pure [] else list_size (int_range 0 3) (self (n / 2))
         in
         map2 (fun i cs -> Node (i, cs)) (int_range 0 999) children)

let rec record_tree (Node (id, children)) =
  let tok = Trace.start () in
  List.iter record_tree children;
  Trace.finish ~cat:"test" (Printf.sprintf "span%d" id) tok

let rec count_nodes (Node (_, cs)) = List.fold_left (fun a c -> a + count_nodes c) 1 cs

let span_interval ev =
  match ev.Trace.ph with
  | Trace.Complete dur -> (ev.Trace.ts, Int64.add ev.Trace.ts dur)
  | Trace.Instant -> (ev.Trace.ts, ev.Trace.ts)

let prop_span_nesting =
  QCheck2.Test.make ~name:"span trees drain ordered and properly nested" ~count:60 gen_tree
    (fun tree ->
      with_tracing @@ fun () ->
      record_tree tree;
      let evs = Trace.drain () in
      let n = List.length evs in
      if n <> count_nodes tree then false
      else
        let arr = Array.of_list evs in
        let sorted = ref true and nested = ref true in
        for i = 0 to n - 2 do
          if Trace.((arr.(i)).ts > (arr.(i + 1)).ts) then sorted := false
        done;
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            let s1, e1 = span_interval arr.(i) and s2, e2 = span_interval arr.(j) in
            (* partial overlap: starts strictly inside [i] but ends
               strictly after it (ties from clock granularity pass) *)
            if s2 > s1 && s2 < e1 && e2 > e1 then nested := false
          done
        done;
        !sorted && !nested)

(* ------------------------------------------------------------------ *)
(* parallel campaigns: the merged trace is deterministic — the same
   span population regardless of the worker-domain count, and the
   drained stream is timestamp-ordered even when several domains
   recorded concurrently. *)

let campaign_defects () =
  let golden = Cml_cells.Chain.build ~stages:3 ~freq:1e9 () in
  let all =
    Cml_defects.Sites.enumerate golden.Cml_cells.Chain.builder.Cml_cells.Builder.net
      ~prefix:"x2" ~pipe_values:[ 2e3 ]
  in
  List.filteri (fun i _ -> i < 6) all

let campaign_spans ~jobs defects =
  with_tracing @@ fun () ->
  let c = Cml_defects.Campaign.run ~stages:3 ~dut:2 ~freq:1e9 ~tstop:2e-9 ~jobs ~defects () in
  let evs = Trace.drain () in
  let arr = Array.of_list evs in
  for i = 0 to Array.length arr - 2 do
    Alcotest.(check bool) "merged stream is timestamp-ordered" true
      Trace.((arr.(i)).ts <= (arr.(i + 1)).ts)
  done;
  let counts =
    List.sort compare (List.map (fun (name, a) -> (name, a.Trace.sa_count)) (Trace.aggregate evs))
  in
  (Cml_defects.Campaign.summary c, counts)

let test_campaign_merge_determinism () =
  let defects = campaign_defects () in
  let s1, seq = campaign_spans ~jobs:1 defects in
  let s2, par = campaign_spans ~jobs:2 defects in
  let _, par' = campaign_spans ~jobs:2 defects in
  Alcotest.(check (list (pair string int))) "summaries agree" s1 s2;
  (* one "variant_batch" span is emitted per slice, and the slice count
     is a function of the job count — drop it before comparing the
     jobs=1 and jobs=2 populations *)
  let drop_batch = List.filter (fun (name, _) -> name <> "variant_batch") in
  Alcotest.(check (list (pair string int)))
    "same span population at jobs=1 and jobs=2" (drop_batch seq) (drop_batch par);
  Alcotest.(check (list (pair string int))) "parallel trace is repeatable" par par';
  Alcotest.(check bool) "campaign spans recorded" true
    (List.mem_assoc "newton_solve" par && List.mem_assoc "variant_batch" par)

(* ------------------------------------------------------------------ *)
(* metrics registry: a warm-started transient reports the same
   registry movement as the cold one (same trajectory), with the
   guided-seed counter only moving on the warm run, and the registry
   deltas agreeing with the per-run [T.stats]. *)

let counter_of name snap =
  match List.assoc_opt name snap with Some (Metrics.Counter n) -> n | _ -> 0

let test_metrics_warm_cold_parity () =
  let chain = Cml_cells.Chain.build ~stages:3 ~freq:1e9 () in
  let net = chain.Cml_cells.Chain.builder.Cml_cells.Builder.net in
  let cfg = T.config ~tstop:2e-9 ~max_step:10e-12 () in
  let s0 = Metrics.snapshot () in
  let cold = T.run (E.compile net) net cfg in
  let s1 = Metrics.snapshot () in
  let warm = T.run ~guide:cold (E.compile net) net cfg in
  let s2 = Metrics.snapshot () in
  let d_cold = Metrics.diff s0 s1 and d_warm = Metrics.diff s1 s2 in
  Alcotest.(check int) "cold run counted once" 1 (counter_of "transient.runs" d_cold);
  Alcotest.(check int) "warm run counted once" 1 (counter_of "transient.runs" d_warm);
  Alcotest.(check int) "same accepted steps warm vs cold"
    (counter_of "transient.accepted_steps" d_cold)
    (counter_of "transient.accepted_steps" d_warm);
  Alcotest.(check int) "registry delta matches stats (cold)" cold.T.stats.T.accepted_steps
    (counter_of "transient.accepted_steps" d_cold);
  Alcotest.(check int) "registry delta matches stats (warm)" warm.T.stats.T.guided_seeds
    (counter_of "transient.guided_seeds" d_warm);
  Alcotest.(check int) "cold run has no guided seeds" 0
    (counter_of "transient.guided_seeds" d_cold);
  Alcotest.(check bool) "warm run used the guide" true
    (counter_of "transient.guided_seeds" d_warm > 0);
  Alcotest.(check int) "newton iters accounted (cold)" cold.T.stats.T.newton_iters
    (counter_of "solver.newton_iters" d_cold)

(* ------------------------------------------------------------------ *)
(* golden Chrome-trace fixture: deterministic events must render to
   exactly this JSON (the contract chrome://tracing / Perfetto load),
   and the streamed file form must parse back to the same document. *)

let golden_events () =
  [
    Trace.make_event ~cat:"campaign" ~tid:0 ~ts_ns:1000L ~dur_ns:4_000_000L "campaign";
    Trace.make_event ~cat:"sim"
      ~args:[ ("defect", Trace.S "pipe") ]
      ~tid:1 ~ts_ns:2000L ~dur_ns:1_500_000L "transient";
    Trace.make_event ~cat:"pool"
      ~args:[ ("total", Trace.I 8); ("active", Trace.I 2) ]
      ~tid:0 ~ts_ns:5000L "pool.batch";
  ]

let golden_string =
  "{\"traceEvents\":[\
   {\"name\":\"campaign\",\"cat\":\"campaign\",\"pid\":1,\"tid\":0,\"ts\":1,\"ph\":\"X\",\"dur\":4000},\
   {\"name\":\"transient\",\"cat\":\"sim\",\"pid\":1,\"tid\":1,\"ts\":2,\"ph\":\"X\",\"dur\":1500,\
   \"args\":{\"defect\":\"pipe\"}},\
   {\"name\":\"pool.batch\",\"cat\":\"pool\",\"pid\":1,\"tid\":0,\"ts\":5,\"ph\":\"i\",\"s\":\"t\",\
   \"args\":{\"total\":8,\"active\":2}}\
   ],\"displayTimeUnit\":\"ns\"}\n"

let test_chrome_golden () =
  let events = golden_events () in
  Alcotest.(check string) "chrome trace golden" golden_string (Trace.chrome_string events);
  let path = Filename.temp_file "cml_trace" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Trace.write_chrome ~path events;
  let doc = Json.parse_file path in
  Alcotest.(check bool) "streamed file parses to the same document" true
    (doc = Json.parse golden_string);
  match Json.member "traceEvents" doc with
  | Some (Json.List evs) -> Alcotest.(check int) "all events present" 3 (List.length evs)
  | _ -> Alcotest.fail "traceEvents missing"

let () =
  Alcotest.run "telemetry"
    [
      ( "trace",
        [
          QCheck_alcotest.to_alcotest prop_span_nesting;
          Alcotest.test_case "chrome golden fixture" `Quick test_chrome_golden;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "parallel merge determinism" `Slow
            test_campaign_merge_determinism;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "warm vs cold snapshot parity" `Quick
            test_metrics_warm_cold_parity;
        ] );
    ]
