(* Tests for the extension modules: parametric process variation,
   Monte-Carlo robustness of the DFT scheme, the section-6.6
   phase-sensitivity (fault masking) experiment, Iddq classification
   in the defect campaign, and toggle-directed pattern generation. *)

module N = Cml_spice.Netlist
module V = Cml_defects.Variation
module L = Cml_logic
module Dft = Cml_dft

let proc = Cml_cells.Process.default

(* ------------------------------------------------------------------ *)
(* Variation *)

let chain_net () =
  let chain = Cml_cells.Chain.build_dc ~stages:3 ~value:true () in
  chain.Cml_cells.Chain.builder.Cml_cells.Builder.net

let resistor_values net =
  List.filter_map
    (fun d -> match d with N.Resistor { name; r; _ } -> Some (name, r) | _ -> None)
    (N.devices net)

let test_perturb_deterministic () =
  let net = chain_net () in
  let a = V.perturb ~seed:7 net and b = V.perturb ~seed:7 net in
  Alcotest.(check bool) "same seed, same values" true
    (resistor_values a = resistor_values b)

let test_perturb_seed_matters () =
  let net = chain_net () in
  let a = V.perturb ~seed:7 net and b = V.perturb ~seed:8 net in
  Alcotest.(check bool) "different seeds differ" true
    (resistor_values a <> resistor_values b)

let test_perturb_leaves_original () =
  let net = chain_net () in
  let before = resistor_values net in
  ignore (V.perturb ~seed:7 net);
  Alcotest.(check bool) "original untouched" true (before = resistor_values net)

let test_perturb_magnitude () =
  let net = chain_net () in
  let p = V.perturb ~seed:3 net in
  List.iter2
    (fun (name, r0) (_, r1) ->
      let rel = Float.abs (r1 -. r0) /. r0 in
      if rel > 0.15 then Alcotest.failf "%s moved %.1f%% (sigma is 2%%)" name (100.0 *. rel);
      if r1 <= 0.0 then Alcotest.failf "%s went non-positive" name)
    (resistor_values net) (resistor_values p)

let test_perturb_sources_untouched () =
  let net = chain_net () in
  let p = V.perturb ~seed:3 net in
  match (N.get_device net "vdd", N.get_device p "vdd") with
  | N.Vsource { wave = wa; _ }, N.Vsource { wave = wb; _ } ->
      Alcotest.(check bool) "supply identical" true (wa = wb)
  | _ -> Alcotest.fail "vdd missing"

let test_perturbed_circuit_still_works () =
  let net = V.perturb ~seed:11 (chain_net ()) in
  let sim = Cml_spice.Engine.compile net in
  let x = Cml_spice.Engine.dc_operating_point sim in
  let out =
    match N.find_node net "x3.op" with Some nd -> Cml_spice.Engine.voltage x nd | None -> 0.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "output near rail, got %.3f" out)
    true
    (out > 3.1 && out < 3.5)

(* ------------------------------------------------------------------ *)
(* Monte Carlo *)

let test_montecarlo_no_false_alarms () =
  let r = Dft.Montecarlo.run ~n:6 ~samples:12 ~seed:2 () in
  Alcotest.(check int) "no false alarms" 0 r.Dft.Montecarlo.false_alarms;
  Alcotest.(check int) "no misses" 0 r.Dft.Montecarlo.missed

let test_montecarlo_separation_positive () =
  let r = Dft.Montecarlo.run ~n:6 ~samples:12 ~seed:5 () in
  Alcotest.(check bool)
    (Printf.sprintf "separation %.3f V > 0.1" r.Dft.Montecarlo.separation)
    true
    (r.Dft.Montecarlo.separation > 0.1)

let test_montecarlo_wild_process_degrades () =
  (* a deliberately absurd spread must shrink the margin relative to
     the tight one *)
  let tight = Dft.Montecarlo.run ~spec:V.tight_spec ~n:6 ~samples:10 ~seed:9 () in
  let wild =
    Dft.Montecarlo.run
      ~spec:
        {
          V.resistor_sigma = 0.10;
          capacitor_sigma = 0.2;
          is_sigma = 0.5;
          beta_sigma = 0.4;
        }
      ~n:6 ~samples:10 ~seed:9 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "margin shrinks (%.3f -> %.3f)" tight.Dft.Montecarlo.separation
       wild.Dft.Montecarlo.separation)
    true
    (wild.Dft.Montecarlo.separation < tight.Dft.Montecarlo.separation)

(* ------------------------------------------------------------------ *)
(* Phase sensitivity (section 6.6) *)

let test_v1_masked_by_phase () =
  let r =
    Dft.Experiment.phase_sensitivity ~variant:(Dft.Experiment.V1 Dft.Detector.v1_default)
      ~pipe:2e3 ~freq:100e6 ~tstop:80e-9 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "asymmetric static phases (%.2f vs %.2f)" r.Dft.Experiment.static_false
       r.Dft.Experiment.static_true)
    true
    (r.Dft.Experiment.static_true > r.Dft.Experiment.static_false +. 0.2);
  Alcotest.(check bool) "toggling asserts the fault" true
    (r.Dft.Experiment.toggling > r.Dft.Experiment.static_false)

let test_v2_phase_independent () =
  let r =
    Dft.Experiment.phase_sensitivity
      ~variant:
        (Dft.Experiment.V2 { cfg = Dft.Detector.v2_default; vtest = Dft.Detector.vtest_test proc })
      ~pipe:2e3 ~freq:100e6 ~tstop:80e-9 ()
  in
  let spread =
    Float.max r.Dft.Experiment.static_false r.Dft.Experiment.static_true
    -. Float.min r.Dft.Experiment.static_false r.Dft.Experiment.static_true
  in
  Alcotest.(check bool)
    (Printf.sprintf "double-sided: phases within 50 mV (spread %.0f mV)" (spread *. 1e3))
    true (spread < 0.05)

(* ------------------------------------------------------------------ *)
(* Iddq classification *)

let test_iddq_flags_tail_pipe () =
  (* the tail pipe adds supply current: Iddq-visible; and the paper
     notes CML's steering keeps most other defects Iddq-quiet *)
  let c =
    Cml_defects.Campaign.run
      ~defects:
        [
          Cml_defects.Defect.Pipe { device = "x3.q3"; r = 1e3 };
          Cml_defects.Defect.Open_terminal { device = "x3.q1"; terminal = "b" };
        ]
      ()
  in
  match c.Cml_defects.Campaign.entries with
  | [ { outcome = Cml_defects.Campaign.Measured (_, pipe_flags); _ };
      { outcome = Cml_defects.Campaign.Measured (_, open_flags); _ } ] ->
      Alcotest.(check bool) "pipe raises supply current" true
        pipe_flags.Cml_defects.Campaign.iddq_detectable;
      Alcotest.(check bool) "open does not" true
        (not open_flags.Cml_defects.Campaign.iddq_detectable)
  | _ -> Alcotest.fail "expected two measured entries"

let test_iddq_in_summary () =
  let c = Cml_defects.Campaign.run ~defects:[] () in
  Alcotest.(check bool) "summary has iddq row" true
    (List.mem_assoc "iddq-detectable" (Cml_defects.Campaign.summary c))

(* ------------------------------------------------------------------ *)
(* Directed patterns *)

let test_directed_reaches_full_coverage () =
  let c = L.Bench_circuits.decoded_counter ~bits:3 in
  let initial = L.Sim.initial c L.Value.F in
  let patterns = L.Directed.directed_patterns c ~initial ~seed:7 () in
  match L.Directed.patterns_to_full_coverage c ~initial ~patterns with
  | Some _ -> ()
  | None -> Alcotest.fail "directed generation never covered the circuit"

let test_directed_beats_random_on_decoded () =
  let c = L.Bench_circuits.decoded_counter ~bits:3 in
  let initial = L.Sim.initial c L.Value.F in
  let directed = L.Directed.directed_patterns c ~initial ~seed:7 () in
  let n_directed =
    match L.Directed.patterns_to_full_coverage c ~initial ~patterns:directed with
    | Some n -> n
    | None -> max_int
  in
  let random = L.Patterns.random_patterns ~seed:7 ~width:3 ~count:512 in
  let n_random =
    match L.Directed.patterns_to_full_coverage c ~initial ~patterns:random with
    | Some n -> n
    | None -> max_int
  in
  Alcotest.(check bool)
    (Printf.sprintf "directed %d < random %d" n_directed n_random)
    true (n_directed < n_random)

let test_directed_budget_respected () =
  let c = L.Bench_circuits.counter ~bits:6 in
  let patterns =
    L.Directed.directed_patterns c ~initial:(L.Sim.initial c L.Value.F) ~budget:10 ~seed:1 ()
  in
  Alcotest.(check bool) "at most 10" true (List.length patterns <= 10)

let test_directed_deterministic () =
  let c = L.Bench_circuits.traffic_fsm () in
  let initial = L.Sim.initial c L.Value.F in
  let a = L.Directed.directed_patterns c ~initial ~seed:4 () in
  let b = L.Directed.directed_patterns c ~initial ~seed:4 () in
  Alcotest.(check bool) "same seed same patterns" true (a = b)

(* ------------------------------------------------------------------ *)
(* Adder and DFT insertion *)

let build_adder ?(bits = 3) a_val b_val cin_val =
  let b = Cml_cells.Builder.create () in
  let operand name v =
    Array.init bits (fun k ->
        Cml_cells.Builder.diff_dc_input b ~name:(Printf.sprintf "%s%d" name k)
          ~value:((v lsr k) land 1 = 1))
  in
  let a = operand "a" a_val and bv = operand "b" b_val in
  let cin = Cml_cells.Builder.diff_dc_input b ~name:"cin" ~value:cin_val in
  let sums, cout = Cml_cells.Adder.ripple_carry b ~name:"add" ~a ~b:bv ~cin in
  (b, sums, cout)

let read_result bits x sums cout =
  let bit (d : Cml_cells.Builder.diff) =
    if
      Cml_spice.Engine.voltage x d.Cml_cells.Builder.p
      -. Cml_spice.Engine.voltage x d.Cml_cells.Builder.n
      > 0.05
    then 1
    else 0
  in
  Array.to_list (Array.mapi (fun k d -> bit d lsl k) sums)
  |> List.fold_left ( + ) (bit cout lsl bits)

let test_adder_vectors () =
  List.iter
    (fun (a, b, cin) ->
      let builder, sums, cout = build_adder a b cin in
      let x =
        Cml_spice.Engine.dc_operating_point
          (Cml_spice.Engine.compile builder.Cml_cells.Builder.net)
      in
      let got = read_result 3 x sums cout in
      let want = a + b + if cin then 1 else 0 in
      if got <> want then Alcotest.failf "%d + %d + %b: got %d" a b cin got)
    [ (0, 0, false); (7, 7, true); (5, 3, false); (2, 6, true) ]

let prop_adder_correct =
  QCheck2.Test.make ~name:"3-bit analog adder computes a + b + cin" ~count:12
    QCheck2.Gen.(triple (int_range 0 7) (int_range 0 7) bool)
    (fun (a, b, cin) ->
      let builder, sums, cout = build_adder a b cin in
      let x =
        Cml_spice.Engine.dc_operating_point
          (Cml_spice.Engine.compile builder.Cml_cells.Builder.net)
      in
      read_result 3 x sums cout = a + b + if cin then 1 else 0)

let test_adder_rejects_bad_widths () =
  let b = Cml_cells.Builder.create () in
  let one = [| Cml_cells.Builder.diff_dc_input b ~name:"a0" ~value:true |] in
  let cin = Cml_cells.Builder.diff_dc_input b ~name:"cin" ~value:false in
  match Cml_cells.Adder.ripple_carry b ~name:"add" ~a:one ~b:[||] ~cin with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_builder_registers_cells () =
  let b = Cml_cells.Builder.create () in
  let input = Cml_cells.Builder.diff_dc_input b ~name:"in" ~value:true in
  let out = Cml_cells.Buffer_cell.add b ~name:"g1" ~input in
  ignore (Cml_cells.Gates.and2 b ~name:"g2" ~a:input ~b:out);
  let cells = Cml_cells.Builder.cells b in
  Alcotest.(check (list string)) "names in order" [ "g1"; "g2" ] (List.map fst cells)

let test_insertion_grouping () =
  let builder, _, _ = build_adder 1 2 false in
  let plan = Cml_dft.Insertion.instrument ~max_share:6 builder in
  let sizes =
    List.map (fun g -> List.length g.Cml_dft.Insertion.members) plan.Cml_dft.Insertion.groups
  in
  (* a 3-bit adder has 15 cells: 6 + 6 + 3 *)
  Alcotest.(check (list int)) "group sizes" [ 6; 6; 3 ] sizes

let test_insertion_screen_and_localize () =
  let builder, _, _ = build_adder 3 4 false in
  let plan = Cml_dft.Insertion.instrument ~max_share:8 builder in
  let net = builder.Cml_cells.Builder.net in
  let clean = Cml_dft.Insertion.screen plan net in
  Alcotest.(check bool) "clean circuit passes everywhere" true
    (List.for_all (fun r -> not r.Cml_dft.Insertion.failed) clean);
  let faulty =
    Cml_defects.Inject.apply net
      (Cml_defects.Defect.Pipe { device = "add.fa1.g.q3"; r = 4e3 })
  in
  let suspects = Cml_dft.Insertion.localize plan faulty in
  Alcotest.(check bool) "faulty cell localized" true (List.mem "add.fa1.g" suspects);
  Alcotest.(check bool) "not everything suspected" true
    (List.length suspects < List.length (Cml_cells.Builder.cells builder))

let test_insertion_overhead_reported () =
  let builder, _, _ = build_adder 1 1 false in
  let plan = Cml_dft.Insertion.instrument builder in
  let ov = Cml_dft.Insertion.device_overhead plan builder.Cml_cells.Builder.net in
  Alcotest.(check bool) (Printf.sprintf "overhead sane (%.2f)" ov) true (ov > 0.0 && ov < 0.5)

let () =
  Alcotest.run "extensions"
    [
      ( "variation",
        [
          Alcotest.test_case "deterministic" `Quick test_perturb_deterministic;
          Alcotest.test_case "seed matters" `Quick test_perturb_seed_matters;
          Alcotest.test_case "original untouched" `Quick test_perturb_leaves_original;
          Alcotest.test_case "magnitude bounded" `Quick test_perturb_magnitude;
          Alcotest.test_case "sources untouched" `Quick test_perturb_sources_untouched;
          Alcotest.test_case "perturbed circuit works" `Quick test_perturbed_circuit_still_works;
        ] );
      ( "montecarlo",
        [
          Alcotest.test_case "no false alarms" `Slow test_montecarlo_no_false_alarms;
          Alcotest.test_case "separation positive" `Slow test_montecarlo_separation_positive;
          Alcotest.test_case "wild process degrades" `Slow test_montecarlo_wild_process_degrades;
        ] );
      ( "phase-sensitivity",
        [
          Alcotest.test_case "v1 masked by phase" `Slow test_v1_masked_by_phase;
          Alcotest.test_case "v2 phase independent" `Slow test_v2_phase_independent;
        ] );
      ( "iddq",
        [
          Alcotest.test_case "tail pipe flagged" `Slow test_iddq_flags_tail_pipe;
          Alcotest.test_case "summary row" `Quick test_iddq_in_summary;
        ] );
      ( "adder",
        [
          Alcotest.test_case "vectors" `Slow test_adder_vectors;
          Alcotest.test_case "bad widths" `Quick test_adder_rejects_bad_widths;
          QCheck_alcotest.to_alcotest prop_adder_correct;
        ] );
      ( "insertion",
        [
          Alcotest.test_case "cell registry" `Quick test_builder_registers_cells;
          Alcotest.test_case "grouping" `Quick test_insertion_grouping;
          Alcotest.test_case "screen and localize" `Slow test_insertion_screen_and_localize;
          Alcotest.test_case "overhead" `Quick test_insertion_overhead_reported;
        ] );
      ( "directed",
        [
          Alcotest.test_case "full coverage" `Quick test_directed_reaches_full_coverage;
          Alcotest.test_case "beats random on decoded counter" `Quick
            test_directed_beats_random_on_decoded;
          Alcotest.test_case "budget respected" `Quick test_directed_budget_respected;
          Alcotest.test_case "deterministic" `Quick test_directed_deterministic;
        ] );
    ]
