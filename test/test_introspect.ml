(* Numerical-health observatory: the introspection recorder and the
   post-mortem pipeline.

   - attaching a recorder never changes a bit of the simulated
     waveform, warm-started and cold (qcheck property — the recorder
     only reads solver state);
   - the recorder actually captures Newton / dt rows on a real
     transient, with well-formed cause tags;
   - sparse-LU health numbers and the reason codes for stability
     fallbacks;
   - `explain` is a pure function of its source manifest: two runs
     produce byte-identical post-mortem JSON, and the document
     round-trips through write/read;
   - trend rendering says so explicitly when there is no perf history
     yet. *)

module E = Cml_spice.Engine
module T = Cml_spice.Transient
module I = Cml_spice.Introspect
module SL = Cml_numerics.Sparse_lu
module Sp = Cml_numerics.Sparse
module PM = Cml_telemetry.Postmortem
module Json = Cml_telemetry.Json
module D = Cml_defects.Defect

let build_chain ~stages ~freq =
  let chain = Cml_cells.Chain.build ~stages ~freq () in
  chain.Cml_cells.Chain.builder.Cml_cells.Builder.net

(* ------------------------------------------------------------------ *)
(* qcheck: introspection is observation only *)

let same_result (a : T.result) (b : T.result) =
  a.T.times = b.T.times && a.T.data = b.T.data && a.T.stats = b.T.stats

let prop_introspect_parity =
  QCheck2.Test.make ~name:"introspected transient is bit-identical to plain (warm and cold)"
    ~count:4
    QCheck2.Gen.(pair (int_range 2 4) (float_range 5e8 2e9))
    (fun (stages, freq) ->
      let net = build_chain ~stages ~freq in
      let tstop = 2e-9 in
      let breakpoints = T.collect_breakpoints net ~tstop in
      let cfg = T.config ~tstop ~max_step:10e-12 () in
      let run ?guide ~introspect () =
        let sim = E.compile net in
        if introspect then E.set_introspect sim (Some (I.create ()));
        T.run ?guide ~breakpoints sim net cfg
      in
      let cold_plain = run ~introspect:false () in
      let cold_rec = run ~introspect:true () in
      let guide = cold_plain in
      let warm_plain = run ~guide ~introspect:false () in
      let warm_rec = run ~guide ~introspect:true () in
      same_result cold_plain cold_rec && same_result warm_plain warm_rec)

(* ------------------------------------------------------------------ *)
(* Recorder capture on a real transient *)

let test_recorder_captures () =
  let net = build_chain ~stages:2 ~freq:1e9 in
  let tstop = 2e-9 in
  let sim = E.compile net in
  let r = I.create ~label:"unit" () in
  E.set_introspect sim (Some r);
  let res = T.run ~breakpoints:(T.collect_breakpoints net ~tstop) sim net (T.config ~tstop ()) in
  Alcotest.(check string) "label" "unit" (I.label r);
  Alcotest.(check bool) "newton rows recorded" true (I.newton_rows r <> []);
  let dt = I.dt_rows r in
  Alcotest.(check bool) "dt rows recorded" true (dt <> []);
  (* every accepted step leaves exactly one accept/breakpoint/guide
     row; rejections add their own rows on top *)
  let accepts =
    List.length
      (List.filter
         (fun (row : I.dt_row) ->
           List.mem row.I.dr_cause [ I.cause_accept; I.cause_breakpoint; I.cause_guide ])
         dt)
  in
  Alcotest.(check int) "one accepted-cause row per accepted step" res.T.stats.T.accepted_steps
    accepts;
  List.iter
    (fun (row : I.newton_row) ->
      Alcotest.(check bool) "finite delta" true (Float.is_finite row.I.nr_delta))
    (I.newton_rows r);
  List.iter
    (fun c ->
      Alcotest.(check bool) "cause has a name" true (String.length (I.cause_name c) > 0))
    [ I.cause_accept; I.cause_breakpoint; I.cause_guide; I.cause_lte; I.cause_newton_fail ]

(* ------------------------------------------------------------------ *)
(* Sparse-LU health and fallback reasons *)

let csc_of_dense rows =
  let n = Array.length rows in
  let t = Sp.triplet_create n in
  Array.iteri (fun i row -> Array.iteri (fun j v -> if v <> 0.0 then Sp.add t i j v) row) rows;
  Sp.csc_of_pattern (Sp.compress t)

let test_lu_health_numbers () =
  let a = csc_of_dense [| [| 1.0; 0.0 |]; [| 0.0; 1e-8 |] |] in
  let f = SL.factorize a in
  let h = SL.health f a in
  Alcotest.(check bool) "pivot growth ~1 on a diagonal matrix" true
    (h.SL.pivot_growth >= 0.99 && h.SL.pivot_growth <= 1.01);
  Alcotest.(check bool) "u diag extremes" true
    (h.SL.u_diag_max >= 0.99 && h.SL.u_diag_min <= 1.01e-8);
  Alcotest.(check bool) "condition estimate ~1e8" true
    (h.SL.condition_estimate >= 1e7 && h.SL.condition_estimate <= 1e9)

let test_lu_refactor_failure_reasons () =
  (* pattern mismatch: a structurally identical matrix built from a
     different pattern object is not reusable *)
  let a = csc_of_dense [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let f = SL.factorize a in
  let b = csc_of_dense [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check bool) "pattern mismatch refuses" false (SL.refactorize f b);
  (match SL.last_refactor_failure f with
  | Some SL.Mismatched_pattern -> ()
  | _ -> Alcotest.fail "expected Mismatched_pattern");
  (* recycled pivot collapse: refill the same pattern with values that
     make the recycled pivot vanish *)
  let t = Sp.triplet_create 2 in
  Sp.add t 0 0 1.0;
  Sp.add t 0 1 2.0;
  Sp.add t 1 0 3.0;
  Sp.add t 1 1 4.0;
  let pat = Sp.compress t in
  let a = Sp.csc_of_pattern pat in
  let f = SL.factorize a in
  Alcotest.(check bool) "same-pattern refactorization works" true (SL.refactorize f a);
  Alcotest.(check (option unit)) "no failure recorded after success" None
    (Option.map ignore (SL.last_refactor_failure f));
  (* collapse the whole first column so the recycled pivot vanishes
     whichever row the original elimination picked *)
  let t2 = Sp.triplet_create 2 in
  Sp.add t2 0 0 1e-30;
  Sp.add t2 0 1 2.0;
  Sp.add t2 1 0 1e-30;
  Sp.add t2 1 1 4.0;
  Sp.refill pat t2;
  Alcotest.(check bool) "collapsed pivot refuses" false (SL.refactorize f a);
  match SL.last_refactor_failure f with
  | Some (SL.Small_pivot _ | SL.Unstable_pivot _) -> ()
  | _ -> Alcotest.fail "expected a pivot-collapse reason"

(* ------------------------------------------------------------------ *)
(* explain: a pure function of the source manifest *)

let test_explain_deterministic_and_blaming () =
  let path = Filename.temp_file "cmldft_explain" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let defects =
        [
          D.Pipe { device = "x3.q3"; r = 4e3 };
          D.Terminal_short { device = "x3.q2"; t1 = "c"; t2 = "e" };
        ]
      in
      (* cold start under a tight Newton cap: marginal solves fail
         visibly, which is exactly what the post-mortem must blame *)
      ignore
        (Cml_defects.Campaign.run ~jobs:1 ~warm_start:false ~max_iter:12 ~manifest:path
           ~defects ());
      let doc () = Json.to_string (PM.to_json (Cml_dft.Explain.explain_path path)) in
      let one = doc () in
      let two = doc () in
      Alcotest.(check string) "byte-identical post-mortem JSON" one two;
      let pm = Cml_dft.Explain.explain_path path in
      Alcotest.(check bool) "an LTE rejection is blamed on a named node" true
        (List.exists (fun l -> l.PM.l_node <> "") pm.PM.pm_lte);
      Alcotest.(check bool) "a Newton retry is blamed" true (pm.PM.pm_retries <> []);
      Alcotest.(check bool) "newton failures counted" true
        (match List.assoc_opt "newton_failures" pm.PM.pm_stats with
        | Some n -> n > 0.0
        | None -> false);
      (* round-trip through the JSON schema *)
      let path2 = Filename.temp_file "cmldft_pm" ".json" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path2 with Sys_error _ -> ())
        (fun () ->
          PM.write ~path:path2 pm;
          let back = PM.read ~path:path2 in
          Alcotest.(check string) "render identical after round-trip" (PM.render_text pm)
            (PM.render_text back)))

let test_explain_rejects_foreign_sources () =
  let check_fails source =
    match Cml_dft.Explain.explain ~source (Cml_telemetry.Manifest.create ~kind:"op" ()) with
    | _ -> Alcotest.fail "expected Unexplainable"
    | exception Cml_dft.Explain.Unexplainable _ -> ()
  in
  check_fails "x"

(* ------------------------------------------------------------------ *)
(* trend: explicit no-history rendering *)

let test_trend_no_history () =
  let out = Cml_telemetry.Trend.render ~history:[] ~manifests:[] () in
  Alcotest.(check bool) "says no entries yet" true
    (let sub = "no entries yet" in
     let n = String.length out and m = String.length sub in
     let rec go i = i + m <= n && (String.sub out i m = sub || go (i + 1)) in
     go 0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "introspect"
    [
      ( "parity",
        [ QCheck_alcotest.to_alcotest ~long:true prop_introspect_parity ] );
      ( "recorder",
        [ Alcotest.test_case "captures newton and dt rows" `Slow test_recorder_captures ] );
      ( "sparse-lu",
        [
          Alcotest.test_case "health numbers" `Quick test_lu_health_numbers;
          Alcotest.test_case "fallback reasons" `Quick test_lu_refactor_failure_reasons;
        ] );
      ( "explain",
        [
          Alcotest.test_case "deterministic, blames nets, round-trips" `Slow
            test_explain_deterministic_and_blaming;
          Alcotest.test_case "rejects non-campaign sources" `Quick
            test_explain_rejects_foreign_sources;
        ] );
      ( "trend", [ Alcotest.test_case "no history yet" `Quick test_trend_no_history ] );
    ]
