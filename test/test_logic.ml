(* Tests for the gate-level logic library: 3-valued algebra, circuit
   construction, cycle simulation, pattern generators, toggle
   coverage, stuck-at fault simulation and initialization
   convergence. *)

module L = Cml_logic
module V = Cml_logic.Value
module C = Cml_logic.Circuit

(* ------------------------------------------------------------------ *)
(* Value algebra *)

let val_eq = Alcotest.testable (fun fmt v -> Format.pp_print_char fmt (V.to_char v)) V.equal

let test_not_table () =
  Alcotest.check val_eq "not 0" V.T (V.v_not V.F);
  Alcotest.check val_eq "not 1" V.F (V.v_not V.T);
  Alcotest.check val_eq "not x" V.X (V.v_not V.X)

let test_and_table () =
  Alcotest.check val_eq "0 and x" V.F (V.v_and V.F V.X);
  Alcotest.check val_eq "x and 0" V.F (V.v_and V.X V.F);
  Alcotest.check val_eq "1 and 1" V.T (V.v_and V.T V.T);
  Alcotest.check val_eq "1 and x" V.X (V.v_and V.T V.X)

let test_or_table () =
  Alcotest.check val_eq "1 or x" V.T (V.v_or V.T V.X);
  Alcotest.check val_eq "0 or 0" V.F (V.v_or V.F V.F);
  Alcotest.check val_eq "0 or x" V.X (V.v_or V.F V.X)

let test_xor_table () =
  Alcotest.check val_eq "1 xor 0" V.T (V.v_xor V.T V.F);
  Alcotest.check val_eq "1 xor 1" V.F (V.v_xor V.T V.T);
  Alcotest.check val_eq "x xor 1" V.X (V.v_xor V.X V.T)

let test_mux_table () =
  Alcotest.check val_eq "sel 1 picks a" V.T (V.v_mux ~sel:V.T ~a:V.T ~b:V.F);
  Alcotest.check val_eq "sel 0 picks b" V.F (V.v_mux ~sel:V.F ~a:V.T ~b:V.F);
  Alcotest.check val_eq "sel x, agree" V.T (V.v_mux ~sel:V.X ~a:V.T ~b:V.T);
  Alcotest.check val_eq "sel x, disagree" V.X (V.v_mux ~sel:V.X ~a:V.T ~b:V.F)

let binary = QCheck2.Gen.map V.of_bool QCheck2.Gen.bool

let prop_demorgan =
  QCheck2.Test.make ~name:"De Morgan holds on binary values" ~count:100
    (QCheck2.Gen.pair binary binary) (fun (a, b) ->
      V.equal (V.v_not (V.v_and a b)) (V.v_or (V.v_not a) (V.v_not b)))

let prop_xor_via_andor =
  QCheck2.Test.make ~name:"xor = (a or b) and not (a and b) on binary" ~count:100
    (QCheck2.Gen.pair binary binary) (fun (a, b) ->
      V.equal (V.v_xor a b) (V.v_and (V.v_or a b) (V.v_not (V.v_and a b))))

let three_valued = QCheck2.Gen.oneofl [ V.F; V.T; V.X ]

let prop_x_monotone =
  (* replacing an input by X can only keep the output or make it X *)
  QCheck2.Test.make ~name:"X-pessimism of and/or/xor" ~count:200
    (QCheck2.Gen.pair three_valued three_valued) (fun (a, b) ->
      let implies p q = (not p) || q in
      let check op =
        let out = op a b in
        let out_xa = op V.X b and out_xb = op a V.X in
        implies (not (V.equal out out_xa)) (V.equal out_xa V.X)
        && implies (not (V.equal out out_xb)) (V.equal out_xb V.X)
      in
      check V.v_and && check V.v_or && check V.v_xor)

(* ------------------------------------------------------------------ *)
(* Circuit construction *)

let test_combinational_cycle_rejected () =
  let b = C.create () in
  let i = C.input b "i" in
  let ff = C.dff b in
  (* a NOT feeding itself through combinational gates only *)
  ignore i;
  ignore ff;
  let g1 = C.buf b 0 in
  ignore g1;
  (* build a real cycle: and2 whose input is itself is impossible with
     this API (ids only reference earlier gates), so check via dff
     misuse instead: connect_dff on a non-dff *)
  match C.connect_dff b ~ff:g1 ~d:0 with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_unconnected_dff_rejected () =
  let b = C.create () in
  ignore (C.dff b);
  match C.finalize b with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* finalize diagnostics: the error messages must name the offending
   nets so a user can actually find them *)

let expect_invalid_arg expected f =
  match f () with
  | _ -> Alcotest.failf "expected Invalid_argument %S" expected
  | exception Invalid_argument msg -> Alcotest.(check string) "message" expected msg

let test_finalize_cycle_names_path () =
  let b = C.create () in
  let _a = C.input b "a" in
  (* net 1 reads net 2, which reads net 1: a two-gate loop *)
  let g1 = C.buf b 2 in
  let _g2 = C.buf b g1 in
  expect_invalid_arg
    "finalize: combinational cycle: net 1 (buf) -> net 2 (buf) -> net 1 (buf) (break it \
     with a flip-flop)"
    (fun () -> C.finalize b)

let test_finalize_lists_all_unconnected_dffs () =
  let b = C.create () in
  ignore (C.dff b);
  ignore (C.dff b);
  let connected = C.dff b in
  let i = C.input b "i" in
  C.connect_dff b ~ff:connected ~d:i;
  expect_invalid_arg
    "finalize: unconnected flip-flop(s) at net 0, net 1 (wire them with connect_dff)"
    (fun () -> C.finalize b)

let test_finalize_names_dangling_fanin () =
  let b = C.create () in
  let _a = C.input b "a" in
  let _g = C.buf b 7 in
  expect_invalid_arg "finalize: net 1 (buf) has dangling fanin 7 (valid nets are 0..1)"
    (fun () -> C.finalize b)

let test_counter_counts () =
  let c = L.Bench_circuits.counter ~bits:3 in
  let state = ref (L.Sim.initial c V.F) in
  let en = [| V.T |] in
  for _ = 1 to 5 do
    let s, _ = L.Sim.step c !state ~inputs:en in
    state := s
  done;
  (* after 5 enabled cycles the counter holds 5 = 101 *)
  let _, values = L.Sim.step c !state ~inputs:[| V.F |] in
  let outs = L.Sim.outputs_of c values in
  Alcotest.check val_eq "q0" V.T (List.assoc "q0" outs);
  Alcotest.check val_eq "q1" V.F (List.assoc "q1" outs);
  Alcotest.check val_eq "q2" V.T (List.assoc "q2" outs)

let test_counter_disabled_holds () =
  let c = L.Bench_circuits.counter ~bits:3 in
  let s1, _ = L.Sim.step c (L.Sim.initial c V.F) ~inputs:[| V.T |] in
  let s2, _ = L.Sim.step c s1 ~inputs:[| V.F |] in
  Alcotest.(check bool) "held" true (s1 = s2)

let test_shift_register_moves () =
  let c = L.Bench_circuits.shift_register ~bits:4 in
  let state = ref (L.Sim.initial c V.F) in
  let feed v =
    let s, _ = L.Sim.step c !state ~inputs:[| v |] in
    state := s
  in
  feed V.T;
  feed V.F;
  feed V.T;
  feed V.F;
  (* q0 is the newest bit *)
  Alcotest.(check bool) "pattern 0101" true (!state = [| V.F; V.T; V.F; V.T |])

let test_traffic_fsm_cycles () =
  let c = L.Bench_circuits.traffic_fsm () in
  let state = ref (L.Sim.initial c V.F) in
  let states_seen = ref [] in
  for _ = 1 to 6 do
    let s, _ = L.Sim.step c !state ~inputs:[| V.F |] in
    states_seen := s :: !states_seen;
    state := s
  done;
  (* period-3 cycle: state at cycle k equals state at cycle k+3 *)
  match !states_seen with
  | s6 :: _ :: _ :: s3 :: _ -> Alcotest.(check bool) "period 3" true (s6 = s3)
  | _ -> Alcotest.fail "unexpected"

let test_eval_x_propagates () =
  let c = L.Bench_circuits.counter ~bits:2 in
  let values = L.Sim.eval c (L.Sim.initial c V.X) ~inputs:[| V.T |] in
  Alcotest.(check bool) "some X present" true (Array.exists (fun v -> v = V.X) values)

(* ------------------------------------------------------------------ *)
(* Patterns *)

let test_lfsr_rejects_zero_seed () =
  match L.Patterns.lfsr_create ~seed:0 () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_lfsr_deterministic () =
  let a = L.Patterns.lfsr_create ~seed:42 () in
  let b = L.Patterns.lfsr_create ~seed:42 () in
  let pa = L.Patterns.lfsr_patterns a ~width:8 ~count:10 in
  let pb = L.Patterns.lfsr_patterns b ~width:8 ~count:10 in
  Alcotest.(check bool) "same streams" true (pa = pb)

let test_lfsr_balanced () =
  let l = L.Patterns.lfsr_create () in
  let ones = ref 0 in
  for _ = 1 to 4096 do
    if L.Patterns.lfsr_next_bit l then incr ones
  done;
  Alcotest.(check bool)
    (Printf.sprintf "balanced (%d/4096 ones)" !ones)
    true
    (!ones > 1800 && !ones < 2300)

let test_walking_ones () =
  let ps = L.Patterns.walking_ones ~width:3 in
  Alcotest.(check int) "3 patterns" 3 (List.length ps);
  Alcotest.(check bool) "each has one T" true
    (List.for_all
       (fun p -> Array.fold_left (fun n v -> if v = V.T then n + 1 else n) 0 p = 1)
       ps)

let test_exhaustive () =
  Alcotest.(check int) "2^4" 16 (List.length (L.Patterns.exhaustive ~width:4))

(* ------------------------------------------------------------------ *)
(* Coverage *)

let test_toggle_coverage_reaches_one () =
  let c = L.Bench_circuits.counter ~bits:3 in
  (* mostly counting, with occasional disabled cycles so the enable
     net itself toggles *)
  let patterns = List.init 40 (fun k -> [| V.of_bool (k mod 8 <> 0) |]) in
  let cov = L.Coverage.coverage_after c ~initial:(L.Sim.initial c V.F) ~patterns in
  Alcotest.(check bool) (Printf.sprintf "full toggle coverage, got %.2f" cov) true (cov > 0.99)

let test_toggle_coverage_partial_when_disabled () =
  let c = L.Bench_circuits.counter ~bits:3 in
  let patterns = List.init 10 (fun _ -> [| V.F |]) in
  let cov = L.Coverage.coverage_after c ~initial:(L.Sim.initial c V.F) ~patterns in
  Alcotest.(check bool) (Printf.sprintf "low coverage, got %.2f" cov) true (cov < 0.5)

let test_coverage_curve_monotone () =
  let c = L.Bench_circuits.shift_register ~bits:6 in
  let patterns = L.Patterns.random_patterns ~seed:7 ~width:1 ~count:30 in
  let curve = L.Coverage.curve c ~initial:(L.Sim.initial c V.F) ~patterns in
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-9 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (monotone curve)

(* ------------------------------------------------------------------ *)
(* Fault simulation *)

let test_faultsim_counts () =
  let c = L.Bench_circuits.counter ~bits:2 in
  Alcotest.(check int) "2 faults per net" (2 * C.num_nets c)
    (List.length (L.Faultsim.all_faults c))

let test_faultsim_detects_obvious () =
  let c = L.Bench_circuits.shift_register ~bits:2 in
  (* stuck-at-1 on the input net is caught by shifting zeros *)
  let input_net = List.assoc "din" c.C.inputs in
  let patterns = List.init 5 (fun _ -> [| V.F |]) in
  Alcotest.(check bool) "detected" true
    (L.Faultsim.detects c ~initial:(L.Sim.initial c V.F) ~patterns
       { L.Faultsim.net = input_net; stuck = true })

let test_faultsim_misses_unexercised () =
  let c = L.Bench_circuits.shift_register ~bits:2 in
  let input_net = List.assoc "din" c.C.inputs in
  (* shifting ones can never expose stuck-at-1 on the input *)
  let patterns = List.init 5 (fun _ -> [| V.T |]) in
  Alcotest.(check bool) "missed" false
    (L.Faultsim.detects c ~initial:(L.Sim.initial c V.F) ~patterns
       { L.Faultsim.net = input_net; stuck = true })

let test_faultsim_coverage_grows_with_patterns () =
  let c = L.Bench_circuits.counter ~bits:3 in
  let short = List.init 2 (fun _ -> [| V.T |]) in
  let long = List.init 30 (fun _ -> [| V.T |]) in
  let cov_short, _, _ = L.Faultsim.coverage c ~initial:(L.Sim.initial c V.F) ~patterns:short in
  let cov_long, _, _ = L.Faultsim.coverage c ~initial:(L.Sim.initial c V.F) ~patterns:long in
  Alcotest.(check bool)
    (Printf.sprintf "coverage grows (%.2f -> %.2f)" cov_short cov_long)
    true
    (cov_long >= cov_short && cov_long > 0.5)

(* ------------------------------------------------------------------ *)
(* Initialization convergence (reference [13]) *)

let test_traffic_converges_from_any_state () =
  let c = L.Bench_circuits.traffic_fsm () in
  (* one synchronizing pulse, then free-running *)
  let patterns = List.init 12 (fun k -> [| V.of_bool (k = 0) |]) in
  let r = L.Init_convergence.analyse c ~patterns ~trials:8 ~seed:11 in
  Alcotest.(check bool) "converged" true r.L.Init_convergence.converged;
  match r.L.Init_convergence.convergence_cycle with
  | Some k -> Alcotest.(check bool) (Printf.sprintf "within 6 cycles, got %d" k) true (k <= 6)
  | None -> Alcotest.fail "no convergence cycle"

let test_shift_register_self_initialises () =
  let c = L.Bench_circuits.shift_register ~bits:4 in
  let patterns = L.Patterns.random_patterns ~seed:3 ~width:1 ~count:8 in
  Alcotest.(check bool) "binary after 8 shifts" true
    (L.Init_convergence.self_initialising c ~patterns)

let test_counter_does_not_converge_across_states () =
  (* a free-running counter never forgets its initial value *)
  let c = L.Bench_circuits.counter ~bits:3 in
  let patterns = List.init 5 (fun _ -> [| V.T |]) in
  let r = L.Init_convergence.analyse c ~patterns ~trials:6 ~seed:5 in
  Alcotest.(check bool) "not converged" false r.L.Init_convergence.converged

(* ------------------------------------------------------------------ *)
(* .bench format *)

let test_bench_s27_shape () =
  let c = L.Bench_format.s27 () in
  Alcotest.(check int) "inputs" 4 (List.length c.C.inputs);
  Alcotest.(check int) "outputs" 1 (List.length c.C.outputs);
  Alcotest.(check int) "flip-flops" 3 (Array.length c.C.dffs)

let test_bench_s27_simulates () =
  let c = L.Bench_format.s27 () in
  let initial = L.Sim.initial c V.F in
  let patterns = L.Patterns.lfsr_patterns (L.Patterns.lfsr_create ()) ~width:4 ~count:128 in
  let cov = L.Coverage.coverage_after c ~initial ~patterns in
  Alcotest.(check bool) (Printf.sprintf "high toggle coverage (%.2f)" cov) true (cov > 0.9)

let test_bench_forward_references () =
  (* G2 uses G3, defined later *)
  let c = L.Bench_format.of_string "INPUT(a)\nOUTPUT(g2)\ng2 = NOT(g3)\ng3 = BUF(a)\n" in
  let values = L.Sim.eval c (L.Sim.initial c V.F) ~inputs:[| V.T |] in
  Alcotest.check val_eq "not(buf(1)) = 0" V.F (List.assoc "g2" (L.Sim.outputs_of c values))

let test_bench_nary_gates () =
  let c =
    L.Bench_format.of_string "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = AND(a, b, c)\n"
  in
  let check inputs expect =
    let values = L.Sim.eval c (L.Sim.initial c V.F) ~inputs in
    Alcotest.check val_eq "and3" expect (List.assoc "y" (L.Sim.outputs_of c values))
  in
  check [| V.T; V.T; V.T |] V.T;
  check [| V.T; V.F; V.T |] V.F

let test_bench_nand_nor () =
  let c =
    L.Bench_format.of_string
      "INPUT(a)\nINPUT(b)\nOUTPUT(x)\nOUTPUT(y)\nx = NAND(a, b)\ny = NOR(a, b)\n"
  in
  let values = L.Sim.eval c (L.Sim.initial c V.F) ~inputs:[| V.T; V.F |] in
  Alcotest.check val_eq "nand(1,0)" V.T (List.assoc "x" (L.Sim.outputs_of c values));
  Alcotest.check val_eq "nor(1,0)" V.F (List.assoc "y" (L.Sim.outputs_of c values))

let test_bench_rejects_cycle () =
  match L.Bench_format.of_string "INPUT(a)\nOUTPUT(x)\nx = NOT(y)\ny = NOT(x)\n" with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception L.Bench_format.Parse_error _ -> ()

let test_bench_rejects_undefined () =
  match L.Bench_format.of_string "INPUT(a)\nOUTPUT(x)\nx = NOT(zz)\n" with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception L.Bench_format.Parse_error _ -> ()

(* parser error paths: the reported line number must point at the
   offending statement *)

let expect_parse_error ~line ~needle text =
  match L.Bench_format.of_string text with
  | _ -> Alcotest.failf "expected Parse_error mentioning %S" needle
  | exception L.Bench_format.Parse_error { line = l; message } ->
      Alcotest.(check int) "line" line l;
      let contains s sub =
        let ls = String.length s and lsub = String.length sub in
        let rec scan i = i + lsub <= ls && (String.sub s i lsub = sub || scan (i + 1)) in
        scan 0
      in
      if not (contains message needle) then
        Alcotest.failf "message %S does not mention %S" message needle

let test_bench_malformed_line () =
  expect_parse_error ~line:2 ~needle:"missing ')'" "INPUT(a)\nx = AND(a\nOUTPUT(x)\n"

let test_bench_unknown_gate () =
  expect_parse_error ~line:3 ~needle:{|unknown gate type "FOO"|}
    "INPUT(a)\nOUTPUT(x)\nx = FOO(a)\n"

let test_bench_wrong_arity () =
  expect_parse_error ~line:2 ~needle:"wrong arity for NOT" "INPUT(a)\nx = NOT(a, a)\nOUTPUT(x)\n"

let test_bench_duplicate_output () =
  expect_parse_error ~line:4 ~needle:{|duplicate output declaration "b" (first on line 3)|}
    "INPUT(a)\nb = NOT(a)\nOUTPUT(b)\nOUTPUT(b)\n"

let test_bench_duplicate_definition () =
  expect_parse_error ~line:3 ~needle:{|duplicate definition of "b"|}
    "INPUT(a)\nb = NOT(a)\nb = BUF(a)\nOUTPUT(b)\n"

let test_bench_cycle_line_number () =
  expect_parse_error ~line:3 ~needle:{|combinational cycle through "x"|}
    "INPUT(a)\nOUTPUT(x)\nx = BUF(x)\n"

let test_bench_comment_headers () =
  (* ISCAS-style header comments, trailing comments and blank lines *)
  let c =
    L.Bench_format.of_string
      "# c17 style header\n# total gates: 1\n\nINPUT(a)  # first input\nINPUT(b)\n\nOUTPUT(y)\ny = AND(a, b)\n\n"
  in
  let values = L.Sim.eval c (L.Sim.initial c V.F) ~inputs:[| V.T; V.T |] in
  Alcotest.check val_eq "and(1,1)" V.T (List.assoc "y" (L.Sim.outputs_of c values))

let test_bench_multiline_args () =
  (* an argument list wrapped over several physical lines, with
     comments and blank continuation lines inside the statement *)
  let c =
    L.Bench_format.of_string
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = AND(a,  # wraps\n        b,\n\n        c)\n"
  in
  let check inputs expect =
    let values = L.Sim.eval c (L.Sim.initial c V.F) ~inputs in
    Alcotest.check val_eq "and3" expect (List.assoc "y" (L.Sim.outputs_of c values))
  in
  check [| V.T; V.T; V.T |] V.T;
  check [| V.T; V.T; V.F |] V.F

let test_bench_multiline_error_line () =
  (* an error inside a wrapped statement reports the line it started on *)
  expect_parse_error ~line:2 ~needle:{|unknown gate type "FOO"|}
    "INPUT(a)\nx = FOO(a,\n        a)\nOUTPUT(x)\n"

let test_bench_unclosed_at_eof () =
  expect_parse_error ~line:3 ~needle:"missing ')'" "INPUT(a)\nOUTPUT(x)\nx = AND(a,\n        a\n"

let test_bench_undeclared_fanin_line () =
  (* an undeclared fanin names the signal and the referencing line *)
  expect_parse_error ~line:3 ~needle:{|undefined signal "zz"|} "INPUT(a)\nOUTPUT(x)\nx = NOT(zz)\n"

let test_net_names_contract () =
  let c = L.Bench_format.s27 () in
  let names = L.Circuit.net_names c in
  (* unique *)
  let tbl = Hashtbl.create 32 in
  Array.iter
    (fun n ->
      if Hashtbl.mem tbl n then Alcotest.failf "duplicate net name %S" n;
      Hashtbl.replace tbl n ())
    names;
  (* declared names land on their nets *)
  List.iter
    (fun (nm, id) -> Alcotest.(check string) "output name" nm names.(id))
    c.L.Circuit.outputs;
  List.iter
    (fun (nm, id) -> Alcotest.(check string) "input name" nm names.(id))
    c.L.Circuit.inputs

let test_net_names_collision () =
  (* an output declared "n1" on a net other than net 1: the positional
     name of net 1 must step aside *)
  let b = L.Circuit.create () in
  let a = L.Circuit.input b "a" in
  let x = L.Circuit.not1 b a in
  let y = L.Circuit.buf b x in
  L.Circuit.output b "n1" y;
  let c = L.Circuit.finalize b in
  let names = L.Circuit.net_names c in
  Alcotest.(check string) "input keeps its name" "a" names.(a);
  Alcotest.(check string) "declared output wins" "n1" names.(y);
  Alcotest.(check string) "displaced positional name" "n1_" names.(x)

let test_bench_roundtrip_behaviour () =
  let c = L.Bench_format.s27 () in
  let c2 = L.Bench_format.of_string (L.Bench_format.to_string c) in
  (* same responses to the same pattern sequence *)
  let patterns = L.Patterns.random_patterns ~seed:5 ~width:4 ~count:40 in
  let outputs circ =
    let _, frames = L.Sim.run circ (L.Sim.initial circ V.F) ~patterns in
    List.map (fun values -> List.map snd (L.Sim.outputs_of circ values)) frames
  in
  Alcotest.(check bool) "same output streams" true (outputs c = outputs c2)

let test_multiplier_vectors () =
  let c = L.Bench_circuits.multiplier ~bits:3 in
  let eval a b =
    let inputs =
      Array.append
        (Array.init 3 (fun k -> V.of_bool ((a lsr k) land 1 = 1)))
        (Array.init 3 (fun k -> V.of_bool ((b lsr k) land 1 = 1)))
    in
    let values = L.Sim.eval c (L.Sim.initial c V.F) ~inputs in
    List.fold_left
      (fun acc (name, v) ->
        match (v, int_of_string_opt (String.sub name 1 (String.length name - 1))) with
        | V.T, Some k -> acc + (1 lsl k)
        | (V.F | V.X), _ | V.T, None -> acc)
      0
      (L.Sim.outputs_of c values)
  in
  List.iter
    (fun (a, b) ->
      let got = eval a b in
      if got <> a * b then Alcotest.failf "%d * %d: got %d" a b got)
    [ (0, 0); (7, 7); (5, 3); (6, 4); (1, 7) ]

let prop_multiplier_correct =
  QCheck2.Test.make ~name:"3-bit array multiplier computes a*b" ~count:64
    QCheck2.Gen.(pair (int_range 0 7) (int_range 0 7))
    (fun (a, b) ->
      let c = L.Bench_circuits.multiplier ~bits:3 in
      let inputs =
        Array.append
          (Array.init 3 (fun k -> V.of_bool ((a lsr k) land 1 = 1)))
          (Array.init 3 (fun k -> V.of_bool ((b lsr k) land 1 = 1)))
      in
      let values = L.Sim.eval c (L.Sim.initial c V.F) ~inputs in
      let got =
        List.fold_left
          (fun acc (name, v) ->
            match (v, int_of_string_opt (String.sub name 1 (String.length name - 1))) with
            | V.T, Some k -> acc + (1 lsl k)
            | (V.F | V.X), _ | V.T, None -> acc)
          0
          (L.Sim.outputs_of c values)
      in
      got = a * b)

(* ------------------------------------------------------------------ *)
(* Timing *)

let test_timing_depth_counter () =
  (* counter bit k's toggle goes through one xor after the carry
     chain of k ands *)
  let c = L.Bench_circuits.counter ~bits:4 in
  Alcotest.(check int) "depth = carries + xor" 4 (L.Timing.depth c)

let test_timing_zero_cost_nets () =
  let c = L.Bench_circuits.shift_register ~bits:8 in
  (* pure shifting: no combinational logic at all *)
  Alcotest.(check int) "depth 0" 0 (L.Timing.depth c)

let test_timing_critical_path_consistent () =
  let c = L.Bench_format.s27 () in
  let path = L.Timing.critical_path c in
  Alcotest.(check bool) "path non-empty" true (List.length path > 1);
  Alcotest.(check bool) "path length related to depth" true
    (List.length path >= L.Timing.depth c)

let test_timing_clock_floor () =
  let c = L.Bench_format.s27 () in
  let period = L.Timing.min_clock_period c ~gate_delay:54e-12 in
  Alcotest.(check (float 1e-15)) "depth * delay"
    (float_of_int (L.Timing.depth c) *. 54e-12)
    period

(* ------------------------------------------------------------------ *)
(* VCD *)

let test_vcd_structure () =
  let c = L.Bench_circuits.counter ~bits:2 in
  let _, frames = L.Sim.run c (L.Sim.initial c V.F) ~patterns:(List.init 4 (fun _ -> [| V.T |])) in
  let vcd = L.Vcd.to_string c ~frames in
  List.iter
    (fun needle ->
      let found =
        let ln = String.length needle and lv = String.length vcd in
        let rec scan i = i + ln <= lv && (String.sub vcd i ln = needle || scan (i + 1)) in
        scan 0
      in
      if not found then Alcotest.failf "VCD missing %S" needle)
    [ "$timescale"; "$enddefinitions"; "$dumpvars"; "#0"; "#3"; "$var wire 1" ]

let test_vcd_emits_changes_only () =
  (* a held counter changes nothing after the first frame *)
  let c = L.Bench_circuits.counter ~bits:2 in
  let _, frames = L.Sim.run c (L.Sim.initial c V.F) ~patterns:(List.init 3 (fun _ -> [| V.F |])) in
  let vcd = L.Vcd.to_string c ~frames in
  let lines = String.split_on_char '\n' vcd in
  (* after #1 and #2 markers there should be no value lines (no change) *)
  let rec tail_after marker = function
    | [] -> []
    | l :: rest -> if l = marker then rest else tail_after marker rest
  in
  (match tail_after "#1" lines with
  | next :: _ -> Alcotest.(check string) "nothing changes after #1" "#2" next
  | [] -> Alcotest.fail "truncated vcd")

let () =
  let qc = List.map (fun t -> QCheck_alcotest.to_alcotest t) in
  Alcotest.run "logic"
    [
      ( "values",
        [
          Alcotest.test_case "not" `Quick test_not_table;
          Alcotest.test_case "and" `Quick test_and_table;
          Alcotest.test_case "or" `Quick test_or_table;
          Alcotest.test_case "xor" `Quick test_xor_table;
          Alcotest.test_case "mux" `Quick test_mux_table;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "connect_dff misuse" `Quick test_combinational_cycle_rejected;
          Alcotest.test_case "unconnected dff" `Quick test_unconnected_dff_rejected;
          Alcotest.test_case "cycle message names path" `Quick test_finalize_cycle_names_path;
          Alcotest.test_case "unconnected dffs all listed" `Quick
            test_finalize_lists_all_unconnected_dffs;
          Alcotest.test_case "dangling fanin named" `Quick test_finalize_names_dangling_fanin;
          Alcotest.test_case "counter counts" `Quick test_counter_counts;
          Alcotest.test_case "counter holds" `Quick test_counter_disabled_holds;
          Alcotest.test_case "shift register" `Quick test_shift_register_moves;
          Alcotest.test_case "traffic fsm period" `Quick test_traffic_fsm_cycles;
          Alcotest.test_case "x propagation" `Quick test_eval_x_propagates;
          Alcotest.test_case "multiplier vectors" `Quick test_multiplier_vectors;
          QCheck_alcotest.to_alcotest prop_multiplier_correct;
        ] );
      ( "patterns",
        [
          Alcotest.test_case "lfsr zero seed" `Quick test_lfsr_rejects_zero_seed;
          Alcotest.test_case "lfsr deterministic" `Quick test_lfsr_deterministic;
          Alcotest.test_case "lfsr balanced" `Quick test_lfsr_balanced;
          Alcotest.test_case "walking ones" `Quick test_walking_ones;
          Alcotest.test_case "exhaustive" `Quick test_exhaustive;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "full coverage" `Quick test_toggle_coverage_reaches_one;
          Alcotest.test_case "partial when idle" `Quick test_toggle_coverage_partial_when_disabled;
          Alcotest.test_case "curve monotone" `Quick test_coverage_curve_monotone;
        ] );
      ( "faultsim",
        [
          Alcotest.test_case "fault list size" `Quick test_faultsim_counts;
          Alcotest.test_case "detects obvious" `Quick test_faultsim_detects_obvious;
          Alcotest.test_case "misses unexercised" `Quick test_faultsim_misses_unexercised;
          Alcotest.test_case "coverage grows" `Quick test_faultsim_coverage_grows_with_patterns;
        ] );
      ( "initialization",
        [
          Alcotest.test_case "traffic converges" `Quick test_traffic_converges_from_any_state;
          Alcotest.test_case "shift self-initialises" `Quick
            test_shift_register_self_initialises;
          Alcotest.test_case "counter retains state" `Quick
            test_counter_does_not_converge_across_states;
        ] );
      ( "timing",
        [
          Alcotest.test_case "counter depth" `Quick test_timing_depth_counter;
          Alcotest.test_case "shift register depth 0" `Quick test_timing_zero_cost_nets;
          Alcotest.test_case "critical path" `Quick test_timing_critical_path_consistent;
          Alcotest.test_case "clock floor" `Quick test_timing_clock_floor;
        ] );
      ( "vcd",
        [
          Alcotest.test_case "structure" `Quick test_vcd_structure;
          Alcotest.test_case "changes only" `Quick test_vcd_emits_changes_only;
        ] );
      ( "bench-format",
        [
          Alcotest.test_case "s27 shape" `Quick test_bench_s27_shape;
          Alcotest.test_case "s27 simulates" `Quick test_bench_s27_simulates;
          Alcotest.test_case "forward references" `Quick test_bench_forward_references;
          Alcotest.test_case "n-ary gates" `Quick test_bench_nary_gates;
          Alcotest.test_case "nand/nor" `Quick test_bench_nand_nor;
          Alcotest.test_case "combinational cycle" `Quick test_bench_rejects_cycle;
          Alcotest.test_case "undefined signal" `Quick test_bench_rejects_undefined;
          Alcotest.test_case "malformed line" `Quick test_bench_malformed_line;
          Alcotest.test_case "unknown gate type" `Quick test_bench_unknown_gate;
          Alcotest.test_case "wrong arity" `Quick test_bench_wrong_arity;
          Alcotest.test_case "duplicate output" `Quick test_bench_duplicate_output;
          Alcotest.test_case "duplicate definition" `Quick test_bench_duplicate_definition;
          Alcotest.test_case "cycle line number" `Quick test_bench_cycle_line_number;
          Alcotest.test_case "comment headers" `Quick test_bench_comment_headers;
          Alcotest.test_case "multi-line args" `Quick test_bench_multiline_args;
          Alcotest.test_case "multi-line error line" `Quick test_bench_multiline_error_line;
          Alcotest.test_case "unclosed at EOF" `Quick test_bench_unclosed_at_eof;
          Alcotest.test_case "undeclared fanin line" `Quick test_bench_undeclared_fanin_line;
          Alcotest.test_case "net names contract" `Quick test_net_names_contract;
          Alcotest.test_case "net names collision" `Quick test_net_names_collision;
          Alcotest.test_case "round-trip behaviour" `Quick test_bench_roundtrip_behaviour;
        ] );
      ("value-properties", qc [ prop_demorgan; prop_xor_via_andor; prop_x_monotone ]);
    ]
