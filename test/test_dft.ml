(* Tests for the core DFT library: detector variants, the variant-3
   read-out with hysteresis, load sharing, the area model and the
   prior-art baselines. *)

module N = Cml_spice.Netlist
module E = Cml_spice.Engine
module W = Cml_spice.Waveform
module B = Cml_cells.Builder
module Dft = Cml_dft

let proc = Cml_cells.Process.default

(* ------------------------------------------------------------------ *)
(* Detector construction *)

let test_vtest_created_once () =
  let b = B.create () in
  let n1 = Dft.Detector.ensure_vtest b 3.7 in
  let n2 = Dft.Detector.ensure_vtest b 3.7 in
  Alcotest.(check int) "same node" n1 n2;
  Alcotest.(check bool) "source exists" true (N.mem_device b.B.net "vtest")

let test_set_vtest () =
  let b = B.create () in
  ignore (Dft.Detector.ensure_vtest b 3.3);
  Dft.Detector.set_vtest b 3.7;
  match N.get_device b.B.net "vtest" with
  | N.Vsource { wave = W.Dc v; _ } -> Alcotest.(check (float 1e-12)) "updated" 3.7 v
  | _ -> Alcotest.fail "expected DC vsource"

let test_vtest_modes () =
  Alcotest.(check (float 1e-9)) "normal = rail" 3.3 (Dft.Detector.vtest_normal proc);
  Alcotest.(check bool) "test above rail" true (Dft.Detector.vtest_test proc > 3.3)

let test_v1_devices () =
  let b = B.create () in
  let input = B.diff_dc_input b ~name:"in" ~value:true in
  let out = Cml_cells.Buffer_cell.add b ~name:"x1" ~input in
  ignore (Dft.Detector.attach_v1 b ~name:"d" ~outputs:out Dft.Detector.v1_default);
  List.iter
    (fun dev -> Alcotest.(check bool) (dev ^ " exists") true (N.mem_device b.B.net dev))
    [ "d.q4"; "d.q5"; "d.c7" ]

let test_v1_resistor_load () =
  let b = B.create () in
  let input = B.diff_dc_input b ~name:"in" ~value:true in
  let out = Cml_cells.Buffer_cell.add b ~name:"x1" ~input in
  ignore
    (Dft.Detector.attach_v1 b ~name:"d" ~outputs:out
       { Dft.Detector.v1_default with Dft.Detector.load = Dft.Detector.Resistor_load 160e3 });
  Alcotest.(check bool) "resistor load" true (N.mem_device b.B.net "d.rload")

let test_v2_multi_emitter_devices () =
  let b = B.create () in
  let input = B.diff_dc_input b ~name:"in" ~value:true in
  let out = Cml_cells.Buffer_cell.add b ~name:"x1" ~input in
  let vtest = Dft.Detector.ensure_vtest b 3.7 in
  ignore
    (Dft.Detector.attach_v2 b ~name:"d" ~outputs:out ~vtest
       { Dft.Detector.v2_default with Dft.Detector.multi_emitter = true });
  Alcotest.(check bool) "dual-emitter device" true (N.mem_device b.B.net "d.q45");
  match N.get_device b.B.net "d.q45" with
  | N.Bjt { emitters; _ } -> Alcotest.(check int) "two emitters" 2 (Array.length emitters)
  | _ -> Alcotest.fail "expected bjt"

(* ------------------------------------------------------------------ *)
(* Detector behaviour (transient) *)

let v1_response pipe =
  Dft.Experiment.detector_response ~variant:(Dft.Experiment.V1 Dft.Detector.v1_default)
    ~freq:100e6 ~pipe ~tstop:80e-9 ()

let test_v1_silent_when_fault_free () =
  let r = v1_response None in
  Alcotest.(check bool)
    (Printf.sprintf "small drop, got %.3f" r.Dft.Experiment.vout_drop)
    true
    (r.Dft.Experiment.vout_drop < 0.2)

let test_v1_fires_on_strong_pipe () =
  let r = v1_response (Some 1e3) in
  Alcotest.(check bool)
    (Printf.sprintf "large drop, got %.3f" r.Dft.Experiment.vout_drop)
    true
    (r.Dft.Experiment.vout_drop > 0.5);
  Alcotest.(check bool) "excursion present" true (r.Dft.Experiment.excursion > 0.5)

let test_v1_drop_monotone_in_severity () =
  let d1 = (v1_response (Some 1e3)).Dft.Experiment.vout_drop in
  let d3 = (v1_response (Some 3e3)).Dft.Experiment.vout_drop in
  let d5 = (v1_response (Some 5e3)).Dft.Experiment.vout_drop in
  Alcotest.(check bool)
    (Printf.sprintf "monotone: %.3f > %.3f > %.3f" d1 d3 d5)
    true
    (d1 > d3 && d3 > d5)

let v2_response pipe =
  Dft.Experiment.detector_response
    ~variant:(Dft.Experiment.V2 { cfg = Dft.Detector.v2_default; vtest = Dft.Detector.vtest_test proc })
    ~freq:100e6 ~pipe ~tstop:80e-9 ()

let test_v2_more_sensitive_than_v1 () =
  (* at a weak 5 kohm pipe the variant-2 detector must produce a
     clearly larger response than variant 1 relative to fault-free *)
  let v1_sig =
    (v1_response (Some 5e3)).Dft.Experiment.vout_drop -. (v1_response None).Dft.Experiment.vout_drop
  in
  let v2_sig =
    (v2_response (Some 5e3)).Dft.Experiment.vout_drop -. (v2_response None).Dft.Experiment.vout_drop
  in
  Alcotest.(check bool)
    (Printf.sprintf "v2 margin %.3f > v1 margin %.3f" v2_sig v1_sig)
    true
    (v2_sig > v1_sig)

let test_multi_emitter_detector_equivalent () =
  let resp me =
    Dft.Experiment.detector_response
      ~variant:
        (Dft.Experiment.V2
           {
             cfg = { Dft.Detector.v2_default with Dft.Detector.multi_emitter = me };
             vtest = Dft.Detector.vtest_test proc;
           })
      ~freq:100e6 ~pipe:(Some 3e3) ~tstop:40e-9 ()
  in
  let a = (resp false).Dft.Experiment.vout_drop and b = (resp true).Dft.Experiment.vout_drop in
  Alcotest.(check bool)
    (Printf.sprintf "same response (%.3f vs %.3f)" a b)
    true
    (Float.abs (a -. b) < 0.02)

let test_amplitude_thresholds_v1 () =
  let rows, min_amp =
    Dft.Experiment.amplitude_thresholds ~detect_drop:0.35
      ~variant:(Dft.Experiment.V1 Dft.Detector.v1_default) ~freq:100e6
      ~pipe_values:[ 1e3; 2e3; 4e3 ] ~tstop:80e-9 ()
  in
  Alcotest.(check int) "3 rows" 3 (List.length rows);
  match min_amp with
  | Some a ->
      Alcotest.(check bool)
        (Printf.sprintf "v1 minimal amplitude near 0.5-0.65 V, got %.3f" a)
        true
        (a > 0.4 && a < 0.7)
  | None -> Alcotest.fail "v1 detected nothing"

(* ------------------------------------------------------------------ *)
(* Read-out (variant 3) *)

let test_readout_thresholds_design () =
  let lo, hi = Dft.Readout.thresholds Dft.Readout.default_config ~vtest:3.7 in
  Alcotest.(check (float 1e-6)) "upper" 3.531 hi;
  Alcotest.(check (float 1e-6)) "lower" 3.281 lo

let standalone_readout () =
  let b = B.create () in
  let vtest = Dft.Detector.ensure_vtest b 3.7 in
  let ro = Dft.Readout.attach b ~name:"ro" ~vtest () in
  (b, ro)

let test_readout_states () =
  (* drive vout directly: well above the window -> pass (flag high),
     well below -> fail (flag low) *)
  let state vdrive =
    let b, ro = standalone_readout () in
    N.vsource b.B.net ~name:"vdrive" ~pos:ro.Dft.Readout.vout ~neg:N.gnd (W.Dc vdrive);
    let x = E.dc_operating_point (E.compile b.B.net) in
    (E.voltage x ro.Dft.Readout.flag, E.voltage x ro.Dft.Readout.vfb)
  in
  let flag_good, vfb_good = state 3.68 in
  let flag_bad, vfb_bad = state 3.25 in
  Alcotest.(check bool)
    (Printf.sprintf "flag separates (%.3f vs %.3f)" flag_good flag_bad)
    true
    (flag_good -. flag_bad > 0.1);
  Alcotest.(check bool)
    (Printf.sprintf "vfb switches (%.3f vs %.3f)" vfb_good vfb_bad)
    true
    (vfb_bad -. vfb_good > 0.02)

let test_readout_hysteresis_exists () =
  (* continuation sweep up vs down must disagree inside the window *)
  let b, ro = standalone_readout () in
  N.vsource b.B.net ~name:"vdrive" ~pos:ro.Dft.Readout.vout ~neg:N.gnd (W.Dc 3.7);
  let up = Cml_numerics.Vec.linspace 3.20 3.70 101 in
  let down = Cml_numerics.Vec.linspace 3.70 3.20 101 in
  let values = Array.append down up in
  let sim, sols = Cml_spice.Sweep.vsource_sweep_full b.B.net ~source:"vdrive" ~values in
  ignore sim;
  let vfb_at target dirn =
    (* find vfb when the drive passes target in the given half *)
    let n = Array.length values in
    let range = if dirn = `Down then (0, (n / 2) - 1) else (n / 2, n - 1) in
    let lo, hi = range in
    let rec find k best =
      if k > hi then best
      else begin
        let d = Float.abs (values.(k) -. target) in
        match best with
        | Some (dbest, _) when dbest <= d -> find (k + 1) best
        | _ -> find (k + 1) (Some (d, E.voltage sols.(k) ro.Dft.Readout.vfb))
      end
    in
    match find lo None with Some (_, v) -> v | None -> Alcotest.fail "empty range"
  in
  let mid = 3.40 in
  let vfb_down = vfb_at mid `Down and vfb_up = vfb_at mid `Up in
  Alcotest.(check bool)
    (Printf.sprintf "hysteresis at %.3f: down %.4f vs up %.4f" mid vfb_down vfb_up)
    true
    (Float.abs (vfb_down -. vfb_up) > 0.005)

(* ------------------------------------------------------------------ *)
(* Sharing *)

let test_sharing_vout_decreases_with_n () =
  let pts = Dft.Sharing.sweep_n ~ns:[ 1; 10; 30 ] () in
  match pts with
  | [ p1; p10; p30 ] ->
      Alcotest.(check bool) "monotone decreasing" true
        (p1.Dft.Sharing.vout > p10.Dft.Sharing.vout
        && p10.Dft.Sharing.vout > p30.Dft.Sharing.vout)
  | _ -> Alcotest.fail "expected 3 points"

let test_sharing_roughly_linear () =
  let pts = Dft.Sharing.sweep_n ~ns:[ 1; 16; 31 ] () in
  match List.map (fun p -> p.Dft.Sharing.vout) pts with
  | [ a; b; c ] ->
      let d1 = a -. b and d2 = b -. c in
      Alcotest.(check bool)
        (Printf.sprintf "equal-N steps give similar drops (%.2g vs %.2g)" d1 d2)
        true
        (d1 > 0.0 && d2 > 0.0 && d2 /. d1 < 2.5 && d1 /. d2 < 2.5)
  | _ -> Alcotest.fail "expected 3 points"

let test_sharing_detects_fault () =
  let b, faulty =
    Dft.Sharing.build_faulty ~n:10
      ~defect:(Cml_defects.Defect.Pipe { device = "x5.q3"; r = 4e3 })
      ()
  in
  let good = Dft.Sharing.measure_dc b () in
  let bad = Dft.Sharing.measure_dc b ~net:faulty () in
  Alcotest.(check bool)
    (Printf.sprintf "vout collapses (%.3f -> %.3f)" good.Dft.Sharing.vout bad.Dft.Sharing.vout)
    true
    (good.Dft.Sharing.vout -. bad.Dft.Sharing.vout > 0.3);
  Alcotest.(check bool) "flag drops" true
    (good.Dft.Sharing.flag -. bad.Dft.Sharing.flag > 0.05)

let test_max_safe_sharing () =
  let mk n vout = { Dft.Sharing.n; vout; vfb = 0.0; flag = 0.0 } in
  let pts = [ mk 1 3.60; mk 10 3.58; mk 45 3.571; mk 60 3.55 ] in
  Alcotest.(check int) "threshold rule" 45
    (Dft.Sharing.max_safe_sharing pts ~upper_threshold:3.57)

(* ------------------------------------------------------------------ *)
(* Area model and baselines *)

let test_area_buffer_counts () =
  let c = Dft.Area.buffer_gate () in
  Alcotest.(check int) "3 transistors" 3 c.Dft.Area.bjts;
  Alcotest.(check int) "2 resistors" 2 c.Dft.Area.resistors

let test_area_v1_counts () =
  let c = Dft.Area.detector_v1 Dft.Detector.v1_default in
  Alcotest.(check int) "2 transistors (sensor + diode)" 2 c.Dft.Area.bjts;
  Alcotest.(check int) "1 capacitor" 1 c.Dft.Area.capacitors

let test_area_multi_emitter_saves_a_transistor () =
  let two = Dft.Area.v3_sensors ~multi_emitter:false in
  let one = Dft.Area.v3_sensors ~multi_emitter:true in
  Alcotest.(check int) "2 vs 1" (two.Dft.Area.bjts - 1) one.Dft.Area.bjts

let test_area_menon_much_larger () =
  let xor = Dft.Area.xor_checker () in
  let v3 = Dft.Area.v3_sensors ~multi_emitter:true in
  Alcotest.(check bool)
    (Printf.sprintf "xor %d bjts >> sensor %d" xor.Dft.Area.bjts v3.Dft.Area.bjts)
    true
    (xor.Dft.Area.bjts > 3 * v3.Dft.Area.bjts)

let test_area_sharing_amortises () =
  let at n = Dft.Area.per_gate_counts (Dft.Area.Variant3 { multi_emitter = true; sharing = n }) in
  let b1, _, _ = at 1 and b45, _, _ = at 45 in
  Alcotest.(check bool) (Printf.sprintf "amortised %.2f < %.2f" b45 b1) true (b45 < b1 /. 2.0)

let test_overhead_ordering () =
  let ov s = Dft.Area.overhead_fraction s in
  let menon = ov Dft.Area.Menon_xor in
  let v1 = ov (Dft.Area.Variant1 Dft.Detector.v1_default) in
  let v3 = ov (Dft.Area.Variant3 { multi_emitter = true; sharing = 45 }) in
  Alcotest.(check bool)
    (Printf.sprintf "menon %.2f > v1 %.2f > v3 %.2f" menon v1 v3)
    true
    (menon > v1 && v1 > v3)

let flags ~stuck ~exc ~reduced ~delay ~healed =
  {
    Cml_defects.Campaign.stuck;
    excessive_excursion = exc;
    reduced_swing = reduced;
    delay_detectable = delay;
    iddq_detectable = false;
    healed;
  }

let test_baseline_detection_models () =
  let excursion_only = flags ~stuck:false ~exc:true ~reduced:false ~delay:false ~healed:true in
  Alcotest.(check bool) "stuck-at misses it" false (Dft.Baselines.stuck_at_detects excursion_only);
  Alcotest.(check bool) "menon misses it" false (Dft.Baselines.menon_xor_detects excursion_only);
  Alcotest.(check bool) "delay test misses it" false
    (Dft.Baselines.delay_test_detects excursion_only);
  Alcotest.(check bool) "amplitude detector catches it" true
    (Dft.Baselines.amplitude_detector_detects excursion_only);
  let stuck = flags ~stuck:true ~exc:false ~reduced:false ~delay:false ~healed:false in
  Alcotest.(check bool) "everyone catches stuck" true
    (Dft.Baselines.stuck_at_detects stuck && Dft.Baselines.menon_xor_detects stuck
   && Dft.Baselines.amplitude_detector_detects stuck)

let test_delay_escape_paper_example () =
  (* the intro's example: 10-gate chain, 10% per-gate tolerance, one
     gate going 2x slower (one extra gate delay) escapes *)
  Alcotest.(check bool) "escapes" true
    (Dft.Baselines.delay_test_escape ~gate_delay:53e-12 ~stages:10 ~tolerance:0.1
       ~extra_delay:53e-12);
  Alcotest.(check bool) "caught when gross" false
    (Dft.Baselines.delay_test_escape ~gate_delay:53e-12 ~stages:10 ~tolerance:0.1
       ~extra_delay:500e-12)

module D = Cml_analysis.Diagnostic

(* ------------------------------------------------------------------ *)
(* process-spread derating of the sharing limit *)

let test_derate_default_near_fifteen () =
  let r = Dft.Derate.effective_limit Dft.Derate.default in
  Alcotest.(check bool)
    (Printf.sprintf "derated limit %d within 13..17" r.Dft.Derate.effective)
    true
    (r.Dft.Derate.effective >= 13 && r.Dft.Derate.effective <= 17);
  Alcotest.(check bool) "well below the nominal 45" true
    (r.Dft.Derate.effective < Dft.Derate.nominal_group_limit);
  Alcotest.(check bool) "mean above the quantile" true
    (r.Dft.Derate.mean_limit > float_of_int r.Dft.Derate.effective)

let test_derate_tight_spec_recovers () =
  let tight =
    Dft.Derate.effective_limit (Dft.Derate.of_spec Cml_defects.Variation.tight_spec)
  in
  let default = Dft.Derate.effective_limit Dft.Derate.default in
  Alcotest.(check bool) "tight process shares more" true
    (tight.Dft.Derate.effective > default.Dft.Derate.effective)

let test_derate_deterministic_across_jobs () =
  let m = Dft.Derate.default in
  let a = Dft.Derate.effective_limit ~jobs:1 m in
  let b = Dft.Derate.effective_limit ~jobs:4 m in
  Alcotest.(check (array int)) "sample-for-sample identical" a.Dft.Derate.limits
    b.Dft.Derate.limits

(* ------------------------------------------------------------------ *)
(* detector-placement optimization *)

module P = Dft.Placement

let adder_sites () =
  let circuit, cells = P.adder_twin ~bits:4 in
  P.sites ~circuit ~cells

let test_placement_chain_single_group () =
  let circuit, cells = P.chain_twin ~stages:8 in
  let plan = P.optimize ~limit:15 (P.sites ~circuit ~cells) in
  Alcotest.(check int) "one group suffices" 1 (List.length plan.P.groups);
  Alcotest.(check (list (list string))) "members in stage order"
    [ [ "x1"; "x2"; "x3"; "x4"; "x5"; "x6"; "x7"; "x8" ] ]
    (P.to_groups plan);
  Alcotest.(check (list string)) "clean" [] (List.map D.to_string (P.check plan))

let test_placement_adder_beats_hand_plan () =
  let sites = adder_sites () in
  let plan = P.optimize ~limit:15 sites in
  Alcotest.(check int) "two groups of ten" 2 (List.length plan.P.groups);
  List.iter
    (fun g -> Alcotest.(check int) "balanced" 10 (List.length g.P.g_members))
    plan.P.groups;
  (* the hand-written plan: first 15 cells in construction order, then
     the remaining 5 — same coverage, same group count, so the
     optimizer must not cost more area *)
  let rec split k xs =
    if k = 0 then ([], xs)
    else match xs with [] -> ([], []) | x :: r -> let h, t = split (k - 1) r in (x :: h, t)
  in
  let g1, g2 = split 15 sites in
  let hand = P.of_groups ~limit:15 [ g1; g2 ] in
  Alcotest.(check bool)
    (Printf.sprintf "area %.3f <= hand %.3f" plan.P.area_overhead hand.P.area_overhead)
    true
    (plan.P.area_overhead <= hand.P.area_overhead +. 1e-12);
  Alcotest.(check (list string)) "optimized plan audits clean" []
    (List.map D.to_string (P.check plan))

let test_placement_realizes_and_audits () =
  let circuit, cells = P.adder_twin ~bits:4 in
  let plan = P.optimize ~limit:15 (P.sites ~circuit ~cells) in
  let b = B.create () in
  let operand name v =
    Array.init 4 (fun k ->
        B.diff_dc_input b ~name:(Printf.sprintf "%s%d" name k) ~value:((v lsr k) land 1 = 1))
  in
  let a = operand "a" 11 and bv = operand "b" 6 in
  let cin = B.diff_dc_input b ~name:"cin" ~value:false in
  let _ = Cml_cells.Adder.ripple_carry b ~name:"add" ~a ~b:bv ~cin in
  let iplan = Dft.Insertion.instrument_groups ~groups:(P.to_groups plan) b in
  Alcotest.(check (list string)) "DFT001-004 clean" []
    (List.map D.to_string (Dft.Audit.check ~max_safe_share:plan.P.limit iplan b))

let test_placement_rules_fire () =
  let sites = adder_sites () in
  (* every cell in one oversized group, with one duplicated member *)
  let dup = List.hd sites in
  let bad = P.of_groups ~limit:15 [ sites; [ dup ] ] in
  let ds = P.check bad in
  Alcotest.(check bool) "PLACE001 over limit" true
    (List.exists (fun (d : D.t) -> d.D.rule = Cml_analysis.Rules.place_over_limit) ds);
  Alcotest.(check bool) "PLACE004 duplicate" true
    (List.exists (fun (d : D.t) -> d.D.rule = Cml_analysis.Rules.place_redundant_detector) ds);
  (* a weak net left out of every group *)
  let weak = { dup with P.obs = 0.001 } in
  let uncovered = { (P.of_groups ~limit:15 [ List.tl sites ]) with P.ranking = [ weak ] } in
  Alcotest.(check bool) "PLACE002 uncovered weak net" true
    (List.exists
       (fun (d : D.t) -> d.D.rule = Cml_analysis.Rules.place_uncovered_weak_net)
       (P.check uncovered))

let test_placement_json_round_trip () =
  let plan = P.optimize ~limit:15 (adder_sites ()) in
  let once = P.of_json (Cml_telemetry.Json.parse (Cml_telemetry.Json.to_string (P.to_json plan))) in
  (* the writer quantizes floats to 6 significant digits, so a single
     round trip is lossy but idempotent *)
  let twice = P.of_json (Cml_telemetry.Json.parse (Cml_telemetry.Json.to_string (P.to_json once))) in
  Alcotest.(check bool) "stable after one round" true (once = twice);
  Alcotest.(check (list (list string))) "grouping survives" (P.to_groups plan) (P.to_groups once);
  Alcotest.(check int) "limit survives" plan.P.limit once.P.limit

let () =
  Alcotest.run "dft"
    [
      ( "construction",
        [
          Alcotest.test_case "vtest created once" `Quick test_vtest_created_once;
          Alcotest.test_case "set_vtest" `Quick test_set_vtest;
          Alcotest.test_case "vtest modes" `Quick test_vtest_modes;
          Alcotest.test_case "v1 devices" `Quick test_v1_devices;
          Alcotest.test_case "v1 resistor load" `Quick test_v1_resistor_load;
          Alcotest.test_case "v2 multi-emitter" `Quick test_v2_multi_emitter_devices;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "v1 silent fault-free" `Slow test_v1_silent_when_fault_free;
          Alcotest.test_case "v1 fires on 1k pipe" `Slow test_v1_fires_on_strong_pipe;
          Alcotest.test_case "v1 monotone in severity" `Slow test_v1_drop_monotone_in_severity;
          Alcotest.test_case "v2 more sensitive" `Slow test_v2_more_sensitive_than_v1;
          Alcotest.test_case "multi-emitter equivalent" `Slow
            test_multi_emitter_detector_equivalent;
          Alcotest.test_case "v1 threshold near 0.57" `Slow test_amplitude_thresholds_v1;
        ] );
      ( "readout",
        [
          Alcotest.test_case "designed thresholds" `Quick test_readout_thresholds_design;
          Alcotest.test_case "pass/fail states" `Quick test_readout_states;
          Alcotest.test_case "hysteresis exists" `Slow test_readout_hysteresis_exists;
        ] );
      ( "sharing",
        [
          Alcotest.test_case "vout decreases with N" `Slow test_sharing_vout_decreases_with_n;
          Alcotest.test_case "roughly linear" `Slow test_sharing_roughly_linear;
          Alcotest.test_case "fault detected under sharing" `Slow test_sharing_detects_fault;
          Alcotest.test_case "max safe rule" `Quick test_max_safe_sharing;
        ] );
      ( "area+baselines",
        [
          Alcotest.test_case "buffer counts" `Quick test_area_buffer_counts;
          Alcotest.test_case "v1 counts" `Quick test_area_v1_counts;
          Alcotest.test_case "multi-emitter saves" `Quick
            test_area_multi_emitter_saves_a_transistor;
          Alcotest.test_case "menon larger" `Quick test_area_menon_much_larger;
          Alcotest.test_case "sharing amortises" `Quick test_area_sharing_amortises;
          Alcotest.test_case "overhead ordering" `Quick test_overhead_ordering;
          Alcotest.test_case "baseline detection models" `Quick test_baseline_detection_models;
          Alcotest.test_case "delay escape example" `Quick test_delay_escape_paper_example;
        ] );
      ( "derate",
        [
          Alcotest.test_case "default spec lands near 15" `Quick test_derate_default_near_fifteen;
          Alcotest.test_case "tight spec recovers" `Quick test_derate_tight_spec_recovers;
          Alcotest.test_case "deterministic across jobs" `Quick
            test_derate_deterministic_across_jobs;
        ] );
      ( "placement",
        [
          Alcotest.test_case "chain fits one group" `Quick test_placement_chain_single_group;
          Alcotest.test_case "adder beats the hand plan" `Quick
            test_placement_adder_beats_hand_plan;
          Alcotest.test_case "realizes and audits clean" `Quick test_placement_realizes_and_audits;
          Alcotest.test_case "place rules fire" `Quick test_placement_rules_fire;
          Alcotest.test_case "json round trip" `Quick test_placement_json_round_trip;
        ] );
    ]
