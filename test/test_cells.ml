(* Tests for the CML cell library: process calibration, the Figure-1
   buffer, logic function of every gate (checked by DC analysis over
   all input combinations), latches (checked in transient), and the
   buffer chain of Figure 3. *)

module N = Cml_spice.Netlist
module E = Cml_spice.Engine
module T = Cml_spice.Transient
module B = Cml_cells.Builder

let proc = Cml_cells.Process.default

let check_close ?(eps = 1e-3) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.6g, got %.6g" msg expected actual

(* read a differential signal as a boolean from a DC solution *)
let logic_of x (d : B.diff) =
  let vp = E.voltage x d.B.p and vn = E.voltage x d.B.n in
  if vp -. vn > 0.05 then Some true
  else if vn -. vp > 0.05 then Some false
  else None

(* ------------------------------------------------------------------ *)
(* Process calibration *)

let test_vbias_sets_tail_current () =
  (* a lone tail transistor biased by v_bias must sink i_tail *)
  let b = B.create () in
  let nd = B.node b "load" in
  N.resistor b.B.net ~name:"rl" b.B.vgnd nd 100.0;
  B.tail_source b ~name:"q" nd;
  let sim = E.compile b.B.net in
  let x = E.dc_operating_point sim in
  let i = (proc.Cml_cells.Process.vgnd -. E.voltage x nd) /. 100.0 in
  check_close "tail current" proc.Cml_cells.Process.i_tail i ~eps:0.03e-3

let test_vbe_on_target () =
  let vbe = Cml_cells.Process.vbe_on proc in
  Alcotest.(check bool) (Printf.sprintf "vbe about 0.9, got %g" vbe) true
    (vbe > 0.85 && vbe < 0.95)

let test_swing_product () =
  check_close "swing = I*R" proc.Cml_cells.Process.swing
    (proc.Cml_cells.Process.i_tail *. proc.Cml_cells.Process.r_load)
    ~eps:1e-9

let test_with_tail_current () =
  let p2 = Cml_cells.Process.with_tail_current proc 1e-3 in
  check_close "swing follows" 0.5 p2.Cml_cells.Process.swing ~eps:1e-9

(* ------------------------------------------------------------------ *)
(* Buffer *)

let buffer_dc value =
  let b = B.create () in
  let input = B.diff_dc_input b ~name:"in" ~value in
  let out = Cml_cells.Buffer_cell.add b ~name:"x1" ~input in
  let sim = E.compile b.B.net in
  let x = E.dc_operating_point sim in
  (x, out)

let test_buffer_follows_true () =
  let x, out = buffer_dc true in
  Alcotest.(check bool) "out = 1" true (logic_of x out = Some true)

let test_buffer_follows_false () =
  let x, out = buffer_dc false in
  Alcotest.(check bool) "out = 0" true (logic_of x out = Some false)

let test_buffer_levels () =
  let x, out = buffer_dc true in
  check_close "high level at rail" proc.Cml_cells.Process.vgnd (E.voltage x out.B.p) ~eps:0.02;
  check_close "low level one swing down"
    (Cml_cells.Process.v_low proc)
    (E.voltage x out.B.n) ~eps:0.02

let test_inverter () =
  let b = B.create () in
  let input = B.diff_dc_input b ~name:"in" ~value:true in
  let out = Cml_cells.Buffer_cell.inverter b ~name:"x1" ~input in
  let x = E.dc_operating_point (E.compile b.B.net) in
  Alcotest.(check bool) "inverted" true (logic_of x out = Some false)

let test_buffer_device_names () =
  let b = B.create () in
  let input = B.diff_dc_input b ~name:"in" ~value:true in
  ignore (Cml_cells.Buffer_cell.add b ~name:"x1" ~input);
  List.iter
    (fun d -> Alcotest.(check bool) (d ^ " exists") true (N.mem_device b.B.net d))
    [ "x1.q1"; "x1.q2"; "x1.q3"; "x1.r1"; "x1.r2" ]

(* ------------------------------------------------------------------ *)
(* Gates: exhaustive truth tables via DC *)

let gate_dc build_gate a_val b_val =
  let b = B.create () in
  let a = B.diff_dc_input b ~name:"ia" ~value:a_val in
  let bb = B.diff_dc_input b ~name:"ib" ~value:b_val in
  let out = build_gate b a bb in
  let x = E.dc_operating_point (E.compile b.B.net) in
  logic_of x out

let truth_table name build_gate expected () =
  List.iter
    (fun (a, bv) ->
      let got = gate_dc build_gate a bv in
      let want = Some (expected a bv) in
      if got <> want then
        Alcotest.failf "%s(%b,%b): expected %s, got %s" name a bv
          (match want with Some true -> "1" | Some false -> "0" | None -> "x")
          (match got with Some true -> "1" | Some false -> "0" | None -> "x"))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_and2 =
  truth_table "and2"
    (fun b a bb -> Cml_cells.Gates.and2 b ~name:"g" ~a ~b:bb)
    (fun a b -> a && b)

let test_or2 =
  truth_table "or2"
    (fun b a bb -> Cml_cells.Gates.or2 b ~name:"g" ~a ~b:bb)
    (fun a b -> a || b)

let test_xor2 =
  truth_table "xor2"
    (fun b a bb -> Cml_cells.Gates.xor2 b ~name:"g" ~a ~b:bb)
    (fun a b -> a <> b)

let test_mux_sel_true =
  truth_table "mux(sel=1)"
    (fun b a bb ->
      let sel = B.diff_dc_input b ~name:"sel" ~value:true in
      Cml_cells.Gates.mux21 b ~name:"g" ~sel ~a ~b:bb)
    (fun a _ -> a)

let test_mux_sel_false =
  truth_table "mux(sel=0)"
    (fun b a bb ->
      let sel = B.diff_dc_input b ~name:"sel" ~value:false in
      Cml_cells.Gates.mux21 b ~name:"g" ~sel ~a ~b:bb)
    (fun _ b -> b)

let test_level_shifter_drop () =
  let b = B.create () in
  let input = B.diff_dc_input b ~name:"in" ~value:true in
  let shifted = B.level_shift_diff b ~name:"ls" ~input in
  let x = E.dc_operating_point (E.compile b.B.net) in
  let drop = E.voltage x input.B.p -. E.voltage x shifted.B.p in
  Alcotest.(check bool) (Printf.sprintf "one VBE drop, got %g" drop) true
    (drop > 0.8 && drop < 1.0)

(* ------------------------------------------------------------------ *)
(* Latch / flip-flop (transient) *)

let test_latch_transparent_then_holds () =
  let b = B.create () in
  let proc = b.B.proc in
  let hi = proc.Cml_cells.Process.vgnd and lo = Cml_cells.Process.v_low proc in
  (* clk: high until 2 ns then low; d: drops at 3 ns while clk low *)
  let clk = B.fresh_diff b "clk" in
  let mk name pos wave = N.vsource b.B.net ~name ~pos ~neg:N.gnd wave in
  mk "clkp" clk.B.p (Cml_spice.Waveform.Pwl [| (0.0, hi); (2e-9, hi); (2.05e-9, lo) |]);
  mk "clkn" clk.B.n (Cml_spice.Waveform.Pwl [| (0.0, lo); (2e-9, lo); (2.05e-9, hi) |]);
  let d = B.fresh_diff b "d" in
  mk "dp" d.B.p (Cml_spice.Waveform.Pwl [| (0.0, hi); (3e-9, hi); (3.05e-9, lo) |]);
  mk "dn" d.B.n (Cml_spice.Waveform.Pwl [| (0.0, lo); (3e-9, lo); (3.05e-9, hi) |]);
  let q = Cml_cells.Latch.d_latch b ~name:"l1" ~d ~clk in
  let sim = E.compile b.B.net in
  let r = T.run sim b.B.net (T.config ~tstop:5e-9 ~max_step:10e-12 ()) in
  let wq = Cml_wave.Wave.create r.T.times (T.diff_trace r q.B.p q.B.n) in
  Alcotest.(check bool) "transparent: q follows d=1" true
    (Cml_wave.Wave.value_at wq 1.5e-9 > 0.1);
  Alcotest.(check bool) "holds 1 after clk falls and d drops" true
    (Cml_wave.Wave.value_at wq 4.5e-9 > 0.1)

let test_dff_captures_on_rising_edge () =
  let b = B.create () in
  let clk = B.diff_square_input b ~name:"clk" ~freq:250e6 () in
  (* d toggles at half the clock rate: q must follow d with one cycle
     latency, i.e. become a 125 MHz square itself *)
  let d = B.diff_square_input b ~name:"d" ~freq:125e6 () in
  let q = Cml_cells.Latch.dff b ~name:"ff" ~d ~clk in
  let sim = E.compile b.B.net in
  let r = T.run sim b.B.net (T.config ~tstop:20e-9 ~max_step:10e-12 ()) in
  let wq = Cml_wave.Wave.create r.T.times (T.diff_trace r q.B.p q.B.n) in
  let crossings = Cml_wave.Measure.crossings wq ~level:0.0 in
  let late = List.filter (fun t -> t > 6e-9) crossings in
  (* a 125 MHz output toggles every 4 ns: expect roughly 3-4 crossings
     in the final 14 ns *)
  Alcotest.(check bool)
    (Printf.sprintf "q toggles at data rate (%d crossings)" (List.length late))
    true
    (List.length late >= 2 && List.length late <= 5)

(* ------------------------------------------------------------------ *)
(* Chain *)

let test_chain_structure () =
  let chain = Cml_cells.Chain.build_dc ~stages:5 ~value:true () in
  Alcotest.(check int) "5 stages" 5 (Array.length chain.Cml_cells.Chain.stages);
  Alcotest.(check string) "stage name" "x3" (Cml_cells.Chain.stage_name 3);
  Alcotest.(check bool) "devices exist" true
    (N.mem_device chain.Cml_cells.Chain.builder.B.net "x5.q3")

let test_chain_dc_propagates () =
  let chain = Cml_cells.Chain.build_dc ~stages:6 ~value:true () in
  let x = E.dc_operating_point (E.compile chain.Cml_cells.Chain.builder.B.net) in
  for i = 1 to 6 do
    let out = Cml_cells.Chain.output chain i in
    Alcotest.(check bool)
      (Printf.sprintf "stage %d follows input" i)
      true
      (logic_of x out = Some true)
  done

let test_chain_output_bounds () =
  let chain = Cml_cells.Chain.build_dc ~stages:3 ~value:false () in
  Alcotest.check_raises "stage 0" (Invalid_argument "Chain.output: bad stage index")
    (fun () -> ignore (Cml_cells.Chain.output chain 0));
  Alcotest.check_raises "stage 4" (Invalid_argument "Chain.output: bad stage index")
    (fun () -> ignore (Cml_cells.Chain.output chain 4))

let test_chain_gate_delay_calibration () =
  (* the headline calibration: nominal gate delay close to the
     paper's 53 ps *)
  let freq = 100e6 in
  let chain = Cml_cells.Chain.build ~stages:4 ~freq () in
  let net = chain.Cml_cells.Chain.builder.B.net in
  let sim = E.compile net in
  let r = T.run sim net (T.config ~tstop:15e-9 ~max_step:10e-12 ()) in
  let wave nd = Cml_wave.Wave.create r.T.times (T.node_trace r nd) in
  let d2 = Cml_cells.Chain.output chain 2 and d3 = Cml_cells.Chain.output chain 3 in
  let x2 = Cml_wave.Measure.differential_crossings (wave d2.B.p) (wave d2.B.n) in
  let x3 = Cml_wave.Measure.differential_crossings (wave d3.B.p) (wave d3.B.n) in
  match List.filter (fun t -> t > 10e-9) x2 with
  | t2 :: _ ->
      let t3 = List.find (fun t -> t > t2) x3 in
      let delay_ps = (t3 -. t2) *. 1e12 in
      Alcotest.(check bool)
        (Printf.sprintf "gate delay 40-70 ps, got %.1f" delay_ps)
        true
        (delay_ps > 40.0 && delay_ps < 70.0)
  | [] -> Alcotest.fail "no crossings"

let test_chain_swing_nominal () =
  let freq = 100e6 in
  let chain = Cml_cells.Chain.build ~stages:4 ~freq () in
  let net = chain.Cml_cells.Chain.builder.B.net in
  let sim = E.compile net in
  let r = T.run sim net (T.config ~tstop:15e-9 ~max_step:10e-12 ()) in
  let d3 = Cml_cells.Chain.output chain 3 in
  let w = Cml_wave.Wave.create r.T.times (T.node_trace r d3.B.p) in
  let swing = Cml_wave.Measure.swing w ~t_from:8e-9 in
  Alcotest.(check bool)
    (Printf.sprintf "swing about 250 mV, got %.1f mV" (swing *. 1e3))
    true
    (swing > 0.22 && swing < 0.29)

let test_ring_oscillates () =
  let ring = Cml_cells.Ring.build () in
  match Cml_cells.Ring.measure_frequency ring with
  | None -> Alcotest.fail "ring never oscillated"
  | Some freq ->
      let expected = Cml_cells.Ring.expected_frequency ring in
      let ratio = freq /. expected in
      Alcotest.(check bool)
        (Printf.sprintf "frequency %.2f GHz within 30%% of %.2f GHz" (freq /. 1e9)
           (expected /. 1e9))
        true
        (ratio > 0.7 && ratio < 1.3)

let test_ring_more_stages_slower () =
  let f stages =
    match Cml_cells.Ring.measure_frequency (Cml_cells.Ring.build ~stages ()) with
    | Some f -> f
    | None -> Alcotest.fail "no oscillation"
  in
  let f5 = f 5 and f9 = f 9 in
  Alcotest.(check bool)
    (Printf.sprintf "9 stages slower than 5 (%.2f vs %.2f GHz)" (f9 /. 1e9) (f5 /. 1e9))
    true (f9 < f5)

(* ------------------------------------------------------------------ *)
(* Transfer curves / noise margins *)

let buffer_build b input = Cml_cells.Buffer_cell.add b ~name:"g" ~input

let test_transfer_shape () =
  let curve = Cml_cells.Transfer.dc_transfer ~build:buffer_build () in
  let m = Cml_cells.Transfer.margins curve in
  Alcotest.(check bool)
    (Printf.sprintf "gain %.2f in [3, 8]" m.Cml_cells.Transfer.gain)
    true
    (m.Cml_cells.Transfer.gain > 3.0 && m.Cml_cells.Transfer.gain < 8.0);
  Alcotest.(check bool)
    (Printf.sprintf "output saturates near +-swing (%.3f)" m.Cml_cells.Transfer.v_oh)
    true
    (Float.abs (m.Cml_cells.Transfer.v_oh -. proc.Cml_cells.Process.swing) < 0.02
    && Float.abs (m.Cml_cells.Transfer.v_ol +. proc.Cml_cells.Process.swing) < 0.02);
  Alcotest.(check bool)
    (Printf.sprintf "healthy noise margins (%.0f / %.0f mV)"
       (1e3 *. m.Cml_cells.Transfer.nm_low)
       (1e3 *. m.Cml_cells.Transfer.nm_high))
    true
    (m.Cml_cells.Transfer.nm_low > 0.1 && m.Cml_cells.Transfer.nm_high > 0.1)

let test_transfer_pipe_increases_margin () =
  (* the paper, section 4: "several defects map into increased
     noise-margins" - the tail pipe enlarges the swing *)
  let good = Cml_cells.Transfer.margins (Cml_cells.Transfer.dc_transfer ~build:buffer_build ()) in
  let prepare b =
    Cml_defects.Inject.apply b.B.net (Cml_defects.Defect.Pipe { device = "g.q3"; r = 4e3 })
  in
  let bad =
    Cml_cells.Transfer.margins (Cml_cells.Transfer.dc_transfer ~build:buffer_build ~prepare ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "noise margin increased (%.0f -> %.0f mV)"
       (1e3 *. good.Cml_cells.Transfer.nm_high)
       (1e3 *. bad.Cml_cells.Transfer.nm_high))
    true
    (bad.Cml_cells.Transfer.nm_high > good.Cml_cells.Transfer.nm_high +. 0.05)

let test_transfer_dead_gate_zero_margin () =
  let prepare b =
    Cml_defects.Inject.apply b.B.net
      (Cml_defects.Defect.Terminal_short { device = "g.q1"; t1 = "b"; t2 = "e" })
  in
  let m =
    Cml_cells.Transfer.margins (Cml_cells.Transfer.dc_transfer ~build:buffer_build ~prepare ())
  in
  Alcotest.(check bool) "gain collapsed" true (Float.abs m.Cml_cells.Transfer.gain < 0.5)

(* ------------------------------------------------------------------ *)
(* .bench -> CML compiler *)

module Cp = Cml_cells.Compile
module L = Cml_logic

let test_compile_names_match_contract () =
  (* every physical instance resolves under the Circuit.net_names
     contract the DFT planner uses, with the right polarity nodes *)
  let c = L.Bench_format.s27 () in
  let d = Cp.compile ~freq:200e6 c in
  let names = L.Circuit.net_names c in
  Array.iteri
    (fun id nm ->
      match c.L.Circuit.gates.(id) with
      | L.Circuit.Input _ -> ()
      | _ -> (
          match Cp.find_cell d nm with
          | Some _ -> ()
          | None -> Alcotest.failf "net %d (%s) has no cell" id nm))
    names;
  (* DFF plain names alias the slave output nodes *)
  Array.iter
    (fun id ->
      match Cp.find_cell d names.(id) with
      | Some diff ->
          Alcotest.(check string)
            (names.(id) ^ " aliases its slave output")
            (names.(id) ^ ".s.op")
            (N.node_name d.Cp.builder.B.net diff.B.p)
      | None -> Alcotest.failf "dff %s unresolved" names.(id))
    c.L.Circuit.dffs

let test_compile_physical_and_defaults () =
  let c =
    L.Bench_format.of_string "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nx = NOT(a)\ny = AND(x, b)\n"
  in
  let d = Cp.compile c in
  Alcotest.(check bool) "free NOT is not physical" false (Cp.physical d "x");
  Alcotest.(check bool) "AND is physical" true (Cp.physical d "y");
  Alcotest.(check bool) "input is not physical" false (Cp.physical d "a");
  Alcotest.(check string) "default dut skips the free NOT" "y" (Cp.default_dut d);
  Alcotest.(check string) "default output is the declared one" "y" (Cp.default_output d)

let test_compile_dc_converges () =
  (* compiled s27 (flip-flops, free NOTs, fanout > 2 nets) reaches a
     DC operating point with every declared output at a legal CML
     level *)
  let c = L.Bench_format.s27 () in
  let d = Cp.compile ~freq:200e6 c in
  let sim = E.compile (Cp.netlist d) in
  let x = E.dc_operating_point sim in
  let proc = Cml_cells.Process.default in
  let vgnd = proc.Cml_cells.Process.vgnd and swing = proc.Cml_cells.Process.swing in
  (* legal band: the rail down to one VBE level shift plus a swing *)
  let vlow = vgnd -. Cml_cells.Process.vbe_on proc -. (2.0 *. swing) in
  List.iter
    (fun (nm, diff) ->
      let vp = E.voltage x diff.B.p and vn = E.voltage x diff.B.n in
      if vp < vlow || vp > vgnd +. 1e-6 then
        Alcotest.failf "%s.p = %.3f V outside CML levels" nm vp;
      if vn < vlow || vn > vgnd +. 1e-6 then
        Alcotest.failf "%s.n = %.3f V outside CML levels" nm vn;
      if Float.abs (vp -. vn) > 2.0 *. swing then
        Alcotest.failf "%s differential |%.3f - %.3f| exceeds 2 swings" nm vp vn)
    d.Cp.outputs

let () =
  Alcotest.run "cells"
    [
      ( "process",
        [
          Alcotest.test_case "vbias sets tail current" `Quick test_vbias_sets_tail_current;
          Alcotest.test_case "vbe_on target" `Quick test_vbe_on_target;
          Alcotest.test_case "swing product" `Quick test_swing_product;
          Alcotest.test_case "with_tail_current" `Quick test_with_tail_current;
        ] );
      ( "buffer",
        [
          Alcotest.test_case "follows true" `Quick test_buffer_follows_true;
          Alcotest.test_case "follows false" `Quick test_buffer_follows_false;
          Alcotest.test_case "output levels" `Quick test_buffer_levels;
          Alcotest.test_case "inverter" `Quick test_inverter;
          Alcotest.test_case "device names" `Quick test_buffer_device_names;
        ] );
      ( "gates",
        [
          Alcotest.test_case "and2 truth table" `Quick test_and2;
          Alcotest.test_case "or2 truth table" `Quick test_or2;
          Alcotest.test_case "xor2 truth table" `Quick test_xor2;
          Alcotest.test_case "mux sel=1" `Quick test_mux_sel_true;
          Alcotest.test_case "mux sel=0" `Quick test_mux_sel_false;
          Alcotest.test_case "level shifter drop" `Quick test_level_shifter_drop;
        ] );
      ( "sequential",
        [
          Alcotest.test_case "latch transparent/hold" `Slow test_latch_transparent_then_holds;
          Alcotest.test_case "dff edge capture" `Slow test_dff_captures_on_rising_edge;
        ] );
      ( "chain",
        [
          Alcotest.test_case "structure" `Quick test_chain_structure;
          Alcotest.test_case "dc propagation" `Quick test_chain_dc_propagates;
          Alcotest.test_case "output bounds" `Quick test_chain_output_bounds;
          Alcotest.test_case "gate delay calibration" `Slow test_chain_gate_delay_calibration;
          Alcotest.test_case "ring oscillator frequency" `Slow test_ring_oscillates;
          Alcotest.test_case "ring scaling with stages" `Slow test_ring_more_stages_slower;
        ] );
      ( "transfer",
        [
          Alcotest.test_case "buffer transfer shape" `Slow test_transfer_shape;
          Alcotest.test_case "pipe increases noise margin" `Slow
            test_transfer_pipe_increases_margin;
          Alcotest.test_case "dead gate" `Slow test_transfer_dead_gate_zero_margin;
          Alcotest.test_case "nominal swing" `Slow test_chain_swing_nominal;
        ] );
      ( "compile",
        [
          Alcotest.test_case "names match planner contract" `Quick
            test_compile_names_match_contract;
          Alcotest.test_case "physical cells and defaults" `Quick
            test_compile_physical_and_defaults;
          Alcotest.test_case "s27 DC converges" `Quick test_compile_dc_converges;
        ] );
    ]
