(* Validation of the cml_spice engine against hand-computable and
   analytically solvable circuits: resistive networks, RC transients,
   pn junctions, BJT configurations, sources and sweeps. *)

module N = Cml_spice.Netlist
module E = Cml_spice.Engine
module W = Cml_spice.Waveform
module T = Cml_spice.Transient

let vt = Cml_spice.Models.boltzmann_vt

let check_close ?(eps = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9g, got %.9g (tol %.2g)" msg expected actual eps

(* ------------------------------------------------------------------ *)
(* Waveforms *)

let test_wave_dc () =
  check_close "dc" 2.5 (W.value (W.Dc 2.5) 123.0)

let test_wave_pulse_shape () =
  let p =
    W.Pulse { v1 = 0.0; v2 = 1.0; delay = 1.0; rise = 1.0; fall = 1.0; width = 2.0; period = 0.0 }
  in
  check_close "before" 0.0 (W.value p 0.5);
  check_close "mid-rise" 0.5 (W.value p 1.5);
  check_close "top" 1.0 (W.value p 3.0);
  check_close "mid-fall" 0.5 (W.value p 4.5);
  check_close "after" 0.0 (W.value p 6.0)

let test_wave_pulse_periodic () =
  let p =
    W.Pulse { v1 = 0.0; v2 = 1.0; delay = 0.0; rise = 0.1; fall = 0.1; width = 0.4; period = 1.0 }
  in
  check_close "cycle0 top" 1.0 (W.value p 0.3);
  check_close "cycle3 top" 1.0 (W.value p 3.3);
  check_close "cycle3 low" 0.0 (W.value p 3.8)

let test_wave_sine () =
  let s = W.Sine { offset = 1.0; ampl = 2.0; freq = 1.0; delay = 0.0; phase = 0.0 } in
  check_close "zero" 1.0 (W.value s 0.0);
  check_close "quarter" 3.0 (W.value s 0.25) ~eps:1e-9

let test_wave_pwl () =
  let p = W.Pwl [| (0.0, 0.0); (1.0, 2.0); (3.0, -2.0) |] in
  check_close "interior 1" 1.0 (W.value p 0.5);
  check_close "interior 2" 0.0 (W.value p 2.0);
  check_close "clamped left" 0.0 (W.value p (-5.0));
  check_close "clamped right" (-2.0) (W.value p 9.0)

let test_wave_breakpoints () =
  let p =
    W.Pulse { v1 = 0.0; v2 = 1.0; delay = 0.0; rise = 0.1; fall = 0.1; width = 0.4; period = 1.0 }
  in
  let bps = W.breakpoints p ~tstop:2.0 in
  Alcotest.(check bool) "contains first fall corner" true (List.exists (fun t -> Float.abs (t -. 0.5) < 1e-12) bps);
  Alcotest.(check bool) "sorted" true (List.sort compare bps = bps);
  Alcotest.(check bool) "inside range" true (List.for_all (fun t -> t > 0.0 && t < 2.0) bps)

let test_wave_square () =
  let s = W.square ~v_low:1.0 ~v_high:2.0 ~freq:1e6 ~edge:10e-9 () in
  check_close "high" 2.0 (W.value s 200e-9);
  check_close "low" 1.0 (W.value s 700e-9)

(* ------------------------------------------------------------------ *)
(* DC: resistive circuits *)

let divider solver =
  let net = N.create () in
  let vin = N.node net "in" and vout = N.node net "out" in
  N.vsource net ~name:"V1" ~pos:vin ~neg:N.gnd (W.Dc 10.0);
  N.resistor net ~name:"R1" vin vout 1000.0;
  N.resistor net ~name:"R2" vout N.gnd 3000.0;
  let sim = E.compile ~options:{ E.default_options with solver } net in
  let x = E.dc_operating_point sim in
  check_close "divider out" 7.5 (E.voltage x vout);
  (* branch current of V1: current flows from + through source = -10/4k *)
  check_close "source current" (-0.0025) x.(E.branch_unknown sim "V1") ~eps:1e-9

let test_divider_dense () = divider E.Dense_solver
let test_divider_sparse () = divider E.Sparse_solver

let test_resistor_ladder () =
  (* 10-section ladder: voltage halves each section in the infinite
     limit; just verify against a dense hand solve via superposition:
     equal resistors in series, V(k) linear. *)
  let net = N.create () in
  let top = N.node net "n0" in
  N.vsource net ~name:"V1" ~pos:top ~neg:N.gnd (W.Dc 5.0);
  let rec build k prev =
    if k > 10 then ()
    else begin
      let nd = N.node net (Printf.sprintf "n%d" k) in
      N.resistor net ~name:(Printf.sprintf "R%d" k) prev nd 100.0;
      build (k + 1) nd
    end
  in
  build 1 top;
  N.resistor net ~name:"Rload" (N.node net "n10") N.gnd 100.0;
  let sim = E.compile net in
  let x = E.dc_operating_point sim in
  (* series string of 11 equal resistors from 5 V to ground *)
  check_close "middle node" (5.0 *. 6.0 /. 11.0) (E.voltage x (N.node net "n5")) ~eps:1e-6

let test_current_source_into_resistor () =
  let net = N.create () in
  let out = N.node net "out" in
  N.isource net ~name:"I1" ~pos:N.gnd ~neg:out (W.Dc 1e-3);
  N.resistor net ~name:"R1" out N.gnd 2000.0;
  let sim = E.compile net in
  let x = E.dc_operating_point sim in
  check_close "I*R" 2.0 (E.voltage x out)

let test_vcvs_amplifier () =
  let net = N.create () in
  let inp = N.node net "in" and out = N.node net "out" in
  N.vsource net ~name:"V1" ~pos:inp ~neg:N.gnd (W.Dc 0.5);
  N.vcvs net ~name:"E1" ~pos:out ~neg:N.gnd ~cpos:inp ~cneg:N.gnd 10.0;
  N.resistor net ~name:"R1" out N.gnd 1000.0;
  let sim = E.compile net in
  let x = E.dc_operating_point sim in
  check_close "gain 10" 5.0 (E.voltage x out)

let test_vccs_transconductance () =
  let net = N.create () in
  let inp = N.node net "in" and out = N.node net "out" in
  N.vsource net ~name:"V1" ~pos:inp ~neg:N.gnd (W.Dc 1.0);
  N.vccs net ~name:"G1" ~pos:out ~neg:N.gnd ~cpos:inp ~cneg:N.gnd 1e-3;
  N.resistor net ~name:"R1" out N.gnd 1000.0;
  let sim = E.compile net in
  let x = E.dc_operating_point sim in
  (* 1 mA pulled out of "out" through the VCCS into ground: -1 V *)
  check_close "gm into load" (-1.0) (E.voltage x out)

(* ------------------------------------------------------------------ *)
(* DC: junctions *)

let test_diode_forward_drop () =
  let net = N.create () in
  let a = N.node net "a" in
  N.isource net ~name:"I1" ~pos:N.gnd ~neg:a (W.Dc 1e-3);
  N.diode net ~name:"D1" ~anode:a ~cathode:N.gnd ();
  let sim = E.compile net in
  let x = E.dc_operating_point sim in
  let is = Cml_spice.Models.default_diode.Cml_spice.Models.d_is in
  let expected = vt *. log ((1e-3 /. is) +. 1.0) in
  check_close "vf at 1 mA" expected (E.voltage x a) ~eps:1e-4

let test_diode_reverse_blocks () =
  let net = N.create () in
  let a = N.node net "a" in
  N.vsource net ~name:"V1" ~pos:a ~neg:N.gnd (W.Dc (-5.0)) ;
  N.diode net ~name:"D1" ~anode:(N.node net "k") ~cathode:N.gnd ();
  N.resistor net ~name:"R1" a (N.node net "k") 1000.0;
  let sim = E.compile net in
  let x = E.dc_operating_point sim in
  (* reverse-biased: essentially all of -5 V appears across the diode *)
  Alcotest.(check bool) "cathode node close to source" true (E.voltage x (N.node net "k") < -4.9)

let test_bjt_vbe_at_half_ma () =
  (* the calibration target of the paper's process: VBE about 0.9 V
     at the 0.5 mA tail current *)
  let net = N.create () in
  let b = N.node net "b" and c = N.node net "c" in
  N.vsource net ~name:"VC" ~pos:c ~neg:N.gnd (W.Dc 3.0);
  N.isource net ~name:"IB" ~pos:N.gnd ~neg:b (W.Dc 5e-6);
  N.bjt net ~name:"Q1" ~c ~b ~e:N.gnd ();
  let sim = E.compile net in
  let x = E.dc_operating_point sim in
  let vbe = E.voltage x b in
  Alcotest.(check bool)
    (Printf.sprintf "vbe in [0.85, 0.95], got %g" vbe)
    true
    (vbe > 0.85 && vbe < 0.95)

let test_bjt_beta_relation () =
  let net = N.create () in
  let b = N.node net "b" and c = N.node net "c" in
  N.vsource net ~name:"VC" ~pos:c ~neg:N.gnd (W.Dc 3.0);
  N.isource net ~name:"IB" ~pos:N.gnd ~neg:b (W.Dc 2e-6);
  N.bjt net ~name:"Q1" ~c ~b ~e:N.gnd ();
  let sim = E.compile net in
  let x = E.dc_operating_point sim in
  (* collector current = beta * base current; read it from VC's branch *)
  let ic = -.x.(E.branch_unknown sim "VC") in
  check_close "ic = bf * ib" (100.0 *. 2e-6) ic ~eps:2e-6

let test_emitter_follower () =
  let net = N.create () in
  let b = N.node net "b" and e = N.node net "e" and vcc = N.node net "vcc" in
  N.vsource net ~name:"VCC" ~pos:vcc ~neg:N.gnd (W.Dc 5.0);
  N.vsource net ~name:"VB" ~pos:b ~neg:N.gnd (W.Dc 2.0);
  N.bjt net ~name:"Q1" ~c:vcc ~b ~e ();
  N.resistor net ~name:"RE" e N.gnd 2000.0;
  let sim = E.compile net in
  let x = E.dc_operating_point sim in
  let ve = E.voltage x e in
  Alcotest.(check bool)
    (Printf.sprintf "ve about vb - vbe, got %g" ve)
    true
    (ve > 1.0 && ve < 1.25)

let test_differential_pair_steering () =
  (* the heart of CML: a 250 mV differential input fully steers the
     tail current to one side *)
  let net = N.create () in
  let vcc = N.node net "vcc" in
  let bp = N.node net "bp" and bn = N.node net "bn" in
  let op = N.node net "op" and on = N.node net "on" in
  let tail = N.node net "tail" in
  N.vsource net ~name:"VCC" ~pos:vcc ~neg:N.gnd (W.Dc 3.3);
  N.vsource net ~name:"VP" ~pos:bp ~neg:N.gnd (W.Dc 2.5);
  N.vsource net ~name:"VN" ~pos:bn ~neg:N.gnd (W.Dc 2.25);
  N.resistor net ~name:"RP" vcc op 500.0;
  N.resistor net ~name:"RN" vcc on 500.0;
  N.bjt net ~name:"QP" ~c:op ~b:bp ~e:tail ();
  N.bjt net ~name:"QN" ~c:on ~b:bn ~e:tail ();
  N.isource net ~name:"IT" ~pos:tail ~neg:N.gnd (W.Dc 0.5e-3);
  let sim = E.compile net in
  let x = E.dc_operating_point sim in
  let vop = E.voltage x op and von = E.voltage x on in
  (* QP on: its collector drops by about I*R; QN off: collector at rail *)
  check_close "off side at rail" 3.3 von ~eps:0.01;
  check_close "on side dropped" (3.3 -. 0.25) vop ~eps:0.01

let test_multi_emitter_equals_parallel () =
  let build use_multi =
    let net = N.create () in
    let b = N.node net "b" and c = N.node net "c" in
    let e1 = N.node net "e1" and e2 = N.node net "e2" in
    N.vsource net ~name:"VC" ~pos:c ~neg:N.gnd (W.Dc 3.0);
    N.vsource net ~name:"VB" ~pos:b ~neg:N.gnd (W.Dc 0.8);
    N.resistor net ~name:"R1" e1 N.gnd 1000.0;
    N.resistor net ~name:"R2" e2 N.gnd 1500.0;
    if use_multi then N.bjt_multi net ~name:"Q1" ~c ~b ~emitters:[| e1; e2 |] ()
    else begin
      N.bjt net ~name:"Q1a" ~c ~b ~e:e1 ();
      N.bjt net ~name:"Q1b" ~c ~b ~e:e2 ()
    end;
    let sim = E.compile net in
    let x = E.dc_operating_point sim in
    (E.voltage x e1, E.voltage x e2)
  in
  let m1, m2 = build true and p1, p2 = build false in
  check_close "e1 same" p1 m1 ~eps:1e-9;
  check_close "e2 same" p2 m2 ~eps:1e-9

(* ------------------------------------------------------------------ *)
(* Transient *)

let test_rc_charging () =
  (* R = 1k, C = 1 uF, step 0 -> 1 V: v(t) = 1 - exp(-t/RC) *)
  let net = N.create () in
  let inp = N.node net "in" and out = N.node net "out" in
  N.vsource net ~name:"V1" ~pos:inp ~neg:N.gnd
    (W.Pulse { v1 = 0.0; v2 = 1.0; delay = 1e-4; rise = 1e-6; fall = 1e-6; width = 1.0; period = 0.0 });
  N.resistor net ~name:"R1" inp out 1000.0;
  N.capacitor net ~name:"C1" out N.gnd 1e-6;
  let sim = E.compile net in
  let cfg = T.config ~tstop:5e-3 ~max_step:2e-5 () in
  let r = T.run sim net cfg in
  let w = Cml_wave.Wave.create r.T.times (T.node_trace r out) in
  let tau = 1e-3 in
  List.iter
    (fun mult ->
      let t = 1e-4 +. 1e-6 +. (mult *. tau) in
      let expected = 1.0 -. exp (-.(mult *. tau) /. tau) in
      check_close
        (Printf.sprintf "rc at %g tau" mult)
        expected
        (Cml_wave.Wave.value_at w t)
        ~eps:5e-3)
    [ 0.5; 1.0; 2.0; 3.0 ]

let test_rc_discharge_from_dc () =
  (* start charged via DC op, then input falls at t = 1 us *)
  let net = N.create () in
  let inp = N.node net "in" and out = N.node net "out" in
  N.vsource net ~name:"V1" ~pos:inp ~neg:N.gnd
    (W.Pulse { v1 = 2.0; v2 = 0.0; delay = 1e-6; rise = 1e-8; fall = 1e-8; width = 1.0; period = 0.0 });
  N.resistor net ~name:"R1" inp out 1000.0;
  N.capacitor net ~name:"C1" out N.gnd 1e-9;
  let sim = E.compile net in
  let r = T.run sim net (T.config ~tstop:6e-6 ~max_step:2e-8 ()) in
  let w = Cml_wave.Wave.create r.T.times (T.node_trace r out) in
  check_close "initially charged" 2.0 (Cml_wave.Wave.value_at w 0.5e-6) ~eps:1e-3;
  let tau = 1e-6 in
  check_close "after 1 tau" (2.0 *. exp (-1.0)) (Cml_wave.Wave.value_at w (1e-6 +. 1e-8 +. tau)) ~eps:1e-2

let test_sine_through_rc_lowpass_amplitude () =
  (* f = fc: amplitude should be 1/sqrt(2) of input, well past startup *)
  let rr = 1000.0 and cc = 1e-9 in
  let fc = 1.0 /. (2.0 *. Float.pi *. rr *. cc) in
  let net = N.create () in
  let inp = N.node net "in" and out = N.node net "out" in
  N.vsource net ~name:"V1" ~pos:inp ~neg:N.gnd
    (W.Sine { offset = 0.0; ampl = 1.0; freq = fc; delay = 0.0; phase = 0.0 });
  N.resistor net ~name:"R1" inp out rr;
  N.capacitor net ~name:"C1" out N.gnd cc;
  let sim = E.compile net in
  let period = 1.0 /. fc in
  let r = T.run sim net (T.config ~tstop:(10.0 *. period) ~max_step:(period /. 200.0) ()) in
  let w = Cml_wave.Wave.create r.T.times (T.node_trace r out) in
  let lo, hi = Cml_wave.Measure.extremes w ~t_from:(6.0 *. period) in
  check_close "attenuated amplitude" (1.0 /. sqrt 2.0) (0.5 *. (hi -. lo)) ~eps:0.02

let test_transient_records_initial_point () =
  let net = N.create () in
  let out = N.node net "out" in
  N.vsource net ~name:"V1" ~pos:out ~neg:N.gnd (W.Dc 1.0);
  N.resistor net ~name:"R1" out N.gnd 1.0;
  let sim = E.compile net in
  let r = T.run sim net (T.config ~tstop:1e-6 ()) in
  check_close "t0" 0.0 r.T.times.(0);
  check_close "v0" 1.0 (T.node_trace r out).(0)

(* ------------------------------------------------------------------ *)
(* Sweeps *)

let test_sweep_linear_circuit () =
  let net = N.create () in
  let inp = N.node net "in" and out = N.node net "out" in
  N.vsource net ~name:"V1" ~pos:inp ~neg:N.gnd (W.Dc 0.0);
  N.resistor net ~name:"R1" inp out 1000.0;
  N.resistor net ~name:"R2" out N.gnd 1000.0;
  let values = Cml_numerics.Vec.linspace 0.0 4.0 9 in
  let sols = Cml_spice.Sweep.vsource_sweep net ~source:"V1" ~values in
  Array.iteri
    (fun i x -> check_close "half of source" (values.(i) /. 2.0) (E.voltage x out))
    sols

let test_sweep_diode_exponential () =
  let net = N.create () in
  let a = N.node net "a" in
  N.vsource net ~name:"V1" ~pos:a ~neg:N.gnd (W.Dc 0.0);
  N.diode net ~name:"D1" ~anode:a ~cathode:N.gnd ();
  let values = [| 0.5; 0.6; 0.7; 0.8 |] in
  let sim, sols = Cml_spice.Sweep.vsource_sweep_full net ~source:"V1" ~values in
  let currents = Array.map (fun x -> -.x.(E.branch_unknown sim "V1")) sols in
  (* each 60 mV step multiplies the current by about 10 *)
  let ratio1 = currents.(1) /. currents.(0) in
  Alcotest.(check bool)
    (Printf.sprintf "exponential ratio about 48, got %g" ratio1)
    true
    (ratio1 > 30.0 && ratio1 < 70.0)

(* ------------------------------------------------------------------ *)
(* Engine odds and ends *)

let test_no_convergence_exception () =
  (* a floating node makes the DC system singular: every homotopy
     fails and the engine must say so rather than return garbage *)
  let net = N.create () in
  let a = N.node net "a" and b = N.node net "b" in
  N.vsource net ~name:"V1" ~pos:a ~neg:N.gnd (W.Dc 1.0);
  N.capacitor net ~name:"C1" a b 1e-12;
  N.capacitor net ~name:"C2" b N.gnd 1e-12;
  let sim = E.compile net in
  (match E.dc_operating_point sim with
  | _ -> Alcotest.fail "expected No_convergence"
  | exception E.No_convergence _ -> ())

let test_models_limexp_continuity () =
  let below = Cml_spice.Models.limexp 79.999 and above = Cml_spice.Models.limexp 80.001 in
  Alcotest.(check bool) "continuous and increasing" true (above > below && below > 0.0)

let test_models_pnjlim_passthrough () =
  (* small updates are untouched *)
  let v = Cml_spice.Models.pnjlim ~vnew:0.61 ~vold:0.6 ~nvt:vt ~vcrit:0.7 in
  check_close "passthrough" 0.61 v

let test_models_pnjlim_clamps () =
  let v = Cml_spice.Models.pnjlim ~vnew:5.0 ~vold:0.8 ~nvt:vt ~vcrit:0.7 in
  Alcotest.(check bool) "clamped far below 5" true (v < 1.0)

let test_bjt_report () =
  let net = N.create () in
  let b = N.node net "b" and c = N.node net "c" in
  N.vsource net ~name:"VC" ~pos:c ~neg:N.gnd (W.Dc 3.0);
  N.isource net ~name:"IB" ~pos:N.gnd ~neg:b (W.Dc 5e-6);
  N.bjt net ~name:"Q1" ~c ~b ~e:N.gnd ();
  let sim = E.compile net in
  let x = E.dc_operating_point sim in
  match E.bjt_report sim x with
  | [ o ] ->
      Alcotest.(check string) "name" "Q1" o.E.q_name;
      check_close "ic = beta*ib" 5e-4 o.E.ic ~eps:2e-5;
      Alcotest.(check bool) "vbe around 0.9" true (o.E.vbe > 0.85 && o.E.vbe < 0.95);
      check_close "vce is the supply" 3.0 o.E.vce ~eps:1e-6
  | l -> Alcotest.failf "expected one transistor, got %d" (List.length l)

let test_bjt_report_multi_emitter () =
  let net = N.create () in
  let b = N.node net "b" and c = N.node net "c" in
  N.vsource net ~name:"VC" ~pos:c ~neg:N.gnd (W.Dc 3.0);
  N.vsource net ~name:"VB" ~pos:b ~neg:N.gnd (W.Dc 0.8);
  N.resistor net ~name:"R1" (N.node net "e1") N.gnd 1000.0;
  N.resistor net ~name:"R2" (N.node net "e2") N.gnd 1000.0;
  N.bjt_multi net ~name:"Q45" ~c ~b ~emitters:[| N.node net "e1"; N.node net "e2" |] ();
  let sim = E.compile net in
  let x = E.dc_operating_point sim in
  let names = List.map (fun (o : E.bjt_op) -> o.E.q_name) (E.bjt_report sim x) in
  Alcotest.(check (list string)) "per-emitter entries" [ "Q45#e0"; "Q45#e1" ] names

(* ------------------------------------------------------------------ *)
(* Property tests *)

let prop_pulse_bounded =
  QCheck2.Test.make ~name:"pulse waveform stays within [v1, v2]" ~count:200
    QCheck2.Gen.(
      pair
        (pair (float_range (-5.0) 5.0) (float_range (-5.0) 5.0))
        (float_range 0.0 50.0))
    (fun ((v1, v2), t) ->
      let p =
        W.Pulse { v1; v2; delay = 1.0; rise = 2.0; fall = 3.0; width = 4.0; period = 15.0 }
      in
      let v = W.value p t in
      v >= Float.min v1 v2 -. 1e-12 && v <= Float.max v1 v2 +. 1e-12)

let prop_breakpoints_sorted_in_range =
  QCheck2.Test.make ~name:"breakpoints are sorted, unique and inside (0, tstop)" ~count:200
    QCheck2.Gen.(
      pair (float_range 0.01 2.0) (pair (float_range 0.0 1.0) (float_range 0.05 1.0)))
    (fun (tstop, (delay, period)) ->
      let p =
        W.Pulse
          {
            v1 = 0.0;
            v2 = 1.0;
            delay;
            rise = period /. 10.0;
            fall = period /. 10.0;
            width = period /. 3.0;
            period;
          }
      in
      let bps = W.breakpoints p ~tstop in
      let sorted = List.sort_uniq compare bps = bps in
      sorted && List.for_all (fun t -> t > 0.0 && t < tstop) bps)

let prop_resistive_network_maximum_principle =
  (* a network of positive resistors driven by one source: every node
     voltage lies between the source value and ground *)
  QCheck2.Test.make ~name:"maximum principle on random resistor networks" ~count:100
    QCheck2.Gen.(
      int_range 2 8 >>= fun n ->
      list_size (int_range 1 20)
        (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (float_range 10.0 10e3))
      >>= fun edges ->
      float_range 0.5 10.0 >>= fun vsrc -> return (n, edges, vsrc))
    (fun (n, edges, vsrc) ->
      let net = N.create () in
      let nodes = Array.init n (fun k -> N.node net (Printf.sprintf "n%d" k)) in
      N.vsource net ~name:"vs" ~pos:nodes.(0) ~neg:N.gnd (W.Dc vsrc);
      List.iteri
        (fun k (i, j, r) ->
          if i <> j then N.resistor net ~name:(Printf.sprintf "r%d" k) nodes.(i) nodes.(j) r)
        edges;
      (* tie every node weakly to ground so nothing floats *)
      Array.iteri
        (fun k nd -> N.resistor net ~name:(Printf.sprintf "leak%d" k) nd N.gnd 1e9)
        nodes;
      let x = E.dc_operating_point (E.compile net) in
      Array.for_all
        (fun nd ->
          let v = E.voltage x nd in
          v >= -.1e-6 && v <= vsrc +. 1e-6)
        nodes)

let prop_rc_matches_analytic =
  QCheck2.Test.make ~name:"random RC charge curves match the analytic exponential" ~count:10
    QCheck2.Gen.(pair (float_range 100.0 10e3) (float_range 1e-9 1e-7))
    (fun (rr, cc) ->
      let tau = rr *. cc in
      let net = N.create () in
      let inp = N.node net "in" and out = N.node net "out" in
      N.vsource net ~name:"V1" ~pos:inp ~neg:N.gnd
        (W.Pulse
           {
             v1 = 0.0;
             v2 = 1.0;
             delay = tau /. 100.0;
             rise = tau /. 1000.0;
             fall = tau /. 1000.0;
             width = 1.0;
             period = 0.0;
           });
      N.resistor net ~name:"R1" inp out rr;
      N.capacitor net ~name:"C1" out N.gnd cc;
      let sim = E.compile net in
      let r = T.run sim net (T.config ~tstop:(4.0 *. tau) ~max_step:(tau /. 50.0) ()) in
      let w = Cml_wave.Wave.create r.T.times (T.node_trace r out) in
      let t0 = (tau /. 100.0) +. (tau /. 1000.0) in
      List.for_all
        (fun mult ->
          let expected = 1.0 -. exp (-.mult) in
          Float.abs (Cml_wave.Wave.value_at w (t0 +. (mult *. tau)) -. expected) < 0.02)
        [ 0.5; 1.0; 2.0; 3.0 ])

(* ------------------------------------------------------------------ *)
(* Device bypass and warm starts *)

let run_chain_transient ~options ~stages ~freq =
  let chain = Cml_cells.Chain.build ~stages ~freq () in
  let net = chain.Cml_cells.Chain.builder.Cml_cells.Builder.net in
  let sim = E.compile ~options net in
  let tstop = 2.0 /. freq in
  T.run sim net (T.config ~tstop ~max_step:(tstop /. 100.0) ())

(* The bypass tolerance is a tenth of the Newton convergence band, so
   replaying cached stamps may move any node by at most a few vntol —
   well inside 10 x vntol (1e-5 at the default 1e-6). *)
let prop_bypass_matches_full_eval =
  QCheck2.Test.make ~name:"device bypass leaves CML chain trajectories unchanged" ~count:4
    QCheck2.Gen.(pair (int_range 2 4) (float_range 5e8 2e9))
    (fun (stages, freq) ->
      let on = run_chain_transient ~options:E.default_options ~stages ~freq in
      let off =
        run_chain_transient ~options:{ E.default_options with E.bypass = false } ~stages ~freq
      in
      on.T.stats.T.bypassed_loads > 0
      && off.T.stats.T.bypassed_loads = 0
      && Array.length on.T.times = Array.length off.T.times
      &&
      let dev = ref 0.0 in
      Array.iteri
        (fun k row ->
          Array.iteri
            (fun i v -> dev := Float.max !dev (Float.abs (v -. off.T.data.(k).(i))))
            row)
        on.T.data;
      !dev <= 10.0 *. E.default_options.E.vntol)

let test_transient_stats_accounting () =
  let chain = Cml_cells.Chain.build ~stages:3 ~freq:1e9 () in
  let net = chain.Cml_cells.Chain.builder.Cml_cells.Builder.net in
  let sim = E.compile net in
  let r = T.run sim net (T.config ~tstop:2e-9 ~max_step:10e-12 ()) in
  Alcotest.(check int) "one row per accepted step plus t = 0"
    (r.T.stats.T.accepted_steps + 1)
    (Array.length r.T.times);
  Alcotest.(check bool) "bypass fired" true (r.T.stats.T.bypassed_loads > 0);
  Alcotest.(check bool) "bypass is a strict subset of loads" true
    (r.T.stats.T.bypassed_loads < r.T.stats.T.device_loads);
  Alcotest.(check bool) "newton iterations counted" true (r.T.stats.T.newton_iters > 0);
  Alcotest.(check int) "no guide means no guided seeds" 0 r.T.stats.T.guided_seeds;
  Alcotest.(check int) "no guide means no cold fallbacks" 0 r.T.stats.T.cold_fallbacks;
  Alcotest.(check bool) "LTE rejections are a subset of rejections" true
    (r.T.stats.T.lte_rejections <= r.T.stats.T.rejected_steps)

let test_transient_guide_is_used () =
  let chain = Cml_cells.Chain.build ~stages:3 ~freq:1e9 () in
  let net = chain.Cml_cells.Chain.builder.Cml_cells.Builder.net in
  let cfg = T.config ~tstop:2e-9 ~max_step:10e-12 () in
  let nominal = T.run (E.compile net) net cfg in
  let warm = T.run ~guide:nominal (E.compile net) net cfg in
  Alcotest.(check bool) "guided seeds used" true (warm.T.stats.T.guided_seeds > 0);
  (* guided_seeds counts accepted steps only (plus the warm DC start),
     so a retried (LTE- or Newton-rejected) instant cannot inflate it
     past the step count *)
  Alcotest.(check bool) "guided seeds bounded by accepted steps + DC" true
    (warm.T.stats.T.guided_seeds <= warm.T.stats.T.accepted_steps + 1);
  Alcotest.(check bool) "cold fallbacks accounted separately" true
    (warm.T.stats.T.cold_fallbacks >= 0
    && warm.T.stats.T.cold_fallbacks <= warm.T.stats.T.accepted_steps + 1);
  Alcotest.(check int) "same grid as the cold run"
    (Array.length nominal.T.times)
    (Array.length warm.T.times);
  let dev = ref 0.0 in
  Array.iteri
    (fun k row ->
      Array.iteri
        (fun i v -> dev := Float.max !dev (Float.abs (v -. warm.T.data.(k).(i))))
        row)
    nominal.T.data;
  Alcotest.(check bool) "same trajectory as the cold run" true
    (!dev <= 10.0 *. E.default_options.E.vntol)

(* ------------------------------------------------------------------ *)
(* Streaming observers *)

let rc_net () =
  let net = N.create () in
  let inp = N.node net "in" and out = N.node net "out" in
  N.vsource net ~name:"V1" ~pos:inp ~neg:N.gnd
    (W.Pulse { v1 = 0.0; v2 = 1.0; delay = 1e-8; rise = 1e-9; fall = 1e-9; width = 1.0; period = 0.0 });
  N.resistor net ~name:"R1" inp out 1000.0;
  N.capacitor net ~name:"C1" out N.gnd 1e-9;
  (net, out)

let test_observers_match_dense_rows () =
  let net, out = rc_net () in
  let sim = E.compile net in
  let idx = E.node_unknown out in
  let obs = T.observers [ ("out", idx) ] in
  let r = T.run ~observers:obs sim net (T.config ~tstop:1e-6 ~max_step:2e-8 ()) in
  let times, values = T.probe_samples obs "out" in
  Alcotest.(check int) "one sample per accepted step plus t = 0"
    (r.T.stats.T.accepted_steps + 1)
    (Array.length times);
  (* at record_every = 1 the streamed probe is bit-identical to the
     dense recording *)
  Alcotest.(check int) "same count as dense rows" (Array.length r.T.times) (Array.length times);
  let dense = T.node_trace r out in
  Array.iteri
    (fun k t ->
      if t <> r.T.times.(k) || values.(k) <> dense.(k) then
        Alcotest.failf "probe sample %d differs from dense row" k)
    times

let test_observers_record_every_no_alias () =
  let net, out = rc_net () in
  let sim = E.compile net in
  let idx = E.node_unknown out in
  let steps = ref 0 in
  let obs = T.observers ~on_step:(fun _ _ -> incr steps) [ ("out", idx) ] in
  let r = T.run ~observers:obs sim net (T.config ~tstop:1e-6 ~max_step:2e-8 ~record_every:4 ()) in
  (* the observer sees every accepted step even though the dense
     recorder keeps only every 4th row *)
  Alcotest.(check int) "probe length" (r.T.stats.T.accepted_steps + 1) (T.probe_length obs);
  Alcotest.(check int) "callback per accepted step" (T.probe_length obs) !steps;
  Alcotest.(check bool) "dense recorder thinned" true
    (Array.length r.T.times < T.probe_length obs);
  (* dense row j is the probe sample at stride 4 *)
  let times, values = T.probe_samples obs "out" in
  let dense = T.node_trace r out in
  Array.iteri
    (fun j t ->
      if j < Array.length r.T.times - 1 then begin
        (* the final dense row is the last accepted step whatever the
           stride, so only interior rows align to j * 4 *)
        if t <> times.(j * 4) || dense.(j) <> values.(j * 4) then
          Alcotest.failf "dense row %d is not probe sample %d" j (j * 4)
      end)
    r.T.times

let test_observers_validation_and_ground () =
  (match T.observers [ ("bad", -2) ] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  let net, _ = rc_net () in
  let sim = E.compile net in
  let obs = T.observers [ ("gnd", -1) ] in
  let _ = T.run ~observers:obs sim net (T.config ~tstop:1e-7 ()) in
  let _, values = T.probe_samples obs "gnd" in
  Alcotest.(check bool) "ground probe reads zero" true
    (Array.for_all (fun v -> v = 0.0) values);
  (match T.probe_samples obs "missing" with
  | _ -> Alcotest.fail "expected Not_found"
  | exception Not_found -> ())

let prop_observer_parity_with_dense =
  QCheck2.Test.make ~name:"streamed probes equal dense rows at the record_every stride" ~count:10
    QCheck2.Gen.(triple (float_range 100.0 10e3) (float_range 1e-9 1e-7) (int_range 1 5))
    (fun (rr, cc, every) ->
      let tau = rr *. cc in
      let net = N.create () in
      let inp = N.node net "in" and out = N.node net "out" in
      N.vsource net ~name:"V1" ~pos:inp ~neg:N.gnd
        (W.Pulse
           {
             v1 = 0.0;
             v2 = 1.0;
             delay = tau /. 100.0;
             rise = tau /. 1000.0;
             fall = tau /. 1000.0;
             width = 1.0;
             period = 0.0;
           });
      N.resistor net ~name:"R1" inp out rr;
      N.capacitor net ~name:"C1" out N.gnd cc;
      let sim = E.compile net in
      let obs = T.observers [ ("in", E.node_unknown inp); ("out", E.node_unknown out) ] in
      let r =
        T.run ~observers:obs sim net
          (T.config ~tstop:(4.0 *. tau) ~max_step:(tau /. 50.0) ~record_every:every ())
      in
      T.probe_length obs = r.T.stats.T.accepted_steps + 1
      && List.for_all
           (fun (nd, name) ->
             let times, values = T.probe_samples obs name in
             let dense = T.node_trace r nd in
             let rows = Array.length r.T.times in
             (* every interior dense row j is the probe sample at
                j * every; the final dense row is the last accepted
                step regardless of stride *)
             let ok = ref true in
             for j = 0 to rows - 2 do
               if r.T.times.(j) <> times.(j * every) || dense.(j) <> values.(j * every) then
                 ok := false
             done;
             !ok)
           [ (inp, "in"); (out, "out") ])

let test_transient_incompatible_guide_ignored () =
  (* a guide from a different circuit (different unknown count) must
     be ignored, not crash the run *)
  let net = N.create () in
  let a = N.node net "a" in
  N.vsource net ~name:"V1" ~pos:a ~neg:N.gnd (W.Dc 1.0);
  N.resistor net ~name:"R1" a N.gnd 1e3;
  let small = T.run (E.compile net) net (T.config ~tstop:1e-9 ()) in
  let chain = Cml_cells.Chain.build ~stages:2 ~freq:1e9 () in
  let cnet = chain.Cml_cells.Chain.builder.Cml_cells.Builder.net in
  let r = T.run ~guide:small (E.compile cnet) cnet (T.config ~tstop:1e-9 ~max_step:10e-12 ()) in
  Alcotest.(check int) "guide silently dropped" 0 r.T.stats.T.guided_seeds;
  Alcotest.(check int) "a dropped guide is not a cold fallback" 0 r.T.stats.T.cold_fallbacks;
  Alcotest.(check bool) "run still completes" true (Array.length r.T.times > 10)

(* ------------------------------------------------------------------ *)
(* Batched lockstep transient *)

let test_run_batch_matches_scalar () =
  let chain = Cml_cells.Chain.build ~stages:2 ~freq:1e9 () in
  let net = chain.Cml_cells.Chain.builder.Cml_cells.Builder.net in
  let cfg = T.config ~tstop:2e-9 ~max_step:10e-12 ~record_every:0 () in
  let out = Cml_cells.Chain.output chain 2 in
  let idx = E.node_unknown out.Cml_cells.Builder.p in
  let probe () = T.observers [ ("out", idx) ] in
  let scalar_obs = probe () in
  ignore (T.run ~observers:scalar_obs (E.compile net) net (T.config ~tstop:2e-9 ~max_step:10e-12 ()));
  let lane_obs = Array.init 3 (fun _ -> probe ()) in
  let lanes = Array.map (fun obs -> (E.compile net, Some obs)) lane_obs in
  let results = T.run_batch lanes net cfg in
  Array.iter
    (function
      | T.Lane_done _ -> ()
      | T.Lane_failed msg -> Alcotest.failf "lane failed: %s" msg
      | T.Lane_incompatible -> Alcotest.fail "lane incompatible")
    results;
  (* identical lanes are bit-identical to each other *)
  let _, v0 = T.probe_samples lane_obs.(0) "out" in
  for lane = 1 to 2 do
    let _, v = T.probe_samples lane_obs.(lane) "out" in
    Alcotest.(check (array (float 0.0)))
      (Printf.sprintf "lane %d bit-identical to lane 0" lane)
      v0 v
  done;
  (* and agree with a scalar run at the classification level: same
     final value (the trajectories themselves share no step grid) *)
  let _, vs = T.probe_samples scalar_obs "out" in
  let last a = a.(Array.length a - 1) in
  Alcotest.(check bool) "final probe value matches scalar run" true
    (Float.abs (last v0 -. last vs) <= 1e-3)

let test_run_batch_shares_symbolic () =
  (* K sparse lanes of one design pay for one symbolic analysis: lane
     0 factors, the others adopt its ordering and patterns through the
     batch donor path, and the adoption must not change the
     trajectory *)
  let chain = Cml_cells.Chain.build ~stages:2 ~freq:1e9 () in
  let net = chain.Cml_cells.Chain.builder.Cml_cells.Builder.net in
  let opts = { E.default_options with E.solver = E.Sparse_solver } in
  let cfg = T.config ~tstop:2e-9 ~max_step:10e-12 ~record_every:0 () in
  let out = Cml_cells.Chain.output chain 2 in
  let idx = E.node_unknown out.Cml_cells.Builder.p in
  let probe () = T.observers [ ("out", idx) ] in
  let scalar_obs = probe () in
  ignore
    (T.run ~observers:scalar_obs (E.compile ~options:opts net) net
       (T.config ~tstop:2e-9 ~max_step:10e-12 ()));
  let lane_obs = Array.init 3 (fun _ -> probe ()) in
  let sims = Array.map (fun _ -> E.compile ~options:opts net) lane_obs in
  let lanes = Array.mapi (fun i obs -> (sims.(i), Some obs)) lane_obs in
  Array.iter
    (function
      | T.Lane_done _ -> ()
      | T.Lane_failed msg -> Alcotest.failf "lane failed: %s" msg
      | T.Lane_incompatible -> Alcotest.fail "lane incompatible")
    (T.run_batch lanes net cfg);
  let stats i = E.solver_stats sims.(i) in
  Alcotest.(check bool) "lane 0 did the symbolic analysis" true
    ((stats 0).E.symbolic_factorizations >= 1);
  Alcotest.(check int) "lane 0 adopted nothing" 0 (stats 0).E.shared_symbolic;
  for i = 1 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "lane %d adopted the donor's symbolic" i)
      1 (stats i).E.shared_symbolic;
    Alcotest.(check int)
      (Printf.sprintf "lane %d ran no symbolic of its own" i)
      0 (stats i).E.symbolic_factorizations
  done;
  let _, v0 = T.probe_samples lane_obs.(0) "out" in
  for lane = 1 to 2 do
    let _, v = T.probe_samples lane_obs.(lane) "out" in
    Alcotest.(check (array (float 0.0)))
      (Printf.sprintf "lane %d bit-identical to lane 0" lane)
      v0 v
  done;
  let _, vs = T.probe_samples scalar_obs "out" in
  let last a = a.(Array.length a - 1) in
  Alcotest.(check bool) "final probe value matches the per-lane-symbolic run" true
    (Float.abs (last v0 -. last vs) <= 1e-3)

let test_run_batch_early_retire () =
  (* three layout-compatible lanes; the middle one carries a diode and
     an iteration budget too small for its turn-on, so it must retire
     mid-batch while the others run to tstop *)
  let mk_lane with_diode =
    let net = N.create () in
    let inp = N.node net "in" and out = N.node net "out" in
    N.vsource net ~name:"V1" ~pos:inp ~neg:N.gnd
      (W.Pulse
         { v1 = 0.0; v2 = 1.0; delay = 1e-9; rise = 1e-10; fall = 1e-10; width = 1.0; period = 0.0 });
    N.resistor net ~name:"R1" inp out 1000.0;
    N.capacitor net ~name:"C1" out N.gnd 1e-12;
    if with_diode then N.diode net ~name:"D1" ~anode:out ~cathode:N.gnd ();
    net
  in
  let compile ~max_iter net = E.compile ~options:{ E.default_options with E.max_iter } net in
  let nets = [| mk_lane false; mk_lane true; mk_lane false |] in
  let lanes =
    Array.mapi
      (fun i net -> ((if i = 1 then compile ~max_iter:1 net else E.compile net), None))
      nets
  in
  let cfg = T.config ~tstop:10e-9 ~max_step:2e-10 ~min_step:1e-11 ~lte_control:false ~record_every:0 () in
  let results = T.run_batch lanes nets.(0) cfg in
  (match results.(1) with
  | T.Lane_failed _ -> ()
  | T.Lane_done _ -> Alcotest.fail "starved lane unexpectedly completed"
  | T.Lane_incompatible -> Alcotest.fail "lane reported incompatible");
  List.iter
    (fun lane ->
      match results.(lane) with
      | T.Lane_done r ->
          Alcotest.(check bool)
            (Printf.sprintf "lane %d ran to tstop" lane)
            true
            (r.T.stats.T.accepted_steps > 10)
      | T.Lane_failed msg -> Alcotest.failf "healthy lane %d failed: %s" lane msg
      | T.Lane_incompatible -> Alcotest.failf "healthy lane %d incompatible" lane)
    [ 0; 2 ]

let test_run_batch_incompatible_lane () =
  (* a lane whose unknown layout differs from lane 0's is reported
     without being run, and does not disturb the compatible lanes *)
  let chain = Cml_cells.Chain.build ~stages:2 ~freq:1e9 () in
  let net = chain.Cml_cells.Chain.builder.Cml_cells.Builder.net in
  let small = N.create () in
  let a = N.node small "a" in
  N.vsource small ~name:"V1" ~pos:a ~neg:N.gnd (W.Dc 1.0);
  N.resistor small ~name:"R1" a N.gnd 1e3;
  let cfg = T.config ~tstop:1e-9 ~max_step:10e-12 ~record_every:0 () in
  let lanes = [| (E.compile net, None); (E.compile small, None); (E.compile net, None) |] in
  match T.run_batch lanes net cfg with
  | [| T.Lane_done _; T.Lane_incompatible; T.Lane_done _ |] -> ()
  | results ->
      Array.iteri
        (fun i r ->
          Printf.printf "lane %d: %s\n" i
            (match r with
            | T.Lane_done _ -> "done"
            | T.Lane_failed m -> "failed " ^ m
            | T.Lane_incompatible -> "incompatible"))
        results;
      Alcotest.fail "unexpected lane outcomes"

let () =
  Alcotest.run "spice"
    [
      ( "waveform",
        [
          Alcotest.test_case "dc" `Quick test_wave_dc;
          Alcotest.test_case "pulse shape" `Quick test_wave_pulse_shape;
          Alcotest.test_case "pulse periodic" `Quick test_wave_pulse_periodic;
          Alcotest.test_case "sine" `Quick test_wave_sine;
          Alcotest.test_case "pwl" `Quick test_wave_pwl;
          Alcotest.test_case "breakpoints" `Quick test_wave_breakpoints;
          Alcotest.test_case "square helper" `Quick test_wave_square;
        ] );
      ( "dc-linear",
        [
          Alcotest.test_case "divider (dense)" `Quick test_divider_dense;
          Alcotest.test_case "divider (sparse)" `Quick test_divider_sparse;
          Alcotest.test_case "resistor ladder" `Quick test_resistor_ladder;
          Alcotest.test_case "current source" `Quick test_current_source_into_resistor;
          Alcotest.test_case "vcvs amplifier" `Quick test_vcvs_amplifier;
          Alcotest.test_case "vccs" `Quick test_vccs_transconductance;
        ] );
      ( "dc-nonlinear",
        [
          Alcotest.test_case "diode forward drop" `Quick test_diode_forward_drop;
          Alcotest.test_case "diode reverse blocks" `Quick test_diode_reverse_blocks;
          Alcotest.test_case "bjt vbe at 0.5 mA" `Quick test_bjt_vbe_at_half_ma;
          Alcotest.test_case "bjt beta relation" `Quick test_bjt_beta_relation;
          Alcotest.test_case "emitter follower" `Quick test_emitter_follower;
          Alcotest.test_case "differential pair steering" `Quick test_differential_pair_steering;
          Alcotest.test_case "multi-emitter = parallel" `Quick test_multi_emitter_equals_parallel;
        ] );
      ( "transient",
        [
          Alcotest.test_case "rc charging" `Quick test_rc_charging;
          Alcotest.test_case "rc discharge from dc" `Quick test_rc_discharge_from_dc;
          Alcotest.test_case "rc lowpass at fc" `Quick test_sine_through_rc_lowpass_amplitude;
          Alcotest.test_case "initial point recorded" `Quick test_transient_records_initial_point;
          Alcotest.test_case "stats accounting" `Slow test_transient_stats_accounting;
          Alcotest.test_case "guide warm-starts steps" `Slow test_transient_guide_is_used;
          Alcotest.test_case "incompatible guide ignored" `Quick
            test_transient_incompatible_guide_ignored;
          Alcotest.test_case "batch matches scalar" `Slow test_run_batch_matches_scalar;
          Alcotest.test_case "batch shares symbolic" `Quick test_run_batch_shares_symbolic;
          Alcotest.test_case "batch early retire" `Quick test_run_batch_early_retire;
          Alcotest.test_case "batch incompatible lane" `Quick test_run_batch_incompatible_lane;
        ] );
      ( "observers",
        [
          Alcotest.test_case "probes match dense rows" `Quick test_observers_match_dense_rows;
          Alcotest.test_case "record_every does not alias probes" `Quick
            test_observers_record_every_no_alias;
          Alcotest.test_case "validation and ground probe" `Quick
            test_observers_validation_and_ground;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "linear sweep" `Quick test_sweep_linear_circuit;
          Alcotest.test_case "diode exponential" `Quick test_sweep_diode_exponential;
        ] );
      ( "engine",
        [
          Alcotest.test_case "no convergence raises" `Quick test_no_convergence_exception;
          Alcotest.test_case "limexp continuity" `Quick test_models_limexp_continuity;
          Alcotest.test_case "pnjlim passthrough" `Quick test_models_pnjlim_passthrough;
          Alcotest.test_case "pnjlim clamps" `Quick test_models_pnjlim_clamps;
          Alcotest.test_case "bjt operating-point report" `Quick test_bjt_report;
          Alcotest.test_case "report on dual emitters" `Quick test_bjt_report_multi_emitter;
        ] );
      ( "properties",
        List.map (fun t -> QCheck_alcotest.to_alcotest t)
          [
            prop_pulse_bounded;
            prop_breakpoints_sorted_in_range;
            prop_resistive_network_maximum_principle;
            prop_rc_matches_analytic;
            prop_observer_parity_with_dense;
            prop_bypass_matches_full_eval;
          ] );
    ]
