(* Tests for the multicore execution runtime (Cml_runtime.Pool) and
   the incremental sparse-LU path it feeds: parallel maps must be
   deterministic and order-preserving, exceptions must propagate, a
   parallel defect campaign must match the sequential one bit for bit,
   and numeric refactorization must agree with a fresh factorization
   on refreshed MNA values. *)

module Pool = Cml_runtime.Pool
module E = Cml_spice.Engine
module T = Cml_spice.Transient

(* ------------------------------------------------------------------ *)
(* Worker pool semantics *)

let test_parallel_map_matches_sequential () =
  let arr = Array.init 257 (fun i -> i - 40) in
  let f x = (x * x) - (3 * x) in
  Alcotest.(check (array int))
    "jobs=4 equals Array.map" (Array.map f arr)
    (Pool.parallel_map ~jobs:4 f arr);
  Alcotest.(check (array int))
    "jobs=1 equals Array.map" (Array.map f arr)
    (Pool.parallel_map ~jobs:1 f arr)

let test_parallel_list_map_order () =
  let xs = List.init 83 (fun i -> 83 - i) in
  Alcotest.(check (list int))
    "list map preserves order" (List.map succ xs)
    (Pool.parallel_list_map ~jobs:4 succ xs)

let test_empty_and_singleton () =
  Alcotest.(check (array int)) "empty" [||] (Pool.parallel_map ~jobs:4 succ [||]);
  Alcotest.(check (array int)) "singleton" [| 8 |] (Pool.parallel_map ~jobs:4 succ [| 7 |])

let test_exception_propagates () =
  Alcotest.check_raises "worker exception re-raised" (Failure "boom 17") (fun () ->
      ignore
        (Pool.parallel_map ~jobs:4
           (fun i -> if i = 17 then failwith "boom 17" else i)
           (Array.init 64 Fun.id)))

let test_lowest_index_exception_wins () =
  (* several tasks fail; the re-raised exception must deterministically
     be the lowest-index one regardless of completion order *)
  for _ = 1 to 5 do
    Alcotest.check_raises "lowest failing index" (Failure "fail 5") (fun () ->
        ignore
          (Pool.parallel_map ~jobs:4
             (fun i -> if i >= 5 && i mod 7 = 5 then failwith (Printf.sprintf "fail %d" i) else i)
             (Array.init 120 Fun.id)))
  done

let test_pool_reusable_after_exception () =
  (try
     ignore (Pool.parallel_map ~jobs:4 (fun _ -> failwith "once") (Array.init 32 Fun.id))
   with Failure _ -> ());
  Alcotest.(check (array int))
    "pool still works" (Array.init 32 succ)
    (Pool.parallel_map ~jobs:4 succ (Array.init 32 Fun.id))

let test_default_jobs_positive () =
  Alcotest.(check bool) "default_jobs >= 1" true (Pool.default_jobs () >= 1);
  Alcotest.check_raises "set_default_jobs rejects negatives"
    (Invalid_argument "Pool.set_default_jobs: jobs must be >= 1, or 0 for auto (one per core)")
    (fun () -> Pool.set_default_jobs (-1));
  (* 0 means auto: one job per core *)
  Pool.set_default_jobs 0;
  Alcotest.(check int) "0 resolves to core count" (Domain.recommended_domain_count ())
    (Pool.default_jobs ());
  Pool.set_default_jobs 1

let test_parallel_map_batches_matches_sequential () =
  let f x = (2 * x) - 7 in
  let lift slice = Array.map f slice in
  List.iter
    (fun n ->
      let arr = Array.init n (fun i -> i - 11) in
      List.iter
        (fun jobs ->
          Alcotest.(check (array int))
            (Printf.sprintf "n=%d jobs=%d equals Array.map" n jobs)
            (Array.map f arr)
            (Pool.parallel_map_batches ~jobs lift arr))
        [ 1; 3; 4 ])
    [ 0; 1; 7; 64; 257 ]

let test_parallel_map_batches_respects_bounds () =
  (* every slice f sees must be within [min_batch, max_batch] (the
     last slice may be shorter than min_batch when the tail runs out) *)
  let arr = Array.init 100 Fun.id in
  let sizes = ref [] in
  let collect slice =
    sizes := Array.length slice :: !sizes;
    slice
  in
  let got = Pool.parallel_map_batches ~jobs:1 ~min_batch:8 ~max_batch:16 collect arr in
  Alcotest.(check (array int)) "identity over slices" arr got;
  List.iter
    (fun len -> Alcotest.(check bool) "slice size bounded" true (len >= 1 && len <= 16))
    !sizes;
  Alcotest.(check bool) "invalid bounds rejected" true
    (match Pool.parallel_map_batches ~min_batch:0 Fun.id arr with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "max below min rejected" true
    (match Pool.parallel_map_batches ~min_batch:4 ~max_batch:2 Fun.id arr with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_parallel_map_batches_checks_result_length () =
  let arr = Array.init 32 Fun.id in
  Alcotest.(check bool) "length-changing f rejected" true
    (match Pool.parallel_map_batches ~jobs:1 (fun _ -> [| 1 |]) arr with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Parallel campaign determinism *)

let test_campaign_parallel_matches_sequential () =
  let golden = Cml_cells.Chain.build ~stages:4 ~freq:1e9 () in
  let defects =
    let all =
      Cml_defects.Sites.enumerate golden.Cml_cells.Chain.builder.Cml_cells.Builder.net
        ~prefix:"x2" ~pipe_values:[ 4e3 ]
    in
    List.filteri (fun i _ -> i < 3) all
  in
  let seq = Cml_defects.Campaign.run ~stages:4 ~freq:1e9 ~dut:2 ~tstop:4e-9 ~jobs:1 ~defects () in
  let par = Cml_defects.Campaign.run ~stages:4 ~freq:1e9 ~dut:2 ~tstop:4e-9 ~jobs:4 ~defects () in
  Alcotest.(check bool)
    "reference identical" true
    (seq.Cml_defects.Campaign.reference = par.Cml_defects.Campaign.reference);
  Alcotest.(check bool)
    "entries identical" true
    (seq.Cml_defects.Campaign.entries = par.Cml_defects.Campaign.entries);
  Alcotest.(check (list (pair string int)))
    "summary identical"
    (Cml_defects.Campaign.summary seq)
    (Cml_defects.Campaign.summary par)

(* ------------------------------------------------------------------ *)
(* Incremental sparse LU *)

let build_system n entries diag =
  let t = Cml_numerics.Sparse.triplet_create n in
  List.iter (fun (i, j, v) -> Cml_numerics.Sparse.add t i j v) entries;
  for i = 0 to n - 1 do
    Cml_numerics.Sparse.add t i i diag
  done;
  let pat = Cml_numerics.Sparse.compress t in
  (t, pat, Cml_numerics.Sparse.csc_of_pattern pat)

let refactor_gen =
  (* an MNA-like sequence: one pattern, two sets of values (as between
     Newton iterations), both kept diagonally dominant *)
  QCheck2.Gen.(
    int_range 1 30 >>= fun n ->
    list_size (int_range 0 (4 * n))
      (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (float_range (-1.0) 1.0))
    >>= fun entries ->
    list_size (return (List.length entries)) (float_range (-1.0) 1.0) >>= fun values' ->
    array_size (return n) (float_range (-10.0) 10.0) >>= fun rhs ->
    return (n, entries, values', rhs))

let prop_refactorize_matches_factorize =
  QCheck2.Test.make ~name:"refactorize agrees with fresh factorize" ~count:300 refactor_gen
    (fun (n, entries, values', rhs) ->
      let t, pat, a = build_system n entries (float_of_int (4 * n)) in
      let f = Cml_numerics.Sparse_lu.factorize a in
      (* second Newton iteration: same pattern, new values *)
      List.iteri (fun k v -> Cml_numerics.Sparse.set_values t k v) values';
      Cml_numerics.Sparse.refill pat t;
      if not (Cml_numerics.Sparse_lu.refactorize f a) then
        QCheck2.Test.fail_report "refactorize refused a well-conditioned system"
      else
        let x = Cml_numerics.Sparse_lu.solve f rhs in
        let x' = Cml_numerics.Sparse_lu.solve (Cml_numerics.Sparse_lu.factorize a) rhs in
        Cml_numerics.Vec.max_abs_diff x x' < 1e-8)

let prop_refactorize_residual =
  QCheck2.Test.make ~name:"refactorize solve has small residual" ~count:300 refactor_gen
    (fun (n, entries, values', rhs) ->
      let t, pat, a = build_system n entries (float_of_int (4 * n)) in
      let f = Cml_numerics.Sparse_lu.factorize a in
      List.iteri (fun k v -> Cml_numerics.Sparse.set_values t k v) values';
      Cml_numerics.Sparse.refill pat t;
      if not (Cml_numerics.Sparse_lu.refactorize f a) then true
      else
        let x = Cml_numerics.Sparse_lu.solve f rhs in
        let r = Cml_numerics.Vec.sub (Cml_numerics.Sparse.mul_vec a x) rhs in
        Cml_numerics.Vec.norm_inf r < 1e-7 *. (1.0 +. Cml_numerics.Vec.norm_inf rhs))

let test_refactorize_rejects_foreign_matrix () =
  let _, _, a = build_system 5 [ (0, 1, -1.0); (3, 2, 0.5) ] 10.0 in
  let _, _, b = build_system 5 [ (0, 1, -1.0); (3, 2, 0.5) ] 10.0 in
  let f = Cml_numerics.Sparse_lu.factorize a in
  Alcotest.(check bool) "same storage reusable" true (Cml_numerics.Sparse_lu.reusable f a);
  Alcotest.(check bool)
    "structurally equal but distinct storage is rejected" false
    (Cml_numerics.Sparse_lu.reusable f b);
  Alcotest.(check bool) "refactorize refuses it" false (Cml_numerics.Sparse_lu.refactorize f b)

let test_refactorize_rejects_degenerate_pivot () =
  let t, pat, a = build_system 4 [ (0, 1, -1.0); (1, 0, -1.0) ] 8.0 in
  let f = Cml_numerics.Sparse_lu.factorize a in
  (* zero out everything: every pivot collapses, refactorize must
     report failure instead of dividing by ~0 *)
  for k = 0 to 5 do
    Cml_numerics.Sparse.set_values t k 0.0
  done;
  Cml_numerics.Sparse.refill pat t;
  Alcotest.(check bool) "degenerate system refused" false (Cml_numerics.Sparse_lu.refactorize f a)

(* ------------------------------------------------------------------ *)
(* Engine integration: symbolic analysis is paid once per pattern *)

let test_transient_amortises_symbolic () =
  let chain = Cml_cells.Chain.build ~stages:8 ~freq:1e9 () in
  let net = chain.Cml_cells.Chain.builder.Cml_cells.Builder.net in
  let options = { E.default_options with E.solver = E.Sparse_solver } in
  let sim = E.compile ~options net in
  ignore (T.run sim net (T.config ~tstop:1e-9 ~max_step:20e-12 ()));
  let stats = E.solver_stats sim in
  Alcotest.(check bool)
    "at least one full factorization" true
    (stats.E.symbolic_factorizations >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "refactorizations dominate (%d symbolic, %d numeric)"
       stats.E.symbolic_factorizations stats.E.numeric_refactorizations)
    true
    (stats.E.numeric_refactorizations > 10 * stats.E.symbolic_factorizations)

let () =
  Alcotest.run "runtime"
    [
      ( "pool",
        [
          Alcotest.test_case "parallel_map matches sequential" `Quick
            test_parallel_map_matches_sequential;
          Alcotest.test_case "parallel_list_map preserves order" `Quick
            test_parallel_list_map_order;
          Alcotest.test_case "empty and singleton inputs" `Quick test_empty_and_singleton;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "lowest-index exception wins" `Quick
            test_lowest_index_exception_wins;
          Alcotest.test_case "pool reusable after exception" `Quick
            test_pool_reusable_after_exception;
          Alcotest.test_case "default_jobs sanity" `Quick test_default_jobs_positive;
          Alcotest.test_case "map_batches matches sequential" `Quick
            test_parallel_map_batches_matches_sequential;
          Alcotest.test_case "map_batches respects bounds" `Quick
            test_parallel_map_batches_respects_bounds;
          Alcotest.test_case "map_batches checks result length" `Quick
            test_parallel_map_batches_checks_result_length;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "parallel campaign matches sequential" `Slow
            test_campaign_parallel_matches_sequential;
        ] );
      ( "incremental-lu",
        [
          QCheck_alcotest.to_alcotest prop_refactorize_matches_factorize;
          QCheck_alcotest.to_alcotest prop_refactorize_residual;
          Alcotest.test_case "rejects foreign matrix" `Quick
            test_refactorize_rejects_foreign_matrix;
          Alcotest.test_case "rejects degenerate pivot" `Quick
            test_refactorize_rejects_degenerate_pivot;
          Alcotest.test_case "transient amortises symbolic analysis" `Slow
            test_transient_amortises_symbolic;
        ] );
    ]
