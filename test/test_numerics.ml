(* Unit and property tests for the cml_numerics library: vector
   helpers, dense LU, triplet/CSC compression and the sparse LU,
   cross-checked against the dense solver as oracle. *)

let approx ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1.0 +. Float.abs b)

let check_vec_approx ?(eps = 1e-9) msg expected actual =
  Alcotest.(check int) (msg ^ " length") (Array.length expected) (Array.length actual);
  Array.iteri
    (fun i e ->
      if not (approx ~eps e actual.(i)) then
        Alcotest.failf "%s: index %d: expected %.12g, got %.12g" msg i e actual.(i))
    expected

(* ------------------------------------------------------------------ *)
(* Vec *)

let test_vec_create () =
  let v = Cml_numerics.Vec.create 4 in
  check_vec_approx "zeros" [| 0.; 0.; 0.; 0. |] v

let test_vec_axpy () =
  let x = [| 1.; 2.; 3. |] and y = [| 10.; 20.; 30. |] in
  Cml_numerics.Vec.axpy 2.0 x y;
  check_vec_approx "axpy" [| 12.; 24.; 36. |] y

let test_vec_dot () =
  Alcotest.(check (float 1e-12)) "dot" 32.0 (Cml_numerics.Vec.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |])

let test_vec_norms () =
  Alcotest.(check (float 1e-12)) "inf" 5.0 (Cml_numerics.Vec.norm_inf [| 3.; -5.; 1. |]);
  Alcotest.(check (float 1e-12)) "two" 5.0 (Cml_numerics.Vec.norm2 [| 3.; 4. |]);
  Alcotest.(check (float 1e-12)) "empty inf" 0.0 (Cml_numerics.Vec.norm_inf [||])

let test_vec_max_abs_diff () =
  Alcotest.(check (float 1e-12))
    "diff" 4.0
    (Cml_numerics.Vec.max_abs_diff [| 1.; 2. |] [| 5.; 3. |])

let test_vec_linspace () =
  check_vec_approx "linspace" [| 0.; 0.5; 1.0 |] (Cml_numerics.Vec.linspace 0.0 1.0 3)

let test_vec_logspace () =
  check_vec_approx "logspace" [| 1.; 10.; 100. |] (Cml_numerics.Vec.logspace 1.0 100.0 3)

let test_vec_add_sub_scale () =
  check_vec_approx "add" [| 4.; 6. |] (Cml_numerics.Vec.add [| 1.; 2. |] [| 3.; 4. |]);
  check_vec_approx "sub" [| -2.; -2. |] (Cml_numerics.Vec.sub [| 1.; 2. |] [| 3.; 4. |]);
  check_vec_approx "scale" [| 2.; 4. |] (Cml_numerics.Vec.scale 2.0 [| 1.; 2. |])

(* ------------------------------------------------------------------ *)
(* Dense *)

let test_dense_solve_2x2 () =
  let m = Cml_numerics.Dense.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Cml_numerics.Dense.solve m [| 5.; 10. |] in
  check_vec_approx "2x2" [| 1.; 3. |] x

let test_dense_solve_needs_pivot () =
  (* zero on the natural first pivot forces a row swap *)
  let m = Cml_numerics.Dense.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = Cml_numerics.Dense.solve m [| 7.; 9. |] in
  check_vec_approx "pivot" [| 9.; 7. |] x

let test_dense_singular () =
  let m = Cml_numerics.Dense.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" (Cml_numerics.Dense.Singular 1) (fun () ->
      ignore (Cml_numerics.Dense.solve m [| 1.; 1. |]))

let test_dense_mul_vec () =
  let m = Cml_numerics.Dense.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  check_vec_approx "mul" [| 5.; 11. |] (Cml_numerics.Dense.mul_vec m [| 1.; 2. |])

let test_dense_add_entry_accumulates () =
  let m = Cml_numerics.Dense.create 2 in
  Cml_numerics.Dense.add_entry m 0 0 1.5;
  Cml_numerics.Dense.add_entry m 0 0 2.5;
  Alcotest.(check (float 1e-12)) "sum" 4.0 (Cml_numerics.Dense.get m 0 0)

let test_dense_lu_reuse () =
  let m = Cml_numerics.Dense.of_arrays [| [| 4.; 1. |]; [| 1.; 3. |] |] in
  let f = Cml_numerics.Dense.lu m in
  let x1 = Cml_numerics.Dense.lu_solve f [| 5.; 4. |] in
  let x2 = Cml_numerics.Dense.lu_solve f [| 9.; 7. |] in
  check_vec_approx "rhs1" [| 1.; 1. |] x1;
  check_vec_approx "rhs2" [| 20.0 /. 11.0; 19.0 /. 11.0 |] x2 ~eps:1e-9

(* ------------------------------------------------------------------ *)
(* Sparse compression *)

let test_sparse_compress_dups () =
  let t = Cml_numerics.Sparse.triplet_create 3 in
  Cml_numerics.Sparse.add t 0 0 1.0;
  Cml_numerics.Sparse.add t 0 0 2.0;
  Cml_numerics.Sparse.add t 1 2 5.0;
  Cml_numerics.Sparse.add t 2 1 7.0;
  let p = Cml_numerics.Sparse.compress t in
  let a = Cml_numerics.Sparse.csc_of_pattern p in
  Alcotest.(check int) "nnz merges dups" 3 (Cml_numerics.Sparse.nnz a);
  let d = Cml_numerics.Sparse.to_dense a in
  Alcotest.(check (float 1e-12)) "summed" 3.0 (Cml_numerics.Dense.get d 0 0);
  Alcotest.(check (float 1e-12)) "12" 5.0 (Cml_numerics.Dense.get d 1 2);
  Alcotest.(check (float 1e-12)) "21" 7.0 (Cml_numerics.Dense.get d 2 1)

let test_sparse_refill () =
  let t = Cml_numerics.Sparse.triplet_create 2 in
  Cml_numerics.Sparse.add t 0 0 1.0;
  Cml_numerics.Sparse.add t 0 0 1.0;
  Cml_numerics.Sparse.add t 1 1 4.0;
  let p = Cml_numerics.Sparse.compress t in
  Cml_numerics.Sparse.set_values t 0 10.0;
  Cml_numerics.Sparse.set_values t 1 20.0;
  Cml_numerics.Sparse.set_values t 2 40.0;
  Cml_numerics.Sparse.refill p t;
  let d = Cml_numerics.Sparse.to_dense (Cml_numerics.Sparse.csc_of_pattern p) in
  Alcotest.(check (float 1e-12)) "00 refilled" 30.0 (Cml_numerics.Dense.get d 0 0);
  Alcotest.(check (float 1e-12)) "11 refilled" 40.0 (Cml_numerics.Dense.get d 1 1)

let test_sparse_mul_vec () =
  let t = Cml_numerics.Sparse.triplet_create 2 in
  Cml_numerics.Sparse.add t 0 0 1.0;
  Cml_numerics.Sparse.add t 0 1 2.0;
  Cml_numerics.Sparse.add t 1 0 3.0;
  Cml_numerics.Sparse.add t 1 1 4.0;
  let a = Cml_numerics.Sparse.csc_of_pattern (Cml_numerics.Sparse.compress t) in
  check_vec_approx "spmv" [| 5.; 11. |] (Cml_numerics.Sparse.mul_vec a [| 1.; 2. |])

(* ------------------------------------------------------------------ *)
(* Sparse LU *)

let csc_of_dense rows =
  let n = Array.length rows in
  let t = Cml_numerics.Sparse.triplet_create n in
  Array.iteri
    (fun i row -> Array.iteri (fun j v -> if v <> 0.0 then Cml_numerics.Sparse.add t i j v) row)
    rows;
  Cml_numerics.Sparse.csc_of_pattern (Cml_numerics.Sparse.compress t)

let test_sparse_lu_identity () =
  let a = csc_of_dense [| [| 1.; 0.; 0. |]; [| 0.; 1.; 0. |]; [| 0.; 0.; 1. |] |] in
  let f = Cml_numerics.Sparse_lu.factorize a in
  check_vec_approx "id" [| 3.; 4.; 5. |] (Cml_numerics.Sparse_lu.solve f [| 3.; 4.; 5. |])

let test_sparse_lu_permutation_matrix () =
  (* pure permutation: needs pivoting, zero diagonal *)
  let a = csc_of_dense [| [| 0.; 1.; 0. |]; [| 0.; 0.; 1. |]; [| 1.; 0.; 0. |] |] in
  let f = Cml_numerics.Sparse_lu.factorize a in
  check_vec_approx "perm" [| 3.; 1.; 2. |] (Cml_numerics.Sparse_lu.solve f [| 1.; 2.; 3. |])

let test_sparse_lu_tridiagonal () =
  let n = 50 in
  let t = Cml_numerics.Sparse.triplet_create n in
  for i = 0 to n - 1 do
    Cml_numerics.Sparse.add t i i 2.0;
    if i > 0 then Cml_numerics.Sparse.add t i (i - 1) (-1.0);
    if i < n - 1 then Cml_numerics.Sparse.add t i (i + 1) (-1.0)
  done;
  let a = Cml_numerics.Sparse.csc_of_pattern (Cml_numerics.Sparse.compress t) in
  let x_true = Array.init n (fun i -> sin (float_of_int i)) in
  let b = Cml_numerics.Sparse.mul_vec a x_true in
  let f = Cml_numerics.Sparse_lu.factorize a in
  check_vec_approx ~eps:1e-8 "tridiag" x_true (Cml_numerics.Sparse_lu.solve f b)

let test_sparse_lu_singular () =
  let a = csc_of_dense [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  match Cml_numerics.Sparse_lu.factorize a with
  | _ -> Alcotest.fail "expected Singular"
  | exception Cml_numerics.Sparse_lu.Singular _ -> ()

let test_sparse_lu_structurally_singular () =
  (* empty column: no pivot candidates at all *)
  let t = Cml_numerics.Sparse.triplet_create 2 in
  Cml_numerics.Sparse.add t 0 0 1.0;
  Cml_numerics.Sparse.add t 1 0 1.0;
  let a = Cml_numerics.Sparse.csc_of_pattern (Cml_numerics.Sparse.compress t) in
  match Cml_numerics.Sparse_lu.factorize a with
  | _ -> Alcotest.fail "expected Singular"
  | exception Cml_numerics.Sparse_lu.Singular _ -> ()

(* ------------------------------------------------------------------ *)
(* Property tests *)

let random_system_gen =
  (* well-conditioned random systems: diagonally dominant with random
     sparse off-diagonal entries *)
  QCheck2.Gen.(
    int_range 1 25 >>= fun n ->
    list_size (int_range 0 (4 * n))
      (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (float_range (-1.0) 1.0))
    >>= fun entries ->
    array_size (return n) (float_range (-10.0) 10.0) >>= fun rhs -> return (n, entries, rhs))

let prop_sparse_matches_dense =
  QCheck2.Test.make ~name:"sparse LU agrees with dense LU" ~count:200 random_system_gen
    (fun (n, entries, rhs) ->
      let t = Cml_numerics.Sparse.triplet_create n in
      let d = Cml_numerics.Dense.create n in
      List.iter
        (fun (i, j, v) ->
          Cml_numerics.Sparse.add t i j v;
          Cml_numerics.Dense.add_entry d i j v)
        entries;
      for i = 0 to n - 1 do
        Cml_numerics.Sparse.add t i i (float_of_int (4 * n));
        Cml_numerics.Dense.add_entry d i i (float_of_int (4 * n))
      done;
      let a = Cml_numerics.Sparse.csc_of_pattern (Cml_numerics.Sparse.compress t) in
      let xs = Cml_numerics.Sparse_lu.solve (Cml_numerics.Sparse_lu.factorize a) rhs in
      let xd = Cml_numerics.Dense.solve d rhs in
      Cml_numerics.Vec.max_abs_diff xs xd < 1e-8)

let prop_sparse_residual =
  QCheck2.Test.make ~name:"sparse LU residual is small" ~count:200 random_system_gen
    (fun (n, entries, rhs) ->
      let t = Cml_numerics.Sparse.triplet_create n in
      List.iter (fun (i, j, v) -> Cml_numerics.Sparse.add t i j v) entries;
      for i = 0 to n - 1 do
        Cml_numerics.Sparse.add t i i (float_of_int (4 * n))
      done;
      let a = Cml_numerics.Sparse.csc_of_pattern (Cml_numerics.Sparse.compress t) in
      let x = Cml_numerics.Sparse_lu.solve (Cml_numerics.Sparse_lu.factorize a) rhs in
      let r = Cml_numerics.Vec.sub (Cml_numerics.Sparse.mul_vec a x) rhs in
      Cml_numerics.Vec.norm_inf r < 1e-7 *. (1.0 +. Cml_numerics.Vec.norm_inf rhs))

let prop_dense_lu_roundtrip =
  QCheck2.Test.make ~name:"dense solve then multiply is identity" ~count:200 random_system_gen
    (fun (n, entries, rhs) ->
      let d = Cml_numerics.Dense.create n in
      List.iter (fun (i, j, v) -> Cml_numerics.Dense.add_entry d i j v) entries;
      for i = 0 to n - 1 do
        Cml_numerics.Dense.add_entry d i i (float_of_int (4 * n))
      done;
      let x = Cml_numerics.Dense.solve d rhs in
      let r = Cml_numerics.Vec.sub (Cml_numerics.Dense.mul_vec d x) rhs in
      Cml_numerics.Vec.norm_inf r < 1e-7 *. (1.0 +. Cml_numerics.Vec.norm_inf rhs))

let prop_compress_preserves_sums =
  QCheck2.Test.make ~name:"compression sums duplicates exactly like dense stamping" ~count:200
    QCheck2.Gen.(
      int_range 1 10 >>= fun n ->
      list_size (int_range 0 40)
        (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (float_range (-5.0) 5.0))
      >>= fun entries -> return (n, entries))
    (fun (n, entries) ->
      let t = Cml_numerics.Sparse.triplet_create n in
      let d = Cml_numerics.Dense.create n in
      List.iter
        (fun (i, j, v) ->
          Cml_numerics.Sparse.add t i j v;
          Cml_numerics.Dense.add_entry d i j v)
        entries;
      let a = Cml_numerics.Sparse.csc_of_pattern (Cml_numerics.Sparse.compress t) in
      let da = Cml_numerics.Sparse.to_dense a in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Float.abs (Cml_numerics.Dense.get da i j -. Cml_numerics.Dense.get d i j) > 1e-12
          then ok := false
        done
      done;
      !ok)

let prop_linspace_bounds =
  QCheck2.Test.make ~name:"linspace hits both endpoints and is monotone" ~count:100
    QCheck2.Gen.(triple (float_range (-100.) 100.) (float_range 0.001 100.) (int_range 2 50))
    (fun (a, width, n) ->
      let b = a +. width in
      let v = Cml_numerics.Vec.linspace a b n in
      let monotone = ref true in
      for i = 1 to n - 1 do
        if v.(i) <= v.(i - 1) then monotone := false
      done;
      approx ~eps:1e-9 v.(0) a && approx ~eps:1e-9 v.(n - 1) b && !monotone)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_mean_std () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Cml_numerics.Stats.mean xs);
  Alcotest.(check (float 1e-6)) "stddev" 2.13809 (Cml_numerics.Stats.stddev xs)

let test_stats_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Cml_numerics.Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Cml_numerics.Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Cml_numerics.Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "p25" 2.0 (Cml_numerics.Stats.percentile xs 25.0)

let test_stats_histogram () =
  let h = Cml_numerics.Stats.histogram [| 0.0; 0.1; 0.9; 1.0 |] ~bins:2 in
  Alcotest.(check int) "two bins" 2 (List.length h);
  let counts = List.map (fun (_, _, c) -> c) h in
  Alcotest.(check (list int)) "split" [ 2; 2 ] counts

let test_stats_empty_rejected () =
  match Cml_numerics.Stats.mean [||] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let prop_stats_mean_bounds =
  QCheck2.Test.make ~name:"mean lies within min/max" ~count:200
    QCheck2.Gen.(array_size (int_range 1 40) (float_range (-100.0) 100.0))
    (fun xs ->
      let m = Cml_numerics.Stats.mean xs in
      m >= Cml_numerics.Stats.minimum xs -. 1e-9 && m <= Cml_numerics.Stats.maximum xs +. 1e-9)

let prop_stats_percentile_monotone =
  QCheck2.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck2.Gen.(
      pair
        (array_size (int_range 1 40) (float_range (-100.0) 100.0))
        (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
    (fun (xs, (p1, p2)) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Cml_numerics.Stats.percentile xs lo <= Cml_numerics.Stats.percentile xs hi +. 1e-9)

let prop_stats_histogram_total =
  QCheck2.Test.make ~name:"histogram counts sum to n" ~count:200
    QCheck2.Gen.(
      pair (array_size (int_range 1 60) (float_range (-10.0) 10.0)) (int_range 1 10))
    (fun (xs, bins) ->
      let total =
        List.fold_left (fun acc (_, _, c) -> acc + c) 0 (Cml_numerics.Stats.histogram xs ~bins)
      in
      total = Array.length xs)

(* ------------------------------------------------------------------ *)
(* Batch workspace *)

module B = Cml_numerics.Batch

let test_batch_create_and_shape () =
  let b = B.create ~lanes:3 ~width:4 in
  Alcotest.(check int) "lanes" 3 (B.lanes b);
  Alcotest.(check int) "width" 4 (B.width b);
  Alcotest.(check int) "all live" 3 (B.live_count b);
  for lane = 0 to 2 do
    for i = 0 to 3 do
      Alcotest.(check (float 0.0)) "zero-filled" 0.0 (B.get b lane i)
    done
  done;
  Alcotest.check_raises "lanes < 1 rejected"
    (Invalid_argument "Batch.create: lanes must be >= 1") (fun () ->
      ignore (B.create ~lanes:0 ~width:4))

let test_batch_lane_roundtrip () =
  let b = B.create ~lanes:2 ~width:3 in
  B.write_lane b 1 [| 1.5; -2.0; 0.25 |];
  let out = Array.make 3 nan in
  B.read_lane b 1 out;
  Alcotest.(check (array (float 0.0))) "written lane reads back" [| 1.5; -2.0; 0.25 |] out;
  B.read_lane b 0 out;
  Alcotest.(check (array (float 0.0))) "other lane untouched" [| 0.0; 0.0; 0.0 |] out;
  Alcotest.(check bool) "width mismatch rejected" true
    (match B.write_lane b 0 [| 1.0 |] with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_batch_retire_semantics () =
  let b = B.create ~lanes:3 ~width:1 in
  B.retire b 1 B.Diverged;
  Alcotest.(check int) "one retired" 2 (B.live_count b);
  Alcotest.(check bool) "lane 1 dead" false (B.is_live b 1);
  (* first retirement wins *)
  B.retire b 1 B.Done;
  Alcotest.(check bool) "reason sticks" true (B.status b 1 = Some B.Diverged);
  Alcotest.(check int) "diverged count" 1 (B.retired_count b B.Diverged);
  Alcotest.(check int) "done count" 0 (B.retired_count b B.Done);
  Alcotest.(check bool) "out of range rejected" true
    (match B.retire b 3 B.Done with () -> false | exception Invalid_argument _ -> true)

let test_batch_iter_live_allows_retiring_current () =
  let b = B.create ~lanes:4 ~width:1 in
  B.retire b 2 B.Incompatible;
  let seen = ref [] in
  B.iter_live
    (fun lane ->
      seen := lane :: !seen;
      if lane = 1 then B.retire b lane B.Diverged)
    b;
  Alcotest.(check (list int)) "live lanes in order, skipping retired" [ 0; 1; 3 ]
    (List.rev !seen);
  Alcotest.(check int) "retire inside callback stuck" 2 (B.live_count b)

(* MNA-like patterns: structurally symmetric (a conductance stamp
   touches (i,j), (j,i) and both diagonals) and diagonally dominant,
   the shape every nodal-analysis Jacobian has.  On these the Auto
   ordering picks the smaller of the natural and amd fill estimates,
   so its factors can never hold more nonzeros than Natural's. *)
let mna_system_gen =
  QCheck2.Gen.(
    int_range 2 40 >>= fun n ->
    list_size (int_range 0 (3 * n))
      (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (float_range 0.1 1.0))
    >>= fun stamps ->
    array_size (return n) (float_range (-10.0) 10.0) >>= fun rhs -> return (n, stamps, rhs))

let mna_matrix (n, stamps, _) =
  let t = Cml_numerics.Sparse.triplet_create n in
  List.iter
    (fun (i, j, g) ->
      Cml_numerics.Sparse.add t i j (-.g);
      Cml_numerics.Sparse.add t j i (-.g);
      Cml_numerics.Sparse.add t i i g;
      Cml_numerics.Sparse.add t j j g)
    stamps;
  for i = 0 to n - 1 do
    Cml_numerics.Sparse.add t i i (float_of_int n)
  done;
  Cml_numerics.Sparse.csc_of_pattern (Cml_numerics.Sparse.compress t)

let factor_nnz f =
  let l, u = Cml_numerics.Sparse_lu.lu_nnz f in
  l + u

let prop_amd_solve_matches_natural =
  QCheck2.Test.make ~name:"amd-ordered solve matches natural-order solve" ~count:200
    mna_system_gen (fun ((_, _, rhs) as sys) ->
      let a = mna_matrix sys in
      let solve ordering =
        Cml_numerics.Sparse_lu.solve (Cml_numerics.Sparse_lu.factorize ~ordering a) rhs
      in
      Cml_numerics.Vec.max_abs_diff
        (solve Cml_numerics.Sparse_lu.Natural)
        (solve Cml_numerics.Sparse_lu.Amd)
      < 1e-8)

let prop_auto_fill_no_worse =
  QCheck2.Test.make ~name:"Auto fill <= natural fill on MNA-like patterns" ~count:200
    mna_system_gen (fun sys ->
      let a = mna_matrix sys in
      let nnz ordering = factor_nnz (Cml_numerics.Sparse_lu.factorize ~ordering a) in
      nnz Cml_numerics.Sparse_lu.Auto <= nnz Cml_numerics.Sparse_lu.Natural)

(* The fast fill counters Auto's decision rests on must agree exactly
   with replaying the order through the quotient-graph elimination. *)
let prop_fill_counters_agree =
  QCheck2.Test.make ~name:"natural_fill / amd_with_fill match fill_estimate" ~count:200
    mna_system_gen (fun sys ->
      let a = mna_matrix sys in
      let module O = Cml_numerics.Ordering in
      let n = a.Cml_numerics.Sparse.n in
      let q, fa = O.amd_with_fill a in
      let fn = O.natural_fill a in
      fn = O.fill_estimate a ~order:(O.identity n)
      && fa = O.fill_estimate a ~order:q
      && fn <= O.envelope_bound a)

let () =
  let qc = List.map (fun t -> QCheck_alcotest.to_alcotest t) in
  Alcotest.run "numerics"
    [
      ( "vec",
        [
          Alcotest.test_case "create" `Quick test_vec_create;
          Alcotest.test_case "axpy" `Quick test_vec_axpy;
          Alcotest.test_case "dot" `Quick test_vec_dot;
          Alcotest.test_case "norms" `Quick test_vec_norms;
          Alcotest.test_case "max_abs_diff" `Quick test_vec_max_abs_diff;
          Alcotest.test_case "linspace" `Quick test_vec_linspace;
          Alcotest.test_case "logspace" `Quick test_vec_logspace;
          Alcotest.test_case "add/sub/scale" `Quick test_vec_add_sub_scale;
        ] );
      ( "dense",
        [
          Alcotest.test_case "solve 2x2" `Quick test_dense_solve_2x2;
          Alcotest.test_case "solve with pivoting" `Quick test_dense_solve_needs_pivot;
          Alcotest.test_case "singular raises" `Quick test_dense_singular;
          Alcotest.test_case "mul_vec" `Quick test_dense_mul_vec;
          Alcotest.test_case "add_entry accumulates" `Quick test_dense_add_entry_accumulates;
          Alcotest.test_case "lu factor reuse" `Quick test_dense_lu_reuse;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "compress merges duplicates" `Quick test_sparse_compress_dups;
          Alcotest.test_case "refill" `Quick test_sparse_refill;
          Alcotest.test_case "mul_vec" `Quick test_sparse_mul_vec;
        ] );
      ( "sparse-lu",
        [
          Alcotest.test_case "identity" `Quick test_sparse_lu_identity;
          Alcotest.test_case "permutation matrix" `Quick test_sparse_lu_permutation_matrix;
          Alcotest.test_case "tridiagonal 50" `Quick test_sparse_lu_tridiagonal;
          Alcotest.test_case "numerically singular" `Quick test_sparse_lu_singular;
          Alcotest.test_case "structurally singular" `Quick test_sparse_lu_structurally_singular;
        ] );
      ( "batch",
        [
          Alcotest.test_case "create and shape" `Quick test_batch_create_and_shape;
          Alcotest.test_case "lane roundtrip" `Quick test_batch_lane_roundtrip;
          Alcotest.test_case "retire semantics" `Quick test_batch_retire_semantics;
          Alcotest.test_case "iter_live with retire" `Quick
            test_batch_iter_live_allows_retiring_current;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/std" `Quick test_stats_mean_std;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "empty rejected" `Quick test_stats_empty_rejected;
        ] );
      ( "properties",
        qc
          [
            prop_stats_mean_bounds;
            prop_stats_percentile_monotone;
            prop_stats_histogram_total;
            prop_sparse_matches_dense;
            prop_sparse_residual;
            prop_dense_lu_roundtrip;
            prop_compress_preserves_sums;
            prop_linspace_bounds;
            prop_amd_solve_matches_natural;
            prop_auto_fill_no_worse;
            prop_fill_counters_agree;
          ] );
    ]
