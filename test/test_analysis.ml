(* Tests for the static-analysis pass: the diagnostics core, the
   electrical/CML rule checker, the DFT-coverage audit, the SCOAP
   testability metrics (against hand-computed goldens) and the
   pre-flight gate. *)

module A = Cml_analysis
module D = A.Diagnostic
module N = Cml_spice.Netlist
module W = Cml_spice.Waveform
module B = Cml_cells.Builder
module C = Cml_logic.Circuit

let has_rule id ds = List.exists (fun (d : D.t) -> d.D.rule = id) ds

let contains s sub =
  let ls = String.length s and lsub = String.length sub in
  let rec scan i = i + lsub <= ls && (String.sub s i lsub = sub || scan (i + 1)) in
  scan 0

let check_rule name id ds =
  if not (has_rule id ds) then
    Alcotest.failf "%s: expected %s in:\n%s" name id (D.render_text ds)

let check_no_rule name id ds =
  if has_rule id ds then Alcotest.failf "%s: unexpected %s in:\n%s" name id (D.render_text ds)

let check_no_errors name ds =
  if D.count D.Error ds > 0 then Alcotest.failf "%s: unexpected errors:\n%s" name (D.render_text ds)

(* ------------------------------------------------------------------ *)
(* diagnostics core *)

let test_sort_by_severity () =
  let d sev rule = D.make ~rule sev D.Toplevel "m" in
  let sorted = D.sort [ d D.Info "Z"; d D.Error "A"; d D.Warning "B" ] in
  Alcotest.(check (list string)) "severity order" [ "error"; "warning"; "info" ]
    (List.map (fun (x : D.t) -> D.severity_name x.D.severity) sorted)

let test_sort_deterministic_within_severity () =
  let d rule loc = D.make ~rule D.Error (D.Node loc) "m" in
  let a = [ d "ERC002" "b"; d "ERC001" "a"; d "ERC002" "a" ] in
  let b = [ d "ERC002" "a"; d "ERC002" "b"; d "ERC001" "a" ] in
  Alcotest.(check bool) "order independent of input order" true (D.sort a = D.sort b);
  Alcotest.(check (list string)) "rule then location" [ "ERC001"; "ERC002"; "ERC002" ]
    (List.map (fun (x : D.t) -> x.D.rule) (D.sort a))

let test_to_string_format () =
  let d = D.make ~rule:"ERC001" D.Error (D.Node "x3.ce") "floating" in
  Alcotest.(check string) "one-line form" "error[ERC001] node x3.ce: floating" (D.to_string d)

let test_render_text_summary () =
  let ds =
    [ D.make ~rule:"A" D.Error D.Toplevel "e"; D.make ~rule:"B" D.Warning (D.Group 2) "w" ]
  in
  let text = D.render_text ds in
  Alcotest.(check bool) "summary line" true (contains text "1 error(s), 1 warning(s), 0 info");
  Alcotest.(check bool) "group location" true (contains text "group 2")

let test_render_json_escapes () =
  let d = D.make ~rule:"T001" D.Error (D.Node {|n"1|}) "bad \"value\"\nline2" in
  let json = D.render_json [ d ] in
  Alcotest.(check bool) "quote escaped" true (contains json {|n\"1|});
  Alcotest.(check bool) "newline escaped" true (contains json {|\nline2|});
  Alcotest.(check bool) "counts" true (contains json {|"errors":1,"warnings":0,"infos":0|})

let test_worst_and_count () =
  let ds = [ D.make ~rule:"A" D.Info D.Toplevel "i"; D.make ~rule:"B" D.Warning D.Toplevel "w" ] in
  Alcotest.(check bool) "worst is warning" true (D.worst ds = Some D.Warning);
  Alcotest.(check int) "info count" 1 (D.count D.Info ds);
  Alcotest.(check bool) "empty worst" true (D.worst [] = None)

let test_rule_catalog () =
  let ids = List.map (fun (r : A.Rules.info) -> r.A.Rules.id) A.Rules.all in
  Alcotest.(check int) "no duplicate ids" (List.length ids)
    (List.length (List.sort_uniq String.compare ids));
  List.iter
    (fun (r : A.Rules.info) ->
      match A.Rules.find r.A.Rules.id with
      | Some r' -> Alcotest.(check string) "find roundtrip" r.A.Rules.id r'.A.Rules.id
      | None -> Alcotest.failf "catalog misses %s" r.A.Rules.id)
    A.Rules.all;
  (match A.Rules.find A.Rules.erc_floating_node with
  | Some r -> Alcotest.(check bool) "ERC001 is an error" true (r.A.Rules.severity = D.Error)
  | None -> Alcotest.fail "ERC001 not in catalog");
  Alcotest.(check bool) "unknown id" true (A.Rules.find "NOPE999" = None)

(* ------------------------------------------------------------------ *)
(* electrical rules on seeded-bad netlists *)

let test_erc_floating_node () =
  let net = N.create () in
  let a = N.node net "a" in
  let b = N.node net "b" in
  N.vsource net ~name:"v1" ~pos:a ~neg:N.gnd (W.Dc 1.0);
  N.resistor net ~name:"r1" a b 100.0;
  let ds = A.Lint.netlist net in
  check_rule "floating" A.Rules.erc_floating_node ds;
  check_no_rule "floating suppresses dc-path" A.Rules.erc_no_dc_path ds

let test_erc_no_dc_path () =
  let net = N.create () in
  N.vsource net ~name:"v1" ~pos:(N.node net "a") ~neg:N.gnd (W.Dc 1.0);
  N.resistor net ~name:"rload" (N.node net "a") N.gnd 50.0;
  (* an island: two resistors between b and c, nothing to ground *)
  N.resistor net ~name:"r1" (N.node net "b") (N.node net "c") 100.0;
  N.resistor net ~name:"r2" (N.node net "b") (N.node net "c") 100.0;
  let ds = A.Lint.netlist net in
  check_rule "island" A.Rules.erc_no_dc_path ds;
  check_no_rule "island is not floating" A.Rules.erc_floating_node ds

let test_erc_capacitor_is_not_a_dc_path () =
  let net = N.create () in
  let a = N.node net "a" in
  let b = N.node net "b" in
  N.vsource net ~name:"v1" ~pos:a ~neg:N.gnd (W.Dc 1.0);
  N.capacitor net ~name:"c1" a b 1e-12;
  N.capacitor net ~name:"c2" b N.gnd 1e-12;
  check_rule "ac-coupled node" A.Rules.erc_no_dc_path (A.Lint.netlist net)

let test_erc_duplicate_names () =
  let net = N.create () in
  let a = N.node net "a" in
  N.vsource net ~name:"v1" ~pos:a ~neg:N.gnd (W.Dc 1.0);
  N.resistor net ~name:"Ra" a N.gnd 100.0;
  N.resistor net ~name:"rA" a N.gnd 200.0;
  check_rule "case-insensitive collision" A.Rules.erc_duplicate_name (A.Lint.netlist net)

let test_erc_nonpositive_resistance () =
  let net = N.create () in
  let a = N.node net "a" in
  N.vsource net ~name:"v1" ~pos:a ~neg:N.gnd (W.Dc 1.0);
  N.resistor net ~name:"r1" a N.gnd 0.0;
  check_rule "zero ohm" A.Rules.erc_nonpositive_resistance (A.Lint.netlist net)

let test_erc_negative_capacitance () =
  let net = N.create () in
  let a = N.node net "a" in
  N.vsource net ~name:"v1" ~pos:a ~neg:N.gnd (W.Dc 1.0);
  N.resistor net ~name:"r1" a N.gnd 50.0;
  N.capacitor net ~name:"c1" a N.gnd (-1e-12);
  check_rule "negative cap" A.Rules.erc_negative_capacitance (A.Lint.netlist net)

let test_erc_vsource_loop () =
  let net = N.create () in
  let a = N.node net "a" in
  N.vsource net ~name:"v1" ~pos:a ~neg:N.gnd (W.Dc 1.0);
  N.vsource net ~name:"v2" ~pos:a ~neg:N.gnd (W.Dc 2.0);
  N.resistor net ~name:"r1" a N.gnd 50.0;
  check_rule "parallel sources" A.Rules.erc_vsource_loop (A.Lint.netlist net)

(* ------------------------------------------------------------------ *)
(* CML design rules on a mutated buffer cell *)

let buffer_builder () =
  let b = B.create () in
  let input = B.diff_dc_input b ~name:"din" ~value:true in
  let (_ : B.diff) = Cml_cells.Buffer_cell.add b ~name:"x1" ~input in
  b

let scale_resistor net name k =
  match N.get_device net name with
  | N.Resistor { name; n1; n2; r } -> N.set_device net name (N.Resistor { name; n1; n2; r = r *. k })
  | _ -> Alcotest.failf "%s is not a resistor" name

let test_cml_buffer_baseline_clean () =
  let b = buffer_builder () in
  let ds = A.Lint.netlist b.B.net in
  check_no_errors "fault-free buffer" ds;
  Alcotest.(check int) "no warnings either" 0 (D.count D.Warning ds)

let test_cml_mismatched_loads () =
  let b = buffer_builder () in
  scale_resistor b.B.net "x1.r1" 1.2;
  let ds = A.Lint.netlist b.B.net in
  check_rule "load mismatch" A.Rules.cml_mismatched_loads ds;
  check_no_rule "equal-swing rule quiet" A.Rules.cml_swing_window ds

let test_cml_missing_tail () =
  let b = buffer_builder () in
  N.remove_device b.B.net "x1.q3";
  check_rule "no tail source" A.Rules.cml_missing_tail (A.Lint.netlist b.B.net)

let test_cml_swing_window () =
  let b = buffer_builder () in
  scale_resistor b.B.net "x1.r1" 10.0;
  scale_resistor b.B.net "x1.r2" 10.0;
  let ds = A.Lint.netlist b.B.net in
  check_rule "oversized swing" A.Rules.cml_swing_window ds;
  check_no_rule "loads still matched" A.Rules.cml_mismatched_loads ds;
  check_no_errors "swing is a warning" ds

let instrumented_chain ?multi_emitter ~stages () =
  let chain = Cml_cells.Chain.build ~stages ~freq:100e6 () in
  let builder = chain.Cml_cells.Chain.builder in
  let plan = Cml_dft.Insertion.instrument ?multi_emitter builder in
  (plan, builder)

let test_cml_vtest_unrouted () =
  let _plan, builder = instrumented_chain ~stages:3 () in
  check_no_errors "instrumented chain baseline" (A.Lint.netlist builder.B.net);
  N.rewire_terminal builder.B.net ~dev:"ro0.det0.q45" ~terminal:"b" N.gnd;
  check_rule "sensor base off the rail" A.Rules.cml_vtest_unrouted (A.Lint.netlist builder.B.net)

(* ------------------------------------------------------------------ *)
(* DFT-coverage audit *)

let test_audit_clean_plan () =
  let plan, builder = instrumented_chain ~stages:8 () in
  Alcotest.(check (list string)) "no findings" []
    (List.map D.to_string (Cml_dft.Audit.check plan builder))

let test_audit_oversized_group () =
  let plan, builder = instrumented_chain ~stages:8 () in
  let ds = Cml_dft.Audit.check ~max_safe_share:5 plan builder in
  check_rule "8 cells on one read-out" A.Rules.dft_oversized_group ds

let test_audit_uninstrumented_cell () =
  let plan, builder = instrumented_chain ~stages:3 () in
  (* a cell added after insertion ran is a coverage hole *)
  let input = B.diff_dc_input builder ~name:"din9" ~value:true in
  let (_ : B.diff) = Cml_cells.Buffer_cell.add builder ~name:"x9" ~input in
  let ds = Cml_dft.Audit.check plan builder in
  check_rule "late cell uncovered" A.Rules.dft_uninstrumented_cell ds;
  Alcotest.(check bool) "names the cell" true
    (List.exists (fun (d : D.t) -> d.D.location = D.Cell "x9") ds)

let test_audit_single_polarity () =
  let plan, builder = instrumented_chain ~multi_emitter:false ~stages:3 () in
  N.remove_device builder.B.net "ro0.det0.q5";
  let ds = Cml_dft.Audit.check plan builder in
  check_rule "complement side unmonitored" A.Rules.dft_single_polarity ds;
  check_no_errors "single polarity is a warning" ds

let test_audit_missing_readout () =
  let plan, builder = instrumented_chain ~stages:3 () in
  let doomed =
    List.filter_map
      (fun d ->
        let n = N.device_name d in
        if String.length n > 4 && String.sub n 0 4 = "ro0." && not (contains n ".det") then Some n
        else None)
      (N.devices builder.B.net)
  in
  Alcotest.(check bool) "read-out has devices to remove" true (doomed <> []);
  List.iter (N.remove_device builder.B.net) doomed;
  check_rule "phantom read-out" A.Rules.dft_missing_readout (Cml_dft.Audit.check plan builder)

let test_audit_view_direct () =
  let view =
    {
      A.Dft_audit.groups =
        [
          {
            A.Dft_audit.index = 0;
            members = [ { A.Dft_audit.cell = "x1"; monitors_p = true; monitors_n = true } ];
            readout_devices = 9;
          };
        ];
      all_cells = [ "x1"; "x2" ];
      max_safe_share = 45;
    }
  in
  let ds = A.Dft_audit.check view in
  check_rule "x2 uncovered" A.Rules.dft_uninstrumented_cell ds;
  check_no_rule "group size fine" A.Rules.dft_oversized_group ds

(* ------------------------------------------------------------------ *)
(* SCOAP golden values (hand-computed) *)

(* a = input, b = input, c = input
   d = AND(a, b)   CC1 = 1+1+1 = 3, CC0 = min(1,1)+1 = 2
   e = OR(d, c)    CC0 = 2+1+1 = 4, CC1 = min(3,1)+1 = 2
   f = NOT(e)      CC0 = 2+1 = 3,   CC1 = 4+1 = 5
   g = XOR(d, c)   CC1 = min(3+1, 2+1)+1 = 4, CC0 = min(2+1, 3+1)+1 = 4
   outputs f, g:   CO(f) = CO(g) = 0
   CO(e) = 0+1 = 1
   CO(d) = min(CO(e)+CC0(c)+1, CO(g)+min(CC0(c),CC1(c))+1) = min(3, 2) = 2
   CO(c) = min(CO(e)+CC0(d)+1, CO(g)+min(CC0(d),CC1(d))+1) = min(4, 3) = 3
   CO(a) = CO(d)+CC1(b)+1 = 4,  CO(b) = CO(d)+CC1(a)+1 = 4 *)
let golden_circuit () =
  let b = C.create () in
  let a = C.input b "a" in
  let bb = C.input b "b" in
  let c = C.input b "c" in
  let d = C.and2 b a bb in
  let e = C.or2 b d c in
  let f = C.not1 b e in
  let g = C.xor2 b d c in
  C.output b "f" f;
  C.output b "g" g;
  C.finalize b

let test_scoap_golden () =
  let m = A.Scoap.compute (golden_circuit ()) in
  Alcotest.(check (array int)) "cc0" [| 1; 1; 1; 2; 4; 3; 4 |] m.A.Scoap.cc0;
  Alcotest.(check (array int)) "cc1" [| 1; 1; 1; 3; 2; 5; 4 |] m.A.Scoap.cc1;
  Alcotest.(check (array int)) "co" [| 4; 4; 3; 2; 1; 0; 0 |] m.A.Scoap.co

let test_scoap_output_reports () =
  let t = golden_circuit () in
  let reports = A.Scoap.output_reports t (A.Scoap.compute t) in
  Alcotest.(check (list string)) "declaration order" [ "f"; "g" ]
    (List.map (fun (r : A.Scoap.output_report) -> r.A.Scoap.output) reports);
  List.iter
    (fun (r : A.Scoap.output_report) ->
      Alcotest.(check int)
        (Printf.sprintf "hardest CO in cone of %s" r.A.Scoap.output)
        4 r.A.Scoap.hardest_co)
    reports

let test_scoap_reconvergence () =
  let b = C.create () in
  let s = C.input b "s" in
  let x = C.not1 b s in
  let y = C.and2 b s x in
  C.output b "y" y;
  let t = C.finalize b in
  Alcotest.(check bool) "stem s meets again at y" true
    (List.mem (s, y) (A.Scoap.reconvergent_stems t));
  Alcotest.(check bool) "flagged by the rule" true
    (has_rule A.Rules.scoap_reconvergent (A.Lint.circuit t))

let test_scoap_no_false_reconvergence () =
  Alcotest.(check (list (pair int int))) "a tree has no reconvergent stems" []
    (A.Scoap.reconvergent_stems (golden_circuit ()) |> List.filter (fun (s, _) -> s >= 3))

let test_scoap_unobservable_net () =
  let b = C.create () in
  let a = C.input b "a" in
  let x = C.not1 b a in
  ignore x;
  let y = C.buf b a in
  C.output b "y" y;
  let t = C.finalize b in
  let m = A.Scoap.compute t in
  Alcotest.(check int) "dead net CO is infinite" A.Scoap.infinite m.A.Scoap.co.(x);
  check_rule "reported as error" A.Rules.scoap_unobservable (A.Lint.circuit t)

let test_scoap_s27_fixpoint_finite () =
  (* feedback through the three flip-flops must converge to finite
     values everywhere *)
  let m = A.Scoap.compute (Cml_logic.Bench_format.s27 ()) in
  let finite arr = Array.for_all (fun v -> v < A.Scoap.infinite) arr in
  Alcotest.(check bool) "cc0 finite" true (finite m.A.Scoap.cc0);
  Alcotest.(check bool) "cc1 finite" true (finite m.A.Scoap.cc1);
  Alcotest.(check bool) "co finite" true (finite m.A.Scoap.co)

let test_scoap_check_summary_info () =
  let ds = A.Lint.circuit (golden_circuit ()) in
  check_no_errors "golden circuit clean" ds;
  Alcotest.(check int) "one summary per output" 2
    (List.length (List.filter (fun (d : D.t) -> d.D.rule = A.Rules.scoap_output_summary) ds))

(* ------------------------------------------------------------------ *)
(* COP probability metrics *)

(* golden_circuit, by hand:
   p1(a) = p1(b) = p1(c) = 1/2
   p1(d) = p1(a) p1(b) = 1/4
   p1(e) = p1(d) + p1(c) - p1(d) p1(c) = 5/8
   p1(f) = 1 - p1(e) = 3/8
   p1(g) = p1(d)(1-p1(c)) + p1(c)(1-p1(d)) = 1/2
   obs(f) = obs(g) = 1 (outputs); obs(e) = obs(f) = 1
   obs(d) = max(obs(e)(1-p1(c)), obs(g)) = max(1/2, 1) = 1
   obs(c) = max(obs(e)(1-p1(d)), obs(g)) = max(3/4, 1) = 1
   obs(a) = obs(d) p1(b) = 1/2, obs(b) = obs(d) p1(a) = 1/2 *)
let test_cop_golden () =
  let m = A.Cop.compute (golden_circuit ()) in
  Alcotest.(check (array (float 1e-9)))
    "p1" [| 0.5; 0.5; 0.5; 0.25; 0.625; 0.375; 0.5 |] m.A.Cop.p1;
  Alcotest.(check (array (float 1e-9)))
    "obs" [| 0.5; 0.5; 1.0; 1.0; 1.0; 1.0; 1.0 |] m.A.Cop.obs;
  Alcotest.(check bool) "no corrections in a tree" true (m.A.Cop.corrections = [])

let test_cop_correction () =
  (* y = s AND (NOT s): independence says 1/4, the truth is 0 *)
  let b = C.create () in
  let s = C.input b "s" in
  let x = C.not1 b s in
  let y = C.and2 b s x in
  C.output b "y" y;
  let t = C.finalize b in
  let m = A.Cop.compute t in
  Alcotest.(check (float 1e-9)) "corrected p1(y)" 0.0 m.A.Cop.p1.(y);
  (match List.filter (fun c -> c.A.Cop.meet = y) m.A.Cop.corrections with
  | [ c ] ->
      Alcotest.(check int) "stem" s c.A.Cop.stem;
      Alcotest.(check (float 1e-9)) "naive" 0.25 c.A.Cop.naive;
      Alcotest.(check (float 1e-9)) "corrected" 0.0 c.A.Cop.corrected
  | cs -> Alcotest.failf "expected one correction at the meet, got %d" (List.length cs));
  let ds = A.Lint.circuit t in
  check_rule "skew warning" A.Rules.cop_skewed_probability ds;
  check_rule "correction note" A.Rules.cop_correlation ds

let test_cop_s27_sequential () =
  let m = A.Cop.compute (Cml_logic.Bench_format.s27 ()) in
  let in_unit arr = Array.for_all (fun v -> v >= 0.0 && v <= 1.0) arr in
  Alcotest.(check bool) "p1 in [0,1]" true (in_unit m.A.Cop.p1);
  Alcotest.(check bool) "obs in [0,1]" true (in_unit m.A.Cop.obs);
  Alcotest.(check bool) "flip-flop fixpoint iterated" true (m.A.Cop.passes > 1)

(* random DAG of 2-input gates; every sink becomes an output so no
   net is trivially dead *)
let build_random_circuit (n_in, choices) =
  let b = C.create () in
  let nets = ref [] in
  let consumed = Hashtbl.create 64 in
  for k = 0 to n_in - 1 do
    nets := C.input b (Printf.sprintf "i%d" k) :: !nets
  done;
  List.iter
    (fun (kind, f1, f2) ->
      let arr = Array.of_list (List.rev !nets) in
      let pick f = arr.(f mod Array.length arr) in
      let a = pick f1 and c = pick f2 in
      let eat n = Hashtbl.replace consumed n () in
      let id =
        match kind mod 5 with
        | 0 -> eat a; eat c; C.and2 b a c
        | 1 -> eat a; eat c; C.or2 b a c
        | 2 -> eat a; eat c; C.xor2 b a c
        | 3 -> eat a; C.not1 b a
        | _ -> eat a; C.buf b a
      in
      nets := id :: !nets)
    choices;
  List.iteri
    (fun i id ->
      if not (Hashtbl.mem consumed id) then C.output b (Printf.sprintf "o%d" i) id)
    !nets;
  C.finalize b

let prop_cop_probabilities =
  QCheck2.Test.make ~name:"COP stays in [0,1]; single-consumer obs is monotone" ~count:100
    QCheck2.Gen.(
      pair (int_range 1 4)
        (list_size (int_range 1 25) (triple (int_range 0 4) nat nat)))
    (fun spec ->
      let t = build_random_circuit spec in
      let m = A.Cop.compute t in
      let in_unit v = v >= -1e-9 && v <= 1.0 +. 1e-9 in
      Array.for_all in_unit m.A.Cop.p1
      && Array.for_all in_unit m.A.Cop.obs
      &&
      (* fanout-free composition: a net consumed by exactly one gate
         can never be more observable than that gate *)
      let consumers = Array.make (C.num_nets t) [] in
      Array.iteri
        (fun g gate ->
          let feed n = consumers.(n) <- g :: consumers.(n) in
          match gate with
          | C.Input _ -> ()
          | C.And (a, b) | C.Or (a, b) | C.Xor (a, b) -> feed a; feed b
          | C.Not a | C.Buf a | C.Dff { d = a } -> feed a
          | C.Mux { sel; a; b } -> feed sel; feed a; feed b)
        t.C.gates;
      let ok = ref true in
      Array.iteri
        (fun n cs ->
          match cs with
          | [ g ] -> if m.A.Cop.obs.(n) > m.A.Cop.obs.(g) +. 1e-9 then ok := false
          | _ -> ())
        consumers;
      !ok)

(* ------------------------------------------------------------------ *)
(* path-distance metrics *)

(* golden_circuit: gates d,e,f,g cost one level each, inputs are free.
   from_inputs = a,b,c:0  d:1  e:2  f:3  g:2
   to_outputs  = f,g:0  e:1  d:2 (via e->f)  c:2  a,b:3 *)
let test_distance_golden () =
  let m = A.Distance.compute (golden_circuit ()) in
  Alcotest.(check (array int)) "from_inputs" [| 0; 0; 0; 1; 2; 3; 2 |] m.A.Distance.from_inputs;
  Alcotest.(check (array int)) "to_outputs" [| 3; 3; 2; 2; 1; 0; 0 |] m.A.Distance.to_outputs;
  Alcotest.(check int) "comb depth" 3 m.A.Distance.comb_depth;
  Alcotest.(check int) "no ff segment" (-1) m.A.Distance.ff_to_ff;
  Alcotest.(check (list (pair string int)))
    "output depths" [ ("f", 3); ("g", 2) ] m.A.Distance.output_depths

let test_distance_s27 () =
  let m = A.Distance.compute (Cml_logic.Bench_format.s27 ()) in
  Alcotest.(check int) "deepest output segment" 8 (List.assoc "G17" m.A.Distance.output_depths);
  Alcotest.(check int) "deepest ff-to-ff segment" 9 m.A.Distance.ff_to_ff;
  Alcotest.(check bool) "every net has a sequential distance" true
    (Array.for_all (fun d -> d < A.Distance.unreachable) m.A.Distance.seq_depth)

let test_distance_deep_path_warning () =
  let b = C.create () in
  let a = C.input b "a" in
  let n = ref a in
  for _ = 1 to 50 do
    n := C.not1 b !n
  done;
  C.output b "y" !n;
  let ds = A.Lint.circuit (C.finalize b) in
  check_rule "deep path flagged" A.Rules.dist_deep_path ds;
  check_rule "summary present" A.Rules.dist_summary ds

(* ------------------------------------------------------------------ *)
(* multi-file lint determinism *)

let test_lint_files_parallel_parity () =
  let write_bench name c =
    let path = Filename.temp_file name ".bench" in
    let oc = open_out path in
    output_string oc (Cml_logic.Bench_format.to_string c);
    close_out oc;
    path
  in
  let big = write_bench "c432" (Cml_logic.Bench_circuits.c432_surrogate ()) in
  let small = write_bench "s27" (Cml_logic.Bench_format.s27 ()) in
  let paths = [ big; small; big ] in
  let render rs =
    String.concat "\n" (List.map (fun (p, ds) -> p ^ "\n" ^ D.render_json ds) rs)
  in
  let seq = render (A.Lint.files ~jobs:1 paths) in
  let par = render (A.Lint.files ~jobs:4 paths) in
  let order = List.map fst (A.Lint.files ~jobs:3 [ small; big ]) in
  Sys.remove big;
  Sys.remove small;
  Alcotest.(check bool) "reports keep input order" true (order = [ small; big ]);
  Alcotest.(check string) "byte-identical at any job count" seq par

(* ------------------------------------------------------------------ *)
(* lint façade and the pre-flight gate *)

let test_fails_thresholds () =
  let w = [ D.make ~rule:"X" D.Warning D.Toplevel "w" ] in
  Alcotest.(check bool) "warning below error" false (A.Lint.fails ~fail_on:D.Error w);
  Alcotest.(check bool) "warning at warning" true (A.Lint.fails ~fail_on:D.Warning w);
  Alcotest.(check bool) "empty never fails" false (A.Lint.fails ~fail_on:D.Info [])

let bad_netlist () =
  let net = N.create () in
  let a = N.node net "a" in
  N.vsource net ~name:"v1" ~pos:a ~neg:N.gnd (W.Dc 1.0);
  N.resistor net ~name:"r1" a N.gnd 0.0;
  net

let test_preflight_raises_with_rule_id () =
  match A.Lint.preflight_netlist ~what:"unit-test netlist" (bad_netlist ()) with
  | () -> Alcotest.fail "expected Preflight_failed"
  | exception A.Lint.Preflight_failed msg ->
      Alcotest.(check bool) "cites the rule" true (contains msg A.Rules.erc_nonpositive_resistance)

let test_preflight_passes_clean () =
  A.Lint.preflight_netlist ~what:"clean buffer" (buffer_builder ()).B.net

let test_preflight_env_opt_out () =
  Unix.putenv "CML_DFT_NO_PREFLIGHT" "1";
  let disabled = A.Lint.preflight_enabled () in
  let outcome =
    match A.Lint.preflight_netlist ~what:"opt-out" (bad_netlist ()) with
    | () -> `Skipped
    | exception A.Lint.Preflight_failed _ -> `Raised
  in
  Unix.putenv "CML_DFT_NO_PREFLIGHT" "";
  Alcotest.(check bool) "disabled via env" false disabled;
  Alcotest.(check bool) "no-op while disabled" true (outcome = `Skipped);
  Alcotest.(check bool) "re-enabled" true (A.Lint.preflight_enabled ())

let () =
  Alcotest.run "analysis"
    [
      ( "diagnostics",
        [
          Alcotest.test_case "sort by severity" `Quick test_sort_by_severity;
          Alcotest.test_case "deterministic order" `Quick test_sort_deterministic_within_severity;
          Alcotest.test_case "to_string" `Quick test_to_string_format;
          Alcotest.test_case "text summary" `Quick test_render_text_summary;
          Alcotest.test_case "json escaping" `Quick test_render_json_escapes;
          Alcotest.test_case "worst and count" `Quick test_worst_and_count;
          Alcotest.test_case "rule catalog" `Quick test_rule_catalog;
        ] );
      ( "erc",
        [
          Alcotest.test_case "floating node" `Quick test_erc_floating_node;
          Alcotest.test_case "no dc path" `Quick test_erc_no_dc_path;
          Alcotest.test_case "capacitor blocks dc" `Quick test_erc_capacitor_is_not_a_dc_path;
          Alcotest.test_case "duplicate names" `Quick test_erc_duplicate_names;
          Alcotest.test_case "non-positive resistance" `Quick test_erc_nonpositive_resistance;
          Alcotest.test_case "negative capacitance" `Quick test_erc_negative_capacitance;
          Alcotest.test_case "vsource loop" `Quick test_erc_vsource_loop;
        ] );
      ( "cml-rules",
        [
          Alcotest.test_case "baseline clean" `Quick test_cml_buffer_baseline_clean;
          Alcotest.test_case "mismatched loads" `Quick test_cml_mismatched_loads;
          Alcotest.test_case "missing tail" `Quick test_cml_missing_tail;
          Alcotest.test_case "swing window" `Quick test_cml_swing_window;
          Alcotest.test_case "vtest unrouted" `Quick test_cml_vtest_unrouted;
        ] );
      ( "dft-audit",
        [
          Alcotest.test_case "clean plan" `Quick test_audit_clean_plan;
          Alcotest.test_case "oversized group" `Quick test_audit_oversized_group;
          Alcotest.test_case "uninstrumented cell" `Quick test_audit_uninstrumented_cell;
          Alcotest.test_case "single polarity" `Quick test_audit_single_polarity;
          Alcotest.test_case "missing read-out" `Quick test_audit_missing_readout;
          Alcotest.test_case "direct view" `Quick test_audit_view_direct;
        ] );
      ( "scoap",
        [
          Alcotest.test_case "golden cc/co" `Quick test_scoap_golden;
          Alcotest.test_case "output reports" `Quick test_scoap_output_reports;
          Alcotest.test_case "reconvergence" `Quick test_scoap_reconvergence;
          Alcotest.test_case "no false reconvergence" `Quick test_scoap_no_false_reconvergence;
          Alcotest.test_case "unobservable net" `Quick test_scoap_unobservable_net;
          Alcotest.test_case "s27 fixpoint finite" `Quick test_scoap_s27_fixpoint_finite;
          Alcotest.test_case "per-output summary" `Quick test_scoap_check_summary_info;
        ] );
      ( "cop",
        [
          Alcotest.test_case "golden probabilities" `Quick test_cop_golden;
          Alcotest.test_case "reconvergence correction" `Quick test_cop_correction;
          Alcotest.test_case "s27 sequential fixpoint" `Quick test_cop_s27_sequential;
          QCheck_alcotest.to_alcotest prop_cop_probabilities;
        ] );
      ( "distance",
        [
          Alcotest.test_case "golden depths" `Quick test_distance_golden;
          Alcotest.test_case "s27 segments" `Quick test_distance_s27;
          Alcotest.test_case "deep path warning" `Quick test_distance_deep_path_warning;
        ] );
      ( "lint-files",
        [ Alcotest.test_case "parallel parity" `Quick test_lint_files_parallel_parity ] );
      ( "preflight",
        [
          Alcotest.test_case "fails thresholds" `Quick test_fails_thresholds;
          Alcotest.test_case "raises with rule id" `Quick test_preflight_raises_with_rule_id;
          Alcotest.test_case "clean netlist passes" `Quick test_preflight_passes_clean;
          Alcotest.test_case "env opt-out" `Quick test_preflight_env_opt_out;
        ] );
    ]
