(* Tests for defect modelling: injection mechanics, site enumeration
   and the fault classification of the campaign runner, including the
   paper's two canonical cases — the C-E short of Figure 2 (stuck-at)
   and the Q3 pipe of Figure 4 (excessive excursion that heals). *)

module N = Cml_spice.Netlist
module D = Cml_defects.Defect
module B = Cml_cells.Builder

let buffer_net () =
  let b = B.create () in
  let input = B.diff_dc_input b ~name:"in" ~value:true in
  let out = Cml_cells.Buffer_cell.add b ~name:"x1" ~input in
  (b, out)

(* ------------------------------------------------------------------ *)
(* Injection mechanics *)

let test_pipe_adds_resistor () =
  let b, _ = buffer_net () in
  let faulty = Cml_defects.Inject.apply b.B.net (D.Pipe { device = "x1.q3"; r = 4e3 }) in
  Alcotest.(check bool) "pipe resistor added" true (N.mem_device faulty "defect.pipe");
  Alcotest.(check bool) "original untouched" true (not (N.mem_device b.B.net "defect.pipe"))

let test_pipe_on_resistor_rejected () =
  let b, _ = buffer_net () in
  match Cml_defects.Inject.apply b.B.net (D.Pipe { device = "x1.r1"; r = 4e3 }) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_short_between_terminals () =
  let b, _ = buffer_net () in
  let faulty =
    Cml_defects.Inject.apply b.B.net (D.Terminal_short { device = "x1.q2"; t1 = "c"; t2 = "e" })
  in
  match N.get_device faulty "defect.short" with
  | N.Resistor { r; _ } -> Alcotest.(check (float 1e-9)) "1 ohm" D.short_resistance r
  | _ -> Alcotest.fail "expected resistor"

let test_unknown_device () =
  let b, _ = buffer_net () in
  match Cml_defects.Inject.apply b.B.net (D.Pipe { device = "nope.q3"; r = 1e3 }) with
  | _ -> Alcotest.fail "expected Not_found"
  | exception Not_found -> ()

let test_open_splits_node () =
  let b, _ = buffer_net () in
  let before = N.node_count b.B.net in
  let faulty =
    Cml_defects.Inject.apply b.B.net (D.Open_terminal { device = "x1.q1"; terminal = "b" })
  in
  Alcotest.(check int) "one new node" (before + 1) (N.node_count faulty);
  Alcotest.(check bool) "bridge resistor" true (N.mem_device faulty "defect.open_r");
  Alcotest.(check bool) "bridge capacitor" true (N.mem_device faulty "defect.open_c")

let test_resistor_short_and_open () =
  let b, _ = buffer_net () in
  let shorted = Cml_defects.Inject.apply b.B.net (D.Resistor_short { device = "x1.r1" }) in
  (match N.get_device shorted "x1.r1" with
  | N.Resistor { r; _ } -> Alcotest.(check (float 1e-9)) "short" 1.0 r
  | _ -> Alcotest.fail "resistor");
  let opened = Cml_defects.Inject.apply b.B.net (D.Resistor_open { device = "x1.r1" }) in
  match N.get_device opened "x1.r1" with
  | N.Resistor { r; _ } -> Alcotest.(check (float 1.0)) "open" 100e6 r
  | _ -> Alcotest.fail "resistor"

let test_bridge_between_outputs () =
  let b, _ = buffer_net () in
  let faulty =
    Cml_defects.Inject.apply b.B.net (D.Bridge { node1 = "x1.op"; node2 = "x1.on"; r = 1.0 })
  in
  Alcotest.(check bool) "bridge added" true (N.mem_device faulty "defect.bridge")

let test_describe () =
  Alcotest.(check string) "pipe text" "C-E pipe (4 kohm) on x1.q3"
    (D.describe (D.Pipe { device = "x1.q3"; r = 4e3 }))

(* ------------------------------------------------------------------ *)
(* Site enumeration *)

let test_enumerate_buffer_sites () =
  let b, _ = buffer_net () in
  let sites = Cml_defects.Sites.enumerate b.B.net ~prefix:"x1" in
  (* 3 BJTs x (1 pipe + 3 shorts + 3 opens) + 2 resistors x 2 + 1 bridge *)
  Alcotest.(check int) "site count" ((3 * 7) + 4 + 1) (List.length sites);
  let pipes =
    List.filter (function D.Pipe _ -> true | _ -> false) sites [@warning "-8"]
  in
  Alcotest.(check int) "3 pipes" 3 (List.length pipes)

let test_enumerate_respects_prefix () =
  let b = B.create () in
  let input = B.diff_dc_input b ~name:"in" ~value:true in
  let out1 = Cml_cells.Buffer_cell.add b ~name:"x1" ~input in
  ignore (Cml_cells.Buffer_cell.add b ~name:"x2" ~input:out1);
  let s1 = Cml_defects.Sites.enumerate b.B.net ~prefix:"x1" in
  let s2 = Cml_defects.Sites.enumerate b.B.net ~prefix:"x2" in
  Alcotest.(check int) "same shape" (List.length s1) (List.length s2)

let test_enumerate_pipe_values () =
  let b, _ = buffer_net () in
  let sites = Cml_defects.Sites.enumerate ~pipe_values:[ 1e3; 5e3 ] b.B.net ~prefix:"x1" in
  let pipes = List.filter (function D.Pipe _ -> true | _ -> false) sites in
  Alcotest.(check int) "2 per transistor" 6 (List.length pipes)

(* ------------------------------------------------------------------ *)
(* Campaign classification on the paper's canonical defects *)

let run_single defect =
  let c =
    Cml_defects.Campaign.run ~defects:[ defect ] ()
  in
  match c.Cml_defects.Campaign.entries with
  | [ { outcome = Cml_defects.Campaign.Measured (m, f); _ } ] -> (c.reference, m, f)
  | [ { outcome = Cml_defects.Campaign.Failed msg; _ } ] -> Alcotest.failf "sim failed: %s" msg
  | _ -> Alcotest.fail "expected one entry"

let test_campaign_q2_short_is_stuck () =
  (* Figure 2: C-E short on Q2 gives a stuck output *)
  let _, _, f = run_single (D.Terminal_short { device = "x3.q2"; t1 = "c"; t2 = "e" }) in
  Alcotest.(check bool) "stuck" true f.Cml_defects.Campaign.stuck

let test_campaign_q3_pipe_is_excursion_not_stuck () =
  (* Figure 4: 4 kohm pipe on Q3 nearly doubles the swing and heals *)
  let reference, m, f = run_single (D.Pipe { device = "x3.q3"; r = 4e3 }) in
  Alcotest.(check bool) "excessive excursion" true f.Cml_defects.Campaign.excessive_excursion;
  Alcotest.(check bool) "not stuck" true (not f.Cml_defects.Campaign.stuck);
  Alcotest.(check bool) "heals downstream" true f.Cml_defects.Campaign.healed;
  let ratio = m.Cml_defects.Campaign.dut_swing /. reference.Cml_defects.Campaign.dut_swing in
  Alcotest.(check bool)
    (Printf.sprintf "swing nearly doubled (x%.2f)" ratio)
    true
    (ratio > 1.7 && ratio < 2.6)

let test_campaign_benign_defect () =
  (* a pipe so weak it changes nothing measurable *)
  let _, _, f = run_single (D.Pipe { device = "x3.q3"; r = 10e6 }) in
  Alcotest.(check bool) "no excursion" true (not f.Cml_defects.Campaign.excessive_excursion);
  Alcotest.(check bool) "not stuck" true (not f.Cml_defects.Campaign.stuck)

let test_campaign_reference_sane () =
  let reference, _, _ = run_single (D.Pipe { device = "x3.q3"; r = 10e6 }) in
  Alcotest.(check bool) "reference swing nominal" true
    (reference.Cml_defects.Campaign.dut_swing > 0.2
    && reference.Cml_defects.Campaign.dut_swing < 0.3);
  Alcotest.(check bool) "reference delay measured" true
    (reference.Cml_defects.Campaign.final_delay <> None)

let test_campaign_summary_counts () =
  let c =
    Cml_defects.Campaign.run
      ~defects:
        [
          D.Pipe { device = "x3.q3"; r = 4e3 };
          D.Terminal_short { device = "x3.q2"; t1 = "c"; t2 = "e" };
          D.Pipe { device = "does.not.exist"; r = 4e3 };
        ]
      ()
  in
  let s = Cml_defects.Campaign.summary c in
  Alcotest.(check (option int)) "total" (Some 3) (List.assoc_opt "defects" s);
  Alcotest.(check (option int)) "failed" (Some 1) (List.assoc_opt "failed" s);
  Alcotest.(check bool) "one stuck at least" true
    (match List.assoc_opt "stuck-at" s with Some n -> n >= 1 | None -> false)

let test_campaign_warm_start_parity () =
  (* warm-starting every variant from the nominal trajectory is a
     pure solver accelerant: classification must not change.  One
     defect per family, including an Open_terminal whose extra node
     makes its variant layout-incompatible with the guide. *)
  let defects =
    [
      D.Pipe { device = "x3.q3"; r = 4e3 };
      D.Terminal_short { device = "x3.q2"; t1 = "c"; t2 = "e" };
      D.Open_terminal { device = "x3.q1"; terminal = "b" };
    ]
  in
  let warm = Cml_defects.Campaign.run ~jobs:1 ~warm_start:true ~defects () in
  let cold = Cml_defects.Campaign.run ~jobs:1 ~warm_start:false ~defects () in
  Alcotest.(check (list (pair string int)))
    "summaries identical with warm start on/off"
    (Cml_defects.Campaign.summary cold)
    (Cml_defects.Campaign.summary warm)

(* ------------------------------------------------------------------ *)
(* Property: the variant-lockstep batch scheduler is a pure solver
   accelerant — for any defect list and either seeding policy, the
   classification of every entry matches the sequential per-variant
   path. *)

let defect_pool =
  [|
    D.Pipe { device = "x2.q3"; r = 4e3 };
    D.Pipe { device = "x2.q3"; r = 10e6 };
    D.Terminal_short { device = "x2.q2"; t1 = "c"; t2 = "e" };
    D.Resistor_short { device = "x2.r1" };
    D.Open_terminal { device = "x2.q1"; terminal = "b" };
  |]

let classification c =
  List.map
    (fun e ->
      ( D.describe e.Cml_defects.Campaign.defect,
        match e.Cml_defects.Campaign.outcome with
        | Cml_defects.Campaign.Failed _ -> "failed"
        | Cml_defects.Campaign.Measured (_, f) ->
            Printf.sprintf "stuck=%b exc=%b red=%b delay=%b iddq=%b healed=%b"
              f.Cml_defects.Campaign.stuck f.Cml_defects.Campaign.excessive_excursion
              f.Cml_defects.Campaign.reduced_swing f.Cml_defects.Campaign.delay_detectable
              f.Cml_defects.Campaign.iddq_detectable f.Cml_defects.Campaign.healed ))
    c.Cml_defects.Campaign.entries

let prop_batch_matches_sequential =
  QCheck2.Test.make ~name:"batched campaign classifies like sequential (warm and cold)" ~count:3
    QCheck2.Gen.(list_size (int_range 1 4) (int_range 0 (Array.length defect_pool - 1)))
    (fun picks ->
      let defects = List.map (fun i -> defect_pool.(i)) picks in
      List.for_all
        (fun warm_start ->
          let go batch =
            Cml_defects.Campaign.run ~stages:4 ~dut:2 ~freq:1e9 ~tstop:4e-9 ~jobs:1
              ~warm_start ~batch ~defects ()
          in
          let batched = go true and sequential = go false in
          classification batched = classification sequential
          && Cml_defects.Campaign.summary batched = Cml_defects.Campaign.summary sequential)
        [ true; false ])

(* ------------------------------------------------------------------ *)
(* Campaign on a compiled .bench design *)

let test_campaign_run_design_smoke () =
  (* one AND cell compiled from .bench text: every enumerated defect
     measures without a sim failure, and a tail-starving pipe is not
     classified benign *)
  let c =
    Cml_logic.Bench_format.of_string "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n"
  in
  let d = Cml_cells.Compile.compile ~freq:200e6 c in
  let golden = Cml_cells.Compile.netlist d in
  let defects =
    Cml_defects.Sites.enumerate golden ~prefix:"y" ~pipe_values:[ 4e3 ]
  in
  Alcotest.(check bool) "sites enumerate non-empty" true (defects <> []);
  let dut =
    match Cml_cells.Compile.find_cell d "y" with
    | Some diff -> diff
    | None -> Alcotest.fail "cell y unresolved"
  in
  let campaign =
    Cml_defects.Campaign.run_design ~freq:200e6 ~tstop:10e-9 ~jobs:1
      ~input:d.Cml_cells.Compile.input ~dut ~final:dut ~golden ~defects ()
  in
  Alcotest.(check int) "every defect measured"
    (List.length defects)
    (List.length campaign.Cml_defects.Campaign.entries);
  List.iter
    (fun e ->
      match e.Cml_defects.Campaign.outcome with
      | Cml_defects.Campaign.Measured _ -> ()
      | Cml_defects.Campaign.Failed msg ->
          Alcotest.failf "%s failed: %s" (Cml_defects.Defect.describe e.Cml_defects.Campaign.defect) msg)
    campaign.Cml_defects.Campaign.entries;
  let tail_pipe_flagged =
    List.exists
      (fun e ->
        match (e.Cml_defects.Campaign.defect, e.Cml_defects.Campaign.outcome) with
        | Cml_defects.Defect.Pipe { device; _ }, Cml_defects.Campaign.Measured (_, fl) ->
            String.length device >= 3
            && String.sub device (String.length device - 3) 3 = ".q3"
            && Cml_defects.Campaign.flag_labels fl <> []
        | _ -> false)
      campaign.Cml_defects.Campaign.entries
  in
  Alcotest.(check bool) "a tail pipe is detectable" true tail_pipe_flagged

let () =
  Alcotest.run "defects"
    [
      ( "inject",
        [
          Alcotest.test_case "pipe" `Quick test_pipe_adds_resistor;
          Alcotest.test_case "pipe kind check" `Quick test_pipe_on_resistor_rejected;
          Alcotest.test_case "terminal short" `Quick test_short_between_terminals;
          Alcotest.test_case "unknown device" `Quick test_unknown_device;
          Alcotest.test_case "open splits node" `Quick test_open_splits_node;
          Alcotest.test_case "resistor short/open" `Quick test_resistor_short_and_open;
          Alcotest.test_case "bridge" `Quick test_bridge_between_outputs;
          Alcotest.test_case "describe" `Quick test_describe;
        ] );
      ( "sites",
        [
          Alcotest.test_case "buffer sites" `Quick test_enumerate_buffer_sites;
          Alcotest.test_case "prefix scoping" `Quick test_enumerate_respects_prefix;
          Alcotest.test_case "pipe values" `Quick test_enumerate_pipe_values;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "q2 short is stuck (fig 2)" `Slow test_campaign_q2_short_is_stuck;
          Alcotest.test_case "q3 pipe is healed excursion (fig 4)" `Slow
            test_campaign_q3_pipe_is_excursion_not_stuck;
          Alcotest.test_case "benign defect" `Slow test_campaign_benign_defect;
          Alcotest.test_case "reference sanity" `Slow test_campaign_reference_sane;
          Alcotest.test_case "summary counts" `Slow test_campaign_summary_counts;
          Alcotest.test_case "warm-start parity" `Slow test_campaign_warm_start_parity;
          Alcotest.test_case "compiled design smoke" `Slow test_campaign_run_design_smoke;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_batch_matches_sequential ] );
    ]
