(* Tests for the SPICE-flavoured netlist serialisation (Netlist_io),
   the complex dense solver (Cdense) and the AC small-signal analysis,
   validated against analytic transfer functions. *)

module N = Cml_spice.Netlist
module Io = Cml_spice.Netlist_io
module E = Cml_spice.Engine
module W = Cml_spice.Waveform

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

(* ------------------------------------------------------------------ *)
(* value parsing / formatting *)

let test_parse_value_suffixes () =
  let cases =
    [
      ("2.2k", 2200.0);
      ("10p", 1e-11);
      ("3meg", 3e6);
      ("1u", 1e-6);
      ("500", 500.0);
      ("4e3", 4000.0);
      ("-0.25", -0.25);
      ("95f", 95e-15);
      ("1.5n", 1.5e-9);
      ("2g", 2e9);
      ("7t", 7e12);
      ("3m", 3e-3);
    ]
  in
  List.iter
    (fun (s, v) ->
      match Io.parse_value s with
      | Some got -> check_close ~eps:1e-12 s v got
      | None -> Alcotest.failf "failed to parse %S" s)
    cases

let test_parse_value_garbage () =
  List.iter
    (fun s -> Alcotest.(check (option (float 0.0))) s None (Io.parse_value s))
    [ "abc"; ""; "1x"; "k2"; "--3" ]

let test_format_value_roundtrip () =
  List.iter
    (fun v ->
      match Io.parse_value (Io.format_value v) with
      | Some got -> check_close ~eps:1e-9 (Io.format_value v) v got
      | None -> Alcotest.failf "unparseable formatting of %g: %S" v (Io.format_value v))
    [ 500.0; 2200.0; 1e-11; 3e6; 95e-15; 0.0; -4000.0; 0.8986; 1.0 /. 3.0 ]

let prop_value_roundtrip =
  QCheck2.Test.make ~name:"format_value/parse_value round-trip" ~count:300
    QCheck2.Gen.(float_range (-1e13) 1e13)
    (fun v ->
      match Io.parse_value (Io.format_value v) with
      | Some got -> Float.abs (got -. v) <= 1e-9 *. (1.0 +. Float.abs v)
      | None -> false)

(* ------------------------------------------------------------------ *)
(* netlist round-trip *)

let approx a b = Float.abs (a -. b) <= 1e-12 *. (1.0 +. Float.abs a)

let waves_approx (wa : W.t) (wb : W.t) =
  match (wa, wb) with
  | W.Dc a, W.Dc b -> approx a b
  | ( W.Pulse { v1; v2; delay; rise; fall; width; period },
      W.Pulse
        {
          v1 = v1';
          v2 = v2';
          delay = delay';
          rise = rise';
          fall = fall';
          width = width';
          period = period';
        } ) ->
      approx v1 v1' && approx v2 v2' && approx delay delay' && approx rise rise'
      && approx fall fall' && approx width width' && approx period period'
  | ( W.Sine { offset; ampl; freq; delay; phase },
      W.Sine { offset = offset'; ampl = ampl'; freq = freq'; delay = delay'; phase = phase' } )
    ->
      approx offset offset' && approx ampl ampl' && approx freq freq' && approx delay delay'
      && approx phase phase'
  | W.Pwl a, W.Pwl b ->
      Array.length a = Array.length b
      && Array.for_all2 (fun (t1, v1) (t2, v2) -> approx t1 t2 && approx v1 v2) a b
  | (W.Dc _ | W.Pulse _ | W.Sine _ | W.Pwl _), _ -> false

let netlists_equal a b =
  let canon net =
    List.map
      (fun d ->
        let terminals =
          List.map (fun (t, nd) -> (t, N.node_name net nd)) (N.device_terminals d)
        in
        (N.device_name d, terminals, d))
      (N.devices net)
  in
  let da = canon a and db = canon b in
  List.length da = List.length db
  && List.for_all2
       (fun (na, ta, dev_a) (nb, tb, dev_b) ->
         na = nb && ta = tb
         &&
         match (dev_a, dev_b) with
         | N.Resistor { r = ra; _ }, N.Resistor { r = rb; _ } -> Float.abs (ra -. rb) < 1e-9 *. ra
         | N.Capacitor { c = ca; _ }, N.Capacitor { c = cb; _ } -> Float.abs (ca -. cb) < 1e-20
         | N.Bjt { model = ma; _ }, N.Bjt { model = mb; _ } -> ma = mb
         | N.Diode { model = ma; _ }, N.Diode { model = mb; _ } -> ma = mb
         | N.Vsource { wave = wa; _ }, N.Vsource { wave = wb; _ } -> waves_approx wa wb
         | N.Isource { wave = wa; _ }, N.Isource { wave = wb; _ } -> waves_approx wa wb
         | N.Vcvs { gain = ga; _ }, N.Vcvs { gain = gb; _ } -> ga = gb
         | N.Vccs { gm = ga; _ }, N.Vccs { gm = gb; _ } -> ga = gb
         | _ -> false)
       da db

let test_roundtrip_buffer_chain () =
  let chain = Cml_cells.Chain.build ~stages:4 ~freq:100e6 () in
  let net = chain.Cml_cells.Chain.builder.Cml_cells.Builder.net in
  let text = Io.to_string net in
  let back = Io.of_string text in
  Alcotest.(check bool) "round-trip equal" true (netlists_equal net back)

let test_roundtrip_preserves_simulation () =
  let chain = Cml_cells.Chain.build_dc ~stages:3 ~value:true () in
  let net = chain.Cml_cells.Chain.builder.Cml_cells.Builder.net in
  let back = Io.of_string (Io.to_string net) in
  let x1 = E.dc_operating_point (E.compile net) in
  let x2 = E.dc_operating_point (E.compile back) in
  (* node name -> voltage must agree *)
  let v net x name =
    match N.find_node net name with Some nd -> E.voltage x nd | None -> Alcotest.fail name
  in
  List.iter
    (fun name -> check_close ~eps:1e-6 name (v net x1 name) (v back x2 name))
    [ "x1.op"; "x2.op"; "x3.op"; "x3.ce" ]

let test_parse_example_card_text () =
  let text =
    {|* hand-written deck
V vdd vgnd 0 DC 3.3
R r1 vgnd out 2.2k
C c1 out 0 10p
Q q1 out b 0 BF=80
+ IS=1e-18
D d1 out 0 ; clamp
I ib 0 b DC 2u
.end|}
  in
  let net = Io.of_string text in
  Alcotest.(check int) "6 devices" 6 (N.device_count net);
  (match N.get_device net "q1" with
  | N.Bjt { model; _ } ->
      check_close "bf" 80.0 model.Cml_spice.Models.q_bf;
      check_close "is" 1e-18 model.Cml_spice.Models.q_is ~eps:1e-12
  | _ -> Alcotest.fail "q1 should be a bjt");
  match N.get_device net "r1" with
  | N.Resistor { r; _ } -> check_close "r" 2200.0 r
  | _ -> Alcotest.fail "r1 should be a resistor"

let test_parse_multi_emitter () =
  let net = Io.of_string "Q q45 vout vtest op on IS=4e-19\n" in
  match N.get_device net "q45" with
  | N.Bjt { emitters; _ } -> Alcotest.(check int) "2 emitters" 2 (Array.length emitters)
  | _ -> Alcotest.fail "expected bjt"

let test_parse_errors_carry_line_numbers () =
  let attempt text expected_line =
    match Io.of_string text with
    | _ -> Alcotest.failf "expected parse error for %S" text
    | exception Io.Parse_error { line; _ } ->
        Alcotest.(check int) ("line of " ^ text) expected_line line
  in
  attempt "R r1 a b\n" 1;
  attempt "* ok\nX what a b c\n" 2;
  attempt "V v1 a 0 PULSE(1 2 3)\n" 1;
  attempt "R r1 a b 1x\n" 1

let test_parse_duplicate_name_rejected () =
  match Io.of_string "R r1 a b 100\nR r1 a c 100\n" with
  | _ -> Alcotest.fail "expected error"
  | exception Io.Parse_error _ -> ()

let test_file_roundtrip () =
  let chain = Cml_cells.Chain.build_dc ~stages:2 ~value:false () in
  let net = chain.Cml_cells.Chain.builder.Cml_cells.Builder.net in
  let path = Filename.temp_file "cmldft" ".cir" in
  Io.write_file ~path net;
  let back = Io.read_file ~path in
  Sys.remove path;
  Alcotest.(check bool) "file round-trip" true (netlists_equal net back)

(* ------------------------------------------------------------------ *)
(* complex dense solver *)

let test_cdense_real_system () =
  (* purely real system must match the real dense solver *)
  let m = Cml_numerics.Cdense.create 2 in
  Cml_numerics.Cdense.add_entry m 0 0 ~re:2.0 ~im:0.0;
  Cml_numerics.Cdense.add_entry m 0 1 ~re:1.0 ~im:0.0;
  Cml_numerics.Cdense.add_entry m 1 0 ~re:1.0 ~im:0.0;
  Cml_numerics.Cdense.add_entry m 1 1 ~re:3.0 ~im:0.0;
  let re, im = Cml_numerics.Cdense.solve m ~b_re:[| 5.0; 10.0 |] ~b_im:[| 0.0; 0.0 |] in
  check_close "x0" 1.0 re.(0);
  check_close "x1" 3.0 re.(1);
  check_close "im0" 0.0 im.(0);
  check_close "im1" 0.0 im.(1)

let test_cdense_imaginary_diagonal () =
  (* (j) x = 1  =>  x = -j *)
  let m = Cml_numerics.Cdense.create 1 in
  Cml_numerics.Cdense.add_entry m 0 0 ~re:0.0 ~im:1.0;
  let re, im = Cml_numerics.Cdense.solve m ~b_re:[| 1.0 |] ~b_im:[| 0.0 |] in
  check_close "re" 0.0 re.(0);
  check_close "im" (-1.0) im.(0)

let test_cdense_singular () =
  let m = Cml_numerics.Cdense.create 2 in
  Cml_numerics.Cdense.add_entry m 0 0 ~re:1.0 ~im:0.0;
  Cml_numerics.Cdense.add_entry m 1 0 ~re:1.0 ~im:0.0;
  match Cml_numerics.Cdense.solve m ~b_re:[| 1.0; 1.0 |] ~b_im:[| 0.0; 0.0 |] with
  | _ -> Alcotest.fail "expected Singular"
  | exception Cml_numerics.Cdense.Singular _ -> ()

let prop_cdense_residual =
  QCheck2.Test.make ~name:"complex LU residual is small" ~count:150
    QCheck2.Gen.(
      int_range 1 12 >>= fun n ->
      array_size (return (n * n)) (float_range (-1.0) 1.0) >>= fun re ->
      array_size (return (n * n)) (float_range (-1.0) 1.0) >>= fun im ->
      array_size (return n) (float_range (-1.0) 1.0) >>= fun br ->
      array_size (return n) (float_range (-1.0) 1.0) >>= fun bi -> return (n, re, im, br, bi))
    (fun (n, re, im, br, bi) ->
      let m = Cml_numerics.Cdense.create n in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Cml_numerics.Cdense.add_entry m i j ~re:re.((i * n) + j) ~im:im.((i * n) + j)
        done;
        (* diagonal dominance for conditioning *)
        Cml_numerics.Cdense.add_entry m i i ~re:(float_of_int (3 * n)) ~im:0.0
      done;
      let xr, xi = Cml_numerics.Cdense.solve m ~b_re:br ~b_im:bi in
      (* residual = A x - b *)
      let ok = ref true in
      for i = 0 to n - 1 do
        let sr = ref 0.0 and si = ref 0.0 in
        for j = 0 to n - 1 do
          let ar = re.((i * n) + j) +. if i = j then float_of_int (3 * n) else 0.0 in
          let ai = im.((i * n) + j) in
          sr := !sr +. ((ar *. xr.(j)) -. (ai *. xi.(j)));
          si := !si +. ((ar *. xi.(j)) +. (ai *. xr.(j)))
        done;
        if Float.abs (!sr -. br.(i)) > 1e-7 || Float.abs (!si -. bi.(i)) > 1e-7 then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* AC analysis *)

let test_ac_rc_lowpass () =
  let rr = 1000.0 and cc = 1e-9 in
  let fc = 1.0 /. (2.0 *. Float.pi *. rr *. cc) in
  let net = N.create () in
  let inp = N.node net "in" and out = N.node net "out" in
  N.vsource net ~name:"vin" ~pos:inp ~neg:N.gnd (W.Dc 0.0);
  N.resistor net ~name:"r1" inp out rr;
  N.capacitor net ~name:"c1" out N.gnd cc;
  let sim = E.compile net in
  let pts = Cml_spice.Ac.run sim ~source:"vin" ~freqs:[| fc /. 100.0; fc; fc *. 100.0 |] in
  match pts with
  | [ lo; mid; hi ] ->
      check_close ~eps:1e-3 "passband" 1.0 (Cml_spice.Ac.magnitude lo out);
      check_close ~eps:1e-3 "corner magnitude" (1.0 /. sqrt 2.0) (Cml_spice.Ac.magnitude mid out);
      check_close ~eps:0.01 "corner phase" (-45.0) (Cml_spice.Ac.phase_deg mid out);
      Alcotest.(check bool) "stopband" true (Cml_spice.Ac.magnitude hi out < 0.02)
  | _ -> Alcotest.fail "expected 3 points"

let test_ac_divider_flat () =
  let net = N.create () in
  let inp = N.node net "in" and out = N.node net "out" in
  N.vsource net ~name:"vin" ~pos:inp ~neg:N.gnd (W.Dc 1.0);
  N.resistor net ~name:"r1" inp out 1000.0;
  N.resistor net ~name:"r2" out N.gnd 1000.0;
  let sim = E.compile net in
  let pts = Cml_spice.Ac.run sim ~source:"vin" ~freqs:[| 1e3; 1e9 |] in
  List.iter (fun p -> check_close ~eps:1e-6 "half" 0.5 (Cml_spice.Ac.magnitude p out)) pts

let test_ac_cml_buffer_gain () =
  (* balanced differential pair: small-signal gain about gm*R/2 =
     (Itail/2/VT)*R/2, and it must roll off at very high frequency *)
  let b = Cml_cells.Builder.create () in
  let net = b.Cml_cells.Builder.net in
  let proc = b.Cml_cells.Builder.proc in
  let mid = proc.Cml_cells.Process.vgnd -. (proc.Cml_cells.Process.swing /. 2.0) in
  let inp = N.node net "in.p" and inn = N.node net "in.n" in
  N.vsource net ~name:"vp" ~pos:inp ~neg:N.gnd (W.Dc mid);
  N.vsource net ~name:"vn" ~pos:inn ~neg:N.gnd (W.Dc mid);
  let out =
    Cml_cells.Buffer_cell.add b ~name:"x1" ~input:{ Cml_cells.Builder.p = inp; n = inn }
  in
  let sim = E.compile net in
  let pts = Cml_spice.Ac.run sim ~source:"vp" ~freqs:[| 1e6; 300e9 |] in
  match pts with
  | [ low; high ] ->
      let gain_low = Cml_spice.Ac.magnitude low out.Cml_cells.Builder.n in
      let vt = Cml_spice.Models.boltzmann_vt in
      let expected =
        proc.Cml_cells.Process.i_tail /. 2.0 /. vt *. proc.Cml_cells.Process.r_load /. 2.0
      in
      Alcotest.(check bool)
        (Printf.sprintf "midband gain %.2f near %.2f" gain_low expected)
        true
        (gain_low > 0.5 *. expected && gain_low < 1.5 *. expected);
      Alcotest.(check bool) "rolls off" true
        (Cml_spice.Ac.magnitude high out.Cml_cells.Builder.n < gain_low /. 3.0)
  | _ -> Alcotest.fail "expected 2 points"

let test_ac_unknown_source () =
  let net = N.create () in
  let a = N.node net "a" in
  N.vsource net ~name:"vin" ~pos:a ~neg:N.gnd (W.Dc 1.0);
  N.resistor net ~name:"r" a N.gnd 100.0;
  let sim = E.compile net in
  match Cml_spice.Ac.run sim ~source:"nope" ~freqs:[| 1e3 |] with
  | _ -> Alcotest.fail "expected Not_found"
  | exception Not_found -> ()

let prop_netlist_roundtrip =
  QCheck2.Test.make ~name:"random netlists survive the text round-trip" ~count:60
    QCheck2.Gen.(
      int_range 2 6 >>= fun nnodes ->
      list_size (int_range 1 12)
        (triple (int_range 0 2) (int_range 0 (nnodes - 1)) (int_range 0 (nnodes - 1)))
      >>= fun devices -> return (nnodes, devices))
    (fun (_nnodes, devices) ->
      let net = N.create () in
      let node k = if k = 0 then N.gnd else N.node net (Printf.sprintf "n%d" k) in
      List.iteri
        (fun i (kind, a, b) ->
          let name = Printf.sprintf "d%d" i in
          match kind with
          | 0 -> N.resistor net ~name (node a) (node b) (float_of_int ((100 * (i + 1)) + a))
          | 1 -> N.capacitor net ~name (node a) (node b) (1e-12 *. float_of_int (i + 1))
          | _ ->
              N.vsource net ~name ~pos:(node a) ~neg:(node b)
                (W.Sine
                   {
                     offset = float_of_int a;
                     ampl = 0.5;
                     freq = 1e6 *. float_of_int (i + 1);
                     delay = 0.0;
                     phase = 0.1;
                   }))
        devices;
      netlists_equal net (Io.of_string (Io.to_string net)))

let () =
  let qc = List.map (fun t -> QCheck_alcotest.to_alcotest t) in
  Alcotest.run "spice-io-ac"
    [
      ( "values",
        [
          Alcotest.test_case "suffixes" `Quick test_parse_value_suffixes;
          Alcotest.test_case "garbage" `Quick test_parse_value_garbage;
          Alcotest.test_case "format round-trip" `Quick test_format_value_roundtrip;
        ] );
      ( "netlist-io",
        [
          Alcotest.test_case "chain round-trip" `Quick test_roundtrip_buffer_chain;
          Alcotest.test_case "round-trip simulates identically" `Quick
            test_roundtrip_preserves_simulation;
          Alcotest.test_case "hand-written deck" `Quick test_parse_example_card_text;
          Alcotest.test_case "multi-emitter card" `Quick test_parse_multi_emitter;
          Alcotest.test_case "error line numbers" `Quick test_parse_errors_carry_line_numbers;
          Alcotest.test_case "duplicate names" `Quick test_parse_duplicate_name_rejected;
          Alcotest.test_case "file round-trip" `Quick test_file_roundtrip;
        ] );
      ( "cdense",
        [
          Alcotest.test_case "real system" `Quick test_cdense_real_system;
          Alcotest.test_case "imaginary diagonal" `Quick test_cdense_imaginary_diagonal;
          Alcotest.test_case "singular" `Quick test_cdense_singular;
        ] );
      ( "ac",
        [
          Alcotest.test_case "rc lowpass analytic" `Quick test_ac_rc_lowpass;
          Alcotest.test_case "divider flat" `Quick test_ac_divider_flat;
          Alcotest.test_case "cml buffer gain" `Quick test_ac_cml_buffer_gain;
          Alcotest.test_case "unknown source" `Quick test_ac_unknown_source;
        ] );
      ("properties", qc [ prop_value_roundtrip; prop_cdense_residual; prop_netlist_roundtrip ]);
    ]
