# Developer entry points.  `make check` is the full pre-commit gate:
# strict-warning build, test suite, formatting (when ocamlformat is
# installed) and a lint pass over every committed example netlist.

DUNE ?= dune
LINT := $(DUNE) exec --no-build bin/cmldft.exe -- lint

.PHONY: all build test fmt lint-examples lint-fixtures plan-smoke report-examples telemetry-overhead diagnose-smoke compile-smoke watch-smoke explain-smoke fixtures check perf clean

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

# `dune build @fmt` needs ocamlformat; skip with a notice when the
# tool is missing so `make check` works on a bare switch.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  $(DUNE) build @fmt; \
	else \
	  echo "fmt: ocamlformat not installed, skipping"; \
	fi

lint-examples: build
	$(LINT) --fail-on error examples/netlists/*.cir examples/netlists/*.bench

# Every committed fixture must stay error-free under the full rule
# set, and the pass must stay interactive-fast even on the largest
# fixture (the c432-class surrogate): the whole run is budgeted at
# one second.
lint-fixtures: build
	@start=$$(date +%s%N); \
	$(LINT) --fail-on error examples/netlists/* >/dev/null || exit 1; \
	elapsed_ms=$$((($$(date +%s%N) - start) / 1000000)); \
	echo "lint-fixtures: OK ($${elapsed_ms} ms)"; \
	if [ $$elapsed_ms -ge 1000 ]; then \
	  echo "lint-fixtures: FAILED time budget (>= 1000 ms)"; exit 1; \
	fi

# End-to-end smoke of the placement pipeline: derate the sharing
# limit, optimize both built-in scenarios, realize them on the
# transistor netlists (audited), write the plan JSON and render it
# back with `cmldft report`.
plan-smoke: build
	$(eval PLAN_DIR := $(shell mktemp -d))
	$(DUNE) exec --no-build bin/cmldft.exe -- plan --scenario chain --derate \
	  --json $(PLAN_DIR)/plan_chain8.json
	$(DUNE) exec --no-build bin/cmldft.exe -- plan --scenario adder --derate --budget 0.7
	$(DUNE) exec --no-build bin/cmldft.exe -- report $(PLAN_DIR)/plan_chain8.json
	rm -rf $(PLAN_DIR)

# The committed run manifests must stay parseable by `cmldft report`
# (they are the documented example of the manifest schema), and the
# committed event stream by `cmldft watch` (ditto for
# cml-dft-events/1).
report-examples: build
	$(DUNE) exec --no-build bin/cmldft.exe -- report examples/manifests/*.json
	$(DUNE) exec --no-build bin/cmldft.exe -- watch --once \
	  examples/manifests/campaign_x3.events.jsonl

# Disabled-tracing cost gate: the telemetry span hooks on the Newton
# hot path must amount to < 3% of the recorded chain-transient
# baseline (computed from the measured per-hook cost, so it does not
# flake on host drift; see bench/perf.ml).
telemetry-overhead: build
	$(DUNE) exec bench/main.exe -- overhead --json BENCH_spice.json

# End-to-end smoke of the diagnosis pipeline: re-simulate the paper's
# 3 kohm pipe defect with stage + detector probes, write the JSON
# record and analog VCD, and render the record back with `cmldft
# report` (the same path that renders the committed example).
diagnose-smoke: build
	$(eval SMOKE_DIR := $(shell mktemp -d))
	$(DUNE) exec --no-build bin/cmldft.exe -- diagnose --pipe 3000 \
	  --json $(SMOKE_DIR)/diagnosis.json --vcd $(SMOKE_DIR)/diagnosis.vcd
	$(DUNE) exec --no-build bin/cmldft.exe -- report $(SMOKE_DIR)/diagnosis.json
	rm -rf $(SMOKE_DIR)

# End-to-end smoke of the .bench->CML compiler on the largest
# committed fixture: lint the gate-level netlist clean, derate a DFT
# plan for it, then compile the ~950-unknown transistor netlist and
# converge a DC operating point (exercising the fill-reducing LU
# ordering).  Budgeted at five seconds so the compile+solve path
# stays interactive.
compile-smoke: build
	@start=$$(date +%s%N); \
	$(LINT) --fail-on error examples/netlists/c432_surrogate.bench >/dev/null || exit 1; \
	$(DUNE) exec --no-build bin/cmldft.exe -- plan examples/netlists/c432_surrogate.bench \
	  --derate >/dev/null || exit 1; \
	$(DUNE) exec --no-build bin/cmldft.exe -- op --bench examples/netlists/c432_surrogate.bench \
	  || exit 1; \
	elapsed_ms=$$((($$(date +%s%N) - start) / 1000000)); \
	echo "compile-smoke: OK ($${elapsed_ms} ms)"; \
	if [ $$elapsed_ms -ge 5000 ]; then \
	  echo "compile-smoke: FAILED time budget (>= 5000 ms)"; exit 1; \
	fi

# End-to-end smoke of the run observatory: stream a small campaign's
# events to a JSONL file alongside its manifest, replay the stream
# with `cmldft watch --once`, feed the manifest to `cmldft report`
# over stdin, and run the cross-run trend analyzer over the perf
# history plus the fresh manifest.
watch-smoke: build
	$(eval WATCH_DIR := $(shell mktemp -d))
	$(DUNE) exec --no-build bin/cmldft.exe -- campaign --jobs 2 \
	  --events $(WATCH_DIR)/events.jsonl --manifest $(WATCH_DIR)/manifest.json >/dev/null
	$(DUNE) exec --no-build bin/cmldft.exe -- watch --once $(WATCH_DIR)/events.jsonl
	$(DUNE) exec --no-build bin/cmldft.exe -- report - < $(WATCH_DIR)/manifest.json
	$(DUNE) exec --no-build bin/cmldft.exe -- report --trend BENCH_spice.json \
	  $(WATCH_DIR)/manifest.json
	rm -rf $(WATCH_DIR)

# End-to-end smoke of the post-mortem pipeline: run a deliberately
# hard campaign (cold start, Newton capped at 12 iterations so
# marginal solves fail visibly), explain the slowest variant — the
# re-simulation must blame a named net for at least one LTE rejection
# and one Newton retry — write the post-mortem JSON and render it
# back with `cmldft report`.  Budgeted at five seconds.
explain-smoke: build
	@start=$$(date +%s%N); \
	dir=$$(mktemp -d); \
	$(DUNE) exec --no-build bin/cmldft.exe -- campaign --no-warm-start --max-iter 12 \
	  --manifest $$dir/campaign.json >/dev/null || { rm -rf $$dir; exit 1; }; \
	$(DUNE) exec --no-build bin/cmldft.exe -- explain $$dir/campaign.json \
	  > $$dir/postmortem.txt || { rm -rf $$dir; exit 1; }; \
	grep -q "LTE pressure concentrates on" $$dir/postmortem.txt || \
	  { echo "explain-smoke: FAILED (no LTE blame line)"; rm -rf $$dir; exit 1; }; \
	grep -q "Newton gave up" $$dir/postmortem.txt || \
	  { echo "explain-smoke: FAILED (no Newton retry blame line)"; rm -rf $$dir; exit 1; }; \
	$(DUNE) exec --no-build bin/cmldft.exe -- explain $$dir/campaign.json \
	  --json $$dir/postmortem.json >/dev/null || { rm -rf $$dir; exit 1; }; \
	$(DUNE) exec --no-build bin/cmldft.exe -- report $$dir/postmortem.json >/dev/null \
	  || { rm -rf $$dir; exit 1; }; \
	rm -rf $$dir; \
	elapsed_ms=$$((($$(date +%s%N) - start) / 1000000)); \
	echo "explain-smoke: OK ($${elapsed_ms} ms)"; \
	if [ $$elapsed_ms -ge 5000 ]; then \
	  echo "explain-smoke: FAILED time budget (>= 5000 ms)"; exit 1; \
	fi

# Regenerate the committed decks in examples/netlists/ from the cell
# library (they are kept in git so `lint-examples` needs no codegen).
fixtures: build
	$(DUNE) exec examples/write_lint_fixtures.exe

# Kernel benchmarks + campaign scaling (with a per-core efficiency
# column); appends an entry to the BENCH_spice.json history and fails
# when any kernel regresses more than 25% against the last committed
# entry — 50% for the batched-campaign kernel, whose lane scheduling
# is more sensitive to host noise.  On a single-core host the
# parallel-speedup gate is skipped (and says so).  Opt into it from
# `make check` with CHECK_PERF=1 (it reruns every benchmark, minutes
# not seconds, so it is not part of the default gate).
PERF_JOBS ?= 4

perf: build
	$(DUNE) exec bench/main.exe -- perf --jobs $(PERF_JOBS) --json BENCH_spice.json --check

check: build test fmt lint-examples lint-fixtures plan-smoke report-examples diagnose-smoke compile-smoke watch-smoke explain-smoke telemetry-overhead
ifeq ($(CHECK_PERF),1)
	$(MAKE) perf
endif
	@echo "check: OK"

clean:
	$(DUNE) clean
