# Developer entry points.  `make check` is the full pre-commit gate:
# strict-warning build, test suite, formatting (when ocamlformat is
# installed) and a lint pass over every committed example netlist.

DUNE ?= dune
LINT := $(DUNE) exec --no-build bin/cmldft.exe -- lint

.PHONY: all build test fmt lint-examples report-examples telemetry-overhead diagnose-smoke fixtures check perf clean

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

# `dune build @fmt` needs ocamlformat; skip with a notice when the
# tool is missing so `make check` works on a bare switch.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  $(DUNE) build @fmt; \
	else \
	  echo "fmt: ocamlformat not installed, skipping"; \
	fi

lint-examples: build
	$(LINT) --fail-on error examples/netlists/*.cir examples/netlists/*.bench

# The committed run manifests must stay parseable by `cmldft report`
# (they are the documented example of the manifest schema).
report-examples: build
	$(DUNE) exec --no-build bin/cmldft.exe -- report examples/manifests/*.json

# Disabled-tracing cost gate: the telemetry span hooks on the Newton
# hot path must amount to < 3% of the recorded chain-transient
# baseline (computed from the measured per-hook cost, so it does not
# flake on host drift; see bench/perf.ml).
telemetry-overhead: build
	$(DUNE) exec bench/main.exe -- overhead --json BENCH_spice.json

# End-to-end smoke of the diagnosis pipeline: re-simulate the paper's
# 3 kohm pipe defect with stage + detector probes, write the JSON
# record and analog VCD, and render the record back with `cmldft
# report` (the same path that renders the committed example).
diagnose-smoke: build
	$(eval SMOKE_DIR := $(shell mktemp -d))
	$(DUNE) exec --no-build bin/cmldft.exe -- diagnose --pipe 3000 \
	  --json $(SMOKE_DIR)/diagnosis.json --vcd $(SMOKE_DIR)/diagnosis.vcd
	$(DUNE) exec --no-build bin/cmldft.exe -- report $(SMOKE_DIR)/diagnosis.json
	rm -rf $(SMOKE_DIR)

# Regenerate the committed decks in examples/netlists/ from the cell
# library (they are kept in git so `lint-examples` needs no codegen).
fixtures: build
	$(DUNE) exec examples/write_lint_fixtures.exe

# Kernel benchmarks + campaign scaling (with a per-core efficiency
# column); appends an entry to the BENCH_spice.json history and fails
# when any kernel regresses more than 25% against the last committed
# entry — 50% for the batched-campaign kernel, whose lane scheduling
# is more sensitive to host noise.  On a single-core host the
# parallel-speedup gate is skipped (and says so).  Opt into it from
# `make check` with CHECK_PERF=1 (it reruns every benchmark, minutes
# not seconds, so it is not part of the default gate).
PERF_JOBS ?= 4

perf: build
	$(DUNE) exec bench/main.exe -- perf --jobs $(PERF_JOBS) --json BENCH_spice.json --check

check: build test fmt lint-examples report-examples diagnose-smoke telemetry-overhead
ifeq ($(CHECK_PERF),1)
	$(MAKE) perf
endif
	@echo "check: OK"

clean:
	$(DUNE) clean
