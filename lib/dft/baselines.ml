let stuck_at_detects (f : Cml_defects.Campaign.flags) = f.Cml_defects.Campaign.stuck

let menon_xor_detects (f : Cml_defects.Campaign.flags) =
  f.Cml_defects.Campaign.stuck || f.Cml_defects.Campaign.reduced_swing

let delay_test_detects (f : Cml_defects.Campaign.flags) = f.Cml_defects.Campaign.delay_detectable

let iddq_test_detects (f : Cml_defects.Campaign.flags) = f.Cml_defects.Campaign.iddq_detectable

let amplitude_detector_detects (f : Cml_defects.Campaign.flags) =
  f.Cml_defects.Campaign.excessive_excursion || f.Cml_defects.Campaign.stuck

let delay_test_escape ~gate_delay ~stages ~tolerance ~extra_delay =
  extra_delay <= tolerance *. float_of_int stages *. gate_delay
