module N = Cml_spice.Netlist
module DA = Cml_analysis.Dft_audit

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let view ?(max_safe_share = 45) (plan : Insertion.plan) (builder : Cml_cells.Builder.t) =
  let net = builder.Cml_cells.Builder.net in
  let group (g : Insertion.group) =
    let members =
      List.mapi
        (fun k (cell, (outputs : Cml_cells.Builder.diff)) ->
          (* the sensors planned for member [k] of group [index] *)
          let prefix = Printf.sprintf "ro%d.det%d." g.Insertion.index k in
          let monitors_p = ref false and monitors_n = ref false in
          N.iter_devices net (fun d ->
              match d with
              | N.Bjt { name; emitters; _ } when starts_with ~prefix name ->
                  Array.iter
                    (fun e ->
                      if e = outputs.Cml_cells.Builder.p then monitors_p := true;
                      if e = outputs.Cml_cells.Builder.n then monitors_n := true)
                    emitters
              | N.Resistor _ | N.Capacitor _ | N.Diode _ | N.Bjt _ | N.Vsource _
              | N.Isource _ | N.Vcvs _ | N.Vccs _ -> ());
          { DA.cell; monitors_p = !monitors_p; monitors_n = !monitors_n })
        g.Insertion.members
    in
    let readout_prefix = Printf.sprintf "ro%d." g.Insertion.index in
    let readout_devices = ref 0 in
    N.iter_devices net (fun d ->
        let name = N.device_name d in
        if starts_with ~prefix:readout_prefix name && not (contains ~sub:".det" name) then
          incr readout_devices);
    { DA.index = g.Insertion.index; members; readout_devices = !readout_devices }
  in
  {
    DA.groups = List.map group plan.Insertion.groups;
    all_cells = List.map fst (Cml_cells.Builder.cells builder);
    max_safe_share;
  }

let check ?max_safe_share plan builder =
  Cml_analysis.Diagnostic.sort (DA.check (view ?max_safe_share plan builder))
