module A = Cml_analysis
module D = Cml_analysis.Diagnostic
module R = Cml_analysis.Rules
module J = Cml_telemetry.Json
module C = Cml_logic.Circuit
module Tel = Cml_telemetry

let schema = "cml-dft-plan/1"

exception Bad_plan of string

type site = {
  cell : string;
  net : int;
  depth : int;
  p1 : float;
  obs : float;
  co : int;
  score : float;
}

(* Hardness of a net for the random-pattern + detector flow: low COP
   observability and a skewed signal probability both starve the
   sensors of activity, and a large SCOAP CO means many nets must
   cooperate before a fault shows at an output.  The scale is only
   used to rank, so the weights just need to keep each term O(1). *)
let hardness ~p1 ~obs ~co =
  (1.0 -. obs)
  +. (2.0 *. Float.abs (p1 -. 0.5))
  +. (float_of_int (min co 100) /. 50.0)

let sites ~circuit ~cells =
  let cop = A.Cop.compute circuit in
  let sc = A.Scoap.compute circuit in
  let dist = A.Distance.compute circuit in
  List.map
    (fun (cell, net) ->
      if net < 0 || net >= C.num_nets circuit then
        invalid_arg (Printf.sprintf "Placement.sites: cell %s maps to bad net %d" cell net);
      let p1 = cop.A.Cop.p1.(net) and obs = cop.A.Cop.obs.(net) in
      let co = sc.A.Scoap.co.(net) in
      {
        cell;
        net;
        depth = dist.A.Distance.from_inputs.(net);
        p1;
        obs;
        co;
        score = hardness ~p1 ~obs ~co;
      })
    cells

let ranking sites =
  List.sort
    (fun a b ->
      match compare b.score a.score with 0 -> compare a.cell b.cell | c -> c)
    sites

type group = { g_index : int; g_members : site list }

let depth_span g =
  match g.g_members with
  | [] -> 0
  | s :: rest ->
      let lo, hi =
        List.fold_left (fun (lo, hi) m -> (min lo m.depth, max hi m.depth)) (s.depth, s.depth) rest
      in
      hi - lo

type t = {
  limit : int;
  nominal_limit : int;
  groups : group list;
  ranking : site list;
  sensor_bjts : int;
  readout_bjts : int;
  area_overhead : float;
}

let m_groups = Tel.Metrics.gauge "plan.groups"
let m_overhead = Tel.Metrics.gauge "plan.area_overhead"

let publish plan =
  Tel.Metrics.set m_groups (float_of_int (List.length plan.groups));
  Tel.Metrics.set m_overhead plan.area_overhead

let area_of ~n_cells ~n_groups =
  let sens = Area.v3_sensors ~multi_emitter:true in
  let ro = Area.v3_readout () in
  let sensor_bjts = n_cells * sens.Area.bjts in
  let readout_bjts = n_groups * ro.Area.bjts in
  let functional = n_cells * (Area.buffer_gate ()).Area.bjts in
  ( sensor_bjts,
    readout_bjts,
    float_of_int (sensor_bjts + readout_bjts) /. float_of_int (max 1 functional) )

let of_groups ?(nominal_limit = Derate.nominal_group_limit) ~limit member_groups =
  if limit < 1 then invalid_arg "Placement: limit < 1";
  let groups = List.mapi (fun g_index g_members -> { g_index; g_members }) member_groups in
  let all = List.concat member_groups in
  let sensor_bjts, readout_bjts, area_overhead =
    area_of ~n_cells:(List.length all) ~n_groups:(List.length groups)
  in
  let plan =
    {
      limit;
      nominal_limit;
      groups;
      ranking = ranking all;
      sensor_bjts;
      readout_bjts;
      area_overhead;
    }
  in
  publish plan;
  plan

(* Minimum group count at full coverage, members depth-sorted and cut
   into contiguous balanced chunks: balancing leaves every group the
   same margin slack, and contiguous depth-order cuts minimise each
   group's depth span (any other partition into the same sizes can
   only widen some group's span). *)
let optimize ?nominal_limit ~limit sites =
  if limit < 1 then invalid_arg "Placement.optimize: limit < 1";
  let ordered =
    List.sort
      (fun a b -> match compare a.depth b.depth with 0 -> compare a.cell b.cell | c -> c)
      sites
  in
  let n = List.length ordered in
  let member_groups =
    if n = 0 then []
    else begin
      let g = (n + limit - 1) / limit in
      let base = n / g and rem = n mod g in
      let rec cut i xs =
        if i >= g then []
        else begin
          let size = base + if i < rem then 1 else 0 in
          let rec take k acc xs =
            if k = 0 then (List.rev acc, xs)
            else
              match xs with
              | [] -> (List.rev acc, [])
              | x :: rest -> take (k - 1) (x :: acc) rest
          in
          let chunk, rest = take size [] xs in
          chunk :: cut (i + 1) rest
        end
      in
      cut 0 ordered
    end
  in
  of_groups ?nominal_limit ~limit member_groups

type config = { depth_window : int; weak_obs : float }

let default_config = { depth_window = 12; weak_obs = 0.05 }

let check ?(config = default_config) plan =
  let covered = Hashtbl.create 64 in
  let dups = ref [] in
  List.iter
    (fun g ->
      List.iter
        (fun s ->
          if Hashtbl.mem covered s.cell then dups := (s.cell, g.g_index) :: !dups
          else Hashtbl.add covered s.cell g.g_index)
        g.g_members)
    plan.groups;
  let over_limit =
    List.concat_map
      (fun g ->
        let n = List.length g.g_members in
        if n > plan.limit then
          [
            D.make ~rule:R.place_over_limit D.Error (D.Group g.g_index)
              "group has %d detectors; the derated safe limit is %d" n plan.limit;
          ]
        else [])
      plan.groups
  in
  let uncovered =
    List.concat_map
      (fun s ->
        if s.obs < config.weak_obs && not (Hashtbl.mem covered s.cell) then
          [
            D.make ~rule:R.place_uncovered_weak_net D.Error (D.Cell s.cell)
              "net observability %.3f is below %.2f and no detector monitors it" s.obs
              config.weak_obs;
          ]
        else [])
      plan.ranking
  in
  let unbalanced =
    List.concat_map
      (fun g ->
        let span = depth_span g in
        if span > config.depth_window then
          [
            D.make ~rule:R.place_unbalanced_depth D.Warning (D.Group g.g_index)
              "group spans %d logic levels; the settling window budgets %d" span
              config.depth_window;
          ]
        else [])
      plan.groups
  in
  let redundant =
    List.rev_map
      (fun (cell, g_index) ->
        D.make ~rule:R.place_redundant_detector D.Warning (D.Cell cell)
          "cell already has a detector in an earlier group (duplicate in group %d)" g_index)
      !dups
  in
  D.sort (over_limit @ uncovered @ unbalanced @ redundant)

let to_groups plan = List.map (fun g -> List.map (fun s -> s.cell) g.g_members) plan.groups

(* {2 JSON} *)

let site_to_json s =
  J.Obj
    [
      ("cell", J.Str s.cell);
      ("net", J.Num (float_of_int s.net));
      ("depth", J.Num (float_of_int s.depth));
      ("p1", J.Num s.p1);
      ("obs", J.Num s.obs);
      ("co", J.Num (float_of_int s.co));
      ("score", J.Num s.score);
    ]

let to_json plan =
  J.Obj
    [
      ("schema", J.Str schema);
      ("limit", J.Num (float_of_int plan.limit));
      ("nominal_limit", J.Num (float_of_int plan.nominal_limit));
      ( "groups",
        J.List
          (List.map
             (fun g ->
               J.Obj
                 [
                   ("index", J.Num (float_of_int g.g_index));
                   ("depth_span", J.Num (float_of_int (depth_span g)));
                   ("members", J.List (List.map site_to_json g.g_members));
                 ])
             plan.groups) );
      ( "area",
        J.Obj
          [
            ("sensor_bjts", J.Num (float_of_int plan.sensor_bjts));
            ("readout_bjts", J.Num (float_of_int plan.readout_bjts));
            ("overhead", J.Num plan.area_overhead);
          ] );
      ("ranking", J.List (List.map site_to_json plan.ranking));
    ]

let fail fmt = Printf.ksprintf (fun m -> raise (Bad_plan m)) fmt

let req_member name j =
  match J.member name j with Some v -> v | None -> fail "missing field %S" name

let req_num name j =
  match J.to_float (req_member name j) with
  | Some v -> v
  | None -> fail "field %S is not a number" name

let req_int name j = int_of_float (req_num name j)

let req_str name j =
  match J.to_str (req_member name j) with
  | Some v -> v
  | None -> fail "field %S is not a string" name

let req_list name j =
  match J.to_list (req_member name j) with
  | Some v -> v
  | None -> fail "field %S is not a list" name

let site_of_json j =
  {
    cell = req_str "cell" j;
    net = req_int "net" j;
    depth = req_int "depth" j;
    p1 = req_num "p1" j;
    obs = req_num "obs" j;
    co = req_int "co" j;
    score = req_num "score" j;
  }

let of_json j =
  let s = req_str "schema" j in
  if s <> schema then fail "schema %S is not %S" s schema;
  let groups =
    List.map
      (fun gj ->
        { g_index = req_int "index" gj; g_members = List.map site_of_json (req_list "members" gj) })
      (req_list "groups" j)
  in
  let area = req_member "area" j in
  {
    limit = req_int "limit" j;
    nominal_limit = req_int "nominal_limit" j;
    groups;
    ranking = List.map site_of_json (req_list "ranking" j);
    sensor_bjts = req_int "sensor_bjts" area;
    readout_bjts = req_int "readout_bjts" area;
    area_overhead = req_num "overhead" area;
  }

let write_json ~path plan = J.write_file path (to_json plan)

let render_text plan =
  let b = Buffer.create 1024 in
  let cells = List.length plan.ranking in
  Buffer.add_string b
    (Printf.sprintf "detector placement: %d cells in %d group(s), limit %d (nominal %d)\n" cells
       (List.length plan.groups) plan.limit plan.nominal_limit);
  Buffer.add_string b
    (Printf.sprintf "area: %d sensor + %d read-out BJTs (%.0f%% of the functional transistors)\n"
       plan.sensor_bjts plan.readout_bjts (100.0 *. plan.area_overhead));
  List.iter
    (fun g ->
      Buffer.add_string b
        (Printf.sprintf "  group %d (%d cells, depth span %d): %s\n" g.g_index
           (List.length g.g_members) (depth_span g)
           (String.concat " " (List.map (fun s -> s.cell) g.g_members))))
    plan.groups;
  let top = List.filteri (fun i _ -> i < 5) plan.ranking in
  if top <> [] then begin
    Buffer.add_string b "hardest nets first:\n";
    List.iter
      (fun s ->
        Buffer.add_string b
          (Printf.sprintf "  %-20s score %.2f  (p1 %.3f, obs %.3f, CO %d, depth %d)\n" s.cell
             s.score s.p1 s.obs s.co s.depth))
      top
  end;
  Buffer.contents b

(* {2 Logic twins of the canonical analog scenarios}

   The detector placement reasons at gate level; these twins mirror
   the two transistor-level scenarios the rest of the repo uses
   (the paper's buffer chain, the instrumented 4-bit adder) with
   matching cell instance names so a plan's groups can be realized
   directly by {!Insertion.instrument_groups}. *)

let chain_twin ~stages =
  if stages < 1 then invalid_arg "Placement.chain_twin: stages < 1";
  let bld = C.create () in
  let va = C.input bld "va" in
  let cells = ref [] in
  let last = ref va in
  for k = 1 to stages do
    let n = C.buf bld !last in
    cells := (Cml_cells.Chain.stage_name k, n) :: !cells;
    last := n
  done;
  C.output bld "y" !last;
  (C.finalize bld, List.rev !cells)

let adder_twin ~bits =
  if bits < 1 then invalid_arg "Placement.adder_twin: bits < 1";
  let bld = C.create () in
  let operand name = Array.init bits (fun k -> C.input bld (Printf.sprintf "%s%d" name k)) in
  let a = operand "a" and bv = operand "b" in
  let cin = C.input bld "cin" in
  let cells = ref [] in
  let carry = ref cin in
  for k = 0 to bits - 1 do
    let name fmt = Printf.sprintf "add.fa%d.%s" k fmt in
    let cell n net =
      cells := (name n, net) :: !cells;
      net
    in
    let axb = cell "axb" (C.xor2 bld a.(k) bv.(k)) in
    let sum = cell "sum" (C.xor2 bld axb !carry) in
    let g = cell "g" (C.and2 bld a.(k) bv.(k)) in
    let p = cell "p" (C.and2 bld axb !carry) in
    let cout = cell "cout" (C.or2 bld g p) in
    C.output bld (Printf.sprintf "sum%d" k) sum;
    carry := cout
  done;
  C.output bld "cout" !carry;
  (C.finalize bld, List.rev !cells)
