(** COP/SCOAP-guided detector placement: choose the sensor sharing
    groups that keep full amplitude-fault coverage (every cell gets a
    sensor — the paper's scheme detects amplitude faults at the
    faulty cell itself, so coverage is structural) while respecting
    the {e derated} group limit from {!Derate} and minimising area:
    group count drives the read-out overhead, so the optimizer uses
    the fewest groups the limit allows and balances them.

    Members are cut in logic-depth order, which also minimises each
    group's depth span (a span warning means one read-out would mix
    sensors that settle at very different times).  The testability
    metrics ({!Cml_analysis.Cop}, {!Cml_analysis.Scoap}) rank the
    hardest nets so the report surfaces where random-pattern logic
    testing would struggle — the nets whose coverage depends on the
    detectors being placed at all. *)

type site = {
  cell : string;  (** analog cell instance the detector attaches to *)
  net : int;  (** gate-level twin net *)
  depth : int;  (** logic depth from the segment sources *)
  p1 : float;  (** COP one-probability *)
  obs : float;  (** COP change-propagation probability *)
  co : int;  (** SCOAP combinational observability *)
  score : float;  (** hardness rank key, higher = harder *)
}

val sites : circuit:Cml_logic.Circuit.t -> cells:(string * int) list -> site list
(** Evaluate the metrics once and annotate each (cell, twin net)
    pair.  @raise Invalid_argument on a net id outside the circuit. *)

type group = { g_index : int; g_members : site list }

val depth_span : group -> int

type t = {
  limit : int;  (** derated per-group detector limit this plan obeys *)
  nominal_limit : int;
  groups : group list;
  ranking : site list;  (** every site, hardest first *)
  sensor_bjts : int;
  readout_bjts : int;
  area_overhead : float;  (** DFT transistors over functional transistors *)
}

val optimize : ?nominal_limit:int -> limit:int -> site list -> t
(** Minimum group count at full coverage under [limit], balanced
    contiguous depth-order cuts.  Publishes the [plan.groups] and
    [plan.area_overhead] gauges.  @raise Invalid_argument on
    [limit < 1]. *)

val of_groups : ?nominal_limit:int -> limit:int -> site list list -> t
(** Wrap an explicit (e.g. hand-written) grouping as a plan, with the
    same area accounting and gauges — {!check} then audits it against
    the limit. *)

type config = { depth_window : int; weak_obs : float }

val default_config : config
(** [depth_window = 12], [weak_obs = 0.05]. *)

val check : ?config:config -> t -> Cml_analysis.Diagnostic.t list
(** PLACE001 group over the derated limit (error), PLACE002 weak net
    with no detector (error), PLACE003 depth span over the window
    (warning), PLACE004 duplicate detector (warning); sorted. *)

val to_groups : t -> string list list
(** Member cell names per group, ready for
    {!Insertion.instrument_groups}. *)

(** {1 Serialisation} — schema ["cml-dft-plan/1"]. *)

val schema : string

exception Bad_plan of string

val to_json : t -> Cml_telemetry.Json.t
val of_json : Cml_telemetry.Json.t -> t
(** @raise Bad_plan on a malformed or wrong-schema document. *)

val write_json : path:string -> t -> unit
val render_text : t -> string

(** {1 Logic twins of the canonical scenarios} *)

val chain_twin : stages:int -> Cml_logic.Circuit.t * (string * int) list
(** Buffer-chain twin; cell names match {!Cml_cells.Chain.stage_name}. *)

val adder_twin : bits:int -> Cml_logic.Circuit.t * (string * int) list
(** Ripple-carry adder twin; cell names match the gates
    {!Cml_cells.Adder.ripple_carry} registers under ["add"]. *)
