(** Variant 3 (section 6.3, Figure 11): the shared load circuit and
    the comparator that converts the detector output voltage into a
    logic value.

    The load hangs from [vtest] so it can supply the comparator's
    input bias current; a resistor R0 in parallel with the
    diode-connected load keeps the fault-free drop small.  The
    comparator is a CML pair supplied from [vtest] whose complement
    output [vfb] is fed back as its own reference input — the
    positive feedback yields the hysteresis of Figure 12 — followed
    by a level shifter back to CML levels. *)

type t = {
  vout : Cml_spice.Netlist.node;  (** shared detector output / comparator input *)
  vfb : Cml_spice.Netlist.node;  (** feedback node = comparator reference *)
  flag : Cml_spice.Netlist.node;
      (** level-shifted pass/fail output: high = fault-free, low =
          fault detected *)
  vtest : Cml_spice.Netlist.node;
}

type config = {
  r0 : float;  (** parallel load resistor (paper: 40 kohm) *)
  c0 : float;  (** stabilising capacitor on vout *)
  fb_high_drop : float;
      (** how far below [vtest] the upper feedback level sits; sets
          the centre of the hysteresis window *)
  fb_width : float;  (** hysteresis width (upper minus lower threshold) *)
}

val default_config : config
(** [r0 = 40 kohm], [c0 = 10 pF], [fb_high_drop = 0.169 V],
    [fb_width = 0.25 V].  The feedback swing keeps the comparator's
    regenerative loop gain well above one: the *measured* hysteresis
    (the Figure-12 sweep) is then about 85 mV wide, with the
    up-switch threshold placed just below the fault-free [vout] of a
    45-gate sharing group — which is exactly the paper's
    safe-sharing criterion.  Use {!Experiment.hysteresis} for the
    measured thresholds; {!thresholds} only reports the designed
    feedback levels, which bracket the measured window. *)

val attach : Cml_cells.Builder.t -> name:string -> vtest:Cml_spice.Netlist.node -> ?config:config ->
  unit -> t
(** Build the load + comparator + level shifter; detectors then wire
    their sensor collectors to [vout] via {!Detector.attach_sensors}. *)

val thresholds : config -> vtest:float -> float * float
(** Designed [(lower, upper)] hysteresis thresholds (the feedback
    levels); the measured ones come out of the Fig. 12 sweep. *)
