(** The paper's built-in amplitude detectors (sections 6.1–6.2).

    Variant 1 (Figure 6): a single sensing transistor whose
    base-emitter junction spans the two gate outputs, with a
    diode-(or resistor-)capacitor load to the rail; it conducts when
    one output drops more than a junction turn-on below the other
    (the paper's 0.57 V figure).

    Variant 2 (Figure 9): two sensing transistors (or one
    dual-emitter transistor, section 6.5) with their bases on a
    dedicated [vtest] rail, raised above the supply in test mode so
    smaller excursions (0.35 V) forward-bias the detector. *)

type load_kind =
  | Diode_load  (** diode-connected transistor: non-linear, fast recovery *)
  | Resistor_load of float  (** the paper's 160 kohm alternative *)

type config = {
  load : load_kind;
  c_load : float;  (** load capacitance (the paper studies 1 pF and 10 pF) *)
  multi_emitter : bool;  (** variant-2 only: one dual-emitter transistor *)
}

val v1_default : config
(** Diode load, 10 pF, no multi-emitter. *)

val v2_default : config

val vtest_normal : Cml_cells.Process.t -> float
(** [vtest] voltage in normal mode: the supply rail (detector off). *)

val vtest_test : Cml_cells.Process.t -> float
(** [vtest] in test mode: rail + 0.4 V (the paper's 3.7 V for a
    3.3 V rail and 900 mV VBE). *)

val ensure_vtest : Cml_cells.Builder.t -> float -> Cml_spice.Netlist.node
(** The [vtest] rail node, creating its source (device ["vtest"]) on
    first use. *)

val set_vtest : Cml_cells.Builder.t -> float -> unit
(** Re-program the [vtest] source (switch between normal and test
    mode). *)

val attach_v1 :
  Cml_cells.Builder.t -> name:string -> outputs:Cml_cells.Builder.diff -> config -> Cml_spice.Netlist.node
(** Attach a variant-1 detector to a gate's output pair; returns the
    detector output node [<name>.vout].  Devices: [<name>.q4]
    (sensor), [<name>.q5] or [<name>.rload] (load), [<name>.c7]. *)

val attach_v2 :
  Cml_cells.Builder.t ->
  name:string ->
  outputs:Cml_cells.Builder.diff ->
  vtest:Cml_spice.Netlist.node ->
  config ->
  Cml_spice.Netlist.node
(** Attach a variant-2 detector (private load).  Devices: [<name>.q4]/
    [<name>.q5] (or one dual-emitter [<name>.q45]), [<name>.q6] or
    [<name>.rload], [<name>.c7]. *)

val attach_sensors :
  Cml_cells.Builder.t ->
  name:string ->
  outputs:Cml_cells.Builder.diff ->
  vtest:Cml_spice.Netlist.node ->
  vout:Cml_spice.Netlist.node ->
  multi_emitter:bool ->
  unit
(** Only the sensing transistor(s), collector wired to an externally
    provided [vout] — the building block for load sharing
    (section 6.4 / Figure 13). *)
