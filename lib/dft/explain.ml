(* The post-mortem pipeline behind `cmldft explain`: pick one variant
   out of a finished campaign (run manifest or run-events stream),
   rebuild its faulty netlist from the recorded options, re-simulate
   it with a solver-introspection recorder attached and distil the
   recording into a Cml_telemetry.Postmortem document.

   The re-simulation is deliberately scalar and single-threaded — the
   whole document is a pure function of the source manifest, so the
   same input explains to byte-identical JSON at any --jobs. *)

module E = Cml_spice.Engine
module T = Cml_spice.Transient
module I = Cml_spice.Introspect
module N = Cml_spice.Netlist
module J = Cml_telemetry.Json
module M = Cml_telemetry.Manifest
module PM = Cml_telemetry.Postmortem

type selection = Auto | Nth of int | Named of string

exception Unexplainable of string

let fail fmt = Printf.ksprintf (fun s -> raise (Unexplainable s)) fmt

(* ------------------------------------------------------------------ *)
(* Source loading: a run manifest, or an events JSONL stream condensed
   into a pseudo-manifest (kind + options from run_start, variants
   from the variant_done events). *)

let manifest_of_events path =
  let events = Cml_telemetry.Events.read_file path in
  let str j key ~default =
    match J.member key j with
    | Some v -> Option.value ~default (J.to_str v)
    | None -> default
  in
  let num j key ~default =
    match J.member key j with
    | Some v -> Option.value ~default (J.to_float v)
    | None -> default
  in
  let kind = ref "" and options = ref [] and variants = ref [] in
  List.iter
    (fun j ->
      match str j "ev" ~default:"" with
      | "run_start" ->
          kind := str j "kind" ~default:"";
          options :=
            (match J.member "options" j with
            | Some (J.Obj kvs) ->
                List.filter_map (fun (k, v) -> Option.map (fun s -> (k, s)) (J.to_str v)) kvs
            | _ -> [])
      | "variant_done" ->
          let seconds =
            match J.member "timing" j with Some t -> num t "seconds" ~default:0.0 | None -> 0.0
          in
          let classes =
            match J.member "classes" j with
            | Some (J.List vs) -> List.filter_map J.to_str vs
            | _ -> []
          in
          variants :=
            {
              M.v_name = str j "name" ~default:"?";
              v_classes = classes;
              v_seconds = seconds;
              v_metrics = [ ("accepted_steps", num j "accepted_steps" ~default:0.0) ];
            }
            :: !variants
      | _ -> ())
    events;
  if !kind = "" then fail "%s: no run_start event — not a cml-dft-events stream" path;
  (* the pseudo-manifest must stay a pure function of the stream:
     override the creation stamp M.create would mint *)
  let m = M.create ~options:!options ~variants:(List.rev !variants) ~kind:!kind () in
  { m with M.created = "events stream"; git = "unknown" }

let load_source path =
  match M.read ~path with
  | m -> m
  | exception (M.Bad_manifest _ | J.Parse_error _) -> (
      try manifest_of_events path
      with J.Parse_error _ | M.Bad_manifest _ ->
        fail "%s: neither a run manifest nor a run-events stream" path)

(* ------------------------------------------------------------------ *)
(* Variant selection *)

let contains ~needle hay =
  let hay = String.lowercase_ascii hay and needle = String.lowercase_ascii needle in
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let select ~selection m =
  let variants = m.M.variants in
  if variants = [] then fail "the source records no variants to explain";
  match selection with
  | Nth n -> (
      match List.nth_opt variants n with
      | Some v -> (v, Printf.sprintf "--variant %d" n)
      | None -> fail "--variant %d is out of range (%d variants)" n (List.length variants))
  | Named s -> (
      match List.find_opt (fun v -> contains ~needle:s v.M.v_name) variants with
      | Some v -> (v, Printf.sprintf "--defect match %S" s)
      | None -> fail "no variant name matches %S" s)
  | Auto -> (
      match List.find_opt (fun v -> List.mem "failed" v.M.v_classes) variants with
      | Some v -> (v, "first failed variant")
      | None ->
          let slowest =
            List.fold_left
              (fun a v -> if v.M.v_seconds > a.M.v_seconds then v else a)
              (List.hd variants) variants
          in
          (slowest, Printf.sprintf "slowest variant (%.3g s)" slowest.M.v_seconds))

(* ------------------------------------------------------------------ *)
(* Rebuilding the variant's circuit from the manifest options *)

let req_option m key =
  match List.assoc_opt key m.M.options with
  | Some s -> s
  | None -> fail "the source options carry no %S — cannot rebuild the circuit" key

let req_float m key =
  let s = req_option m key in
  match float_of_string_opt s with
  | Some v -> v
  | None -> fail "option %S = %S is not a number" key s

(* Pipe resistances are not in the options; harvest them back from the
   variant names ("C-E pipe (4 kohm) on x3.q3") so Sites.enumerate
   regenerates the exact candidate list the campaign ran. *)
let pipe_values m =
  let one v =
    match Scanf.sscanf v.M.v_name "C-E pipe (%g kohm)" (fun r -> r) with
    | r -> Some (r *. 1e3)
    | exception _ -> None
  in
  match List.sort_uniq compare (List.filter_map one m.M.variants) with
  | [] -> [ 4e3 ]
  | vs -> vs

(* ------------------------------------------------------------------ *)
(* Attribution helpers *)

(* Branch-current unknowns, labelled by the voltage source / VCVS that
   owns them — "i(vdd)" reads a lot better in a blame table than
   "branch[2]". *)
let branch_names sim net =
  let tbl = Hashtbl.create 8 in
  N.iter_devices net (fun d ->
      match d with
      | N.Vsource { name; _ } | N.Vcvs { name; _ } -> (
          match E.branch_unknown sim name with
          | i -> Hashtbl.replace tbl i ("i(" ^ name ^ ")")
          | exception Not_found -> ())
      | _ -> ());
  tbl

let unknown_name sim net =
  let branches = branch_names sim net in
  fun i ->
    if i < 0 then "gnd"
    else if i < E.node_unknowns sim then N.node_name net (i + 1)
    else
      match Hashtbl.find_opt branches i with
      | Some s -> s
      | None -> Printf.sprintf "branch[%d]" (i - E.node_unknowns sim)

(* Aggregate (index, severity) events into hotspot rows: count of
   times-worst plus the worst severity seen, ordered by count, then
   severity, then name — a total order, so the table is deterministic
   whatever Hashtbl iteration does. *)
let hotspots ~top ~name rows =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (i, sev) ->
      if i >= 0 then
        let c, w = Option.value ~default:(0, 0.0) (Hashtbl.find_opt tbl i) in
        Hashtbl.replace tbl i (c + 1, Float.max w sev))
    rows;
  let all = Hashtbl.fold (fun i (c, w) acc -> (name i, c, w) :: acc) tbl [] in
  let all =
    List.sort
      (fun (n1, c1, w1) (n2, c2, w2) ->
        match compare c2 c1 with
        | 0 -> ( match compare w2 w1 with 0 -> compare n1 n2 | k -> k)
        | k -> k)
      all
  in
  List.filteri (fun k _ -> k < top) all
  |> List.map (fun (n, c, w) -> { PM.h_name = n; h_count = c; h_worst = w })

let take n xs = List.filteri (fun i _ -> i < n) xs

(* Thin a timeline to at most [n] evenly strided points (always keeps
   the first point). *)
let decimate n xs =
  let len = List.length xs in
  if len <= n then xs
  else
    let stride = (len + n - 1) / n in
    List.filteri (fun i _ -> i mod stride = 0) xs

(* ------------------------------------------------------------------ *)
(* The pipeline *)

let dt_point_budget = 120

let explain ?(top = 8) ?(selection = Auto) ~source m =
  if m.M.kind <> "campaign" then
    fail "run kind %S: explain can only re-simulate campaign runs" m.M.kind;
  if List.mem_assoc "bench" m.M.options then
    fail
      "compiled-design campaign (a \"bench\" option is present): explain can only rebuild the \
       built-in buffer chain";
  let variant, why = select ~selection m in
  let freq = req_float m "freq" in
  let tstop = req_float m "tstop" in
  let stages = int_of_float (req_float m "stages") in
  let dut = int_of_float (req_float m "dut") in
  let warm_start = req_option m "warm_start" <> "false" in
  (* honour the campaign's Newton-iteration cap, if it ran with one —
     the re-simulation must fail exactly where the original did *)
  let engine_options =
    match List.assoc_opt "max_iter" m.M.options with
    | None -> None
    | Some s -> (
        match int_of_string_opt s with
        | Some n -> Some { E.default_options with E.max_iter = n }
        | None -> fail "option \"max_iter\" = %S is not an integer" s)
  in
  let chain = Cml_cells.Chain.build ~stages ~freq () in
  let golden = chain.Cml_cells.Chain.builder.Cml_cells.Builder.net in
  let prefix = Cml_cells.Chain.stage_name dut in
  let candidates = Cml_defects.Sites.enumerate ~pipe_values:(pipe_values m) golden ~prefix in
  let defect =
    match
      List.find_opt (fun d -> Cml_defects.Defect.describe d = variant.M.v_name) candidates
    with
    | Some d -> d
    | None -> fail "variant %S matches no defect site of stage %s" variant.M.v_name prefix
  in
  let breakpoints = T.collect_breakpoints golden ~tstop in
  (* same warm start the campaign used: the fault-free trajectory
     seeds the variant's DC solve and rescues diverging steps *)
  let guide =
    if not warm_start then None
    else
      let sim0 = E.compile ?options:engine_options golden in
      Some (T.run ~breakpoints sim0 golden (T.config ~tstop ~max_step:10e-12 ()))
  in
  let faulty =
    match Cml_defects.Inject.apply golden defect with
    | f -> f
    | exception (Not_found | Invalid_argument _) ->
        fail "defect %S no longer injects into the rebuilt chain" variant.M.v_name
  in
  let sim = E.compile ?options:engine_options faulty in
  let recorder = I.create ~label:variant.M.v_name () in
  E.set_introspect sim (Some recorder);
  let cfg = T.config ~tstop ~max_step:10e-12 ~record_every:0 () in
  let outcome, tstats =
    match T.run ?guide ~breakpoints sim faulty cfg with
    | r -> ("completed", Some r.T.stats)
    | exception E.No_convergence msg -> ("failed: " ^ msg, None)
  in
  (* ---- distil the recording ---- *)
  let net_name = unknown_name sim faulty in
  let nrows = I.newton_rows recorder in
  let worst_nets =
    hotspots ~top ~name:net_name
      (List.map (fun (r : I.newton_row) -> (r.I.nr_worst, r.I.nr_delta)) nrows)
  in
  let worst_devices =
    hotspots ~top
      ~name:(fun di -> E.device_label sim di)
      (List.map (fun (r : I.newton_row) -> (r.I.nr_jworst, r.I.nr_jerr)) nrows)
  in
  let lte_sorted =
    List.sort
      (fun (a : I.lte_row) (b : I.lte_row) ->
        match compare b.I.lr_ratio a.I.lr_ratio with
        | 0 -> compare a.I.lr_time b.I.lr_time
        | k -> k)
      (I.lte_rows recorder)
  in
  let lte =
    take top
      (List.map
         (fun (r : I.lte_row) ->
           {
             PM.l_time = r.I.lr_time;
             l_h = r.I.lr_h;
             l_node = net_name r.I.lr_worst;
             l_ratio = r.I.lr_ratio;
             l_cascade = r.I.lr_cascade;
           })
         lte_sorted)
  in
  let retries =
    take top
      (List.map
         (fun (r : I.fail_row) ->
           {
             PM.r_time = r.I.fr_time;
             r_net = (if r.I.fr_worst < 0 then "(no recorded iteration)" else net_name r.I.fr_worst);
             r_delta = r.I.fr_delta;
           })
         (I.fail_rows recorder))
  in
  let dt_rows = I.dt_rows recorder in
  let dt_kept = decimate dt_point_budget dt_rows in
  let dt_causes =
    List.filter_map
      (fun c ->
        match List.length (List.filter (fun (r : I.dt_row) -> r.I.dr_cause = c) dt_rows) with
        | 0 -> None
        | n -> Some (I.cause_name c, n))
      [ I.cause_accept; I.cause_breakpoint; I.cause_guide; I.cause_lte; I.cause_newton_fail ]
  in
  let ss = E.solver_stats sim in
  let newton_failures = I.newton_failures recorder in
  let stats =
    (match tstats with
    | None -> []
    | Some (s : T.stats) ->
        [
          ("accepted_steps", float_of_int s.T.accepted_steps);
          ("rejected_steps", float_of_int s.T.rejected_steps);
          ("lte_rejections", float_of_int s.T.lte_rejections);
          ("newton_iters", float_of_int s.T.newton_iters);
          ("guided_seeds", float_of_int s.T.guided_seeds);
          ("cold_fallbacks", float_of_int s.T.cold_fallbacks);
        ])
    @ [
        ("newton_failures", float_of_int newton_failures);
        ("diode_loads", float_of_int ss.E.diode_loads);
        ("diode_bypassed", float_of_int ss.E.diode_bypassed);
        ("bjt_loads", float_of_int ss.E.bjt_loads);
        ("bjt_bypassed", float_of_int ss.E.bjt_bypassed);
      ]
  in
  let fb_small, fb_unstable, fb_pattern = I.lu_fallbacks recorder in
  let lu =
    if ss.E.lu_nnz_factors = 0 then []
    else
      [
        ("pivot_growth", ss.E.lu_pivot_growth);
        ("condition_estimate", ss.E.lu_condition);
        ("fill_nnz", float_of_int ss.E.lu_nnz_factors);
        ("fill_ratio", ss.E.lu_fill_ratio);
        ("fallback_small_pivot", float_of_int fb_small);
        ("fallback_unstable_pivot", float_of_int fb_unstable);
        ("fallback_pattern_mismatch", float_of_int fb_pattern);
      ]
  in
  (* ---- narrative ---- *)
  let lines = ref [] in
  let add fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  (match tstats with
  | Some s ->
      add "Re-simulated to completion: %d accepted steps, %d rejected (%d LTE, %d Newton)."
        s.T.accepted_steps s.T.rejected_steps s.T.lte_rejections
        (s.T.rejected_steps - s.T.lte_rejections)
  | None -> add "Re-simulation diverged — %s." outcome);
  (match lte with
  | l :: _ ->
      add "LTE pressure concentrates on %s (worst ratio %.1fx tolerance at t = %.4g s, deepest cascade %d)."
        l.PM.l_node l.PM.l_ratio l.PM.l_time
        (List.fold_left (fun a (r : I.lte_row) -> max a r.I.lr_cascade) 0 lte_sorted)
  | [] -> ());
  (match worst_nets with
  | h :: _ ->
      add "Newton effort concentrates on %s (worst mover in %d of %d recorded iterations)."
        h.PM.h_name h.PM.h_count (List.length nrows)
  | [] -> ());
  (match worst_devices with
  | h :: _ ->
      add "Junction limiting is dominated by %s (%d times, worst error %.3g V)." h.PM.h_name
        h.PM.h_count h.PM.h_worst
  | [] -> ());
  if newton_failures > 0 then
    add "Newton gave up %d time(s)%s." newton_failures
      (match retries with r :: _ -> Printf.sprintf "; the first failure blamed %s" r.PM.r_net | [] -> "");
  (match tstats with
  | Some s when s.T.guided_seeds > 0 || s.T.cold_fallbacks > 0 ->
      add "The warm-start guide rescued %d solve(s); %d fell back to cold seeding."
        s.T.guided_seeds s.T.cold_fallbacks
  | _ -> ());
  if fb_small + fb_unstable + fb_pattern > 0 then
    add "LU stability fallbacks: %d small-pivot, %d unstable-pivot, %d pattern-mismatch."
      fb_small fb_unstable fb_pattern
  else if ss.E.lu_nnz_factors > 0 then
    add "LU stayed stable: pivot growth %.3g, condition estimate %.3g." ss.E.lu_pivot_growth
      ss.E.lu_condition;
  {
    PM.pm_variant = variant.M.v_name;
    pm_classes = variant.M.v_classes;
    pm_selection = why;
    pm_source = source;
    pm_git = m.M.git;
    pm_created = m.M.created;
    pm_options = m.M.options;
    pm_outcome = outcome;
    pm_narrative = List.rev !lines;
    pm_stats = stats;
    pm_worst_nets = worst_nets;
    pm_worst_devices = worst_devices;
    pm_lte = lte;
    pm_retries = retries;
    pm_dt_times = List.map (fun (r : I.dt_row) -> r.I.dr_t) dt_kept;
    pm_dt_steps = List.map (fun (r : I.dt_row) -> r.I.dr_h) dt_kept;
    pm_dt_causes = dt_causes;
    pm_lu = lu;
  }

let explain_path ?top ?selection path = explain ?top ?selection ~source:path (load_source path)
