(* Waveform-level diagnosis of a flagged defect: re-simulate the
   monitored chain with streaming probes on every stage output and the
   detector, profile signal health stage by stage (healing depth), and
   package the result as a structured JSON record plus an analog VCD
   dump — the drill-down a test engineer runs after a campaign flags a
   variant. *)

module E = Cml_spice.Engine
module T = Cml_spice.Transient
module W = Cml_wave.Wave
module H = Cml_wave.Health
module Json = Cml_telemetry.Json

let schema = "cml-dft-diagnosis/1"

type t = {
  defect : string;
  classes : string list;
  freq : float;
  stages : int;
  dut : int;
  tstop : float;
  nominal_low : float;
  nominal_high : float;
  nominal : H.profile;
  faulty : H.profile;
  timeline : H.detector_timeline;
  waves : (string * W.t) list;
  detector_wave : W.t;
}

(* Stage output probes ("x1.p" ... "xN.n") plus input pair and the
   detector output; probing by unknown index so the observer streams
   every accepted step (see Transient.observers). *)
let chain_probes chain ~stages ~det_vout =
  let stage_probes =
    List.concat
      (List.init stages (fun i ->
           let d = Cml_cells.Chain.output chain (i + 1) in
           let name = Cml_cells.Chain.stage_name (i + 1) in
           [
             (name ^ ".p", E.node_unknown d.Cml_cells.Builder.p);
             (name ^ ".n", E.node_unknown d.Cml_cells.Builder.n);
           ]))
  in
  let input = chain.Cml_cells.Chain.input in
  ("in.p", E.node_unknown input.Cml_cells.Builder.p)
  :: ("in.n", E.node_unknown input.Cml_cells.Builder.n)
  :: ("det.vout", E.node_unknown det_vout)
  :: stage_probes

let probed_run ?guide sim net ~tstop ~probes =
  let obs = T.observers probes in
  let r = T.run ?guide ~observers:obs sim net (T.config ~tstop ~max_step:10e-12 ()) in
  let waves =
    List.map
      (fun (name, _) ->
        let times, values = T.probe_samples obs name in
        (name, W.create times values))
      probes
  in
  (r, waves)

let stage_waves waves ~stages =
  List.init stages (fun i ->
      let name = Cml_cells.Chain.stage_name (i + 1) ^ ".p" in
      (Cml_cells.Chain.stage_name (i + 1), List.assoc name waves))

let run ?(proc = Cml_cells.Process.default) ?(freq = 100e6) ?(stages = 8) ?dut ?tstop
    ?(classes = []) ~defect () =
  let dut = match dut with Some d -> d | None -> Cml_cells.Chain.dut_stage in
  let tstop = match tstop with Some t -> t | None -> 2.0 /. freq in
  let chain = Cml_cells.Chain.build ~proc ~stages ~freq () in
  let builder = chain.Cml_cells.Chain.builder in
  let det_vout =
    Detector.attach_v1 builder ~name:"det"
      ~outputs:(Cml_cells.Chain.output chain dut)
      Detector.v1_default
  in
  let golden = builder.Cml_cells.Builder.net in
  (* node indices are assigned by the netlist, not the compiled
     engine, and defect injection only ever adds devices across
     existing nodes — so the same probe set serves both passes *)
  let probes = chain_probes chain ~stages ~det_vout in
  let t_from = tstop /. 2.0 in
  (* fault-free pass: nominal levels and the reference profile, plus a
     warm-start guide for the faulty pass *)
  let ref_r, ref_waves = probed_run (E.compile golden) golden ~tstop ~probes in
  let nominal_low, nominal_high =
    Cml_wave.Measure.levels
      (List.assoc (Cml_cells.Chain.stage_name stages ^ ".p") ref_waves)
      ~t_from
  in
  let nominal =
    H.profile ~nominal_low ~nominal_high ~t_from (stage_waves ref_waves ~stages)
  in
  (* faulty pass *)
  let faulty_net = Cml_defects.Inject.apply golden defect in
  let _, waves = probed_run ~guide:ref_r (E.compile faulty_net) faulty_net ~tstop ~probes in
  let faulty = H.profile ~nominal_low ~nominal_high ~t_from (stage_waves waves ~stages) in
  let detector_wave = List.assoc "det.vout" waves in
  let quiescent = proc.Cml_cells.Process.vgnd in
  let timeline =
    H.detector_timeline ~quiescent ~threshold:(quiescent -. 0.15) detector_wave
  in
  {
    defect = Cml_defects.Defect.describe defect;
    classes;
    freq;
    stages;
    dut;
    tstop;
    nominal_low;
    nominal_high;
    nominal;
    faulty;
    timeline;
    waves;
    detector_wave;
  }

(* Diagnosis of a defect on a compiled [.bench] design: the "stages"
   of the health profile are the attacked cell followed by every
   primary output — there is no buffer chain, but the same
   degraded-at-the-DUT / recovered-at-the-outputs reading applies.
   The detector attaches to the attacked cell's output pair, exactly
   as on the chain. *)
let run_design ?tstop ?(classes = []) ~design ~dut ~defect () =
  let module Cp = Cml_cells.Compile in
  let builder = design.Cp.builder in
  let proc = builder.Cml_cells.Builder.proc in
  let freq = design.Cp.freq in
  let tstop = match tstop with Some t -> t | None -> 2.0 /. freq in
  let dut_out =
    match Cp.find_cell design dut with
    | Some d -> d
    | None -> invalid_arg (Printf.sprintf "Diagnose.run_design: unknown cell %S" dut)
  in
  let det_vout =
    Detector.attach_v1 builder ~name:"det" ~outputs:dut_out Detector.v1_default
  in
  let golden = builder.Cml_cells.Builder.net in
  let monitored =
    (dut, dut_out) :: List.filter (fun (nm, _) -> nm <> dut) design.Cp.outputs
  in
  let probes =
    ("in.p", E.node_unknown design.Cp.input.Cml_cells.Builder.p)
    :: ("in.n", E.node_unknown design.Cp.input.Cml_cells.Builder.n)
    :: ("det.vout", E.node_unknown det_vout)
    :: List.concat_map
         (fun (nm, d) ->
           [
             (nm ^ ".p", E.node_unknown d.Cml_cells.Builder.p);
             (nm ^ ".n", E.node_unknown d.Cml_cells.Builder.n);
           ])
         monitored
  in
  let t_from = tstop /. 2.0 in
  let ref_r, ref_waves = probed_run (E.compile golden) golden ~tstop ~probes in
  let final_name = fst (List.nth monitored (List.length monitored - 1)) in
  let nominal_low, nominal_high =
    Cml_wave.Measure.levels (List.assoc (final_name ^ ".p") ref_waves) ~t_from
  in
  let monitor_waves ws = List.map (fun (nm, _) -> (nm, List.assoc (nm ^ ".p") ws)) monitored in
  let nominal = H.profile ~nominal_low ~nominal_high ~t_from (monitor_waves ref_waves) in
  let faulty_net = Cml_defects.Inject.apply golden defect in
  let _, waves = probed_run ~guide:ref_r (E.compile faulty_net) faulty_net ~tstop ~probes in
  let faulty = H.profile ~nominal_low ~nominal_high ~t_from (monitor_waves waves) in
  let detector_wave = List.assoc "det.vout" waves in
  let quiescent = proc.Cml_cells.Process.vgnd in
  let timeline =
    H.detector_timeline ~quiescent ~threshold:(quiescent -. 0.15) detector_wave
  in
  {
    defect = Cml_defects.Defect.describe defect;
    classes;
    freq;
    stages = List.length monitored;
    dut = 1;
    tstop;
    nominal_low;
    nominal_high;
    nominal;
    faulty;
    timeline;
    waves;
    detector_wave;
  }

let of_entry ?proc ?freq ?stages ?dut ?tstop (entry : Cml_defects.Campaign.entry) =
  let classes =
    match entry.Cml_defects.Campaign.outcome with
    | Cml_defects.Campaign.Measured (_, fl) -> Cml_defects.Campaign.flag_labels fl
    | Cml_defects.Campaign.Failed msg -> [ "failed: " ^ msg ]
  in
  run ?proc ?freq ?stages ?dut ?tstop ~classes ~defect:entry.Cml_defects.Campaign.defect ()

(* ------------------------------------------------------------------ *)
(* JSON round trip.  Waveforms are deliberately not serialised (a
   diagnosis record is a summary, the full traces go to the VCD); a
   record read back from JSON carries empty waves. *)

let num_opt = function Some x -> Json.Num x | None -> Json.Null

let stage_json (s : H.stage) =
  let num x = if Float.is_nan x then Json.Null else Json.Num x in
  Json.Obj
    [
      ("label", Json.Str s.H.label);
      ("vlow", num s.H.vlow);
      ("vhigh", num s.H.vhigh);
      ("swing", num s.H.swing);
      ("excursion", num s.H.excursion);
      ("overshoot", num s.H.overshoot);
      ("within", Json.Bool s.H.within);
    ]

let profile_json (p : H.profile) =
  Json.Obj
    [
      ("stages", Json.List (List.map stage_json p.H.stages));
      ("tolerance", Json.Num p.H.tolerance);
      ( "first_degraded",
        num_opt (Option.map float_of_int p.H.first_degraded) );
      ("healed_at", num_opt (Option.map float_of_int p.H.healed_at));
      ("healing_depth", num_opt (Option.map float_of_int p.H.healing_depth));
    ]

let timeline_json (t : H.detector_timeline) =
  Json.Obj
    [
      ("flag_time", num_opt t.H.flag_time);
      ("t_stability", num_opt t.H.t_stability);
      ("t_settle", num_opt t.H.t_settle);
      ("vmax", Json.Num t.H.vmax);
      ("v_final", Json.Num t.H.v_final);
      ("drop", Json.Num t.H.drop);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("defect", Json.Str t.defect);
      ("classes", Json.List (List.map (fun c -> Json.Str c) t.classes));
      ( "options",
        Json.Obj
          [
            ("freq", Json.Num t.freq);
            ("stages", Json.Num (float_of_int t.stages));
            ("dut", Json.Num (float_of_int t.dut));
            ("tstop", Json.Num t.tstop);
          ] );
      ("nominal_low", Json.Num t.nominal_low);
      ("nominal_high", Json.Num t.nominal_high);
      ("nominal", profile_json t.nominal);
      ("faulty", profile_json t.faulty);
      ("timeline", timeline_json t.timeline);
    ]

exception Bad_diagnosis of string

let float_member key j ~default =
  match Json.member key j with Some v -> Option.value ~default (Json.to_float v) | None -> default

let opt_member key j =
  match Json.member key j with
  | Some (Json.Num x) -> Some x
  | _ -> None

let stage_of_json j =
  let num key = float_member key j ~default:Float.nan in
  {
    H.label =
      (match Json.member "label" j with
      | Some (Json.Str s) -> s
      | _ -> raise (Bad_diagnosis "stage without label"));
    vlow = num "vlow";
    vhigh = num "vhigh";
    swing = num "swing";
    excursion = num "excursion";
    overshoot = num "overshoot";
    within = (match Json.member "within" j with Some (Json.Bool b) -> b | _ -> false);
  }

let profile_of_json ~nominal_low ~nominal_high j =
  {
    H.stages =
      (match Json.member "stages" j with
      | Some (Json.List ss) -> List.map stage_of_json ss
      | _ -> []);
    nominal_low;
    nominal_high;
    tolerance = float_member "tolerance" j ~default:0.1;
    first_degraded = Option.map int_of_float (opt_member "first_degraded" j);
    healed_at = Option.map int_of_float (opt_member "healed_at" j);
    healing_depth = Option.map int_of_float (opt_member "healing_depth" j);
  }

let timeline_of_json j =
  {
    H.flag_time = opt_member "flag_time" j;
    t_stability = opt_member "t_stability" j;
    t_settle = opt_member "t_settle" j;
    vmax = float_member "vmax" j ~default:Float.nan;
    v_final = float_member "v_final" j ~default:Float.nan;
    drop = float_member "drop" j ~default:Float.nan;
  }

let of_json j =
  (match Json.member "schema" j with
  | Some (Json.Str s) when s = schema -> ()
  | Some (Json.Str s) -> raise (Bad_diagnosis (Printf.sprintf "unsupported schema %S" s))
  | _ -> raise (Bad_diagnosis "missing \"schema\" member"));
  let nominal_low = float_member "nominal_low" j ~default:Float.nan in
  let nominal_high = float_member "nominal_high" j ~default:Float.nan in
  let options = match Json.member "options" j with Some o -> o | None -> Json.Obj [] in
  let prof key =
    match Json.member key j with
    | Some p -> profile_of_json ~nominal_low ~nominal_high p
    | None -> raise (Bad_diagnosis (Printf.sprintf "missing %S profile" key))
  in
  {
    defect =
      (match Json.member "defect" j with Some (Json.Str s) -> s | _ -> "?");
    classes =
      (match Json.member "classes" j with
      | Some (Json.List cs) -> List.filter_map Json.to_str cs
      | _ -> []);
    freq = float_member "freq" options ~default:0.0;
    stages = int_of_float (float_member "stages" options ~default:0.0);
    dut = int_of_float (float_member "dut" options ~default:0.0);
    tstop = float_member "tstop" options ~default:0.0;
    nominal_low;
    nominal_high;
    nominal = prof "nominal";
    faulty = prof "faulty";
    timeline =
      (match Json.member "timeline" j with
      | Some tl -> timeline_of_json tl
      | None -> raise (Bad_diagnosis "missing timeline"));
    waves = [];
    detector_wave = W.empty;
  }

let write_json ~path t = Json.write_file path (to_json t)

let read_json ~path = of_json (Json.parse_file path)

let write_vcd ?timescale_fs ~path t =
  if t.waves = [] then invalid_arg "Diagnose.write_vcd: record has no waveforms";
  Cml_wave.Vcd_analog.write ?timescale_fs ~path t.waves

(* ------------------------------------------------------------------ *)

let render_text t =
  let b = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "diagnosis: %s" t.defect;
  if t.classes <> [] then line "classes  : %s" (String.concat " " t.classes);
  line "chain    : %d stages, defect at stage %d, %.0f MHz, tstop %.1f ns" t.stages t.dut
    (t.freq /. 1e6) (t.tstop *. 1e9);
  line "";
  line "fault-free chain:";
  Buffer.add_string b (H.render_text t.nominal);
  line "";
  line "faulty chain:";
  Buffer.add_string b (H.render_text t.faulty);
  line "";
  line "detector response (variant 1 at stage %d):" t.dut;
  Buffer.add_string b (H.render_timeline t.timeline);
  Buffer.contents b
