(** Process-spread derating of the sensor-sharing group limit.

    The nominal limit — 45 sensors per read-out, from the paper's
    margin budget — assumes typical devices.  Under process variation
    each sensor's droop on the shared vtest rail spreads, and the
    read-out comparator picks up an input-referred offset, so the
    margin that nominally absorbs 45 sensors absorbs fewer in the
    spread corners.  This module derates the limit {e statically}: it
    Monte-Carlo samples offset and droop distributions derived from a
    {!Cml_defects.Variation.spec} (no transient simulation) and
    reports the group size that a [confidence] fraction of process
    samples can still share safely.

    At {!Cml_defects.Variation.default_spec} the derated limit lands
    near 15 — the working point the placement optimizer budgets
    against — while a tight spec recovers most of the nominal 45. *)

type model = {
  nominal_limit : int;  (** group size the margin budget assumes at typicals *)
  droop_mv : float;  (** nominal margin consumed per extra sensor, mV *)
  sigma_droop : float;  (** relative (lognormal) spread of per-sensor droop *)
  sigma_offset_mv : float;  (** comparator input-referred offset sigma, mV *)
  confidence : float;
      (** fraction of process samples that must still share safely *)
}

val nominal_group_limit : int
(** 45, the paper's nominal margin budget. *)

val of_spec :
  ?nominal_limit:int -> ?confidence:float -> Cml_defects.Variation.spec -> model
(** Map a process spread onto the offset/droop model.  Defaults:
    [nominal_limit = 45], [confidence = 0.999]. *)

val default : model
(** [of_spec Cml_defects.Variation.default_spec]. *)

type result = {
  model : model;
  samples : int;
  limits : int array;  (** per-sample safe group sizes, sorted ascending *)
  effective : int;  (** the derated limit: low [confidence]-quantile, >= 1 *)
  mean_limit : float;
}

val effective_limit : ?samples:int -> ?seed:int -> ?jobs:int -> model -> result
(** Deterministic at any job count (each sample reseeds from its own
    index).  Defaults: [samples = 2000], [seed = 42].  Publishes
    [derate.samples] and the [derate.effective_limit] gauge.
    @raise Invalid_argument on [samples < 1]. *)
