module N = Cml_spice.Netlist
module W = Cml_spice.Waveform

type load_kind = Diode_load | Resistor_load of float

type config = { load : load_kind; c_load : float; multi_emitter : bool }

let v1_default = { load = Diode_load; c_load = 10e-12; multi_emitter = false }

let v2_default = { load = Diode_load; c_load = 10e-12; multi_emitter = false }

let vtest_normal (proc : Cml_cells.Process.t) = proc.Cml_cells.Process.vgnd

let vtest_test (proc : Cml_cells.Process.t) = proc.Cml_cells.Process.vgnd +. 0.4

let ensure_vtest (b : Cml_cells.Builder.t) v =
  let nd = N.node b.Cml_cells.Builder.net "vtest" in
  if not (N.mem_device b.Cml_cells.Builder.net "vtest") then
    N.vsource b.Cml_cells.Builder.net ~name:"vtest" ~pos:nd ~neg:N.gnd (W.Dc v);
  nd

let set_vtest (b : Cml_cells.Builder.t) v =
  match N.get_device b.Cml_cells.Builder.net "vtest" with
  | N.Vsource src -> N.set_device b.Cml_cells.Builder.net "vtest" (N.Vsource { src with wave = W.Dc v })
  | N.Resistor _ | N.Capacitor _ | N.Diode _ | N.Bjt _ | N.Isource _ | N.Vcvs _ | N.Vccs _
    -> invalid_arg "set_vtest: vtest is not a voltage source"

(* Diode-(or resistor-)capacitor load: the paper's Q5/C7 in variant 1,
   Q6/C in variant 2.  [diode_name] names the diode-connected
   transistor. *)
let attach_load (b : Cml_cells.Builder.t) ~name ~diode_name ~supply ~vout (cfg : config) =
  (match cfg.load with
  | Diode_load ->
      N.bjt b.Cml_cells.Builder.net ~name:diode_name ~model:b.Cml_cells.Builder.proc.Cml_cells.Process.bjt
        ~c:supply ~b:supply ~e:vout ()
  | Resistor_load r -> N.resistor b.Cml_cells.Builder.net ~name:(name ^ ".rload") supply vout r);
  if cfg.c_load > 0.0 then N.capacitor b.Cml_cells.Builder.net ~name:(name ^ ".c7") vout N.gnd cfg.c_load

let attach_v1 (b : Cml_cells.Builder.t) ~name ~outputs cfg =
  let vout = N.node b.Cml_cells.Builder.net (name ^ ".vout") in
  (* sensing transistor across the differential pair: conducts when
     the complement output drops a junction drop below the true one *)
  N.bjt b.Cml_cells.Builder.net ~name:(name ^ ".q4") ~model:b.Cml_cells.Builder.proc.Cml_cells.Process.bjt
    ~c:vout ~b:outputs.Cml_cells.Builder.p ~e:outputs.Cml_cells.Builder.n ();
  attach_load b ~name ~diode_name:(name ^ ".q5") ~supply:b.Cml_cells.Builder.vgnd ~vout cfg;
  vout

let attach_sensors (b : Cml_cells.Builder.t) ~name ~outputs ~vtest ~vout ~multi_emitter =
  let model = b.Cml_cells.Builder.proc.Cml_cells.Process.bjt in
  if multi_emitter then
    N.bjt_multi b.Cml_cells.Builder.net ~name:(name ^ ".q45") ~model ~c:vout ~b:vtest
      ~emitters:[| outputs.Cml_cells.Builder.p; outputs.Cml_cells.Builder.n |] ()
  else begin
    N.bjt b.Cml_cells.Builder.net ~name:(name ^ ".q4") ~model ~c:vout ~b:vtest ~e:outputs.Cml_cells.Builder.p ();
    N.bjt b.Cml_cells.Builder.net ~name:(name ^ ".q5") ~model ~c:vout ~b:vtest ~e:outputs.Cml_cells.Builder.n ()
  end

let attach_v2 (b : Cml_cells.Builder.t) ~name ~outputs ~vtest cfg =
  let vout = N.node b.Cml_cells.Builder.net (name ^ ".vout") in
  attach_sensors b ~name ~outputs ~vtest ~vout ~multi_emitter:cfg.multi_emitter;
  (* the variant-2 load still hangs from the normal rail (Figure 9);
     only variant 3 pulls it up to vtest *)
  attach_load b ~name ~diode_name:(name ^ ".q6") ~supply:b.Cml_cells.Builder.vgnd ~vout cfg;
  vout
