module N = Cml_spice.Netlist

type counts = { bjts : int; resistors : int; capacitors : int }

let zero = { bjts = 0; resistors = 0; capacitors = 0 }

let add a b =
  {
    bjts = a.bjts + b.bjts;
    resistors = a.resistors + b.resistors;
    capacitors = a.capacitors + b.capacitors;
  }

let scale k a = { bjts = k * a.bjts; resistors = k * a.resistors; capacitors = k * a.capacitors }

let count_devices net ~from_index =
  let counts = ref zero in
  let i = ref 0 in
  N.iter_devices net (fun d ->
      if !i >= from_index then begin
        match d with
        | N.Bjt { emitters; _ } ->
            (* a dual-emitter transistor is one device but we count
               emitters separately below for honesty in the
               multi-emitter comparison: one physical transistor *)
            ignore emitters;
            counts := add !counts { zero with bjts = 1 }
        | N.Resistor _ -> counts := add !counts { zero with resistors = 1 }
        | N.Capacitor _ -> counts := add !counts { zero with capacitors = 1 }
        | N.Diode _ -> counts := add !counts { zero with bjts = 1 }
        | N.Vsource _ | N.Isource _ | N.Vcvs _ | N.Vccs _ -> ()
      end;
      incr i);
  !counts

(* Build the structure in a throwaway builder and count what it
   added. *)
let built structure =
  let b = Cml_cells.Builder.create () in
  let input = Cml_cells.Builder.diff_dc_input b ~name:"in" ~value:true in
  let before = N.device_count b.Cml_cells.Builder.net in
  structure b input;
  count_devices b.Cml_cells.Builder.net ~from_index:before

let buffer_gate () = built (fun b input -> ignore (Cml_cells.Buffer_cell.add b ~name:"g" ~input))

let xor_checker () =
  built (fun b input -> ignore (Cml_cells.Gates.xor2 b ~name:"g" ~a:input ~b:(Cml_cells.Builder.swap input)))

let detector_v1 cfg =
  built (fun b input ->
      let out = Cml_cells.Buffer_cell.add b ~name:"g" ~input in
      let before = N.device_count b.Cml_cells.Builder.net in
      ignore before;
      ignore (Detector.attach_v1 b ~name:"d" ~outputs:out cfg))
  |> fun c -> add c (scale (-1) (buffer_gate ()))

let detector_v2 cfg =
  built (fun b input ->
      let out = Cml_cells.Buffer_cell.add b ~name:"g" ~input in
      let vtest = Detector.ensure_vtest b (Detector.vtest_test b.Cml_cells.Builder.proc) in
      ignore (Detector.attach_v2 b ~name:"d" ~outputs:out ~vtest cfg))
  |> fun c -> add c (scale (-1) (buffer_gate ()))

let v3_sensors ~multi_emitter =
  built (fun b input ->
      let out = Cml_cells.Buffer_cell.add b ~name:"g" ~input in
      let vtest = Detector.ensure_vtest b (Detector.vtest_test b.Cml_cells.Builder.proc) in
      let vout = Cml_cells.Builder.node b "shared.vout" in
      Detector.attach_sensors b ~name:"d" ~outputs:out ~vtest ~vout ~multi_emitter)
  |> fun c -> add c (scale (-1) (buffer_gate ()))

let v3_readout () =
  built (fun b _input ->
      let vtest = Detector.ensure_vtest b (Detector.vtest_test b.Cml_cells.Builder.proc) in
      ignore (Readout.attach b ~name:"ro" ~vtest ()))

type scheme =
  | Menon_xor
  | Variant1 of Detector.config
  | Variant2 of Detector.config
  | Variant3 of { multi_emitter : bool; sharing : int }

let scheme_name = function
  | Menon_xor -> "Menon XOR checker"
  | Variant1 _ -> "variant 1"
  | Variant2 { Detector.multi_emitter = true; _ } -> "variant 2 (multi-emitter)"
  | Variant2 _ -> "variant 2"
  | Variant3 { multi_emitter = true; sharing } ->
      Printf.sprintf "variant 3 (multi-emitter, %d-way sharing)" sharing
  | Variant3 { sharing; _ } -> Printf.sprintf "variant 3 (%d-way sharing)" sharing

let per_gate_counts scheme =
  let exact c = (float_of_int c.bjts, float_of_int c.resistors, float_of_int c.capacitors) in
  match scheme with
  | Menon_xor -> exact (xor_checker ())
  | Variant1 cfg -> exact (detector_v1 cfg)
  | Variant2 cfg -> exact (detector_v2 cfg)
  | Variant3 { multi_emitter; sharing } ->
      let sens = v3_sensors ~multi_emitter in
      let ro = v3_readout () in
      let n = float_of_int (max sharing 1) in
      ( float_of_int sens.bjts +. (float_of_int ro.bjts /. n),
        float_of_int sens.resistors +. (float_of_int ro.resistors /. n),
        float_of_int sens.capacitors +. (float_of_int ro.capacitors /. n) )

let area_units ?(bjt_weight = 1.0) ?(resistor_weight = 0.5) ?(cap_weight_per_pf = 2.0)
    (b, r, c) ~cap_pf =
  (bjt_weight *. b) +. (resistor_weight *. r)
  +. if c > 0.0 then cap_weight_per_pf *. cap_pf else 0.0

let overhead_fraction scheme =
  let b, _, _ = per_gate_counts scheme in
  let gate = buffer_gate () in
  b /. float_of_int gate.bjts
