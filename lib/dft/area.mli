(** Area accounting for the DFT schemes (section 6.5 / Figure 15 and
    the prior-art comparison of section 1).  Device counts are
    obtained by actually building each structure with the cell
    library and counting, so they track the real netlists. *)

type counts = { bjts : int; resistors : int; capacitors : int }

val zero : counts
val add : counts -> counts -> counts
val scale : int -> counts -> counts

val buffer_gate : unit -> counts
(** Devices in one CML data buffer (its wiring capacitances
    included). *)

val xor_checker : unit -> counts
(** Menon's per-gate XOR test gate (reference [4]): a full CML XOR2
    including its level shifters. *)

val detector_v1 : Detector.config -> counts

val detector_v2 : Detector.config -> counts
(** Private-load variant 2; honours [multi_emitter]. *)

val v3_sensors : multi_emitter:bool -> counts
(** Per monitored gate under load sharing. *)

val v3_readout : unit -> counts
(** The shared load + comparator + level shifter (amortised over the
    sharing group). *)

type scheme =
  | Menon_xor
  | Variant1 of Detector.config
  | Variant2 of Detector.config
  | Variant3 of { multi_emitter : bool; sharing : int }

val scheme_name : scheme -> string

val per_gate_counts : scheme -> float * float * float
(** Amortised (bjts, resistors, capacitors) added per monitored
    gate. *)

val area_units : ?bjt_weight:float -> ?resistor_weight:float -> ?cap_weight_per_pf:float ->
  float * float * float -> cap_pf:float -> float
(** Crude area proxy: transistor-equivalents with configurable
    weights (defaults: BJT 1.0, resistor 0.5, capacitor 2.0 per pF).
    [cap_pf] is the total capacitance behind the capacitor count. *)

val overhead_fraction : scheme -> float
(** Amortised per-gate DFT transistor count over the buffer gate's
    transistor count — the headline overhead number. *)
