module E = Cml_spice.Engine

type built = {
  builder : Cml_cells.Builder.t;
  chain : Cml_cells.Chain.t;
  readout : Readout.t;
}

let build ?(proc = Cml_cells.Process.default) ?(multi_emitter = false) ?readout_config
    ?vtest ~n () =
  let chain = Cml_cells.Chain.build_dc ~proc ~stages:n ~value:true () in
  let builder = chain.Cml_cells.Chain.builder in
  let vtest_value = match vtest with Some v -> v | None -> Detector.vtest_test proc in
  let vtest_node = Detector.ensure_vtest builder vtest_value in
  let readout =
    Readout.attach builder ~name:"ro" ~vtest:vtest_node ?config:readout_config ()
  in
  Array.iteri
    (fun i outputs ->
      Detector.attach_sensors builder
        ~name:(Printf.sprintf "det%d" (i + 1))
        ~outputs ~vtest:vtest_node ~vout:readout.Readout.vout ~multi_emitter)
    chain.Cml_cells.Chain.stages;
  { builder; chain; readout }

let build_faulty ?proc ?multi_emitter ?readout_config ?vtest ~n ~defect () =
  let b = build ?proc ?multi_emitter ?readout_config ?vtest ~n () in
  let faulty = Cml_defects.Inject.apply b.builder.Cml_cells.Builder.net defect in
  (b, faulty)

type point = { n : int; vout : float; vfb : float; flag : float }

let measure_dc built ?net () =
  let net = match net with Some net -> net | None -> built.builder.Cml_cells.Builder.net in
  let sim = E.compile net in
  let x = E.dc_operating_point sim in
  {
    n = Array.length built.chain.Cml_cells.Chain.stages;
    vout = E.voltage x built.readout.Readout.vout;
    vfb = E.voltage x built.readout.Readout.vfb;
    flag = E.voltage x built.readout.Readout.flag;
  }

let sweep_n ?proc ?multi_emitter ?readout_config ?vtest ~ns () =
  let one n =
    let b = build ?proc ?multi_emitter ?readout_config ?vtest ~n () in
    measure_dc b ()
  in
  List.map one ns

let max_safe_sharing points ~upper_threshold =
  List.fold_left
    (fun best p -> if p.vout > upper_threshold && p.n > best then p.n else best)
    0 points
