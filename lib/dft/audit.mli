(** Bridge from a concrete {!Insertion.plan} to the static
    DFT-coverage audit of {!Cml_analysis.Dft_audit}: inspects the
    instrumented netlist to determine which output polarities each
    planned sensor really monitors, then runs the coverage rules. *)

val view :
  ?max_safe_share:int ->
  Insertion.plan ->
  Cml_cells.Builder.t ->
  Cml_analysis.Dft_audit.view
(** Abstract coverage view of the plan against the builder's netlist
    and registered cells.  [max_safe_share] defaults to 45 (the
    paper's section-6.4 limit). *)

val check :
  ?max_safe_share:int ->
  Insertion.plan ->
  Cml_cells.Builder.t ->
  Cml_analysis.Diagnostic.t list
(** [Dft_audit.check] of {!view}, sorted. *)
