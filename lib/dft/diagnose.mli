(** Waveform-level diagnosis of a flagged defect — the drill-down a
    test engineer runs after a campaign flags a variant.  The defect
    is re-simulated on the monitored chain (a variant-1 detector at
    the DUT) with streaming probes on every stage output
    ({!Cml_spice.Transient.observers}), the per-stage signal health
    and healing depth are profiled against the fault-free chain
    ({!Cml_wave.Health}), and the detector-response timeline of
    Figs. 7/8/10 is extracted.  Results serialise to a structured JSON
    record (["cml-dft-diagnosis/1"]) rendered by [cmldft report], and
    the probed waveforms dump to an analog VCD. *)

val schema : string
(** ["cml-dft-diagnosis/1"]. *)

type t = {
  defect : string;  (** {!Cml_defects.Defect.describe} of the diagnosed defect *)
  classes : string list;  (** campaign classification labels, if known *)
  freq : float;
  stages : int;
  dut : int;
  tstop : float;
  nominal_low : float;  (** fault-free chain-output plateau levels *)
  nominal_high : float;
  nominal : Cml_wave.Health.profile;  (** fault-free per-stage health *)
  faulty : Cml_wave.Health.profile;  (** faulty per-stage health (healing depth) *)
  timeline : Cml_wave.Health.detector_timeline;
  waves : (string * Cml_wave.Wave.t) list;
      (** every probed waveform of the faulty run, on a shared time
          axis: ["in.p"], ["in.n"], ["det.vout"], ["x<i>.p"/"x<i>.n"]
          per stage.  Empty on a record read back from JSON. *)
  detector_wave : Cml_wave.Wave.t;  (** the ["det.vout"] wave (empty after {!of_json}) *)
}

val run :
  ?proc:Cml_cells.Process.t ->
  ?freq:float ->
  ?stages:int ->
  ?dut:int ->
  ?tstop:float ->
  ?classes:string list ->
  defect:Cml_defects.Defect.t ->
  unit ->
  t
(** Diagnose [defect] on a chain of [stages] (default 8) at [freq]
    (default 100 MHz) with the DUT at stage [dut] (default
    {!Cml_cells.Chain.dut_stage}) — the campaign's default geometry,
    so a flagged campaign entry re-simulates identically.  Two probed
    transients run: fault-free (nominal levels + profile, warm-start
    guide) and faulty.
    @raise Cml_spice.Engine.No_convergence on solver failure. *)

val run_design :
  ?tstop:float ->
  ?classes:string list ->
  design:Cml_cells.Compile.t ->
  dut:string ->
  defect:Cml_defects.Defect.t ->
  unit ->
  t
(** Diagnose [defect] on a compiled [.bench] design: a variant-1
    detector attaches to cell [dut]'s output pair, and the health
    profile rows are the attacked cell followed by every primary
    output (no chain, so "stage 1" is the DUT itself and healing is
    read DUT-to-outputs).  Frequency and process come from the
    design; [tstop] defaults to two stimulus periods.  The detector
    devices are added to the design's netlist in place — compile a
    fresh design per diagnosis.
    @raise Invalid_argument when [dut] names no compiled cell.
    @raise Cml_spice.Engine.No_convergence on solver failure. *)

val of_entry :
  ?proc:Cml_cells.Process.t ->
  ?freq:float ->
  ?stages:int ->
  ?dut:int ->
  ?tstop:float ->
  Cml_defects.Campaign.entry ->
  t
(** {!run} on a campaign entry's defect, carrying its classification
    labels ({!Cml_defects.Campaign.flag_labels}) into [classes]. *)

exception Bad_diagnosis of string

val to_json : t -> Cml_telemetry.Json.t
(** Waveforms are deliberately not serialised (the full traces go to
    the VCD); the record is the measured summary. *)

val of_json : Cml_telemetry.Json.t -> t
(** @raise Bad_diagnosis on a missing or unsupported schema.  The
    returned record has empty [waves] / [detector_wave]. *)

val write_json : path:string -> t -> unit

val read_json : path:string -> t
(** @raise Bad_diagnosis / [Json.Parse_error] / [Sys_error]. *)

val write_vcd : ?timescale_fs:int -> path:string -> t -> unit
(** Dump every probed waveform to an analog VCD.
    @raise Invalid_argument on a record without waveforms (one read
    back from JSON). *)

val render_text : t -> string
(** The [cmldft report] body: fault-free and faulty per-stage health
    tables, healing-depth verdict, detector timeline. *)
