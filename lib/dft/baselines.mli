(** Prior-art detection models the paper compares against.

    These are deliberately behavioural: each baseline looks at the
    measured fault behaviour from a {!Cml_defects.Campaign} run and
    decides whether that technique would have caught the defect. *)

val stuck_at_detects : Cml_defects.Campaign.flags -> bool
(** Classic stuck-at testing at the primary outputs: catches a defect
    only when the chain output stops toggling. *)

val menon_xor_detects : Cml_defects.Campaign.flags -> bool
(** Menon's per-gate XOR checker (reference [4]) verifies that the
    two outputs stay complementary; it catches stuck rails and
    collapsed swings but not excursions that preserve
    complementarity. *)

val delay_test_detects : Cml_defects.Campaign.flags -> bool
(** At-speed path-delay testing of the whole chain; healing makes
    most excursion faults invisible to it (Tables 1-2). *)

val iddq_test_detects : Cml_defects.Campaign.flags -> bool
(** Quiescent/average supply-current screening; CML's constant current
    steering makes it blind to most defects (the tail current barely
    changes), which is why the paper lists Iddq as its own fault
    class. *)

val amplitude_detector_detects : Cml_defects.Campaign.flags -> bool
(** The paper's built-in detectors: excessive excursions, plus
    stuck-at rails (a stuck output also parks one detector junction
    at a large bias in test mode). *)

val delay_test_escape :
  gate_delay:float -> stages:int -> tolerance:float -> extra_delay:float -> bool
(** The introduction's escape argument: a tester that checks the
    total delay of a [stages]-gate chain against a band of
    [tolerance] (e.g. 0.1 for the 10% per-gate variation) cannot see
    an [extra_delay] smaller than [tolerance * stages * gate_delay] —
    returns [true] when the fault escapes. *)
