(** Monte-Carlo verification of the DFT scheme under process spread:
    the paper guarantees that a fault-free gate "will never be wrongly
    declared defective"; this harness checks both that (no false
    alarms on fault-free blocks) and the detection of a defective
    block across perturbed process samples. *)

type result = {
  samples : int;
  false_alarms : int;  (** fault-free blocks whose comparator latched faulty *)
  missed : int;  (** faulty blocks not flagged *)
  good_vout_min : float;  (** worst-case fault-free vout across samples *)
  good_vout_max : float;
  bad_vout_max : float;  (** best-case (i.e. least collapsed) faulty vout *)
  separation : float;  (** good_vout_min - bad_vout_max: the decision margin *)
  good_vouts : float array;  (** every fault-free sample, for statistics *)
  bad_vouts : float array;
  sample_reports : Cml_telemetry.Manifest.variant list;
      (** per-sample telemetry (classification, vouts, wall time) in
          sample order, for the run manifest *)
  metrics : Cml_telemetry.Metrics.snapshot;
      (** metrics-registry movement over this run *)
  utilization : Cml_telemetry.Events.domain_util list;
      (** per-domain busy/idle attribution over the sampling phase *)
  wall_s : float;  (** wall clock of the sampling phase *)
}

val run :
  ?proc:Cml_cells.Process.t ->
  ?spec:Cml_defects.Variation.spec ->
  ?n:int ->
  ?defect:Cml_defects.Defect.t ->
  ?multi_emitter:bool ->
  ?jobs:int ->
  ?warm_start:bool ->
  ?manifest:string ->
  samples:int ->
  seed:int ->
  unit ->
  result
(** Simulate [samples] perturbed copies of an [n]-gate (default 10)
    shared-read-out block, fault-free and with [defect] (default a
    4 kohm pipe on the middle gate's Q3), at the DC operating point in
    test mode.  A sample is flagged when its comparator feedback node
    latches to the fault state.  Samples run in parallel over [jobs]
    domains (deterministic: each sample's perturbation derives from
    [seed + k]).

    Unless [warm_start] is [false], the unperturbed fault-free and
    faulty netlists are solved once and every sample's Newton starts
    from the matching nominal operating point, falling back to the
    cold homotopies when a sample diverges.

    [manifest] writes a {!Cml_telemetry.Manifest} JSON document to the
    given path after the run. *)

val to_manifest :
  ?seed:int -> ?options:(string * string) list -> result -> Cml_telemetry.Manifest.t
