(** The post-mortem pipeline behind [cmldft explain].

    Given a finished campaign — a {!Cml_telemetry.Manifest} or a
    [cml-dft-events/1] JSONL stream — pick one variant, rebuild its
    faulty netlist from the recorded options (the built-in buffer
    chain plus one {!Cml_defects.Sites} defect), re-simulate it with a
    solver-introspection recorder attached ({!Cml_spice.Introspect})
    and distil the recording into a {!Cml_telemetry.Postmortem}
    document: convergence narrative, worst-nets / worst-devices
    hotspot tables, per-rejection LTE blame, Newton retry blame, the
    dt timeline and the sparse-LU health summary.

    The re-simulation is scalar and single-threaded, so the document
    is a pure function of the source — byte-identical JSON at any
    [--jobs]. *)

type selection =
  | Auto
      (** the first variant classified ["failed"], else the slowest *)
  | Nth of int  (** variant by 0-based run index ([--variant]) *)
  | Named of string
      (** first variant whose name contains the (case-insensitive)
          substring ([--defect]) *)

exception Unexplainable of string
(** The source cannot be explained: wrong run kind, options too thin
    to rebuild the circuit, selection out of range, or no defect site
    matching the variant name. *)

val load_source : string -> Cml_telemetry.Manifest.t
(** Read a run manifest, or condense an events JSONL stream into a
    pseudo-manifest (kind and options from [run_start], variants from
    the [variant_done] events).
    @raise Unexplainable when the file is neither. *)

val explain :
  ?top:int ->
  ?selection:selection ->
  source:string ->
  Cml_telemetry.Manifest.t ->
  Cml_telemetry.Postmortem.t
(** Re-simulate the selected variant with introspection and build its
    post-mortem.  [top] (default 8) bounds every blame/hotspot table;
    [source] is recorded verbatim in the document.
    @raise Unexplainable as above. *)

val explain_path :
  ?top:int -> ?selection:selection -> string -> Cml_telemetry.Postmortem.t
(** {!load_source} composed with {!explain}. *)
