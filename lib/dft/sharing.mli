(** Load sharing (section 6.4, Figure 13): N monitored gates whose
    detector sensors all drive one shared load circuit + comparator.
    Reproduces Figure 14 (fault-free vout/vfb versus N, the linear
    droop from accumulated sensor leakage, and the maximum safe N)
    and the faulty-case detection check. *)

type built = {
  builder : Cml_cells.Builder.t;
  chain : Cml_cells.Chain.t;
  readout : Readout.t;
}

val build :
  ?proc:Cml_cells.Process.t ->
  ?multi_emitter:bool ->
  ?readout_config:Readout.config ->
  ?vtest:float ->
  n:int ->
  unit ->
  built
(** A chain of [n] buffers with a static input, every stage monitored
    by variant-2 sensors that share one read-out.  [vtest] defaults
    to the test-mode value. *)

val build_faulty :
  ?proc:Cml_cells.Process.t ->
  ?multi_emitter:bool ->
  ?readout_config:Readout.config ->
  ?vtest:float ->
  n:int ->
  defect:Cml_defects.Defect.t ->
  unit ->
  built * Cml_spice.Netlist.t
(** Same circuit with a defect injected (the returned netlist is the
    faulty copy; the builder still describes the golden one). *)

type point = { n : int; vout : float; vfb : float; flag : float }

val measure_dc : built -> ?net:Cml_spice.Netlist.t -> unit -> point
(** DC operating point of the shared read-out. *)

val sweep_n :
  ?proc:Cml_cells.Process.t ->
  ?multi_emitter:bool ->
  ?readout_config:Readout.config ->
  ?vtest:float ->
  ns:int list ->
  unit ->
  point list
(** Fault-free Figure 14 sweep. *)

val max_safe_sharing : point list -> upper_threshold:float -> int
(** Largest N whose fault-free [vout] stays above the upper
    hysteresis threshold (the paper's criterion giving N = 45). *)
