(** Automatic DFT insertion: instrument every cell of a circuit with
    variant-2 sensors, grouped onto shared variant-3 read-outs of at
    most the safe sharing size (paper section 6.4), and screen the
    result in test mode.  This is the paper's scheme packaged the way
    a user would deploy it. *)

type group = {
  index : int;
  readout : Readout.t;
  members : (string * Cml_cells.Builder.diff) list;  (** instance name, output pair *)
}

type plan = {
  groups : group list;
  vtest_node : Cml_spice.Netlist.node;
  decision : float;  (** vfb above this value means the group latched faulty *)
}

val instrument :
  ?max_share:int ->
  ?multi_emitter:bool ->
  ?config:Readout.config ->
  ?vtest:float ->
  Cml_cells.Builder.t ->
  plan
(** Attach sensors to every cell registered in the builder (see
    {!Cml_cells.Builder.cells}), creating one read-out (instances
    [ro0], [ro1], ...) per group of at most [max_share] (default 45)
    cells.  [vtest] defaults to the test-mode level.  Instrument once,
    after the functional circuit is complete. *)

val instrument_groups :
  ?multi_emitter:bool ->
  ?config:Readout.config ->
  ?vtest:float ->
  groups:string list list ->
  Cml_cells.Builder.t ->
  plan
(** Like {!instrument} but with an explicit grouping by cell instance
    name — how a {!Placement} plan's groups are realized in the
    netlist.  @raise Invalid_argument on a name not registered in the
    builder. *)

val device_overhead : plan -> Cml_spice.Netlist.t -> float
(** Added devices as a fraction of the functional circuit's devices
    (supply/bias/stimulus sources excluded from neither side — a
    simple gross ratio). *)

type screen_result = {
  group : group;
  vfb : float;
  failed : bool;
}

val screen : plan -> Cml_spice.Netlist.t -> screen_result list
(** DC test-mode screen of a (possibly faulty) copy of the
    instrumented netlist: solve the operating point and read each
    group's comparator.
    @raise Engine.No_convergence if the solve fails. *)

val localize : plan -> Cml_spice.Netlist.t -> string list
(** Instance names of all members of failing groups — the suspect
    list a diagnosis flow would start from. *)
