module N = Cml_spice.Netlist

type t = {
  vout : N.node;
  vfb : N.node;
  flag : N.node;
  vtest : N.node;
}

type config = { r0 : float; c0 : float; fb_high_drop : float; fb_width : float }

let default_config = { r0 = 40e3; c0 = 10e-12; fb_high_drop = 0.169; fb_width = 0.25 }

let thresholds cfg ~vtest =
  let upper = vtest -. cfg.fb_high_drop in
  (upper -. cfg.fb_width, upper)

(* Feedback-side load: a divider from vtest to ground whose Thevenin
   voltage is the upper threshold and whose Thevenin resistance times
   the comparator tail current is the hysteresis width. *)
let feedback_divider (b : Cml_cells.Builder.t) cfg ~vtest_value =
  let i_tail = b.Cml_cells.Builder.proc.Cml_cells.Process.i_tail in
  let v_high = vtest_value -. cfg.fb_high_drop in
  let r_th = cfg.fb_width /. i_tail in
  let r1 = r_th *. vtest_value /. v_high in
  let r2 = r1 *. v_high /. (vtest_value -. v_high) in
  (r1, r2)

let attach (b : Cml_cells.Builder.t) ~name ~vtest ?(config = default_config) () =
  let net = b.Cml_cells.Builder.net in
  let proc = b.Cml_cells.Builder.proc in
  let model = proc.Cml_cells.Process.bjt in
  let vout = N.node net (name ^ ".vout") in
  let vfb = N.node net (name ^ ".vfb") in
  let von = N.node net (name ^ ".von") in
  let ce = N.node net (name ^ ".ce") in
  (* shared load circuit: diode Q0 with R0 in parallel, C0 to ground *)
  N.bjt net ~name:(name ^ ".q0") ~model ~c:vtest ~b:vtest ~e:vout ();
  N.resistor net ~name:(name ^ ".r0") vtest vout config.r0;
  N.capacitor net ~name:(name ^ ".c0") vout N.gnd config.c0;
  (* comparator: vout against its own complementary output vfb *)
  let vtest_value =
    (* design-time value of the vtest rail, read from its source *)
    match N.get_device net "vtest" with
    | N.Vsource { wave = Cml_spice.Waveform.Dc v; _ } -> v
    | N.Vsource _ -> proc.Cml_cells.Process.vgnd +. 0.4
    | N.Resistor _ | N.Capacitor _ | N.Diode _ | N.Bjt _ | N.Isource _ | N.Vcvs _
    | N.Vccs _ -> proc.Cml_cells.Process.vgnd +. 0.4
  in
  let r1, r2 = feedback_divider b config ~vtest_value in
  (* Qa senses vout and drives the feedback node low when the circuit
     is fault-free; Qb takes over when vout sinks below vfb *)
  N.bjt net ~name:(name ^ ".qa") ~model ~c:vfb ~b:vout ~e:ce ();
  N.bjt net ~name:(name ^ ".qb") ~model ~c:von ~b:vfb ~e:ce ();
  N.resistor net ~name:(name ^ ".r1") vtest vfb r1;
  N.resistor net ~name:(name ^ ".r2") vfb N.gnd r2;
  N.resistor net ~name:(name ^ ".rc") vtest von proc.Cml_cells.Process.r_load;
  Cml_cells.Builder.tail_source b ~name:(name ^ ".q3") ce;
  (* level shifter back toward CML levels *)
  let flag = Cml_cells.Builder.emitter_follower b ~name:(name ^ ".ls") ~input:von in
  { vout; vfb; flag; vtest }
