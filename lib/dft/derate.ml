module V = Cml_defects.Variation
module Tel = Cml_telemetry

type model = {
  nominal_limit : int;
  droop_mv : float;
  sigma_droop : float;
  sigma_offset_mv : float;
  confidence : float;
}

(* Comparator offset scale: the read-out decides on a ~180 mV margin
   (nominal_limit x droop), and the dominant offset terms — beta and
   saturation-current mismatch between the feedback pair, load
   mismatch — each map a relative spread onto the decision node at
   roughly a VT-scale gain.  0.32 V per unit relative sigma is the
   single calibration constant; at the default spec it lands the
   derated limit on the paper's "three groups of fifteen" working
   point, and a tight quarter-micron spec recovers most of the
   nominal 45. *)
let k_offset_v = 0.33

let nominal_group_limit = 45

let of_spec ?(nominal_limit = nominal_group_limit) ?(confidence = 0.999) (spec : V.spec) =
  let q x = x *. x in
  {
    nominal_limit;
    droop_mv = 4.0;
    sigma_droop = sqrt (q spec.V.resistor_sigma +. q spec.V.beta_sigma);
    sigma_offset_mv =
      1000.0 *. k_offset_v
      *. sqrt (q spec.V.beta_sigma +. q spec.V.is_sigma +. q spec.V.resistor_sigma);
    confidence;
  }

let default = of_spec V.default_spec

type result = {
  model : model;
  samples : int;
  limits : int array;
  effective : int;
  mean_limit : float;
}

let m_samples = Tel.Metrics.counter "derate.samples"
let m_effective = Tel.Metrics.gauge "derate.effective_limit"

let gauss st =
  let rec u () =
    let x = Random.State.float st 1.0 in
    if x <= 1e-12 then u () else x
  in
  let u1 = u () in
  let u2 = Random.State.float st 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

(* One process sample: draw a comparator offset, then stack sensors
   onto the rail until their accumulated droop eats what the offset
   left of the nominal margin.  The count where it stops is the
   largest group this sample could share safely. *)
let sample_limit model st =
  let margin_mv = float_of_int model.nominal_limit *. model.droop_mv in
  let budget = margin_mv -. (model.sigma_offset_mv *. Float.abs (gauss st)) in
  let cap = (4 * model.nominal_limit) + 1 in
  let rec stack n consumed =
    if n >= cap then n
    else begin
      let droop = model.droop_mv *. exp (model.sigma_droop *. gauss st) in
      if consumed +. droop > budget then n else stack (n + 1) (consumed +. droop)
    end
  in
  stack 0 0.0

let effective_limit ?(samples = 2000) ?(seed = 42) ?jobs model =
  if samples < 1 then invalid_arg "Derate.effective_limit: samples < 1";
  (* each sample reseeds from its own index, so the limits array is
     identical at any job count *)
  let limits =
    Cml_runtime.Pool.parallel_map_batches ?jobs
      (Array.map (fun k ->
           let st = Random.State.make [| seed; k; 0xD047 |] in
           sample_limit model st))
      (Array.init samples Fun.id)
  in
  Tel.Metrics.add m_samples samples;
  Array.sort compare limits;
  let idx =
    let i = int_of_float (Float.round ((1.0 -. model.confidence) *. float_of_int samples)) in
    max 0 (min (samples - 1) i)
  in
  let effective = max 1 limits.(idx) in
  let mean_limit =
    Array.fold_left (fun acc n -> acc +. float_of_int n) 0.0 limits /. float_of_int samples
  in
  Tel.Metrics.set m_effective (float_of_int effective);
  { model; samples; limits; effective; mean_limit }
