module E = Cml_spice.Engine

type result = {
  samples : int;
  false_alarms : int;
  missed : int;
  good_vout_min : float;
  good_vout_max : float;
  bad_vout_max : float;
  separation : float;
  good_vouts : float array;
  bad_vouts : float array;
}

let run ?(proc = Cml_cells.Process.default) ?(spec = Cml_defects.Variation.default_spec)
    ?(n = 10) ?defect ?(multi_emitter = true) ?jobs ?(warm_start = true) ~samples ~seed () =
  let defect =
    match defect with
    | Some d -> d
    | None ->
        Cml_defects.Defect.Pipe
          { device = Printf.sprintf "x%d.q3" (((n - 1) / 2) + 1); r = 4e3 }
  in
  let built = Sharing.build ~proc ~multi_emitter ~n () in
  let golden = built.Sharing.builder.Cml_cells.Builder.net in
  let faulty = Cml_defects.Inject.apply golden defect in
  let vtest_value = Detector.vtest_test proc in
  let lo, hi = Readout.thresholds Readout.default_config ~vtest:vtest_value in
  let decision = (lo +. hi) /. 2.0 in
  (* the unperturbed operating points: process variation moves values,
     not topology, so every perturbed sample's Newton solve can start
     from its netlist's nominal solution ([dc_from] falls back to the
     homotopy ladder when a sample strays too far) *)
  let nominal net =
    if warm_start then Some (E.dc_operating_point (E.compile net)) else None
  in
  let x_good = nominal golden and x_bad = nominal faulty in
  let measure net x_nom k =
    let perturbed = Cml_defects.Variation.perturb ~spec ~seed:(seed + k) net in
    let sim = E.compile perturbed in
    let x =
      match x_nom with
      | Some x0 when Array.length x0 = E.unknown_count sim -> E.dc_from sim x0
      | Some _ | None -> E.dc_operating_point sim
    in
    let vfb = E.voltage x built.Sharing.readout.Readout.vfb in
    let vout = E.voltage x built.Sharing.readout.Readout.vout in
    (vfb > decision, vout)
  in
  (* each sample derives its own perturbed netlist from (seed + k)
     and compiles a fresh sim, so samples are independent tasks *)
  let outcomes =
    Cml_runtime.Pool.parallel_map ?jobs
      (fun k -> (measure golden x_good k, measure faulty x_bad k))
      (Array.init samples Fun.id)
  in
  let false_alarms = ref 0 and missed = ref 0 in
  let good_vouts = Array.make samples 0.0 and bad_vouts = Array.make samples 0.0 in
  Array.iteri
    (fun k ((flagged_good, vout_good), (flagged_bad, vout_bad)) ->
      if flagged_good then incr false_alarms;
      good_vouts.(k) <- vout_good;
      if not flagged_bad then incr missed;
      bad_vouts.(k) <- vout_bad)
    outcomes;
  let gmin = Cml_numerics.Stats.minimum good_vouts in
  {
    samples;
    false_alarms = !false_alarms;
    missed = !missed;
    good_vout_min = gmin;
    good_vout_max = Cml_numerics.Stats.maximum good_vouts;
    bad_vout_max = Cml_numerics.Stats.maximum bad_vouts;
    separation = gmin -. Cml_numerics.Stats.maximum bad_vouts;
    good_vouts;
    bad_vouts;
  }
