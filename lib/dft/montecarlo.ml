module E = Cml_spice.Engine
module Tel = Cml_telemetry

type result = {
  samples : int;
  false_alarms : int;
  missed : int;
  good_vout_min : float;
  good_vout_max : float;
  bad_vout_max : float;
  separation : float;
  good_vouts : float array;
  bad_vouts : float array;
  sample_reports : Tel.Manifest.variant list;
  metrics : Tel.Metrics.snapshot;
  utilization : Tel.Events.domain_util list;
  wall_s : float;
}

let m_samples = Tel.Metrics.counter "montecarlo.samples"
let m_sample_seconds = Tel.Metrics.histogram "montecarlo.sample_seconds"

let to_manifest ?seed ?(options = []) r =
  let spans = Tel.Trace.aggregate (Tel.Trace.peek ()) in
  Tel.Manifest.create ?seed ~options ~variants:r.sample_reports ~metrics:r.metrics ~spans
    ~kind:"montecarlo" ()

let run ?(proc = Cml_cells.Process.default) ?(spec = Cml_defects.Variation.default_spec)
    ?(n = 10) ?defect ?(multi_emitter = true) ?jobs ?(warm_start = true) ?manifest ~samples
    ~seed () =
  let defect =
    match defect with
    | Some d -> d
    | None ->
        Cml_defects.Defect.Pipe
          { device = Printf.sprintf "x%d.q3" (((n - 1) / 2) + 1); r = 4e3 }
  in
  let snap0 = Tel.Metrics.snapshot () in
  let span = Tel.Trace.start () in
  let built = Sharing.build ~proc ~multi_emitter ~n () in
  let golden = built.Sharing.builder.Cml_cells.Builder.net in
  let faulty = Cml_defects.Inject.apply golden defect in
  let vtest_value = Detector.vtest_test proc in
  let lo, hi = Readout.thresholds Readout.default_config ~vtest:vtest_value in
  let decision = (lo +. hi) /. 2.0 in
  (* the unperturbed operating points: process variation moves values,
     not topology, so every perturbed sample's Newton solve can start
     from its netlist's nominal solution ([dc_from] falls back to the
     homotopy ladder when a sample strays too far) *)
  let nominal net =
    if warm_start then Some (E.dc_operating_point (E.compile net)) else None
  in
  let x_good = nominal golden and x_bad = nominal faulty in
  let measure net x_nom k =
    let perturbed = Cml_defects.Variation.perturb ~spec ~seed:(seed + k) net in
    let sim = E.compile perturbed in
    let x =
      match x_nom with
      | Some x0 when Array.length x0 = E.unknown_count sim -> E.dc_from sim x0
      | Some _ | None -> E.dc_operating_point sim
    in
    E.publish_metrics sim;
    let vfb = E.voltage x built.Sharing.readout.Readout.vfb in
    let vout = E.voltage x built.Sharing.readout.Readout.vout in
    (vfb > decision, vout)
  in
  (* each sample derives its own perturbed netlist from (seed + k)
     and compiles a fresh sim, so samples are independent tasks; they
     are scheduled as contiguous slices (one pool task per slice, see
     {!Cml_runtime.Pool.parallel_map_batches}) so the per-task
     wake-up/handoff cost is paid per slice, not per sample *)
  let run_options =
    [
      ("n", string_of_int n);
      ("samples", string_of_int samples);
      ("defect", Cml_defects.Defect.describe defect);
      ("warm_start", string_of_bool warm_start);
    ]
  in
  let ev_run =
    Tel.Events.run_start ~kind:"montecarlo" ~total:samples ?jobs ~options:run_options ()
  in
  let util0 = Cml_runtime.Pool.utilization () in
  Cml_runtime.Pool.reset_stall_watermarks ();
  let wall_t0 = Tel.Clock.now_ns () in
  let outcomes =
    Cml_runtime.Pool.parallel_map_batches ?jobs
      (Array.map (fun k ->
           let name = Printf.sprintf "sample %d" k in
           Tel.Progress.variant_start name;
           let tok = Tel.Trace.start () in
           let t0 = Tel.Clock.now_ns () in
           let good = measure golden x_good k and bad = measure faulty x_bad k in
           let seconds = Tel.Clock.ns_to_s (Int64.sub (Tel.Clock.now_ns ()) t0) in
           Tel.Metrics.incr m_samples;
           Tel.Metrics.observe m_sample_seconds seconds;
           Tel.Trace.finish ~cat:"montecarlo"
             ~args:(if tok >= 0L then [ ("sample", Tel.Trace.I k) ] else [])
             "sample" tok;
           Tel.Progress.variant_finish ~failed:false;
           let flagged_good, _ = good and flagged_bad, _ = bad in
           Tel.Events.variant_done ev_run
             {
               Tel.Events.ev_idx = k;
               ev_name = name;
               ev_classes =
                 ((if flagged_good then [ "false-alarm" ] else [])
                 @ if flagged_bad then [ "detected" ] else [ "missed" ]);
               ev_healing = None;
               ev_failed = false;
               ev_steps = 0;  (* DC-only: no transient steps *)
               ev_seconds = seconds;
             };
           (good, bad, seconds)))
      (Array.init samples Fun.id)
  in
  let false_alarms = ref 0 and missed = ref 0 in
  let good_vouts = Array.make samples 0.0 and bad_vouts = Array.make samples 0.0 in
  let sample_reports = ref [] in
  Array.iteri
    (fun k ((flagged_good, vout_good), (flagged_bad, vout_bad), seconds) ->
      if flagged_good then incr false_alarms;
      good_vouts.(k) <- vout_good;
      if not flagged_bad then incr missed;
      bad_vouts.(k) <- vout_bad;
      let classes =
        (if flagged_good then [ "false-alarm" ] else [])
        @ if flagged_bad then [ "detected" ] else [ "missed" ]
      in
      sample_reports :=
        {
          Tel.Manifest.v_name = Printf.sprintf "sample %d" k;
          v_classes = classes;
          v_seconds = seconds;
          v_metrics = [ ("good_vout", vout_good); ("bad_vout", vout_bad) ];
        }
        :: !sample_reports)
    outcomes;
  Tel.Trace.finish ~cat:"montecarlo" "montecarlo" span;
  let wall_s = Tel.Clock.ns_to_s (Int64.sub (Tel.Clock.now_ns ()) wall_t0) in
  let utilization =
    List.map
      (fun (dom, (d : Cml_runtime.Pool.domain_stats)) ->
        Tel.Events.util_row ~wall_s ~domain:dom ~busy_ns:d.Cml_runtime.Pool.busy_ns
          ~items:d.Cml_runtime.Pool.items ~longest_stall_ns:d.Cml_runtime.Pool.longest_stall_ns)
      (Cml_runtime.Pool.utilization_since util0)
  in
  let metrics = Tel.Metrics.diff snap0 (Tel.Metrics.snapshot ()) in
  let gmin = Cml_numerics.Stats.minimum good_vouts in
  let r =
    {
      samples;
      false_alarms = !false_alarms;
      missed = !missed;
      good_vout_min = gmin;
      good_vout_max = Cml_numerics.Stats.maximum good_vouts;
      bad_vout_max = Cml_numerics.Stats.maximum bad_vouts;
      separation = gmin -. Cml_numerics.Stats.maximum bad_vouts;
      good_vouts;
      bad_vouts;
      sample_reports = List.rev !sample_reports;
      metrics;
      utilization;
      wall_s;
    }
  in
  Tel.Events.finish ev_run
    ~classes:(Tel.Manifest.class_histogram (to_manifest r))
    ~wall_s ~utilization;
  (match manifest with
  | None -> ()
  | Some path -> Tel.Manifest.write ~path (to_manifest ~seed ~options:run_options r));
  r
