module N = Cml_spice.Netlist
module E = Cml_spice.Engine
module T = Cml_spice.Transient
module Tel = Cml_telemetry

type variant =
  | V1 of Detector.config
  | V2 of { cfg : Detector.config; vtest : float }

type response = {
  vout : Cml_wave.Wave.t;
  out_p : Cml_wave.Wave.t;
  out_n : Cml_wave.Wave.t;
  tstability : float option;
  t_settle : float option;
  vmax : float;
  excursion : float;
  vout_drop : float;
}

let build_monitored ?(proc = Cml_cells.Process.default) ?(preflight = true) ~stages ~dut
    ~variant ~freq ~pipe () =
  let chain = Cml_cells.Chain.build ~proc ~stages ~freq () in
  let builder = chain.Cml_cells.Chain.builder in
  let outputs = Cml_cells.Chain.output chain dut in
  let vout =
    match variant with
    | V1 cfg -> Detector.attach_v1 builder ~name:"det" ~outputs cfg
    | V2 { cfg; vtest } ->
        let vt = Detector.ensure_vtest builder vtest in
        let out = Detector.attach_v2 builder ~name:"det" ~outputs ~vtest:vt cfg in
        (* engage test mode 2 ns into the transient, as a tester
           would: the detector's own response is then observable
           rather than already folded into the DC operating point *)
        let normal = Detector.vtest_normal proc in
        (match N.get_device builder.Cml_cells.Builder.net "vtest" with
        | N.Vsource src ->
            N.set_device builder.Cml_cells.Builder.net "vtest"
              (N.Vsource
                 {
                   src with
                   wave = Cml_spice.Waveform.Pwl [| (0.0, normal); (2e-9, normal); (3e-9, vtest) |];
                 })
        | N.Resistor _ | N.Capacitor _ | N.Diode _ | N.Bjt _ | N.Isource _ | N.Vcvs _
        | N.Vccs _ -> ());
        out
  in
  (* lint the instrumented (still fault-free) netlist before the
     deliberate defect goes in *)
  if preflight then
    Cml_analysis.Lint.preflight_netlist ~what:"monitored-chain netlist"
      builder.Cml_cells.Builder.net;
  let net =
    match pipe with
    | None -> builder.Cml_cells.Builder.net
    | Some r ->
        let device = Cml_cells.Chain.stage_name dut ^ ".q3" in
        Cml_defects.Inject.apply builder.Cml_cells.Builder.net (Cml_defects.Defect.Pipe { device; r })
  in
  (chain, outputs, vout, net)

let detector_response ?(proc = Cml_cells.Process.default) ?(stages = 3) ?(dut = 2) ?max_step
    ?preflight ?guide ~variant ~freq ~pipe ~tstop () =
  let _chain, outputs, vout, net =
    build_monitored ~proc ?preflight ~stages ~dut ~variant ~freq ~pipe ()
  in
  let sim = E.compile net in
  let max_step =
    match max_step with Some h -> h | None -> Float.min 10e-12 (1.0 /. freq /. 50.0)
  in
  let r = T.run ?guide sim net (T.config ~tstop ~max_step ()) in
  let wave nd = Cml_wave.Wave.create r.T.times (T.node_trace r nd) in
  let w_vout = wave vout in
  let w_p = wave outputs.Cml_cells.Builder.p and w_n = wave outputs.Cml_cells.Builder.n in
  (* measure the detector transient from the moment test mode is
     fully engaged (variant 2 ramps vtest over 2-3 ns) *)
  let t_engage = match variant with V1 _ -> 0.0 | V2 _ -> 3e-9 in
  let w_analysis = Cml_wave.Wave.sub_range w_vout ~t_from:t_engage ~t_to:tstop in
  let shift t = Option.map (fun x -> x -. t_engage) t in
  let tstability = shift (Cml_wave.Measure.time_to_stability ~noise:2e-3 w_analysis) in
  let t_settle = shift (Cml_wave.Measure.settling_time w_analysis) in
  let vmax =
    match tstability with
    | Some ts -> Cml_wave.Measure.vmax_after w_vout ~t_from:ts
    | None -> Cml_wave.Wave.vmax w_vout
  in
  let settle = tstop /. 3.0 in
  let lo_p, _ = Cml_wave.Measure.extremes w_p ~t_from:settle in
  let lo_n, _ = Cml_wave.Measure.extremes w_n ~t_from:settle in
  let nominal_low = Cml_cells.Process.v_low proc in
  let excursion = Float.max 0.0 (nominal_low -. Float.min lo_p lo_n) in
  let vout_floor, _ = Cml_wave.Measure.extremes w_vout ~t_from:(0.6 *. tstop) in
  {
    vout = w_vout;
    out_p = w_p;
    out_n = w_n;
    tstability;
    t_settle;
    vmax;
    excursion;
    vout_drop = proc.Cml_cells.Process.vgnd -. vout_floor;
  }

type threshold_row = {
  pipe_r : float;
  amplitude : float;
  drop : float;
  detected : bool;
}

let amplitude_thresholds ?(proc = Cml_cells.Process.default) ?(detect_drop = 0.15) ?jobs
    ?preflight ?(warm_start = true) ?manifest ~variant ~freq ~pipe_values ~tstop () =
  let snap0 = Tel.Metrics.snapshot () in
  let span = Tel.Trace.start () in
  (* a pipe defect adds one resistor across existing nodes, so the
     fault-free monitored chain is layout-compatible with every row
     and its trajectory can seed all of their Newton solves *)
  let guide =
    if warm_start then begin
      let _, _, _, net = build_monitored ~proc ?preflight ~stages:3 ~dut:2 ~variant ~freq ~pipe:None () in
      let sim = E.compile net in
      let max_step = Float.min 10e-12 (1.0 /. freq /. 50.0) in
      Some (T.run sim net (T.config ~tstop ~max_step ()))
    end
    else None
  in
  let row pipe_r =
    let tok = Tel.Trace.start () in
    let t0 = Tel.Clock.now_ns () in
    let resp =
      detector_response ~proc ?preflight ?guide ~variant ~freq ~pipe:(Some pipe_r) ~tstop ()
    in
    let seconds = Tel.Clock.ns_to_s (Int64.sub (Tel.Clock.now_ns ()) t0) in
    Tel.Trace.finish ~cat:"experiment" "variant" tok;
    ( {
        pipe_r;
        amplitude = resp.excursion;
        drop = resp.vout_drop;
        detected = resp.vout_drop > detect_drop;
      },
      seconds )
  in
  (* every row builds and simulates its own monitored chain *)
  let timed_rows = Cml_runtime.Pool.parallel_list_map ?jobs row pipe_values in
  let rows = List.map fst timed_rows in
  Tel.Trace.finish ~cat:"experiment" "amplitude_thresholds" span;
  (match manifest with
  | None -> ()
  | Some path ->
      let metrics = Tel.Metrics.diff snap0 (Tel.Metrics.snapshot ()) in
      let variants =
        List.map
          (fun (r, seconds) ->
            {
              Tel.Manifest.v_name = Printf.sprintf "pipe=%g" r.pipe_r;
              v_classes = [ (if r.detected then "detected" else "undetected") ];
              v_seconds = seconds;
              v_metrics = [ ("amplitude", r.amplitude); ("drop", r.drop) ];
            })
          timed_rows
      in
      let spans = Tel.Trace.aggregate (Tel.Trace.peek ()) in
      Tel.Manifest.write ~path
        (Tel.Manifest.create
           ~options:
             [
               ("freq", Printf.sprintf "%g" freq);
               ("tstop", Printf.sprintf "%g" tstop);
               ("detect_drop", Printf.sprintf "%g" detect_drop);
               ("warm_start", string_of_bool warm_start);
             ]
           ~variants ~metrics ~spans ~kind:"sweep" ()));
  let min_detected =
    List.fold_left
      (fun acc r ->
        if not r.detected then acc
        else match acc with None -> Some r.amplitude | Some a -> Some (Float.min a r.amplitude))
      None rows
  in
  (rows, min_detected)

let swing_vs_frequency ?(proc = Cml_cells.Process.default) ?jobs ?(preflight = true) ?manifest
    ~pipe ~freqs () =
  let snap0 = Tel.Metrics.snapshot () in
  let span = Tel.Trace.start () in
  let one freq =
    let chain = Cml_cells.Chain.build ~proc ~stages:3 ~freq () in
    let builder = chain.Cml_cells.Chain.builder in
    if preflight then
      Cml_analysis.Lint.preflight_netlist ~what:"swing-sweep netlist"
        builder.Cml_cells.Builder.net;
    let outputs = Cml_cells.Chain.output chain 2 in
    let net =
      match pipe with
      | None -> builder.Cml_cells.Builder.net
      | Some r ->
          Cml_defects.Inject.apply builder.Cml_cells.Builder.net
            (Cml_defects.Defect.Pipe { device = "x2.q3"; r })
    in
    let sim = E.compile net in
    let periods = 6.0 in
    let tstop = periods /. freq in
    let max_step = Float.min 10e-12 (1.0 /. freq /. 80.0) in
    let r = T.run sim net (T.config ~tstop ~max_step ()) in
    let wave nd = Cml_wave.Wave.create r.T.times (T.node_trace r nd) in
    let w_p = wave outputs.Cml_cells.Builder.p in
    let lo, hi = Cml_wave.Measure.extremes w_p ~t_from:(tstop /. 2.0) in
    (freq, lo, hi)
  in
  let timed_one freq =
    let tok = Tel.Trace.start () in
    let t0 = Tel.Clock.now_ns () in
    let r = one freq in
    let seconds = Tel.Clock.ns_to_s (Int64.sub (Tel.Clock.now_ns ()) t0) in
    Tel.Trace.finish ~cat:"experiment" "variant" tok;
    (r, seconds)
  in
  let timed_rows = Cml_runtime.Pool.parallel_list_map ?jobs timed_one freqs in
  Tel.Trace.finish ~cat:"experiment" "swing_vs_frequency" span;
  (match manifest with
  | None -> ()
  | Some path ->
      let metrics = Tel.Metrics.diff snap0 (Tel.Metrics.snapshot ()) in
      let variants =
        List.map
          (fun ((freq, lo, hi), seconds) ->
            {
              Tel.Manifest.v_name = Printf.sprintf "freq=%g" freq;
              v_classes = [];
              v_seconds = seconds;
              v_metrics = [ ("vlow", lo); ("vhigh", hi); ("swing", hi -. lo) ];
            })
          timed_rows
      in
      let spans = Tel.Trace.aggregate (Tel.Trace.peek ()) in
      Tel.Manifest.write ~path
        (Tel.Manifest.create
           ~options:
             [
               ( "pipe",
                 match pipe with Some r -> Printf.sprintf "%g" r | None -> "none" );
               ("freqs", string_of_int (List.length freqs));
             ]
           ~variants ~metrics ~spans ~kind:"sweep" ()));
  List.map fst timed_rows

type hysteresis = {
  sweep : (float * float * float) list;
  switch_down : float option;
  switch_up : float option;
}

let hysteresis ?(proc = Cml_cells.Process.default) ?config ?vtest ?v_min ?(points = 201)
    ?(preflight = true) () =
  let vtest_value = match vtest with Some v -> v | None -> Detector.vtest_test proc in
  let v_min =
    match v_min with Some v -> v | None -> proc.Cml_cells.Process.vgnd -. 0.2
  in
  let b = Cml_cells.Builder.create ~proc () in
  let vtest_node = Detector.ensure_vtest b vtest_value in
  let ro = Readout.attach b ~name:"ro" ~vtest:vtest_node ?config () in
  N.vsource b.Cml_cells.Builder.net ~name:"vdrive" ~pos:ro.Readout.vout ~neg:N.gnd
    (Cml_spice.Waveform.Dc vtest_value);
  if preflight then
    Cml_analysis.Lint.preflight_netlist ~what:"hysteresis-sweep netlist"
      b.Cml_cells.Builder.net;
  let down = Cml_numerics.Vec.linspace vtest_value v_min points in
  let up = Cml_numerics.Vec.linspace v_min vtest_value points in
  let values = Array.append down up in
  let _, sols = Cml_spice.Sweep.vsource_sweep_full b.Cml_cells.Builder.net ~source:"vdrive" ~values in
  let vfb k = E.voltage sols.(k) ro.Readout.vfb in
  let flag k = E.voltage sols.(k) ro.Readout.flag in
  let sweep = List.init (Array.length values) (fun k -> (values.(k), vfb k, flag k)) in
  let find lo hi =
    let rec go k acc =
      if k > hi then acc
      else if Float.abs (vfb k -. vfb (k - 1)) > 0.04 then go (k + 1) (Some values.(k))
      else go (k + 1) acc
    in
    go (lo + 1) None
  in
  {
    sweep;
    switch_down = find 0 (points - 1);
    switch_up = find points ((2 * points) - 1);
  }

type phase_response = {
  static_false : float;
  static_true : float;
  toggling : float;
}

let phase_sensitivity ?(proc = Cml_cells.Process.default) ?(preflight = true) ~variant ~pipe
    ~freq ~tstop () =
  let run stim =
    let b = Cml_cells.Builder.create ~proc () in
    let input =
      match stim with
      | `Static v -> Cml_cells.Builder.diff_dc_input b ~name:"ia" ~value:v
      | `Toggle -> Cml_cells.Builder.diff_square_input b ~name:"ia" ~freq ()
    in
    let out = Cml_cells.Buffer_cell.add b ~name:"g" ~input in
    let vout =
      match variant with
      | V1 cfg -> Detector.attach_v1 b ~name:"det" ~outputs:out cfg
      | V2 { cfg; vtest } ->
          let vt = Detector.ensure_vtest b vtest in
          Detector.attach_v2 b ~name:"det" ~outputs:out ~vtest:vt cfg
    in
    if preflight then
      Cml_analysis.Lint.preflight_netlist ~what:"phase-sensitivity netlist"
        b.Cml_cells.Builder.net;
    let net =
      Cml_defects.Inject.apply b.Cml_cells.Builder.net
        (Cml_defects.Defect.Pipe { device = "g.q3"; r = pipe })
    in
    let sim = E.compile net in
    let r = T.run sim net (T.config ~tstop ~max_step:10e-12 ()) in
    let w = Cml_wave.Wave.create r.T.times (T.node_trace r vout) in
    let vmin, _ = Cml_wave.Measure.extremes w ~t_from:(0.6 *. tstop) in
    proc.Cml_cells.Process.vgnd -. vmin
  in
  {
    static_false = run (`Static false);
    static_true = run (`Static true);
    toggling = run `Toggle;
  }
