module N = Cml_spice.Netlist
module E = Cml_spice.Engine

type group = {
  index : int;
  readout : Readout.t;
  members : (string * Cml_cells.Builder.diff) list;
}

type plan = {
  groups : group list;
  vtest_node : N.node;
  decision : float;
}

let chunk ~size xs =
  let rec go acc current n = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | x :: rest ->
        if n = size then go (List.rev current :: acc) [ x ] 1 rest
        else go acc (x :: current) (n + 1) rest
  in
  go [] [] 0 xs

let attach ~multi_emitter ~config ?vtest builder member_groups =
  let proc = builder.Cml_cells.Builder.proc in
  let vtest_value = match vtest with Some v -> v | None -> Detector.vtest_test proc in
  let vtest_node = Detector.ensure_vtest builder vtest_value in
  let lo, hi = Readout.thresholds config ~vtest:vtest_value in
  let groups =
    List.mapi
      (fun index members ->
        let readout =
          Readout.attach builder ~name:(Printf.sprintf "ro%d" index) ~vtest:vtest_node ~config
            ()
        in
        List.iteri
          (fun k (name, outputs) ->
            ignore name;
            Detector.attach_sensors builder
              ~name:(Printf.sprintf "ro%d.det%d" index k)
              ~outputs ~vtest:vtest_node ~vout:readout.Readout.vout ~multi_emitter)
          members;
        { index; readout; members })
      member_groups
  in
  { groups; vtest_node; decision = (lo +. hi) /. 2.0 }

let instrument ?(max_share = 45) ?(multi_emitter = true) ?(config = Readout.default_config)
    ?vtest builder =
  attach ~multi_emitter ~config ?vtest builder
    (chunk ~size:max_share (Cml_cells.Builder.cells builder))

let instrument_groups ?(multi_emitter = true) ?(config = Readout.default_config) ?vtest ~groups
    builder =
  let cells = Cml_cells.Builder.cells builder in
  let lookup name =
    match List.assoc_opt name cells with
    | Some outputs -> (name, outputs)
    | None ->
        invalid_arg (Printf.sprintf "Insertion.instrument_groups: unknown cell %S" name)
  in
  attach ~multi_emitter ~config ?vtest builder (List.map (List.map lookup) groups)

let device_overhead plan net =
  let added =
    List.fold_left
      (fun acc g ->
        (* read-out: devices named ro<i>.* *)
        let prefix = Printf.sprintf "ro%d." g.index in
        let count = ref 0 in
        N.iter_devices net (fun d ->
            let name = N.device_name d in
            if String.length name >= String.length prefix
               && String.sub name 0 (String.length prefix) = prefix
            then incr count);
        acc + !count)
      0 plan.groups
  in
  let total = N.device_count net in
  float_of_int added /. float_of_int (max 1 (total - added))

type screen_result = { group : group; vfb : float; failed : bool }

let screen plan net =
  let sim = E.compile net in
  let x = E.dc_operating_point sim in
  List.map
    (fun group ->
      let vfb = E.voltage x group.readout.Readout.vfb in
      { group; vfb; failed = vfb > plan.decision })
    plan.groups

let localize plan net =
  List.concat_map
    (fun r -> if r.failed then List.map fst r.group.members else [])
    (screen plan net)
