(** Simulation harnesses behind the paper's detector figures: a
    monitored buffer in a short chain, with an optional pipe defect,
    producing the detector response waveform and its metrics
    (Figures 7, 8, 10) and the detectable-amplitude characterisation
    (the 0.57 V / 0.35 V claims).

    Every harness lints the netlist it builds before simulating
    (see {!Cml_analysis.Lint.preflight_netlist}); pass
    [~preflight:false] — or set [CML_DFT_NO_PREFLIGHT] — to simulate
    rule-breaking netlists on purpose. *)

type variant =
  | V1 of Detector.config
  | V2 of { cfg : Detector.config; vtest : float }

type response = {
  vout : Cml_wave.Wave.t;  (** detector output *)
  out_p : Cml_wave.Wave.t;  (** monitored gate outputs *)
  out_n : Cml_wave.Wave.t;
  tstability : float option;  (** first-minimum time of vout (paper 6.1) *)
  t_settle : float option;
      (** robust settling time: 95% of the total vout excursion *)
  vmax : float;  (** ripple maximum after stability *)
  excursion : float;  (** how far below the nominal low the gate output goes *)
  vout_drop : float;  (** rail minus the stabilised vout *)
}

val detector_response :
  ?proc:Cml_cells.Process.t ->
  ?stages:int ->
  ?dut:int ->
  ?max_step:float ->
  ?preflight:bool ->
  ?guide:Cml_spice.Transient.result ->
  variant:variant ->
  freq:float ->
  pipe:float option ->
  tstop:float ->
  unit ->
  response
(** Drive a [stages]-buffer chain (default 3, monitored stage 2) at
    [freq]; when [pipe] is given, that C-E pipe resistance is placed
    on the monitored stage's current-source transistor.  [guide]
    warm-starts the transient from a layout-compatible trajectory
    (see {!Cml_spice.Transient.run}). *)

type threshold_row = {
  pipe_r : float;
  amplitude : float;  (** excursion produced by this pipe *)
  drop : float;  (** detector output drop it causes *)
  detected : bool;
}

val amplitude_thresholds :
  ?proc:Cml_cells.Process.t ->
  ?detect_drop:float ->
  ?jobs:int ->
  ?preflight:bool ->
  ?warm_start:bool ->
  ?manifest:string ->
  variant:variant ->
  freq:float ->
  pipe_values:float list ->
  tstop:float ->
  unit ->
  threshold_row list * float option
(** Characterise detection across pipe severities; the second result
    is the smallest excursion amplitude that was detected (the
    paper's 0.57 V for variant 1, 0.35 V for variant 2).
    [detect_drop] is the vout drop counted as a detection (default
    0.15 V, comparable to the variant-3 comparator threshold).
    Rows run in parallel over [jobs] domains.  Unless [warm_start] is
    [false], the fault-free monitored chain is simulated once and its
    trajectory seeds every row's Newton solves.  [manifest] writes a
    {!Cml_telemetry.Manifest} (kind ["sweep"]) to the given path. *)

val swing_vs_frequency :
  ?proc:Cml_cells.Process.t ->
  ?jobs:int ->
  ?preflight:bool ->
  ?manifest:string ->
  pipe:float option ->
  freqs:float list ->
  unit ->
  (float * float * float) list
(** Figure 5: [(freq, vlow, vhigh)] of the monitored gate output for
    one pipe value across stimulus frequencies; one parallel task per
    frequency.  [manifest] writes a {!Cml_telemetry.Manifest} (kind
    ["sweep"]) to the given path. *)

type hysteresis = {
  sweep : (float * float * float) list;
      (** [(vdrive, vfb, flag)] along the down-then-up continuation sweep *)
  switch_down : float option;  (** drive voltage of the good-to-fault flip *)
  switch_up : float option;  (** drive voltage of the fault-to-good flip *)
}

val hysteresis :
  ?proc:Cml_cells.Process.t ->
  ?config:Readout.config ->
  ?vtest:float ->
  ?v_min:float ->
  ?points:int ->
  ?preflight:bool ->
  unit ->
  hysteresis
(** Figure 12: drive the read-out's [vout] node directly with a DC
    source swept down from [vtest] to [v_min] (default rail - 0.2 V)
    and back up, with continuation, and locate the two comparator
    switch points.  [switch_down] is the paper's "guaranteed
    detected" level, [switch_up] its "treated as fault-free" level. *)

type phase_response = {
  static_false : float;  (** detector drop with the input held at 0 *)
  static_true : float;  (** with the input held at 1 *)
  toggling : float;  (** with a square-wave input *)
}

val phase_sensitivity :
  ?proc:Cml_cells.Process.t ->
  ?preflight:bool ->
  variant:variant ->
  pipe:float ->
  freq:float ->
  tstop:float ->
  unit ->
  phase_response
(** Section 6.6: a single-sided (variant-1) detector only sees the
    excursion when it lands on the complement output, so one static
    input phase masks the fault; toggling the gate asserts it half
    the cycles, and the double-sided variant 2 sees every phase.
    Returns the detector output drop for the three stimuli on a
    monitored buffer with the given tail pipe. *)
