let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let render_points ?(width = 72) ?(height = 20) ~xlabel series =
  let all_pts = List.concat_map snd series in
  match all_pts with
  | [] -> "(no data)\n"
  | (x0, y0) :: _ ->
      let fold f init sel = List.fold_left (fun acc p -> f acc (sel p)) init all_pts in
      let xmin = fold Float.min x0 fst and xmax = fold Float.max x0 fst in
      let ymin = fold Float.min y0 snd and ymax = fold Float.max y0 snd in
      let xspan = if xmax -. xmin > 0.0 then xmax -. xmin else 1.0 in
      let yspan = if ymax -. ymin > 0.0 then ymax -. ymin else 1.0 in
      let canvas = Array.make_matrix height width ' ' in
      List.iteri
        (fun si (_, pts) ->
          let glyph = glyphs.(si mod Array.length glyphs) in
          List.iter
            (fun (x, y) ->
              let cx =
                int_of_float (Float.round ((x -. xmin) /. xspan *. float_of_int (width - 1)))
              in
              let cy =
                int_of_float (Float.round ((y -. ymin) /. yspan *. float_of_int (height - 1)))
              in
              if cx >= 0 && cx < width && cy >= 0 && cy < height then
                canvas.(height - 1 - cy).(cx) <- glyph)
            pts)
        series;
      let b = Buffer.create 4096 in
      Array.iteri
        (fun row line ->
          let label =
            if row = 0 then Printf.sprintf "%10.4g |" ymax
            else if row = height - 1 then Printf.sprintf "%10.4g |" ymin
            else "           |"
          in
          Buffer.add_string b label;
          Buffer.add_string b (String.init width (fun i -> line.(i)));
          Buffer.add_char b '\n')
        canvas;
      Buffer.add_string b ("           +" ^ String.make width '-' ^ "\n");
      Buffer.add_string b
        (Printf.sprintf "            %-10.4g%*s%10.4g  (%s)\n" xmin (width - 20) "" xmax xlabel);
      List.iteri
        (fun si (name, _) ->
          Buffer.add_string b
            (Printf.sprintf "            %c = %s\n" glyphs.(si mod Array.length glyphs) name))
        series;
      Buffer.contents b

let render ?width ?height series =
  let to_points (name, w) =
    ( name,
      Array.to_list (Array.mapi (fun i t -> (t, w.Wave.values.(i))) w.Wave.times) )
  in
  render_points ?width ?height ~xlabel:"time (s)" (List.map to_points series)

let render_xy ?width ?height ~xlabel series = render_points ?width ?height ~xlabel series
