(* Per-stage signal-health profiling of a CML chain (the paper's
   section-5 narrative, made quantitative): given one probed waveform
   per stage, measure each stage's plateau levels, swing and excursion
   depth against the nominal levels, and locate the *healing depth* —
   how many stages it takes an abnormal excursion at the faulty gate
   to recover to within tolerance.  Also the detector-response
   timeline of Figs. 7/8/10 (flag time, t_stability, V_max). *)

type stage = {
  label : string;
  vlow : float;
  vhigh : float;
  swing : float;
  excursion : float;
  overshoot : float;
  within : bool;
}

type profile = {
  stages : stage list;
  nominal_low : float;
  nominal_high : float;
  tolerance : float;
  first_degraded : int option;
  healed_at : int option;
  healing_depth : int option;
}

let measure_stage ~nominal_low ~nominal_high ~tolerance ~t_from (label, w) =
  let lo, hi = Measure.levels w ~t_from in
  let xlo, xhi = Measure.extremes w ~t_from in
  let excursion = Float.max 0.0 (nominal_low -. xlo) in
  let overshoot = Float.max 0.0 (xhi -. nominal_high) in
  (* nan deviations (empty window) compare false, so a degenerate
     stage reads as degraded rather than silently healthy *)
  let within =
    excursion <= tolerance && overshoot <= tolerance
    && Float.abs (lo -. nominal_low) <= tolerance
    && Float.abs (hi -. nominal_high) <= tolerance
  in
  { label; vlow = lo; vhigh = hi; swing = hi -. lo; excursion; overshoot; within }

let profile ?(tolerance = 0.1) ~nominal_low ~nominal_high ~t_from waves =
  let stages = List.map (measure_stage ~nominal_low ~nominal_high ~tolerance ~t_from) waves in
  let n = List.length stages in
  let within = Array.of_list (List.map (fun s -> s.within) stages) in
  let first_degraded =
    let rec find i = if i >= n then None else if within.(i) then find (i + 1) else Some (i + 1) in
    find 0
  in
  (* healed at the first stage past the degradation from which every
     remaining stage is back within tolerance — a momentary recovery
     followed by another excursion does not count as healed *)
  let healed_at =
    match first_degraded with
    | None -> None
    | Some d ->
        let suffix_ok = Array.make (n + 1) true in
        for i = n - 1 downto 0 do
          suffix_ok.(i) <- within.(i) && suffix_ok.(i + 1)
        done;
        let rec find i = if i >= n then None else if suffix_ok.(i) then Some (i + 1) else find (i + 1) in
        find d
  in
  let healing_depth =
    match (first_degraded, healed_at) with Some d, Some h -> Some (h - d) | _ -> None
  in
  { stages; nominal_low; nominal_high; tolerance; first_degraded; healed_at; healing_depth }

let render_text p =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "nominal levels: low %.3f V, high %.3f V (tolerance %.0f mV)" p.nominal_low
    p.nominal_high (p.tolerance *. 1e3);
  line "%-12s %8s %8s %8s %10s %10s  %s" "stage" "vlow" "vhigh" "swing" "excursion" "overshoot"
    "health";
  List.iter
    (fun s ->
      line "%-12s %6.3f V %6.3f V %5.0f mV %7.0f mV %7.0f mV  %s" s.label s.vlow s.vhigh
        (s.swing *. 1e3) (s.excursion *. 1e3) (s.overshoot *. 1e3)
        (if s.within then "ok" else "DEGRADED"))
    p.stages;
  (match (p.first_degraded, p.healed_at) with
  | Some d, Some h ->
      let depth = h - d in
      line "degraded from stage %d, healed at stage %d (healing depth %d stage%s)" d h depth
        (if depth = 1 then "" else "s")
  | Some d, None -> line "degraded from stage %d, never heals within this chain" d
  | None, _ -> line "all stages within tolerance");
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Detector-response timeline *)

type detector_timeline = {
  flag_time : float option;
  t_stability : float option;
  t_settle : float option;
  vmax : float;
  v_final : float;
  drop : float;
}

let detector_timeline ?(noise = 2e-3) ?fraction ~quiescent ~threshold w =
  (* a static defect is already folded into the DC operating point, so
     the flag can be asserted from the first sample with no falling
     edge ever recorded *)
  let flag_time =
    if (not (Wave.is_empty w)) && w.Wave.values.(0) <= threshold then Some (Wave.t_start w)
    else Measure.first_crossing ~direction:Measure.Falling w ~level:threshold
  in
  let t_stability = Measure.time_to_stability ~noise w in
  let t_settle = Measure.settling_time ?fraction w in
  let vmax =
    match t_stability with
    | Some ts -> Measure.vmax_after w ~t_from:ts
    | None -> Wave.vmax w
  in
  let v_final = Wave.value_at w (Wave.t_end w) in
  let floor_from = Wave.t_start w +. (0.6 *. (Wave.t_end w -. Wave.t_start w)) in
  let vfloor, _ = Measure.extremes w ~t_from:floor_from in
  { flag_time; t_stability; t_settle; vmax; v_final; drop = quiescent -. vfloor }

let render_timeline t =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let opt_ns = function Some x -> Printf.sprintf "%.1f ns" (x *. 1e9) | None -> "-" in
  line "flag time   : %s" (opt_ns t.flag_time);
  line "t_stability : %s" (opt_ns t.t_stability);
  line "t_settle    : %s" (opt_ns t.t_settle);
  line "Vmax        : %.3f V" t.vmax;
  line "V_final     : %.3f V" t.v_final;
  line "vout drop   : %.3f V" t.drop;
  Buffer.contents b
