let identifier k =
  let base = 94 in
  let rec go k acc =
    let c = Char.chr (33 + (k mod base)) in
    let acc = String.make 1 c ^ acc in
    if k < base then acc else go ((k / base) - 1) acc
  in
  go k ""

let to_string ?(timescale_fs = 1) waves =
  (match waves with
  | [] -> invalid_arg "Vcd_analog.to_string: no waveforms"
  | (_, first) :: rest ->
      List.iter
        (fun (name, w) ->
          if Wave.length w <> Wave.length first then
            invalid_arg ("Vcd_analog: axis mismatch for " ^ name))
        rest);
  let _, first = List.hd waves in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "$version cml-dft analog dump $end\n";
  Buffer.add_string buf (Printf.sprintf "$timescale %d fs $end\n" timescale_fs);
  Buffer.add_string buf "$scope module analog $end\n";
  List.iteri
    (fun k (name, _) ->
      Buffer.add_string buf (Printf.sprintf "$var real 64 %s %s $end\n" (identifier k) name))
    waves;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  let n = Wave.length first in
  let scale = 1e-15 *. float_of_int timescale_fs in
  for i = 0 to n - 1 do
    let t = int_of_float (Float.round (first.Wave.times.(i) /. scale)) in
    Buffer.add_string buf (Printf.sprintf "#%d\n" t);
    if i = 0 then Buffer.add_string buf "$dumpvars\n";
    List.iteri
      (fun k (_, w) ->
        Buffer.add_string buf (Printf.sprintf "r%.9g %s\n" w.Wave.values.(i) (identifier k)))
      waves;
    if i = 0 then Buffer.add_string buf "$end\n"
  done;
  Buffer.contents buf

let write ?timescale_fs ~path waves =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?timescale_fs waves))
