(** Waveform measurements used by the paper's experiments: threshold
    crossings, the two delay-measurement methods of Tables 1 and 2,
    high/low levels and swing (Fig. 4, Fig. 5), and the detector
    response metrics t{_stability} and V{_max} (Figs. 7, 8, 10). *)

type direction = Rising | Falling | Either

(** Degenerate inputs never raise: on a wave (or measurement window)
    with 0-1 samples, {!crossings} returns [[]], the optional
    measurements return [None], and the level/extreme measurements
    return the single sample or [(nan, nan)] when there is none. *)

val crossings : ?direction:direction -> Wave.t -> level:float -> float list
(** Interpolated times at which the waveform crosses [level], in
    order.  A sample exactly on the level counts as a crossing of the
    segment that leaves it. *)

val first_crossing : ?direction:direction -> ?after:float -> Wave.t -> level:float -> float option
(** First crossing at or after [after] (default: start of the wave). *)

val delay_at_reference :
  ?direction:direction -> reference:float -> from_wave:Wave.t -> to_wave:Wave.t ->
  after:float -> unit -> float option
(** Table 1 method: the delay between the first crossing of the fixed
    [reference] voltage by [from_wave] at or after [after] and the
    next crossing of the same reference by [to_wave].  [None] when
    either crossing is missing. *)

val differential_crossings : Wave.t -> Wave.t -> float list
(** Table 2 method: times where a signal and its complement actually
    cross each other (zero crossings of their difference), whatever
    the crossing voltage happens to be. *)

val extremes : Wave.t -> t_from:float -> float * float
(** [(vlow, vhigh)]: minimum and maximum over [t >= t_from]. *)

val levels : Wave.t -> t_from:float -> float * float
(** Robust plateau levels [(vlow, vhigh)] over [t >= t_from]: the
    time-weighted means of the samples in the lowest and highest
    quarter of the observed range.  Less sensitive to overshoot than
    {!extremes}. *)

val swing : Wave.t -> t_from:float -> float
(** [vhigh - vlow] from {!extremes}. *)

val time_to_stability : ?noise:float -> Wave.t -> float option
(** Paper definition (section 6.1): the time at which the detector
    output reaches its first local minimum, i.e. the end of the
    initial transient.  A minimum only counts once the signal has
    risen again by more than [noise] (default 1 mV).  [None] if the
    signal never turns around. *)

val vmax_after : Wave.t -> t_from:float -> float
(** Maximum of the rippling signal after [t_from] (paper's V{_max}). *)

val period_average : Wave.t -> freq:float -> t_from:float -> float
(** Average over the last whole number of periods of [freq] after
    [t_from]; useful for duty-cycled quantities. *)

val settling_time : ?fraction:float -> Wave.t -> float option
(** Robust companion to {!time_to_stability}: the first time the
    signal covers [fraction] (default 0.95) of the excursion from its
    initial value toward its final (tail-averaged) value, in either
    direction.  Returns the start time when the signal never moves,
    [None] when the target level is never crossed in the right
    direction. *)
