type direction = Rising | Falling | Either

(* Scanned over every recorded sample of every measured trace, so the
   segment test is fused inline (no [matches]/[segment_crossing] calls,
   no option per segment) and indexes the two parallel arrays without
   bounds checks — [Wave.create] guarantees equal lengths. *)
let crossings ?(direction = Either) (w : Wave.t) ~level =
  let times = w.Wave.times and values = w.Wave.values in
  let acc = ref [] in
  let n = Array.length times in
  for i = 0 to n - 2 do
    let v0 = Array.unsafe_get values i and v1 = Array.unsafe_get values (i + 1) in
    let dir_ok =
      match direction with Either -> true | Rising -> v1 > v0 | Falling -> v1 < v0
    in
    if dir_ok && v0 <> v1 then begin
      let frac = (level -. v0) /. (v1 -. v0) in
      if frac >= 0.0 && frac < 1.0 then begin
        let t0 = Array.unsafe_get times i in
        acc := (t0 +. (frac *. (Array.unsafe_get times (i + 1) -. t0))) :: !acc
      end
    end
  done;
  List.rev !acc

let first_crossing ?(direction = Either) ?after w ~level =
  let after = match after with Some t -> t | None -> Wave.t_start w in
  List.find_opt (fun t -> t >= after) (crossings ~direction w ~level)

let delay_at_reference ?(direction = Either) ~reference ~from_wave ~to_wave ~after () =
  match first_crossing ~direction ~after from_wave ~level:reference with
  | None -> None
  | Some t0 -> (
      match first_crossing ~direction ~after:t0 to_wave ~level:reference with
      | None -> None
      | Some t1 -> Some (t1 -. t0))

let differential_crossings a b =
  let d = Wave.combine (fun x y -> x -. y) a b in
  crossings d ~level:0.0

let extremes w ~t_from =
  let ww = Wave.sub_range w ~t_from ~t_to:(Wave.t_end w) in
  (Wave.vmin ww, Wave.vmax ww)

let levels w ~t_from =
  let ww = Wave.sub_range w ~t_from ~t_to:(Wave.t_end w) in
  let lo = Wave.vmin ww and hi = Wave.vmax ww in
  (* 0-1 samples in the window: no plateau to average, return the
     extremes as-is ((nan, nan) for an empty window) *)
  if Wave.length ww < 2 || hi -. lo < 1e-12 then (lo, hi)
  else begin
    let band = 0.25 *. (hi -. lo) in
    let mean_of keep =
      let s = ref 0.0 and tw = ref 0.0 in
      let n = Wave.length ww in
      for i = 0 to n - 2 do
        let v = 0.5 *. (ww.Wave.values.(i) +. ww.Wave.values.(i + 1)) in
        if keep v then begin
          let dt = ww.Wave.times.(i + 1) -. ww.Wave.times.(i) in
          s := !s +. (v *. dt);
          tw := !tw +. dt
        end
      done;
      if !tw > 0.0 then Some (!s /. !tw) else None
    in
    let low = match mean_of (fun v -> v <= lo +. band) with Some v -> v | None -> lo in
    let high = match mean_of (fun v -> v >= hi -. band) with Some v -> v | None -> hi in
    (low, high)
  end

let swing w ~t_from =
  let lo, hi = extremes w ~t_from in
  hi -. lo

let time_to_stability ?(noise = 1e-3) (w : Wave.t) =
  (* walk the samples tracking the running minimum; the first minimum
     is confirmed once the signal has rebounded by more than [noise] *)
  let n = Array.length w.Wave.times in
  if n < 2 then None
  else
  let rec walk i best_v best_t =
    if i >= n then None
    else begin
      let v = w.Wave.values.(i) in
      if v < best_v then walk (i + 1) v w.Wave.times.(i)
      else if v > best_v +. noise then Some best_t
      else walk (i + 1) best_v best_t
    end
  in
  walk 1 w.Wave.values.(0) w.Wave.times.(0)

let vmax_after w ~t_from = snd (extremes w ~t_from)

let period_average w ~freq ~t_from =
  let period = 1.0 /. freq in
  let t_end = Wave.t_end w in
  let span = t_end -. t_from in
  let periods = Float.of_int (int_of_float (span /. period)) in
  if periods < 1.0 then Wave.mean (Wave.sub_range w ~t_from ~t_to:t_end)
  else
    Wave.mean (Wave.sub_range w ~t_from:(t_end -. (periods *. period)) ~t_to:t_end)

let settling_time ?(fraction = 0.95) (w : Wave.t) =
  if Wave.is_empty w then None
  else
  let v0 = w.Wave.values.(0) in
  (* robust final value: time-weighted mean of the last tenth *)
  let t_end = Wave.t_end w and t_start = Wave.t_start w in
  let tail_from = t_end -. (0.1 *. (t_end -. t_start)) in
  let v_end = Wave.mean (Wave.sub_range w ~t_from:tail_from ~t_to:t_end) in
  let excursion = v_end -. v0 in
  if Float.abs excursion < 1e-9 then Some t_start
  else begin
    let target = v0 +. (fraction *. excursion) in
    let direction = if excursion > 0.0 then Rising else Falling in
    first_crossing ~direction w ~level:target
  end
