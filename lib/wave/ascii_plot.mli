(** Terminal rendering of waveforms so the examples can show the
    reproduced figures without a plotting stack. *)

val render : ?width:int -> ?height:int -> (string * Wave.t) list -> string
(** Plot the waveforms on one shared canvas (each series gets a
    distinct glyph); includes a legend and axis annotations. *)

val render_xy :
  ?width:int -> ?height:int -> xlabel:string -> (string * (float * float) list) list -> string
(** Scatter/series plot of [(x, y)] point lists. *)
