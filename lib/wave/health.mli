(** Per-stage signal-health profiling of a buffer chain and the
    detector-response timeline — the waveform-level view behind the
    paper's section-5 observation that a pipe defect's abnormal
    excursion heals after a few CML stages.  Pure waveform analysis:
    feed it one probed waveform per stage (see
    {!Cml_spice.Transient.observers}) plus the nominal levels. *)

type stage = {
  label : string;
  vlow : float;  (** robust low plateau ({!Measure.levels}) *)
  vhigh : float;
  swing : float;  (** [vhigh - vlow] *)
  excursion : float;  (** depth below the nominal low level (V, >= 0) *)
  overshoot : float;  (** height above the nominal high level (V, >= 0) *)
  within : bool;  (** every deviation within tolerance *)
}

type profile = {
  stages : stage list;  (** in chain order *)
  nominal_low : float;
  nominal_high : float;
  tolerance : float;
  first_degraded : int option;  (** 1-based position of the first out-of-tolerance stage *)
  healed_at : int option;
      (** first position after [first_degraded] from which every
          remaining stage is back within tolerance *)
  healing_depth : int option;
      (** [healed_at - first_degraded]: stages the excursion needs to
          recover.  [None] when nothing is degraded or the chain never
          heals. *)
}

val profile :
  ?tolerance:float ->
  nominal_low:float ->
  nominal_high:float ->
  t_from:float ->
  (string * Wave.t) list ->
  profile
(** Measure every [(label, wave)] over [t >= t_from] against the
    nominal levels (tolerance default 0.1 V, the campaign's
    excessive-excursion threshold).  Degenerate waves (0-1 samples in
    the window) read as degraded, never as silently healthy. *)

val render_text : profile -> string
(** Per-stage health table plus the healing-depth verdict. *)

(** {1 Detector response} *)

type detector_timeline = {
  flag_time : float option;
      (** first falling crossing of the flag threshold (the moment a
          tester would see the flag); the start of the wave when the
          output already sits below threshold at t = 0 (a static
          defect folded into the DC operating point) *)
  t_stability : float option;  (** {!Measure.time_to_stability} *)
  t_settle : float option;  (** {!Measure.settling_time} *)
  vmax : float;  (** ripple maximum after stability (paper's V{_max}) *)
  v_final : float;  (** last sample *)
  drop : float;  (** [quiescent] minus the tail floor of the wave *)
}

val detector_timeline :
  ?noise:float ->
  ?fraction:float ->
  quiescent:float ->
  threshold:float ->
  Wave.t ->
  detector_timeline
(** The Figs. 7/8/10 metrics of a detector output wave.  [quiescent]
    is the fault-free detector level (the supply rail for the paper's
    variants); [noise] and [fraction] are passed to the underlying
    measurements. *)

val render_timeline : detector_timeline -> string
