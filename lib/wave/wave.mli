(** Sampled waveforms: a strictly increasing time axis and one value
    per sample, with linear interpolation between samples.

    Waves may be empty (a probe that recorded nothing, a measurement
    window past the last sample): constructors and measurements are
    total, with [nan]/[None]-style results on 0-sample inputs instead
    of exceptions. *)

type t = { times : float array; values : float array }

val create : float array -> float array -> t
(** Arrays must have equal length (possibly zero) and strictly
    increasing times. *)

val empty : t
(** The 0-sample wave. *)

val length : t -> int
val is_empty : t -> bool

val t_start : t -> float
val t_end : t -> float
(** [nan] on an empty wave. *)

val value_at : t -> float -> float
(** Linear interpolation; clamped to the end values outside the
    range, [nan] on an empty wave. *)

val map : (float -> float) -> t -> t
(** Pointwise transform of the values. *)

val combine : (float -> float -> float) -> t -> t -> t
(** Pointwise combination of two waveforms sharing a time axis.
    @raise Invalid_argument if the time axes differ in length. *)

val sub_range : t -> t_from:float -> t_to:float -> t
(** Samples with [t_from <= t <= t_to]; {!empty} when the window
    contains no sample. *)

val vmin : t -> float
val vmax : t -> float
val mean : t -> float
(** Time-weighted (trapezoidal) average.  All three are [nan] on an
    empty wave. *)

val shift : t -> float -> t
(** Shift the time axis by the given offset. *)
