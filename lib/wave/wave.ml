type t = { times : float array; values : float array }

let create times values =
  let n = Array.length times in
  if Array.length values <> n then invalid_arg "Wave.create: bad lengths";
  for i = 1 to n - 1 do
    if times.(i) <= times.(i - 1) then invalid_arg "Wave.create: times must increase"
  done;
  { times; values }

let empty = { times = [||]; values = [||] }

let length w = Array.length w.times

let is_empty w = Array.length w.times = 0

let t_start w = if is_empty w then Float.nan else w.times.(0)

let t_end w = if is_empty w then Float.nan else w.times.(Array.length w.times - 1)

(* index of the last sample with time <= t (or 0) *)
let locate w t =
  let n = Array.length w.times in
  if t <= w.times.(0) then 0
  else if t >= w.times.(n - 1) then n - 1
  else begin
    let rec find lo hi =
      if hi - lo <= 1 then lo
      else begin
        let mid = (lo + hi) / 2 in
        if w.times.(mid) <= t then find mid hi else find lo mid
      end
    in
    find 0 (n - 1)
  end

let value_at w t =
  let n = Array.length w.times in
  if n = 0 then Float.nan
  else if t <= w.times.(0) then w.values.(0)
  else if t >= w.times.(n - 1) then w.values.(n - 1)
  else begin
    let i = locate w t in
    let ta = w.times.(i) and tb = w.times.(i + 1) in
    let va = w.values.(i) and vb = w.values.(i + 1) in
    va +. ((vb -. va) *. (t -. ta) /. (tb -. ta))
  end

let map f w = { w with values = Array.map f w.values }

let combine f a b =
  if Array.length a.times <> Array.length b.times then
    invalid_arg "Wave.combine: time axes differ";
  { a with values = Array.map2 f a.values b.values }

let sub_range w ~t_from ~t_to =
  let keep = ref [] and kept_t = ref [] in
  for i = Array.length w.times - 1 downto 0 do
    let t = w.times.(i) in
    if t >= t_from && t <= t_to then begin
      keep := w.values.(i) :: !keep;
      kept_t := t :: !kept_t
    end
  done;
  { times = Array.of_list !kept_t; values = Array.of_list !keep }

let vmin w = if is_empty w then Float.nan else Array.fold_left Float.min w.values.(0) w.values

let vmax w = if is_empty w then Float.nan else Array.fold_left Float.max w.values.(0) w.values

let mean w =
  let n = Array.length w.times in
  if n = 0 then Float.nan
  else if n = 1 then w.values.(0)
  else begin
    let area = ref 0.0 in
    for i = 0 to n - 2 do
      let dt = w.times.(i + 1) -. w.times.(i) in
      area := !area +. (0.5 *. (w.values.(i) +. w.values.(i + 1)) *. dt)
    done;
    !area /. (w.times.(n - 1) -. w.times.(0))
  end

let shift w dt = { w with times = Array.map (fun t -> t +. dt) w.times }
