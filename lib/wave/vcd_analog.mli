(** VCD export of analog waveforms as real-valued variables, so the
    simulator's transient results open in standard waveform viewers
    next to the digital traces. *)

val to_string : ?timescale_fs:int -> (string * Wave.t) list -> string
(** All waveforms must share one time axis.  [timescale_fs] is the
    VCD timescale in femtoseconds (default 1); times are rounded to
    it.
    @raise Invalid_argument on an empty list or mismatched axes. *)

val write : ?timescale_fs:int -> path:string -> (string * Wave.t) list -> unit
