(** CSV export of waveforms (one time column plus one column per
    named waveform), for offline plotting of the reproduced
    figures. *)

val write : path:string -> (string * Wave.t) list -> unit
(** All waveforms must share one time axis (same length); the first
    waveform's axis is written.
    @raise Invalid_argument on an empty list or mismatched lengths. *)

val write_table : path:string -> header:string list -> float list list -> unit
(** Generic numeric table writer for swept results. *)
