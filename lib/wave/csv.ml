let write ~path waves =
  match waves with
  | [] -> invalid_arg "Csv.write: no waveforms"
  | (_, first) :: _ ->
      let n = Wave.length first in
      List.iter
        (fun (name, w) ->
          if Wave.length w <> n then invalid_arg ("Csv.write: length mismatch for " ^ name))
        waves;
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc "time";
          List.iter (fun (name, _) -> output_string oc ("," ^ name)) waves;
          output_string oc "\n";
          for i = 0 to n - 1 do
            output_string oc (Printf.sprintf "%.9e" first.Wave.times.(i));
            List.iter
              (fun (_, w) -> output_string oc (Printf.sprintf ",%.9e" w.Wave.values.(i)))
              waves;
            output_string oc "\n"
          done)

let write_table ~path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (String.concat "," header);
      output_string oc "\n";
      List.iter
        (fun row ->
          output_string oc (String.concat "," (List.map (Printf.sprintf "%.9e") row));
          output_string oc "\n")
        rows)
