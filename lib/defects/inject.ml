module N = Cml_spice.Netlist

let terminal_node net ~device ~terminal =
  let d = N.get_device net device in
  match List.assoc_opt terminal (N.device_terminals d) with
  | Some nd -> nd
  | None -> raise Not_found

let apply net defect =
  let net = N.copy net in
  (match defect with
  | Defect.Pipe { device; r } -> begin
      match N.get_device net device with
      | N.Bjt { collector; emitters; _ } ->
          N.resistor net ~name:"defect.pipe" collector emitters.(0) r
      | N.Resistor _ | N.Capacitor _ | N.Diode _ | N.Vsource _ | N.Isource _ | N.Vcvs _
      | N.Vccs _ -> invalid_arg "pipe defect requires a BJT"
    end
  | Defect.Terminal_short { device; t1; t2 } ->
      let n1 = terminal_node net ~device ~terminal:t1 in
      let n2 = terminal_node net ~device ~terminal:t2 in
      if n1 = n2 then invalid_arg "short between already-connected terminals";
      N.resistor net ~name:"defect.short" n1 n2 Defect.short_resistance
  | Defect.Bridge { node1; node2; r } -> begin
      match (N.find_node net node1, N.find_node net node2) with
      | Some n1, Some n2 ->
          if n1 = n2 then invalid_arg "bridge between identical nodes";
          N.resistor net ~name:"defect.bridge" n1 n2 r
      | None, _ | _, None -> raise Not_found
    end
  | Defect.Open_terminal { device; terminal } ->
      let old_node = terminal_node net ~device ~terminal in
      let split = N.fresh_node net (device ^ "." ^ terminal ^ ".open") in
      N.rewire_terminal net ~dev:device ~terminal split;
      N.resistor net ~name:"defect.open_r" old_node split Defect.open_resistance;
      N.capacitor net ~name:"defect.open_c" old_node split Defect.open_capacitance
  | Defect.Resistor_short { device } -> begin
      match N.get_device net device with
      | N.Resistor r -> N.set_device net device (N.Resistor { r with r = Defect.short_resistance })
      | N.Capacitor _ | N.Diode _ | N.Bjt _ | N.Vsource _ | N.Isource _ | N.Vcvs _
      | N.Vccs _ -> invalid_arg "resistor short requires a resistor"
    end
  | Defect.Resistor_open { device } -> begin
      match N.get_device net device with
      | N.Resistor r ->
          N.set_device net device (N.Resistor { r with r = Defect.open_resistance });
          N.capacitor net ~name:"defect.open_c" r.n1 r.n2 Defect.open_capacitance
      | N.Capacitor _ | N.Diode _ | N.Bjt _ | N.Vsource _ | N.Isource _ | N.Vcvs _
      | N.Vccs _ -> invalid_arg "resistor open requires a resistor"
    end);
  net
