type t =
  | Pipe of { device : string; r : float }
  | Terminal_short of { device : string; t1 : string; t2 : string }
  | Bridge of { node1 : string; node2 : string; r : float }
  | Open_terminal of { device : string; terminal : string }
  | Resistor_short of { device : string }
  | Resistor_open of { device : string }

let short_resistance = 1.0

let open_resistance = 100e6

let open_capacitance = 1e-15

let describe = function
  | Pipe { device; r } -> Printf.sprintf "C-E pipe (%.3g kohm) on %s" (r /. 1e3) device
  | Terminal_short { device; t1; t2 } -> Printf.sprintf "%s-%s short on %s" t1 t2 device
  | Bridge { node1; node2; r } ->
      Printf.sprintf "bridge (%.3g ohm) between %s and %s" r node1 node2
  | Open_terminal { device; terminal } -> Printf.sprintf "open at %s of %s" terminal device
  | Resistor_short { device } -> Printf.sprintf "resistor short on %s" device
  | Resistor_open { device } -> Printf.sprintf "resistor open on %s" device
