module E = Cml_spice.Engine
module T = Cml_spice.Transient

type measurement = {
  dut_vlow : float;
  dut_vhigh : float;
  dut_swing : float;
  final_vlow : float;
  final_vhigh : float;
  final_swing : float;
  final_delay : float option;
  supply_current : float;
  degraded_at : int option;
  healing_depth : int option;
}

type flags = {
  stuck : bool;
  excessive_excursion : bool;
  reduced_swing : bool;
  delay_detectable : bool;
  iddq_detectable : bool;
  healed : bool;
}

type outcome = Measured of measurement * flags | Failed of string

type entry = { defect : Defect.t; outcome : outcome }

(* [variants] and [metrics] are telemetry riding alongside the
   deterministic [entries]: per-variant wall time and solver stats for
   the run manifest, and the metrics-registry movement over the whole
   campaign.  They are kept out of [entry] so a parallel run's entries
   stay structurally equal to a sequential run's. *)
type t = {
  reference : measurement;
  entries : entry list;
  variants : Cml_telemetry.Manifest.variant list;
  metrics : Cml_telemetry.Metrics.snapshot;
  utilization : Cml_telemetry.Events.domain_util list;
      (* per-domain busy/idle attribution over the variant phase *)
  wall_s : float;
}

(* The probe set every chain measurement samples: both outputs of each
   stage, the input pair and (when present) the rail supply branch.
   Built against a specific compiled sim because the branch index
   comes from its unknown layout. *)
let chain_probes chain sim =
  let stages = Array.length chain.Cml_cells.Chain.stages in
  let input = chain.Cml_cells.Chain.input in
  let stage_probes =
    List.concat
      (List.init stages (fun i ->
           let d = Cml_cells.Chain.output chain (i + 1) in
           let name = Cml_cells.Chain.stage_name (i + 1) in
           [
             (name ^ ".p", E.node_unknown d.Cml_cells.Builder.p);
             (name ^ ".n", E.node_unknown d.Cml_cells.Builder.n);
           ]))
  in
  ("in.p", E.node_unknown input.Cml_cells.Builder.p)
  :: ("in.n", E.node_unknown input.Cml_cells.Builder.n)
  :: (match E.branch_unknown sim "vdd" with
     | exception Not_found -> stage_probes
     | br -> ("i(vdd)", br) :: stage_probes)

(* Extract the measurement (and the robust chain-output plateau
   levels) from a finished run's streamed probes.  Everything the
   classifier needs comes from the observers, never from the dense
   trajectory — which is what lets batch variants run with
   [record_every = 0]. *)
let analyze_probes ?nominal obs ~stages ~freq ~tstop ~dut =
  let wave name =
    let times, values = T.probe_samples obs name in
    Cml_wave.Wave.create times values
  in
  let t_from = tstop /. 2.0 in
  let supply_current =
    match wave "i(vdd)" with
    | exception Not_found -> 0.0
    | w ->
        let w = Cml_wave.Wave.map Float.abs w in
        Cml_wave.Wave.mean (Cml_wave.Wave.sub_range w ~t_from ~t_to:(Cml_wave.Wave.t_end w))
  in
  let stage_wave i = wave (Cml_cells.Chain.stage_name i ^ ".p") in
  let wp_dut = stage_wave dut and wn_dut = wave (Cml_cells.Chain.stage_name dut ^ ".n") in
  let wp_fin = stage_wave stages and wn_fin = wave (Cml_cells.Chain.stage_name stages ^ ".n") in
  let lo_p, hi_p = Cml_wave.Measure.extremes wp_dut ~t_from in
  let lo_n, hi_n = Cml_wave.Measure.extremes wn_dut ~t_from in
  let lo_fp, hi_fp = Cml_wave.Measure.extremes wp_fin ~t_from in
  let lo_fn, hi_fn = Cml_wave.Measure.extremes wn_fin ~t_from in
  (* delay from the input pair's actual crossing to the final
     output's next actual crossing *)
  let w_in_p = wave "in.p" and w_in_n = wave "in.n" in
  let final_delay =
    match
      List.find_opt (fun t -> t >= t_from) (Cml_wave.Measure.differential_crossings w_in_p w_in_n)
    with
    | None -> None
    | Some t0 -> (
        match
          List.find_opt (fun t -> t > t0)
            (Cml_wave.Measure.differential_crossings wp_fin wn_fin)
        with
        | None -> None
        | Some t1 when t1 -. t0 < 0.75 /. freq -> Some (t1 -. t0)
        | Some _ -> None)
  in
  let degraded_at, healing_depth =
    match nominal with
    | None -> (None, None)
    | Some (nominal_low, nominal_high) ->
        let stage_waves =
          List.init stages (fun i -> (Cml_cells.Chain.stage_name (i + 1), stage_wave (i + 1)))
        in
        let p =
          Cml_wave.Health.profile ~nominal_low ~nominal_high ~t_from stage_waves
        in
        (p.Cml_wave.Health.first_degraded, p.Cml_wave.Health.healing_depth)
  in
  ( {
      dut_vlow = Float.min lo_p lo_n;
      dut_vhigh = Float.max hi_p hi_n;
      dut_swing = hi_p -. lo_p;
      final_vlow = Float.min lo_fp lo_fn;
      final_vhigh = Float.max hi_fp hi_fn;
      final_swing = hi_fp -. lo_fp;
      final_delay;
      supply_current;
      degraded_at;
      healing_depth;
    },
    Cml_wave.Measure.levels wp_fin ~t_from )

let measure_chain_full ?engine_options ?guide ?breakpoints ?(record_every = 1) ?nominal chain
    net ~freq ~tstop ~dut =
  let sim = E.compile ?options:engine_options net in
  let cfg = T.config ~tstop ~max_step:10e-12 ~record_every () in
  let obs = T.observers (chain_probes chain sim) in
  let r = T.run ?guide ?breakpoints ~observers:obs sim net cfg in
  let stages = Array.length chain.Cml_cells.Chain.stages in
  let m, levels = analyze_probes ?nominal obs ~stages ~freq ~tstop ~dut in
  (m, r, levels)

let measure_chain ?engine_options ?guide ?breakpoints ?record_every ?nominal chain net ~freq
    ~tstop ~dut =
  let m, _, _ =
    measure_chain_full ?engine_options ?guide ?breakpoints ?record_every ?nominal chain net
      ~freq ~tstop ~dut
  in
  m

let classify ~proc ~reference m =
  let swing = proc.Cml_cells.Process.swing in
  let stuck = m.final_swing < 0.5 *. swing in
  let excessive_excursion = m.dut_vlow < reference.dut_vlow -. 0.1 in
  let reduced_swing = (not stuck) && m.dut_swing < 0.6 *. swing in
  let delay_detectable =
    match (m.final_delay, reference.final_delay) with
    | Some d, Some d0 -> Float.abs (d -. d0) > 0.2 *. d0
    | None, Some _ -> not stuck  (* toggles but missed the window: gross delay shift *)
    | _, None -> false
  in
  let final_nominal =
    (not stuck)
    && Float.abs (m.final_vlow -. reference.final_vlow) < 0.2 *. swing
    && Float.abs (m.final_vhigh -. reference.final_vhigh) < 0.2 *. swing
    && Float.abs (m.final_swing -. reference.final_swing) < 0.2 *. swing
  in
  let iddq_detectable = m.supply_current > 1.15 *. reference.supply_current in
  let degraded_at_dut = excessive_excursion || reduced_swing || m.dut_vhigh > reference.dut_vhigh +. 0.1 in
  {
    stuck;
    excessive_excursion;
    reduced_swing;
    delay_detectable;
    iddq_detectable;
    healed = degraded_at_dut && final_nominal;
  }

(* Classification labels shared by [summary], the run manifest and
   [cmldft report]: a manifest's class histogram must reproduce the
   summary's counts label for label. *)
let flag_labels f =
  List.filter_map
    (fun (label, on) -> if on then Some label else None)
    [
      ("stuck-at", f.stuck);
      ("excessive-excursion", f.excessive_excursion);
      ("reduced-swing", f.reduced_swing);
      ("delay-detectable", f.delay_detectable);
      ("iddq-detectable", f.iddq_detectable);
      ("healed", f.healed);
    ]

let variant_of_entry entry ~seconds ~stats =
  let classes, meas =
    match entry.outcome with
    | Failed _ -> ([ "failed" ], [])
    | Measured (m, fl) ->
        ( flag_labels fl,
          [
            ("dut_vlow", m.dut_vlow);
            ("dut_swing", m.dut_swing);
            ("final_swing", m.final_swing);
            ("supply_current", m.supply_current);
          ] )
  in
  let healing =
    match entry.outcome with
    | Measured ({ healing_depth = Some d; _ }, _) -> [ ("healing_depth", float_of_int d) ]
    | Measured _ | Failed _ -> []
  in
  let solver =
    match stats with
    | None -> []
    | Some (s : T.stats) ->
        [
          ("accepted_steps", float_of_int s.T.accepted_steps);
          ("rejected_steps", float_of_int s.T.rejected_steps);
          ("lte_rejections", float_of_int s.T.lte_rejections);
          ("newton_iters", float_of_int s.T.newton_iters);
          ("device_loads", float_of_int s.T.device_loads);
          ("bypassed_loads", float_of_int s.T.bypassed_loads);
          ("guided_seeds", float_of_int s.T.guided_seeds);
          ("cold_fallbacks", float_of_int s.T.cold_fallbacks);
        ]
  in
  {
    Cml_telemetry.Manifest.v_name = Defect.describe entry.defect;
    v_classes = classes;
    v_seconds = seconds;
    v_metrics = meas @ healing @ solver;
  }

(* Healing label of one measured entry: how many stages a degraded
   variant needed to recover ("depth=N"), "unhealed" for degradations
   that persist to the chain output, "clean" otherwise.  Shared by the
   manifest histogram and the per-variant run events. *)
let healing_label e =
  match e.outcome with
  | Failed _ -> None
  | Measured (m, _) -> (
      match (m.degraded_at, m.healing_depth) with
      | None, _ -> Some "clean"
      | Some _, Some d -> Some (Printf.sprintf "depth=%d" d)
      | Some _, None -> Some "unhealed")

let healing_histogram entries =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match healing_label e with
      | None -> ()
      | Some l -> Hashtbl.replace tbl l (1 + Option.value ~default:0 (Hashtbl.find_opt tbl l)))
    entries;
  List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl [])

(* The run-event view of a finished variant (index-addressed so the
   stream reassembles in run order whatever domain ran it). *)
let event_variant ~idx entry ~seconds ~stats =
  {
    Cml_telemetry.Events.ev_idx = idx;
    ev_name = Defect.describe entry.defect;
    ev_classes =
      (match entry.outcome with Failed _ -> [ "failed" ] | Measured (_, fl) -> flag_labels fl);
    ev_healing = healing_label entry;
    ev_failed = (match entry.outcome with Failed _ -> true | Measured _ -> false);
    ev_steps = (match stats with Some (s : T.stats) -> s.T.accepted_steps | None -> 0);
    ev_seconds = seconds;
  }

(* Per-domain utilization rows for this run: pool counters diffed
   against the snapshot taken at run start, busy ratio against the
   run's wall clock (also published as gauges). *)
let utilization_rows ~wall_s before =
  List.map
    (fun (dom, (d : Cml_runtime.Pool.domain_stats)) ->
      Cml_telemetry.Events.util_row ~wall_s ~domain:dom ~busy_ns:d.Cml_runtime.Pool.busy_ns
        ~items:d.Cml_runtime.Pool.items ~longest_stall_ns:d.Cml_runtime.Pool.longest_stall_ns)
    (Cml_runtime.Pool.utilization_since before)

let to_manifest ?seed ?(options = []) t =
  let spans = Cml_telemetry.Trace.aggregate (Cml_telemetry.Trace.peek ()) in
  Cml_telemetry.Manifest.create ?seed ~options ~healing:(healing_histogram t.entries)
    ~variants:t.variants ~metrics:t.metrics ~spans ~kind:"campaign" ()

let run ?(proc = Cml_cells.Process.default) ?(freq = 100e6) ?(stages = 8) ?dut ?tstop ?jobs
    ?(preflight = true) ?(warm_start = true) ?(batch = true) ?max_iter ?manifest ~defects () =
  let dut = match dut with Some d -> d | None -> Cml_cells.Chain.dut_stage in
  let tstop = match tstop with Some t -> t | None -> 2.0 /. freq in
  let engine_options =
    Option.map (fun n -> { E.default_options with E.max_iter = n }) max_iter
  in
  let snap0 = Cml_telemetry.Metrics.snapshot () in
  let span = Cml_telemetry.Trace.start () in
  let chain = Cml_cells.Chain.build ~proc ~stages ~freq () in
  let golden = chain.Cml_cells.Chain.builder.Cml_cells.Builder.net in
  if preflight then
    Cml_analysis.Lint.preflight_netlist ~what:"campaign golden netlist" golden;
  (* the stimulus is shared by every variant, and defect injection
     only ever adds resistors and capacitors, so the fault-free
     breakpoint schedule is valid for all of them *)
  let breakpoints = T.collect_breakpoints golden ~tstop in
  let reference, ref_traj, nominal =
    measure_chain_full ?engine_options ~breakpoints chain golden ~freq ~tstop ~dut
  in
  (* the nominal trajectory seeds every variant's Newton solves;
     [T.run] ignores it for variants whose defect changed the unknown
     layout (an open adds a node) and falls back to cold seeding
     whenever the variant diverges from the nominal path *)
  let guide = if warm_start then Some ref_traj else None in
  (* classification reads the streamed probes (every accepted step),
     so variants only keep a thinned dense trajectory — the reference
     keeps all of it because the guide seeds from its rows *)
  let variant_record_every = 8 in
  let run_options =
    [
      ("freq", Printf.sprintf "%g" freq);
      ("stages", string_of_int stages);
      ("dut", string_of_int dut);
      ("tstop", Printf.sprintf "%g" tstop);
      ("warm_start", string_of_bool warm_start);
      ("batch", string_of_bool batch);
      ("defects", string_of_int (List.length defects));
    ]
    @ match max_iter with None -> [] | Some n -> [ ("max_iter", string_of_int n) ]
  in
  let ev_run =
    Cml_telemetry.Events.run_start ~kind:"campaign" ~total:(List.length defects) ?jobs
      ~options:run_options ()
  in
  let util0 = Cml_runtime.Pool.utilization () in
  Cml_runtime.Pool.reset_stall_watermarks ();
  let wall_t0 = Cml_telemetry.Clock.now_ns () in
  let run_one (idx, defect) =
    Cml_telemetry.Progress.variant_start (Defect.describe defect);
    let tok = Cml_telemetry.Trace.start () in
    let t0 = Cml_telemetry.Clock.now_ns () in
    let entry, stats =
      match Inject.apply golden defect with
      | exception (Not_found | Invalid_argument _) ->
          ({ defect; outcome = Failed "injection failed" }, None)
      | faulty -> (
          match
            measure_chain_full ?engine_options ?guide ~breakpoints
              ~record_every:variant_record_every ~nominal chain faulty ~freq ~tstop ~dut
          with
          | m, r, _ ->
              ({ defect; outcome = Measured (m, classify ~proc ~reference m) }, Some r.T.stats)
          | exception E.No_convergence msg -> ({ defect; outcome = Failed msg }, None))
    in
    let seconds = Cml_telemetry.Clock.ns_to_s (Int64.sub (Cml_telemetry.Clock.now_ns ()) t0) in
    Cml_telemetry.Trace.finish ~cat:"campaign"
      ~args:
        (if tok >= 0L then [ ("defect", Cml_telemetry.Trace.S (Defect.describe defect)) ]
         else [])
      "variant" tok;
    Cml_telemetry.Progress.variant_finish
      ~failed:(match entry.outcome with Failed _ -> true | Measured _ -> false);
    Cml_telemetry.Events.variant_done ev_run (event_variant ~idx entry ~seconds ~stats);
    (entry, variant_of_entry entry ~seconds ~stats)
  in
  (* Batch scheduling: a contiguous slice of defects becomes one
     lockstep lane batch ({!Cml_spice.Transient.run_batch}) — lanes
     advance through the shared macro grid together, diverging lanes
     retire early, and each lane's classification still reads its own
     streamed probes.  Lanes are grouped by unknown layout inside a
     slice because a batch shares one flat state plane (an
     Open_terminal variant adds a node and gets its own group).
     Variants keep no dense trajectory at all ([record_every = 0]):
     classification is pure probe work.  Per-variant [v_seconds] is
     the batch wall time amortised over its lanes. *)
  let stages_count = Array.length chain.Cml_cells.Chain.stages in
  let cfg_batch = T.config ~tstop ~max_step:10e-12 ~record_every:0 () in
  let run_slice (idefs : (int * Defect.t) array) =
    let defs = Array.map snd idefs in
    let n = Array.length defs in
    (* lockstep lanes genuinely are all in flight at once *)
    Array.iter (fun d -> Cml_telemetry.Progress.variant_start (Defect.describe d)) defs;
    let tok = Cml_telemetry.Trace.start () in
    let t0 = Cml_telemetry.Clock.now_ns () in
    let sims =
      Array.map
        (fun defect ->
          match Inject.apply golden defect with
          | exception (Not_found | Invalid_argument _) -> None
          | faulty -> Some (E.compile ?options:engine_options faulty))
        defs
    in
    let entries =
      Array.map (fun defect -> { defect; outcome = Failed "injection failed" }) defs
    in
    let statsv = Array.make n None in
    let groups = Hashtbl.create 4 in
    Array.iteri
      (fun i sim ->
        match sim with
        | None -> ()
        | Some s ->
            let w = E.unknown_count s in
            Hashtbl.replace groups w (i :: Option.value ~default:[] (Hashtbl.find_opt groups w)))
      sims;
    Hashtbl.iter
      (fun _w rev_idxs ->
        let idxs = Array.of_list (List.rev rev_idxs) in
        let obs =
          Array.map (fun i -> T.observers (chain_probes chain (Option.get sims.(i)))) idxs
        in
        let lanes = Array.mapi (fun k i -> (Option.get sims.(i), Some obs.(k))) idxs in
        let results = T.run_batch ?guide ~breakpoints lanes golden cfg_batch in
        Array.iteri
          (fun k i ->
            let defect = defs.(i) in
            match results.(k) with
            | T.Lane_done r ->
                let m, _ = analyze_probes ~nominal obs.(k) ~stages:stages_count ~freq ~tstop ~dut in
                entries.(i) <- { defect; outcome = Measured (m, classify ~proc ~reference m) };
                statsv.(i) <- Some r.T.stats
            | T.Lane_failed msg -> entries.(i) <- { defect; outcome = Failed msg }
            | T.Lane_incompatible ->
                (* unreachable: lanes are grouped by layout above *)
                entries.(i) <- { defect; outcome = Failed "incompatible lane layout" })
          idxs)
      groups;
    let seconds = Cml_telemetry.Clock.ns_to_s (Int64.sub (Cml_telemetry.Clock.now_ns ()) t0) in
    Cml_telemetry.Trace.finish ~cat:"campaign"
      ~args:(if tok >= 0L then [ ("lanes", Cml_telemetry.Trace.I n) ] else [])
      "variant_batch" tok;
    let per_lane = seconds /. float_of_int (max 1 n) in
    Array.mapi
      (fun i e ->
        Cml_telemetry.Progress.variant_finish
          ~failed:(match e.outcome with Failed _ -> true | Measured _ -> false);
        Cml_telemetry.Events.variant_done ev_run
          (event_variant ~idx:(fst idefs.(i)) e ~seconds:per_lane ~stats:statsv.(i));
        (e, variant_of_entry e ~seconds:per_lane ~stats:statsv.(i)))
      entries
  in
  (* one compiled sim per defect ([Inject.apply] copies the netlist,
     [measure_chain_full] compiles its own engine), so tasks share
     only read-only state and can run on worker domains *)
  let indexed = List.mapi (fun i d -> (i, d)) defects in
  let results =
    if batch then
      Array.to_list
        (Cml_runtime.Pool.parallel_map_batches ?jobs ~max_batch:16 run_slice
           (Array.of_list indexed))
    else Cml_runtime.Pool.parallel_list_map ?jobs run_one indexed
  in
  Cml_telemetry.Trace.finish ~cat:"campaign" "campaign" span;
  let wall_s = Cml_telemetry.Clock.ns_to_s (Int64.sub (Cml_telemetry.Clock.now_ns ()) wall_t0) in
  let utilization = utilization_rows ~wall_s util0 in
  let metrics = Cml_telemetry.Metrics.diff snap0 (Cml_telemetry.Metrics.snapshot ()) in
  let t =
    {
      reference;
      entries = List.map fst results;
      variants = List.map snd results;
      metrics;
      utilization;
      wall_s;
    }
  in
  Cml_telemetry.Events.finish ev_run
    ~classes:(Cml_telemetry.Manifest.class_histogram (to_manifest t))
    ~wall_s ~utilization;
  (match manifest with
  | None -> ()
  | Some path -> Cml_telemetry.Manifest.write ~path (to_manifest ~options:run_options t));
  t

(* ------------------------------------------------------------------ *)
(* Compiled-design campaigns: the same classification machinery on an
   arbitrary CML netlist — typically a [.bench] circuit compiled by
   {!Cml_cells.Compile} — probing the attacked cell's output pair, one
   primary output and the supply branch.  There is no stage chain, so
   the healing profile is not computed ([degraded_at] and
   [healing_depth] stay [None]). *)

let design_probes ~input ~dut ~final sim =
  let base =
    [
      ("in.p", E.node_unknown input.Cml_cells.Builder.p);
      ("in.n", E.node_unknown input.Cml_cells.Builder.n);
      ("dut.p", E.node_unknown dut.Cml_cells.Builder.p);
      ("dut.n", E.node_unknown dut.Cml_cells.Builder.n);
      ("fin.p", E.node_unknown final.Cml_cells.Builder.p);
      ("fin.n", E.node_unknown final.Cml_cells.Builder.n);
    ]
  in
  match E.branch_unknown sim "vdd" with
  | exception Not_found -> base
  | br -> ("i(vdd)", br) :: base

let analyze_design_probes obs ~freq ~tstop =
  let wave name =
    let times, values = T.probe_samples obs name in
    Cml_wave.Wave.create times values
  in
  let t_from = tstop /. 2.0 in
  let supply_current =
    match wave "i(vdd)" with
    | exception Not_found -> 0.0
    | w ->
        let w = Cml_wave.Wave.map Float.abs w in
        Cml_wave.Wave.mean (Cml_wave.Wave.sub_range w ~t_from ~t_to:(Cml_wave.Wave.t_end w))
  in
  let wp_dut = wave "dut.p" and wn_dut = wave "dut.n" in
  let wp_fin = wave "fin.p" and wn_fin = wave "fin.n" in
  let lo_p, hi_p = Cml_wave.Measure.extremes wp_dut ~t_from in
  let lo_n, hi_n = Cml_wave.Measure.extremes wn_dut ~t_from in
  let lo_fp, hi_fp = Cml_wave.Measure.extremes wp_fin ~t_from in
  let lo_fn, hi_fn = Cml_wave.Measure.extremes wn_fin ~t_from in
  let w_in_p = wave "in.p" and w_in_n = wave "in.n" in
  let final_delay =
    match
      List.find_opt (fun t -> t >= t_from) (Cml_wave.Measure.differential_crossings w_in_p w_in_n)
    with
    | None -> None
    | Some t0 -> (
        match
          List.find_opt (fun t -> t > t0)
            (Cml_wave.Measure.differential_crossings wp_fin wn_fin)
        with
        | None -> None
        | Some t1 when t1 -. t0 < 0.75 /. freq -> Some (t1 -. t0)
        | Some _ -> None)
  in
  {
    dut_vlow = Float.min lo_p lo_n;
    dut_vhigh = Float.max hi_p hi_n;
    dut_swing = hi_p -. lo_p;
    final_vlow = Float.min lo_fp lo_fn;
    final_vhigh = Float.max hi_fp hi_fn;
    final_swing = hi_fp -. lo_fp;
    final_delay;
    supply_current;
    degraded_at = None;
    healing_depth = None;
  }

let measure_design_full ?engine_options ?guide ?breakpoints ?(record_every = 1) ~probes net
    ~freq ~tstop =
  let sim = E.compile ?options:engine_options net in
  let cfg = T.config ~tstop ~max_step:10e-12 ~record_every () in
  let obs = T.observers (probes sim) in
  let r = T.run ?guide ?breakpoints ~observers:obs sim net cfg in
  (analyze_design_probes obs ~freq ~tstop, r)

let run_design ?(proc = Cml_cells.Process.default) ?(freq = 100e6) ?tstop ?jobs
    ?(preflight = true) ?(warm_start = true) ?(batch = true) ?max_iter ?manifest
    ?(options = []) ~golden ~input ~dut ~final ~defects () =
  let tstop = match tstop with Some t -> t | None -> 2.0 /. freq in
  let engine_options =
    Option.map (fun n -> { E.default_options with E.max_iter = n }) max_iter
  in
  let snap0 = Cml_telemetry.Metrics.snapshot () in
  let span = Cml_telemetry.Trace.start () in
  if preflight then
    Cml_analysis.Lint.preflight_netlist ~what:"campaign golden netlist" golden;
  let probes = design_probes ~input ~dut ~final in
  let breakpoints = T.collect_breakpoints golden ~tstop in
  let reference, ref_traj =
    measure_design_full ?engine_options ~breakpoints ~probes golden ~freq ~tstop
  in
  let guide = if warm_start then Some ref_traj else None in
  let variant_record_every = 8 in
  let run_options =
    options
    @ [
        ("freq", Printf.sprintf "%g" freq);
        ("tstop", Printf.sprintf "%g" tstop);
        ("warm_start", string_of_bool warm_start);
        ("batch", string_of_bool batch);
        ("defects", string_of_int (List.length defects));
      ]
    @ match max_iter with None -> [] | Some n -> [ ("max_iter", string_of_int n) ]
  in
  let ev_run =
    Cml_telemetry.Events.run_start ~kind:"campaign" ~total:(List.length defects) ?jobs
      ~options:run_options ()
  in
  let util0 = Cml_runtime.Pool.utilization () in
  Cml_runtime.Pool.reset_stall_watermarks ();
  let wall_t0 = Cml_telemetry.Clock.now_ns () in
  let run_one (idx, defect) =
    Cml_telemetry.Progress.variant_start (Defect.describe defect);
    let tok = Cml_telemetry.Trace.start () in
    let t0 = Cml_telemetry.Clock.now_ns () in
    let entry, stats =
      match Inject.apply golden defect with
      | exception (Not_found | Invalid_argument _) ->
          ({ defect; outcome = Failed "injection failed" }, None)
      | faulty -> (
          match
            measure_design_full ?engine_options ?guide ~breakpoints
              ~record_every:variant_record_every ~probes faulty ~freq ~tstop
          with
          | m, r ->
              ({ defect; outcome = Measured (m, classify ~proc ~reference m) }, Some r.T.stats)
          | exception E.No_convergence msg -> ({ defect; outcome = Failed msg }, None))
    in
    let seconds = Cml_telemetry.Clock.ns_to_s (Int64.sub (Cml_telemetry.Clock.now_ns ()) t0) in
    Cml_telemetry.Trace.finish ~cat:"campaign"
      ~args:
        (if tok >= 0L then [ ("defect", Cml_telemetry.Trace.S (Defect.describe defect)) ]
         else [])
      "variant" tok;
    Cml_telemetry.Progress.variant_finish
      ~failed:(match entry.outcome with Failed _ -> true | Measured _ -> false);
    Cml_telemetry.Events.variant_done ev_run (event_variant ~idx entry ~seconds ~stats);
    (entry, variant_of_entry entry ~seconds ~stats)
  in
  (* Batched slices mirror [run]: lanes grouped by unknown layout run
     in lockstep through one shared macro grid, and — because every
     lane of a group shares lane 0's sparse symbolic analysis
     ({!Cml_spice.Engine.share_symbolic}) — one column ordering and
     one pattern analysis serve the whole group. *)
  let cfg_batch = T.config ~tstop ~max_step:10e-12 ~record_every:0 () in
  let run_slice (idefs : (int * Defect.t) array) =
    let defs = Array.map snd idefs in
    let n = Array.length defs in
    (* lockstep lanes genuinely are all in flight at once *)
    Array.iter (fun d -> Cml_telemetry.Progress.variant_start (Defect.describe d)) defs;
    let tok = Cml_telemetry.Trace.start () in
    let t0 = Cml_telemetry.Clock.now_ns () in
    let sims =
      Array.map
        (fun defect ->
          match Inject.apply golden defect with
          | exception (Not_found | Invalid_argument _) -> None
          | faulty -> Some (E.compile ?options:engine_options faulty))
        defs
    in
    let entries =
      Array.map (fun defect -> { defect; outcome = Failed "injection failed" }) defs
    in
    let statsv = Array.make n None in
    let groups = Hashtbl.create 4 in
    Array.iteri
      (fun i sim ->
        match sim with
        | None -> ()
        | Some s ->
            let w = E.unknown_count s in
            Hashtbl.replace groups w (i :: Option.value ~default:[] (Hashtbl.find_opt groups w)))
      sims;
    Hashtbl.iter
      (fun _w rev_idxs ->
        let idxs = Array.of_list (List.rev rev_idxs) in
        let obs = Array.map (fun i -> T.observers (probes (Option.get sims.(i)))) idxs in
        let lanes = Array.mapi (fun k i -> (Option.get sims.(i), Some obs.(k))) idxs in
        let results = T.run_batch ?guide ~breakpoints lanes golden cfg_batch in
        Array.iteri
          (fun k i ->
            let defect = defs.(i) in
            match results.(k) with
            | T.Lane_done r ->
                let m = analyze_design_probes obs.(k) ~freq ~tstop in
                entries.(i) <- { defect; outcome = Measured (m, classify ~proc ~reference m) };
                statsv.(i) <- Some r.T.stats
            | T.Lane_failed msg -> entries.(i) <- { defect; outcome = Failed msg }
            | T.Lane_incompatible ->
                (* unreachable: lanes are grouped by layout above *)
                entries.(i) <- { defect; outcome = Failed "incompatible lane layout" })
          idxs)
      groups;
    let seconds = Cml_telemetry.Clock.ns_to_s (Int64.sub (Cml_telemetry.Clock.now_ns ()) t0) in
    Cml_telemetry.Trace.finish ~cat:"campaign"
      ~args:(if tok >= 0L then [ ("lanes", Cml_telemetry.Trace.I n) ] else [])
      "variant_batch" tok;
    let per_lane = seconds /. float_of_int (max 1 n) in
    Array.mapi
      (fun i e ->
        Cml_telemetry.Progress.variant_finish
          ~failed:(match e.outcome with Failed _ -> true | Measured _ -> false);
        Cml_telemetry.Events.variant_done ev_run
          (event_variant ~idx:(fst idefs.(i)) e ~seconds:per_lane ~stats:statsv.(i));
        (e, variant_of_entry e ~seconds:per_lane ~stats:statsv.(i)))
      entries
  in
  let indexed = List.mapi (fun i d -> (i, d)) defects in
  let results =
    if batch then
      Array.to_list
        (Cml_runtime.Pool.parallel_map_batches ?jobs ~max_batch:16 run_slice
           (Array.of_list indexed))
    else Cml_runtime.Pool.parallel_list_map ?jobs run_one indexed
  in
  Cml_telemetry.Trace.finish ~cat:"campaign" "campaign" span;
  let wall_s = Cml_telemetry.Clock.ns_to_s (Int64.sub (Cml_telemetry.Clock.now_ns ()) wall_t0) in
  let utilization = utilization_rows ~wall_s util0 in
  let metrics = Cml_telemetry.Metrics.diff snap0 (Cml_telemetry.Metrics.snapshot ()) in
  let t =
    {
      reference;
      entries = List.map fst results;
      variants = List.map snd results;
      metrics;
      utilization;
      wall_s;
    }
  in
  Cml_telemetry.Events.finish ev_run
    ~classes:(Cml_telemetry.Manifest.class_histogram (to_manifest t))
    ~wall_s ~utilization;
  (match manifest with
  | None -> ()
  | Some path -> Cml_telemetry.Manifest.write ~path (to_manifest ~options:run_options t));
  t

let summary t =
  let count p = List.length (List.filter p t.entries) in
  let flagged f = count (fun e -> match e.outcome with Measured (_, fl) -> f fl | Failed _ -> false) in
  [
    ("defects", List.length t.entries);
    ("stuck-at", flagged (fun f -> f.stuck));
    ("excessive-excursion", flagged (fun f -> f.excessive_excursion));
    ("excursion-not-stuck", flagged (fun f -> f.excessive_excursion && not f.stuck));
    ("reduced-swing", flagged (fun f -> f.reduced_swing));
    ("delay-detectable", flagged (fun f -> f.delay_detectable));
    ("iddq-detectable", flagged (fun f -> f.iddq_detectable));
    ("healed", flagged (fun f -> f.healed));
    ( "benign",
      flagged (fun f ->
          not (f.stuck || f.excessive_excursion || f.reduced_swing || f.delay_detectable)) );
    ("failed", count (fun e -> match e.outcome with Failed _ -> true | Measured _ -> false));
  ]
