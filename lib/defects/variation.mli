(** Parametric process variation: perturb every passive value and
    transistor model in a netlist with lognormal mismatch, for
    Monte-Carlo analysis of the DFT scheme — in particular the
    paper's guarantee that "a fault free gate will never be wrongly
    declared defective" must survive realistic process spread. *)

type spec = {
  resistor_sigma : float;  (** relative sigma of every resistance *)
  capacitor_sigma : float;
  is_sigma : float;  (** saturation-current spread (dominates VBE mismatch) *)
  beta_sigma : float;
}

val default_spec : spec
(** 2% resistors, 5% capacitors, 5% Is, 10% beta.  The Is spread is
    the *local mismatch* number: the paper's environment-independent
    bias generator tracks the global Is/VBE shift of the die, so only
    device-to-device mismatch reaches the detector margins. *)

val tight_spec : spec
(** A quarter of the default sigmas. *)

val perturb : ?spec:spec -> seed:int -> Cml_spice.Netlist.t -> Cml_spice.Netlist.t
(** A perturbed deep copy; deterministic in [seed].  Independent
    sources and controlled-source gains are left untouched (they
    model ideal test equipment). *)
