(** Enumeration of candidate defect sites in a circuit, mirroring the
    defect classes the paper simulates in section 5: transistor
    pipes, transistor node opens and shorts, bridges between the
    differential outputs, wire opens, resistor shorts and opens. *)

val enumerate :
  ?pipe_values:float list ->
  Cml_spice.Netlist.t ->
  prefix:string ->
  Defect.t list
(** All candidate defects for the devices whose name starts with
    [prefix ^ "."]: for each BJT a C-E pipe per resistance in
    [pipe_values] (default [[4e3]]), C-E / B-E / B-C shorts and an
    open per terminal; for each resistor a short and an open.  If the
    instance has both [<prefix>.op] and [<prefix>.on] nodes, an
    output bridge is included. *)
