(** Device-level defect models for bipolar CML, following the paper's
    section 3/5 recipe: shorts and bridges are ~1 ohm resistors, opens
    split a connection and bridge it with 100 Mohm in parallel with
    1 fF, and a pipe is a resistor of a few kilo-ohms between a
    transistor's collector and emitter. *)

type t =
  | Pipe of { device : string; r : float }
      (** collector-emitter pipe on a BJT (the paper's marquee defect
          on the current-source transistor Q3) *)
  | Terminal_short of { device : string; t1 : string; t2 : string }
      (** ~1 ohm short between two terminals of one device, e.g. C-E
          of Q2 (the paper's Figure 2 stuck-at example) *)
  | Bridge of { node1 : string; node2 : string; r : float }
      (** resistive short between two named nodes *)
  | Open_terminal of { device : string; terminal : string }
      (** severed connection at a device terminal *)
  | Resistor_short of { device : string }
      (** resistor body shorted to ~1 ohm *)
  | Resistor_open of { device : string }
      (** resistor strip severed: 100 Mohm in parallel with 1 fF *)

val short_resistance : float
(** 1 ohm. *)

val open_resistance : float
(** 100 Mohm. *)

val open_capacitance : float
(** 1 fF. *)

val describe : t -> string
(** One-line human-readable description. *)
