(** Injection of a defect into a netlist by structural
    transformation.  The input netlist is never modified: injection
    works on a copy, so one golden circuit serves a whole campaign. *)

val apply : Cml_spice.Netlist.t -> Defect.t -> Cml_spice.Netlist.t
(** Return a faulty copy of the netlist.  Added devices are named
    ["defect.*"].
    @raise Not_found if the defect references an unknown device,
    terminal or node.
    @raise Invalid_argument if the defect kind does not match the
    device kind (e.g. [Resistor_short] on a transistor). *)
