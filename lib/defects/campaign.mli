(** Defect-injection campaigns on the paper's buffer-chain test
    circuit (Figure 3): simulate every candidate defect, measure the
    device-under-test and chain outputs, and classify the fault
    behaviour.  This reproduces the section-5 observations — many
    defects map into abnormal output excursions rather than stuck-at
    faults, and excursions heal after a few stages. *)

type measurement = {
  dut_vlow : float;  (** lowest voltage at either DUT output *)
  dut_vhigh : float;  (** highest voltage at either DUT output *)
  dut_swing : float;  (** single-ended swing at the DUT true output *)
  final_vlow : float;
  final_vhigh : float;
  final_swing : float;
  final_delay : float option;  (** input-to-final-output delay at actual crossings *)
  supply_current : float;  (** mean magnitude of the rail supply current (A) *)
  degraded_at : int option;
      (** 1-based stage of the first out-of-tolerance waveform
          ({!Cml_wave.Health.profile}); [None] when every stage is
          within tolerance of the nominal levels, or when no nominal
          levels were supplied (the reference run itself) *)
  healing_depth : int option;
      (** stages the abnormal excursion needs to recover — the paper's
          section-5 healing observation, quantified; [None] when
          nothing is degraded or the degradation persists to the chain
          output *)
}

type flags = {
  stuck : bool;  (** chain output no longer toggles: classic stuck-at testable *)
  excessive_excursion : bool;
      (** DUT output goes well below the nominal low level — the fault
          class the paper's detectors target *)
  reduced_swing : bool;  (** DUT swing collapsed but the chain still toggles *)
  delay_detectable : bool;  (** chain delay shifted by more than 20% *)
  iddq_detectable : bool;
      (** supply current elevated by more than 15% over the fault-free
          chain — the Iddq fault class of the paper's section 1 *)
  healed : bool;  (** degraded at the DUT yet nominal at the chain output *)
}

type outcome = Measured of measurement * flags | Failed of string

type entry = { defect : Defect.t; outcome : outcome }

type t = {
  reference : measurement;  (** fault-free chain measurement *)
  entries : entry list;
  variants : Cml_telemetry.Manifest.variant list;
      (** per-variant telemetry (wall time, transient stats), aligned
          with [entries]; kept outside [entry] so parallel and
          sequential runs produce structurally equal entries *)
  metrics : Cml_telemetry.Metrics.snapshot;
      (** metrics-registry movement over this campaign *)
  utilization : Cml_telemetry.Events.domain_util list;
      (** per-domain busy/idle attribution (busy seconds, items,
          longest stall, busy ratio against [wall_s]) over the variant
          phase — the end-of-run utilization table *)
  wall_s : float;  (** wall clock of the variant phase *)
}

val measure_chain :
  ?engine_options:Cml_spice.Engine.options ->
  ?guide:Cml_spice.Transient.result ->
  ?breakpoints:float array ->
  ?record_every:int ->
  ?nominal:float * float ->
  Cml_cells.Chain.t -> Cml_spice.Netlist.t -> freq:float -> tstop:float -> dut:int ->
  measurement
(** Simulate the given (possibly faulty) netlist of a chain and
    extract the measurement.  [engine_options] compiles the sim with
    non-default solver options ({!run}'s [max_iter] stress knob);
    [guide] and [breakpoints] are passed to
    {!Cml_spice.Transient.run}: a campaign measures the fault-free
    chain once and warm-starts every variant from its trajectory.

    All measurements are taken from streaming observers
    ({!Cml_spice.Transient.observers}), which see every accepted step
    — so [record_every > 1] (default 1) merely thins the retained
    dense trajectory without aliasing the excursion extremes the
    classifier keys on.  [nominal] supplies the fault-free chain
    output's plateau levels; when present, the per-stage healing
    profile ({!Cml_wave.Health.profile}) fills [degraded_at] /
    [healing_depth], otherwise both are [None].
    @raise Engine.No_convergence on solver failure (callers of {!run}
    get it folded into [Failed]). *)

val run :
  ?proc:Cml_cells.Process.t ->
  ?freq:float ->
  ?stages:int ->
  ?dut:int ->
  ?tstop:float ->
  ?jobs:int ->
  ?preflight:bool ->
  ?warm_start:bool ->
  ?batch:bool ->
  ?max_iter:int ->
  ?manifest:string ->
  defects:Defect.t list ->
  unit ->
  t
(** Full campaign at [freq] (default 100 MHz) on a chain of [stages]
    (default 8) with the defect in stage [dut] (default 3).  The
    defect list normally comes from {!Sites.enumerate} on the DUT
    instance.  Defects are simulated in parallel over [jobs] domains
    (default: [CML_DFT_JOBS] or cores - 1; see
    {!Cml_runtime.Pool.default_jobs}); results are deterministic and
    identical to a [jobs = 1] run.

    Unless [preflight] is [false] (or [CML_DFT_NO_PREFLIGHT] is set),
    the fault-free netlist is linted first and
    [Cml_analysis.Lint.Preflight_failed] is raised — with the rule
    citations — instead of starting a doomed simulation batch.

    Unless [warm_start] is [false], the fault-free chain is simulated
    once and its trajectory warm-starts every defect variant (DC from
    the nominal operating point, each step's Newton from the nearest
    nominal snapshot); classification results are unaffected — a
    variant that rejects the nominal seed falls back to cold
    seeding.

    Unless [batch] is [false], variants run through the
    variant-lockstep batch scheduler
    ({!Cml_spice.Transient.run_batch}): contiguous slices of the
    defect list advance through a shared macro time grid as lanes of
    one batch (grouped by unknown layout within a slice), with
    diverging lanes retiring early.  Classification results match the
    scalar path — both read the same streamed probes — but variant
    trajectories are not bit-identical step for step, and per-variant
    [v_seconds] telemetry is the batch wall time amortised over its
    lanes.  [batch = false] keeps the classic one-transient-per-defect
    path (the parity oracle in tests).

    [max_iter] caps Newton iterations per solve (default: the engine's
    100) for every compiled sim of the run, reference included — a
    stress knob that makes marginal defects fail solves visibly for
    the introspection pipeline.  When given it is recorded in the run
    options (key ["max_iter"]), so [cmldft explain] re-simulates under
    the same cap.

    [manifest] writes a {!Cml_telemetry.Manifest} JSON document to the
    given path after the run (options, per-variant classification and
    solver metrics, registry delta, span summary). *)

val run_design :
  ?proc:Cml_cells.Process.t ->
  ?freq:float ->
  ?tstop:float ->
  ?jobs:int ->
  ?preflight:bool ->
  ?warm_start:bool ->
  ?batch:bool ->
  ?max_iter:int ->
  ?manifest:string ->
  ?options:(string * string) list ->
  golden:Cml_spice.Netlist.t ->
  input:Cml_cells.Builder.diff ->
  dut:Cml_cells.Builder.diff ->
  final:Cml_cells.Builder.diff ->
  defects:Defect.t list ->
  unit ->
  t
(** Campaign on an arbitrary compiled CML design — typically a
    [.bench] circuit compiled by {!Cml_cells.Compile} — instead of
    the built-in buffer chain.  [input] is the toggling stimulus
    pair (delay reference), [dut] the attacked cell's output pair
    and [final] the primary output whose swing decides the stuck-at
    class.  Semantics of [warm_start], [batch], [jobs], [preflight],
    [max_iter] and [manifest] match {!run}; [options] prepends caller context
    (e.g. the bench path) to the manifest options.  There is no
    stage chain, so measurements carry no healing profile
    ([degraded_at] and [healing_depth] are [None]) and the manifest's
    healing histogram reads "clean".  Batched lanes of one layout
    group additionally share one sparse symbolic analysis
    ({!Cml_spice.Engine.share_symbolic}): the campaign pays for one
    column ordering per group, not one per defect. *)

val to_manifest : ?seed:int -> ?options:(string * string) list -> t -> Cml_telemetry.Manifest.t
(** The run manifest [?manifest] writes; exposed so callers can stamp
    their own options / seed and choose the path. *)

val classify :
  proc:Cml_cells.Process.t -> reference:measurement -> measurement -> flags

val flag_labels : flags -> string list
(** The classification labels that are set, using the same vocabulary
    as {!summary} and the run manifest ("stuck-at",
    "excessive-excursion", ...); the diagnosis pipeline re-uses these
    to describe a flagged entry. *)

val healing_histogram : entry list -> (string * int) list
(** Healing-depth histogram over the measured entries: "clean" (never
    degraded), "depth=N" (recovered after N stages), "unhealed"
    (degradation persists to the chain output).  Failed entries are
    skipped.  This is the [healing] section {!to_manifest} embeds. *)

val summary : t -> (string * int) list
(** Histogram of the observed fault classes, for reporting: counts of
    stuck / excessive-excursion / healed / delay-detectable /
    benign / failed. *)
