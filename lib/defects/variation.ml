module N = Cml_spice.Netlist
module M = Cml_spice.Models

type spec = {
  resistor_sigma : float;
  capacitor_sigma : float;
  is_sigma : float;
  beta_sigma : float;
}

let default_spec =
  { resistor_sigma = 0.02; capacitor_sigma = 0.05; is_sigma = 0.05; beta_sigma = 0.10 }

let tight_spec =
  {
    resistor_sigma = 0.005;
    capacitor_sigma = 0.0125;
    is_sigma = 0.0375;
    beta_sigma = 0.025;
  }

(* lognormal multiplier exp(sigma * gauss): always positive, mean ~1 *)
let factor st sigma =
  if sigma <= 0.0 then 1.0
  else begin
    let rec gauss () =
      let u1 = Random.State.float st 1.0 in
      if u1 <= 1e-12 then gauss ()
      else begin
        let u2 = Random.State.float st 1.0 in
        sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
      end
    in
    exp (sigma *. gauss ())
  end

let perturb ?(spec = default_spec) ~seed net =
  let st = Random.State.make [| seed; 0x5EED |] in
  let out = N.copy net in
  N.iter_devices net (fun d ->
      match d with
      | N.Resistor ({ name; r; _ } as dev) ->
          N.set_device out name (N.Resistor { dev with r = r *. factor st spec.resistor_sigma })
      | N.Capacitor ({ name; c; _ } as dev) ->
          N.set_device out name (N.Capacitor { dev with c = c *. factor st spec.capacitor_sigma })
      | N.Bjt ({ name; model; _ } as dev) ->
          let model =
            {
              model with
              M.q_is = model.M.q_is *. factor st spec.is_sigma;
              M.q_bf = model.M.q_bf *. factor st spec.beta_sigma;
            }
          in
          N.set_device out name (N.Bjt { dev with model })
      | N.Diode ({ name; model; _ } as dev) ->
          let model = { model with M.d_is = model.M.d_is *. factor st spec.is_sigma } in
          N.set_device out name (N.Diode { dev with model })
      | N.Vsource _ | N.Isource _ | N.Vcvs _ | N.Vccs _ -> ());
  out
