module N = Cml_spice.Netlist

let enumerate ?(pipe_values = [ 4e3 ]) net ~prefix =
  let dot_prefix = prefix ^ "." in
  let starts_with s = String.length s >= String.length dot_prefix
    && String.sub s 0 (String.length dot_prefix) = dot_prefix
  in
  let acc = ref [] in
  let add d = acc := d :: !acc in
  N.iter_devices net (fun d ->
      let name = N.device_name d in
      if starts_with name then begin
        match d with
        | N.Bjt { emitters; _ } ->
            List.iter (fun r -> add (Defect.Pipe { device = name; r })) pipe_values;
            let e_term = if Array.length emitters = 1 then "e" else "e0" in
            add (Defect.Terminal_short { device = name; t1 = "c"; t2 = e_term });
            add (Defect.Terminal_short { device = name; t1 = "b"; t2 = e_term });
            add (Defect.Terminal_short { device = name; t1 = "b"; t2 = "c" });
            List.iter
              (fun terminal -> add (Defect.Open_terminal { device = name; terminal }))
              [ "c"; "b"; e_term ]
        | N.Resistor _ ->
            add (Defect.Resistor_short { device = name });
            add (Defect.Resistor_open { device = name })
        | N.Capacitor _ | N.Diode _ | N.Vsource _ | N.Isource _ | N.Vcvs _ | N.Vccs _ -> ()
      end);
  let op = prefix ^ ".op" and on = prefix ^ ".on" in
  (match (N.find_node net op, N.find_node net on) with
  | Some _, Some _ ->
      add (Defect.Bridge { node1 = op; node2 = on; r = Defect.short_resistance })
  | None, _ | _, None -> ());
  List.rev !acc
