type t = { mutable a : float array; mutable len : int }

let create () = { a = Array.make 256 0.0; len = 0 }

let length b = b.len

let push b v =
  if b.len = Array.length b.a then begin
    let bigger = Array.make (2 * b.len) 0.0 in
    Array.blit b.a 0 bigger 0 b.len;
    b.a <- bigger
  end;
  b.a.(b.len) <- v;
  b.len <- b.len + 1

let get b i =
  assert (i >= 0 && i < b.len);
  b.a.(i)

let to_array b = Array.sub b.a 0 b.len
