type t = { n : int; re : float array; im : float array }

exception Singular of int

let create n = { n; re = Array.make (n * n) 0.0; im = Array.make (n * n) 0.0 }

let dim m = m.n

let clear m =
  Array.fill m.re 0 (m.n * m.n) 0.0;
  Array.fill m.im 0 (m.n * m.n) 0.0

let add_entry m i j ~re ~im =
  let k = (i * m.n) + j in
  m.re.(k) <- m.re.(k) +. re;
  m.im.(k) <- m.im.(k) +. im

let mag2 re im = (re *. re) +. (im *. im)

(* complex division: (ar + j ai) / (br + j bi) *)
let cdiv ar ai br bi =
  let d = mag2 br bi in
  (((ar *. br) +. (ai *. bi)) /. d, ((ai *. br) -. (ar *. bi)) /. d)

let solve m ~b_re ~b_im =
  let n = m.n in
  assert (Array.length b_re = n && Array.length b_im = n);
  let re = Array.copy m.re and im = Array.copy m.im in
  let xr = Array.copy b_re and xi = Array.copy b_im in
  let idx i j = (i * n) + j in
  for k = 0 to n - 1 do
    (* partial pivot on magnitude *)
    let best = ref k and best_mag = ref (mag2 re.(idx k k) im.(idx k k)) in
    for i = k + 1 to n - 1 do
      let mg = mag2 re.(idx i k) im.(idx i k) in
      if mg > !best_mag then begin
        best := i;
        best_mag := mg
      end
    done;
    if !best_mag < 1e-26 then raise (Singular k);
    if !best <> k then begin
      for j = 0 to n - 1 do
        let t = re.(idx k j) in
        re.(idx k j) <- re.(idx !best j);
        re.(idx !best j) <- t;
        let t = im.(idx k j) in
        im.(idx k j) <- im.(idx !best j);
        im.(idx !best j) <- t
      done;
      let t = xr.(k) in
      xr.(k) <- xr.(!best);
      xr.(!best) <- t;
      let t = xi.(k) in
      xi.(k) <- xi.(!best);
      xi.(!best) <- t
    end;
    let pr = re.(idx k k) and pi = im.(idx k k) in
    for i = k + 1 to n - 1 do
      let fr, fi = cdiv re.(idx i k) im.(idx i k) pr pi in
      if fr <> 0.0 || fi <> 0.0 then begin
        for j = k + 1 to n - 1 do
          let ar = re.(idx k j) and ai = im.(idx k j) in
          re.(idx i j) <- re.(idx i j) -. ((fr *. ar) -. (fi *. ai));
          im.(idx i j) <- im.(idx i j) -. ((fr *. ai) +. (fi *. ar))
        done;
        xr.(i) <- xr.(i) -. ((fr *. xr.(k)) -. (fi *. xi.(k)));
        xi.(i) <- xi.(i) -. ((fr *. xi.(k)) +. (fi *. xr.(k)))
      end
    done
  done;
  (* back substitution *)
  for i = n - 1 downto 0 do
    let sr = ref xr.(i) and si = ref xi.(i) in
    for j = i + 1 to n - 1 do
      let ar = re.(idx i j) and ai = im.(idx i j) in
      sr := !sr -. ((ar *. xr.(j)) -. (ai *. xi.(j)));
      si := !si -. ((ar *. xi.(j)) +. (ai *. xr.(j)))
    done;
    let qr, qi = cdiv !sr !si re.(idx i i) im.(idx i i) in
    xr.(i) <- qr;
    xi.(i) <- qi
  done;
  (xr, xi)
