(** Structure-of-arrays batch workspace for variant-lockstep solving.

    A batch holds one [width]-wide float vector per lane (campaign
    variant) in a single flat Bigarray plane, lane-major, plus the
    live/retired bookkeeping a lockstep scheduler needs to let lanes
    drop out early without compacting the storage.  The plane is
    allocated outside the OCaml heap, so the GC never scans it and
    domains can share it without copying. *)

type reason =
  | Done  (** the lane ran to completion *)
  | Diverged  (** Newton failed below the minimum step *)
  | Incompatible  (** the lane's unknown layout did not match the batch *)

type t

val create : lanes:int -> width:int -> t
(** Fresh zero-filled batch of [lanes] vectors of [width] floats each;
    all lanes start live.
    @raise Invalid_argument when [lanes < 1] or [width < 0]. *)

val lanes : t -> int
val width : t -> int

val live_count : t -> int
(** Lanes not yet retired. *)

val is_live : t -> int -> bool
val status : t -> int -> reason option

val retire : t -> int -> reason -> unit
(** Mark a lane retired.  The first retirement wins: retiring an
    already-retired lane is a no-op, so a scheduler can safely sweep.
    @raise Invalid_argument on a lane outside [0, lanes). *)

val get : t -> int -> int -> float
(** [get t lane i] — unchecked access, lane plane offset [i]. *)

val set : t -> int -> int -> float -> unit

val read_lane : t -> int -> float array -> unit
(** Blit a lane's vector into a caller array of exactly [width].
    @raise Invalid_argument on a width mismatch. *)

val write_lane : t -> int -> float array -> unit
(** Blit a caller array of exactly [width] into a lane's vector.
    @raise Invalid_argument on a width mismatch. *)

val iter_live : (int -> unit) -> t -> unit
(** Apply to each live lane index in increasing order.  Retiring the
    current lane from inside the callback is allowed. *)

val retired_count : t -> reason -> int
(** How many lanes retired with the given reason. *)
