(** Small helpers over [float array] vectors used throughout the
    simulator.  All operations allocate a fresh result unless the name
    ends in [_into] or starts with an imperative verb. *)

val create : int -> float array
(** [create n] is a zero-filled vector of length [n]. *)

val copy : float array -> float array
(** Fresh copy. *)

val fill : float array -> float -> unit
(** Set every component. *)

val axpy : float -> float array -> float array -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val dot : float array -> float array -> float
(** Dot product; the vectors must have the same length. *)

val norm_inf : float array -> float
(** Maximum absolute component (0 for the empty vector). *)

val norm2 : float array -> float
(** Euclidean norm. *)

val max_abs_diff : float array -> float array -> float
(** [max_abs_diff x y] is [norm_inf (x - y)] without allocating. *)

val scale : float -> float array -> float array
(** [scale a x] is the vector [a*x]. *)

val add : float array -> float array -> float array
(** Component-wise sum. *)

val sub : float array -> float array -> float array
(** Component-wise difference. *)

val linspace : float -> float -> int -> float array
(** [linspace a b n] is [n] points evenly spaced from [a] to [b]
    inclusive.  [n] must be at least 2. *)

val logspace : float -> float -> int -> float array
(** [logspace a b n] is [n] points geometrically spaced from [a] to
    [b] inclusive; [a] and [b] must be positive and [n >= 2]. *)
