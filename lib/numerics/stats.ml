let require_nonempty xs = if Array.length xs = 0 then invalid_arg "Stats: empty data"

let mean xs =
  require_nonempty xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let percentile xs p =
  require_nonempty xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let minimum xs =
  require_nonempty xs;
  Array.fold_left Float.min xs.(0) xs

let maximum xs =
  require_nonempty xs;
  Array.fold_left Float.max xs.(0) xs

let histogram xs ~bins =
  require_nonempty xs;
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let lo = minimum xs and hi = maximum xs in
  let width = if hi -. lo > 0.0 then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = if b >= bins then bins - 1 else b in
      counts.(b) <- counts.(b) + 1)
    xs;
  List.init bins (fun b ->
      (lo +. (float_of_int b *. width), lo +. (float_of_int (b + 1) *. width), counts.(b)))
