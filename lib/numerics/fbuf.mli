(** Growable float buffer used to record simulation traces. *)

type t

val create : unit -> t
val length : t -> int
val push : t -> float -> unit
val get : t -> int -> float

val to_array : t -> float array
(** Snapshot of the current contents. *)
