type t = { n : int; a : float array }

exception Singular of int

let create n = { n; a = Array.make (n * n) 0.0 }

let dim m = m.n

let get m i j = m.a.((i * m.n) + j)

let set m i j v = m.a.((i * m.n) + j) <- v

let add_entry m i j v = m.a.((i * m.n) + j) <- m.a.((i * m.n) + j) +. v

let clear m = Array.fill m.a 0 (m.n * m.n) 0.0

let copy m = { n = m.n; a = Array.copy m.a }

let of_arrays rows =
  let n = Array.length rows in
  let m = create n in
  Array.iteri
    (fun i row ->
      assert (Array.length row = n);
      Array.iteri (fun j v -> set m i j v) row)
    rows;
  m

let to_arrays m = Array.init m.n (fun i -> Array.init m.n (fun j -> get m i j))

let mul_vec m x =
  assert (Array.length x = m.n);
  Array.init m.n (fun i ->
      let s = ref 0.0 in
      for j = 0 to m.n - 1 do
        s := !s +. (get m i j *. x.(j))
      done;
      !s)

type lu = { lu_mat : t; perm : int array }

let pivot_threshold = 1e-13

(* Classic in-place Doolittle elimination with row partial pivoting.
   After the loop, the strict lower triangle holds L (unit diagonal
   implied) and the upper triangle holds U, both in permuted order. *)
let lu m =
  let n = m.n in
  let w = copy m in
  let a = w.a in
  let perm = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    let kn = k * n in
    let best = ref k and best_abs = ref (Float.abs (Array.unsafe_get a (kn + k))) in
    for i = k + 1 to n - 1 do
      let v = Float.abs (Array.unsafe_get a ((i * n) + k)) in
      if v > !best_abs then begin
        best := i;
        best_abs := v
      end
    done;
    if !best_abs < pivot_threshold then raise (Singular k);
    if !best <> k then begin
      let bn = !best * n in
      for j = 0 to n - 1 do
        let tmp = Array.unsafe_get a (kn + j) in
        Array.unsafe_set a (kn + j) (Array.unsafe_get a (bn + j));
        Array.unsafe_set a (bn + j) tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!best);
      perm.(!best) <- tmp
    end;
    let pivot = Array.unsafe_get a (kn + k) in
    for i = k + 1 to n - 1 do
      let im = i * n in
      let factor = Array.unsafe_get a (im + k) /. pivot in
      Array.unsafe_set a (im + k) factor;
      if factor <> 0.0 then
        for j = k + 1 to n - 1 do
          Array.unsafe_set a (im + j)
            (Array.unsafe_get a (im + j) -. (factor *. Array.unsafe_get a (kn + j)))
        done
    done
  done;
  { lu_mat = w; perm }

(* Reusable factorisation state for callers that solve the same-size
   system every Newton iteration: the matrix copy, the permutation and
   the solution all live in the workspace, so a solve allocates
   nothing. *)
type ws = { wm : t; wperm : int array }

let ws n = { wm = create n; wperm = Array.make n 0 }

(* The elimination below runs every Newton iteration of every dense
   simulation, so it works on the flat backing array with unsafe
   accesses: every index is [row * n + col] with both in [0, n), and
   the dimension assert above pins the lengths of [b] and [out].
   Going through [get]/[set] costs a non-inlined call plus a bounds
   check per element (no flambda), which profiles as ~60% of the
   whole transient loop. *)
let factor_ws m ws =
  let n = m.n in
  assert (ws.wm.n = n);
  let a = ws.wm.a and perm = ws.wperm in
  Array.blit m.a 0 a 0 (n * n);
  for i = 0 to n - 1 do
    perm.(i) <- i
  done;
  for k = 0 to n - 1 do
    let kn = k * n in
    let best = ref k and best_abs = ref (Float.abs (Array.unsafe_get a (kn + k))) in
    for i = k + 1 to n - 1 do
      let v = Float.abs (Array.unsafe_get a ((i * n) + k)) in
      if v > !best_abs then begin
        best := i;
        best_abs := v
      end
    done;
    if !best_abs < pivot_threshold then raise (Singular k);
    if !best <> k then begin
      let bn = !best * n in
      for j = 0 to n - 1 do
        let tmp = Array.unsafe_get a (kn + j) in
        Array.unsafe_set a (kn + j) (Array.unsafe_get a (bn + j));
        Array.unsafe_set a (bn + j) tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!best);
      perm.(!best) <- tmp
    end;
    let pivot = Array.unsafe_get a (kn + k) in
    for i = k + 1 to n - 1 do
      let im = i * n in
      let factor = Array.unsafe_get a (im + k) /. pivot in
      Array.unsafe_set a (im + k) factor;
      if factor <> 0.0 then
        for j = k + 1 to n - 1 do
          Array.unsafe_set a (im + j)
            (Array.unsafe_get a (im + j) -. (factor *. Array.unsafe_get a (kn + j)))
        done
    done
  done

(* Permuted forward/back substitution against the factor left in the
   workspace by [factor_ws].  Splitting this out lets a caller whose
   matrix is bit-identical to the previous load (all junction stamps
   replayed from cache, same integration coefficients) skip the
   O(n^3) elimination and pay only the O(n^2) triangular sweeps. *)
let resolve_ws ws b out =
  let n = ws.wm.n in
  assert (Array.length b = n && Array.length out = n && not (b == out));
  let a = ws.wm.a and perm = ws.wperm in
  for i = 0 to n - 1 do
    out.(i) <- b.(perm.(i))
  done;
  for i = 1 to n - 1 do
    let im = i * n in
    let s = ref (Array.unsafe_get out i) in
    for j = 0 to i - 1 do
      s := !s -. (Array.unsafe_get a (im + j) *. Array.unsafe_get out j)
    done;
    Array.unsafe_set out i !s
  done;
  for i = n - 1 downto 0 do
    let im = i * n in
    let s = ref (Array.unsafe_get out i) in
    for j = i + 1 to n - 1 do
      s := !s -. (Array.unsafe_get a (im + j) *. Array.unsafe_get out j)
    done;
    Array.unsafe_set out i (!s /. Array.unsafe_get a (im + i))
  done

let solve_ws m ws b out =
  factor_ws m ws;
  resolve_ws ws b out

let lu_solve { lu_mat = w; perm } b =
  let n = w.n in
  assert (Array.length b = n);
  let x = Array.init n (fun i -> b.(perm.(i))) in
  for i = 1 to n - 1 do
    let s = ref x.(i) in
    for j = 0 to i - 1 do
      s := !s -. (get w i j *. x.(j))
    done;
    x.(i) <- !s
  done;
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (get w i j *. x.(j))
    done;
    x.(i) <- !s /. get w i i
  done;
  x

let solve m b = lu_solve (lu m) b
