type t = { n : int; a : float array }

exception Singular of int

let create n = { n; a = Array.make (n * n) 0.0 }

let dim m = m.n

let get m i j = m.a.((i * m.n) + j)

let set m i j v = m.a.((i * m.n) + j) <- v

let add_entry m i j v = m.a.((i * m.n) + j) <- m.a.((i * m.n) + j) +. v

let clear m = Array.fill m.a 0 (m.n * m.n) 0.0

let copy m = { n = m.n; a = Array.copy m.a }

let of_arrays rows =
  let n = Array.length rows in
  let m = create n in
  Array.iteri
    (fun i row ->
      assert (Array.length row = n);
      Array.iteri (fun j v -> set m i j v) row)
    rows;
  m

let to_arrays m = Array.init m.n (fun i -> Array.init m.n (fun j -> get m i j))

let mul_vec m x =
  assert (Array.length x = m.n);
  Array.init m.n (fun i ->
      let s = ref 0.0 in
      for j = 0 to m.n - 1 do
        s := !s +. (get m i j *. x.(j))
      done;
      !s)

type lu = { lu_mat : t; perm : int array }

let pivot_threshold = 1e-13

(* Classic in-place Doolittle elimination with row partial pivoting.
   After the loop, the strict lower triangle holds L (unit diagonal
   implied) and the upper triangle holds U, both in permuted order. *)
let lu m =
  let n = m.n in
  let w = copy m in
  let perm = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    let best = ref k and best_abs = ref (Float.abs (get w k k)) in
    for i = k + 1 to n - 1 do
      let a = Float.abs (get w i k) in
      if a > !best_abs then begin
        best := i;
        best_abs := a
      end
    done;
    if !best_abs < pivot_threshold then raise (Singular k);
    if !best <> k then begin
      for j = 0 to n - 1 do
        let tmp = get w k j in
        set w k j (get w !best j);
        set w !best j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!best);
      perm.(!best) <- tmp
    end;
    let pivot = get w k k in
    for i = k + 1 to n - 1 do
      let factor = get w i k /. pivot in
      set w i k factor;
      if factor <> 0.0 then
        for j = k + 1 to n - 1 do
          set w i j (get w i j -. (factor *. get w k j))
        done
    done
  done;
  { lu_mat = w; perm }

let lu_solve { lu_mat = w; perm } b =
  let n = w.n in
  assert (Array.length b = n);
  let x = Array.init n (fun i -> b.(perm.(i))) in
  for i = 1 to n - 1 do
    let s = ref x.(i) in
    for j = 0 to i - 1 do
      s := !s -. (get w i j *. x.(j))
    done;
    x.(i) <- !s
  done;
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (get w i j *. x.(j))
    done;
    x.(i) <- !s /. get w i i
  done;
  x

let solve m b = lu_solve (lu m) b
