(** Sparse LU factorisation in the style of Gilbert and Peierls
    (left-looking, one sparse triangular solve per column) with row
    partial pivoting and a mild preference for the diagonal to limit
    fill-in — the standard choice for MNA matrices. *)

exception Singular of int
(** Raised when no pivot above the absolute threshold exists while
    eliminating the given column. *)

type factor
(** A factorisation [P*A = L*U] of a {!Sparse.csc} matrix. *)

val factorize : Sparse.csc -> factor
(** Factor the matrix.
    @raise Singular on structural or numeric singularity. *)

val solve : factor -> float array -> float array
(** [solve f b] returns [x] with [A x = b]. *)

val lu_nnz : factor -> int * int
(** Stored entries in [(L, U)]; for diagnostics. *)
