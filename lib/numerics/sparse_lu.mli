(** Sparse LU factorisation in the style of Gilbert and Peierls
    (left-looking, one sparse triangular solve per column) with row
    partial pivoting and a mild preference for the diagonal to limit
    fill-in — the standard choice for MNA matrices. *)

exception Singular of int
(** Raised when no pivot above the absolute threshold exists while
    eliminating the given column. *)

type factor
(** A factorisation [P*A*Q = L*U] of a {!Sparse.csc} matrix ([Q] is
    the fill-reducing column order, the identity under [Natural]). *)

type ordering =
  | Natural  (** eliminate columns in matrix order *)
  | Amd  (** {!Ordering.amd} minimum-degree order, unconditionally *)
  | Auto
      (** compare the symbolic fill of the minimum-degree order
          against the natural one and keep whichever is smaller —
          never worse than [Natural] on structurally symmetric
          patterns (the default).  Prices the natural order first with
          the cheap {!Ordering.natural_fill} count and skips the
          min-degree analysis when the natural factor is already small
          enough that ordering cannot pay for itself. *)

val factorize : ?ordering:ordering -> Sparse.csc -> factor
(** Factor the matrix: symbolic analysis (column ordering, reach sets,
    pivot order, L/U patterns, buffer sizing) plus the numeric
    elimination.
    @raise Singular on structural or numeric singularity. *)

val reusable : factor -> Sparse.csc -> bool
(** Whether the factor's symbolic analysis applies to this matrix:
    same dimension and the {e same} pattern arrays (physical
    identity — {!Sparse.refill} refreshes values in place, so a
    matrix obtained from the same {!Sparse.pattern} stays
    reusable). *)

val refactorize : factor -> Sparse.csc -> bool
(** [refactorize f a] redoes only the numeric elimination of
    {!factorize}, in place, reusing the pivot order and the L/U
    patterns computed symbolically for a matrix with [a]'s pattern —
    no DFS, no pivot search, no allocation.  Returns [false], leaving
    [f] unusable, when the pattern does not match ({!reusable}) or a
    recycled pivot has degraded below the stability threshold; the
    caller must then {!factorize} afresh. *)

val solve : factor -> float array -> float array
(** [solve f b] returns [x] with [A x = b]. *)

val solve_into : factor -> float array -> float array -> unit
(** [solve_into f b x] writes the solution of [A x = b] into the
    caller-owned [x] — zero allocation.  [x] must not be [b]
    (checked); every component of [x] is overwritten. *)

val lu_nnz : factor -> int * int
(** Stored entries in [(L, U)]; for diagnostics. *)

val ordering_name : factor -> string
(** The column ordering the factor was built with: ["natural"] or
    ["amd"]. *)

val fill_ratio : factor -> float
(** [nnz(L) + nnz(U)] over [nnz(A)] — 1.0 means no fill beyond the
    matrix's own entries (L's unit diagonal included). *)

type refactor_failure =
  | Mismatched_pattern  (** {!reusable} said no: wrong pattern arrays *)
  | Small_pivot of int
      (** a recycled pivot fell below the absolute threshold while
          eliminating the given original column *)
  | Unstable_pivot of int
      (** a recycled pivot fell below the stability fraction of its
          column's magnitude at the given original column *)

val last_refactor_failure : factor -> refactor_failure option
(** Why the most recent {!refactorize} on this factor returned
    [false] — the reason for the caller's stability fallback to a
    full {!factorize}.  [None] after a successful refactorization
    (and on a freshly built or adopted factor). *)

type health = {
  pivot_growth : float;
      (** element-growth estimate [max|U| / max|A|]; values far above
          1 flag a factorization that is losing precision *)
  u_diag_max : float;
  u_diag_min : float;  (** extremes of [|diag(U)|] *)
  condition_estimate : float;
      (** [u_diag_max / u_diag_min] — a cheap lower bound on the
          condition number; 0 when the matrix is empty or a diagonal
          vanished *)
}

val health : factor -> Sparse.csc -> health
(** Numerical-health report for the current values of [f] against the
    matrix it factored.  Pure O(nnz) scans: safe to call at run
    boundaries, not meant for the per-solve hot path. *)

val adopt_symbolic : factor -> Sparse.csc -> factor option
(** [adopt_symbolic donor a] shares the donor's symbolic analysis
    (orderings, patterns, pivot order — immutable after
    {!factorize}) with a matrix whose pattern has the same {e
    content}, returning a factor with fresh numeric storage that the
    caller must {!refactorize} before solving (falling back to
    {!factorize} if the donor's pivot order is unstable for the new
    values).  [None] when the patterns differ. *)
