(** Sparse LU factorisation in the style of Gilbert and Peierls
    (left-looking, one sparse triangular solve per column) with row
    partial pivoting and a mild preference for the diagonal to limit
    fill-in — the standard choice for MNA matrices. *)

exception Singular of int
(** Raised when no pivot above the absolute threshold exists while
    eliminating the given column. *)

type factor
(** A factorisation [P*A = L*U] of a {!Sparse.csc} matrix. *)

val factorize : Sparse.csc -> factor
(** Factor the matrix: symbolic analysis (reach sets, pivot order,
    L/U patterns, buffer sizing) plus the numeric elimination.
    @raise Singular on structural or numeric singularity. *)

val reusable : factor -> Sparse.csc -> bool
(** Whether the factor's symbolic analysis applies to this matrix:
    same dimension and the {e same} pattern arrays (physical
    identity — {!Sparse.refill} refreshes values in place, so a
    matrix obtained from the same {!Sparse.pattern} stays
    reusable). *)

val refactorize : factor -> Sparse.csc -> bool
(** [refactorize f a] redoes only the numeric elimination of
    {!factorize}, in place, reusing the pivot order and the L/U
    patterns computed symbolically for a matrix with [a]'s pattern —
    no DFS, no pivot search, no allocation.  Returns [false], leaving
    [f] unusable, when the pattern does not match ({!reusable}) or a
    recycled pivot has degraded below the stability threshold; the
    caller must then {!factorize} afresh. *)

val solve : factor -> float array -> float array
(** [solve f b] returns [x] with [A x = b]. *)

val solve_into : factor -> float array -> float array -> unit
(** [solve_into f b x] writes the solution of [A x = b] into the
    caller-owned [x] — zero allocation.  [x] must not be [b]
    (checked); every component of [x] is overwritten. *)

val lu_nnz : factor -> int * int
(** Stored entries in [(L, U)]; for diagnostics. *)
