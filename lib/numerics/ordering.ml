(* Fill-reducing column orderings for the sparse LU.

   Both entry points run the same symbolic elimination on the
   symmetrized pattern of A (the undirected graph of A + A^T), kept as
   a quotient graph: eliminating a pivot replaces it by an *element*
   whose boundary is the pivot's current neighbourhood, and the
   elements a pivot absorbs are dropped from its neighbours' lists —
   the classic minimum-degree machinery (Amestoy/Davis/Duff's AMD,
   without supervariable detection, which MNA patterns rarely
   trigger).  [amd] picks each pivot by smallest current external
   degree; [fill_estimate] replays a caller-supplied order.  For a
   structurally symmetric pattern eliminated with diagonal pivots the
   boundary sizes are not an estimate at all: they equal the L/U
   column counts the LU will produce, which is what makes the
   best-of-two choice in {!Sparse_lu.factorize} deterministic. *)

let identity n = Array.init n (fun i -> i)

(* Undirected adjacency (no diagonal, no duplicates) of A + A^T. *)
let symmetrized_adj (a : Sparse.csc) =
  let n = a.Sparse.n in
  let adj = Array.make n [] in
  for j = 0 to n - 1 do
    for p = a.Sparse.colptr.(j) to a.Sparse.colptr.(j + 1) - 1 do
      let i = a.Sparse.rowind.(p) in
      if i <> j then begin
        adj.(i) <- j :: adj.(i);
        adj.(j) <- i :: adj.(j)
      end
    done
  done;
  let mark = Array.make n (-1) in
  Array.mapi
    (fun v l ->
      List.filter
        (fun w ->
          if mark.(w) = v then false
          else begin
            mark.(w) <- v;
            true
          end)
        l)
    adj

(* Core symbolic elimination.  [force = Some order] replays that
   elimination order; [force = None] selects min-degree pivots.
   Returns the order used and the sum of boundary sizes (= nnz of the
   strictly lower triangle of the symmetric factor). *)
let eliminate ?force (a : Sparse.csc) =
  let n = a.Sparse.n in
  let adj_var = symmetrized_adj a in
  let adj_el = Array.make n [] in
  (* element created at step k keeps its boundary in el_bd.(k) *)
  let el_bd = Array.make (max n 1) [||] in
  let alive = Array.make n true in
  let mark = Array.make n (-1) in
  let stamp = ref 0 in
  let deg = Array.make n 0 in
  Array.iteri (fun v l -> deg.(v) <- List.length l) adj_var;
  let order = Array.make n 0 in
  let fill = ref 0 in
  for k = 0 to n - 1 do
    let piv =
      match force with
      | Some ord ->
          let p = ord.(k) in
          if p < 0 || p >= n || not alive.(p) then
            invalid_arg "Ordering.fill_estimate: order is not a permutation";
          p
      | None ->
          (* smallest approximate degree, lowest index breaking ties:
             a linear scan keeps the selection deterministic and is
             cheap at MNA sizes *)
          let best = ref (-1) and bd = ref max_int in
          for v = 0 to n - 1 do
            if alive.(v) && deg.(v) < !bd then begin
              bd := deg.(v);
              best := v
            end
          done;
          !best
    in
    order.(k) <- piv;
    alive.(piv) <- false;
    (* boundary: alive neighbours through both plain edges and the
       boundaries of adjacent elements *)
    let s = !stamp in
    incr stamp;
    mark.(piv) <- s;
    let bd = ref [] and nbd = ref 0 in
    let visit w =
      if alive.(w) && mark.(w) <> s then begin
        mark.(w) <- s;
        bd := w :: !bd;
        incr nbd
      end
    in
    List.iter visit adj_var.(piv);
    List.iter (fun e -> Array.iter visit el_bd.(e)) adj_el.(piv);
    let bd_arr = Array.of_list !bd in
    let absorbed = adj_el.(piv) in
    el_bd.(k) <- bd_arr;
    fill := !fill + !nbd;
    Array.iter
      (fun w ->
        adj_var.(w) <- List.filter (fun u -> alive.(u) && u <> piv) adj_var.(w);
        adj_el.(w) <- k :: List.filter (fun e -> not (List.memq e absorbed)) adj_el.(w))
      bd_arr;
    if force = None then
      (* refresh the degrees of the variables the elimination touched;
         exact external degree via a fresh mark per variable *)
      Array.iter
        (fun w ->
          let s = !stamp in
          incr stamp;
          mark.(w) <- s;
          let d = ref 0 in
          let count u =
            if alive.(u) && mark.(u) <> s then begin
              mark.(u) <- s;
              incr d
            end
          in
          List.iter count adj_var.(w);
          List.iter (fun e -> Array.iter count el_bd.(e)) adj_el.(w);
          deg.(w) <- !d)
        bd_arr
  done;
  (order, !fill)

let amd_with_fill a = eliminate a

let amd a = fst (eliminate a)

let fill_estimate a ~order =
  if Array.length order <> a.Sparse.n then
    invalid_arg "Ordering.fill_estimate: order length mismatch";
  snd (eliminate ~force:order a)

(* Upper bound on the natural-order fill: symmetric elimination fills
   a row only to the right of its first nonzero (the classic envelope
   theorem behind skyline solvers), so summing each row's distance to
   the first entry of A + A^T bounds the strict-lower factor count.
   One O(nnz) scan and a single int array — cheap enough that
   {!Sparse_lu.factorize}'s [Auto] can run it on every call and
   dismiss banded or near-banded systems without touching the
   elimination tree. *)
let envelope_bound (a : Sparse.csc) =
  let n = a.Sparse.n in
  let colptr = a.Sparse.colptr and rowind = a.Sparse.rowind in
  let first = Array.init n (fun i -> i) in
  for j = 0 to n - 1 do
    for p = colptr.(j) to colptr.(j + 1) - 1 do
      let i = rowind.(p) in
      if i > j then begin
        if j < first.(i) then first.(i) <- j
      end
      else if i < first.(j) then first.(j) <- i
    done
  done;
  let ub = ref 0 in
  for i = 0 to n - 1 do
    ub := !ub + (i - first.(i))
  done;
  !ub

(* Natural-order fill without the quotient graph: build the
   elimination tree of the symmetrized pattern (Liu's algorithm, with
   ancestor path compression), then count row subtrees by climbing the
   *uncompressed* parent chains — [L(i,r)] is nonzero exactly for the
   nodes on the paths from the row's below-diagonal entries up to [i],
   and the per-row stamp makes each such node cost one visit, so the
   counting pass is O(fill) and the whole function O(nnz(A) + fill)
   instead of the elimination's list juggling.  This lets
   {!Sparse_lu.factorize}'s [Auto] price the natural order first and
   skip the min-degree analysis entirely when there is nothing worth
   reducing. *)
let natural_fill (a : Sparse.csc) =
  let n = a.Sparse.n in
  let adj = symmetrized_adj a in
  let parent = Array.make (max n 1) (-1) in
  let ancestor = Array.make (max n 1) (-1) in
  for i = 0 to n - 1 do
    List.iter
      (fun j ->
        let r = ref j in
        while !r <> -1 && !r < i do
          let next = ancestor.(!r) in
          ancestor.(!r) <- i;
          if next = -1 then parent.(!r) <- i;
          r := next
        done)
      adj.(i)
  done;
  let mark = Array.make (max n 1) (-1) in
  let fill = ref 0 in
  for i = 0 to n - 1 do
    List.iter
      (fun j ->
        let r = ref j in
        while !r <> -1 && !r < i && mark.(!r) <> i do
          mark.(!r) <- i;
          incr fill;
          r := parent.(!r)
        done)
      adj.(i)
  done;
  !fill
