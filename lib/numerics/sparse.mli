(** Sparse matrices for MNA systems.

    The workflow mirrors a circuit simulator: device stamps are
    accumulated into a {!triplet} buffer once, the structural pattern
    is then {!compress}ed into a column-compressed ({!csc}) matrix,
    and on subsequent Newton iterations only the numeric values are
    refreshed through {!refill} (the pattern of an MNA system never
    changes between iterations). *)

type triplet
(** Append-only (row, col, value) buffer.  Duplicate coordinates are
    legal and are summed at compression time. *)

val triplet_create : int -> triplet
(** [triplet_create n] is an empty buffer for an [n] x [n] matrix. *)

val triplet_dim : triplet -> int

val triplet_clear : triplet -> unit
(** Forget all entries (the dimension is kept). *)

val triplet_count : triplet -> int
(** Number of entries appended so far. *)

val add : triplet -> int -> int -> float -> unit
(** [add t i j v] appends entry [(i, j, v)].  Indices must lie in
    [0 .. n-1]. *)

val set_values : triplet -> int -> float -> unit
(** [set_values t k v] overwrites the value of the [k]-th appended
    entry, keeping its coordinates.  Used to re-stamp a fixed
    pattern. *)

type csc = {
  n : int;
  colptr : int array;  (** length [n+1] *)
  rowind : int array;  (** row index of each stored entry *)
  values : float array;  (** numeric value of each stored entry *)
}
(** Compressed sparse column storage with sorted, duplicate-free rows
    within each column. *)

type pattern
(** The result of symbolic compression: a [csc] skeleton plus the map
    from triplet entries to stored positions. *)

val compress : triplet -> pattern
(** Build the pattern and the initial numeric values from the current
    triplet contents. *)

val csc_of_pattern : pattern -> csc
(** The underlying matrix (shared, not copied: [refill] mutates it). *)

val refill : pattern -> triplet -> unit
(** Refresh the numeric values from the triplet buffer, which must
    contain exactly the entries (same order, same coordinates) that
    were present at [compress] time. *)

val mul_vec : csc -> float array -> float array
(** Matrix-vector product. *)

val to_dense : csc -> Dense.t
(** Expansion, for tests and debugging. *)

val nnz : csc -> int
(** Stored entry count. *)
