(** Dense complex matrices with LU solve, for small-signal (AC)
    analysis: one factorisation of [G + j*omega*C] per frequency
    point. *)

type t
(** Mutable complex [n] x [n] matrix stored as separate real and
    imaginary parts. *)

exception Singular of int

val create : int -> t
val dim : t -> int
val clear : t -> unit

val add_entry : t -> int -> int -> re:float -> im:float -> unit
(** Accumulate a complex value. *)

val solve : t -> b_re:float array -> b_im:float array -> float array * float array
(** Solve [A x = b] by LU with partial pivoting on the complex
    magnitude; the matrix is not modified.
    @raise Singular when no usable pivot exists. *)
