(** Dense square matrices stored row-major, with an LU factorisation
    (partial pivoting) used as the reference linear solver for small
    MNA systems and as the oracle in tests of the sparse solver. *)

type t
(** A mutable dense [n] x [n] matrix. *)

exception Singular of int
(** Raised by {!lu} when no acceptable pivot exists at the given
    elimination step. *)

val create : int -> t
(** [create n] is the [n] x [n] zero matrix. *)

val dim : t -> int
(** Matrix dimension. *)

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val add_entry : t -> int -> int -> float -> unit
(** [add_entry m i j v] accumulates [v] into [m.(i).(j)]; this is the
    stamping primitive. *)

val clear : t -> unit
(** Reset every entry to zero, keeping the storage. *)

val copy : t -> t

val of_arrays : float array array -> t
(** Build from rows; all rows must have length equal to the number of
    rows. *)

val to_arrays : t -> float array array

val mul_vec : t -> float array -> float array
(** Matrix-vector product. *)

type lu
(** A factorisation [P*A = L*U]. *)

val lu : t -> lu
(** Factorise (the input matrix is not modified).
    @raise Singular if a pivot below the absolute threshold [1e-13]
    is encountered. *)

val lu_solve : lu -> float array -> float array
(** Solve [A x = b] given the factorisation of [A]. *)

val solve : t -> float array -> float array
(** One-shot [lu] + [lu_solve]. *)

type ws
(** Preallocated factorisation workspace (matrix copy + permutation)
    for repeated same-size solves. *)

val ws : int -> ws
(** Workspace for [n] x [n] systems. *)

val solve_ws : t -> ws -> float array -> float array -> unit
(** [solve_ws m ws b out] solves [m x = b] into [out] using the
    workspace for the factorisation — zero allocation.  [out] must not
    be [b] (checked).  The input matrix is not modified.  Equivalent
    to {!factor_ws} followed by {!resolve_ws}.
    @raise Singular like {!lu}. *)

val factor_ws : t -> ws -> unit
(** Factorise [m] into the workspace (copy + pivoted elimination)
    without solving.  The factor stays valid until the next
    [factor_ws]/[solve_ws] on the same workspace.
    @raise Singular like {!lu}. *)

val resolve_ws : ws -> float array -> float array -> unit
(** Triangular solve against the factor currently in the workspace —
    the O(n²) tail of {!solve_ws}, for callers that know the matrix
    has not changed since the last {!factor_ws}.  [out] must not be
    [b] (checked). *)
