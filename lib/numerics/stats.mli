(** Descriptive statistics for Monte-Carlo and sweep results. *)

val mean : float array -> float
(** @raise Invalid_argument on an empty array. *)

val stddev : float array -> float
(** Sample (n-1) standard deviation; 0 for fewer than 2 points. *)

val percentile : float array -> float -> float
(** [percentile xs p] for p in [0, 100], linear interpolation between
    order statistics.  @raise Invalid_argument on an empty array or p
    outside the range. *)

val minimum : float array -> float
val maximum : float array -> float

val histogram : float array -> bins:int -> (float * float * int) list
(** [(lo, hi, count)] per bin over the data range.
    @raise Invalid_argument on empty data or non-positive bins. *)
