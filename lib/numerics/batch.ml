(* Structure-of-arrays batch workspace for variant-lockstep solving.

   A campaign advances K variants ("lanes") of one circuit through the
   same analysis; each lane's committed state is a vector of [width]
   unknowns.  Keeping those vectors as K separate OCaml float arrays
   puts K live heap blocks in front of the GC and scatters them across
   the minor/major heaps; this module instead packs them into one flat
   Bigarray plane (lane-major, so a lane's vector is contiguous) that
   the GC never scans and that survives sharing across domains without
   copying.  Lane bookkeeping — which lanes are still being advanced,
   and why the others stopped — lives alongside the plane so schedulers
   can retire lanes without compacting the storage. *)

type reason =
  | Done
  | Diverged
  | Incompatible

type plane =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  lanes : int;
  width : int;
  data : plane;
  status : reason option array;  (* [None] while the lane is live *)
  mutable n_live : int;
}

let create ~lanes ~width =
  if lanes < 1 then invalid_arg "Batch.create: lanes must be >= 1";
  if width < 0 then invalid_arg "Batch.create: negative width";
  let data = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (lanes * width) in
  Bigarray.Array1.fill data 0.0;
  { lanes; width; data; status = Array.make lanes None; n_live = lanes }

let lanes t = t.lanes

let width t = t.width

let live_count t = t.n_live

let is_live t lane = t.status.(lane) = None

let status t lane = t.status.(lane)

let retire t lane reason =
  if lane < 0 || lane >= t.lanes then invalid_arg "Batch.retire: lane out of range";
  match t.status.(lane) with
  | Some _ -> ()  (* first retirement wins; a Done after a Diverged is not an upgrade *)
  | None ->
      t.status.(lane) <- Some reason;
      t.n_live <- t.n_live - 1

let get t lane i = Bigarray.Array1.unsafe_get t.data ((lane * t.width) + i)

let set t lane i v = Bigarray.Array1.unsafe_set t.data ((lane * t.width) + i) v

let read_lane t lane dst =
  if Array.length dst <> t.width then invalid_arg "Batch.read_lane: width mismatch";
  let base = lane * t.width in
  for i = 0 to t.width - 1 do
    Array.unsafe_set dst i (Bigarray.Array1.unsafe_get t.data (base + i))
  done

let write_lane t lane src =
  if Array.length src <> t.width then invalid_arg "Batch.write_lane: width mismatch";
  let base = lane * t.width in
  for i = 0 to t.width - 1 do
    Bigarray.Array1.unsafe_set t.data (base + i) (Array.unsafe_get src i)
  done

let iter_live f t =
  for lane = 0 to t.lanes - 1 do
    if t.status.(lane) = None then f lane
  done

let retired_count t reason =
  Array.fold_left
    (fun n s -> if s = Some reason then n + 1 else n)
    0 t.status
