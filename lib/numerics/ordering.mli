(** Fill-reducing column orderings for {!Sparse_lu}: minimum-degree on
    the symmetrized pattern (AMD-style quotient graph with element
    absorption), plus a symbolic fill count used to compare candidate
    orders before committing to one. *)

val identity : int -> int array
(** The natural order [0; 1; ...; n-1]. *)

val amd : Sparse.csc -> int array
(** Minimum-degree elimination order of the symmetrized pattern of the
    matrix; [order.(k)] is the original column eliminated at step [k].
    Deterministic (lowest index breaks degree ties). *)

val amd_with_fill : Sparse.csc -> int array * int
(** [amd] plus the fill its own elimination already counted — the same
    value [fill_estimate] would report for that order, without
    replaying the elimination. *)

val envelope_bound : Sparse.csc -> int
(** Upper bound on [natural_fill]: symmetric elimination fills only
    inside the row envelope, so summing each row's distance to its
    first entry in [A + A^T] bounds the strict-lower factor count.
    One [O(nnz)] scan; lets [Auto] dismiss banded systems without
    building the elimination tree. *)

val natural_fill : Sparse.csc -> int
(** [fill_estimate a ~order:(identity n)], computed with an
    elimination-tree row-count pass in [O(nnz(A) + fill)] instead of
    the quotient-graph elimination — cheap enough to run on every
    factorization as the [Auto] ordering's first look. *)

val fill_estimate : Sparse.csc -> order:int array -> int
(** Entries of the strictly lower triangle of the symbolic factor when
    the symmetrized pattern is eliminated in [order] — exact for a
    structurally symmetric matrix factored with diagonal pivots, an
    estimate otherwise.  @raise Invalid_argument if [order] is not a
    permutation of [0..n-1]. *)
