type triplet = {
  tn : int;
  mutable rows : int array;
  mutable cols : int array;
  mutable vals : float array;
  mutable len : int;
}

let triplet_create n =
  { tn = n; rows = Array.make 64 0; cols = Array.make 64 0; vals = Array.make 64 0.0; len = 0 }

let triplet_dim t = t.tn

let triplet_clear t = t.len <- 0

let triplet_count t = t.len

let grow t =
  let cap = Array.length t.rows in
  let cap' = 2 * cap in
  let extend a fillv =
    let b = Array.make cap' fillv in
    Array.blit a 0 b 0 t.len;
    b
  in
  t.rows <- extend t.rows 0;
  t.cols <- extend t.cols 0;
  t.vals <- extend t.vals 0.0

let add t i j v =
  assert (i >= 0 && i < t.tn && j >= 0 && j < t.tn);
  if t.len = Array.length t.rows then grow t;
  t.rows.(t.len) <- i;
  t.cols.(t.len) <- j;
  t.vals.(t.len) <- v;
  t.len <- t.len + 1

let set_values t k v =
  assert (k >= 0 && k < t.len);
  t.vals.(k) <- v

type csc = {
  n : int;
  colptr : int array;
  rowind : int array;
  values : float array;
}

type pattern = { mat : csc; entry_of_triplet : int array }

(* Compression proceeds in two passes: first count per-column entries
   and sort coordinates into place, then merge duplicates while
   recording, for every original triplet entry, the stored slot it
   contributes to (entry_of_triplet), so that refill is O(len). *)
let compress t =
  let n = t.tn in
  let len = t.len in
  let count = Array.make (n + 1) 0 in
  for k = 0 to len - 1 do
    count.(t.cols.(k) + 1) <- count.(t.cols.(k) + 1) + 1
  done;
  for j = 1 to n do
    count.(j) <- count.(j) + count.(j - 1)
  done;
  (* scatter triplet indices into column buckets *)
  let next = Array.copy count in
  let order = Array.make len 0 in
  for k = 0 to len - 1 do
    let j = t.cols.(k) in
    order.(next.(j)) <- k;
    next.(j) <- next.(j) + 1
  done;
  (* within each column, sort the bucket by row *)
  for j = 0 to n - 1 do
    let lo = count.(j) and hi = count.(j + 1) in
    let seg = Array.sub order lo (hi - lo) in
    Array.sort (fun a b -> compare t.rows.(a) t.rows.(b)) seg;
    Array.blit seg 0 order lo (hi - lo)
  done;
  (* merge duplicates *)
  let colptr = Array.make (n + 1) 0 in
  let rowind_tmp = Array.make (max len 1) 0 in
  let values_tmp = Array.make (max len 1) 0.0 in
  let entry_of_triplet = Array.make len 0 in
  let stored = ref 0 in
  for j = 0 to n - 1 do
    colptr.(j) <- !stored;
    let last_row = ref (-1) in
    for p = count.(j) to count.(j + 1) - 1 do
      let k = order.(p) in
      let r = t.rows.(k) in
      if r = !last_row then begin
        let slot = !stored - 1 in
        values_tmp.(slot) <- values_tmp.(slot) +. t.vals.(k);
        entry_of_triplet.(k) <- slot
      end
      else begin
        rowind_tmp.(!stored) <- r;
        values_tmp.(!stored) <- t.vals.(k);
        entry_of_triplet.(k) <- !stored;
        last_row := r;
        incr stored
      end
    done
  done;
  colptr.(n) <- !stored;
  let mat =
    {
      n;
      colptr;
      rowind = Array.sub rowind_tmp 0 !stored;
      values = Array.sub values_tmp 0 !stored;
    }
  in
  { mat; entry_of_triplet }

let csc_of_pattern p = p.mat

let refill p t =
  assert (t.len = Array.length p.entry_of_triplet);
  Array.fill p.mat.values 0 (Array.length p.mat.values) 0.0;
  for k = 0 to t.len - 1 do
    let slot = p.entry_of_triplet.(k) in
    p.mat.values.(slot) <- p.mat.values.(slot) +. t.vals.(k)
  done

let mul_vec a x =
  assert (Array.length x = a.n);
  let y = Array.make a.n 0.0 in
  for j = 0 to a.n - 1 do
    let xj = x.(j) in
    if xj <> 0.0 then
      for p = a.colptr.(j) to a.colptr.(j + 1) - 1 do
        y.(a.rowind.(p)) <- y.(a.rowind.(p)) +. (a.values.(p) *. xj)
      done
  done;
  y

let to_dense a =
  let d = Dense.create a.n in
  for j = 0 to a.n - 1 do
    for p = a.colptr.(j) to a.colptr.(j + 1) - 1 do
      Dense.add_entry d a.rowind.(p) j a.values.(p)
    done
  done;
  d

let nnz a = a.colptr.(a.n)
