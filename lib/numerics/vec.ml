let create n = Array.make n 0.0

let copy = Array.copy

let fill x v = Array.fill x 0 (Array.length x) v

let axpy a x y =
  assert (Array.length x = Array.length y);
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

let dot x y =
  assert (Array.length x = Array.length y);
  let s = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    s := !s +. (x.(i) *. y.(i))
  done;
  !s

let norm_inf x =
  let m = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    let a = Float.abs x.(i) in
    if a > !m then m := a
  done;
  !m

let norm2 x = sqrt (dot x x)

let max_abs_diff x y =
  assert (Array.length x = Array.length y);
  let m = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    let a = Float.abs (x.(i) -. y.(i)) in
    if a > !m then m := a
  done;
  !m

let scale a x = Array.map (fun v -> a *. v) x

let add x y =
  assert (Array.length x = Array.length y);
  Array.init (Array.length x) (fun i -> x.(i) +. y.(i))

let sub x y =
  assert (Array.length x = Array.length y);
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

let linspace a b n =
  assert (n >= 2);
  let step = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun i -> a +. (float_of_int i *. step))

let logspace a b n =
  assert (n >= 2 && a > 0.0 && b > 0.0);
  let la = log a and lb = log b in
  Array.map exp (linspace la lb n)
