exception Singular of int

(* Growable entry buffer for building L and U column by column. *)
type buf = { mutable idx : int array; mutable v : float array; mutable len : int }

let buf_create () = { idx = Array.make 256 0; v = Array.make 256 0.0; len = 0 }

let buf_push b i x =
  if b.len = Array.length b.idx then begin
    let cap = 2 * b.len in
    let idx = Array.make cap 0 and v = Array.make cap 0.0 in
    Array.blit b.idx 0 idx 0 b.len;
    Array.blit b.v 0 v 0 b.len;
    b.idx <- idx;
    b.v <- v
  end;
  b.idx.(b.len) <- i;
  b.v.(b.len) <- x;
  b.len <- b.len + 1

type factor = {
  n : int;
  l_colptr : int array;
  l_rowind : int array;  (* in pivotal (permuted) numbering *)
  l_values : float array;  (* first entry of each column is the unit diagonal *)
  u_colptr : int array;
  u_rowind : int array;  (* pivotal numbering; diagonal stored last *)
  u_values : float array;
  pinv : int array;  (* original row -> pivotal position *)
  q : int array;  (* elimination step -> original column *)
  q_identity : bool;  (* natural order: skip the output permutation *)
  qwork : float array;  (* solve scratch when [q] is not the identity *)
  ordering_label : string;  (* "natural" or "amd", for diagnostics *)
  a_colptr : int array;  (* the A pattern the symbolic analysis is valid for, *)
  a_rowind : int array;  (* identified physically: refill keeps these arrays *)
  work : float array;  (* dense scratch for refactorize; zero between calls *)
  mutable last_failure : refactor_failure option;
      (* why the most recent [refactorize] returned false; [None]
         after a successful one *)
}

and refactor_failure =
  | Mismatched_pattern
  | Small_pivot of int
  | Unstable_pivot of int

type ordering = Natural | Amd | Auto

let pivot_abs_threshold = 1e-13

(* Preference for the natural diagonal: accept original row [j] as
   pivot whenever its magnitude is within this factor of the best
   candidate.  MNA diagonals are almost always strong, and keeping
   them avoids fill-in from permutations. *)
let diag_preference = 1e-3

(* Depth-first search over the pattern of L, as in cs_dfs.  Returns
   the new [top]; on exit [xi.(top .. n-1)] holds the reach of [r0]
   in topological order.  [adj_ptr]/[adj_ind] describe L's columns in
   original row numbering; a row [r] with [pinv.(r) = k >= 0] has the
   entries of L's column [k] as children. *)
let dfs r0 ~marked ~pinv ~l_colptr ~l_rowind ~xi ~rstack ~pstack top0 =
  let top = ref top0 in
  let head = ref 0 in
  rstack.(0) <- r0;
  while !head >= 0 do
    let r = rstack.(!head) in
    if not marked.(r) then begin
      marked.(r) <- true;
      let k = pinv.(r) in
      pstack.(!head) <- (if k < 0 then -1 else l_colptr.(k))
    end;
    let k = pinv.(r) in
    let finished = ref true in
    if k >= 0 then begin
      let stop = l_colptr.(k + 1) in
      let p = ref pstack.(!head) in
      while !finished && !p < stop do
        let rr = l_rowind.(!p) in
        if not marked.(rr) then begin
          pstack.(!head) <- !p + 1;
          incr head;
          rstack.(!head) <- rr;
          finished := false
        end
        else incr p
      done;
      if !finished then pstack.(!head) <- stop
    end;
    if !finished then begin
      decr top;
      xi.(!top) <- r;
      decr head
    end
  done;
  !top

(* Below this size the elimination graph is too small for a
   min-degree order to beat the permutation bookkeeping it costs. *)
let auto_ordering_min = 16

(* Below this many strict-lower fill entries the numeric factorization
   is microseconds-cheap whatever the order, so the min-degree
   analysis would cost more than any reduction could pay back (on the
   banded 200-unknown perf kernel it was 5x the whole factor+solve).
   [Auto] prices the natural order first with the O(nnz + fill)
   elimination-tree count and only runs the quotient-graph elimination
   past this cutoff. *)
let auto_fill_cutoff = 20_000

let choose_ordering ordering (a : Sparse.csc) =
  let n = a.Sparse.n in
  match ordering with
  | Natural -> (Ordering.identity n, true, "natural")
  | Amd -> (Ordering.amd a, false, "amd")
  | Auto ->
      if n < auto_ordering_min then (Ordering.identity n, true, "natural")
      else if Ordering.envelope_bound a <= auto_fill_cutoff then
        (* banded / near-banded: even the envelope bound says the
           factor stays small, one O(nnz) scan and we are done *)
        (Ordering.identity n, true, "natural")
      else begin
        let fn = Ordering.natural_fill a in
        if fn <= auto_fill_cutoff then (Ordering.identity n, true, "natural")
        else begin
          (* commit to whichever order the symbolic elimination says
             fills less; for the structurally symmetric patterns MNA
             produces the estimate is the exact factor size, so "amd"
             is only ever reported when it genuinely wins *)
          let qa, fa = Ordering.amd_with_fill a in
          if fa < fn then (qa, false, "amd") else (Ordering.identity n, true, "natural")
        end
      end

let factorize ?(ordering = Auto) (a : Sparse.csc) =
  let n = a.Sparse.n in
  let q, q_identity, ordering_label = choose_ordering ordering a in
  let lbuf = buf_create () and ubuf = buf_create () in
  let l_colptr = Array.make (n + 1) 0 in
  let u_colptr = Array.make (n + 1) 0 in
  let pinv = Array.make n (-1) in
  let marked = Array.make n false in
  let x = Array.make n 0.0 in
  let xi = Array.make n 0 in
  let rstack = Array.make n 0 and pstack = Array.make n 0 in
  (* L's column pointers grow as we emit columns; dfs needs access to
     the partially built arrays, so we hand it the raw buffers. *)
  for j = 0 to n - 1 do
    (* elimination step [j] processes original column [q.(j)] *)
    let col = q.(j) in
    l_colptr.(j) <- lbuf.len;
    u_colptr.(j) <- ubuf.len;
    (* symbolic: reach of A(:,col) *)
    let top = ref n in
    for p = a.Sparse.colptr.(col) to a.Sparse.colptr.(col + 1) - 1 do
      let r = a.Sparse.rowind.(p) in
      if not marked.(r) then
        top := dfs r ~marked ~pinv ~l_colptr ~l_rowind:lbuf.idx ~xi ~rstack ~pstack !top
    done;
    (* numeric: scatter A(:,col) and run the sparse triangular solve *)
    for p = a.Sparse.colptr.(col) to a.Sparse.colptr.(col + 1) - 1 do
      x.(a.Sparse.rowind.(p)) <- x.(a.Sparse.rowind.(p)) +. a.Sparse.values.(p)
    done;
    for px = !top to n - 1 do
      let r = xi.(px) in
      let k = pinv.(r) in
      if k >= 0 then begin
        let xr = x.(r) in
        (* skip the unit diagonal stored first in column k *)
        for p = l_colptr.(k) + 1 to l_colptr.(k + 1) - 1 do
          x.(lbuf.idx.(p)) <- x.(lbuf.idx.(p)) -. (lbuf.v.(p) *. xr)
        done
      end
    done;
    (* pivot choice among the not-yet-pivotal rows of the reach *)
    let best = ref (-1) and best_abs = ref 0.0 and diag_abs = ref 0.0 in
    for px = !top to n - 1 do
      let r = xi.(px) in
      if pinv.(r) < 0 then begin
        let ax = Float.abs x.(r) in
        if ax > !best_abs then begin
          best_abs := ax;
          best := r
        end;
        if r = col then diag_abs := ax
      end
    done;
    if !best < 0 || !best_abs < pivot_abs_threshold then raise (Singular col);
    let piv = if !diag_abs >= diag_preference *. !best_abs then col else !best in
    let pivot_value = x.(piv) in
    pinv.(piv) <- j;
    (* emit column j of L (unit diagonal first) and U (diagonal last) *)
    buf_push lbuf piv 1.0;
    for px = !top to n - 1 do
      let r = xi.(px) in
      let k = pinv.(r) in
      if k >= 0 && r <> piv then buf_push ubuf k x.(r)
      else if r <> piv then buf_push lbuf r (x.(r) /. pivot_value);
      x.(r) <- 0.0;
      marked.(r) <- false
    done;
    x.(piv) <- 0.0;
    buf_push ubuf j pivot_value
  done;
  l_colptr.(n) <- lbuf.len;
  u_colptr.(n) <- ubuf.len;
  (* remap L's rows to pivotal numbering for the triangular solves *)
  let l_rowind = Array.sub lbuf.idx 0 lbuf.len in
  for p = 0 to lbuf.len - 1 do
    l_rowind.(p) <- pinv.(l_rowind.(p))
  done;
  {
    n;
    l_colptr;
    l_rowind;
    l_values = Array.sub lbuf.v 0 lbuf.len;
    u_colptr;
    u_rowind = Array.sub ubuf.idx 0 ubuf.len;
    u_values = Array.sub ubuf.v 0 ubuf.len;
    pinv;
    q;
    q_identity;
    qwork = (if q_identity then [||] else Array.make n 0.0);
    ordering_label;
    a_colptr = a.Sparse.colptr;
    a_rowind = a.Sparse.rowind;
    (* x ends the column loop all-zero; adopt it as the refactorize
       scratch so the numeric phase allocates nothing *)
    work = x;
    last_failure = None;
  }

let reusable f (a : Sparse.csc) =
  f.n = a.Sparse.n && f.a_colptr == a.Sparse.colptr && f.a_rowind == a.Sparse.rowind

(* A pivot chosen on the old values is kept across refactorization
   only while it stays within this factor of its column's magnitude;
   below that the element growth of the triangular solves could eat
   half the mantissa, so we fall back to a fresh pivot search. *)
let refactor_stability = 1e-8

let refactorize f (a : Sparse.csc) =
  if not (reusable f a) then begin
    f.last_failure <- Some Mismatched_pattern;
    false
  end
  else begin
       let n = f.n in
       let x = f.work in
       let pinv = f.pinv in
       let ok = ref true in
       let j = ref 0 in
       while !ok && !j < n do
         let jj = !j in
         let col = f.q.(jj) in
         (* scatter A(:,q.(j)) into pivotal numbering *)
         for p = a.Sparse.colptr.(col) to a.Sparse.colptr.(col + 1) - 1 do
           let r = pinv.(a.Sparse.rowind.(p)) in
           x.(r) <- x.(r) +. a.Sparse.values.(p)
         done;
         (* sparse triangular solve along the recorded pattern: the
            stored U rows of column j are in the topological order the
            symbolic DFS produced, so every x.(k) is final when read *)
         let dpos = f.u_colptr.(jj + 1) - 1 in
         for p = f.u_colptr.(jj) to dpos - 1 do
           let k = f.u_rowind.(p) in
           let xk = x.(k) in
           f.u_values.(p) <- xk;
           x.(k) <- 0.0;
           if xk <> 0.0 then
             for q = f.l_colptr.(k) + 1 to f.l_colptr.(k + 1) - 1 do
               let r = f.l_rowind.(q) in
               x.(r) <- x.(r) -. (f.l_values.(q) *. xk)
             done
         done;
         let pivot = x.(jj) in
         x.(jj) <- 0.0;
         let colmax = ref (Float.abs pivot) in
         for p = f.l_colptr.(jj) + 1 to f.l_colptr.(jj + 1) - 1 do
           let ax = Float.abs x.(f.l_rowind.(p)) in
           if ax > !colmax then colmax := ax
         done;
         if
           Float.abs pivot < pivot_abs_threshold
           || Float.abs pivot < refactor_stability *. !colmax
         then begin
           ok := false;
           f.last_failure <-
             Some
               (if Float.abs pivot < pivot_abs_threshold then Small_pivot col
                else Unstable_pivot col);
           (* leave the scratch clean for the next attempt *)
           for p = f.l_colptr.(jj) + 1 to f.l_colptr.(jj + 1) - 1 do
             x.(f.l_rowind.(p)) <- 0.0
           done
         end
         else begin
           f.u_values.(dpos) <- pivot;
           for p = f.l_colptr.(jj) + 1 to f.l_colptr.(jj + 1) - 1 do
             let r = f.l_rowind.(p) in
             f.l_values.(p) <- x.(r) /. pivot;
             x.(r) <- 0.0
           done
         end;
         incr j
       done;
       if !ok then f.last_failure <- None;
       !ok
  end

let last_refactor_failure f = f.last_failure

let solve_into f b x =
  let n = f.n in
  assert (Array.length b = n && Array.length x = n && not (b == x));
  (* the triangular solves run in elimination numbering; under a
     fill-reducing column order the result is the permuted unknown
     vector, unscrambled into [x] at the end through the [qwork]
     scratch (the natural order keeps the historical in-place path) *)
  let w = if f.q_identity then x else f.qwork in
  for i = 0 to n - 1 do
    w.(f.pinv.(i)) <- b.(i)
  done;
  (* forward solve with unit lower triangular L *)
  for j = 0 to n - 1 do
    let xj = w.(j) in
    if xj <> 0.0 then
      for p = f.l_colptr.(j) + 1 to f.l_colptr.(j + 1) - 1 do
        w.(f.l_rowind.(p)) <- w.(f.l_rowind.(p)) -. (f.l_values.(p) *. xj)
      done
  done;
  (* backward solve with U; the diagonal is the last entry of each column *)
  for j = n - 1 downto 0 do
    let dpos = f.u_colptr.(j + 1) - 1 in
    let xj = w.(j) /. f.u_values.(dpos) in
    w.(j) <- xj;
    if xj <> 0.0 then
      for p = f.u_colptr.(j) to dpos - 1 do
        w.(f.u_rowind.(p)) <- w.(f.u_rowind.(p)) -. (f.u_values.(p) *. xj)
      done
  done;
  if not f.q_identity then
    for j = 0 to n - 1 do
      x.(f.q.(j)) <- w.(j)
    done

let solve f b =
  let x = Array.make f.n 0.0 in
  solve_into f b x;
  x

let lu_nnz f = (f.l_colptr.(f.n), f.u_colptr.(f.n))

let ordering_name f = f.ordering_label

let fill_ratio f =
  let nnz_a = f.a_colptr.(f.n) in
  if nnz_a = 0 then 0.0
  else float_of_int (f.l_colptr.(f.n) + f.u_colptr.(f.n)) /. float_of_int nnz_a

type health = {
  pivot_growth : float;  (* max|U| / max|A|; large values flag instability *)
  u_diag_max : float;
  u_diag_min : float;
  condition_estimate : float;  (* u_diag_max / u_diag_min *)
}

(* Pure O(nnz) scans over the stored values — callers pay only when
   they ask (run-boundary stats, post-mortems), never on the solve
   path.  The pivot-growth ratio is the classical element-growth
   estimate; the U-diagonal extremes give the standard cheap
   condition lower bound for a triangular factor. *)
let health f (a : Sparse.csc) =
  let amax = ref 0.0 in
  for p = 0 to a.Sparse.colptr.(a.Sparse.n) - 1 do
    let v = Float.abs a.Sparse.values.(p) in
    if v > !amax then amax := v
  done;
  let umax = ref 0.0 in
  for p = 0 to f.u_colptr.(f.n) - 1 do
    let v = Float.abs f.u_values.(p) in
    if v > !umax then umax := v
  done;
  let dmax = ref 0.0 and dmin = ref infinity in
  for j = 0 to f.n - 1 do
    let d = Float.abs f.u_values.(f.u_colptr.(j + 1) - 1) in
    if d > !dmax then dmax := d;
    if d < !dmin then dmin := d
  done;
  let dmin = if Float.is_finite !dmin then !dmin else 0.0 in
  {
    pivot_growth = (if !amax > 0.0 then !umax /. !amax else 0.0);
    u_diag_max = !dmax;
    u_diag_min = dmin;
    condition_estimate = (if dmin > 0.0 then !dmax /. dmin else 0.0);
  }

(* Sharing a symbolic analysis between structurally identical systems
   (batch lanes of one compiled design): the index arrays, pivot order
   and column order are immutable after [factorize], so a second
   matrix with the same pattern *content* can reuse them wholesale and
   only needs its own numeric storage.  The adopted factor starts with
   meaningless values — the caller must [refactorize] it (and fall
   back to a fresh [factorize] if the donor's pivot order is unstable
   for the new values). *)
let adopt_symbolic donor (a : Sparse.csc) =
  if
    donor.n = a.Sparse.n
    && donor.a_colptr = a.Sparse.colptr
    && donor.a_rowind = a.Sparse.rowind
  then
    Some
      {
        donor with
        l_values = Array.make (Array.length donor.l_values) 0.0;
        u_values = Array.make (Array.length donor.u_values) 0.0;
        qwork = (if donor.q_identity then [||] else Array.make donor.n 0.0);
        a_colptr = a.Sparse.colptr;
        a_rowind = a.Sparse.rowind;
        work = Array.make donor.n 0.0;
        last_failure = None;
      }
  else None
