(* Monotonic time for span timestamps.  [Monotonic_clock] (a tiny C
   stub shipped with bechamel, already a build dependency) reads
   CLOCK_MONOTONIC in nanoseconds without allocating, so timestamps
   are immune to NTP steps and cheap enough for per-Newton-solve
   spans.  All spans across all domains share one process epoch so a
   merged trace has a single time axis. *)

let now_ns () : int64 = Monotonic_clock.now ()

(* captured at module initialisation, i.e. before any span can start *)
let epoch = now_ns ()

let since_epoch_ns () = Int64.sub (now_ns ()) epoch

let ns_to_us ns = Int64.to_float ns /. 1e3

let ns_to_s ns = Int64.to_float ns /. 1e9
