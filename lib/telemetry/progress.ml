(* Per-domain progress cells.

   A long run (defect campaign, Monte-Carlo sweep, fault simulation)
   advances on worker domains; the observatory wants to see that
   movement while it happens.  Each domain owns one cell of atomic
   counters — variants started / done / failed, accepted solver steps
   — plus the label of the item it is currently chewing on.  Owners
   bump their own cell (uncontended atomics, no lock); a sampler on
   any other domain reads all cells at once.

   Same disabled-cost discipline as {!Trace}: every hook is one
   atomic load and a branch when the observatory is off, so the
   accepted-step hook can live inside the transient step loop
   (gated by [make telemetry-overhead]). *)

type cell = {
  started : int Atomic.t;
  done_ : int Atomic.t;
  failed : int Atomic.t;
  steps : int Atomic.t;
  mutable label : string;
      (* owner-written, sampler-read without a lock: a racy read
         observes some previously stored (immutable) string, which is
         exactly what a progress display wants *)
  domain : int;
}

let registry : cell list ref = ref []

let registry_mutex = Mutex.create ()

let cell_key =
  Domain.DLS.new_key (fun () ->
      let c =
        {
          started = Atomic.make 0;
          done_ = Atomic.make 0;
          failed = Atomic.make 0;
          steps = Atomic.make 0;
          label = "";
          domain = (Domain.self () :> int);
        }
      in
      Mutex.lock registry_mutex;
      registry := c :: !registry;
      Mutex.unlock registry_mutex;
      c)

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let set_enabled v = Atomic.set enabled_flag v

(* ------------------------------------------------------------------ *)
(* Recording hooks (owner domain only) *)

let variant_start label =
  if Atomic.get enabled_flag then begin
    let c = Domain.DLS.get cell_key in
    c.label <- label;
    Atomic.incr c.started
  end

let variant_finish ~failed =
  if Atomic.get enabled_flag then begin
    let c = Domain.DLS.get cell_key in
    Atomic.incr (if failed then c.failed else c.done_)
  end

let[@inline] note_step () =
  if Atomic.get enabled_flag then Atomic.incr (Domain.DLS.get cell_key).steps

let note_items n =
  if Atomic.get enabled_flag && n > 0 then begin
    let c = Domain.DLS.get cell_key in
    ignore (Atomic.fetch_and_add c.started n);
    ignore (Atomic.fetch_and_add c.done_ n)
  end

(* ------------------------------------------------------------------ *)
(* Sampling *)

type sample = {
  s_domain : int;
  s_started : int;
  s_done : int;
  s_failed : int;
  s_steps : int;
  s_label : string;
}

let sample () =
  Mutex.lock registry_mutex;
  let cells = !registry in
  Mutex.unlock registry_mutex;
  let rows =
    List.map
      (fun c ->
        {
          s_domain = c.domain;
          s_started = Atomic.get c.started;
          s_done = Atomic.get c.done_;
          s_failed = Atomic.get c.failed;
          s_steps = Atomic.get c.steps;
          s_label = c.label;
        })
      cells
  in
  List.sort (fun a b -> compare a.s_domain b.s_domain) rows

let totals rows =
  List.fold_left
    (fun (st, dn, fl, sp) s -> (st + s.s_started, dn + s.s_done, fl + s.s_failed, sp + s.s_steps))
    (0, 0, 0, 0) rows

(* Zeroing is only safe from the submitting domain while no worker is
   recording — the same quiescence every {!Trace.drain} site already
   has (before a run starts, after the pool barrier). *)
let reset () =
  Mutex.lock registry_mutex;
  let cells = !registry in
  Mutex.unlock registry_mutex;
  List.iter
    (fun c ->
      Atomic.set c.started 0;
      Atomic.set c.done_ 0;
      Atomic.set c.failed 0;
      Atomic.set c.steps 0;
      c.label <- "")
    cells

(* ------------------------------------------------------------------ *)
(* Ticker: a system thread (not a domain — an extra domain taxes every
   minor collection, a sleeping thread costs nothing) that fires [f]
   every [period_s] until stopped.  [f] runs on the ticker thread, so
   it must only touch thread-safe state — sampling cells and pumping
   an event sink qualify. *)

type ticker = { t_stop : bool Atomic.t; t_thread : Thread.t }

let ticker ~period_s f =
  let stop = Atomic.make false in
  let thread =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          Thread.delay period_s;
          if not (Atomic.get stop) then f ()
        done)
      ()
  in
  { t_stop = stop; t_thread = thread }

let stop_ticker t =
  Atomic.set t.t_stop true;
  Thread.join t.t_thread
