(* Numerical post-mortems: one machine-readable JSON document per
   `cmldft explain` run (cml-dft-postmortem/1), recording why one
   campaign variant was slow or failed — convergence narrative,
   worst-nets / worst-devices hotspot tables, per-rejection LTE blame,
   Newton retry blame, the step-size controller's dt timeline and the
   sparse-LU health summary.  Deliberately plain data: the spice layer
   produces it via Cml_dft.Explain, this module only carries, (de)-
   serialises and renders it, exactly like [Manifest].

   Determinism: every field is derived from the re-simulation and the
   source manifest ([pm_created] is copied, not stamped), so the same
   manifest explains to byte-identical JSON at any [--jobs]. *)

let schema = "cml-dft-postmortem/1"

type hotspot = {
  h_name : string;  (* net or device label *)
  h_count : int;  (* times it was the worst offender *)
  h_worst : float;  (* worst delta (nets) / junction error (devices) *)
}

type lte_blame = {
  l_time : float;
  l_h : float;  (* the step size the rejection threw away *)
  l_node : string;  (* the node whose LTE forced the step down *)
  l_ratio : float;  (* |x - xpred| / tol at that node *)
  l_cascade : int;  (* consecutive rejections ending at this one *)
}

type retry_blame = {
  r_time : float;
  r_net : string;  (* worst unknown of the failed solve's last iteration *)
  r_delta : float;
}

type t = {
  pm_variant : string;
  pm_classes : string list;  (* the manifest's classification of it *)
  pm_selection : string;  (* why this variant was picked *)
  pm_source : string;  (* manifest/events path the variant came from *)
  pm_git : string;
  pm_created : string;  (* copied from the source manifest *)
  pm_options : (string * string) list;
  pm_outcome : string;  (* "completed" or "failed: <msg>" *)
  pm_narrative : string list;
  pm_stats : (string * float) list;  (* solver counters of the re-run *)
  pm_worst_nets : hotspot list;
  pm_worst_devices : hotspot list;
  pm_lte : lte_blame list;
  pm_retries : retry_blame list;
  pm_dt_times : float list;  (* decimated dt timeline *)
  pm_dt_steps : float list;
  pm_dt_causes : (string * int) list;  (* cause histogram, full run *)
  pm_lu : (string * float) list;  (* LU health numbers *)
}

(* ------------------------------------------------------------------ *)
(* JSON round trip *)

(* JSON has no inf/nan; a blown condition estimate must not poison the
   document *)
let fin v = if Float.is_finite v then v else 0.0

let hotspot_json h =
  Json.Obj
    [
      ("name", Json.Str h.h_name);
      ("count", Json.Num (float_of_int h.h_count));
      ("worst", Json.Num (fin h.h_worst));
    ]

let lte_json l =
  Json.Obj
    [
      ("time", Json.Num (fin l.l_time));
      ("h", Json.Num (fin l.l_h));
      ("node", Json.Str l.l_node);
      ("ratio", Json.Num (fin l.l_ratio));
      ("cascade", Json.Num (float_of_int l.l_cascade));
    ]

let retry_json r =
  Json.Obj
    [
      ("time", Json.Num (fin r.r_time));
      ("net", Json.Str r.r_net);
      ("delta", Json.Num (fin r.r_delta));
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("variant", Json.Str t.pm_variant);
      ("classes", Json.List (List.map (fun c -> Json.Str c) t.pm_classes));
      ("selection", Json.Str t.pm_selection);
      ("source", Json.Str t.pm_source);
      ("git", Json.Str t.pm_git);
      ("created", Json.Str t.pm_created);
      ("options", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) t.pm_options));
      ("outcome", Json.Str t.pm_outcome);
      ("narrative", Json.List (List.map (fun s -> Json.Str s) t.pm_narrative));
      ("stats", Json.Obj (List.map (fun (k, v) -> (k, Json.Num (fin v))) t.pm_stats));
      ("worst_nets", Json.List (List.map hotspot_json t.pm_worst_nets));
      ("worst_devices", Json.List (List.map hotspot_json t.pm_worst_devices));
      ("lte_rejections", Json.List (List.map lte_json t.pm_lte));
      ("newton_retries", Json.List (List.map retry_json t.pm_retries));
      ("dt_times", Json.List (List.map (fun v -> Json.Num (fin v)) t.pm_dt_times));
      ("dt_steps", Json.List (List.map (fun v -> Json.Num (fin v)) t.pm_dt_steps));
      ( "dt_causes",
        Json.Obj (List.map (fun (k, n) -> (k, Json.Num (float_of_int n))) t.pm_dt_causes) );
      ("lu", Json.Obj (List.map (fun (k, v) -> (k, Json.Num (fin v))) t.pm_lu));
    ]

exception Bad_postmortem of string

let str_or j ~default = match Json.to_str j with Some s -> s | None -> default

let member_str j key ~default =
  match Json.member key j with Some v -> str_or v ~default | None -> default

let member_num_assoc j key =
  match Json.member key j with
  | Some (Json.Obj kvs) ->
      List.filter_map (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float v)) kvs
  | _ -> []

let member_nums j key =
  match Json.member key j with
  | Some (Json.List vs) -> List.filter_map Json.to_float vs
  | _ -> []

let hotspot_of_json j =
  match Json.member "name" j with
  | Some (Json.Str name) ->
      let num key = match Json.member key j with Some (Json.Num f) -> f | _ -> 0.0 in
      Some { h_name = name; h_count = int_of_float (num "count"); h_worst = num "worst" }
  | _ -> None

let lte_of_json j =
  match Json.member "node" j with
  | Some (Json.Str node) ->
      let num key = match Json.member key j with Some (Json.Num f) -> f | _ -> 0.0 in
      Some
        {
          l_time = num "time";
          l_h = num "h";
          l_node = node;
          l_ratio = num "ratio";
          l_cascade = int_of_float (num "cascade");
        }
  | _ -> None

let retry_of_json j =
  match Json.member "net" j with
  | Some (Json.Str net) ->
      let num key = match Json.member key j with Some (Json.Num f) -> f | _ -> 0.0 in
      Some { r_time = num "time"; r_net = net; r_delta = num "delta" }
  | _ -> None

let of_json j =
  (match Json.member "schema" j with
  | Some (Json.Str s) when s = schema -> ()
  | Some (Json.Str s) -> raise (Bad_postmortem (Printf.sprintf "unsupported schema %S" s))
  | _ -> raise (Bad_postmortem "missing \"schema\" member"));
  let strs key =
    match Json.member key j with
    | Some (Json.List vs) -> List.filter_map Json.to_str vs
    | _ -> []
  in
  let rows key of_row =
    match Json.member key j with
    | Some (Json.List vs) -> List.filter_map of_row vs
    | _ -> []
  in
  {
    pm_variant = member_str j "variant" ~default:"?";
    pm_classes = strs "classes";
    pm_selection = member_str j "selection" ~default:"?";
    pm_source = member_str j "source" ~default:"?";
    pm_git = member_str j "git" ~default:"?";
    pm_created = member_str j "created" ~default:"?";
    pm_options =
      (match Json.member "options" j with
      | Some (Json.Obj kvs) ->
          List.filter_map (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v)) kvs
      | _ -> []);
    pm_outcome = member_str j "outcome" ~default:"?";
    pm_narrative = strs "narrative";
    pm_stats = member_num_assoc j "stats";
    pm_worst_nets = rows "worst_nets" hotspot_of_json;
    pm_worst_devices = rows "worst_devices" hotspot_of_json;
    pm_lte = rows "lte_rejections" lte_of_json;
    pm_retries = rows "newton_retries" retry_of_json;
    pm_dt_times = member_nums j "dt_times";
    pm_dt_steps = member_nums j "dt_steps";
    pm_dt_causes =
      List.map (fun (k, f) -> (k, int_of_float f)) (member_num_assoc j "dt_causes");
    pm_lu = member_num_assoc j "lu";
  }

let write ~path t = Json.write_file path (to_json t)

let read ~path = of_json (Json.parse_file path)

(* ------------------------------------------------------------------ *)
(* Report rendering *)

let render_text t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "post-mortem: %s" t.pm_variant;
  line "source  : %s (git %s, created %s)" t.pm_source t.pm_git t.pm_created;
  line "picked  : %s" t.pm_selection;
  (match t.pm_classes with
  | [] -> line "classes : (benign)"
  | cs -> line "classes : %s" (String.concat " " cs));
  line "outcome : %s" t.pm_outcome;
  if t.pm_options <> [] then begin
    line "options :";
    List.iter (fun (k, v) -> line "  %-22s %s" k v) t.pm_options
  end;
  if t.pm_narrative <> [] then begin
    line "";
    List.iter (fun s -> line "  %s" s) t.pm_narrative
  end;
  if t.pm_stats <> [] then begin
    line "";
    line "solver counters (re-run with introspection):";
    List.iter (fun (k, v) -> line "  %-32s %14.6g" k v) t.pm_stats
  end;
  if t.pm_worst_nets <> [] then begin
    line "";
    line "worst nets (Newton delta-norm attribution):";
    line "  %-28s %12s %14s" "net" "times worst" "max delta";
    List.iter (fun h -> line "  %-28s %12d %14.4g" h.h_name h.h_count h.h_worst) t.pm_worst_nets
  end;
  if t.pm_worst_devices <> [] then begin
    line "";
    line "worst devices (junction limiting):";
    line "  %-28s %12s %14s" "device" "times worst" "max error";
    List.iter
      (fun h -> line "  %-28s %12d %14.4g" h.h_name h.h_count h.h_worst)
      t.pm_worst_devices
  end;
  if t.pm_lte <> [] then begin
    line "";
    line "LTE rejections (worst ratio first):";
    line "  %-12s %-12s %-28s %10s %8s" "t (s)" "h (s)" "blamed node" "ratio" "cascade";
    List.iter
      (fun l ->
        line "  %-12.4g %-12.3g %-28s %10.2f %8d" l.l_time l.l_h l.l_node l.l_ratio l.l_cascade)
      t.pm_lte
  end;
  if t.pm_retries <> [] then begin
    line "";
    line "Newton retries (failed solves, blamed net of the last iteration):";
    line "  %-12s %-28s %14s" "t (s)" "blamed net" "last delta";
    List.iter (fun r -> line "  %-12.4g %-28s %14.4g" r.r_time r.r_net r.r_delta) t.pm_retries
  end;
  if t.pm_dt_steps <> [] then begin
    let lo = List.fold_left Float.min infinity t.pm_dt_steps in
    let hi = List.fold_left Float.max neg_infinity t.pm_dt_steps in
    line "";
    line "dt timeline (%d points, %.3g s .. %.3g s):" (List.length t.pm_dt_steps) lo hi;
    line "  %s" (Trend.sparkline t.pm_dt_steps);
    if t.pm_dt_causes <> [] then
      line "  causes: %s"
        (String.concat ", "
           (List.map (fun (k, n) -> Printf.sprintf "%s %d" k n) t.pm_dt_causes))
  end;
  line "";
  line "LU health:";
  if t.pm_lu = [] then line "  dense backend (no sparse factorization to audit)"
  else List.iter (fun (k, v) -> line "  %-32s %14.6g" k v) t.pm_lu;
  Buffer.contents b
