(** Numerical post-mortem documents ([cml-dft-postmortem/1]).

    One JSON document per [cmldft explain] run, recording why one
    campaign variant was slow or failed: a convergence narrative,
    worst-nets / worst-devices hotspot tables, per-rejection LTE
    blame, Newton retry blame, the step-size controller's dt timeline
    and the sparse-LU health summary.  This module only carries,
    (de)serialises and renders the document — Cml_dft.Explain builds
    it.

    Every field derives from the re-simulation and the source
    manifest ([pm_created] is copied, not stamped), so explaining the
    same manifest yields byte-identical JSON at any [--jobs]. *)

val schema : string
(** ["cml-dft-postmortem/1"] *)

type hotspot = {
  h_name : string;  (** net or device label *)
  h_count : int;  (** times it was the worst offender *)
  h_worst : float;
      (** worst Newton delta (nets) / junction error (devices) *)
}

type lte_blame = {
  l_time : float;
  l_h : float;  (** the step size the rejection threw away *)
  l_node : string;  (** the node whose LTE forced the step down *)
  l_ratio : float;  (** |x - xpred| / tol at that node *)
  l_cascade : int;  (** consecutive rejections ending at this one *)
}

type retry_blame = {
  r_time : float;
  r_net : string;
      (** worst unknown of the failed solve's final iteration *)
  r_delta : float;
}

type t = {
  pm_variant : string;
  pm_classes : string list;  (** the manifest's classification of it *)
  pm_selection : string;  (** why this variant was picked *)
  pm_source : string;  (** manifest/events path it came from *)
  pm_git : string;
  pm_created : string;  (** copied from the source manifest *)
  pm_options : (string * string) list;
  pm_outcome : string;  (** ["completed"] or ["failed: <msg>"] *)
  pm_narrative : string list;
  pm_stats : (string * float) list;  (** solver counters of the re-run *)
  pm_worst_nets : hotspot list;
  pm_worst_devices : hotspot list;
  pm_lte : lte_blame list;
  pm_retries : retry_blame list;
  pm_dt_times : float list;  (** decimated dt timeline *)
  pm_dt_steps : float list;
  pm_dt_causes : (string * int) list;  (** cause histogram, full run *)
  pm_lu : (string * float) list;  (** LU health numbers *)
}

exception Bad_postmortem of string

val to_json : t -> Json.t
(** Non-finite floats are serialised as 0 (JSON has no inf/nan). *)

val of_json : Json.t -> t
(** @raise Bad_postmortem on a missing or unsupported schema tag. *)

val write : path:string -> t -> unit

val read : path:string -> t
(** @raise Bad_postmortem / [Json.Parse_error] on bad input. *)

val render_text : t -> string
(** The [cmldft report] rendering: narrative, hotspot tables, blame
    tables, dt sparkline and LU health. *)
