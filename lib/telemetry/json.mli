(** Minimal JSON reader/writer shared by the telemetry sinks (Chrome
    traces, metrics dumps, run manifests) and the benchmark history
    file.  Handles exactly the documents this library emits; numbers
    are floats, strings are byte strings with ASCII escapes. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of int * string
(** Byte offset and message of the first malformed construct. *)

val parse : string -> t
(** @raise Parse_error on malformed input. *)

val parse_file : string -> t
(** @raise Parse_error on malformed input, [Sys_error] on IO. *)

val to_string : t -> string
(** Pretty-printed, 2-space indent, trailing newline. *)

val to_compact_string : t -> string
(** Single line, no spaces — for JSONL sinks and large event arrays. *)

val write_file : string -> t -> unit

(** {1 Accessors} — shallow, [None] on a type mismatch. *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_float : t -> float option
val to_str : t -> string option
