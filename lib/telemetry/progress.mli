(** Per-domain lock-free progress cells.

    Worker domains report run progress (variants started / done /
    failed, accepted solver steps, current item label) into a cell
    they own; a sampler on any domain snapshots every cell at once.
    Disabled cost is one atomic load and a branch per hook — cheap
    enough for the transient step loop, and gated by
    [make telemetry-overhead] alongside the {!Trace} hooks.

    Cells are process-global and cumulative; a run calls {!reset}
    before its first hook (from the submitting domain, while the pool
    is quiescent) so samples read as per-run counts. *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Progress recording is off by default; {!Events.run_start} turns
    it on for the duration of an instrumented run. *)

(** {1 Recording} — owner-domain hooks, no-ops while disabled. *)

val variant_start : string -> unit
(** Mark one variant started on this domain and set its label. *)

val variant_finish : failed:bool -> unit
(** Mark the variant done (or failed) on this domain. *)

val note_step : unit -> unit
(** One accepted solver step on this domain.  Hot path: the transient
    integrator calls this per accepted step. *)

val note_items : int -> unit
(** [n] items started and finished at once — for sub-variant-grained
    work (logic fault simulation) where per-item labels would cost
    more than the items. *)

(** {1 Sampling} *)

type sample = {
  s_domain : int;  (** domain id, matches trace [tid] *)
  s_started : int;
  s_done : int;
  s_failed : int;
  s_steps : int;
  s_label : string;  (** most recent {!variant_start} label *)
}

val sample : unit -> sample list
(** Snapshot of every registered cell, sorted by domain id.  Safe
    from any thread or domain while owners are recording. *)

val totals : sample list -> int * int * int * int
(** Summed [(started, done, failed, steps)]. *)

val reset : unit -> unit
(** Zero every cell.  Only safe while no other domain is recording. *)

(** {1 Ticker} — the lightweight sampler loop. *)

type ticker

val ticker : period_s:float -> (unit -> unit) -> ticker
(** Run [f] every [period_s] seconds on a system thread until
    {!stop_ticker}.  [f] must only touch thread-safe state. *)

val stop_ticker : ticker -> unit
(** Stop the loop and join the thread (waits at most one period). *)
