(** Monotonic nanosecond clock (CLOCK_MONOTONIC via bechamel's stub)
    with a process-wide epoch, so spans from every domain share one
    time axis. *)

val now_ns : unit -> int64
(** Raw monotonic reading, ns.  Does not allocate. *)

val epoch : int64
(** The reading captured at module initialisation. *)

val since_epoch_ns : unit -> int64
(** [now_ns () - epoch]. *)

val ns_to_us : int64 -> float
val ns_to_s : int64 -> float
