(* Run manifests: one machine-readable JSON document per campaign /
   Monte-Carlo run / characterisation sweep, recording what ran
   (tool, git revision, options, seed), what came out (per-variant
   classification and solver metrics), and where the time went
   (metrics snapshot, span summary).  Two runs of the same code and
   options differ only in timings, so manifests are diffable; the
   [cmldft report] subcommand renders them for humans. *)

let schema = "cml-dft-manifest/1"

type variant = {
  v_name : string;
  v_classes : string list;  (* classification labels, [] = benign/none *)
  v_seconds : float;
  v_metrics : (string * float) list;
}

type t = {
  kind : string;
  tool : string;
  git : string;
  created : string;  (* UTC, ISO-8601; informative only *)
  seed : int option;
  options : (string * string) list;
  healing : (string * int) list;
      (* healing-depth histogram ("clean" / "depth=N" / "unhealed");
         optional in the JSON, [] when absent — older readers of
         cml-dft-manifest/1 simply ignore the extra member *)
  variants : variant list;
  metrics : Metrics.snapshot;
  spans : (string * Trace.span_agg) list;
}

let git_describe () =
  match Unix.open_process_in "git describe --always --dirty 2>/dev/null" with
  | exception Unix.Unix_error _ -> "unknown"
  | ic -> (
      let line = try input_line ic with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ | (exception Unix.Unix_error _) -> "unknown")

let timestamp () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let create ?seed ?(options = []) ?(healing = []) ?(variants = []) ?(metrics = []) ?(spans = [])
    ~kind () =
  {
    kind;
    tool = "cmldft";
    git = git_describe ();
    created = timestamp ();
    seed;
    options;
    healing;
    variants;
    metrics;
    spans;
  }

(* ------------------------------------------------------------------ *)
(* JSON round trip *)

let variant_json v =
  Json.Obj
    [
      ("name", Json.Str v.v_name);
      ("classes", Json.List (List.map (fun c -> Json.Str c) v.v_classes));
      ("seconds", Json.Num v.v_seconds);
      ("metrics", Json.Obj (List.map (fun (k, f) -> (k, Json.Num f)) v.v_metrics));
    ]

let span_json (name, (a : Trace.span_agg)) =
  Json.Obj
    [
      ("name", Json.Str name);
      ("count", Json.Num (float_of_int a.Trace.sa_count));
      ("total_s", Json.Num (Clock.ns_to_s a.Trace.sa_total_ns));
      ("max_s", Json.Num (Clock.ns_to_s a.Trace.sa_max_ns));
    ]

let to_json t =
  Json.Obj
    ([
       ("schema", Json.Str schema);
       ("kind", Json.Str t.kind);
       ("tool", Json.Str t.tool);
       ("git", Json.Str t.git);
       ("created", Json.Str t.created);
     ]
    @ (match t.seed with Some s -> [ ("seed", Json.Num (float_of_int s)) ] | None -> [])
    @ [ ("options", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) t.options)) ]
    @ (match t.healing with
      | [] -> []
      | h ->
          [ ("healing", Json.Obj (List.map (fun (k, n) -> (k, Json.Num (float_of_int n))) h)) ])
    @ [
        ("variants", Json.List (List.map variant_json t.variants));
        ("metrics", Metrics.to_json t.metrics);
        ("spans", Json.List (List.map span_json t.spans));
      ])

let str_or j ~default = match Json.to_str j with Some s -> s | None -> default

let variant_of_json j =
  match Json.member "name" j with
  | Some (Json.Str name) ->
      Some
        {
          v_name = name;
          v_classes =
            (match Json.member "classes" j with
            | Some (Json.List cs) -> List.filter_map Json.to_str cs
            | _ -> []);
          v_seconds =
            (match Json.member "seconds" j with Some (Json.Num s) -> s | _ -> 0.0);
          v_metrics =
            (match Json.member "metrics" j with
            | Some (Json.Obj ms) ->
                List.filter_map
                  (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float v))
                  ms
            | _ -> []);
        }
  | _ -> None

let span_of_json j =
  match Json.member "name" j with
  | Some (Json.Str name) ->
      let num key = match Json.member key j with Some (Json.Num f) -> f | _ -> 0.0 in
      let ns s = Int64.of_float (s *. 1e9) in
      Some
        ( name,
          {
            Trace.sa_count = int_of_float (num "count");
            Trace.sa_total_ns = ns (num "total_s");
            Trace.sa_max_ns = ns (num "max_s");
          } )
  | _ -> None

exception Bad_manifest of string

let of_json j =
  (match Json.member "schema" j with
  | Some (Json.Str s) when s = schema -> ()
  | Some (Json.Str s) -> raise (Bad_manifest (Printf.sprintf "unsupported schema %S" s))
  | _ -> raise (Bad_manifest "missing \"schema\" member"));
  {
    kind = (match Json.member "kind" j with Some k -> str_or k ~default:"?" | None -> "?");
    tool = (match Json.member "tool" j with Some k -> str_or k ~default:"?" | None -> "?");
    git = (match Json.member "git" j with Some k -> str_or k ~default:"?" | None -> "?");
    created =
      (match Json.member "created" j with Some k -> str_or k ~default:"?" | None -> "?");
    seed =
      (match Json.member "seed" j with
      | Some (Json.Num s) -> Some (int_of_float s)
      | _ -> None);
    options =
      (match Json.member "options" j with
      | Some (Json.Obj kvs) ->
          List.filter_map (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v)) kvs
      | _ -> []);
    healing =
      (match Json.member "healing" j with
      | Some (Json.Obj kvs) ->
          List.filter_map
            (fun (k, v) -> Option.map (fun f -> (k, int_of_float f)) (Json.to_float v))
            kvs
      | _ -> []);
    variants =
      (match Json.member "variants" j with
      | Some (Json.List vs) -> List.filter_map variant_of_json vs
      | _ -> []);
    metrics =
      (match Json.member "metrics" j with Some m -> Metrics.of_json m | None -> []);
    spans =
      (match Json.member "spans" j with
      | Some (Json.List ss) -> List.filter_map span_of_json ss
      | _ -> []);
  }

let write ~path t = Json.write_file path (to_json t)

let read ~path = of_json (Json.parse_file path)

(* ------------------------------------------------------------------ *)
(* Report rendering *)

let class_histogram t =
  let tbl = Hashtbl.create 8 in
  let bump c = Hashtbl.replace tbl c (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c)) in
  List.iter
    (fun v -> match v.v_classes with [] -> bump "benign" | cs -> List.iter bump cs)
    t.variants;
  List.sort
    (fun (_, a) (_, b) -> compare (b : int) a)
    (Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl [])

let slowest ?(n = 5) t =
  let sorted = List.sort (fun a b -> compare b.v_seconds a.v_seconds) t.variants in
  List.filteri (fun i _ -> i < n) sorted

let render_text ?(top = 5) t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "manifest: %s run (%s, git %s, created %s)" t.kind t.tool t.git t.created;
  (match t.seed with Some s -> line "seed    : %d" s | None -> ());
  if t.options <> [] then begin
    line "options :";
    List.iter (fun (k, v) -> line "  %-22s %s" k v) t.options
  end;
  (* surface the sparse-LU fill/ordering gauges as one line — the
     full metrics dump below keeps the raw values *)
  let num k =
    match List.assoc_opt k t.metrics with
    | Some (Metrics.Gauge v) -> Some v
    | Some (Metrics.Counter n) -> Some (float_of_int n)
    | Some (Metrics.Histogram _) | None -> None
  in
  (match num "solver.lu_fill_nnz" with
  | Some nnz when nnz > 0.0 ->
      let get k = Option.value ~default:0.0 (num k) in
      line "solver  : nnz(L+U) %.0f, fill ratio %.2f, orderings amd %.0f / natural %.0f" nnz
        (get "solver.lu_fill_ratio")
        (get "solver.ordering.amd")
        (get "solver.ordering.natural")
  | Some _ | None -> ());
  if t.variants <> [] then begin
    line "";
    line "classification (%d variants):" (List.length t.variants);
    List.iter (fun (c, n) -> line "  %-24s %6d" c n) (class_histogram t);
    if t.healing <> [] then begin
      line "";
      line "healing depth:";
      List.iter (fun (c, n) -> line "  %-24s %6d" c n) t.healing
    end;
    line "";
    line "slowest variants:";
    List.iter
      (fun v ->
        line "  %-44s %8.3f s%s" v.v_name v.v_seconds
          (match v.v_classes with [] -> "" | cs -> "  [" ^ String.concat " " cs ^ "]"))
      (slowest ~n:top t)
  end;
  if t.metrics <> [] then begin
    line "";
    line "metrics:";
    Buffer.add_string b (Metrics.render_text t.metrics)
  end;
  if t.spans <> [] then begin
    line "";
    line "span summary (total time, heaviest first):";
    line "  %-28s %10s %12s %12s" "span" "count" "total" "max";
    List.iter
      (fun (name, (a : Trace.span_agg)) ->
        line "  %-28s %10d %10.3f s %10.3f s" name a.Trace.sa_count
          (Clock.ns_to_s a.Trace.sa_total_ns)
          (Clock.ns_to_s a.Trace.sa_max_ns))
      t.spans
  end;
  Buffer.contents b
