(** Run manifests: a machine-readable record of a campaign /
    Monte-Carlo run / characterisation sweep — tool and git revision,
    options and seed, per-variant classification + metrics, a
    metrics-registry snapshot and a span summary — so results are
    reproducible and diffable.  Rendered for humans by
    [cmldft report].

    A manifest records a run after the fact; its streaming sibling is
    the {!Events} JSONL run-event schema ([cml-dft-events/1]), written
    while the run is in flight.  Committed examples of both live in
    [examples/manifests/] ([campaign_x3.json] next to
    [campaign_x3.events.jsonl]), re-rendered by [make check]. *)

val schema : string
(** ["cml-dft-manifest/1"]. *)

type variant = {
  v_name : string;  (** defect / sample / sweep-point description *)
  v_classes : string list;  (** classification labels; [[]] reads as benign *)
  v_seconds : float;  (** wall-clock of this variant's simulation *)
  v_metrics : (string * float) list;  (** flat per-variant numbers (solver stats, measurements) *)
}

type t = {
  kind : string;  (** ["campaign"], ["montecarlo"], ["sweep"], ... *)
  tool : string;
  git : string;  (** [git describe --always --dirty], or ["unknown"] *)
  created : string;  (** UTC ISO-8601, informative only *)
  seed : int option;
  options : (string * string) list;
  healing : (string * int) list;
      (** healing-depth histogram ("clean" / "depth=N" / "unhealed",
          see {!Cml_defects.Campaign.healing_histogram}); optional in
          the JSON — absent reads as [[]], and the member is omitted
          when empty, so the schema stays ["cml-dft-manifest/1"] *)
  variants : variant list;
  metrics : Metrics.snapshot;  (** registry delta over the run *)
  spans : (string * Trace.span_agg) list;
}

val create :
  ?seed:int ->
  ?options:(string * string) list ->
  ?healing:(string * int) list ->
  ?variants:variant list ->
  ?metrics:Metrics.snapshot ->
  ?spans:(string * Trace.span_agg) list ->
  kind:string ->
  unit ->
  t
(** Stamps tool, git revision and creation time. *)

val git_describe : unit -> string

exception Bad_manifest of string

val to_json : t -> Json.t
val of_json : Json.t -> t
(** @raise Bad_manifest on a missing or unsupported schema. *)

val write : path:string -> t -> unit
val read : path:string -> t
(** @raise Bad_manifest / [Json.Parse_error] / [Sys_error]. *)

(** {1 Report views} *)

val class_histogram : t -> (string * int) list
(** Label counts over variants (a variant with no labels counts as
    ["benign"]), most frequent first. *)

val slowest : ?n:int -> t -> variant list

val render_text : ?top:int -> t -> string
(** The [cmldft report] body: classification histogram, slowest
    variants, metrics (with histogram percentiles), span summary. *)
