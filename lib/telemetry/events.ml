(* Streaming run events: an append-only JSONL stream describing one
   run's lifecycle (cml-dft-events/1), written while the run is in
   flight so a `cmldft watch` (or a server-mode client) can follow
   along.

   Determinism contract: workers finish variants in whatever order
   the pool schedules, but the stream must not depend on that — the
   acceptance bar is byte-identical streams modulo timestamps at any
   [--jobs].  So workers never write the stream; they deposit each
   finished variant into an indexed slot (a plain write made visible
   by an atomic ready flag), and a single pump reassembles the
   contiguous prefix in variant-index order, exactly like
   {!Cml_runtime.Pool.parallel_map} reassembles results.  Heartbeats
   fire at work milestones (every [total/8] emitted variants), not on
   the wall clock, so their count and position are deterministic too.
   Every wall-clock-derived or host-dependent field (elapsed, ETA,
   rate, jobs, per-domain lanes) lives in a "timing" member that
   {!normalize} strips; "warning" events are host-dependent by nature
   (oversubscription depends on the core count) and are dropped
   entirely by {!normalize}.

   The pump runs from a {!Progress.ticker} thread while the run is in
   flight (liveness) and once more at {!finish} (completeness); since
   emission order is a pure function of the slot prefix, pump timing
   cannot change the stream. *)

let schema = "cml-dft-events/1"

(* ------------------------------------------------------------------ *)
(* Sink: one run-event stream, JSONL, line-buffered under a mutex so
   worker-side warnings and the pump thread interleave at line
   granularity only. *)

type sink = {
  sk_oc : out_channel;
  sk_close : bool;  (* false for stderr *)
  sk_mutex : Mutex.t;
  sk_t0 : int64;
}

let open_sink path =
  let oc, close = if path = "-" then (stderr, false) else (open_out path, true) in
  { sk_oc = oc; sk_close = close; sk_mutex = Mutex.create (); sk_t0 = Clock.now_ns () }

let current : sink option Atomic.t = Atomic.make None

let install s = Atomic.set current (Some s)

let installed () = Atomic.get current <> None

let close () =
  match Atomic.get current with
  | None -> ()
  | Some s ->
      Atomic.set current None;
      flush s.sk_oc;
      if s.sk_close then close_out s.sk_oc

let emit s j =
  Mutex.lock s.sk_mutex;
  output_string s.sk_oc (Json.to_compact_string j);
  output_char s.sk_oc '\n';
  flush s.sk_oc;
  Mutex.unlock s.sk_mutex

let t_s s = Clock.ns_to_s (Int64.sub (Clock.now_ns ()) s.sk_t0)

(* ------------------------------------------------------------------ *)
(* Completed-work-rate ETA estimator.  Pure arithmetic over explicit
   clock readings, so tests drive it with synthetic times. *)

module Estimator = struct
  type t = { e_total : int; e_start_s : float; mutable e_completed : int }

  let create ~total ~now_s = { e_total = total; e_start_s = now_s; e_completed = 0 }

  (* [completed] counts retired lanes whatever their fate: a failed
     variant consumed its share of the run just like a clean one, so
     retirement must pull the ETA down, never push it up. *)
  let note t ~completed = if completed > t.e_completed then t.e_completed <- completed

  let rate_per_s t ~now_s =
    if t.e_completed <= 0 then None
    else
      let elapsed = Float.max 1e-9 (now_s -. t.e_start_s) in
      Some (float_of_int t.e_completed /. elapsed)

  let eta_s t ~now_s =
    match rate_per_s t ~now_s with
    | None -> None
    | Some rate -> Some (float_of_int (t.e_total - t.e_completed) /. rate)
end

(* ------------------------------------------------------------------ *)
(* Event payloads *)

type variant = {
  ev_idx : int;
  ev_name : string;
  ev_classes : string list;
  ev_healing : string option;  (* "clean" / "depth=N" / "unhealed" *)
  ev_failed : bool;
  ev_steps : int;  (* accepted solver steps, deterministic *)
  ev_seconds : float;  (* wall time: timing-only *)
}

type domain_util = {
  du_domain : int;
  du_busy_s : float;
  du_items : int;
  du_longest_stall_s : float;
  du_busy_ratio : float;
}

(* Build one utilization row from raw pool counters and publish the
   busy ratio as a gauge, so manifests carry
   [pool.domain.<i>.busy_ratio] alongside the event stream. *)
let util_row ~wall_s ~domain ~busy_ns ~items ~longest_stall_ns =
  let busy_s = Clock.ns_to_s busy_ns in
  let ratio = if wall_s > 0.0 then busy_s /. wall_s else 0.0 in
  Metrics.set (Metrics.gauge (Printf.sprintf "pool.domain.%d.busy_ratio" domain)) ratio;
  {
    du_domain = domain;
    du_busy_s = busy_s;
    du_items = items;
    du_longest_stall_s = Clock.ns_to_s longest_stall_ns;
    du_busy_ratio = ratio;
  }

let timing members = ("timing", Json.Obj members)

let lane_json (s : Progress.sample) =
  Json.Obj
    [
      ("id", Json.Num (float_of_int s.Progress.s_domain));
      ("started", Json.Num (float_of_int s.Progress.s_started));
      ("done", Json.Num (float_of_int s.Progress.s_done));
      ("failed", Json.Num (float_of_int s.Progress.s_failed));
      ("steps", Json.Num (float_of_int s.Progress.s_steps));
      ("label", Json.Str s.Progress.s_label);
    ]

let util_json u =
  Json.Obj
    [
      ("id", Json.Num (float_of_int u.du_domain));
      ("busy_s", Json.Num u.du_busy_s);
      ("busy_ratio", Json.Num u.du_busy_ratio);
      ("items", Json.Num (float_of_int u.du_items));
      ("longest_stall_s", Json.Num u.du_longest_stall_s);
    ]

(* ------------------------------------------------------------------ *)
(* Run tracker *)

type run = {
  r_sink : sink option;  (* None: the whole tracker is inert *)
  r_kind : string;
  r_total : int;
  r_slots : variant option array;
  r_ready : int Atomic.t array;
  r_mutex : Mutex.t;  (* pump state below *)
  mutable r_emitted : int;
  mutable r_failed : int;
  mutable r_steps : int;
  r_hb_every : int;
  r_est : Estimator.t;
  mutable r_ticker : Progress.ticker option;
}

let inert kind =
  {
    r_sink = None;
    r_kind = kind;
    r_total = 0;
    r_slots = [||];
    r_ready = [||];
    r_mutex = Mutex.create ();
    r_emitted = 0;
    r_failed = 0;
    r_steps = 0;
    r_hb_every = 1;
    r_est = Estimator.create ~total:0 ~now_s:0.0;
    r_ticker = None;
  }

let heartbeat_json r s =
  let now_s = t_s s in
  Estimator.note r.r_est ~completed:r.r_emitted;
  let lanes = if Progress.enabled () then Progress.sample () else [] in
  Json.Obj
    [
      ("ev", Json.Str "heartbeat");
      ("done", Json.Num (float_of_int (r.r_emitted - r.r_failed)));
      ("failed", Json.Num (float_of_int r.r_failed));
      ("total", Json.Num (float_of_int r.r_total));
      ("accepted_steps", Json.Num (float_of_int r.r_steps));
      timing
        ([ ("t_s", Json.Num now_s) ]
        @ (match Estimator.eta_s r.r_est ~now_s with
          | Some eta -> [ ("eta_s", Json.Num eta) ]
          | None -> [])
        @ (match Estimator.rate_per_s r.r_est ~now_s with
          | Some rate -> [ ("rate_per_s", Json.Num rate) ]
          | None -> [])
        @ [ ("domains", Json.List (List.map lane_json lanes)) ]);
    ]

(* Emit the contiguous ready prefix, interleaving milestone
   heartbeats.  Holding [r_mutex] across emission keeps the stream's
   variant order identical to index order whichever thread pumps. *)
let pump r =
  match r.r_sink with
  | None -> ()
  | Some s ->
      Mutex.lock r.r_mutex;
      (try
         while r.r_emitted < r.r_total && Atomic.get r.r_ready.(r.r_emitted) = 1 do
           let v =
             match r.r_slots.(r.r_emitted) with Some v -> v | None -> assert false
           in
           emit s
             (Json.Obj
                [
                  ("ev", Json.Str "variant_start");
                  ("idx", Json.Num (float_of_int v.ev_idx));
                  ("name", Json.Str v.ev_name);
                  timing [ ("t_s", Json.Num (t_s s)) ];
                ]);
           emit s
             (Json.Obj
                ([
                   ("ev", Json.Str "variant_done");
                   ("idx", Json.Num (float_of_int v.ev_idx));
                   ("name", Json.Str v.ev_name);
                   ("classes", Json.List (List.map (fun c -> Json.Str c) v.ev_classes));
                 ]
                @ (match v.ev_healing with
                  | Some h -> [ ("healing", Json.Str h) ]
                  | None -> [])
                @ [
                    ("accepted_steps", Json.Num (float_of_int v.ev_steps));
                    timing
                      [ ("t_s", Json.Num (t_s s)); ("seconds", Json.Num v.ev_seconds) ];
                  ]));
           r.r_emitted <- r.r_emitted + 1;
           if v.ev_failed then r.r_failed <- r.r_failed + 1;
           r.r_steps <- r.r_steps + v.ev_steps;
           if r.r_emitted mod r.r_hb_every = 0 && r.r_emitted < r.r_total then
             emit s (heartbeat_json r s)
         done
       with e ->
         Mutex.unlock r.r_mutex;
         raise e);
      Mutex.unlock r.r_mutex

let run_start ~kind ~total ?jobs ?(options = []) () =
  match Atomic.get current with
  | None -> inert kind
  | Some s ->
      Progress.reset ();
      Progress.set_enabled true;
      emit s
        (Json.Obj
           [
             ("ev", Json.Str "run_start");
             ("schema", Json.Str schema);
             ("kind", Json.Str kind);
             ("total", Json.Num (float_of_int total));
             ("options", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) options));
             timing
               ([ ("t_s", Json.Num (t_s s)) ]
               @ (match jobs with
                 | Some j -> [ ("jobs", Json.Num (float_of_int j)) ]
                 | None -> [])
               @ [
                   ( "cores",
                     Json.Num (float_of_int (Domain.recommended_domain_count ())) );
                 ]);
           ]);
      let r =
        {
          r_sink = Some s;
          r_kind = kind;
          r_total = total;
          r_slots = Array.make (max 1 total) None;
          r_ready = Array.init (max 1 total) (fun _ -> Atomic.make 0);
          r_mutex = Mutex.create ();
          r_emitted = 0;
          r_failed = 0;
          r_steps = 0;
          r_hb_every = max 1 (total / 8);
          r_est = Estimator.create ~total ~now_s:(t_s s);
          r_ticker = None;
        }
      in
      r.r_ticker <- Some (Progress.ticker ~period_s:0.25 (fun () -> pump r));
      r

(* Worker-side deposit: plain slot write, then the atomic ready flag
   publishes it to the pump (release/acquire pairing). *)
let variant_done r v =
  match r.r_sink with
  | None -> ()
  | Some _ ->
      if v.ev_idx < 0 || v.ev_idx >= r.r_total then
        invalid_arg "Events.variant_done: index out of range";
      r.r_slots.(v.ev_idx) <- Some v;
      Atomic.set r.r_ready.(v.ev_idx) 1

let warning ~key message =
  match Atomic.get current with
  | None -> ()
  | Some s ->
      emit s
        (Json.Obj
           [
             ("ev", Json.Str "warning");
             ("key", Json.Str key);
             ("message", Json.Str message);
             timing [ ("t_s", Json.Num (t_s s)) ];
           ])

let finish r ~classes ~wall_s ~utilization =
  (match r.r_ticker with
  | Some t ->
      r.r_ticker <- None;
      Progress.stop_ticker t
  | None -> ());
  match r.r_sink with
  | None -> ()
  | Some s ->
      pump r;
      Progress.set_enabled false;
      emit s
        (Json.Obj
           [
             ("ev", Json.Str "utilization");
             timing
               [
                 ("t_s", Json.Num (t_s s));
                 ("wall_s", Json.Num wall_s);
                 ("domains", Json.List (List.map util_json utilization));
               ];
           ]);
      emit s
        (Json.Obj
           [
             ("ev", Json.Str "run_end");
             ("kind", Json.Str r.r_kind);
             ("done", Json.Num (float_of_int (r.r_emitted - r.r_failed)));
             ("failed", Json.Num (float_of_int r.r_failed));
             ("total", Json.Num (float_of_int r.r_total));
             ( "classes",
               Json.Obj (List.map (fun (c, n) -> (c, Json.Num (float_of_int n))) classes) );
             timing [ ("t_s", Json.Num (t_s s)) ];
           ])

(* ------------------------------------------------------------------ *)
(* Reading a stream back (watch, report -, parity tests) *)

let read_string text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" then None else Some (Json.parse line))

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  read_string text

(* The determinism view of a stream: timestamp members stripped,
   host-dependent warning events dropped.  Two runs of the same code
   and options normalize identically at any [--jobs]. *)
let normalize docs =
  List.filter_map
    (fun j ->
      match Json.member "ev" j with
      | Some (Json.Str "warning") -> None
      | _ -> (
          match j with
          | Json.Obj members -> Some (Json.Obj (List.filter (fun (k, _) -> k <> "timing") members))
          | other -> Some other))
    docs

(* ------------------------------------------------------------------ *)
(* Watch state: a pure fold over the event stream, rendered by
   [cmldft watch] (live and --once) and unit-testable without a tty. *)

type lane = {
  l_domain : int;
  l_started : int;
  l_done : int;
  l_failed : int;
  l_steps : int;
  l_label : string;
}

type state = {
  w_kind : string;
  w_total : int;
  w_done : int;
  w_failed : int;
  w_steps : int;
  w_t_s : float;
  w_eta_s : float option;
  w_rate : float option;
  w_classes : (string * int) list;  (* insertion order; render sorts *)
  w_healing : (string * int) list;
  w_lanes : lane list;
  w_last : string;
  w_warnings : string list;  (* oldest first *)
  w_util : domain_util list;
  w_wall_s : float option;
  w_finished : bool;
}

let state_empty =
  {
    w_kind = "?";
    w_total = 0;
    w_done = 0;
    w_failed = 0;
    w_steps = 0;
    w_t_s = 0.0;
    w_eta_s = None;
    w_rate = None;
    w_classes = [];
    w_healing = [];
    w_lanes = [];
    w_last = "";
    w_warnings = [];
    w_util = [];
    w_wall_s = None;
    w_finished = false;
  }

let num_or d j key = match Json.member key j with Some (Json.Num f) -> f | _ -> d

let int_or d j key = int_of_float (num_or (float_of_int d) j key)

let str_or d j key = match Json.member key j with Some (Json.Str s) -> s | _ -> d

let bump assoc key =
  let rec go = function
    | [] -> [ (key, 1) ]
    | (k, n) :: rest when k = key -> (k, n + 1) :: rest
    | kv :: rest -> kv :: go rest
  in
  go assoc

let timing_of j = match Json.member "timing" j with Some t -> t | None -> Json.Obj []

let lane_of_json j =
  {
    l_domain = int_or 0 j "id";
    l_started = int_or 0 j "started";
    l_done = int_or 0 j "done";
    l_failed = int_or 0 j "failed";
    l_steps = int_or 0 j "steps";
    l_label = str_or "" j "label";
  }

let util_of_json j =
  {
    du_domain = int_or 0 j "id";
    du_busy_s = num_or 0.0 j "busy_s";
    du_busy_ratio = num_or 0.0 j "busy_ratio";
    du_items = int_or 0 j "items";
    du_longest_stall_s = num_or 0.0 j "longest_stall_s";
  }

let state_update st j =
  let tm = timing_of j in
  let st = { st with w_t_s = Float.max st.w_t_s (num_or st.w_t_s tm "t_s") } in
  match str_or "" j "ev" with
  | "run_start" -> { st with w_kind = str_or st.w_kind j "kind"; w_total = int_or 0 j "total" }
  | "variant_start" -> { st with w_last = str_or st.w_last j "name" }
  | "variant_done" ->
      let classes =
        match Json.member "classes" j with
        | Some (Json.List cs) -> List.filter_map Json.to_str cs
        | _ -> []
      in
      let failed = List.mem "failed" classes in
      let w_classes =
        match classes with
        | [] -> bump st.w_classes "benign"
        | cs -> List.fold_left bump st.w_classes cs
      in
      {
        st with
        w_done = (st.w_done + if failed then 0 else 1);
        w_failed = (st.w_failed + if failed then 1 else 0);
        w_steps = st.w_steps + int_or 0 j "accepted_steps";
        w_classes;
        w_healing =
          (match Json.member "healing" j with
          | Some (Json.Str h) -> bump st.w_healing h
          | _ -> st.w_healing);
        w_last = str_or st.w_last j "name";
      }
  | "heartbeat" ->
      {
        st with
        w_eta_s = (match Json.member "eta_s" tm with Some (Json.Num e) -> Some e | _ -> st.w_eta_s);
        w_rate =
          (match Json.member "rate_per_s" tm with Some (Json.Num r) -> Some r | _ -> st.w_rate);
        w_lanes =
          (match Json.member "domains" tm with
          | Some (Json.List ds) -> List.map lane_of_json ds
          | _ -> st.w_lanes);
      }
  | "warning" -> { st with w_warnings = st.w_warnings @ [ str_or "?" j "message" ] }
  | "utilization" ->
      {
        st with
        w_util =
          (match Json.member "domains" tm with
          | Some (Json.List ds) -> List.map util_of_json ds
          | _ -> st.w_util);
        w_wall_s = (match Json.member "wall_s" tm with Some (Json.Num w) -> Some w | _ -> st.w_wall_s);
      }
  | "run_end" ->
      {
        st with
        w_done = int_or st.w_done j "done";
        w_failed = int_or st.w_failed j "failed";
        w_total = int_or st.w_total j "total";
        w_finished = true;
      }
  | _ -> st

let state_of_events docs = List.fold_left state_update state_empty docs

let fmt_dur s =
  if not (Float.is_finite s) || s < 0.0 then "?"
  else if s < 60.0 then Printf.sprintf "%.1fs" s
  else Printf.sprintf "%d:%02d" (int_of_float s / 60) (int_of_float s mod 60)

let render_state st =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let completed = st.w_done + st.w_failed in
  let width = 24 in
  let filled = if st.w_total = 0 then 0 else completed * width / st.w_total in
  let bar = String.make (min width filled) '#' ^ String.make (max 0 (width - filled)) '.' in
  let pct = if st.w_total = 0 then 0 else completed * 100 / st.w_total in
  line "%s  %d/%d variants  [%s] %3d%%  %s%selapsed %s" st.w_kind completed st.w_total bar pct
    (match st.w_eta_s with
    | Some e when not st.w_finished -> Printf.sprintf "ETA %s  " (fmt_dur e)
    | _ -> "")
    (if st.w_failed > 0 then Printf.sprintf "%d failed  " st.w_failed else "")
    (fmt_dur st.w_t_s);
  if st.w_steps > 0 then line "steps   : %d accepted" st.w_steps;
  if st.w_last <> "" && not st.w_finished then line "current : %s" st.w_last;
  let histo label rows =
    if rows <> [] then
      line "%-8s: %s" label
        (String.concat "  "
           (List.map
              (fun (c, n) -> Printf.sprintf "%s %d" c n)
              (List.sort (fun (ca, a) (cb, b) -> if a <> b then compare b a else compare ca cb) rows)))
  in
  histo "classes" st.w_classes;
  histo "healing" st.w_healing;
  if st.w_lanes <> [] && not st.w_finished then begin
    line "domains :";
    List.iter
      (fun l ->
        line "  %3d  %4d done%s  %8d steps  %s" l.l_domain (l.l_done + l.l_failed)
          (if l.l_failed > 0 then Printf.sprintf " (%d failed)" l.l_failed else "")
          l.l_steps l.l_label)
      st.w_lanes
  end;
  if st.w_util <> [] then begin
    line "utilization%s:"
      (match st.w_wall_s with Some w -> Printf.sprintf " (wall %s)" (fmt_dur w) | None -> "");
    line "  %6s %10s %6s %6s %14s" "domain" "busy" "ratio" "items" "longest stall";
    List.iter
      (fun u ->
        line "  %6d %9.3fs %6.2f %6d %13.3fs" u.du_domain u.du_busy_s u.du_busy_ratio u.du_items
          u.du_longest_stall_s)
      st.w_util
  end;
  List.iter (fun w -> line "warning : %s" w) st.w_warnings;
  if st.w_finished then
    line "run complete: %d/%d ok%s in %s" st.w_done st.w_total
      (if st.w_failed > 0 then Printf.sprintf ", %d failed" st.w_failed else "")
      (fmt_dur st.w_t_s);
  Buffer.contents b
