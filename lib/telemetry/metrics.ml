(* Typed metrics registry.

   Counters and gauges are atomics, histograms are log-bucketed
   atomic arrays, so worker domains publish without locks; a metric
   is registered once by name (get-or-create) and every caller holds
   the same instance.  Snapshots are cumulative; a run reports the
   {!diff} of the snapshots taken around it. *)

type counter = { c : int Atomic.t }

type gauge = { g : float Atomic.t }

type histogram = {
  h_lo : float;  (* upper bound of bucket 0 *)
  h_ratio : float;  (* geometric bucket growth *)
  h_counts : int Atomic.t array;  (* last bucket is the +inf overflow *)
  h_count : int Atomic.t;
  h_mutex : Mutex.t;  (* guards h_sum only *)
  mutable h_sum : float;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 32

let registry_mutex = Mutex.create ()

let type_error name =
  invalid_arg (Printf.sprintf "Metrics: %S already registered with a different type" name)

let register name make classify =
  Mutex.lock registry_mutex;
  let m =
    match Hashtbl.find_opt registry name with
    | Some m -> m
    | None ->
        let m = make () in
        Hashtbl.replace registry name m;
        m
  in
  Mutex.unlock registry_mutex;
  match classify m with Some v -> v | None -> type_error name

let counter name =
  register name
    (fun () -> C { c = Atomic.make 0 })
    (function C c -> Some c | G _ | H _ -> None)

let gauge name =
  register name
    (fun () -> G { g = Atomic.make 0.0 })
    (function G g -> Some g | C _ | H _ -> None)

(* default histogram shape: 40 geometric buckets doubling from 1 us —
   covers 1 us .. ~9 h, plenty for both per-solve and per-campaign
   durations in seconds *)
let histogram ?(lo = 1e-6) ?(ratio = 2.0) ?(buckets = 40) name =
  if not (lo > 0.0 && ratio > 1.0 && buckets >= 2) then
    invalid_arg "Metrics.histogram: need lo > 0, ratio > 1, buckets >= 2";
  register name
    (fun () ->
      H
        {
          h_lo = lo;
          h_ratio = ratio;
          h_counts = Array.init buckets (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0;
          h_mutex = Mutex.create ();
          h_sum = 0.0;
        })
    (function H h -> Some h | C _ | G _ -> None)

let add c n = if n <> 0 then ignore (Atomic.fetch_and_add c.c n)

let incr c = add c 1

let set g v = Atomic.set g.g v

let bucket_index h v =
  if not (v > h.h_lo) then 0
  else
    let i = 1 + int_of_float (Float.ceil (Float.log (v /. h.h_lo) /. Float.log h.h_ratio)) in
    min (Array.length h.h_counts - 1) (max 1 i)

let bucket_upper h i =
  if i = Array.length h.h_counts - 1 then Float.infinity else h.h_lo *. (h.h_ratio ** float_of_int i)

let observe h v =
  ignore (Atomic.fetch_and_add h.h_counts.(bucket_index h v) 1);
  ignore (Atomic.fetch_and_add h.h_count 1);
  Mutex.lock h.h_mutex;
  h.h_sum <- h.h_sum +. v;
  Mutex.unlock h.h_mutex

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_buckets : (float * int) list;  (* (upper bound, count), zero buckets dropped *)
}

type value = Counter of int | Gauge of float | Histogram of hist_snapshot

type snapshot = (string * value) list

let snapshot_metric = function
  | C c -> Counter (Atomic.get c.c)
  | G g -> Gauge (Atomic.get g.g)
  | H h ->
      Mutex.lock h.h_mutex;
      let sum = h.h_sum in
      Mutex.unlock h.h_mutex;
      let buckets = ref [] in
      for i = Array.length h.h_counts - 1 downto 0 do
        let n = Atomic.get h.h_counts.(i) in
        if n > 0 then buckets := (bucket_upper h i, n) :: !buckets
      done;
      Histogram { hs_count = Atomic.get h.h_count; hs_sum = sum; hs_buckets = !buckets }

let snapshot () =
  Mutex.lock registry_mutex;
  let rows = Hashtbl.fold (fun name m acc -> (name, snapshot_metric m) :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.sort (fun (a, _) (b, _) -> compare a b) rows

(* [diff before after]: what a run added.  Counters and histogram
   counts subtract, gauges and metrics absent from [before] pass
   through. *)
let diff before after =
  List.filter_map
    (fun (name, v_after) ->
      match (v_after, List.assoc_opt name before) with
      | Counter a, Some (Counter b) -> if a = b then None else Some (name, Counter (a - b))
      | Gauge _, _ -> Some (name, v_after)
      | Histogram a, Some (Histogram b) ->
          let buckets =
            List.filter_map
              (fun (ub, n) ->
                let old = match List.assoc_opt ub b.hs_buckets with Some o -> o | None -> 0 in
                if n - old > 0 then Some (ub, n - old) else None)
              a.hs_buckets
          in
          if a.hs_count = b.hs_count then None
          else
            Some
              ( name,
                Histogram
                  {
                    hs_count = a.hs_count - b.hs_count;
                    hs_sum = a.hs_sum -. b.hs_sum;
                    hs_buckets = buckets;
                  } )
      | (Counter _ | Histogram _), _ -> Some (name, v_after))
    after

(* upper bound of the bucket holding the [q]-quantile sample
   (0 <= q <= 1); [None] on an empty histogram *)
let percentile hs q =
  if hs.hs_count = 0 then None
  else begin
    let rank = Float.max 1.0 (Float.ceil (q *. float_of_int hs.hs_count)) in
    let rec walk cum = function
      | [] -> None
      | (ub, n) :: rest ->
          let cum = cum + n in
          if float_of_int cum >= rank then Some ub else walk cum rest
    in
    walk 0 hs.hs_buckets
  end

(* zero every registered metric (tests, and the CLI's per-command
   scoping); the metric instances stay valid *)
let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> Atomic.set c.c 0
      | G g -> Atomic.set g.g 0.0
      | H h ->
          Array.iter (fun a -> Atomic.set a 0) h.h_counts;
          Atomic.set h.h_count 0;
          Mutex.lock h.h_mutex;
          h.h_sum <- 0.0;
          Mutex.unlock h.h_mutex)
    registry;
  Mutex.unlock registry_mutex

(* ------------------------------------------------------------------ *)
(* Rendering *)

let value_json = function
  | Counter n -> Json.Num (float_of_int n)
  | Gauge v -> Json.Num v
  | Histogram hs ->
      Json.Obj
        [
          ("count", Json.Num (float_of_int hs.hs_count));
          ("sum", Json.Num hs.hs_sum);
          ( "buckets",
            Json.List
              (List.map
                 (fun (ub, n) ->
                   Json.Obj
                     [
                       ( "le",
                         if Float.is_finite ub then Json.Num ub else Json.Str "+inf" );
                       ("count", Json.Num (float_of_int n));
                     ])
                 hs.hs_buckets) );
        ]

let to_json snap = Json.Obj (List.map (fun (name, v) -> (name, value_json v)) snap)

let value_of_json j =
  match j with
  | Json.Num f when Float.is_integer f -> Some (Counter (int_of_float f))
  | Json.Num f -> Some (Gauge f)
  | Json.Obj _ -> (
      match (Json.member "count" j, Json.member "sum" j, Json.member "buckets" j) with
      | Some (Json.Num count), Some (Json.Num sum), Some (Json.List bs) ->
          let buckets =
            List.filter_map
              (fun b ->
                match (Json.member "le" b, Json.member "count" b) with
                | Some le, Some (Json.Num n) ->
                    let ub =
                      match le with
                      | Json.Num ub -> Some ub
                      | Json.Str "+inf" -> Some Float.infinity
                      | _ -> None
                    in
                    Option.map (fun ub -> (ub, int_of_float n)) ub
                | _ -> None)
              bs
          in
          Some (Histogram { hs_count = int_of_float count; hs_sum = sum; hs_buckets = buckets })
      | _ -> None)
  | _ -> None

let of_json = function
  | Json.Obj members ->
      List.filter_map (fun (name, j) -> Option.map (fun v -> (name, v)) (value_of_json j)) members
  | _ -> []

let render_text snap =
  let b = Buffer.create 512 in
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n -> Buffer.add_string b (Printf.sprintf "%-40s %12d\n" name n)
      | Gauge f -> Buffer.add_string b (Printf.sprintf "%-40s %12.4g\n" name f)
      | Histogram hs ->
          let pct q = match percentile hs q with
            | Some ub when Float.is_finite ub -> Printf.sprintf "%.3g" ub
            | Some _ -> "inf"
            | None -> "-"
          in
          Buffer.add_string b
            (Printf.sprintf "%-40s %12d  sum %.4g  p50<=%s p90<=%s p99<=%s\n" name hs.hs_count
               hs.hs_sum (pct 0.5) (pct 0.9) (pct 0.99)))
    snap;
  Buffer.contents b
