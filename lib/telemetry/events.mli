(** Streaming run events ([cml-dft-events/1]).

    One JSONL line per lifecycle event: [run_start], then per variant
    a [variant_start]/[variant_done] pair in variant-index order,
    [heartbeat]s at work milestones (with an ETA from a
    completed-work-rate estimator and per-domain progress lanes), any
    [warning]s, a final [utilization] snapshot and [run_end].

    Determinism: every member outside each event's ["timing"] object
    is a pure function of the run's inputs — {!normalize} strips
    ["timing"] and drops [warning] events, and what remains is
    byte-identical at any [--jobs].  Workers deposit finished
    variants into indexed slots; a single pump (a {!Progress.ticker}
    thread while running, {!finish} at the end) reassembles the
    contiguous prefix in order, so scheduling order never leaks into
    the stream. *)

val schema : string
(** ["cml-dft-events/1"]. *)

(** {1 Sink} *)

type sink

val open_sink : string -> sink
(** Open [path] for writing (truncating); ["-"] streams to stderr. *)

val install : sink -> unit
(** Make [sink] the process-wide event stream ({!run_start} binds to
    it; {!warning} writes to it). *)

val installed : unit -> bool

val close : unit -> unit
(** Flush and close the installed sink (stderr is only flushed). *)

(** {1 Run lifecycle} *)

type variant = {
  ev_idx : int;  (** variant index in run order *)
  ev_name : string;
  ev_classes : string list;
  ev_healing : string option;  (** "clean" / "depth=N" / "unhealed" *)
  ev_failed : bool;
  ev_steps : int;  (** accepted solver steps (deterministic) *)
  ev_seconds : float;  (** wall time — lands in "timing" only *)
}

type domain_util = {
  du_domain : int;
  du_busy_s : float;
  du_items : int;
  du_longest_stall_s : float;
  du_busy_ratio : float;
}

val util_row :
  wall_s:float -> domain:int -> busy_ns:int64 -> items:int -> longest_stall_ns:int64 -> domain_util
(** One utilization row from raw pool counters; also publishes the
    [pool.domain.<i>.busy_ratio] gauge so the run manifest records
    it. *)

type run

val run_start :
  kind:string -> total:int -> ?jobs:int -> ?options:(string * string) list -> unit -> run
(** Start a tracked run: emits [run_start], resets and enables
    {!Progress}, and begins pumping on a ticker thread.  With no sink
    installed the returned tracker is inert and every later call on
    it is a cheap no-op. *)

val variant_done : run -> variant -> unit
(** Deposit a finished variant (worker-domain safe; emission happens
    later, in index order). *)

val pump : run -> unit
(** Emit the contiguous finished prefix now.  Called automatically by
    the ticker and {!finish}; exposed for tests. *)

val finish :
  run -> classes:(string * int) list -> wall_s:float -> utilization:domain_util list -> unit
(** Stop the ticker, emit the remaining variants, the [utilization]
    snapshot and [run_end], and disable {!Progress}. *)

val warning : key:string -> string -> unit
(** Emit a [warning] event on the installed sink (no-op without
    one).  Warnings are host-dependent and excluded from
    {!normalize}. *)

(** {1 ETA estimator} *)

module Estimator : sig
  type t

  val create : total:int -> now_s:float -> t

  val note : t -> completed:int -> unit
  (** Record that [completed] variants have retired (done or failed —
      both consumed their share of the run).  Monotonic. *)

  val rate_per_s : t -> now_s:float -> float option

  val eta_s : t -> now_s:float -> float option
  (** Remaining work over the completed-work rate; [None] until the
      first retirement.  At a fixed [now_s], more retirements never
      increase the ETA. *)
end

(** {1 Reading a stream back} *)

val read_string : string -> Json.t list
(** Parse JSONL text (blank lines skipped).
    @raise Json.Parse_error on a malformed line. *)

val read_file : string -> Json.t list

val normalize : Json.t list -> Json.t list
(** The determinism view: ["timing"] members stripped, [warning]
    events dropped. *)

(** {1 Watch state} — pure fold over a stream, rendered by
    [cmldft watch]. *)

type lane = {
  l_domain : int;
  l_started : int;
  l_done : int;
  l_failed : int;
  l_steps : int;
  l_label : string;
}

type state = {
  w_kind : string;
  w_total : int;
  w_done : int;
  w_failed : int;
  w_steps : int;
  w_t_s : float;
  w_eta_s : float option;
  w_rate : float option;
  w_classes : (string * int) list;
  w_healing : (string * int) list;
  w_lanes : lane list;
  w_last : string;
  w_warnings : string list;
  w_util : domain_util list;
  w_wall_s : float option;
  w_finished : bool;
}

val state_empty : state

val state_update : state -> Json.t -> state

val state_of_events : Json.t list -> state

val render_state : state -> string
(** Multi-line plain-text view (no escape codes; the CLI adds
    in-place redraw around it). *)
