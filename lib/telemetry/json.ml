(* A deliberately small JSON reader/writer shared by every telemetry
   sink (Chrome traces, metrics dumps, run manifests) and the
   benchmark history file.  The repo takes no JSON dependency; the
   only documents this must handle are the ones the library itself
   emits, so the parser favours clarity over speed and raises
   {!Parse_error} with a byte offset on anything malformed. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of int * string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'
               | '\\' -> Buffer.add_char b '\\'
               | '/' -> Buffer.add_char b '/'
               | 'n' -> Buffer.add_char b '\n'
               | 't' -> Buffer.add_char b '\t'
               | 'r' -> Buffer.add_char b '\r'
               | 'b' -> Buffer.add_char b '\b'
               | 'f' -> Buffer.add_char b '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     match int_of_string_opt ("0x" ^ hex) with
                     | Some c -> c
                     | None -> fail "bad \\u escape"
                   in
                   (* enough for the ASCII control codes we emit *)
                   if code < 0x80 then Buffer.add_char b (Char.chr code)
                   else Buffer.add_string b (Printf.sprintf "\\u%s" hex);
                   pos := !pos + 4
               | c -> fail (Printf.sprintf "bad escape %C" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elements [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  parse s

(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* JSON has no NaN/Infinity literals; degenerate measurements (a
   collapsed wave measuring as NaN, an unbounded delay) must still
   produce a parseable document, so non-finite numbers serialize as
   null — readers already treat a missing/null member as "absent". *)
let number f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let rec write buf ~indent v =
  let pad k = String.make k ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Num f -> Buffer.add_string buf (number f)
  | Str s -> Buffer.add_string buf (escape s)
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          Buffer.add_string buf (pad (indent + 2));
          write buf ~indent:(indent + 2) item;
          if i < List.length items - 1 then Buffer.add_char buf ',';
          Buffer.add_char buf '\n')
        items;
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj members ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          Buffer.add_string buf (pad (indent + 2));
          Buffer.add_string buf (escape k);
          Buffer.add_string buf ": ";
          write buf ~indent:(indent + 2) item;
          if i < List.length members - 1 then Buffer.add_char buf ',';
          Buffer.add_char buf '\n')
        members;
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  write buf ~indent:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* single-line rendering, for JSONL sinks and large event arrays
   where the pretty-printer's one-line-per-scalar layout would triple
   the file size *)
let rec write_compact buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Num f -> Buffer.add_string buf (number f)
  | Str s -> Buffer.add_string buf (escape s)
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write_compact buf item)
        items;
      Buffer.add_char buf ']'
  | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (escape k);
          Buffer.add_char buf ':';
          write_compact buf item)
        members;
      Buffer.add_char buf '}'

let to_compact_string v =
  let buf = Buffer.create 256 in
  write_compact buf v;
  Buffer.contents buf

let write_file path v =
  let oc = open_out path in
  output_string oc (to_string v);
  close_out oc

(* accessors *)

let member key = function Obj members -> List.assoc_opt key members | _ -> None

let to_list = function List l -> Some l | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_str = function Str s -> Some s | _ -> None
