(* Cross-run trend analysis: `cmldft report --trend`.

   Two corpora, one view.  The BENCH_spice.json history
   (cml-dft-perf/2, written by `bench/main.exe -- perf`) carries
   per-kernel nanosecond trajectories and the campaign scaling probe;
   a directory of run manifests (cml-dft-manifest/1) carries span
   aggregates.  This module parses both with the same leniency as
   bench/perf.ml (entries missing a member are skipped, not fatal —
   the history spans schema generations) and renders: per-kernel
   sparkline trajectories with regression flags, the campaign probe
   against its best-matching (jobs, cores) history, and wall-clock
   attribution by span group across the manifests.

   The regression limits mirror bench/perf.ml's gate: 1.25x for
   kernels, 1.5x for the batched-campaign kernel and the campaign
   probe (whole parallel workloads carry scheduler noise a bechamel
   best-of-N does not). *)

(* ------------------------------------------------------------------ *)
(* Sparklines *)

let spark_levels = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                      "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline values =
  match values with
  | [] -> ""
  | _ ->
      let lo = List.fold_left Float.min infinity values in
      let hi = List.fold_left Float.max neg_infinity values in
      let span = hi -. lo in
      String.concat ""
        (List.map
           (fun v ->
             let i =
               if span <= 0.0 then 3
               else min 7 (max 0 (int_of_float ((v -. lo) /. span *. 7.999)))
             in
             spark_levels.(i))
           values)

let pretty_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.1f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

(* ------------------------------------------------------------------ *)
(* cml-dft-perf history parsing (same shapes as bench/perf.ml) *)

let history_of_json j =
  match Json.member "schema" j with
  | Some (Json.Str "cml-dft-perf/2") -> (
      match Json.member "history" j with Some (Json.List es) -> es | _ -> [])
  | Some (Json.Str "cml-dft-perf/1") -> (
      match j with
      | Json.Obj members -> [ Json.Obj (List.filter (fun (k, _) -> k <> "schema") members) ]
      | _ -> [])
  | _ -> []

let entry_kernels entry =
  match Json.member "kernels" entry with
  | Some (Json.List ks) ->
      List.filter_map
        (fun k ->
          match (Json.member "name" k, Json.member "ns_per_run" k) with
          | Some (Json.Str name), Some (Json.Num ns) -> Some (name, ns)
          | _ -> None)
        ks
  | _ -> []

let entry_setting entry =
  match (Json.member "jobs" entry, Json.member "cores" entry) with
  | Some (Json.Num j), Some (Json.Num c) -> Some (int_of_float j, int_of_float c)
  | _ -> None

let entry_campaign entry =
  match Json.member "campaign" entry with
  | Some c -> (
      match (Json.member "jobs1_s" c, Json.member "jobsN_s" c) with
      | Some (Json.Num t1), Some (Json.Num tn) -> Some (t1, tn)
      | _ -> None)
  | _ -> None

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let kernel_limit name = if contains_sub name "batched campaign" then 1.5 else 1.25

let campaign_limit = 1.5

type kernel_trend = {
  k_name : string;
  k_series : float list;  (* ns per run, oldest entry first *)
  k_last : float;
  k_prev : float option;
  k_regressed : bool;  (* last vs prev, at [kernel_limit] *)
}

let kernel_trends history =
  let per_entry = List.map entry_kernels history in
  let names =
    List.fold_left
      (fun acc ks ->
        List.fold_left (fun acc (name, _) -> if List.mem name acc then acc else acc @ [ name ]) acc ks)
      [] per_entry
  in
  List.map
    (fun name ->
      let series = List.filter_map (fun ks -> List.assoc_opt name ks) per_entry in
      let last = match List.rev series with v :: _ -> v | [] -> 0.0 in
      let prev = match List.rev series with _ :: v :: _ -> Some v | _ -> None in
      {
        k_name = name;
        k_series = series;
        k_last = last;
        k_prev = prev;
        k_regressed =
          (match prev with Some p -> p > 0.0 && last > kernel_limit name *. p | None -> false);
      })
    names

type campaign_trend = {
  c_jobs : int;
  c_cores : int;
  c_series : (float * float) list;  (* (jobs1_s, jobsN_s) at this setting, oldest first *)
  c_regressed : bool;
}

(* The probe's wall clock depends on worker count and host, so its
   trajectory only compares entries recorded at the latest entry's
   (jobs, cores) setting — the same best-matching-baseline rule as
   bench/perf.ml's gate. *)
let campaign_trend history =
  match List.rev history with
  | [] -> None
  | last :: _ -> (
      match entry_setting last with
      | None -> None
      | Some (jobs, cores) ->
          let matching = List.filter (fun e -> entry_setting e = Some (jobs, cores)) history in
          let series = List.filter_map entry_campaign matching in
          let regressed =
            match List.rev series with
            | (t1, tn) :: (p1, pn) :: _ ->
                (p1 > 0.0 && t1 > campaign_limit *. p1) || (pn > 0.0 && tn > campaign_limit *. pn)
            | _ -> false
          in
          Some { c_jobs = jobs; c_cores = cores; c_series = series; c_regressed = regressed })

(* ------------------------------------------------------------------ *)
(* Wall-clock attribution by span group across manifests.  Manifest
   spans are already aggregated by name; here the name is the group,
   summed across every manifest in the corpus. *)

type span_share = { g_name : string; g_count : int; g_total_s : float; g_share : float }

let span_attribution manifests =
  let tbl : (string, int * float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (m : Manifest.t) ->
      List.iter
        (fun (name, (a : Trace.span_agg)) ->
          let c0, t0 = Option.value ~default:(0, 0.0) (Hashtbl.find_opt tbl name) in
          Hashtbl.replace tbl name
            (c0 + a.Trace.sa_count, t0 +. Clock.ns_to_s a.Trace.sa_total_ns))
        m.Manifest.spans)
    manifests;
  let rows = Hashtbl.fold (fun name (c, t) acc -> (name, c, t) :: acc) tbl [] in
  let grand = List.fold_left (fun acc (_, _, t) -> acc +. t) 0.0 rows in
  let rows = List.sort (fun (_, _, a) (_, _, b) -> compare (b : float) a) rows in
  List.map
    (fun (name, count, total) ->
      {
        g_name = name;
        g_count = count;
        g_total_s = total;
        g_share = (if grand > 0.0 then total /. grand else 0.0);
      })
    rows

(* ------------------------------------------------------------------ *)
(* Rendering *)

(* a sparkline is one glyph per point but three bytes per glyph, so
   Printf's byte-counting %-12s misaligns it; pad by point count *)
let padded_spark width values =
  sparkline values ^ String.make (max 0 (width - List.length values)) ' '

let render ?(history = []) ?(manifests = []) () =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  if history = [] then begin
    line "perf history: no entries yet (a `make perf` run records the first)";
    if manifests <> [] then line ""
  end
  else begin
    line "perf history: %d entries" (List.length history);
    line "  %-44s %-12s %12s %10s" "kernel" "trend" "last" "vs prev";
    List.iter
      (fun k ->
        let delta =
          match k.k_prev with
          | Some p when p > 0.0 -> Printf.sprintf "%+.1f%%" (((k.k_last /. p) -. 1.0) *. 100.0)
          | Some _ | None -> "-"
        in
        line "  %-44s %s %12s %10s%s" k.k_name (padded_spark 12 k.k_series)
          (pretty_ns k.k_last) delta
          (if k.k_regressed then
             Printf.sprintf "  REGRESSION (limit +%.0f%%)" ((kernel_limit k.k_name -. 1.0) *. 100.0)
           else ""))
      (kernel_trends history);
    (match campaign_trend history with
    | None -> ()
    | Some c ->
        let t1s = List.map fst c.c_series and tns = List.map snd c.c_series in
        (match List.rev c.c_series with
        | [] -> line "  campaign probe: no entries at the latest (jobs, cores) setting"
        | (t1, tn) :: _ ->
            line "  campaign probe (jobs=%d, cores=%d, %d matching entries):" c.c_jobs c.c_cores
              (List.length c.c_series);
            line "    jobs=1 %s %8.3f s    jobs=N %s %8.3f s%s" (padded_spark 12 t1s) t1
              (padded_spark 12 tns) tn
              (if c.c_regressed then
                 Printf.sprintf "  REGRESSION (limit +%.0f%%)" ((campaign_limit -. 1.0) *. 100.0)
               else ""));
        ());
    if manifests <> [] then line ""
  end;
  if manifests <> [] then begin
    line "span attribution (%d manifest%s):" (List.length manifests)
      (if List.length manifests = 1 then "" else "s");
    (match span_attribution (List.map snd manifests) with
    | [] -> line "  (no spans recorded; rerun with --trace to attribute wall clock)"
    | rows ->
        line "  %-28s %10s %12s %8s" "span group" "count" "total" "share";
        List.iter
          (fun g ->
            line "  %-28s %10d %10.3f s %7.1f%%" g.g_name g.g_count g.g_total_s
              (g.g_share *. 100.0))
          rows);
    line "";
    line "  manifests:";
    List.iter
      (fun (path, (m : Manifest.t)) ->
        line "    %-40s %s run, %d variants (%s)" path m.Manifest.kind
          (List.length m.Manifest.variants) m.Manifest.created)
      manifests
  end;
  Buffer.contents b
