(** Structured span/event tracer for the simulation stack.

    Spans are nestable timed intervals ([campaign] > [variant] >
    [dc]/[transient] > [newton_solve]) with monotonic-clock
    timestamps and the recording domain's id; instants are point
    events (pool batches, one-shot warnings).  Every domain appends
    to its own buffer — no lock on the record path — and {!drain}
    merges the buffers into one (timestamp, domain)-ordered stream
    once the workload is quiescent, which is exactly what
    {!Cml_runtime.Pool.map}'s completion barrier guarantees.

    Tracing is off by default.  Disabled, {!start}/{!finish} cost one
    atomic load and a branch and allocate nothing, so they may sit on
    the Newton hot path; the perf bench asserts the disabled chain
    transient stays within 3% of the pre-telemetry baseline. *)

type arg = S of string | F of float | I of int

type phase = Complete of int64  (** duration, ns *) | Instant

type event = {
  name : string;
  cat : string;  (** coarse grouping: ["sim"], ["campaign"], ["pool"], ["warn"] *)
  ph : phase;
  ts : int64;  (** ns since {!Clock.epoch} *)
  tid : int;  (** recording domain id *)
  args : (string * arg) list;
}

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {1 Recording} *)

val start : unit -> int64
(** Begin a span: the current timestamp, or a negative token when
    tracing is disabled.  Never allocates. *)

val finish : ?cat:string -> ?args:(string * arg) list -> string -> int64 -> unit
(** [finish name token] records the span opened by {!start}; a no-op
    on a disabled token.  Name the span at [finish] so the hot path
    needs no string until a span is actually recorded. *)

val with_span : ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** Closure convenience for cold call sites; records the span even
    when the thunk raises. *)

val instant : ?cat:string -> ?args:(string * arg) list -> string -> unit

val warn_once : key:string -> string -> unit
(** Print [message] to stderr and (when tracing) record a ["warn"]
    instant — once per [key] per process. *)

val reset_warnings : unit -> unit
(** Test hook: forget which {!warn_once} keys already fired. *)

(** {1 Draining and sinks} *)

val drain : unit -> event list
(** Remove and return every recorded event, ordered by
    (timestamp, domain id).  Only call while no other domain is
    recording (after a parallel batch / at command exit). *)

val peek : unit -> event list
(** Like {!drain} but leaves the buffers intact — used by manifest
    writers so an enclosing [--trace] still sees every event. *)

val chrome_json : event list -> Json.t
(** Chrome trace format ([{"traceEvents": [...]}], microsecond
    timestamps) — loadable in chrome://tracing and Perfetto. *)

val chrome_string : event list -> string

val write_chrome : path:string -> event list -> unit
(** Chrome trace JSON, one event per line. *)

val write_jsonl : path:string -> event list -> unit
(** Compact JSONL sink: one event object per line, ns timestamps. *)

(** {1 Aggregation} *)

type span_agg = { sa_count : int; sa_total_ns : int64; sa_max_ns : int64 }

val aggregate : event list -> (string * span_agg) list
(** Per-name totals over complete spans, heaviest first. *)

val make_event :
  ?cat:string ->
  ?args:(string * arg) list ->
  ?tid:int ->
  ts_ns:int64 ->
  ?dur_ns:int64 ->
  string ->
  event
(** Build an event directly (golden-fixture tests). *)
