(** Cross-run trend analysis for [cmldft report --trend]: per-kernel
    trajectory sparklines and regression flags over the
    BENCH_spice.json history (cml-dft-perf/2), the campaign scaling
    probe against its best-matching (jobs, cores) history, and
    wall-clock attribution by span group across a corpus of run
    manifests.  Regression limits mirror bench/perf.ml's gate
    (1.25x per kernel, 1.5x for whole-workload probes). *)

val sparkline : float list -> string
(** 8-level unicode block trajectory, scaled to the series' own
    min/max ([""] on an empty series). *)

val pretty_ns : float -> string

val history_of_json : Json.t -> Json.t list
(** The entry list of a cml-dft-perf/1 or /2 document; [[]] on
    anything else. *)

type kernel_trend = {
  k_name : string;
  k_series : float list;  (** ns per run, oldest entry first *)
  k_last : float;
  k_prev : float option;
  k_regressed : bool;  (** last vs prev at the per-kernel limit *)
}

val kernel_trends : Json.t list -> kernel_trend list
(** One row per kernel name seen anywhere in the history, in first
    appearance order. *)

type campaign_trend = {
  c_jobs : int;
  c_cores : int;
  c_series : (float * float) list;
      (** (jobs1_s, jobsN_s) over entries matching the latest entry's
          (jobs, cores), oldest first *)
  c_regressed : bool;
}

val campaign_trend : Json.t list -> campaign_trend option

type span_share = { g_name : string; g_count : int; g_total_s : float; g_share : float }

val span_attribution : Manifest.t list -> span_share list
(** Total wall clock per span group (manifest span name), summed
    across manifests, heaviest first; [g_share] is the fraction of
    the corpus-wide span total. *)

val render :
  ?history:Json.t list -> ?manifests:(string * Manifest.t) list -> unit -> string
(** The full [report --trend] text: kernel table, campaign probe,
    span attribution, manifest inventory. *)
