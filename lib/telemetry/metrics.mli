(** Typed metrics registry: counters, gauges and log-bucketed
    histograms, registered once by name and safe to publish from
    worker domains (atomics on the publish path).

    The simulation stack publishes at run boundaries (end of a
    transient, a sweep point, a campaign variant), so per-event cost
    is irrelevant; what matters is that snapshots are consistent and
    cheap.  Snapshots are cumulative — wrap a run in two {!snapshot}
    calls and {!diff} them to get the run's own numbers. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Get-or-create.  @raise Invalid_argument if the name is already
    registered as a different metric type. *)

val gauge : string -> gauge

val histogram : ?lo:float -> ?ratio:float -> ?buckets:int -> string -> histogram
(** Geometric buckets: bucket 0 holds values <= [lo] (default 1e-6),
    each next bucket grows by [ratio] (default 2.0), the last of
    [buckets] (default 40) is the overflow.  The defaults cover
    1 us .. hours of seconds-valued durations. *)

val add : counter -> int -> unit
val incr : counter -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

(** {1 Snapshots} *)

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_buckets : (float * int) list;  (** (upper bound, count), zero buckets dropped *)
}

type value = Counter of int | Gauge of float | Histogram of hist_snapshot

type snapshot = (string * value) list
(** Sorted by metric name. *)

val snapshot : unit -> snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff before after]: counters and histogram counts subtract,
    gauges pass through, untouched metrics drop out. *)

val percentile : hist_snapshot -> float -> float option
(** Upper bound of the bucket holding the given quantile (0..1);
    [None] on an empty histogram. *)

val reset : unit -> unit
(** Zero every registered metric (instances stay valid). *)

(** {1 Rendering} *)

val to_json : snapshot -> Json.t
val of_json : Json.t -> snapshot
val render_text : snapshot -> string
