(* Span/event tracer.

   Design constraints, in order:
   - the disabled cost on the simulation hot path is one atomic load
     and a branch: {!start} returns a negative token without touching
     the clock, {!finish} sees it and returns, and neither allocates;
   - recording is multi-domain safe without a lock on the record
     path: every domain appends to its own buffer (domain-local
     storage), and buffers are only merged by {!drain} from the
     submitting domain once the worker pool is quiescent — exactly
     the barrier {!Cml_runtime.Pool.map} already provides;
   - drained events are globally ordered by (timestamp, domain id),
     so two drains of the same single-domain workload produce
     identical streams and a Perfetto load shows one time axis. *)

type arg = S of string | F of float | I of int

type phase = Complete of int64 (* duration ns *) | Instant

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts : int64;  (* ns since Clock.epoch *)
  tid : int;  (* domain id *)
  args : (string * arg) list;
}

(* ------------------------------------------------------------------ *)
(* Per-domain buffers.

   Each domain owns one growable buffer, created lazily through DLS
   and registered under a global mutex.  The owning domain appends
   with plain writes; [drain] snapshots and clears every buffer.  A
   drain is only safe when no other domain is recording, which holds
   at every drain site (after a parallel batch, or at command exit);
   the registry mutex protects the registry list itself, not the
   event slots. *)

type buf = { mutable evs : event list }

let registry : buf list ref = ref []

let registry_mutex = Mutex.create ()

let buf_key =
  Domain.DLS.new_key (fun () ->
      let b = { evs = [] } in
      Mutex.lock registry_mutex;
      registry := b :: !registry;
      Mutex.unlock registry_mutex;
      b)

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let set_enabled v = Atomic.set enabled_flag v

let record ev =
  let b = Domain.DLS.get buf_key in
  b.evs <- ev :: b.evs

(* ------------------------------------------------------------------ *)
(* Recording API *)

let disabled_token = -1L

let[@inline] start () = if Atomic.get enabled_flag then Clock.since_epoch_ns () else disabled_token

let finish ?(cat = "sim") ?(args = []) name token =
  if token >= 0L then begin
    let now = Clock.since_epoch_ns () in
    record
      {
        name;
        cat;
        ph = Complete (Int64.max 0L (Int64.sub now token));
        ts = token;
        tid = (Domain.self () :> int);
        args;
      }
  end

let with_span ?cat ?args name f =
  let token = start () in
  match f () with
  | v ->
      finish ?cat ?args name token;
      v
  | exception e ->
      finish ?cat ?args name token;
      raise e

let instant ?(cat = "sim") ?(args = []) name =
  if Atomic.get enabled_flag then
    record
      {
        name;
        cat;
        ph = Instant;
        ts = Clock.since_epoch_ns ();
        tid = (Domain.self () :> int);
        args;
      }

(* One-shot warnings: always printed to stderr (the user asked for
   the condition to stop being silent), recorded as an instant event
   when tracing is on.  Keyed so a warning fires once per process,
   however many parallel batches trip it. *)

let warned : (string, unit) Hashtbl.t = Hashtbl.create 4

let warned_mutex = Mutex.create ()

let warn_once ~key message =
  Mutex.lock warned_mutex;
  let first = not (Hashtbl.mem warned key) in
  if first then Hashtbl.replace warned key ();
  Mutex.unlock warned_mutex;
  if first then begin
    Printf.eprintf "warning: %s\n%!" message;
    (* mirror onto the run-event stream (if one is installed) so the
       condition is visible to `cmldft watch`, not just on a tty *)
    Events.warning ~key message;
    if Atomic.get enabled_flag then
      record
        {
          name = key;
          cat = "warn";
          ph = Instant;
          ts = Clock.since_epoch_ns ();
          tid = (Domain.self () :> int);
          args = [ ("message", S message) ];
        }
  end

(* test hook: forget which warnings already fired *)
let reset_warnings () =
  Mutex.lock warned_mutex;
  Hashtbl.reset warned;
  Mutex.unlock warned_mutex

(* ------------------------------------------------------------------ *)
(* Draining and sinks *)

let compare_events a b =
  let c = Int64.compare a.ts b.ts in
  if c <> 0 then c
  else
    let c = compare a.tid b.tid in
    if c <> 0 then c else compare a.name b.name

let collect ~clear =
  Mutex.lock registry_mutex;
  let bufs = !registry in
  Mutex.unlock registry_mutex;
  let all =
    List.fold_left
      (fun acc b ->
        let evs = b.evs in
        if clear then b.evs <- [];
        List.rev_append evs acc)
      [] bufs
  in
  List.sort compare_events all

let drain () = collect ~clear:true

let peek () = collect ~clear:false

let arg_json = function S s -> Json.Str s | F f -> Json.Num f | I i -> Json.Num (float_of_int i)

let args_json args = Json.Obj (List.map (fun (k, v) -> (k, arg_json v)) args)

(* Chrome trace format: complete ("X") and instant ("i") events with
   microsecond timestamps, one pid, the domain id as tid.  The object
   form ({"traceEvents": [...]}) is what chrome://tracing and
   Perfetto both accept. *)
let chrome_event ev =
  let base =
    [
      ("name", Json.Str ev.name);
      ("cat", Json.Str ev.cat);
      ("pid", Json.Num 1.0);
      ("tid", Json.Num (float_of_int ev.tid));
      ("ts", Json.Num (Clock.ns_to_us ev.ts));
    ]
  in
  let phase =
    match ev.ph with
    | Complete dur -> [ ("ph", Json.Str "X"); ("dur", Json.Num (Clock.ns_to_us dur)) ]
    | Instant -> [ ("ph", Json.Str "i"); ("s", Json.Str "t") ]
  in
  let args = match ev.args with [] -> [] | args -> [ ("args", args_json args) ] in
  Json.Obj (base @ phase @ args)

let chrome_json events =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map chrome_event events));
      ("displayTimeUnit", Json.Str "ns");
    ]

let chrome_string events = Json.to_compact_string (chrome_json events) ^ "\n"

let write_chrome ~path events =
  let oc = open_out path in
  (* stream one event per line inside the array: Perfetto-loadable
     and still diffable, without building one giant string *)
  output_string oc "{\"traceEvents\":[\n";
  List.iteri
    (fun i ev ->
      if i > 0 then output_string oc ",\n";
      output_string oc (Json.to_compact_string (chrome_event ev)))
    events;
  output_string oc "\n],\"displayTimeUnit\":\"ns\"}\n";
  close_out oc

let jsonl_event ev =
  let phase, dur =
    match ev.ph with Complete d -> ("span", [ ("dur_ns", Json.Num (Int64.to_float d)) ]) | Instant -> ("instant", [])
  in
  Json.Obj
    ([
       ("name", Json.Str ev.name);
       ("cat", Json.Str ev.cat);
       ("kind", Json.Str phase);
       ("ts_ns", Json.Num (Int64.to_float ev.ts));
       ("tid", Json.Num (float_of_int ev.tid));
     ]
    @ dur
    @ match ev.args with [] -> [] | args -> [ ("args", args_json args) ])

let write_jsonl ~path events =
  let oc = open_out path in
  List.iter (fun ev -> output_string oc (Json.to_compact_string (jsonl_event ev) ^ "\n")) events;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Span aggregation (the manifest's span summary and the report's
   flame table): per span name, how often it ran and how long. *)

type span_agg = { sa_count : int; sa_total_ns : int64; sa_max_ns : int64 }

let aggregate events =
  let tbl : (string, span_agg) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      match ev.ph with
      | Instant -> ()
      | Complete dur ->
          let prev =
            match Hashtbl.find_opt tbl ev.name with
            | Some a -> a
            | None -> { sa_count = 0; sa_total_ns = 0L; sa_max_ns = 0L }
          in
          Hashtbl.replace tbl ev.name
            {
              sa_count = prev.sa_count + 1;
              sa_total_ns = Int64.add prev.sa_total_ns dur;
              sa_max_ns = Int64.max prev.sa_max_ns dur;
            })
    events;
  let rows = Hashtbl.fold (fun name a acc -> (name, a) :: acc) tbl [] in
  List.sort (fun (_, a) (_, b) -> Int64.compare b.sa_total_ns a.sa_total_ns) rows

(* test constructor: golden-fixture tests build deterministic events
   without touching the clock *)
let make_event ?(cat = "sim") ?(args = []) ?(tid = 0) ~ts_ns ?dur_ns name =
  {
    name;
    cat;
    ph = (match dur_ns with Some d -> Complete d | None -> Instant);
    ts = ts_ns;
    tid;
    args;
  }
