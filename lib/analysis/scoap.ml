module C = Cml_logic.Circuit
module D = Diagnostic

type metrics = { cc0 : int array; cc1 : int array; co : int array }

let infinite = max_int / 4

let ( ++ ) a b = if a >= infinite || b >= infinite then infinite else a + b

(* Controllability in topological order; flip-flop transfer adds one
   sequential level.  Because flip-flop loops feed values backwards,
   iterate the whole relaxation to a fixpoint — values only ever
   decrease, so at most one pass per flip-flop layer is needed. *)
let compute_cc (c : C.t) =
  let n = Array.length c.C.gates in
  let cc0 = Array.make n infinite and cc1 = Array.make n infinite in
  let set i v0 v1 =
    let changed = v0 < cc0.(i) || v1 < cc1.(i) in
    if v0 < cc0.(i) then cc0.(i) <- v0;
    if v1 < cc1.(i) then cc1.(i) <- v1;
    changed
  in
  let relax i =
    match c.C.gates.(i) with
    | C.Input _ -> set i 1 1
    | C.And (a, b) -> set i (1 ++ min cc0.(a) cc0.(b)) (1 ++ cc1.(a) ++ cc1.(b))
    | C.Or (a, b) -> set i (1 ++ cc0.(a) ++ cc0.(b)) (1 ++ min cc1.(a) cc1.(b))
    | C.Xor (a, b) ->
        set i
          (1 ++ min (cc0.(a) ++ cc0.(b)) (cc1.(a) ++ cc1.(b)))
          (1 ++ min (cc1.(a) ++ cc0.(b)) (cc0.(a) ++ cc1.(b)))
    | C.Not a -> set i (1 ++ cc1.(a)) (1 ++ cc0.(a))
    | C.Buf a -> set i (1 ++ cc0.(a)) (1 ++ cc1.(a))
    | C.Mux { sel; a; b } ->
        set i
          (1 ++ min (cc1.(sel) ++ cc0.(a)) (cc0.(sel) ++ cc0.(b)))
          (1 ++ min (cc1.(sel) ++ cc1.(a)) (cc0.(sel) ++ cc1.(b)))
    | C.Dff { d } -> set i (1 ++ cc0.(d)) (1 ++ cc1.(d))
  in
  let changed = ref true in
  let passes = ref 0 in
  while !changed && !passes <= n + 1 do
    changed := false;
    Array.iter (fun i -> if relax i then changed := true) c.C.order;
    Array.iter (fun ff -> if relax ff then changed := true) c.C.dffs;
    incr passes
  done;
  (cc0, cc1)

let compute_co (c : C.t) cc0 cc1 =
  let n = Array.length c.C.gates in
  let co = Array.make n infinite in
  List.iter (fun (_, id) -> co.(id) <- 0) c.C.outputs;
  let lower i v = if v < co.(i) then (co.(i) <- v; true) else false in
  let relax i =
    let cg = co.(i) in
    if cg >= infinite then false
    else
      match c.C.gates.(i) with
      | C.Input _ -> false
      | C.And (a, b) ->
          let ca = lower a (cg ++ cc1.(b) ++ 1) in
          let cb = lower b (cg ++ cc1.(a) ++ 1) in
          ca || cb
      | C.Or (a, b) ->
          let ca = lower a (cg ++ cc0.(b) ++ 1) in
          let cb = lower b (cg ++ cc0.(a) ++ 1) in
          ca || cb
      | C.Xor (a, b) ->
          let ca = lower a (cg ++ min cc0.(b) cc1.(b) ++ 1) in
          let cb = lower b (cg ++ min cc0.(a) cc1.(a) ++ 1) in
          ca || cb
      | C.Not a | C.Buf a -> lower a (cg ++ 1)
      | C.Mux { sel; a; b } ->
          (* to see [sel], the data inputs must differ; to see a data
             input, steer the mux toward it *)
          let cs =
            lower sel (cg ++ min (cc1.(a) ++ cc0.(b)) (cc0.(a) ++ cc1.(b)) ++ 1)
          in
          let ca = lower a (cg ++ cc1.(sel) ++ 1) in
          let cb = lower b (cg ++ cc0.(sel) ++ 1) in
          cs || ca || cb
      | C.Dff { d } -> lower d (cg ++ 1)
  in
  let changed = ref true in
  let passes = ref 0 in
  while !changed && !passes <= n + 1 do
    changed := false;
    for k = Array.length c.C.order - 1 downto 0 do
      if relax c.C.order.(k) then changed := true
    done;
    Array.iter (fun ff -> if relax ff then changed := true) c.C.dffs;
    incr passes
  done;
  co

let compute c =
  let cc0, cc1 = compute_cc c in
  let co = compute_co c cc0 cc1 in
  { cc0; cc1; co }

(* ------------------------------------------------------------------ *)

let fanins = function
  | C.Input _ -> []
  | C.And (a, b) | C.Or (a, b) | C.Xor (a, b) -> [ a; b ]
  | C.Not a | C.Buf a -> [ a ]
  | C.Mux { sel; a; b } -> [ sel; a; b ]
  | C.Dff { d } -> [ d ]

type output_report = { output : string; hardest_net : int; hardest_co : int }

let output_reports (c : C.t) m =
  List.map
    (fun (name, id) ->
      (* transitive fan-in cone, through flip-flops *)
      let n = Array.length c.C.gates in
      let seen = Array.make n false in
      let rec visit i =
        if not seen.(i) then begin
          seen.(i) <- true;
          List.iter visit (fanins c.C.gates.(i))
        end
      in
      visit id;
      let hardest_net = ref id and hardest_co = ref m.co.(id) in
      for i = 0 to n - 1 do
        if seen.(i) && m.co.(i) < infinite && (m.co.(i) > !hardest_co || !hardest_co >= infinite)
        then begin
          hardest_net := i;
          hardest_co := m.co.(i)
        end
      done;
      { output = name; hardest_net = !hardest_net; hardest_co = !hardest_co })
    c.C.outputs

let consumers (c : C.t) =
  let n = Array.length c.C.gates in
  let cons = Array.make n [] in
  Array.iteri (fun i g -> List.iter (fun f -> cons.(f) <- i :: cons.(f)) (fanins g)) c.C.gates;
  cons

let reconvergent_stems (c : C.t) =
  let n = Array.length c.C.gates in
  let cons = consumers c in
  let reach_from start =
    let seen = Array.make n false in
    let rec visit i =
      if not seen.(i) then begin
        seen.(i) <- true;
        List.iter visit cons.(i)
      end
    in
    visit start;
    seen
  in
  let stems = ref [] in
  for s = 0 to n - 1 do
    match cons.(s) with
    | _ :: _ :: _ as branches ->
        (* distinct consumer gates, each explored as its own branch *)
        let branches = List.sort_uniq Stdlib.compare branches in
        if List.length branches >= 2 then begin
          let sets = List.map reach_from branches in
          (* the earliest net reached by two different branches *)
          let meet = ref None in
          for i = 0 to n - 1 do
            if !meet = None && i <> s then begin
              let hits = List.length (List.filter (fun set -> set.(i)) sets) in
              if hits >= 2 then meet := Some i
            end
          done;
          match !meet with
          | Some m -> stems := (s, m) :: !stems
          | None -> ()
        end
    | _ -> ()
  done;
  List.rev !stems

(* ------------------------------------------------------------------ *)

type config = { co_warn : int; cc_warn : int }

let default_config = { co_warn = 40; cc_warn = 40 }

let net_label (c : C.t) i =
  match c.C.gates.(i) with
  | C.Input name -> Printf.sprintf "%d (input %s)" i name
  | C.And _ | C.Or _ | C.Xor _ | C.Not _ | C.Buf _ | C.Mux _ | C.Dff _ -> string_of_int i

let check ?(config = default_config) (c : C.t) =
  let m = compute c in
  let n = Array.length c.C.gates in
  let out = ref [] in
  for i = n - 1 downto 0 do
    if m.co.(i) >= infinite then
      out :=
        D.make ~rule:Rules.scoap_unobservable D.Error (D.Gate i)
          "net %s cannot be observed at any primary output" (net_label c i)
        :: !out
    else if m.co.(i) > config.co_warn then
      out :=
        D.make ~rule:Rules.scoap_hard_observe D.Warning (D.Gate i)
          "observability CO = %d exceeds %d" m.co.(i) config.co_warn
        :: !out;
    if m.cc0.(i) < infinite && m.cc1.(i) < infinite
       && max m.cc0.(i) m.cc1.(i) > config.cc_warn
    then
      out :=
        D.make ~rule:Rules.scoap_hard_control D.Warning (D.Gate i)
          "controllability CC0 = %d / CC1 = %d exceeds %d" m.cc0.(i) m.cc1.(i) config.cc_warn
        :: !out;
    if m.cc0.(i) >= infinite || m.cc1.(i) >= infinite then
      out :=
        D.make ~rule:Rules.scoap_hard_control D.Warning (D.Gate i)
          "net %s cannot be driven to %s from the primary inputs" (net_label c i)
          (if m.cc0.(i) >= infinite then "0" else "1")
        :: !out
  done;
  List.iter
    (fun (s, meet) ->
      out :=
        D.make ~rule:Rules.scoap_reconvergent D.Info (D.Gate s)
          "fanout stem reconverges at net %d (SCOAP values along these paths are optimistic)"
          meet
        :: !out)
    (reconvergent_stems c);
  List.iter
    (fun r ->
      out :=
        D.make ~rule:Rules.scoap_output_summary D.Info (D.Output r.output)
          "hardest-to-observe net in this cone is %s (CO = %d)" (net_label c r.hardest_net)
          r.hardest_co
        :: !out)
    (output_reports c m);
  List.rev !out
