module C = Cml_logic.Circuit
module D = Diagnostic

type correction = { stem : int; meet : int; naive : float; corrected : float }

type metrics = {
  p1 : float array;
  obs : float array;
  passes : int;
  corrections : correction list;
}

let m_fixpoint_iters = Cml_telemetry.Metrics.counter "analysis.cop_fixpoint_iters"

let fanins = function
  | C.Input _ -> []
  | C.And (a, b) | C.Or (a, b) | C.Xor (a, b) -> [ a; b ]
  | C.Not a | C.Buf a -> [ a ]
  | C.Mux { sel; a; b } -> [ sel; a; b ]
  | C.Dff { d } -> [ d ]

let consumers (c : C.t) =
  let n = Array.length c.C.gates in
  let cons = Array.make n [] in
  Array.iteri
    (fun i g -> List.iter (fun f -> cons.(f) <- i :: cons.(f)) (fanins g))
    c.C.gates;
  Array.map (List.sort_uniq Stdlib.compare) cons

let tolerance = 1e-12

let max_passes = 1000

(* Forward signal-probability fixpoint.  [pins] force selected nets to
   a fixed probability (the Shannon-expansion conditioning used by the
   reconvergence correction below).  Flip-flop transfers are damped by
   averaging with the previous value so oscillating sequential loops
   (an inverter through a flip-flop) converge instead of flapping. *)
let probabilities ?(pins = []) (c : C.t) =
  let n = Array.length c.C.gates in
  let p = Array.make n 0.5 in
  let pinned = Array.make n None in
  List.iter (fun (i, v) -> pinned.(i) <- Some v) pins;
  let value i = p.(i) in
  let gate_p1 i =
    match c.C.gates.(i) with
    | C.Input _ -> 0.5
    | C.And (a, b) -> value a *. value b
    | C.Or (a, b) -> value a +. value b -. (value a *. value b)
    | C.Xor (a, b) -> (value a *. (1.0 -. value b)) +. (value b *. (1.0 -. value a))
    | C.Not a -> 1.0 -. value a
    | C.Buf a -> value a
    | C.Mux { sel; a; b } -> (value sel *. value a) +. ((1.0 -. value sel) *. value b)
    | C.Dff { d } -> 0.5 *. (p.(i) +. value d)
  in
  let passes = ref 0 in
  let delta = ref 1.0 in
  while !delta > tolerance && !passes < max_passes do
    delta := 0.0;
    let relax i =
      let next = match pinned.(i) with Some v -> v | None -> gate_p1 i in
      delta := Float.max !delta (Float.abs (next -. p.(i)));
      p.(i) <- next
    in
    Array.iter relax c.C.order;
    Array.iter relax c.C.dffs;
    incr passes
  done;
  (p, !passes)

(* Correlation-aware correction: the independence assumption is exact
   except across reconvergent fanout, where both gate inputs depend on
   the same stem.  For every (stem, meet) pair found by the SCOAP
   reconvergence scan, condition on the stem (Shannon expansion):
   P(meet) = P(stem) P(meet | stem=1) + (1-P(stem)) P(meet | stem=0),
   where the conditional circuit probabilities come from re-running the
   fixpoint with the stem pinned.  Corrected meets stay pinned for
   later corrections so cascaded reconvergence sees corrected values. *)
let correct c (p, passes0) =
  let stems = Scoap.reconvergent_stems c in
  (* correct shallow meets first so downstream corrections build on them *)
  let topo_rank =
    let n = Array.length c.C.gates in
    let rank = Array.make n 0 in
    Array.iteri (fun k i -> rank.(i) <- k) c.C.order;
    rank
  in
  let stems =
    List.stable_sort (fun (_, m1) (_, m2) -> compare topo_rank.(m1) topo_rank.(m2)) stems
  in
  let pins = ref [] in
  let passes = ref passes0 in
  let corrections = ref [] in
  List.iter
    (fun (stem, meet) ->
      let ps = p.(stem) in
      let conditional v =
        let cond, used = probabilities ~pins:((stem, v) :: !pins) c in
        passes := !passes + used;
        cond.(meet)
      in
      let corrected = (ps *. conditional 1.0) +. ((1.0 -. ps) *. conditional 0.0) in
      if Float.abs (corrected -. p.(meet)) > tolerance then begin
        corrections := { stem; meet; naive = p.(meet); corrected } :: !corrections;
        pins := (meet, corrected) :: !pins
      end)
    stems;
  let p, final_passes =
    if !pins = [] then (p, 0) else probabilities ~pins:!pins c
  in
  passes := !passes + final_passes;
  (p, !passes, List.rev !corrections)

(* Backward observability fixpoint over the corrected probabilities.
   obs(n) is the probability that a value change on [n] propagates to
   some primary output; fanout takes the best branch (a lower bound —
   simultaneous propagation along several branches only helps).
   Starting from zero the relaxation is monotone non-decreasing and
   bounded by one, so it converges without damping, flip-flop loops
   included. *)
let observabilities (c : C.t) p1 =
  let n = Array.length c.C.gates in
  let cons = consumers c in
  let obs = Array.make n 0.0 in
  List.iter (fun (_, id) -> obs.(id) <- 1.0) c.C.outputs;
  let is_output = Array.make n false in
  List.iter (fun (_, id) -> is_output.(id) <- true) c.C.outputs;
  let transfer g i =
    (* probability that a change on input [i] of gate [g] reaches g's
       output, times g's own observability *)
    let og = obs.(g) in
    match c.C.gates.(g) with
    | C.Input _ -> 0.0
    | C.And (a, b) -> og *. (if i = a then p1.(b) else p1.(a))
    | C.Or (a, b) -> og *. (if i = a then 1.0 -. p1.(b) else 1.0 -. p1.(a))
    | C.Xor _ | C.Not _ | C.Buf _ | C.Dff _ -> og
    | C.Mux { sel; a; b } ->
        if i = sel then
          og *. ((p1.(a) *. (1.0 -. p1.(b))) +. (p1.(b) *. (1.0 -. p1.(a))))
        else if i = a then og *. p1.(sel)
        else og *. (1.0 -. p1.(sel))
  in
  let passes = ref 0 in
  let changed = ref true in
  while !changed && !passes < max_passes do
    changed := false;
    let relax i =
      let base = if is_output.(i) then 1.0 else 0.0 in
      let next = List.fold_left (fun acc g -> Float.max acc (transfer g i)) base cons.(i) in
      if next -. obs.(i) > tolerance then begin
        obs.(i) <- next;
        changed := true
      end
    in
    for k = Array.length c.C.order - 1 downto 0 do
      relax c.C.order.(k)
    done;
    Array.iter relax c.C.dffs;
    incr passes
  done;
  (obs, !passes)

let compute c =
  let p, passes, corrections = correct c (probabilities c) in
  let obs, obs_passes = observabilities c p in
  let passes = passes + obs_passes in
  Cml_telemetry.Metrics.add m_fixpoint_iters passes;
  { p1 = p; obs; passes; corrections }

(* ------------------------------------------------------------------ *)

type config = { p_skew : float; obs_floor : float; correction_note : float }

let default_config = { p_skew = 0.01; obs_floor = 0.01; correction_note = 0.05 }

let check ?(config = default_config) (c : C.t) =
  let m = compute c in
  let cons = consumers c in
  let is_output = Array.make (Array.length c.C.gates) false in
  List.iter (fun (_, id) -> is_output.(id) <- true) c.C.outputs;
  let out = ref [] in
  for i = Array.length c.C.gates - 1 downto 0 do
    (match c.C.gates.(i) with
    | C.Input _ -> ()
    | _ ->
        if m.p1.(i) < config.p_skew || m.p1.(i) > 1.0 -. config.p_skew then
          out :=
            D.make ~rule:Rules.cop_skewed_probability D.Warning (D.Gate i)
              "signal probability P(1) = %.4f is outside [%.2f, %.2f]; random patterns \
               rarely exercise this net"
              m.p1.(i) config.p_skew
              (1.0 -. config.p_skew)
            :: !out);
    (* nets with no path to an output at all are SCOAP001's business *)
    if (cons.(i) <> [] || is_output.(i)) && m.obs.(i) > 0.0 && m.obs.(i) < config.obs_floor
    then
      out :=
        D.make ~rule:Rules.cop_low_observability D.Warning (D.Gate i)
          "change-propagation probability %.5f is below %.2f; faults here are \
           random-pattern resistant"
          m.obs.(i) config.obs_floor
        :: !out
  done;
  List.iter
    (fun cor ->
      if Float.abs (cor.corrected -. cor.naive) > config.correction_note then
        out :=
          D.make ~rule:Rules.cop_correlation D.Info (D.Gate cor.meet)
            "reconvergence of stem %d shifts P(1) from %.4f (independence) to %.4f \
             (conditioned); independence-based metrics are unreliable here"
            cor.stem cor.naive cor.corrected
          :: !out)
    m.corrections;
  List.rev !out
