(** Shared diagnostics core for the static-analysis pass: every rule
    family (ERC, DFT audit, SCOAP) reports findings as values of
    {!t}, which render uniformly as text or JSON and sort
    deterministically so reports are diffable and machine-checkable. *)

type severity = Info | Warning | Error

type location =
  | Device of string  (** a netlist device, e.g. ["x3.q3"] *)
  | Node of string  (** a netlist node, by name *)
  | Cell of string  (** a CML cell instance, e.g. ["x3"] *)
  | Group of int  (** a read-out sharing group, by index *)
  | Gate of int  (** a gate-level net id *)
  | Output of string  (** a primary output, by name *)
  | Toplevel  (** the design as a whole *)

type t = {
  rule : string;  (** rule identifier, e.g. ["ERC001"] *)
  severity : severity;
  location : location;
  message : string;
}

val make : rule:string -> severity -> location -> ('a, unit, string, t) format4 -> 'a
(** [make ~rule sev loc fmt ...] builds a diagnostic with a formatted
    message. *)

val severity_name : severity -> string
(** ["info"], ["warning"] or ["error"]. *)

val severity_ge : severity -> severity -> bool
(** [severity_ge a b] is true when [a] is at least as severe as [b]. *)

val location_string : location -> string

val compare : t -> t -> int
(** Total order: most severe first, then rule id, location, message. *)

val sort : t list -> t list
(** Deterministic report order (stable under {!compare}). *)

val count : severity -> t list -> int
(** Diagnostics at exactly that severity. *)

val worst : t list -> severity option
(** Highest severity present, if any. *)

val to_string : t -> string
(** One line: ["error[ERC001] node x3.ce: ..."]. *)

val render_text : t list -> string
(** Sorted multi-line report plus a final summary line. *)

val render_json : t list -> string
(** Sorted JSON document
    [{"diagnostics":[...],"errors":N,"warnings":N,"infos":N}]; no
    external JSON dependency, strings are escaped per RFC 8259. *)
