(** SCOAP testability metrics (Goldstein's controllability /
    observability measures, in the spirit of OpenTestability) on
    gate-level circuits, plus reconvergent-fanout detection.

    CC0(n)/CC1(n) count how many net assignments it takes to force
    net [n] to 0/1 (primary inputs cost 1); CO(n) counts how many to
    propagate [n] to a primary output (outputs cost 0).  Flip-flops
    add one level per crossing; feedback through flip-flops is
    resolved by fixpoint iteration.  Unreachable values are reported
    as {!infinite}. *)

type metrics = {
  cc0 : int array;  (** per net; {!infinite} = uncontrollable *)
  cc1 : int array;
  co : int array;  (** per net; {!infinite} = unobservable *)
}

val infinite : int
(** Sentinel for "not achievable"; safe to add without overflow. *)

val compute : Cml_logic.Circuit.t -> metrics

type output_report = {
  output : string;  (** primary output name *)
  hardest_net : int;  (** net in its fan-in cone with the largest finite CO *)
  hardest_co : int;
}

val output_reports : Cml_logic.Circuit.t -> metrics -> output_report list
(** Per-output hardest-to-observe-net report, in output declaration
    order.  Cones are transitive through flip-flops. *)

type config = {
  co_warn : int;  (** CO above this is flagged hard-to-observe *)
  cc_warn : int;  (** CC0 or CC1 above this is flagged hard-to-control *)
}

val default_config : config
(** [co_warn = 40], [cc_warn = 40] — generous enough that clean small
    benches stay quiet. *)

val reconvergent_stems : Cml_logic.Circuit.t -> (int * int) list
(** Fanout stems whose branches meet again downstream, as
    [(stem net, reconvergence net)] pairs — the structures that make
    SCOAP optimistic and random patterns miss faults. *)

val check : ?config:config -> Cml_logic.Circuit.t -> Diagnostic.t list
(** Diagnostics: unobservable nets (error), hard-to-observe /
    hard-to-control nets (warning), reconvergent stems and the
    per-output summary (info). *)
