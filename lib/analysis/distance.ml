module C = Cml_logic.Circuit
module D = Diagnostic

type metrics = {
  from_inputs : int array;
  to_outputs : int array;
  seq_depth : int array;
  comb_depth : int;
  ff_to_ff : int;
  output_depths : (string * int) list;
}

let unreachable = max_int / 4

(* one logic level per real gate; buffers and flip-flop transfers are
   free, matching {!Cml_logic.Timing} *)
let cost = function
  | C.Input _ | C.Dff _ | C.Buf _ -> 0
  | C.And _ | C.Or _ | C.Xor _ | C.Not _ | C.Mux _ -> 1

let comb_fanins = function
  | C.Input _ | C.Dff _ -> []
  | C.And (a, b) | C.Or (a, b) | C.Xor (a, b) -> [ a; b ]
  | C.Not a | C.Buf a -> [ a ]
  | C.Mux { sel; a; b } -> [ sel; a; b ]

let seq_fanins = function
  | C.Input _ -> []
  | C.And (a, b) | C.Or (a, b) | C.Xor (a, b) -> [ a; b ]
  | C.Not a | C.Buf a -> [ a ]
  | C.Mux { sel; a; b } -> [ sel; a; b ]
  | C.Dff { d } -> [ d ]

let compute (c : C.t) =
  let n = Array.length c.C.gates in
  (* longest combinational path from any segment source (primary input
     or flip-flop output); flip-flops cut segments, so a plain forward
     pass over the topological order suffices *)
  let from_inputs = Array.make n 0 in
  Array.iter
    (fun i ->
      let g = c.C.gates.(i) in
      let best = List.fold_left (fun acc f -> max acc from_inputs.(f)) 0 (comb_fanins g) in
      from_inputs.(i) <- best + cost g)
    c.C.order;
  (* longest combinational path starting specifically at a flip-flop
     output; nets with no flip-flop in their combinational cone stay
     at [-1] *)
  let from_ffs = Array.make n (-1) in
  Array.iter (fun ff -> from_ffs.(ff) <- 0) c.C.dffs;
  Array.iter
    (fun i ->
      let g = c.C.gates.(i) in
      match c.C.gates.(i) with
      | C.Dff _ -> ()
      | _ ->
          let best = List.fold_left (fun acc f -> max acc from_ffs.(f)) (-1) (comb_fanins g) in
          if best >= 0 then from_ffs.(i) <- best + cost g)
    c.C.order;
  (* longest combinational path to any segment sink (primary output or
     flip-flop data input), walked backward; dead nets stay at [-1] *)
  let to_outputs = Array.make n (-1) in
  List.iter (fun (_, id) -> to_outputs.(id) <- 0) c.C.outputs;
  Array.iter
    (fun ff ->
      match c.C.gates.(ff) with
      | C.Dff { d } -> to_outputs.(d) <- max to_outputs.(d) 0
      | _ -> ())
    c.C.dffs;
  for k = Array.length c.C.order - 1 downto 0 do
    let i = c.C.order.(k) in
    let g = c.C.gates.(i) in
    if to_outputs.(i) >= 0 then
      List.iter
        (fun f -> to_outputs.(f) <- max to_outputs.(f) (to_outputs.(i) + cost g))
        (comb_fanins g)
  done;
  (* minimum flip-flop crossings from a primary input, through
     sequential loops: a monotone-decreasing fixpoint from the
     unreachable sentinel *)
  let seq_depth = Array.make n unreachable in
  let changed = ref true in
  let passes = ref 0 in
  while !changed && !passes <= n + 1 do
    changed := false;
    let relax i =
      let v =
        match c.C.gates.(i) with
        | C.Input _ -> 0
        | g ->
            let best =
              List.fold_left (fun acc f -> min acc seq_depth.(f)) unreachable (seq_fanins g)
            in
            if best >= unreachable then unreachable
            else best + match g with C.Dff _ -> 1 | _ -> 0
      in
      if v < seq_depth.(i) then begin
        seq_depth.(i) <- v;
        changed := true
      end
    in
    Array.iter relax c.C.order;
    Array.iter relax c.C.dffs;
    incr passes
  done;
  let output_depths = List.map (fun (name, id) -> (name, from_inputs.(id))) c.C.outputs in
  let comb_depth =
    let at_sinks =
      List.fold_left (fun acc (_, d) -> max acc d) 0 output_depths
    in
    Array.fold_left
      (fun acc ff ->
        match c.C.gates.(ff) with C.Dff { d } -> max acc from_inputs.(d) | _ -> acc)
      at_sinks c.C.dffs
  in
  let ff_to_ff =
    Array.fold_left
      (fun acc ff ->
        match c.C.gates.(ff) with C.Dff { d } -> max acc from_ffs.(d) | _ -> acc)
      (-1) c.C.dffs
  in
  { from_inputs; to_outputs; seq_depth; comb_depth; ff_to_ff; output_depths }

(* ------------------------------------------------------------------ *)

type config = { depth_warn : int }

let default_config = { depth_warn = 48 }

let check ?(config = default_config) (c : C.t) =
  let m = compute c in
  let out = ref [] in
  List.iter
    (fun (name, depth) ->
      if depth > config.depth_warn then
        out :=
          D.make ~rule:Rules.dist_deep_path D.Warning (D.Output name)
            "combinational depth %d from the primary inputs exceeds %d levels" depth
            config.depth_warn
          :: !out)
    (List.rev m.output_depths);
  if m.ff_to_ff > config.depth_warn then
    out :=
      D.make ~rule:Rules.dist_deep_path D.Warning D.Toplevel
        "deepest flip-flop-to-flip-flop segment is %d levels, above %d" m.ff_to_ff
        config.depth_warn
      :: !out;
  let deepest_output =
    List.fold_left
      (fun acc (name, d) ->
        match acc with Some (_, best) when best >= d -> acc | _ -> Some (name, d))
      None m.output_depths
  in
  (match deepest_output with
  | Some (name, d) ->
      out :=
        D.make ~rule:Rules.dist_summary D.Info D.Toplevel
          "deepest input-to-output path is %d levels (output %s); deepest \
           flip-flop-to-flip-flop segment is %s"
          d name
          (if m.ff_to_ff < 0 then "absent (no flip-flops)" else string_of_int m.ff_to_ff)
        :: !out
  | None -> ());
  List.rev !out
