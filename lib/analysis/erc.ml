module N = Cml_spice.Netlist
module D = Diagnostic

type config = {
  swing_min : float;
  swing_max : float;
  load_tolerance : float;
}

let default_config = { swing_min = 0.12; swing_max = 0.45; load_tolerance = 1e-3 }

let cell_of_device name =
  match String.rindex_opt name '.' with
  | None -> None
  | Some i -> Some (String.sub name 0 i)

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* structural rules *)

let check_values net =
  let out = ref [] in
  N.iter_devices net (fun d ->
      match d with
      | N.Resistor { name; r; _ } when r <= 0.0 ->
          out :=
            D.make ~rule:Rules.erc_nonpositive_resistance D.Error (D.Device name)
              "resistance %g ohm is not positive" r
            :: !out
      | N.Capacitor { name; c; _ } when c < 0.0 ->
          out :=
            D.make ~rule:Rules.erc_negative_capacitance D.Error (D.Device name)
              "capacitance %g F is negative" c
            :: !out
      | N.Resistor _ | N.Capacitor _ | N.Diode _ | N.Bjt _ | N.Vsource _ | N.Isource _
      | N.Vcvs _ | N.Vccs _ -> ());
  !out

let check_duplicate_names net =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  N.iter_devices net (fun d ->
      let name = N.device_name d in
      let key = String.lowercase_ascii name in
      match Hashtbl.find_opt seen key with
      | None -> Hashtbl.replace seen key name
      | Some first when first <> name ->
          out :=
            D.make ~rule:Rules.erc_duplicate_name D.Warning (D.Device name)
              "name collides with %S up to case (SPICE decks are case-insensitive)" first
            :: !out
      | Some _ ->
          (* an exact duplicate cannot be constructed through
             [Netlist.add_device], but a hand-edited deck parser
             could feed one in the future — keep the guard *)
          out :=
            D.make ~rule:Rules.erc_duplicate_name D.Warning (D.Device name)
              "duplicate device name" :: !out);
  List.rev !out

(* degree of every node = number of device terminals landing on it *)
let terminal_degrees net =
  let deg = Array.make (N.node_count net) 0 in
  N.iter_devices net (fun d ->
      List.iter (fun (_, nd) -> deg.(nd) <- deg.(nd) + 1) (N.device_terminals d));
  deg

let check_floating net deg =
  let out = ref [] in
  for nd = N.node_count net - 1 downto 1 do
    if deg.(nd) < 2 then
      out :=
        D.make ~rule:Rules.erc_floating_node D.Error (D.Node (N.node_name net nd))
          "connects to %d device terminal(s); a real node needs at least 2" deg.(nd)
        :: !out
  done;
  !out

(* DC conduction edges: resistors, voltage sources, diodes, BJT
   junctions and VCVS outputs conduct at DC; capacitors and current
   sources (independent or controlled) do not. *)
let dc_edges d =
  match d with
  | N.Resistor { n1; n2; _ } -> [ (n1, n2) ]
  | N.Vsource { npos; nneg; _ } -> [ (npos, nneg) ]
  | N.Vcvs { npos; nneg; _ } -> [ (npos, nneg) ]
  | N.Diode { anode; cathode; _ } -> [ (anode, cathode) ]
  | N.Bjt { collector; base; emitters; _ } ->
      (collector, base) :: Array.to_list (Array.map (fun e -> (base, e)) emitters)
  | N.Capacitor _ | N.Isource _ | N.Vccs _ -> []

let check_dc_paths net deg =
  let n = N.node_count net in
  let adj = Array.make n [] in
  N.iter_devices net (fun d ->
      List.iter
        (fun (a, b) ->
          adj.(a) <- b :: adj.(a);
          adj.(b) <- a :: adj.(b))
        (dc_edges d));
  let reached = Array.make n false in
  let rec visit nd =
    if not reached.(nd) then begin
      reached.(nd) <- true;
      List.iter visit adj.(nd)
    end
  in
  visit N.gnd;
  let out = ref [] in
  for nd = n - 1 downto 1 do
    (* degree-<2 nodes are already flagged as floating; repeating
       them here would double-report the same defect *)
    if (not reached.(nd)) && deg.(nd) >= 2 then
      out :=
        D.make ~rule:Rules.erc_no_dc_path D.Error (D.Node (N.node_name net nd))
          "no DC conduction path to ground (operating point is undefined)"
        :: !out
  done;
  !out

let check_vsource_loops net =
  let n = N.node_count net in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let out = ref [] in
  N.iter_devices net (fun d ->
      match d with
      | N.Vsource { name; npos; nneg; _ } | N.Vcvs { name; npos; nneg; _ } ->
          let a = find npos and b = find nneg in
          if a = b then
            out :=
              D.make ~rule:Rules.erc_vsource_loop D.Error (D.Device name)
                "closes a loop of ideal voltage sources (the branch current is unbounded)"
              :: !out
          else parent.(a) <- b
      | N.Resistor _ | N.Capacitor _ | N.Diode _ | N.Bjt _ | N.Isource _ | N.Vccs _ -> ());
  List.rev !out

(* ------------------------------------------------------------------ *)
(* CML design rules *)

type cell_view = {
  mutable bjts : (string * int * int * int array) list;  (** name, c, b, emitters *)
  mutable resistors : (string * int * int * float) list;  (** name, n1, n2, r *)
}

let cells_of net =
  let cells = Hashtbl.create 64 in
  let view cell =
    match Hashtbl.find_opt cells cell with
    | Some v -> v
    | None ->
        let v = { bjts = []; resistors = [] } in
        Hashtbl.replace cells cell v;
        v
  in
  N.iter_devices net (fun d ->
      match cell_of_device (N.device_name d) with
      | None -> ()
      | Some cell -> (
          match d with
          | N.Bjt { name; collector; base; emitters; _ } ->
              (view cell).bjts <- (name, collector, base, emitters) :: (view cell).bjts
          | N.Resistor { name; n1; n2; r } ->
              (view cell).resistors <- (name, n1, n2, r) :: (view cell).resistors
          | N.Capacitor _ | N.Diode _ | N.Vsource _ | N.Isource _ | N.Vcvs _ | N.Vccs _ -> ()));
  cells

(* the differential load pair of a cell: resistors [<cell>.r1] /
   [<cell>.r2] sharing a rail node, with both far ends landing on
   collectors of the cell's own transistors.  The structural
   conditions keep the rule away from look-alikes such as the
   read-out's feedback divider (also named r1/r2, intentionally
   different values). *)
let load_pair cell v =
  let named suffix =
    List.find_opt (fun (name, _, _, _) -> name = cell ^ suffix) v.resistors
  in
  match (named ".r1", named ".r2") with
  | Some (n1, a1, b1, r1), Some (n2, a2, b2, r2) ->
      let collectors = List.map (fun (_, c, _, _) -> c) v.bjts in
      let far shared (x, y) = if x = shared then Some y else if y = shared then Some x else None in
      let pair shared =
        match (far shared (a1, b1), far shared (a2, b2)) with
        | Some f1, Some f2
          when f1 <> f2 && List.mem f1 collectors && List.mem f2 collectors ->
            Some ((n1, r1), (n2, r2))
        | _ -> None
      in
      let candidates =
        List.filter (fun s -> s = a2 || s = b2) [ a1; b1 ]
      in
      List.fold_left (fun acc s -> match acc with Some _ -> acc | None -> pair s) None candidates
  | _ -> None

let check_load_match cfg cells =
  Hashtbl.fold
    (fun cell v acc ->
      match load_pair cell v with
      | Some ((name1, r1), (name2, r2)) ->
          let mismatch = Float.abs (r1 -. r2) /. Float.max r1 (Float.max r2 epsilon_float) in
          if mismatch > cfg.load_tolerance then
            D.make ~rule:Rules.cml_mismatched_loads D.Error (D.Cell cell)
              "differential load resistors differ: %s = %g ohm, %s = %g ohm (%.1f%% mismatch \
               skews the output swing)"
              name1 r1 name2 r2 (100.0 *. mismatch)
            :: acc
          else acc
      | None -> acc)
    cells []

(* a common-emitter node fed by two or more emitters of one cell and
   by nothing else has lost its tail current source (the paper's Q3) *)
let check_tail_sources net =
  let n = N.node_count net in
  let emitters = Array.make n [] in
  let other = Array.make n 0 in
  N.iter_devices net (fun d ->
      let name = N.device_name d in
      List.iter
        (fun (term, nd) ->
          let is_emitter =
            match d with N.Bjt _ -> term = "e" || (String.length term > 1 && term.[0] = 'e') | _ -> false
          in
          if is_emitter then emitters.(nd) <- name :: emitters.(nd)
          else other.(nd) <- other.(nd) + 1)
        (N.device_terminals d));
  let out = ref [] in
  for nd = 1 to n - 1 do
    match emitters.(nd) with
    | first :: _ :: _ when other.(nd) = 0 ->
        let cell = match cell_of_device first with Some c -> c | None -> first in
        out :=
          D.make ~rule:Rules.cml_missing_tail D.Error (D.Cell cell)
            "common-emitter node %s has no tail current source (emitters: %s)"
            (N.node_name net nd)
            (String.concat ", " (List.rev emitters.(nd)))
          :: !out
    | _ -> ()
  done;
  !out

(* DC value of the source driving a node, if any *)
let dc_drive net nd =
  let found = ref None in
  N.iter_devices net (fun d ->
      match d with
      | N.Vsource { npos; nneg; wave = Cml_spice.Waveform.Dc v; _ } ->
          if npos = nd && nneg = N.gnd then found := Some v
      | N.Resistor _ | N.Capacitor _ | N.Diode _ | N.Bjt _ | N.Vsource _ | N.Isource _
      | N.Vcvs _ | N.Vccs _ -> ());
  !found

(* swing budget: tail current (from the bias-line drive and the tail
   transistor's saturation current) times the load resistance *)
let check_swing cfg net cells =
  Hashtbl.fold
    (fun cell v acc ->
      match load_pair cell v with
      | None -> acc
      | Some ((_, r1), (_, r2)) -> (
          let tail =
            List.find_opt
              (fun (_, _, base, emitters) ->
                Array.length emitters = 1 && emitters.(0) = N.gnd && dc_drive net base <> None)
              v.bjts
          in
          match tail with
          | None -> acc
          | Some (tail_name, _, base, _) -> (
              match (dc_drive net base, N.get_device net tail_name) with
              | Some vbias, N.Bjt { model; _ } ->
                  let i_tail, _ =
                    Cml_spice.Models.junction_current ~is:model.Cml_spice.Models.q_is
                      ~nvt:Cml_spice.Models.boltzmann_vt vbias
                  in
                  let swing = i_tail *. Float.max r1 r2 in
                  if swing < cfg.swing_min || swing > cfg.swing_max then
                    D.make ~rule:Rules.cml_swing_window D.Warning (D.Cell cell)
                      "output swing budget %.0f mV (i_tail %.2f mA via %s into %g ohm) is \
                       outside the nominal %.0f-%.0f mV window"
                      (1e3 *. swing) (1e3 *. i_tail) tail_name (Float.max r1 r2)
                      (1e3 *. cfg.swing_min) (1e3 *. cfg.swing_max)
                    :: acc
                  else acc
              | _ -> acc)))
    cells []

(* in an instrumented netlist every shared-readout sensor hangs its
   base on the vtest rail; a sensor wired elsewhere silently never
   engages in test mode *)
let check_vtest_routing net =
  match (N.find_node net "vtest", N.mem_device net "vtest") with
  | Some rail, true ->
      let out = ref [] in
      N.iter_devices net (fun d ->
          match d with
          | N.Bjt { name; base; _ }
            when starts_with ~prefix:"ro" name && contains ~sub:".det" name && base <> rail ->
              out :=
                D.make ~rule:Rules.cml_vtest_unrouted D.Error (D.Device name)
                  "sensor base is on node %s, not on the vtest rail; it will never engage in \
                   test mode"
                  (N.node_name net base)
                :: !out
          | N.Resistor _ | N.Capacitor _ | N.Diode _ | N.Bjt _ | N.Vsource _ | N.Isource _
          | N.Vcvs _ | N.Vccs _ -> ());
      List.rev !out
  | _ -> []

(* ------------------------------------------------------------------ *)

let check ?(config = default_config) net =
  let deg = terminal_degrees net in
  let cells = cells_of net in
  List.concat
    [
      check_values net;
      check_duplicate_names net;
      check_floating net deg;
      check_dc_paths net deg;
      check_vsource_loops net;
      check_load_match config cells;
      check_tail_sources net;
      check_swing config net cells;
      check_vtest_routing net;
    ]
