type severity = Info | Warning | Error

type location =
  | Device of string
  | Node of string
  | Cell of string
  | Group of int
  | Gate of int
  | Output of string
  | Toplevel

type t = {
  rule : string;
  severity : severity;
  location : location;
  message : string;
}

let make ~rule severity location fmt =
  Printf.ksprintf (fun message -> { rule; severity; location; message }) fmt

let severity_name = function Info -> "info" | Warning -> "warning" | Error -> "error"

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

let severity_ge a b = severity_rank a >= severity_rank b

let location_string = function
  | Device d -> "device " ^ d
  | Node n -> "node " ^ n
  | Cell c -> "cell " ^ c
  | Group i -> Printf.sprintf "group %d" i
  | Gate i -> Printf.sprintf "net %d" i
  | Output o -> "output " ^ o
  | Toplevel -> "design"

let compare a b =
  let c = Stdlib.compare (severity_rank b.severity) (severity_rank a.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.rule b.rule in
    if c <> 0 then c
    else
      let c = String.compare (location_string a.location) (location_string b.location) in
      if c <> 0 then c else String.compare a.message b.message

let sort ds = List.stable_sort compare ds

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let worst ds =
  List.fold_left
    (fun acc d ->
      match acc with
      | None -> Some d.severity
      | Some s -> Some (if severity_ge d.severity s then d.severity else s))
    None ds

let to_string d =
  Printf.sprintf "%s[%s] %s: %s" (severity_name d.severity) d.rule
    (location_string d.location) d.message

let render_text ds =
  let ds = sort ds in
  let buf = Buffer.create 256 in
  List.iter
    (fun d ->
      Buffer.add_string buf (to_string d);
      Buffer.add_char buf '\n')
    ds;
  Buffer.add_string buf
    (Printf.sprintf "%d error(s), %d warning(s), %d info\n" (count Error ds)
       (count Warning ds) (count Info ds));
  Buffer.contents buf

(* RFC 8259 string escaping: the two mandatory escapes plus control
   characters; everything else passes through byte-for-byte. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let location_json = function
  | Device d -> Printf.sprintf {|{"kind":"device","name":"%s"}|} (json_escape d)
  | Node n -> Printf.sprintf {|{"kind":"node","name":"%s"}|} (json_escape n)
  | Cell c -> Printf.sprintf {|{"kind":"cell","name":"%s"}|} (json_escape c)
  | Group i -> Printf.sprintf {|{"kind":"group","index":%d}|} i
  | Gate i -> Printf.sprintf {|{"kind":"net","id":%d}|} i
  | Output o -> Printf.sprintf {|{"kind":"output","name":"%s"}|} (json_escape o)
  | Toplevel -> {|{"kind":"design"}|}

let render_json ds =
  let ds = sort ds in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"diagnostics\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf {|{"rule":"%s","severity":"%s","location":%s,"message":"%s"}|}
           (json_escape d.rule) (severity_name d.severity) (location_json d.location)
           (json_escape d.message)))
    ds;
  Buffer.add_string buf
    (Printf.sprintf "],\"errors\":%d,\"warnings\":%d,\"infos\":%d}" (count Error ds)
       (count Warning ds) (count Info ds));
  Buffer.add_char buf '\n';
  Buffer.contents buf
