type info = {
  id : string;
  family : string;
  severity : Diagnostic.severity;
  title : string;
}

let erc_floating_node = "ERC001"
let erc_no_dc_path = "ERC002"
let erc_duplicate_name = "ERC003"
let erc_nonpositive_resistance = "ERC004"
let erc_negative_capacitance = "ERC005"
let erc_vsource_loop = "ERC006"

let cml_mismatched_loads = "CML001"
let cml_missing_tail = "CML002"
let cml_swing_window = "CML003"
let cml_vtest_unrouted = "CML004"

let dft_uninstrumented_cell = "DFT001"
let dft_oversized_group = "DFT002"
let dft_single_polarity = "DFT003"
let dft_missing_readout = "DFT004"

let scoap_unobservable = "SCOAP001"
let scoap_hard_observe = "SCOAP002"
let scoap_hard_control = "SCOAP003"
let scoap_reconvergent = "SCOAP004"
let scoap_output_summary = "SCOAP005"

let cop_skewed_probability = "COP001"
let cop_low_observability = "COP002"
let cop_correlation = "COP003"

let dist_deep_path = "DIST001"
let dist_summary = "DIST002"

let place_over_limit = "PLACE001"
let place_uncovered_weak_net = "PLACE002"
let place_unbalanced_depth = "PLACE003"
let place_redundant_detector = "PLACE004"

let all =
  [
    { id = erc_floating_node; family = "erc"; severity = Diagnostic.Error;
      title = "node connects to fewer than two device terminals" };
    { id = erc_no_dc_path; family = "erc"; severity = Diagnostic.Error;
      title = "node has no DC conduction path to ground" };
    { id = erc_duplicate_name; family = "erc"; severity = Diagnostic.Warning;
      title = "device names collide case-insensitively" };
    { id = erc_nonpositive_resistance; family = "erc"; severity = Diagnostic.Error;
      title = "resistor value is zero or negative" };
    { id = erc_negative_capacitance; family = "erc"; severity = Diagnostic.Error;
      title = "capacitor value is negative" };
    { id = erc_vsource_loop; family = "erc"; severity = Diagnostic.Error;
      title = "loop of ideal voltage sources" };
    { id = cml_mismatched_loads; family = "cml"; severity = Diagnostic.Error;
      title = "differential pair load resistors differ" };
    { id = cml_missing_tail; family = "cml"; severity = Diagnostic.Error;
      title = "differential pair has no tail current source" };
    { id = cml_swing_window; family = "cml"; severity = Diagnostic.Warning;
      title = "output swing budget outside the nominal window" };
    { id = cml_vtest_unrouted; family = "cml"; severity = Diagnostic.Error;
      title = "sensor base is not on the vtest rail" };
    { id = dft_uninstrumented_cell; family = "dft"; severity = Diagnostic.Error;
      title = "cell is not covered by any sensor group" };
    { id = dft_oversized_group; family = "dft"; severity = Diagnostic.Error;
      title = "sharing group exceeds the safe size" };
    { id = dft_single_polarity; family = "dft"; severity = Diagnostic.Warning;
      title = "output monitored on only one polarity" };
    { id = dft_missing_readout; family = "dft"; severity = Diagnostic.Error;
      title = "plan group has no read-out devices in the netlist" };
    { id = scoap_unobservable; family = "scoap"; severity = Diagnostic.Error;
      title = "net drives no primary output or flip-flop" };
    { id = scoap_hard_observe; family = "scoap"; severity = Diagnostic.Warning;
      title = "net observability above the threshold" };
    { id = scoap_hard_control; family = "scoap"; severity = Diagnostic.Warning;
      title = "net controllability above the threshold" };
    { id = scoap_reconvergent; family = "scoap"; severity = Diagnostic.Info;
      title = "fanout stem reconverges downstream" };
    { id = scoap_output_summary; family = "scoap"; severity = Diagnostic.Info;
      title = "hardest-to-observe net in an output cone" };
    { id = cop_skewed_probability; family = "cop"; severity = Diagnostic.Warning;
      title = "signal probability too skewed for random patterns" };
    { id = cop_low_observability; family = "cop"; severity = Diagnostic.Warning;
      title = "change-propagation probability below the floor" };
    { id = cop_correlation; family = "cop"; severity = Diagnostic.Info;
      title = "reconvergence correction materially shifts a probability" };
    { id = dist_deep_path; family = "dist"; severity = Diagnostic.Warning;
      title = "combinational segment deeper than the threshold" };
    { id = dist_summary; family = "dist"; severity = Diagnostic.Info;
      title = "input-to-output and flip-flop segment depth summary" };
    { id = place_over_limit; family = "place"; severity = Diagnostic.Error;
      title = "sharing group exceeds the derated safe limit" };
    { id = place_uncovered_weak_net; family = "place"; severity = Diagnostic.Error;
      title = "low-observability net has no detector" };
    { id = place_unbalanced_depth; family = "place"; severity = Diagnostic.Warning;
      title = "sharing group spans too wide a logic-depth range" };
    { id = place_redundant_detector; family = "place"; severity = Diagnostic.Warning;
      title = "detector duplicates coverage of an already-monitored net" };
  ]

let find id = List.find_opt (fun r -> r.id = id) all
