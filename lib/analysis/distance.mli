(** Path-distance testability metrics: logic depth from the primary
    inputs, logic depth to the primary outputs, flip-flop-to-flip-flop
    segment depth and sequential distance (flip-flop crossings), per
    net.  Depth counts real gate levels (buffers and flip-flop
    transfers are free, matching {!Cml_logic.Timing}); detector
    placement uses these to keep sharing groups depth-balanced so one
    group's sensors flag within a bounded settling window. *)

type metrics = {
  from_inputs : int array;
      (** longest combinational path from any segment source (primary
          input or flip-flop output) *)
  to_outputs : int array;
      (** longest combinational path to any segment sink (primary
          output or flip-flop data input); [-1] = drives nothing *)
  seq_depth : int array;
      (** minimum flip-flop crossings from a primary input;
          {!unreachable} = no primary-input ancestry *)
  comb_depth : int;  (** deepest combinational segment in the circuit *)
  ff_to_ff : int;
      (** deepest combinational segment from a flip-flop output to a
          flip-flop data input; [-1] = no such segment *)
  output_depths : (string * int) list;  (** per output, declaration order *)
}

val unreachable : int
(** Sentinel for "no path"; safe to add without overflow. *)

val compute : Cml_logic.Circuit.t -> metrics

type config = { depth_warn : int  (** segments deeper than this are flagged *) }

val default_config : config
(** [depth_warn = 48]. *)

val check : ?config:config -> Cml_logic.Circuit.t -> Diagnostic.t list
(** DIST001 over-deep input-to-output or flip-flop segment (warning),
    DIST002 depth summary (info). *)
