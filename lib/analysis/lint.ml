exception Preflight_failed of string

let netlist ?erc net = Diagnostic.sort (Erc.check ?config:erc net)

let circuit ?scoap c = Diagnostic.sort (Scoap.check ?config:scoap c)

let fails ~fail_on ds =
  List.exists (fun d -> Diagnostic.severity_ge d.Diagnostic.severity fail_on) ds

let preflight_enabled () =
  match Sys.getenv_opt "CML_DFT_NO_PREFLIGHT" with
  | None | Some "" | Some "0" -> true
  | Some _ -> false

let preflight ~what ds =
  let errors =
    List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Error) ds
  in
  if errors <> [] then
    raise
      (Preflight_failed
         (Printf.sprintf "%s failed pre-flight lint:\n%s" what (Diagnostic.render_text errors)))

let preflight_netlist ~what net =
  if preflight_enabled () then preflight ~what (netlist net)
