exception Preflight_failed of string

let netlist ?erc net = Diagnostic.sort (Erc.check ?config:erc net)

let circuit ?scoap ?cop ?distance c =
  Diagnostic.sort
    (Scoap.check ?config:scoap c
    @ Cop.check ?config:cop c
    @ Distance.check ?config:distance c)

let file path =
  if Filename.check_suffix path ".bench" then
    circuit (Cml_logic.Bench_format.read_file ~path)
  else netlist (Cml_spice.Netlist_io.read_file ~path)

(* Parsing and rule evaluation are independent per file, so files lint
   in parallel; [Pool.parallel_map] keeps slot [i] = [f files.(i)], so
   the report (and its JSON rendering) is byte-identical at any job
   count.  Exceptions surface from the lowest failing index, also
   deterministically. *)
let files ?jobs paths =
  Array.to_list
    (Cml_runtime.Pool.parallel_map ?jobs (fun path -> (path, file path)) (Array.of_list paths))

let fails ~fail_on ds =
  List.exists (fun d -> Diagnostic.severity_ge d.Diagnostic.severity fail_on) ds

let preflight_enabled () =
  match Sys.getenv_opt "CML_DFT_NO_PREFLIGHT" with
  | None | Some "" | Some "0" -> true
  | Some _ -> false

let preflight ~what ds =
  let errors =
    List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Error) ds
  in
  if errors <> [] then
    raise
      (Preflight_failed
         (Printf.sprintf "%s failed pre-flight lint:\n%s" what (Diagnostic.render_text errors)))

let preflight_netlist ~what net =
  if preflight_enabled () then preflight ~what (netlist net)
