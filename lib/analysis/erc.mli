(** Electrical rule checking on {!Cml_spice.Netlist.t}: structural
    checks (floating nodes, DC paths, value sanity, source loops) and
    CML-specific design rules (load matching, tail sources, swing
    budget, vtest routing).  Everything is static — no simulation is
    run — so a check costs microseconds and can gate every campaign. *)

type config = {
  swing_min : float;  (** lower edge of the nominal swing window (V) *)
  swing_max : float;  (** upper edge of the nominal swing window (V) *)
  load_tolerance : float;  (** relative load-resistor mismatch tolerated *)
}

val default_config : config
(** [swing_min = 0.12], [swing_max = 0.45] (the paper's nominal
    250 mV sits mid-window), [load_tolerance = 1e-3]. *)

val cell_of_device : string -> string option
(** The cell-instance prefix of a hierarchical device name:
    ["x3.q1"] is in cell ["x3"], ["ro0.det4.q45"] in ["ro0.det4"],
    a flat name like ["vdd"] in no cell. *)

val check : ?config:config -> Cml_spice.Netlist.t -> Diagnostic.t list
(** Run every ERC and CML rule; the result is unsorted (callers
    usually hand it to {!Diagnostic.sort} or a renderer). *)
