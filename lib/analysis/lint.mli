(** The unified static-analysis pass: run rule families, merge
    reports, and gate expensive simulation runs behind a pre-flight
    check that fails fast with a rule citation instead of a numeric
    mystery deep inside a Newton loop.

    The pre-flight is opt-out: callers such as [Campaign.run] enable
    it by default and expose a [?preflight:false] escape hatch, and
    setting the environment variable [CML_DFT_NO_PREFLIGHT=1]
    disables every pre-flight in the process (useful when
    deliberately simulating rule-breaking netlists). *)

exception Preflight_failed of string
(** Raised by the [preflight_*] functions; the payload is the full
    rendered report (rule ids included). *)

val netlist : ?erc:Erc.config -> Cml_spice.Netlist.t -> Diagnostic.t list
(** All electrical and CML rules, sorted. *)

val circuit :
  ?scoap:Scoap.config ->
  ?cop:Cop.config ->
  ?distance:Distance.config ->
  Cml_logic.Circuit.t ->
  Diagnostic.t list
(** All gate-level testability rules — SCOAP, COP probabilities and
    path-distance metrics — merged and sorted. *)

val file : string -> Diagnostic.t list
(** Lint one file by extension: [.bench] circuits get the gate-level
    rules, anything else parses as a SPICE-flavoured deck and gets the
    electrical + CML rules.
    @raise Cml_logic.Bench_format.Parse_error
    @raise Cml_spice.Netlist_io.Parse_error
    @raise Sys_error on IO failure. *)

val files : ?jobs:int -> string list -> (string * Diagnostic.t list) list
(** {!file} over many paths in parallel ([jobs] resolves as in
    {!Cml_runtime.Pool}).  Results keep the input order and each
    report is sorted, so the output — and any rendering of it — is
    byte-identical at every job count. *)

val fails : fail_on:Diagnostic.severity -> Diagnostic.t list -> bool
(** True when any diagnostic is at least as severe as [fail_on]. *)

val preflight_enabled : unit -> bool
(** False when [CML_DFT_NO_PREFLIGHT] is set to a non-[0] value. *)

val preflight : what:string -> Diagnostic.t list -> unit
(** @raise Preflight_failed when the list contains an error. *)

val preflight_netlist : what:string -> Cml_spice.Netlist.t -> unit
(** ERC pre-flight; a no-op when pre-flights are disabled via the
    environment.  @raise Preflight_failed on any error-level finding. *)
