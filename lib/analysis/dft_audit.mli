(** DFT-coverage audit: given an abstract view of an insertion plan
    (which cells exist, how they are grouped onto shared read-outs,
    and which output polarities each sensor actually monitors),
    report coverage holes before any simulation is run.

    The view is deliberately decoupled from {!Cml_dft.Insertion.plan}
    so this library does not depend on [cml_dft];
    [Cml_dft.Audit.check] builds the view from a real plan and
    netlist. *)

type member = {
  cell : string;  (** instrumented cell instance name *)
  monitors_p : bool;  (** a sensor emitter sits on the true output *)
  monitors_n : bool;  (** ... and on the complement output *)
}

type group = {
  index : int;
  members : member list;
  readout_devices : int;
      (** read-out circuit devices found in the netlist for this
          group; 0 means the plan references a read-out that was
          never built *)
}

type view = {
  groups : group list;
  all_cells : string list;  (** every cell that should be instrumented *)
  max_safe_share : int;  (** the paper's safe sharing limit (section 6.4) *)
}

val check : view -> Diagnostic.t list
(** Uninstrumented cells (error), oversized groups (error), missing
    read-outs (error), single-polarity monitoring (warning). *)
