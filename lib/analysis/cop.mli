(** COP (Controllability/Observability Probability) testability
    metrics: the probability that a net carries a 1 under uniform
    random primary inputs, and the probability that a value change on
    a net propagates to some primary output.

    Unlike SCOAP's additive effort counts ({!Scoap}), COP values are
    probabilities in [0, 1] — directly comparable with random-pattern
    test lengths (a net with P(1) = 0.001 needs ~1000 patterns per
    exercise).  Gate transfer functions assume independent inputs; the
    one place that assumption breaks, reconvergent fanout, is repaired
    by conditioning on each reconvergent stem (Shannon expansion,
    stems found by {!Scoap.reconvergent_stems}).  Flip-flop feedback
    is resolved by a damped fixpoint; the total pass count feeds the
    [analysis.cop_fixpoint_iters] metrics counter. *)

type correction = {
  stem : int;  (** the reconvergent fanout stem *)
  meet : int;  (** the net where its branches meet again *)
  naive : float;  (** P(1) under the independence assumption *)
  corrected : float;  (** P(1) after conditioning on the stem *)
}

type metrics = {
  p1 : float array;  (** per net, probability the net is 1 *)
  obs : float array;  (** per net, change-propagation probability *)
  passes : int;  (** total fixpoint passes (forward + conditional + backward) *)
  corrections : correction list;  (** applied reconvergence corrections *)
}

val compute : Cml_logic.Circuit.t -> metrics
(** Forward probability fixpoint, reconvergence correction, backward
    observability fixpoint.  Publishes the pass count to the
    [analysis.cop_fixpoint_iters] counter. *)

type config = {
  p_skew : float;  (** P(1) outside [p_skew, 1-p_skew] is flagged *)
  obs_floor : float;  (** observability below this is flagged *)
  correction_note : float;
      (** corrections moving P(1) by more than this are reported *)
}

val default_config : config
(** [p_skew = 0.01], [obs_floor = 0.01], [correction_note = 0.05]. *)

val check : ?config:config -> Cml_logic.Circuit.t -> Diagnostic.t list
(** COP001 skewed signal probability (warning), COP002 low
    change-propagation probability (warning), COP003 material
    reconvergence correction (info). *)
