(** The rule catalog: one entry per rule id the analysis pass can
    emit, with its default severity and a one-line description.  The
    catalog is the single source of truth cited by the CLI
    ([cmldft lint --rules]) and DESIGN.md §8. *)

type info = {
  id : string;
  family : string;
      (** ["erc"], ["cml"], ["dft"], ["scoap"], ["cop"], ["dist"] or
          ["place"] *)
  severity : Diagnostic.severity;  (** default severity *)
  title : string;
}

(* Electrical rules on a SPICE netlist. *)

val erc_floating_node : string (* ERC001 *)
val erc_no_dc_path : string (* ERC002 *)
val erc_duplicate_name : string (* ERC003 *)
val erc_nonpositive_resistance : string (* ERC004 *)
val erc_negative_capacitance : string (* ERC005 *)
val erc_vsource_loop : string (* ERC006 *)

(* CML design rules. *)

val cml_mismatched_loads : string (* CML001 *)
val cml_missing_tail : string (* CML002 *)
val cml_swing_window : string (* CML003 *)
val cml_vtest_unrouted : string (* CML004 *)

(* DFT-coverage audit on an insertion plan. *)

val dft_uninstrumented_cell : string (* DFT001 *)
val dft_oversized_group : string (* DFT002 *)
val dft_single_polarity : string (* DFT003 *)
val dft_missing_readout : string (* DFT004 *)

(* SCOAP testability metrics on a gate-level circuit. *)

val scoap_unobservable : string (* SCOAP001 *)
val scoap_hard_observe : string (* SCOAP002 *)
val scoap_hard_control : string (* SCOAP003 *)
val scoap_reconvergent : string (* SCOAP004 *)
val scoap_output_summary : string (* SCOAP005 *)

(* COP probability metrics on a gate-level circuit. *)

val cop_skewed_probability : string (* COP001 *)
val cop_low_observability : string (* COP002 *)
val cop_correlation : string (* COP003 *)

(* Path-distance metrics on a gate-level circuit. *)

val dist_deep_path : string (* DIST001 *)
val dist_summary : string (* DIST002 *)

(* Detector-placement plan checks (emitted by [Cml_dft.Placement]). *)

val place_over_limit : string (* PLACE001 *)
val place_uncovered_weak_net : string (* PLACE002 *)
val place_unbalanced_depth : string (* PLACE003 *)
val place_redundant_detector : string (* PLACE004 *)

val all : info list
(** Every rule, in catalog order. *)

val find : string -> info option
