module D = Diagnostic

type member = { cell : string; monitors_p : bool; monitors_n : bool }

type group = { index : int; members : member list; readout_devices : int }

type view = { groups : group list; all_cells : string list; max_safe_share : int }

let check view =
  let covered = Hashtbl.create 64 in
  List.iter
    (fun g ->
      List.iter
        (fun m -> if m.monitors_p || m.monitors_n then Hashtbl.replace covered m.cell ())
        g.members)
    view.groups;
  let uninstrumented =
    List.filter_map
      (fun cell ->
        if Hashtbl.mem covered cell then None
        else
          Some
            (D.make ~rule:Rules.dft_uninstrumented_cell D.Error (D.Cell cell)
               "cell has no sensor in any read-out group; defects here are invisible to the \
                test-mode screen"))
      view.all_cells
  in
  let per_group g =
    let size = List.length g.members in
    let oversized =
      if size > view.max_safe_share then
        [
          D.make ~rule:Rules.dft_oversized_group D.Error (D.Group g.index)
            "%d cells share one read-out, above the safe sharing limit of %d (the fault-free \
             load drop crosses the comparator threshold)"
            size view.max_safe_share;
        ]
      else []
    in
    let missing_readout =
      if g.readout_devices = 0 then
        [
          D.make ~rule:Rules.dft_missing_readout D.Error (D.Group g.index)
            "no read-out devices (ro%d.*) exist in the netlist for this group" g.index;
        ]
      else []
    in
    let polarity =
      List.filter_map
        (fun m ->
          match (m.monitors_p, m.monitors_n) with
          | true, true | false, false -> None
          | true, false | false, true ->
              Some
                (D.make ~rule:Rules.dft_single_polarity D.Warning (D.Cell m.cell)
                   "output monitored only on the %s polarity; faults asserting the other rail \
                    are missed for static inputs (paper section 6.6)"
                   (if m.monitors_p then "true" else "complement")))
        g.members
    in
    List.concat [ oversized; missing_readout; polarity ]
  in
  uninstrumented @ List.concat_map per_group view.groups
