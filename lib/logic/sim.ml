type state = Value.t array

let initial (c : Circuit.t) v = Array.make (Array.length c.Circuit.dffs) v

let random_state (c : Circuit.t) ~seed =
  let st = Random.State.make [| seed |] in
  Array.init (Array.length c.Circuit.dffs) (fun _ ->
      Value.of_bool (Random.State.bool st))

(* position of each dff gate id in the state vector *)
let dff_slot (c : Circuit.t) =
  let tbl = Hashtbl.create 16 in
  Array.iteri (fun slot gid -> Hashtbl.replace tbl gid slot) c.Circuit.dffs;
  tbl

let eval (c : Circuit.t) state ~inputs =
  let n = Array.length c.Circuit.gates in
  let values = Array.make n Value.X in
  let slots = dff_slot c in
  let input_values = Hashtbl.create 8 in
  List.iteri
    (fun i (name, _) ->
      if i < Array.length inputs then Hashtbl.replace input_values name inputs.(i))
    c.Circuit.inputs;
  Array.iter
    (fun gid ->
      let v =
        match c.Circuit.gates.(gid) with
        | Circuit.Input name -> (
            match Hashtbl.find_opt input_values name with Some v -> v | None -> Value.X)
        | Circuit.And (a, b) -> Value.v_and values.(a) values.(b)
        | Circuit.Or (a, b) -> Value.v_or values.(a) values.(b)
        | Circuit.Xor (a, b) -> Value.v_xor values.(a) values.(b)
        | Circuit.Not a -> Value.v_not values.(a)
        | Circuit.Buf a -> values.(a)
        | Circuit.Mux { sel; a; b } -> Value.v_mux ~sel:values.(sel) ~a:values.(a) ~b:values.(b)
        | Circuit.Dff _ -> state.(Hashtbl.find slots gid)
      in
      values.(gid) <- v)
    c.Circuit.order;
  values

let step c state ~inputs =
  let values = eval c state ~inputs in
  let next =
    Array.map
      (fun gid ->
        match c.Circuit.gates.(gid) with
        | Circuit.Dff { d } -> values.(d)
        | Circuit.Input _ | Circuit.And _ | Circuit.Or _ | Circuit.Xor _ | Circuit.Not _
        | Circuit.Buf _ | Circuit.Mux _ -> assert false)
      c.Circuit.dffs
  in
  (next, values)

let run c state ~patterns =
  let rec go state acc = function
    | [] -> (state, List.rev acc)
    | p :: rest ->
        let state', values = step c state ~inputs:p in
        go state' (values :: acc) rest
  in
  go state [] patterns

let outputs_of (c : Circuit.t) values =
  List.map (fun (name, id) -> (name, values.(id))) c.Circuit.outputs
