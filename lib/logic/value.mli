(** Three-valued logic (0 / 1 / unknown) used by the gate-level
    simulator; the X value makes initialization analysis honest. *)

type t = F | T | X

val v_not : t -> t
val v_and : t -> t -> t
val v_or : t -> t -> t
val v_xor : t -> t -> t

val v_mux : sel:t -> a:t -> b:t -> t
(** [a] when [sel] is true, [b] when false; X-pessimistic otherwise
    (X unless both data agree). *)

val of_bool : bool -> t

val to_bool : t -> bool option
(** [None] for X. *)

val equal : t -> t -> bool
val to_char : t -> char
