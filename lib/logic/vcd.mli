(** VCD (value-change dump) export of logic simulation traces, for
    inspection in standard waveform viewers. *)

val to_string : Circuit.t -> frames:Value.t array list -> string
(** One VCD timestep per simulated cycle; every net is dumped (named
    nets keep their names, internal nets become [n<i>]).  Only
    changes are emitted after the initial dump. *)

val write : path:string -> Circuit.t -> frames:Value.t array list -> unit
