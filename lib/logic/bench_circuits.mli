(** Small sequential benchmark circuits for the section-6.6
    experiments (toggle coverage by random patterns, initialization
    convergence, stuck-at coverage). *)

val counter : bits:int -> Circuit.t
(** Synchronous binary counter with an enable input; outputs the
    count bits. *)

val shift_register : bits:int -> Circuit.t
(** Serial-in shift register. *)

val lfsr_circuit : unit -> Circuit.t
(** 4-bit Galois LFSR with a seed-load input — self-oscillating
    sequential logic. *)

val traffic_fsm : unit -> Circuit.t
(** A 2-bit Moore FSM (traffic-light-style) with a synchronizing
    input; converges from any power-up state once the input pulses
    (the reference-[13] behaviour). *)

val decoded_counter : bits:int -> Circuit.t
(** A counter gated by the AND of three select inputs: a random
    pattern only advances it one cycle in eight, which is where
    toggle-directed generation ({!Directed}) pays off. *)

val multiplier : bits:int -> Circuit.t
(** Combinational array multiplier ([2*bits] product outputs,
    [p0..p(2b-1)]), built from AND/XOR/OR full-adder cells — the
    largest benchmark in the suite (a 4x4 is ~90 gates). *)

val parity_pipeline : stages:int -> Circuit.t
(** A pipelined parity tree: [stages] flip-flop stages each XOR-ing a
    fresh input bit into the running parity. *)

val c432_surrogate : unit -> Circuit.t
(** A c432-class combinational surrogate: 36 inputs, 7 outputs,
    ~150 gates of nand/xor ranks feeding a priority chain, with
    reconvergent fanout throughout — the committed
    [examples/netlists/c432_surrogate.bench] lint fixture.  Every net
    is observable (no error-level SCOAP findings). *)

val all : unit -> (string * Circuit.t) list
(** The benchmark suite with printable names. *)
