(** Initialization-by-random-patterns analysis (the paper's reference
    [13], Soufi et al.): sequential circuits driven by a fixed random
    pattern sequence tend to converge to a deterministic state
    irrespective of the power-up state, which makes toggle-coverage
    measurement well defined without a reset. *)

type result = {
  converged : bool;  (** all trials ended in the same state *)
  convergence_cycle : int option;
      (** first cycle index after which every trial's state history
          agrees, if any *)
  trials : int;
}

val analyse :
  Circuit.t -> patterns:Value.t array list -> trials:int -> seed:int -> result
(** Simulate the same pattern sequence from [trials] random binary
    initial states and compare the state trajectories. *)

val self_initialising :
  Circuit.t -> patterns:Value.t array list -> bool
(** Stronger X-based check: starting from the all-X state, do all
    flip-flops reach binary values by the end of the sequence? *)
