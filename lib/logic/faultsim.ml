type fault = { net : int; stuck : bool }

let all_faults c =
  List.concat_map
    (fun net -> [ { net; stuck = false }; { net; stuck = true } ])
    (List.init (Circuit.num_nets c) Fun.id)

(* Faulty evaluation: like Sim.eval but the faulty net is forced.
   Re-implemented here rather than hooked into Sim to keep the
   fault-free path branch-free. *)
let eval_faulty (c : Circuit.t) state ~inputs fault =
  let n = Array.length c.Circuit.gates in
  let values = Array.make n Value.X in
  let slots = Hashtbl.create 16 in
  Array.iteri (fun slot gid -> Hashtbl.replace slots gid slot) c.Circuit.dffs;
  let input_values = Hashtbl.create 8 in
  List.iteri
    (fun i (name, _) ->
      if i < Array.length inputs then Hashtbl.replace input_values name inputs.(i))
    c.Circuit.inputs;
  Array.iter
    (fun gid ->
      let v =
        match c.Circuit.gates.(gid) with
        | Circuit.Input name -> (
            match Hashtbl.find_opt input_values name with Some v -> v | None -> Value.X)
        | Circuit.And (a, b) -> Value.v_and values.(a) values.(b)
        | Circuit.Or (a, b) -> Value.v_or values.(a) values.(b)
        | Circuit.Xor (a, b) -> Value.v_xor values.(a) values.(b)
        | Circuit.Not a -> Value.v_not values.(a)
        | Circuit.Buf a -> values.(a)
        | Circuit.Mux { sel; a; b } -> Value.v_mux ~sel:values.(sel) ~a:values.(a) ~b:values.(b)
        | Circuit.Dff _ -> state.(Hashtbl.find slots gid)
      in
      values.(gid) <- (if gid = fault.net then Value.of_bool fault.stuck else v))
    c.Circuit.order;
  values

let step_faulty c state ~inputs fault =
  let values = eval_faulty c state ~inputs fault in
  let next =
    Array.map
      (fun gid ->
        match c.Circuit.gates.(gid) with
        | Circuit.Dff { d } -> values.(d)
        | Circuit.Input _ | Circuit.And _ | Circuit.Or _ | Circuit.Xor _ | Circuit.Not _
        | Circuit.Buf _ | Circuit.Mux _ -> assert false)
      c.Circuit.dffs
  in
  (next, values)

let detects c ~initial ~patterns fault =
  let rec go good faulty = function
    | [] -> false
    | p :: rest ->
        let good', gv = Sim.step c good ~inputs:p in
        let faulty', fv = step_faulty c faulty ~inputs:p fault in
        let seen =
          List.exists
            (fun (_, oid) ->
              match (Value.to_bool gv.(oid), Value.to_bool fv.(oid)) with
              | Some a, Some b -> a <> b
              | None, _ | _, None -> false)
            c.Circuit.outputs
        in
        seen || go good' faulty' rest
  in
  go initial initial patterns

let coverage ?jobs c ~initial ~patterns =
  let faults = Array.of_list (all_faults c) in
  (* good/faulty machine pairs are rebuilt per fault; the circuit and
     pattern list are only read, so faults fan out over domains — in
     contiguous slices, since a single fault is far too small a task
     to pay the pool handoff for *)
  let hits =
    Cml_runtime.Pool.parallel_map_batches ?jobs
      (fun slice ->
        (* per-fault labels would cost more than the simulation of a
           fault; report whole slices to the progress lanes instead *)
        let r = Array.map (detects c ~initial ~patterns) slice in
        Cml_telemetry.Progress.note_items (Array.length slice);
        r)
      faults
  in
  let detected = Array.fold_left (fun n hit -> if hit then n + 1 else n) 0 hits in
  let total = Array.length faults in
  (float_of_int detected /. float_of_int (max 1 total), detected, total)
