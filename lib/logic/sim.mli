(** Cycle-based 3-valued simulation of {!Circuit.t}. *)

type state = Value.t array
(** One value per flip-flop, indexed like [Circuit.dffs]. *)

val initial : Circuit.t -> Value.t -> state
(** Uniform initial state (use [Value.X] for a truly unknown
    power-up). *)

val random_state : Circuit.t -> seed:int -> state
(** Random binary initial state. *)

val eval : Circuit.t -> state -> inputs:Value.t array -> Value.t array
(** Values of every net for the given flip-flop state and primary
    inputs (in declaration order of the inputs). *)

val step : Circuit.t -> state -> inputs:Value.t array -> state * Value.t array
(** One clock cycle: evaluate, then capture each flip-flop's data
    input.  Returns the next state and the pre-edge net values. *)

val run : Circuit.t -> state -> patterns:Value.t array list -> state * Value.t array list
(** Apply the pattern sequence, collecting the net values of every
    cycle. *)

val outputs_of : Circuit.t -> Value.t array -> (string * Value.t) list
(** Primary-output values out of a net-value vector. *)
