(* VCD identifiers: printable ASCII 33..126, shortest-first *)
let identifier k =
  let base = 94 in
  let rec go k acc =
    let c = Char.chr (33 + (k mod base)) in
    let acc = String.make 1 c ^ acc in
    if k < base then acc else go ((k / base) - 1) acc
  in
  go k ""

let net_name (c : Circuit.t) i =
  match c.Circuit.gates.(i) with
  | Circuit.Input n -> n
  | Circuit.And _ | Circuit.Or _ | Circuit.Xor _ | Circuit.Not _ | Circuit.Buf _
  | Circuit.Mux _ | Circuit.Dff _ -> (
      (* prefer a primary-output name if one points here *)
      match List.find_opt (fun (_, id) -> id = i) c.Circuit.outputs with
      | Some (n, _) -> n
      | None -> Printf.sprintf "n%d" i)

let value_char = function Value.F -> '0' | Value.T -> '1' | Value.X -> 'x'

let to_string (c : Circuit.t) ~frames =
  let n = Circuit.num_nets c in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$version cml-dft logic simulator $end\n";
  Buffer.add_string buf "$timescale 1 ns $end\n";
  Buffer.add_string buf "$scope module top $end\n";
  for i = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf "$var wire 1 %s %s $end\n" (identifier i) (net_name c i))
  done;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  let last = Array.make n ' ' in
  List.iteri
    (fun t frame ->
      Buffer.add_string buf (Printf.sprintf "#%d\n" t);
      if t = 0 then Buffer.add_string buf "$dumpvars\n";
      Array.iteri
        (fun i v ->
          let ch = value_char v in
          if t = 0 || ch <> last.(i) then begin
            Buffer.add_string buf (Printf.sprintf "%c%s\n" ch (identifier i));
            last.(i) <- ch
          end)
        frame;
      if t = 0 then Buffer.add_string buf "$end\n")
    frames;
  Buffer.add_string buf (Printf.sprintf "#%d\n" (List.length frames));
  Buffer.contents buf

let write ~path c ~frames =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string c ~frames))
