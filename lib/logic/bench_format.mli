(** Reader/writer for the ISCAS89 ".bench" netlist format, so the
    toggle-coverage and fault-simulation experiments can run on
    standard benchmark circuits.

    {v
    # comment
    INPUT(G0)
    OUTPUT(G17)
    G5 = DFF(G10)
    G8 = AND(G14, G6)
    G9 = NAND(G16, G15)
    v}

    Supported gates: AND, NAND, OR, NOR, XOR, XNOR, NOT, BUF/BUFF,
    DFF, MUX (3 inputs: sel, a, b).  Multi-input gates are expanded
    into binary trees.  Signals may be referenced before they are
    defined; only combinational cycles are rejected.  An argument
    list may wrap over several physical lines (the statement runs
    until its parentheses balance); errors then report the line the
    statement started on. *)

exception Parse_error of { line : int; message : string }

val of_string : string -> Circuit.t
(** @raise Parse_error on malformed text, undefined or duplicated
    signals, duplicate output declarations, unknown gate types, wrong
    arities or a combinational cycle; the error names the offending
    line number. *)

val read_file : path:string -> Circuit.t

val to_string : Circuit.t -> string
(** Render a circuit back to .bench text (binary gates only;
    internal nets get generated names). *)

val s27 : unit -> Circuit.t
(** The ISCAS89 s27 benchmark (10 gates, 3 flip-flops), embedded. *)
