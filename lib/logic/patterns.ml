type lfsr = { mutable state : int }

(* taps for a maximal-length 32-bit Galois LFSR: 32, 22, 2, 1 *)
let taps = 0x80200003

let lfsr_create ?(seed = 1) () =
  if seed land 0xFFFFFFFF = 0 then invalid_arg "lfsr seed must be non-zero";
  { state = seed land 0xFFFFFFFF }

let lfsr_next_bit l =
  let out = l.state land 1 = 1 in
  l.state <- l.state lsr 1;
  if out then l.state <- l.state lxor taps land 0xFFFFFFFF;
  out

let lfsr_pattern l ~width = Array.init width (fun _ -> Value.of_bool (lfsr_next_bit l))

let lfsr_patterns l ~width ~count = List.init count (fun _ -> lfsr_pattern l ~width)

let random_patterns ~seed ~width ~count =
  let st = Random.State.make [| seed |] in
  List.init count (fun _ -> Array.init width (fun _ -> Value.of_bool (Random.State.bool st)))

let walking_ones ~width =
  List.init width (fun k -> Array.init width (fun i -> Value.of_bool (i = k)))

let exhaustive ~width =
  if width > 16 then invalid_arg "exhaustive: width too large";
  List.init (1 lsl width) (fun v ->
      Array.init width (fun i -> Value.of_bool ((v lsr i) land 1 = 1)))
