type result = { converged : bool; convergence_cycle : int option; trials : int }

let state_history c ~initial ~patterns =
  let rec go state acc = function
    | [] -> List.rev acc
    | p :: rest ->
        let state', _ = Sim.step c state ~inputs:p in
        go state' (Array.copy state' :: acc) rest
  in
  go initial [] patterns

let analyse c ~patterns ~trials ~seed =
  let histories =
    List.init trials (fun k ->
        state_history c ~initial:(Sim.random_state c ~seed:(seed + k)) ~patterns)
  in
  match histories with
  | [] -> { converged = true; convergence_cycle = Some 0; trials }
  | first :: rest ->
      let ncycles = List.length first in
      let agree_at k =
        let nth h = List.nth h k in
        let reference = nth first in
        List.for_all (fun h -> nth h = reference) rest
      in
      (* find the first cycle from which every later cycle agrees *)
      let rec find k =
        if k >= ncycles then None
        else begin
          let rec all_from j = j >= ncycles || (agree_at j && all_from (j + 1)) in
          if all_from k then Some k else find (k + 1)
        end
      in
      let cycle = find 0 in
      { converged = cycle <> None; convergence_cycle = cycle; trials }

let self_initialising c ~patterns =
  let final, _ = Sim.run c (Sim.initial c Value.X) ~patterns in
  Array.for_all (fun v -> v <> Value.X) final
