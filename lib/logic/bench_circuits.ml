module C = Circuit

let counter ~bits =
  let b = C.create () in
  let enable = C.input b "en" in
  let ffs = Array.init bits (fun _ -> C.dff b) in
  (* carry chain: bit k toggles when enable and all lower bits are 1 *)
  let carry = ref enable in
  Array.iteri
    (fun k ff ->
      let t = C.xor2 b ff !carry in
      C.connect_dff b ~ff ~d:t;
      C.output b (Printf.sprintf "q%d" k) ff;
      carry := C.and2 b !carry ff)
    ffs;
  C.finalize b

let shift_register ~bits =
  let b = C.create () in
  let din = C.input b "din" in
  let ffs = Array.init bits (fun _ -> C.dff b) in
  Array.iteri
    (fun k ff ->
      let d = if k = 0 then din else ffs.(k - 1) in
      C.connect_dff b ~ff ~d;
      C.output b (Printf.sprintf "q%d" k) ff)
    ffs;
  C.finalize b

let lfsr_circuit () =
  let b = C.create () in
  let load = C.input b "load" in
  let seed = C.input b "seed" in
  let ffs = Array.init 4 (fun _ -> C.dff b) in
  (* x^4 + x^3 + 1 taps: feedback = q3 xor q2 *)
  let fb = C.xor2 b ffs.(3) ffs.(2) in
  Array.iteri
    (fun k ff ->
      let shifted = if k = 0 then fb else ffs.(k - 1) in
      let d = C.mux b ~sel:load ~a:(if k = 0 then seed else ffs.(k - 1)) ~b:shifted in
      C.connect_dff b ~ff ~d;
      C.output b (Printf.sprintf "q%d" k) ff)
    ffs;
  C.finalize b

let traffic_fsm () =
  (* states 00 -> 01 -> 10 -> 00 ... with a "sync" input that forces
     the state to 00 — the synchronizing event that makes random
     patterns converge the FSM from any power-up state (the premise
     of reference [13]); the illegal 11 state also falls back to 00 *)
  let b = C.create () in
  let sync = C.input b "sync" in
  let s0 = C.dff b and s1 = C.dff b in
  let n_s1 = C.and2 b s0 (C.not1 b s1) in
  let n_s0 = C.nor2 b s0 s1 in
  let d0 = C.and2 b (C.not1 b sync) n_s0 in
  let d1 = C.and2 b (C.not1 b sync) n_s1 in
  C.connect_dff b ~ff:s0 ~d:d0;
  C.connect_dff b ~ff:s1 ~d:d1;
  C.output b "green" (C.nor2 b s0 s1);
  C.output b "yellow" (C.and2 b s0 (C.not1 b s1));
  C.output b "red" (C.and2 b s1 (C.not1 b s0));
  C.finalize b

let decoded_counter ~bits =
  let b = C.create () in
  let s0 = C.input b "s0" in
  let s1 = C.input b "s1" in
  let s2 = C.input b "s2" in
  let enable = C.and2 b (C.and2 b s0 s1) s2 in
  let ffs = Array.init bits (fun _ -> C.dff b) in
  let carry = ref enable in
  Array.iteri
    (fun k ff ->
      let t = C.xor2 b ff !carry in
      C.connect_dff b ~ff ~d:t;
      C.output b (Printf.sprintf "q%d" k) ff;
      carry := C.and2 b !carry ff)
    ffs;
  C.finalize b

let multiplier ~bits =
  let b = C.create () in
  let a = Array.init bits (fun k -> C.input b (Printf.sprintf "a%d" k)) in
  let bv = Array.init bits (fun k -> C.input b (Printf.sprintf "b%d" k)) in
  (* full adder on nets: (sum, carry) *)
  let full_adder x y cin =
    let axy = C.xor2 b x y in
    let sum = C.xor2 b axy cin in
    let carry = C.or2 b (C.and2 b x y) (C.and2 b axy cin) in
    (sum, carry)
  in
  (* schoolbook accumulation of partial products, column by column *)
  let columns = Array.make (2 * bits) [] in
  for i = 0 to bits - 1 do
    for j = 0 to bits - 1 do
      columns.(i + j) <- C.and2 b a.(i) bv.(j) :: columns.(i + j)
    done
  done;
  for col = 0 to (2 * bits) - 1 do
    (* reduce each column with full adders, pushing carries right *)
    let rec reduce nets =
      match nets with
      | [] | [ _ ] -> nets
      | [ x; y ] ->
          let zero = C.and2 b x (C.not1 b x) in
          let sum, carry = full_adder x y zero in
          if col + 1 < 2 * bits then columns.(col + 1) <- carry :: columns.(col + 1);
          [ sum ]
      | x :: y :: z :: rest ->
          let sum, carry = full_adder x y z in
          if col + 1 < 2 * bits then columns.(col + 1) <- carry :: columns.(col + 1);
          reduce (sum :: rest)
    in
    let rec fixpoint nets =
      match reduce nets with [] | [ _ ] as r -> r | r -> fixpoint r
    in
    columns.(col) <- fixpoint columns.(col)
  done;
  Array.iteri
    (fun col nets ->
      match nets with
      | [ net ] -> C.output b (Printf.sprintf "p%d" col) net
      | [] ->
          (* constant-zero high column (can happen for col = 2b-1) *)
          let zero = C.and2 b a.(0) (C.not1 b a.(0)) in
          C.output b (Printf.sprintf "p%d" col) zero
      | _ -> assert false)
    columns;
  C.finalize b

let parity_pipeline ~stages =
  (* stage 0 captures the input directly; each later stage folds the
     fresh input bit into the running parity *)
  let b = C.create () in
  let din = C.input b "din" in
  let rec build k prev =
    if k = stages then prev
    else begin
      let ff = C.dff b in
      let d = if k = 0 then din else C.xor2 b prev din in
      C.connect_dff b ~ff ~d;
      C.output b (Printf.sprintf "p%d" k) ff;
      build (k + 1) ff
    end
  in
  let last = build 0 din in
  C.output b "parity" last;
  C.finalize b

let c432_surrogate () =
  (* Mirrors c432's shape — 36 inputs, 7 outputs, ~160 gates of
     nand/xor ranks feeding a priority (arbitration) chain — without
     copying its netlist.  Every intermediate rank is fully consumed
     by the next, and the tail signals fold into the parity output,
     so every net is observable and the fixture lints clean at
     [--fail-on error]. *)
  let b = C.create () in
  let inputs = Array.init 36 (fun k -> C.input b (Printf.sprintf "i%d" k)) in
  let r1 = Array.init 18 (fun k -> C.nand2 b inputs.(2 * k) inputs.((2 * k) + 1)) in
  let r2 = Array.init 18 (fun k -> C.xor2 b r1.(k) inputs.(((2 * k) + 5) mod 36)) in
  let r3 = Array.init 9 (fun k -> C.or2 b r2.(2 * k) r2.((2 * k) + 1)) in
  let r4 = Array.init 9 (fun k -> C.and2 b r3.(k) r1.((k + 3) mod 18)) in
  (* priority chain: p.(k) grants request k when no lower request won *)
  let p = Array.make 9 r4.(0) in
  let carry = ref r4.(0) in
  for k = 1 to 8 do
    p.(k) <- C.and2 b r4.(k) (C.not1 b !carry);
    carry := C.or2 b !carry r4.(k)
  done;
  let s = Array.init 18 (fun k -> C.and2 b r2.(k) r2.((k + 7) mod 18)) in
  let t = Array.init 18 (fun k -> C.or2 b s.(k) r3.(k mod 9)) in
  let m = Array.init 9 (fun j -> C.mux b ~sel:p.(j) ~a:t.(j) ~b:t.(j + 9)) in
  for k = 0 to 5 do
    C.output b (Printf.sprintf "po%d" k) p.(k)
  done;
  let parity =
    Array.fold_left (fun acc n -> C.xor2 b acc n) !carry
      (Array.concat [ [| p.(6); p.(7); p.(8) |]; m ])
  in
  C.output b "po6" parity;
  C.finalize b

let all () =
  [
    ("counter4", counter ~bits:4);
    ("shift8", shift_register ~bits:8);
    ("lfsr4", lfsr_circuit ());
    ("traffic", traffic_fsm ());
    ("decoded3", decoded_counter ~bits:3);
    ("mult3", multiplier ~bits:3);
    ("parity5", parity_pipeline ~stages:5);
  ]
