(** Gate-level synchronous circuits: a directed graph of 2-input
    gates, primary inputs and D flip-flops (one implicit clock).
    Combinational cycles are rejected at {!finalize}; sequential
    loops must go through a flip-flop. *)

type gate =
  | Input of string
  | And of int * int
  | Or of int * int
  | Xor of int * int
  | Not of int
  | Buf of int
  | Mux of { sel : int; a : int; b : int }
  | Dff of { d : int }

type t = {
  gates : gate array;
  inputs : (string * int) list;  (** in declaration order *)
  outputs : (string * int) list;
  order : int array;  (** topological evaluation order of non-DFF gates *)
  dffs : int array;  (** gate ids of the flip-flops *)
}

type builder

val create : unit -> builder

val input : builder -> string -> int
(** Declare a primary input; returns its net id. *)

val and2 : builder -> int -> int -> int
val or2 : builder -> int -> int -> int
val xor2 : builder -> int -> int -> int
val not1 : builder -> int -> int
val buf : builder -> int -> int
val mux : builder -> sel:int -> a:int -> b:int -> int

val nand2 : builder -> int -> int -> int
val nor2 : builder -> int -> int -> int
val xnor2 : builder -> int -> int -> int

val dff : builder -> int
(** Declare a flip-flop before its data input exists (for feedback);
    wire it later with {!connect_dff}. *)

val connect_dff : builder -> ff:int -> d:int -> unit
(** @raise Invalid_argument if [ff] is not an unconnected flip-flop. *)

val output : builder -> string -> int -> unit

val finalize : builder -> t
(** @raise Invalid_argument on a combinational cycle or an
    unconnected flip-flop.  The message names the offending nets: the
    full cycle in signal-flow order (["net 4 (buf) -> net 5 (and) ->
    net 4 (buf)"]) or every unconnected flip-flop id. *)

val num_nets : t -> int

val net_names : t -> string array
(** A unique, stable name per net: the declared primary-output name
    when the net has one, the input name for a primary input,
    ["n<id>"] otherwise — the shared contract between [cmldft plan]
    site names and {!Cml_cells.Compile} instance names.  A positional
    ["n<id>"] that an output declaration already claims for a
    different net (round-tripped [.bench] files) is suffixed with
    underscores until unique. *)
