(** Toggle-directed test generation (section 6.6: "getting a path to
    toggle is a question of applying test vectors to sensitize it").
    A greedy generator that, at every cycle, picks the candidate input
    vector toggling the most not-yet-covered nets — typically reaching
    full toggle coverage in far fewer patterns than a blind random
    sequence. *)

val directed_patterns :
  Circuit.t ->
  initial:Sim.state ->
  ?candidates:int ->
  ?budget:int ->
  seed:int ->
  unit ->
  Value.t array list
(** Generate up to [budget] (default 256) patterns, evaluating
    [candidates] (default 16) random input vectors per cycle and
    keeping the best; stops early at full toggle coverage. *)

val patterns_to_full_coverage :
  Circuit.t -> initial:Sim.state -> patterns:Value.t array list -> int option
(** Position (1-based) of the pattern that completes toggle coverage,
    or [None] if the sequence never gets there. *)
