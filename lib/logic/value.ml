type t = F | T | X

let v_not = function F -> T | T -> F | X -> X

let v_and a b =
  match (a, b) with
  | F, _ | _, F -> F
  | T, T -> T
  | X, (T | X) | T, X -> X

let v_or a b =
  match (a, b) with
  | T, _ | _, T -> T
  | F, F -> F
  | X, (F | X) | F, X -> X

let v_xor a b =
  match (a, b) with
  | X, _ | _, X -> X
  | T, T | F, F -> F
  | T, F | F, T -> T

let v_mux ~sel ~a ~b =
  match sel with
  | T -> a
  | F -> b
  | X -> if a = b && a <> X then a else X

let of_bool b = if b then T else F

let to_bool = function T -> Some true | F -> Some false | X -> None

let equal (a : t) b = a = b

let to_char = function F -> '0' | T -> '1' | X -> 'x'
