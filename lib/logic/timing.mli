(** Static timing estimates on gate-level circuits, scaled by the
    analog library's measured CML gate delay: the levelized logic
    depth bounds the clock period (every gate here is one CML cell). *)

val depth : Circuit.t -> int
(** Longest combinational path, in gates (inputs, flip-flop outputs
    and buffers count as zero). *)

val path_depths : Circuit.t -> int array
(** Per-net combinational depth. *)

val critical_path : Circuit.t -> int list
(** Net ids along one longest combinational path, source first. *)

val min_clock_period : Circuit.t -> gate_delay:float -> float
(** [depth * gate_delay] — the datapath-limited clock floor to pair
    with {!Cml_cells}'s measured ~54 ps delay. *)
