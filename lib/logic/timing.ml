let is_zero_cost = function
  | Circuit.Input _ | Circuit.Dff _ | Circuit.Buf _ -> true
  | Circuit.And _ | Circuit.Or _ | Circuit.Xor _ | Circuit.Not _ | Circuit.Mux _ -> false

let fanins = function
  | Circuit.Input _ | Circuit.Dff _ -> []
  | Circuit.And (a, b) | Circuit.Or (a, b) | Circuit.Xor (a, b) -> [ a; b ]
  | Circuit.Not a | Circuit.Buf a -> [ a ]
  | Circuit.Mux { sel; a; b } -> [ sel; a; b ]

let path_depths (c : Circuit.t) =
  let n = Circuit.num_nets c in
  let d = Array.make n 0 in
  Array.iter
    (fun i ->
      let g = c.Circuit.gates.(i) in
      let best = List.fold_left (fun acc f -> max acc d.(f)) 0 (fanins g) in
      d.(i) <- best + if is_zero_cost g then 0 else 1)
    c.Circuit.order;
  d

let depth c = Array.fold_left max 0 (path_depths c)

let critical_path (c : Circuit.t) =
  let d = path_depths c in
  (* deepest net, then walk back through the deepest fanin *)
  let start = ref 0 in
  Array.iteri (fun i v -> if v > d.(!start) then start := i) d;
  let rec back i acc =
    let g = c.Circuit.gates.(i) in
    match fanins g with
    | [] -> i :: acc
    | fs ->
        let best = List.fold_left (fun a f -> if d.(f) > d.(a) then f else a) (List.hd fs) fs in
        back best (i :: acc)
  in
  back !start []

let min_clock_period c ~gate_delay = float_of_int (depth c) *. gate_delay
