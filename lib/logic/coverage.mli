(** Toggle coverage: the metric the paper's test approach drives
    (section 6.6) — an amplitude fault on a single output is only
    asserted when that gate's output toggles, so the pattern set must
    toggle every net. *)

type tracker

val create : Circuit.t -> tracker

val observe : tracker -> Value.t array -> unit
(** Record one cycle's net values. *)

val net_covered : tracker -> int -> bool
(** Has this net been seen at both 0 and 1? *)

val would_add : tracker -> Value.t array -> int
(** How many new (net, polarity) observations this cycle's values
    would contribute — the scoring function of {!Directed}. *)

val coverage : tracker -> float
(** Fraction of nets seen at both values. *)

val curve :
  Circuit.t -> initial:Sim.state -> patterns:Value.t array list -> (int * float) list
(** Toggle coverage after each applied pattern — the coverage growth
    curve. *)

val coverage_after :
  Circuit.t -> initial:Sim.state -> patterns:Value.t array list -> float
