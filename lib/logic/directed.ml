let random_inputs st width = Array.init width (fun _ -> Value.of_bool (Random.State.bool st))

let count_new = Coverage.would_add

let directed_patterns c ~initial ?(candidates = 16) ?(budget = 256) ~seed () =
  let st = Random.State.make [| seed |] in
  let width = List.length c.Circuit.inputs in
  let tracker = Coverage.create c in
  let state = ref initial in
  let out = ref [] in
  let rec step remaining =
    if remaining = 0 || Coverage.coverage tracker >= 1.0 then ()
    else begin
      (* evaluate candidates without committing *)
      let best = ref None in
      for _ = 1 to candidates do
        let inputs = random_inputs st width in
        let values = Sim.eval c !state ~inputs in
        let score = count_new tracker values in
        match !best with
        | Some (s, _, _) when s >= score -> ()
        | Some _ | None -> best := Some (score, inputs, values)
      done;
      match !best with
      | None -> ()
      | Some (_, inputs, _) ->
          let state', values = Sim.step c !state ~inputs in
          Coverage.observe tracker values;
          state := state';
          out := inputs :: !out;
          step (remaining - 1)
    end
  in
  step budget;
  List.rev !out

let patterns_to_full_coverage c ~initial ~patterns =
  let curve = Coverage.curve c ~initial ~patterns in
  let rec find = function
    | [] -> None
    | (k, cov) :: rest -> if cov >= 1.0 then Some k else find rest
  in
  find curve
