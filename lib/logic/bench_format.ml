exception Parse_error of { line : int; message : string }

let fail line fmt = Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

type statement =
  | St_input of string
  | St_output of string
  | St_gate of { name : string; op : string; args : string list }

(* "NAME = OP(a, b, ...)" | "INPUT(x)" | "OUTPUT(y)" *)
let parse_line line s =
  let s = match String.index_opt s '#' with Some i -> String.sub s 0 i | None -> s in
  let s = String.trim s in
  if s = "" then None
  else begin
    let call text =
      match String.index_opt text '(' with
      | None -> fail line "expected OP(...) in %S" text
      | Some i ->
          if String.length text = 0 || text.[String.length text - 1] <> ')' then
            fail line "missing ')' in %S" text;
          let op = String.trim (String.sub text 0 i) in
          let inside = String.sub text (i + 1) (String.length text - i - 2) in
          let args =
            List.filter
              (fun a -> a <> "")
              (List.map String.trim (String.split_on_char ',' inside))
          in
          (String.uppercase_ascii op, args)
    in
    match String.index_opt s '=' with
    | Some i ->
        let name = String.trim (String.sub s 0 i) in
        let op, args = call (String.trim (String.sub s (i + 1) (String.length s - i - 1))) in
        if name = "" then fail line "missing signal name";
        Some (St_gate { name; op; args })
    | None -> (
        match call s with
        | "INPUT", [ name ] -> Some (St_input name)
        | "OUTPUT", [ name ] -> Some (St_output name)
        | op, _ -> fail line "expected INPUT/OUTPUT/assignment, got %S" op)
  end

(* ISCAS .bench files in the wild wrap long argument lists over
   several physical lines: a logical statement continues while its
   parentheses stay unbalanced (comments stripped first), and errors
   report the line it started on.  A statement still unbalanced at
   EOF fails with the missing ')'. *)
let logical_lines text =
  let strip s = match String.index_opt s '#' with Some i -> String.sub s 0 i | None -> s in
  let depth s =
    String.fold_left
      (fun d c -> if c = '(' then d + 1 else if c = ')' then d - 1 else d)
      0 s
  in
  let rec go acc pending = function
    | [] -> (
        match pending with
        | None -> List.rev acc
        | Some (ln, buf, _) -> fail ln "missing ')' in %S" (String.trim buf))
    | (ln, s) :: rest -> (
        match pending with
        | None ->
            let d = depth s in
            if d > 0 then go acc (Some (ln, s, d)) rest else go ((ln, s) :: acc) None rest
        | Some (ln0, buf, d0) ->
            let d = d0 + depth s in
            let buf = buf ^ " " ^ s in
            if d > 0 then go acc (Some (ln0, buf, d)) rest else go ((ln0, buf) :: acc) None rest)
  in
  go [] None (List.mapi (fun i s -> (i + 1, strip s)) (String.split_on_char '\n' text))

let of_string text =
  let statements =
    List.filter_map
      (fun (line, s) -> Option.map (fun st -> (line, st)) (parse_line line s))
      (logical_lines text)
  in
  let b = Circuit.create () in
  let ids = Hashtbl.create 64 in
  let defs = Hashtbl.create 64 in
  List.iter
    (fun (line, st) ->
      match st with
      | St_input name ->
          if Hashtbl.mem ids name then fail line "duplicate signal %S" name;
          Hashtbl.replace ids name (Circuit.input b name)
      | St_gate { name; op; args } ->
          if Hashtbl.mem defs name then fail line "duplicate definition of %S" name;
          Hashtbl.replace defs name (line, op, args)
      | St_output _ -> ())
    statements;
  (* flip-flops first, as placeholders, so feedback resolves *)
  Hashtbl.iter
    (fun name (_, op, _) ->
      if op = "DFF" && not (Hashtbl.mem ids name) then Hashtbl.replace ids name (Circuit.dff b))
    defs;
  let visiting = Hashtbl.create 16 in
  let rec resolve line name =
    match Hashtbl.find_opt ids name with
    | Some id -> id
    | None -> (
        match Hashtbl.find_opt defs name with
        | None -> fail line "undefined signal %S" name
        | Some (def_line, op, args) ->
            if Hashtbl.mem visiting name then fail def_line "combinational cycle through %S" name;
            Hashtbl.replace visiting name ();
            let id = emit def_line op args in
            Hashtbl.remove visiting name;
            Hashtbl.replace ids name id;
            id)
  and emit line op args =
    let arg_ids () = List.map (resolve line) args in
    let reduce2 f = function
      | [] -> fail line "%s needs arguments" op
      | [ _ ] -> fail line "%s needs at least 2 arguments" op
      | x :: rest -> List.fold_left f x rest
    in
    match (op, args) with
    | "AND", _ -> reduce2 (Circuit.and2 b) (arg_ids ())
    | "NAND", _ -> Circuit.not1 b (reduce2 (Circuit.and2 b) (arg_ids ()))
    | "OR", _ -> reduce2 (Circuit.or2 b) (arg_ids ())
    | "NOR", _ -> Circuit.not1 b (reduce2 (Circuit.or2 b) (arg_ids ()))
    | "XOR", _ -> reduce2 (Circuit.xor2 b) (arg_ids ())
    | "XNOR", _ -> Circuit.not1 b (reduce2 (Circuit.xor2 b) (arg_ids ()))
    | ("NOT" | "INV"), [ a ] -> Circuit.not1 b (resolve line a)
    | ("BUF" | "BUFF"), [ a ] -> Circuit.buf b (resolve line a)
    | "MUX", [ sel; x; y ] ->
        Circuit.mux b ~sel:(resolve line sel) ~a:(resolve line x) ~b:(resolve line y)
    | "DFF", [ _ ] -> fail line "internal: DFF resolved out of order"
    | ("NOT" | "INV" | "BUF" | "BUFF" | "MUX" | "DFF"), _ ->
        fail line "wrong arity for %s" op
    | other, _ -> fail line "unknown gate type %S" other
  in
  (* force every definition to be built *)
  Hashtbl.iter (fun name (line, _, _) -> ignore (resolve line name)) defs;
  (* connect the flip-flops *)
  Hashtbl.iter
    (fun name (line, op, args) ->
      if op = "DFF" then begin
        match args with
        | [ d ] -> Circuit.connect_dff b ~ff:(Hashtbl.find ids name) ~d:(resolve line d)
        | _ -> fail line "DFF takes exactly one input"
      end)
    defs;
  let declared_outputs = Hashtbl.create 16 in
  List.iter
    (fun (line, st) ->
      match st with
      | St_output name ->
          (match Hashtbl.find_opt declared_outputs name with
          | Some first -> fail line "duplicate output declaration %S (first on line %d)" name first
          | None -> Hashtbl.replace declared_outputs name line);
          Circuit.output b name (resolve line name)
      | St_input _ | St_gate _ -> ())
    statements;
  Circuit.finalize b

let read_file ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let to_string (c : Circuit.t) =
  let buf = Buffer.create 1024 in
  let name i =
    match c.Circuit.gates.(i) with
    | Circuit.Input n -> n
    | Circuit.And _ | Circuit.Or _ | Circuit.Xor _ | Circuit.Not _ | Circuit.Buf _
    | Circuit.Mux _ | Circuit.Dff _ -> Printf.sprintf "n%d" i
  in
  List.iter (fun (n, _) -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" n)) c.Circuit.inputs;
  List.iter
    (fun (n, id) -> Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" (if n = name id then n else name id)))
    c.Circuit.outputs;
  Array.iteri
    (fun i g ->
      let line =
        match g with
        | Circuit.Input _ -> None
        | Circuit.And (a, b) -> Some (Printf.sprintf "%s = AND(%s, %s)" (name i) (name a) (name b))
        | Circuit.Or (a, b) -> Some (Printf.sprintf "%s = OR(%s, %s)" (name i) (name a) (name b))
        | Circuit.Xor (a, b) -> Some (Printf.sprintf "%s = XOR(%s, %s)" (name i) (name a) (name b))
        | Circuit.Not a -> Some (Printf.sprintf "%s = NOT(%s)" (name i) (name a))
        | Circuit.Buf a -> Some (Printf.sprintf "%s = BUF(%s)" (name i) (name a))
        | Circuit.Mux { sel; a; b } ->
            Some (Printf.sprintf "%s = MUX(%s, %s, %s)" (name i) (name sel) (name a) (name b))
        | Circuit.Dff { d } -> Some (Printf.sprintf "%s = DFF(%s)" (name i) (name d))
      in
      match line with Some l -> Buffer.add_string buf (l ^ "\n") | None -> ())
    c.Circuit.gates;
  Buffer.contents buf

let s27_text =
  {|# ISCAS89 benchmark s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
|}

let s27 () = of_string s27_text
