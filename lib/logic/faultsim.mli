(** Serial stuck-at fault simulation — the classical baseline the
    paper argues is insufficient for CML defects. *)

type fault = { net : int; stuck : bool }

val all_faults : Circuit.t -> fault list
(** Stuck-at-0 and stuck-at-1 on every net. *)

val detects :
  Circuit.t -> initial:Sim.state -> patterns:Value.t array list -> fault -> bool
(** Does the pattern set produce a binary difference at a primary
    output between the good and faulty machines?  Both machines start
    from [initial]; an X in either response never counts as a
    detection. *)

val coverage :
  ?jobs:int ->
  Circuit.t ->
  initial:Sim.state ->
  patterns:Value.t array list ->
  float * int * int
(** [(fraction, detected, total)] over {!all_faults}, simulating
    faults in parallel over [jobs] domains (default
    {!Cml_runtime.Pool.default_jobs}; the result does not depend on
    [jobs]). *)
