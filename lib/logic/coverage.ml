type tracker = { seen0 : bool array; seen1 : bool array }

let create c =
  let n = Circuit.num_nets c in
  { seen0 = Array.make n false; seen1 = Array.make n false }

let observe t values =
  Array.iteri
    (fun i v ->
      match (v : Value.t) with
      | Value.F -> t.seen0.(i) <- true
      | Value.T -> t.seen1.(i) <- true
      | Value.X -> ())
    values

let net_covered t i = t.seen0.(i) && t.seen1.(i)

let would_add t values =
  let fresh = ref 0 in
  Array.iteri
    (fun i v ->
      match (v : Value.t) with
      | Value.F -> if not t.seen0.(i) then incr fresh
      | Value.T -> if not t.seen1.(i) then incr fresh
      | Value.X -> ())
    values;
  !fresh

let coverage t =
  let n = Array.length t.seen0 in
  if n = 0 then 1.0
  else begin
    let covered = ref 0 in
    for i = 0 to n - 1 do
      if net_covered t i then incr covered
    done;
    float_of_int !covered /. float_of_int n
  end

let curve c ~initial ~patterns =
  let t = create c in
  let state = ref initial in
  List.mapi
    (fun k p ->
      let state', values = Sim.step c !state ~inputs:p in
      state := state';
      observe t values;
      (k + 1, coverage t))
    patterns

let coverage_after c ~initial ~patterns =
  match List.rev (curve c ~initial ~patterns) with
  | (_, cov) :: _ -> cov
  | [] -> 0.0
