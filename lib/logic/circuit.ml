type gate =
  | Input of string
  | And of int * int
  | Or of int * int
  | Xor of int * int
  | Not of int
  | Buf of int
  | Mux of { sel : int; a : int; b : int }
  | Dff of { d : int }

type t = {
  gates : gate array;
  inputs : (string * int) list;
  outputs : (string * int) list;
  order : int array;
  dffs : int array;
}

type builder = {
  mutable rev_gates : gate list;
  mutable count : int;
  mutable rev_inputs : (string * int) list;
  mutable rev_outputs : (string * int) list;
}

let create () = { rev_gates = []; count = 0; rev_inputs = []; rev_outputs = [] }

let push b g =
  let id = b.count in
  b.rev_gates <- g :: b.rev_gates;
  b.count <- id + 1;
  id

let input b name =
  let id = push b (Input name) in
  b.rev_inputs <- (name, id) :: b.rev_inputs;
  id

let and2 b x y = push b (And (x, y))

let or2 b x y = push b (Or (x, y))

let xor2 b x y = push b (Xor (x, y))

let not1 b x = push b (Not x)

let buf b x = push b (Buf x)

let mux b ~sel ~a ~b:bb = push b (Mux { sel; a; b = bb })

let nand2 b x y = not1 b (and2 b x y)

let nor2 b x y = not1 b (or2 b x y)

let xnor2 b x y = not1 b (xor2 b x y)

let dff b = push b (Dff { d = -1 })

let connect_dff b ~ff ~d =
  let gates = Array.of_list (List.rev b.rev_gates) in
  (match gates.(ff) with
  | Dff { d = -1 } -> ()
  | Dff _ -> invalid_arg "connect_dff: already connected"
  | Input _ | And _ | Or _ | Xor _ | Not _ | Buf _ | Mux _ ->
      invalid_arg "connect_dff: not a flip-flop");
  gates.(ff) <- Dff { d };
  b.rev_gates <- List.rev (Array.to_list gates)

let output b name id = b.rev_outputs <- (name, id) :: b.rev_outputs

let fanins = function
  | Input _ -> []
  | And (a, b) | Or (a, b) | Xor (a, b) -> [ a; b ]
  | Not a | Buf a -> [ a ]
  | Mux { sel; a; b } -> [ sel; a; b ]
  | Dff _ -> []
(* DFF outputs act as sources in the combinational graph; their data
   input is read only at the clock edge. *)

let gate_kind = function
  | Input name -> Printf.sprintf "input %s" name
  | And _ -> "and"
  | Or _ -> "or"
  | Xor _ -> "xor"
  | Not _ -> "not"
  | Buf _ -> "buf"
  | Mux _ -> "mux"
  | Dff _ -> "dff"

let finalize b =
  let gates = Array.of_list (List.rev b.rev_gates) in
  let n = Array.length gates in
  let describe i = Printf.sprintf "net %d (%s)" i (gate_kind gates.(i)) in
  let unconnected =
    List.filter_map
      (fun (i, g) -> match g with Dff { d } when d < 0 -> Some i | _ -> None)
      (Array.to_list (Array.mapi (fun i g -> (i, g)) gates))
  in
  if unconnected <> [] then
    invalid_arg
      (Printf.sprintf "finalize: unconnected flip-flop(s) at %s (wire them with connect_dff)"
         (String.concat ", " (List.map (fun i -> Printf.sprintf "net %d" i) unconnected)));
  Array.iteri
    (fun i g ->
      List.iter
        (fun f ->
          if f < 0 || f >= n then
            invalid_arg
              (Printf.sprintf "finalize: %s has dangling fanin %d (valid nets are 0..%d)"
                 (describe i) f (n - 1)))
        (fanins g))
    gates;
  (* topological sort of the combinational part (DFS); [path] is the
     active DFS stack (most recent first) so a back edge can report
     the whole offending cycle *)
  let mark = Array.make n 0 in
  let order = ref [] in
  let rec visit path i =
    match mark.(i) with
    | 2 -> ()
    | 1 ->
        (* back edge: the cycle is the DFS stack from its top down to
           the first occurrence of [i]; prefixing [i] lists it in
           signal-flow order (each net drives the next) *)
        let rec upto = function
          | [] -> []
          | j :: rest -> if j = i then [ j ] else j :: upto rest
        in
        let cycle = i :: upto path in
        invalid_arg
          (Printf.sprintf "finalize: combinational cycle: %s (break it with a flip-flop)"
             (String.concat " -> " (List.map describe cycle)))
    | _ ->
        mark.(i) <- 1;
        List.iter (visit (i :: path)) (fanins gates.(i));
        mark.(i) <- 2;
        order := i :: !order
  in
  for i = 0 to n - 1 do
    visit [] i
  done;
  let dffs = ref [] in
  Array.iteri (fun i g -> match g with Dff _ -> dffs := i :: !dffs | _ -> ()) gates;
  {
    gates;
    inputs = List.rev b.rev_inputs;
    outputs = List.rev b.rev_outputs;
    order = Array.of_list (List.rev !order);
    dffs = Array.of_list (List.rev !dffs);
  }

let num_nets t = Array.length t.gates

(* Stable net names shared by the DFT planner and the CML compiler: a
   declared primary-output name when the net has one, the input name
   for a primary input, ["n<id>"] otherwise.  Positional names that an
   output declaration already claims for a *different* net (common in
   round-tripped .bench files, whose output names are themselves
   "n<id>" under the writer's numbering) are disambiguated with
   underscores so every net name is unique. *)
let net_names t =
  let n = Array.length t.gates in
  let names = Array.make n "" in
  let used = Hashtbl.create (2 * n) in
  let claim i name =
    if names.(i) = "" && not (Hashtbl.mem used name) then begin
      names.(i) <- name;
      Hashtbl.replace used name ()
    end
  in
  List.iter (fun (name, id) -> claim id name) t.outputs;
  Array.iteri (fun i g -> match g with Input name -> claim i name | _ -> ()) t.gates;
  Array.iteri
    (fun i _ ->
      if names.(i) = "" then begin
        let rec fresh s = if Hashtbl.mem used s then fresh (s ^ "_") else s in
        let name = fresh (Printf.sprintf "n%d" i) in
        names.(i) <- name;
        Hashtbl.replace used name ()
      end)
    names;
  names
