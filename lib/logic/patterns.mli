(** Test pattern generation for the paper's section 6.6: random
    patterns give good toggle coverage on sequential circuits.  The
    LFSR mirrors what an on-chip BIST generator would produce. *)

type lfsr

val lfsr_create : ?seed:int -> unit -> lfsr
(** 32-bit Galois LFSR (maximal-length taps); [seed] must be
    non-zero, default 0x1. *)

val lfsr_next_bit : lfsr -> bool

val lfsr_pattern : lfsr -> width:int -> Value.t array
(** The next [width] bits as a binary input pattern. *)

val lfsr_patterns : lfsr -> width:int -> count:int -> Value.t array list

val random_patterns : seed:int -> width:int -> count:int -> Value.t array list
(** PRNG-based patterns, for comparison against the LFSR. *)

val walking_ones : width:int -> Value.t array list
(** Deterministic baseline: a walking-1 sequence. *)

val exhaustive : width:int -> Value.t array list
(** All [2^width] binary patterns ([width] at most 16). *)
