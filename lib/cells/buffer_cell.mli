(** The basic CML data buffer of the paper's Figure 1: a differential
    pair (Q1, Q2) over a current-source transistor (Q3) with two
    collector load resistors.

    Instance [x] creates devices [x.q1] (input-true side, collector =
    complement output), [x.q2], [x.q3] (tail source — the pipe-defect
    site of the paper), loads [x.r1]/[x.r2] and wiring capacitances
    [x.cn]/[x.cp]; internal nodes [x.op], [x.on], [x.ce]. *)

val add : Builder.t -> name:string -> input:Builder.diff -> Builder.diff
(** Non-inverting buffer: output follows the input polarity. *)

val inverter : Builder.t -> name:string -> input:Builder.diff -> Builder.diff
(** Built from the same cell with the output pair swapped (free in
    CML). *)

val output_nodes : Builder.t -> name:string -> Builder.diff
(** The output diff of an instance created earlier. *)

val common_emitter_node : Builder.t -> name:string -> Cml_spice.Netlist.node
