(** Compiler from gate-level [.bench] circuits ({!Cml_logic.Circuit})
    to transistor-level CML netlists.

    Every non-input net becomes a cell instance named after the net
    ({!Cml_logic.Circuit.net_names}: the declared output name when the
    net is a primary output, ["n<id>"] otherwise) — matching the site
    names [cmldft plan] derives from the same circuit, so a plan realizes
    directly on the compiled design ({!Cml_dft.Insertion.instrument_groups}).

    Gate mapping: AND/OR/XOR/MUX onto the series-gated {!Gates}
    library (OR by De Morgan on the free complements), BUF onto
    {!Buffer_cell}, NOT onto a free rail swap (registered as an alias
    cell, no devices), DFF onto the master-slave {!Latch.dff} driven
    by one global [clk] square input (the plain net name aliases the
    slave output).  Cells driving more than two loads are built with
    proportionally larger tail currents into proportionally smaller
    load resistors ({!drive_of_fanout}), preserving the swing. *)

type stimulus =
  | Toggle  (** complementary square wave at the compile frequency *)
  | Const of bool  (** static differential level *)

type t = {
  circuit : Cml_logic.Circuit.t;
  builder : Builder.t;
  nets : Builder.diff array;  (** per circuit net, its differential pair *)
  names : string array;  (** per circuit net, its instance name *)
  input : Builder.diff;  (** the toggling stimulus pair (or the first input) *)
  input_name : string;
  outputs : (string * Builder.diff) list;  (** declared outputs, in order *)
  freq : float;
}

val compile :
  ?proc:Process.t ->
  ?freq:float ->
  ?stimuli:(string * stimulus) list ->
  Cml_logic.Circuit.t ->
  t
(** Build the CML netlist.  [stimuli] assigns waveforms by primary
    input name (unlisted inputs default to [Const false]); the
    default drive toggles the first input and holds input [k] at
    [k land 1].
    @raise Invalid_argument if the circuit has no inputs. *)

val netlist : t -> Cml_spice.Netlist.t

val find_cell : t -> string -> Builder.diff option
(** Output pair of the named instance (logic-true polarity). *)

val physical : t -> string -> bool
(** Whether the named instance owns transistors of its own — false
    for inputs and free NOT aliases, whose defect-site enumeration
    would be empty. *)

val default_dut : t -> string
(** First gate in topological order that owns devices — the default
    defect-injection target. *)

val default_output : t -> string
(** Last declared primary output (the deepest measurement point by
    [.bench] convention). *)

val stats : t -> int * int
(** [(physical cells, netlist devices)] of the compiled design. *)
