let full_adder bld ~name ~a ~b ~cin =
  let axb = Gates.xor2 bld ~name:(name ^ ".axb") ~a ~b in
  let sum = Gates.xor2 bld ~name:(name ^ ".sum") ~a:axb ~b:cin in
  let g = Gates.and2 bld ~name:(name ^ ".g") ~a ~b in
  let p = Gates.and2 bld ~name:(name ^ ".p") ~a:axb ~b:cin in
  let cout = Gates.or2 bld ~name:(name ^ ".cout") ~a:g ~b:p in
  (sum, cout)

let ripple_carry bld ~name ~a ~b ~cin =
  let n = Array.length a in
  if n = 0 || Array.length b <> n then invalid_arg "ripple_carry: bad operand widths";
  let sums = Array.make n cin in
  let carry = ref cin in
  for k = 0 to n - 1 do
    let s, c =
      full_adder bld ~name:(Printf.sprintf "%s.fa%d" name k) ~a:a.(k) ~b:b.(k) ~cin:!carry
    in
    sums.(k) <- s;
    carry := c
  done;
  (sums, !carry)
