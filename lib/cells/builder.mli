(** Shared context for building CML circuits: the netlist, the
    process, the supply rails and the current-source bias line that
    every gate's tail transistor connects to.

    Naming convention: a cell instance called [x3] names its devices
    [x3.q1], [x3.r1], ... and its internal nodes [x3.op], [x3.ce], ...
    The defect injector addresses fault sites through these names. *)

type diff = { p : Cml_spice.Netlist.node; n : Cml_spice.Netlist.node }
(** A differential CML signal (true and complement rails). *)

val swap : diff -> diff
(** Logical inversion: in CML, complementing a signal is free. *)

type t = {
  net : Cml_spice.Netlist.t;
  proc : Process.t;
  vgnd : Cml_spice.Netlist.node;  (** positive rail node *)
  vbias : Cml_spice.Netlist.node;  (** current-source base bias line *)
  mutable cells : (string * diff) list;
      (** every cell instance built so far, newest first — the
          monitor points a DFT-insertion pass instruments *)
}

val create : ?proc:Process.t -> unit -> t
(** Fresh netlist with the supply and bias sources installed
    (device names ["vdd"] and ["vbias"]; [vee] is the ground node). *)

val node : t -> string -> Cml_spice.Netlist.node
val fresh_diff : t -> string -> diff
(** The pair of nodes [<name>.p] / [<name>.n]. *)

val register_cell : t -> name:string -> outputs:diff -> unit
(** Record a cell instance's output pair; called by every cell
    constructor ({!Buffer_cell}, {!Gates}, {!Latch}). *)

val cells : t -> (string * diff) list
(** Registered cells in construction order. *)

val tail_source : t -> name:string -> Cml_spice.Netlist.node -> unit
(** Add a grounded-emitter current-source transistor ([<name>]) whose
    collector sinks [i_tail] from the given node — the paper's Q3. *)

val load_resistor : t -> name:string -> Cml_spice.Netlist.node -> unit
(** Collector load resistor from the rail to the node. *)

val wire_cap : t -> name:string -> Cml_spice.Netlist.node -> unit
(** The process's parasitic wiring capacitance at an output node. *)

val diff_square_input :
  t -> name:string -> freq:float -> ?delay:float -> unit -> diff
(** Complementary square-wave sources swinging between the CML low
    and high levels (drives a chain input like the paper's va/vab).
    Device names [<name>.vp] / [<name>.vn]. *)

val diff_dc_input : t -> name:string -> value:bool -> diff
(** Static differential level (true = p rail high). *)

val emitter_follower : t -> name:string -> input:Cml_spice.Netlist.node -> Cml_spice.Netlist.node
(** Level shifter: one-VBE-down copy of the input, with its own
    current-source pull-down — required before driving the lower
    differential pairs of stacked gates (paper section 2). *)

val level_shift_diff : t -> name:string -> input:diff -> diff
(** Emitter-follower pair for a differential signal. *)
