type t = { builder : Builder.t; input : Builder.diff; stages : Builder.diff array }

let stage_name i = Printf.sprintf "x%d" i

let dut_stage = 3

let build_from builder ~stages ~input =
  let outs = Array.make stages input in
  let rec extend i prev =
    if i > stages then ()
    else begin
      let out = Buffer_cell.add builder ~name:(stage_name i) ~input:prev in
      outs.(i - 1) <- out;
      extend (i + 1) out
    end
  in
  extend 1 input;
  { builder; input; stages = outs }

let build ?proc ?(stages = 8) ~freq () =
  let builder = Builder.create ?proc () in
  let input = Builder.diff_square_input builder ~name:"vin" ~freq () in
  build_from builder ~stages ~input

let build_dc ?proc ?(stages = 8) ~value () =
  let builder = Builder.create ?proc () in
  let input = Builder.diff_dc_input builder ~name:"vin" ~value in
  build_from builder ~stages ~input

let output t i =
  if i < 1 || i > Array.length t.stages then invalid_arg "Chain.output: bad stage index";
  t.stages.(i - 1)
