module N = Cml_spice.Netlist
module W = Cml_spice.Waveform

let dc_transfer ?(proc = Process.default) ?span ?(points = 81) ?prepare ~build () =
  let span =
    match span with Some s -> s | None -> 1.25 *. proc.Process.swing
  in
  let mid = proc.Process.vgnd -. (proc.Process.swing /. 2.0) in
  let b = Builder.create ~proc () in
  let input = Builder.fresh_diff b "tin" in
  (* vp is swept; vn mirrors it around the midpoint through a VCVS:
     V(n) - V(mid) = V(mid) - V(p) *)
  let midnode = Builder.node b "tmid" in
  N.vsource b.Builder.net ~name:"tmid.src" ~pos:midnode ~neg:N.gnd (W.Dc mid);
  N.vsource b.Builder.net ~name:"tin.vp" ~pos:input.Builder.p ~neg:N.gnd (W.Dc mid);
  N.vcvs b.Builder.net ~name:"tin.mirror" ~pos:input.Builder.n ~neg:midnode ~cpos:midnode
    ~cneg:input.Builder.p 1.0;
  let out = build b input in
  let net = match prepare with Some f -> f b | None -> b.Builder.net in
  let values =
    Array.init points (fun k ->
        mid -. (span /. 2.0) +. (span *. float_of_int k /. float_of_int (points - 1)))
  in
  let sols = Cml_spice.Sweep.vsource_sweep net ~source:"tin.vp" ~values in
  Array.to_list
    (Array.mapi
       (fun k x ->
         let vout =
           Cml_spice.Engine.voltage x out.Builder.p -. Cml_spice.Engine.voltage x out.Builder.n
         in
         (2.0 *. (values.(k) -. mid), vout))
       sols)

type margins = {
  gain : float;
  v_il : float;
  v_ih : float;
  v_ol : float;
  v_oh : float;
  nm_low : float;
  nm_high : float;
}

let margins curve =
  let pts = Array.of_list curve in
  let n = Array.length pts in
  if n < 5 then invalid_arg "Transfer.margins: too few points";
  let slope k =
    let x0, y0 = pts.(k) and x1, y1 = pts.(k + 1) in
    (y1 -. y0) /. (x1 -. x0)
  in
  (* differential gain at the balance point (input closest to 0) *)
  let center = ref 0 in
  Array.iteri (fun k (x, _) -> if Float.abs x < Float.abs (fst pts.(!center)) then center := k) pts;
  let gain = slope (min !center (n - 2)) in
  (* unity-gain points: |slope| falls below 1 moving outward *)
  let rec outward k step =
    if k <= 0 || k >= n - 2 then k
    else if Float.abs (slope k) < 1.0 then k
    else outward (k + step) step
  in
  let k_il = outward !center (-1) in
  let k_ih = outward !center 1 in
  let v_il, v_ol_at = pts.(k_il) in
  let v_ih, v_oh_at = pts.(k_ih) in
  (* output levels: the saturated extremes of the curve *)
  let v_oh = Array.fold_left (fun acc (_, y) -> Float.max acc y) (snd pts.(0)) pts in
  let v_ol = Array.fold_left (fun acc (_, y) -> Float.min acc y) (snd pts.(0)) pts in
  ignore v_ol_at;
  ignore v_oh_at;
  (* differential noise margins: the output levels become the next
     stage's input levels, so NM is how far they sit beyond the
     unity-gain input points *)
  {
    gain;
    v_il;
    v_ih;
    v_ol;
    v_oh;
    nm_low = Float.abs v_ol -. Float.abs v_il;
    nm_high = v_oh -. v_ih;
  }
