module N = Cml_spice.Netlist
module W = Cml_spice.Waveform

type diff = { p : N.node; n : N.node }

let swap d = { p = d.n; n = d.p }

type t = {
  net : N.t;
  proc : Process.t;
  vgnd : N.node;
  vbias : N.node;
  mutable cells : (string * diff) list;
}

let create ?(proc = Process.default) () =
  let net = N.create () in
  let vgnd = N.node net "vgnd" in
  let vbias = N.node net "vbias" in
  N.vsource net ~name:"vdd" ~pos:vgnd ~neg:N.gnd (W.Dc proc.Process.vgnd);
  N.vsource net ~name:"vbias" ~pos:vbias ~neg:N.gnd (W.Dc (Process.v_bias proc));
  { net; proc; vgnd; vbias; cells = [] }

let register_cell t ~name ~outputs = t.cells <- (name, outputs) :: t.cells

let cells t = List.rev t.cells

let node t name = N.node t.net name

let fresh_diff t name = { p = N.node t.net (name ^ ".p"); n = N.node t.net (name ^ ".n") }

let tail_source t ~name nd =
  N.bjt t.net ~name ~model:t.proc.Process.bjt ~c:nd ~b:t.vbias ~e:N.gnd ()

let load_resistor t ~name nd = N.resistor t.net ~name t.vgnd nd t.proc.Process.r_load

let wire_cap t ~name nd =
  if t.proc.Process.c_wire > 0.0 then N.capacitor t.net ~name nd N.gnd t.proc.Process.c_wire

let diff_square_input t ~name ~freq ?(delay = 0.0) () =
  let proc = t.proc in
  let hi = proc.Process.vgnd and lo = Process.v_low proc in
  let edge = proc.Process.edge_time in
  let half = 1.0 /. freq /. 2.0 in
  let d = fresh_diff t name in
  N.vsource t.net ~name:(name ^ ".vp") ~pos:d.p ~neg:N.gnd
    (W.Pulse { v1 = lo; v2 = hi; delay; rise = edge; fall = edge; width = half -. edge; period = 1.0 /. freq });
  (* the complement starts high and pulses low half a period later *)
  N.vsource t.net ~name:(name ^ ".vn") ~pos:d.n ~neg:N.gnd
    (W.Pulse { v1 = hi; v2 = lo; delay; rise = edge; fall = edge; width = half -. edge; period = 1.0 /. freq });
  d

let diff_dc_input t ~name ~value =
  let proc = t.proc in
  let hi = proc.Process.vgnd and lo = Process.v_low proc in
  let d = fresh_diff t name in
  let vp, vn = if value then (hi, lo) else (lo, hi) in
  N.vsource t.net ~name:(name ^ ".vp") ~pos:d.p ~neg:N.gnd (W.Dc vp);
  N.vsource t.net ~name:(name ^ ".vn") ~pos:d.n ~neg:N.gnd (W.Dc vn);
  d

let emitter_follower t ~name ~input =
  let out = N.node t.net (name ^ ".out") in
  N.bjt t.net ~name:(name ^ ".qf") ~model:t.proc.Process.bjt ~c:t.vgnd ~b:input ~e:out ();
  tail_source t ~name:(name ^ ".qt") out;
  out

let level_shift_diff t ~name ~input =
  {
    p = emitter_follower t ~name:(name ^ ".lsp") ~input:input.p;
    n = emitter_follower t ~name:(name ^ ".lsn") ~input:input.n;
  }
