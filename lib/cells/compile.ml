module C = Cml_logic.Circuit
module N = Cml_spice.Netlist

type stimulus = Toggle | Const of bool

type t = {
  circuit : C.t;
  builder : Builder.t;
  nets : Builder.diff array;
  names : string array;
  input : Builder.diff;
  input_name : string;
  outputs : (string * Builder.diff) list;
  freq : float;
}

let gate_fanins = function
  | C.Input _ -> []
  | C.And (a, b) | C.Or (a, b) | C.Xor (a, b) -> [ a; b ]
  | C.Not a | C.Buf a -> [ a ]
  | C.Mux { sel; a; b } -> [ sel; a; b ]
  | C.Dff { d } -> [ d ]

(* Fanout per net: consumers plus one load for a declared output (the
   pad or the next block it would drive). *)
let fanouts (c : C.t) =
  let f = Array.make (Array.length c.gates) 0 in
  Array.iter (fun g -> List.iter (fun a -> f.(a) <- f.(a) + 1) (gate_fanins g)) c.gates;
  List.iter (fun (_, id) -> f.(id) <- f.(id) + 1) c.outputs;
  f

(* Drive-strength multiplier for a given fanout: unit cells up to a
   fanout of 2, then current scaled with the load, capped at 3x.  The
   swing is preserved because the load resistors shrink by the same
   factor the tail current grows. *)
let drive_of_fanout f = if f <= 2 then 1.0 else Float.min 3.0 (float_of_int f /. 2.0)

(* A view of the shared builder with a resized process: same netlist,
   same rails, same bias line, but [k]x the tail current (the
   current-source transistor's saturation current scales, since every
   tail base sits on the one vbias line) into loads shrunk by [k].
   Cells registered through the view are copied back by the caller. *)
let with_drive (b : Builder.t) k =
  if k <= 1.0 then b
  else
    let p = b.Builder.proc in
    let bjt =
      { p.Process.bjt with Cml_spice.Models.q_is = p.Process.bjt.Cml_spice.Models.q_is *. k }
    in
    let proc =
      Process.with_tail_current
        { p with Process.r_load = p.Process.r_load /. k; bjt }
        (p.Process.i_tail *. k)
    in
    { b with Builder.proc = proc }

let default_stimuli (c : C.t) =
  List.mapi (fun k (name, _) -> (name, if k = 0 then Toggle else Const (k land 1 = 1))) c.inputs

let compile ?(proc = Process.default) ?(freq = 100e6) ?stimuli (c : C.t) =
  let bld = Builder.create ~proc () in
  let net = bld.Builder.net in
  let n = Array.length c.gates in
  let ground = { Builder.p = N.gnd; n = N.gnd } in
  let nets = Array.make n ground in
  let names = C.net_names c in
  let fanout = fanouts c in
  (* primary inputs: one pair of complementary sources per input *)
  let stimuli = match stimuli with Some s -> s | None -> default_stimuli c in
  let stimulus_of name =
    match List.assoc_opt name stimuli with Some s -> s | None -> Const false
  in
  let toggling = ref None in
  List.iter
    (fun (declared, id) ->
      let name = names.(id) in
      nets.(id) <-
        (match stimulus_of declared with
        | Toggle ->
            let d = Builder.diff_square_input bld ~name ~freq () in
            if !toggling = None then toggling := Some (name, d);
            d
        | Const value -> Builder.diff_dc_input bld ~name ~value))
    c.inputs;
  (* flip-flop outputs resolve before anything is built: the slave
     latch's output nodes are fetched (created) by name now and the
     latch wires onto the same nodes later *)
  let clk =
    if Array.length c.dffs = 0 then ground
    else Builder.diff_square_input bld ~name:"clk" ~freq ()
  in
  Array.iter
    (fun id ->
      let nm = names.(id) in
      nets.(id) <- { Builder.p = N.node net (nm ^ ".s.op"); n = N.node net (nm ^ ".s.on") })
    c.dffs;
  (* combinational gates in topological order; a NOT is a free rail
     swap registered as an alias cell so the net name still resolves *)
  let build_cell id f =
    let b' = with_drive bld (drive_of_fanout fanout.(id)) in
    let out = f b' in
    if not (b' == bld) then bld.Builder.cells <- b'.Builder.cells;
    nets.(id) <- out
  in
  Array.iter
    (fun id ->
      let name = names.(id) in
      match c.C.gates.(id) with
      | C.Input _ | C.Dff _ -> ()
      | C.And (a, b) ->
          build_cell id (fun bl -> Gates.and2 bl ~name ~a:nets.(a) ~b:nets.(b))
      | C.Or (a, b) -> build_cell id (fun bl -> Gates.or2 bl ~name ~a:nets.(a) ~b:nets.(b))
      | C.Xor (a, b) -> build_cell id (fun bl -> Gates.xor2 bl ~name ~a:nets.(a) ~b:nets.(b))
      | C.Mux { sel; a; b } ->
          build_cell id (fun bl ->
              Gates.mux21 bl ~name ~sel:nets.(sel) ~a:nets.(a) ~b:nets.(b))
      | C.Buf a -> build_cell id (fun bl -> Buffer_cell.add bl ~name ~input:nets.(a))
      | C.Not a ->
          nets.(id) <- Builder.swap nets.(a);
          Builder.register_cell bld ~name ~outputs:nets.(id))
    c.C.order;
  (* flip-flops last, once their data nets exist; the plain name is
     registered as an alias of the slave output so campaign/plan
     targets resolve without the [.s] suffix *)
  Array.iter
    (fun id ->
      match c.C.gates.(id) with
      | C.Dff { d } ->
          let name = names.(id) in
          build_cell id (fun bl -> Latch.dff bl ~name ~d:nets.(d) ~clk);
          Builder.register_cell bld ~name ~outputs:nets.(id)
      | C.Input _ | C.And _ | C.Or _ | C.Xor _ | C.Not _ | C.Buf _ | C.Mux _ -> ())
    c.dffs;
  let input_name, input =
    match !toggling with
    | Some (name, d) -> (name, d)
    | None -> (
        match c.inputs with
        | (name, id) :: _ -> (name, nets.(id))
        | [] -> invalid_arg "Compile.compile: circuit has no inputs")
  in
  {
    circuit = c;
    builder = bld;
    nets;
    names;
    input;
    input_name;
    outputs = List.map (fun (nm, id) -> (nm, nets.(id))) c.outputs;
    freq;
  }

let netlist t = t.builder.Builder.net

let find_cell t name =
  let rec find i =
    if i >= Array.length t.names then None
    else if t.names.(i) = name then Some t.nets.(i)
    else find (i + 1)
  in
  find 0

(* A physical cell owns devices of its own (prefix-named), so defect
   sites enumerate non-empty: any gate except an Input or a free
   NOT. *)
let physical t name =
  let rec find i =
    if i >= Array.length t.names then false
    else if t.names.(i) = name then
      match t.circuit.C.gates.(i) with
      | C.Input _ | C.Not _ -> false
      | C.And _ | C.Or _ | C.Xor _ | C.Buf _ | C.Mux _ | C.Dff _ -> true
    else find (i + 1)
  in
  find 0

let default_dut t =
  let order = t.circuit.C.order in
  let pick pred =
    Array.fold_left
      (fun acc id -> match acc with Some _ -> acc | None -> if pred id then Some id else None)
      None order
  in
  let is_gate id =
    match t.circuit.C.gates.(id) with
    | C.And _ | C.Or _ | C.Xor _ | C.Buf _ | C.Mux _ -> true
    | C.Input _ | C.Not _ | C.Dff _ -> false
  in
  let is_cell id =
    match t.circuit.C.gates.(id) with
    | C.Not _ -> true
    | C.Input _ | C.And _ | C.Or _ | C.Xor _ | C.Buf _ | C.Mux _ | C.Dff _ -> false
  in
  match pick is_gate with
  | Some id -> t.names.(id)
  | None -> (
      match pick is_cell with
      | Some id -> t.names.(id)
      | None -> invalid_arg "Compile.default_dut: circuit has no gates")

let default_output t =
  match List.rev t.outputs with
  | (name, _) :: _ -> name
  | [] -> default_dut t

let stats t =
  let physical_cells =
    Array.fold_left
      (fun acc g ->
        match g with
        | C.And _ | C.Or _ | C.Xor _ | C.Buf _ | C.Mux _ -> acc + 1
        | C.Dff _ -> acc + 2 (* master + slave latch *)
        | C.Input _ | C.Not _ -> acc)
      0 t.circuit.C.gates
  in
  (physical_cells, N.device_count (netlist t))
