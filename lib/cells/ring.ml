module N = Cml_spice.Netlist
module W = Cml_spice.Waveform

type t = { builder : Builder.t; tap : Builder.diff; stages : int }

let build ?(proc = Process.default) ?(stages = 5) () =
  let builder = Builder.create ~proc () in
  let input = Builder.fresh_diff builder "ring" in
  let rec grow k signal =
    if k > stages then signal
    else grow (k + 1) (Buffer_cell.add builder ~name:(Printf.sprintf "r%d" k) ~input:signal)
  in
  let tap = grow 1 input in
  (* close the loop with an inverting twist through negligible
     resistances (distinct devices keep the netlist well-formed) *)
  N.resistor builder.Builder.net ~name:"loop_p" tap.Builder.p input.Builder.n 1.0;
  N.resistor builder.Builder.net ~name:"loop_n" tap.Builder.n input.Builder.p 1.0;
  N.isource builder.Builder.net ~name:"kick" ~pos:input.Builder.p ~neg:N.gnd
    (W.Pulse
       {
         v1 = 0.0;
         v2 = 1e-4;
         delay = 0.1e-9;
         rise = 10e-12;
         fall = 10e-12;
         width = 100e-12;
         period = 0.0;
       });
  { builder; tap; stages }

let measure_frequency ?(tstop = 8e-9) ?settle t =
  let settle = match settle with Some s -> s | None -> tstop /. 2.0 in
  let net = t.builder.Builder.net in
  let sim = Cml_spice.Engine.compile net in
  let r = Cml_spice.Transient.run sim net (Cml_spice.Transient.config ~tstop ~max_step:5e-12 ()) in
  let w =
    Cml_wave.Wave.create r.Cml_spice.Transient.times
      (Cml_spice.Transient.diff_trace r t.tap.Builder.p t.tap.Builder.n)
  in
  match List.filter (fun x -> x > settle) (Cml_wave.Measure.crossings w ~level:0.0) with
  | t1 :: rest when List.length rest >= 2 ->
      let tlast = List.nth rest (List.length rest - 1) in
      let periods = float_of_int (List.length rest) /. 2.0 in
      Some (periods /. (tlast -. t1))
  | _ -> None

let expected_frequency ?(gate_delay = 54e-12) t =
  1.0 /. (2.0 *. float_of_int t.stages *. gate_delay)
