(** CML ring oscillator: a buffer chain closed back on itself with an
    inverting twist.  Oscillation at about 1/(2 N t_pd) is both a
    classic process monitor and a demanding self-consistency check of
    the transient engine (nothing drives it but its own feedback). *)

type t = {
  builder : Builder.t;
  tap : Builder.diff;  (** output of the last stage *)
  stages : int;
}

val build : ?proc:Process.t -> ?stages:int -> unit -> t
(** Default 5 stages.  A small current kick (device ["kick"]) breaks
    the metastable DC balance shortly after t = 0. *)

val measure_frequency :
  ?tstop:float -> ?settle:float -> t -> float option
(** Run a transient and measure the oscillation frequency from the
    differential zero crossings of the tap; [None] if it never
    oscillates.  Defaults: [tstop = 8 ns], [settle = tstop / 2]. *)

val expected_frequency : ?gate_delay:float -> t -> float
(** [1 / (2 N t_pd)] with the calibrated 54 ps default delay. *)
