module N = Cml_spice.Netlist

(* Series-gated skeleton shared by AND and MUX: a bottom pair steers
   the tail current either into a top differential pair or directly
   into one of the output loads. *)

let outputs (b : Builder.t) name =
  let op = N.node b.Builder.net (name ^ ".op") in
  let on = N.node b.Builder.net (name ^ ".on") in
  Builder.load_resistor b ~name:(name ^ ".r2") op;
  Builder.load_resistor b ~name:(name ^ ".r1") on;
  Builder.wire_cap b ~name:(name ^ ".cp") op;
  Builder.wire_cap b ~name:(name ^ ".cn") on;
  let out = { Builder.p = op; n = on } in
  Builder.register_cell b ~name ~outputs:out;
  out

let and2 (bld : Builder.t) ~name ~a ~b =
  let model = bld.Builder.proc.Process.bjt in
  let net = bld.Builder.net in
  let out = outputs bld name in
  let bb = Builder.level_shift_diff bld ~name ~input:b in
  let etop = N.node net (name ^ ".etop") in
  let ce = N.node net (name ^ ".ce") in
  (* top pair: active when b is high; a=1 routes current to the
     complement load (output reads true) *)
  N.bjt net ~name:(name ^ ".q1") ~model ~c:out.Builder.n ~b:a.Builder.p ~e:etop ();
  N.bjt net ~name:(name ^ ".q2") ~model ~c:out.Builder.p ~b:a.Builder.n ~e:etop ();
  (* bottom pair: b=1 feeds the top pair, b=0 pulls the true output low *)
  N.bjt net ~name:(name ^ ".q4") ~model ~c:etop ~b:bb.Builder.p ~e:ce ();
  N.bjt net ~name:(name ^ ".q5") ~model ~c:out.Builder.p ~b:bb.Builder.n ~e:ce ();
  Builder.tail_source bld ~name:(name ^ ".q3") ce;
  out

let or2 bld ~name ~a ~b =
  (* a OR b = not (not a AND not b); complements are free *)
  Builder.swap (and2 bld ~name ~a:(Builder.swap a) ~b:(Builder.swap b))

let xor2 (bld : Builder.t) ~name ~a ~b =
  let model = bld.Builder.proc.Process.bjt in
  let net = bld.Builder.net in
  let out = outputs bld name in
  let bb = Builder.level_shift_diff bld ~name ~input:b in
  let e1 = N.node net (name ^ ".e1") in
  let e2 = N.node net (name ^ ".e2") in
  let ce = N.node net (name ^ ".ce") in
  (* pair 1 (active when b = 1): a = 1 pulls the true output low *)
  N.bjt net ~name:(name ^ ".q1") ~model ~c:out.Builder.p ~b:a.Builder.p ~e:e1 ();
  N.bjt net ~name:(name ^ ".q2") ~model ~c:out.Builder.n ~b:a.Builder.n ~e:e1 ();
  (* pair 2 (active when b = 0): cross-coupled *)
  N.bjt net ~name:(name ^ ".q6") ~model ~c:out.Builder.n ~b:a.Builder.p ~e:e2 ();
  N.bjt net ~name:(name ^ ".q7") ~model ~c:out.Builder.p ~b:a.Builder.n ~e:e2 ();
  N.bjt net ~name:(name ^ ".q4") ~model ~c:e1 ~b:bb.Builder.p ~e:ce ();
  N.bjt net ~name:(name ^ ".q5") ~model ~c:e2 ~b:bb.Builder.n ~e:ce ();
  Builder.tail_source bld ~name:(name ^ ".q3") ce;
  out

let mux21 (bld : Builder.t) ~name ~sel ~a ~b =
  let model = bld.Builder.proc.Process.bjt in
  let net = bld.Builder.net in
  let out = outputs bld name in
  let ss = Builder.level_shift_diff bld ~name ~input:sel in
  let e1 = N.node net (name ^ ".e1") in
  let e2 = N.node net (name ^ ".e2") in
  let ce = N.node net (name ^ ".ce") in
  (* pair 1 passes a (sel = 1), pair 2 passes b (sel = 0) *)
  N.bjt net ~name:(name ^ ".q1") ~model ~c:out.Builder.n ~b:a.Builder.p ~e:e1 ();
  N.bjt net ~name:(name ^ ".q2") ~model ~c:out.Builder.p ~b:a.Builder.n ~e:e1 ();
  N.bjt net ~name:(name ^ ".q6") ~model ~c:out.Builder.n ~b:b.Builder.p ~e:e2 ();
  N.bjt net ~name:(name ^ ".q7") ~model ~c:out.Builder.p ~b:b.Builder.n ~e:e2 ();
  N.bjt net ~name:(name ^ ".q4") ~model ~c:e1 ~b:ss.Builder.p ~e:ce ();
  N.bjt net ~name:(name ^ ".q5") ~model ~c:e2 ~b:ss.Builder.n ~e:ce ();
  Builder.tail_source bld ~name:(name ^ ".q3") ce;
  out
