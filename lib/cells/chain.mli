(** The paper's test circuit (Figure 3): a chain of data buffers in
    which each stage's differential inputs come from the previous
    stage's differential outputs.  Stage instances are named [x1],
    [x2], ... — the paper's device under test is stage 3 of an
    8-stage chain. *)

type t = {
  builder : Builder.t;
  input : Builder.diff;  (** the driving va/vab pair *)
  stages : Builder.diff array;  (** output of each stage, in order *)
}

val build : ?proc:Process.t -> ?stages:int -> freq:float -> unit -> t
(** A chain driven by complementary square sources at [freq]
    (defaults to the paper's 8 stages). *)

val build_dc : ?proc:Process.t -> ?stages:int -> value:bool -> unit -> t
(** Same chain with a static input, for DC experiments. *)

val stage_name : int -> string
(** ["x3"] for stage 3 (1-based, matching the paper's numbering). *)

val dut_stage : int
(** The paper's defective stage: 3. *)

val output : t -> int -> Builder.diff
(** Output diff of the 1-based stage index. *)
