module N = Cml_spice.Netlist

let add (b : Builder.t) ~name ~input =
  let op = N.node b.Builder.net (name ^ ".op") in
  let on = N.node b.Builder.net (name ^ ".on") in
  let ce = N.node b.Builder.net (name ^ ".ce") in
  let model = b.Builder.proc.Process.bjt in
  (* Q1 conducts when the true input is high, pulling the complement
     output low; Q2 handles the other phase. *)
  N.bjt b.Builder.net ~name:(name ^ ".q1") ~model ~c:on ~b:input.Builder.p ~e:ce ();
  N.bjt b.Builder.net ~name:(name ^ ".q2") ~model ~c:op ~b:input.Builder.n ~e:ce ();
  Builder.tail_source b ~name:(name ^ ".q3") ce;
  Builder.load_resistor b ~name:(name ^ ".r1") on;
  Builder.load_resistor b ~name:(name ^ ".r2") op;
  Builder.wire_cap b ~name:(name ^ ".cn") on;
  Builder.wire_cap b ~name:(name ^ ".cp") op;
  let out = { Builder.p = op; n = on } in
  Builder.register_cell b ~name ~outputs:out;
  out

let inverter b ~name ~input = Builder.swap (add b ~name ~input)

let output_nodes (b : Builder.t) ~name =
  { Builder.p = N.node b.Builder.net (name ^ ".op"); n = N.node b.Builder.net (name ^ ".on") }

let common_emitter_node (b : Builder.t) ~name = N.node b.Builder.net (name ^ ".ce")
