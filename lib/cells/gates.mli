(** Two-level series-gated CML gates.  The second-level input is
    level-shifted down one VBE internally (paper section 2: "gate
    outputs must be level shifted by one VBE before driving" lower
    pairs), so all gate inputs and outputs use the standard CML
    levels and gates compose freely. *)

val outputs : Builder.t -> string -> Builder.diff
(** Create the output pair of an instance — two load resistors
    ([<name>.r1], [<name>.r2]) and wiring capacitances on nodes
    [<name>.op] / [<name>.on].  Shared by every gate topology (also
    used by {!Latch}). *)

val and2 : Builder.t -> name:string -> a:Builder.diff -> b:Builder.diff -> Builder.diff
(** [a AND b]; [a] steers the top pair, [b] the bottom pair. *)

val or2 : Builder.t -> name:string -> a:Builder.diff -> b:Builder.diff -> Builder.diff
(** By De Morgan on the free CML complements. *)

val xor2 : Builder.t -> name:string -> a:Builder.diff -> b:Builder.diff -> Builder.diff
(** Series-gated XOR with cross-coupled top pairs. *)

val mux21 :
  Builder.t -> name:string -> sel:Builder.diff -> a:Builder.diff -> b:Builder.diff ->
  Builder.diff
(** [sel ? a : b]; the data inputs steer the top pairs. *)
