(** Parameters of the simulated bipolar CML process, calibrated to the
    operating point the paper quotes: 3.3 V rail, about 250 mV output
    swing, VBE about 0.9 V at the tail current, and a gate delay in
    the 50 ps range. *)

type t = {
  vgnd : float;  (** positive supply rail (the paper's vgnd = 3.3 V) *)
  swing : float;  (** nominal single-ended output swing (V) *)
  r_load : float;  (** collector load resistance (ohm) *)
  i_tail : float;  (** tail current of a gate (A) *)
  bjt : Cml_spice.Models.bjt;  (** transistor model for all gate devices *)
  diode : Cml_spice.Models.diode;  (** junction model for diode-connected loads *)
  c_wire : float;  (** parasitic wiring capacitance per gate output (F) *)
  edge_time : float;  (** rise/fall time used for generated stimuli (s) *)
}

val default : t
(** The calibrated process: [vgnd = 3.3], [r_load = 500], [i_tail =
    0.5 mA] (so [swing = 250 mV]), VBE(0.5 mA) about 0.9 V. *)

val v_bias : t -> float
(** Base bias voltage that makes the grounded-emitter current-source
    transistor sink exactly [i_tail]:
    [v_bias = VT * ln (i_tail / Is)]. *)

val v_low : t -> float
(** Nominal low output level, [vgnd - swing]. *)

val vbe_on : t -> float
(** VBE at the tail current — the paper's "VBE = 900 mV" figure. *)

val with_tail_current : t -> float -> t
(** Same process with a different gate current (the speed/power knob
    the paper mentions in section 6.3); the swing follows
    [i_tail * r_load]. *)
