module N = Cml_spice.Netlist

let d_latch (bld : Builder.t) ~name ~d ~clk =
  let model = bld.Builder.proc.Process.bjt in
  let net = bld.Builder.net in
  let out = Gates.outputs bld name in
  let cc = Builder.level_shift_diff bld ~name ~input:clk in
  let e1 = N.node net (name ^ ".e1") in
  let e2 = N.node net (name ^ ".e2") in
  let ce = N.node net (name ^ ".ce") in
  (* sampling pair, active while the clock is high *)
  N.bjt net ~name:(name ^ ".q1") ~model ~c:out.Builder.n ~b:d.Builder.p ~e:e1 ();
  N.bjt net ~name:(name ^ ".q2") ~model ~c:out.Builder.p ~b:d.Builder.n ~e:e1 ();
  (* cross-coupled regeneration pair, active while the clock is low *)
  N.bjt net ~name:(name ^ ".q6") ~model ~c:out.Builder.n ~b:out.Builder.p ~e:e2 ();
  N.bjt net ~name:(name ^ ".q7") ~model ~c:out.Builder.p ~b:out.Builder.n ~e:e2 ();
  N.bjt net ~name:(name ^ ".q4") ~model ~c:e1 ~b:cc.Builder.p ~e:ce ();
  N.bjt net ~name:(name ^ ".q5") ~model ~c:e2 ~b:cc.Builder.n ~e:ce ();
  Builder.tail_source bld ~name:(name ^ ".q3") ce;
  out

let dff bld ~name ~d ~clk =
  (* master transparent on clock low, slave on clock high: the output
     updates on the rising edge *)
  let m = d_latch bld ~name:(name ^ ".m") ~d ~clk:(Builder.swap clk) in
  d_latch bld ~name:(name ^ ".s") ~d:m ~clk
