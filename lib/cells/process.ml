type t = {
  vgnd : float;
  swing : float;
  r_load : float;
  i_tail : float;
  bjt : Cml_spice.Models.bjt;
  diode : Cml_spice.Models.diode;
  c_wire : float;
  edge_time : float;
}

let default =
  {
    vgnd = 3.3;
    swing = 0.25;
    r_load = 500.0;
    i_tail = 0.5e-3;
    bjt = Cml_spice.Models.default_bjt;
    diode = Cml_spice.Models.default_diode;
    c_wire = 95e-15;
    edge_time = 50e-12;
  }

let v_bias p =
  Cml_spice.Models.boltzmann_vt *. log (p.i_tail /. p.bjt.Cml_spice.Models.q_is)

let v_low p = p.vgnd -. p.swing

let vbe_on = v_bias

let with_tail_current p i_tail = { p with i_tail; swing = i_tail *. p.r_load }
