(** Sequential CML cells: the level-sensitive D latch (data pair plus
    cross-coupled regeneration pair, clock-steered) and the
    master-slave rising-edge D flip-flop built from two of them. *)

val d_latch :
  Builder.t -> name:string -> d:Builder.diff -> clk:Builder.diff -> Builder.diff
(** Transparent while [clk] is high, holds while low. *)

val dff :
  Builder.t -> name:string -> d:Builder.diff -> clk:Builder.diff -> Builder.diff
(** Rising-edge master-slave flip-flop (instances [<name>.m] and
    [<name>.s]). *)
