(** DC transfer curves and noise margins of differential cells.  The
    paper's section-1 fault list includes "reduced noise-margin"
    faults; this analysis measures them, and section 6.3's comparator
    design is argued in noise-margin terms. *)

type margins = {
  gain : float;  (** small-signal differential gain at balance *)
  v_il : float;  (** unity-gain input points (differential volts) *)
  v_ih : float;
  v_ol : float;  (** output levels at the unity-gain points *)
  v_oh : float;
  nm_low : float;  (** noise margins: NM_L = VIL - VOL, NM_H = VOH - VIH *)
  nm_high : float;
}

val dc_transfer :
  ?proc:Process.t ->
  ?span:float ->
  ?points:int ->
  ?prepare:(Builder.t -> Cml_spice.Netlist.t) ->
  build:(Builder.t -> Builder.diff -> Builder.diff) ->
  unit ->
  (float * float) list
(** Sweep a differential input across [±span/2] (default the process
    swing ±25%) around the logic midpoint and return
    [(vin_diff, vout_diff)] pairs.  [build] creates the cell under
    test from the input diff; [prepare] may transform the finished
    netlist (e.g. inject a defect) before simulation. *)

val margins : (float * float) list -> margins
(** Analyse a transfer curve.
    @raise Invalid_argument on fewer than 5 points. *)
