(** A transistor-level CML ripple-carry adder built from the gate
    library — the kind of realistic datapath block the DFT-insertion
    pass instruments. *)

val full_adder :
  Builder.t ->
  name:string ->
  a:Builder.diff ->
  b:Builder.diff ->
  cin:Builder.diff ->
  Builder.diff * Builder.diff
(** [(sum, carry_out)]; builds five series-gated cells named
    [<name>.axb], [<name>.sum], [<name>.g], [<name>.p],
    [<name>.cout]. *)

val ripple_carry :
  Builder.t ->
  name:string ->
  a:Builder.diff array ->
  b:Builder.diff array ->
  cin:Builder.diff ->
  Builder.diff array * Builder.diff
(** N-bit adder (LSB first); [(sums, carry_out)].
    @raise Invalid_argument if the operand widths differ or are 0. *)
