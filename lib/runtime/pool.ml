(* Fixed-size Domain worker pool for embarrassingly parallel
   simulation batches (defect campaigns, Monte-Carlo sampling, fault
   simulation, characterisation sweeps).

   Design constraints, in order:
   - deterministic results: task [i] always produces slot [i] of the
     output, whatever domain ran it, so parallel and sequential runs
     are byte-identical;
   - a sequential fallback at [jobs = 1] that is exactly [Array.map];
   - exceptions raised by a task are captured and re-raised in the
     caller (the lowest-index failure wins deterministically);
   - the pool is created once and reused: domains are expensive
     relative to small tasks and the number of live domains in an
     OCaml 5 process is bounded. *)

let env_var = "CML_DFT_JOBS"

(* 0 = no override; set from the command line (--jobs). *)
let override = Atomic.make 0

let set_default_jobs n =
  if n < 0 then
    invalid_arg "Pool.set_default_jobs: jobs must be >= 1, or 0 for auto (one per core)";
  Atomic.set override (if n = 0 then Domain.recommended_domain_count () else n)

let env_jobs () =
  match Sys.getenv_opt env_var with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> None)

let default_jobs () =
  let o = Atomic.get override in
  if o >= 1 then o
  else
    match env_jobs () with
    | Some n -> n
    | None -> max 1 (Domain.recommended_domain_count () - 1)

(* ------------------------------------------------------------------ *)
(* Per-domain busy/idle accounting.

   Every chunk a domain claims is timed around its execution, into a
   cell the domain owns (domain-local storage, same registration
   pattern as {!Cml_telemetry.Trace}): busy nanoseconds, items
   executed, and the longest stall — the widest gap between two
   consecutive chunk executions within one job, which is the direct
   measurement of "was this domain idle while the batch still had
   work" (tail imbalance under contiguous chunking).  Owner domains
   write plain mutable fields; readers sample at quiescent points
   (after the pool barrier), so no lock guards the counters. *)

type dstat = {
  ds_domain : int;
  mutable ds_busy_ns : int64;
  mutable ds_items : int;
  mutable ds_longest_stall_ns : int64;
  mutable ds_last_end_ns : int64;
  mutable ds_job_gen : int;  (* last job this domain accounted under *)
}

let dstat_registry : dstat list ref = ref []

let dstat_mutex = Mutex.create ()

let dstat_key =
  Domain.DLS.new_key (fun () ->
      let c =
        {
          ds_domain = (Domain.self () :> int);
          ds_busy_ns = 0L;
          ds_items = 0;
          ds_longest_stall_ns = 0L;
          ds_last_end_ns = 0L;
          ds_job_gen = 0;
        }
      in
      Mutex.lock dstat_mutex;
      dstat_registry := c :: !dstat_registry;
      Mutex.unlock dstat_mutex;
      c)

(* job epoch, for stall attribution: a domain's first chunk of a job
   measures its stall from the job's submission instant, later chunks
   from the end of the domain's previous chunk *)
let job_gen = Atomic.make 0

let job_start_ns = Atomic.make 0L

let now_ns () = Cml_telemetry.Clock.now_ns ()

(* one tick per oversubscribed batch (jobs > cores), so the condition
   shows up in manifests and the watch view, not just as a one-shot
   stderr warning *)
let m_oversubscribed = Cml_telemetry.Metrics.counter "pool.oversubscribed"

let account_chunk cell ~t0 ~t1 ~items ~gen ~job_start =
  let stall_from =
    if cell.ds_job_gen <> gen then begin
      cell.ds_job_gen <- gen;
      job_start
    end
    else cell.ds_last_end_ns
  in
  let stall = Int64.sub t0 stall_from in
  if stall > cell.ds_longest_stall_ns then cell.ds_longest_stall_ns <- stall;
  cell.ds_busy_ns <- Int64.add cell.ds_busy_ns (Int64.sub t1 t0);
  cell.ds_items <- cell.ds_items + items;
  cell.ds_last_end_ns <- t1

(* sequential fallbacks still account busy time and items (as one
   chunk, no stall) so a jobs=1 run reports a utilization row too *)
let account_sequential ~items f =
  let cell = Domain.DLS.get dstat_key in
  let t0 = now_ns () in
  let r = f () in
  let t1 = now_ns () in
  cell.ds_busy_ns <- Int64.add cell.ds_busy_ns (Int64.sub t1 t0);
  cell.ds_items <- cell.ds_items + items;
  cell.ds_last_end_ns <- t1;
  r

type domain_stats = { busy_ns : int64; items : int; longest_stall_ns : int64 }

let utilization () =
  Mutex.lock dstat_mutex;
  let cells = !dstat_registry in
  Mutex.unlock dstat_mutex;
  List.sort compare
    (List.map
       (fun c ->
         ( c.ds_domain,
           { busy_ns = c.ds_busy_ns; items = c.ds_items; longest_stall_ns = c.ds_longest_stall_ns }
         ))
       cells)

let utilization_since before =
  List.filter_map
    (fun (dom, (a : domain_stats)) ->
      let b =
        match List.assoc_opt dom before with
        | Some b -> b
        | None -> { busy_ns = 0L; items = 0; longest_stall_ns = 0L }
      in
      let d =
        {
          busy_ns = Int64.sub a.busy_ns b.busy_ns;
          items = a.items - b.items;
          (* the stall is a cumulative watermark (a max cannot be
             subtracted); {!reset_stall_watermarks} scopes it to a run *)
          longest_stall_ns = a.longest_stall_ns;
        }
      in
      if d.items = 0 && d.busy_ns = 0L then None else Some (dom, d))
    (utilization ())

(* only safe while no other domain is inside a pool batch — i.e. at
   the same quiescent points where [utilization] snapshots are taken *)
let reset_stall_watermarks () =
  Mutex.lock dstat_mutex;
  let cells = !dstat_registry in
  Mutex.unlock dstat_mutex;
  List.iter (fun c -> c.ds_longest_stall_ns <- 0L) cells

(* ------------------------------------------------------------------ *)
(* The pool proper.

   Workers block on [work_ready] until the generation counter moves,
   then race the submitting domain over a shared atomic task index.
   A job carries its own cursor and completion count, so a worker
   that wakes up late simply finds the cursor exhausted.  The
   submitter participates as worker #0, which makes [workers = 0] a
   valid (fully sequential) pool. *)

type job = {
  run : int -> unit;  (* must not raise; see [map] *)
  total : int;
  next : int Atomic.t;
  chunk : int;  (* indices claimed per cursor fetch *)
  active : int;  (* domains allowed to pull tasks, including the caller *)
  mutable unfinished : int;  (* workers yet to acknowledge; under [mutex] *)
}

type t = {
  workers : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable generation : int;
  mutable job : job option;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let drain job =
  let cell = Domain.DLS.get dstat_key in
  let gen = Atomic.get job_gen in
  let job_start = Atomic.get job_start_ns in
  let rec go () =
    let start = Atomic.fetch_and_add job.next job.chunk in
    if start < job.total then begin
      let stop = min job.total (start + job.chunk) in
      let t0 = now_ns () in
      for i = start to stop - 1 do
        job.run i
      done;
      let t1 = now_ns () in
      account_chunk cell ~t0 ~t1 ~items:(stop - start) ~gen ~job_start;
      go ()
    end
  in
  go ()

let worker t id =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while (not t.stopping) && t.generation = !seen do
      Condition.wait t.work_ready t.mutex
    done;
    if t.stopping then Mutex.unlock t.mutex
    else begin
      seen := t.generation;
      let job = match t.job with Some j -> j | None -> assert false in
      Mutex.unlock t.mutex;
      (* workers beyond the job's parallelism cap only acknowledge *)
      if id + 1 < job.active then drain job;
      Mutex.lock t.mutex;
      job.unfinished <- job.unfinished - 1;
      if job.unfinished = 0 then Condition.broadcast t.work_done;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

let create ~workers =
  if workers < 0 then invalid_arg "Pool.create: negative worker count";
  let t =
    {
      workers;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      generation = 0;
      job = None;
      stopping = false;
      domains = [];
    }
  in
  t.domains <- List.init workers (fun id -> Domain.spawn (fun () -> worker t id));
  t

let size t = t.workers

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

(* Run [run 0 .. run (total-1)] across the pool; not re-entrant (one
   job at a time per pool, submitted from a single domain). *)
let run_tasks t ~active ~total run =
  if total > 0 then
    if active <= 1 || t.workers = 0 then
      account_sequential ~items:total (fun () ->
          for i = 0 to total - 1 do
            run i
          done)
    else begin
      (* stamp the job epoch before waking anyone: every domain's
         first-chunk stall is measured from this instant *)
      Atomic.set job_start_ns (now_ns ());
      Atomic.incr job_gen;
      (* coarse claiming: each cursor fetch takes a run of indices, so
         a batch much larger than the domain count (fault simulation,
         Monte-Carlo) touches the shared cursor ~8 times per domain
         instead of once per task, while small batches (a handful of
         transients) still hand out single tasks and keep the tail
         balanced *)
      let chunk = max 1 (total / (active * 8)) in
      let job = { run; total; next = Atomic.make 0; chunk; active; unfinished = t.workers } in
      Mutex.lock t.mutex;
      t.generation <- t.generation + 1;
      t.job <- Some job;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mutex;
      drain job;
      Mutex.lock t.mutex;
      while job.unfinished > 0 do
        Condition.wait t.work_done t.mutex
      done;
      t.job <- None;
      Mutex.unlock t.mutex
    end

type 'b cell = Pending | Done of 'b | Raised of exn * Printexc.raw_backtrace

let map t ?jobs f arr =
  let n = Array.length arr in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  (* never run more domains than the machine has cores: oversubscribed
     OCaml 5 domains serialise on every minor-GC stop-the-world sync,
     which turns "--jobs 4" on a 1-core host into a large slowdown
     rather than a wash *)
  let cores = Domain.recommended_domain_count () in
  if jobs > cores then begin
    (* counted per oversubscribed batch (the warning itself is
       one-shot), so manifests record how often the cap was hit *)
    Cml_telemetry.Metrics.incr m_oversubscribed;
    Cml_telemetry.Trace.warn_once ~key:"pool.jobs_exceed_cores"
      (Printf.sprintf
         "%d jobs requested (--jobs / %s) but only %d cores are available; capping active \
          domains at %d"
         jobs env_var cores cores)
  end;
  let active = min (min jobs n) (min (t.workers + 1) cores) in
  if active <= 1 then account_sequential ~items:n (fun () -> Array.map f arr)
  else begin
    if Cml_telemetry.Trace.enabled () then
      Cml_telemetry.Trace.instant ~cat:"pool"
        ~args:[ ("total", Cml_telemetry.Trace.I n); ("active", Cml_telemetry.Trace.I active) ]
        "pool.batch";
    let cells = Array.make n Pending in
    let failed = Atomic.make false in
    let run i =
      (* after a failure, finish nothing new: the batch is doomed *)
      if not (Atomic.get failed) then
        match f arr.(i) with
        | v -> cells.(i) <- Done v
        | exception e ->
            cells.(i) <- Raised (e, Printexc.get_raw_backtrace ());
            Atomic.set failed true
    in
    run_tasks t ~active ~total:n run;
    if Atomic.get failed then
      Array.iter
        (function Raised (e, bt) -> Printexc.raise_with_backtrace e bt | Pending | Done _ -> ())
        cells;
    Array.map (function Done v -> v | Pending | Raised _ -> assert false) cells
  end

(* ------------------------------------------------------------------ *)
(* The shared global pool.

   Sized once, on first parallel use, to the larger of the default
   job count and the first explicit request; later requests for more
   parallelism than the pool holds are capped at its size. *)

let global : t option ref = ref None

let global_mutex = Mutex.create ()

let global_pool ~at_least =
  Mutex.lock global_mutex;
  let p =
    match !global with
    | Some p -> p
    | None ->
        (* capped at cores - 1: extra domains never run concurrently
           anyway (see the [active] cap in [map]) and merely existing
           taxes every minor collection of the working domains — on a
           1-core host, idle workers cost ~40% of sequential runtime *)
        let cores = Domain.recommended_domain_count () in
        let workers =
          min (max (at_least - 1) (max 0 (default_jobs () - 1))) (max 0 (cores - 1))
        in
        let p = create ~workers in
        global := Some p;
        p
  in
  Mutex.unlock global_mutex;
  p

let parallel_map ?jobs f arr =
  let n = Array.length arr in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  if min jobs n <= 1 then account_sequential ~items:n (fun () -> Array.map f arr)
  else map (global_pool ~at_least:jobs) ~jobs f arr

let parallel_list_map ?jobs f l =
  Array.to_list (parallel_map ?jobs f (Array.of_list l))

(* ------------------------------------------------------------------ *)
(* Size-aware batch scheduling.

   Lockstep solvers amortise per-batch costs (shared macro grid,
   staging planes, factor reuse warm-up) over the lanes of a batch, so
   the unit of pool work should be a contiguous *slice* of the input,
   not a single element: one pool task per slice keeps every domain
   busy with a full batch while preserving the deterministic
   element-order of [parallel_map].  Slices are sized to give each
   active domain about four tasks (tail balancing) within the caller's
   [min_batch]/[max_batch] bounds. *)

let parallel_map_batches ?jobs ?(min_batch = 1) ?(max_batch = max_int) f arr =
  if min_batch < 1 then invalid_arg "Pool.parallel_map_batches: min_batch must be >= 1";
  if max_batch < min_batch then
    invalid_arg "Pool.parallel_map_batches: max_batch must be >= min_batch";
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
    let cores = Domain.recommended_domain_count () in
    let active = max 1 (min (min jobs n) cores) in
    let size =
      let per = (n + (active * 4) - 1) / (active * 4) in
      min max_batch (max min_batch per)
    in
    let nslices = (n + size - 1) / size in
    let slices =
      Array.init nslices (fun k ->
          let lo = k * size in
          (lo, min n (lo + size) - lo))
    in
    let run (lo, len) = f (Array.sub arr lo len) in
    let results =
      if nslices = 1 || active <= 1 then
        account_sequential ~items:nslices (fun () -> Array.map run slices)
      else map (global_pool ~at_least:jobs) ~jobs run slices
    in
    Array.iteri
      (fun k r ->
        if Array.length r <> snd slices.(k) then
          invalid_arg "Pool.parallel_map_batches: f changed the slice length")
      results;
    Array.concat (Array.to_list results)
  end
