(** Fixed-size Domain worker pool for the simulation hot paths.

    Defect campaigns, Monte-Carlo sampling, logic fault simulation and
    detector characterisation sweeps all run many independent
    simulations; {!parallel_map} distributes them over OCaml 5 domains
    while keeping results deterministic: slot [i] of the output is
    always [f arr.(i)], so a parallel run is byte-identical to a
    sequential one.

    Job-count resolution, everywhere a [?jobs] argument is optional:
    explicit argument, then {!set_default_jobs} (the [--jobs] command
    line flag), then the [CML_DFT_JOBS] environment variable, then
    [Domain.recommended_domain_count () - 1] (at least 1).  [jobs = 1]
    is an exact sequential fallback.

    Requesting more jobs than the machine has cores still caps the
    active domain count at the core count, but no longer silently: the
    first such batch prints a one-shot warning and records a telemetry
    event (see {!Cml_telemetry.Trace.warn_once}). *)

val env_var : string
(** ["CML_DFT_JOBS"]. *)

val default_jobs : unit -> int
(** The job count used when no [?jobs] argument is given. *)

val set_default_jobs : int -> unit
(** Override {!default_jobs} for the whole process (wins over the
    environment).  [0] means auto — one job per core
    ([Domain.recommended_domain_count ()]).
    @raise Invalid_argument below 0. *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map ~jobs f arr] is [Array.map f arr] computed by up to
    [jobs] domains (the caller plus workers from a shared global pool
    created on first use).  Tasks must be independent: [f] must not
    mutate state shared between elements.  If any [f arr.(i)] raises,
    the exception of the lowest failed index is re-raised in the
    caller after the batch stops scheduling new tasks.  The global
    pool is sized at first parallel call; larger later requests are
    capped at its size. *)

val parallel_list_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** List counterpart of {!parallel_map} (order preserved). *)

val parallel_map_batches :
  ?jobs:int -> ?min_batch:int -> ?max_batch:int -> ('a array -> 'b array) -> 'a array -> 'b array
(** [parallel_map_batches f arr] splits [arr] into contiguous slices,
    applies [f] to each slice (one pool task per slice, so [f] can
    amortise per-batch work — a lockstep transient batch, a shared
    factorization — across the slice's elements) and concatenates the
    results in order: the output is element-for-element the
    concatenation of [f] over the slices, deterministically.  Slice
    sizes target ~4 tasks per active domain, clamped to
    [\[min_batch, max_batch\]] (defaults 1 and unbounded); at
    [jobs = 1] the whole input still arrives in [max_batch]-bounded
    slices, which is what hands a batched solver its lanes.  [f] must
    return exactly one output per input element (checked).
    @raise Invalid_argument on [min_batch < 1] or
    [max_batch < min_batch]. *)

(** {1 Busy/idle accounting}

    Every chunk of pool work a domain executes is timed into a
    per-domain cell: busy nanoseconds, items executed, and the longest
    stall (the widest gap between two consecutive chunk executions
    within one batch — idle time while the batch still had work).
    Sequential fallbacks account busy time and items too (no stall),
    so a [jobs = 1] run reports a utilization row.  Counters are
    cumulative over the process; snapshot-and-diff with
    {!utilization_since} to scope them to a run.  Sampling is only
    exact at quiescent points (no batch in flight), which is where
    every caller reads it. *)

type domain_stats = {
  busy_ns : int64;  (** time spent inside pool tasks *)
  items : int;  (** pool tasks executed (slices count as one each) *)
  longest_stall_ns : int64;  (** watermark since the last reset *)
}

val utilization : unit -> (int * domain_stats) list
(** Cumulative per-domain counters, keyed by domain id, sorted. *)

val utilization_since : (int * domain_stats) list -> (int * domain_stats) list
(** [utilization_since before] diffs the current counters against an
    earlier {!utilization} snapshot, dropping domains that did no work
    in between.  The stall column is the current watermark (a max
    cannot be diffed) — call {!reset_stall_watermarks} at the start of
    the window to scope it. *)

val reset_stall_watermarks : unit -> unit
(** Zero every domain's longest-stall watermark.  Only safe at a
    quiescent point (no batch in flight). *)

(** {1 Explicit pools}

    For callers that want their own worker domains rather than the
    shared global pool (tests, long-lived servers). *)

type t

val create : workers:int -> t
(** Spawn [workers] domains ([0] is valid and fully sequential; the
    submitting domain always participates as an extra worker). *)

val size : t -> int
(** Worker-domain count (excluding the submitter). *)

val map : t -> ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Like {!parallel_map} on this pool.  Not re-entrant: one batch at
    a time, submitted from a single domain. *)

val shutdown : t -> unit
(** Join all worker domains.  The pool must be idle. *)
