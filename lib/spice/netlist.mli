(** Mutable circuit netlists.

    A netlist is a set of named nodes (node 0 is ground, named ["0"])
    and a sequence of named devices.  Cells from [cml_cells] build
    hierarchical device names such as ["x3.q1"], which the defect
    injector uses to locate fault sites. *)

type node = int
(** Node identifier; [gnd] is 0. *)

val gnd : node

type device =
  | Resistor of { name : string; n1 : node; n2 : node; r : float }
  | Capacitor of { name : string; n1 : node; n2 : node; c : float }
  | Diode of { name : string; anode : node; cathode : node; model : Models.diode }
  | Bjt of {
      name : string;
      collector : node;
      base : node;
      emitters : node array;  (** one or more emitters (multi-emitter devices) *)
      model : Models.bjt;
    }
  | Vsource of { name : string; npos : node; nneg : node; wave : Waveform.t }
  | Isource of { name : string; npos : node; nneg : node; wave : Waveform.t }
      (** positive current flows from [npos] through the source into [nneg] *)
  | Vcvs of { name : string; npos : node; nneg : node; cpos : node; cneg : node; gain : float }
  | Vccs of { name : string; npos : node; nneg : node; cpos : node; cneg : node; gm : float }

type t

val create : unit -> t

val copy : t -> t
(** Deep copy; mutations of the copy do not affect the original. *)

val node : t -> string -> node
(** [node t name] returns the node called [name], creating it if
    needed.  ["0"] always denotes ground. *)

val fresh_node : t -> string -> node
(** A new node with a unique name derived from the prefix. *)

val node_count : t -> int
(** Number of nodes including ground. *)

val node_name : t -> node -> string

val find_node : t -> string -> node option

(* Device constructors; every device must have a unique name. *)

val resistor : t -> name:string -> node -> node -> float -> unit
val capacitor : t -> name:string -> node -> node -> float -> unit
val diode : t -> name:string -> ?model:Models.diode -> anode:node -> cathode:node -> unit -> unit

val bjt :
  t -> name:string -> ?model:Models.bjt -> c:node -> b:node -> e:node -> unit -> unit
(** Single-emitter NPN transistor. *)

val bjt_multi :
  t -> name:string -> ?model:Models.bjt -> c:node -> b:node -> emitters:node array -> unit -> unit
(** Multi-emitter NPN transistor (used by the area-optimised
    detectors of the paper's section 6.5). *)

val vsource : t -> name:string -> pos:node -> neg:node -> Waveform.t -> unit
val isource : t -> name:string -> pos:node -> neg:node -> Waveform.t -> unit
val vcvs : t -> name:string -> pos:node -> neg:node -> cpos:node -> cneg:node -> float -> unit
val vccs : t -> name:string -> pos:node -> neg:node -> cpos:node -> cneg:node -> float -> unit

val add_device : t -> device -> unit
(** Low-level insertion; rejects duplicate names. *)

val device_count : t -> int
val devices : t -> device list
(** In insertion order. *)

val iter_devices : t -> (device -> unit) -> unit

val get_device : t -> string -> device
(** @raise Not_found if no device has that name. *)

val mem_device : t -> string -> bool

val set_device : t -> string -> device -> unit
(** Replace the device of that name (the replacement may have a
    different name as long as it stays unique). *)

val remove_device : t -> string -> unit
(** Delete the device. *)

val device_name : device -> string

val device_terminals : device -> (string * node) list
(** Terminal labels and the nodes they connect to, e.g.
    [("c", 5); ("b", 2); ("e", 7)] for a transistor. *)

val rewire_terminal : t -> dev:string -> terminal:string -> node -> unit
(** Reconnect one terminal of a device to another node; used to model
    opens by splitting a connection.
    @raise Not_found if the device or terminal does not exist. *)
