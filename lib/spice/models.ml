let boltzmann_vt = 0.025852

type diode = { d_is : float; d_n : float; d_cj : float }

let default_diode = { d_is = 1e-16; d_n = 1.0; d_cj = 10e-15 }

type bjt = { q_is : float; q_bf : float; q_br : float; q_cje : float; q_cjc : float }

(* Is chosen so that VBE is about 0.9 V at 0.5 mA, matching the
   "VBE = 900 mV technology" the paper quotes. *)
let default_bjt = { q_is = 4e-19; q_bf = 100.0; q_br = 1.0; q_cje = 30e-15; q_cjc = 15e-15 }

let limexp_arg = 80.0

let limexp x =
  if x <= limexp_arg then exp x else exp limexp_arg *. (1.0 +. x -. limexp_arg)

let junction_current ~is ~nvt v =
  let e = limexp (v /. nvt) in
  let i = is *. (e -. 1.0) in
  let g =
    if v /. nvt <= limexp_arg then is *. e /. nvt
    else is *. exp limexp_arg /. nvt
  in
  (i, g)

let vcrit ~is ~nvt = nvt *. log (nvt /. (Float.sqrt 2.0 *. is))

(* Straight port of the classic SPICE3 pnjlim. *)
let pnjlim ~vnew ~vold ~nvt ~vcrit =
  if vnew > vcrit && Float.abs (vnew -. vold) > 2.0 *. nvt then begin
    if vold > 0.0 then begin
      let arg = 1.0 +. ((vnew -. vold) /. nvt) in
      if arg > 0.0 then vold +. (nvt *. log arg) else vcrit
    end
    else nvt *. log (vnew /. nvt)
  end
  else vnew
