(** Time-dependent source waveforms, SPICE-style. *)

type t =
  | Dc of float  (** constant value *)
  | Pulse of {
      v1 : float;  (** initial value *)
      v2 : float;  (** pulsed value *)
      delay : float;  (** time of the first rising edge start *)
      rise : float;  (** rise time (> 0) *)
      fall : float;  (** fall time (> 0) *)
      width : float;  (** time spent at [v2] *)
      period : float;  (** repetition period; [<= 0] means a single pulse *)
    }
  | Sine of {
      offset : float;
      ampl : float;
      freq : float;  (** in Hz *)
      delay : float;  (** value is held at the phase-only value before [delay] *)
      phase : float;  (** in radians *)
    }
  | Pwl of (float * float) array
      (** piecewise-linear [(time, value)] knots, strictly increasing
          times; the value is held constant outside the knot range *)

val value : t -> float -> float
(** [value w t] is the source value at time [t]. *)

val breakpoints : t -> tstop:float -> float list
(** Times in [(0, tstop)] where the waveform has a slope
    discontinuity; the transient engine aligns time steps to these.
    The list is sorted and duplicate-free. *)

val square : ?delay:float -> v_low:float -> v_high:float -> freq:float -> edge:float -> unit -> t
(** [square ~v_low ~v_high ~freq ~edge ()] is a 50%-duty repetitive
    pulse with the given edge (rise = fall) time, convenient for
    clock-like stimuli. *)
