type t =
  | Dc of float
  | Pulse of {
      v1 : float;
      v2 : float;
      delay : float;
      rise : float;
      fall : float;
      width : float;
      period : float;
    }
  | Sine of { offset : float; ampl : float; freq : float; delay : float; phase : float }
  | Pwl of (float * float) array

let pulse_value p t =
  match p with
  | Pulse { v1; v2; delay; rise; fall; width; period } ->
      if t < delay then v1
      else begin
        let trel =
          let dt = t -. delay in
          if period > 0.0 then Float.rem dt period else dt
        in
        if trel < rise then v1 +. ((v2 -. v1) *. trel /. rise)
        else if trel < rise +. width then v2
        else if trel < rise +. width +. fall then
          v2 +. ((v1 -. v2) *. (trel -. rise -. width) /. fall)
        else v1
      end
  | Dc _ | Sine _ | Pwl _ -> invalid_arg "pulse_value"

let pwl_value knots t =
  let n = Array.length knots in
  if n = 0 then 0.0
  else begin
    let t0, v0 = knots.(0) and tn, vn = knots.(n - 1) in
    if t <= t0 then v0
    else if t >= tn then vn
    else begin
      (* binary search for the segment containing t *)
      let rec find lo hi =
        if hi - lo <= 1 then lo
        else begin
          let mid = (lo + hi) / 2 in
          if fst knots.(mid) <= t then find mid hi else find lo mid
        end
      in
      let i = find 0 (n - 1) in
      let ta, va = knots.(i) and tb, vb = knots.(i + 1) in
      va +. ((vb -. va) *. (t -. ta) /. (tb -. ta))
    end
  end

let value w t =
  match w with
  | Dc v -> v
  | Pulse _ -> pulse_value w t
  | Sine { offset; ampl; freq; delay; phase } ->
      if t < delay then offset +. (ampl *. sin phase)
      else offset +. (ampl *. sin ((2.0 *. Float.pi *. freq *. (t -. delay)) +. phase))
  | Pwl knots -> pwl_value knots t

let breakpoints w ~tstop =
  let points =
    match w with
    | Dc _ -> []
    | Sine { delay; _ } -> [ delay ]
    | Pwl knots -> Array.to_list (Array.map fst knots)
    | Pulse { delay; rise; fall; width; period; _ } ->
        let edges_of base = [ base; base +. rise; base +. rise +. width; base +. rise +. width +. fall ] in
        if period > 0.0 then begin
          let rec cycles base acc =
            if base > tstop then acc else cycles (base +. period) (List.rev_append (edges_of base) acc)
          in
          cycles delay []
        end
        else edges_of delay
  in
  let inside = List.filter (fun t -> t > 0.0 && t < tstop) points in
  List.sort_uniq compare inside

let square ?(delay = 0.0) ~v_low ~v_high ~freq ~edge () =
  let period = 1.0 /. freq in
  Pulse
    {
      v1 = v_low;
      v2 = v_high;
      delay;
      rise = edge;
      fall = edge;
      width = (period /. 2.0) -. edge;
      period;
    }
