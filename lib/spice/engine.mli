(** The nonlinear MNA engine: compiles a {!Netlist.t} into a
    simulation structure, assembles the Newton companion system and
    solves DC operating points with gmin/source-stepping homotopies.
    Transient analysis lives in {!Transient}, sweeps in {!Sweep}. *)

type solver_kind =
  | Dense_solver
  | Sparse_solver
  | Auto  (** sparse above 60 unknowns, dense below *)

type options = {
  reltol : float;  (** relative convergence tolerance (default 1e-4) *)
  vntol : float;  (** absolute node-voltage tolerance, V (default 1e-6) *)
  abstol : float;  (** absolute branch-current tolerance, A (default 1e-12) *)
  gmin : float;  (** conductance added across every pn junction (default 1e-12) *)
  max_iter : int;  (** Newton iteration limit per solve (default 100) *)
  solver : solver_kind;
  bypass : bool;
      (** SPICE3-style device bypass (default [true]): skip the model
          evaluation of a junction device whose terminal voltages are
          within a tenth of the reltol/vntol convergence tolerance of
          its last full evaluation, replaying the cached stamps
          instead.  Node voltages stay within 10 x [vntol] of the
          bypass-off solution. *)
  lte_reltol_factor : float;
      (** multiplier on [reltol] for the transient local-truncation
          error acceptance test (default 30.0) *)
  lte_abstol : float;
      (** absolute floor of the transient local-truncation error
          acceptance test, V (default 1e-4) *)
}

val default_options : options

exception No_convergence of string
(** Raised when every homotopy fails to converge. *)

type sim
(** A compiled simulation.  Compilation snapshots the netlist: later
    netlist mutations are not seen. *)

type integ =
  | Dcop  (** capacitors open *)
  | Tran of { geq : float; trap : bool }
      (** companion-model mode: [geq] is the multiplier [1/h]
          (backward Euler, [trap = false]) or [2/h] (trapezoidal,
          [trap = true]) applied to each capacitance *)

val compile : ?options:options -> Netlist.t -> sim

val options : sim -> options
val unknown_count : sim -> int

val node_unknowns : sim -> int
(** Number of node-voltage unknowns (unknowns beyond this index are
    branch currents).  Together with {!unknown_count} this identifies
    layout-compatible sims: a warm start may only be seeded from a
    solution of a sim with the same counts. *)

val node_unknown : Netlist.node -> int
(** Index of a node voltage in a solution vector, or [-1] for
    ground. *)

val voltage : float array -> Netlist.node -> float
(** Voltage of a node in a solution vector (0 for ground). *)

val branch_unknown : sim -> string -> int
(** Index of the branch current of the named voltage source or VCVS.
    @raise Not_found if there is no such branch. *)

val newton :
  sim ->
  time:float ->
  integ:integ ->
  ?srcscale:float ->
  ?gshunt:float ->
  float array ->
  (float array * int) option
(** One Newton solve from the given initial vector; [Some (x, iters)]
    on convergence.  [gshunt] adds a conductance from every node to
    ground (gmin stepping); [srcscale] scales all independent
    sources (source stepping). *)

val dc_operating_point : ?time:float -> sim -> float array
(** DC solution with sources evaluated at [time] (default 0); tries
    plain Newton, then gmin stepping, then source stepping.
    @raise No_convergence if all strategies fail. *)

val dc_from : ?time:float -> sim -> float array -> float array
(** Like {!dc_operating_point} but starting from a previous solution
    (used by sweeps for continuation; falls back to the homotopies
    when the warm start fails). *)

val set_junction_states : sim -> float array -> unit
(** Reset every device's junction-limiting memory to the voltages
    implied by the given solution; called by the transient loop when
    restarting from a known state. *)

val update_capacitor_states : sim -> float array -> h:float -> trap:bool -> unit
(** Commit an accepted time step: recompute and store each
    capacitor's voltage and current. *)

val init_capacitor_states : sim -> float array -> unit
(** Initialise capacitor memory from a DC solution (zero current). *)

type solver_stats = {
  symbolic_factorizations : int;
      (** full sparse LU factorizations (symbolic analysis + numeric),
          performed once per Jacobian pattern or after a pivot
          degraded *)
  numeric_refactorizations : int;
      (** numeric-only refactorizations reusing the cached symbolic
          analysis — the cheap per-Newton-iteration path *)
  shared_symbolic : int;
      (** symbolic analyses adopted wholesale from a donor sim via
          {!share_symbolic} instead of being recomputed — batch lanes
          of one design pay for one ordering + pattern analysis *)
  newton_iters : int;
      (** Newton iterations (assemble + linear solve) since
          {!compile} *)
  device_loads : int;
      (** junction-device (diode/BJT) load opportunities across all
          iterations *)
  bypassed_loads : int;
      (** of {!field-device_loads}, how many replayed cached stamps
          instead of re-evaluating the model *)
  diode_loads : int;  (** per-class attribution of {!field-device_loads} *)
  diode_bypassed : int;
  bjt_loads : int;
  bjt_bypassed : int;
  reused_factorizations : int;
      (** linear solves that reused the previous factorization
          outright because the assembled matrix was bit-identical to
          the previous load's (every junction bypassed, same
          integration coefficient and gshunt) — dense: triangular
          substitution only; sparse: no numeric refactorization *)
  skipped_solves : int;
      (** Newton iterations accepted without a linear solve because
          the whole system (matrix {e and} RHS) was bit-identical to
          the one the previous iteration just solved — the solution is
          the current iterate, exactly *)
  fallback_small_pivot : int;
      (** stability fallbacks to a full factorization because a
          recycled pivot fell below the absolute threshold *)
  fallback_unstable_pivot : int;
      (** ditto, pivot below the stability fraction of its column *)
  fallback_pattern : int;
      (** ditto, the cached factor's pattern no longer matched *)
  lu_nnz_factors : int;
      (** nnz(L) + nnz(U) of the cached sparse factor; 0 for the dense
          backend or before the first factorization *)
  lu_fill_ratio : float;
      (** [lu_nnz_factors] over nnz(A) — 1.0 means the factors stored
          no entries beyond the matrix's own *)
  lu_ordering : string;
      (** column ordering of the cached factor (["natural"] or
          ["amd"]); [""] when there is no sparse factor *)
  lu_pivot_growth : float;
      (** element-growth estimate max|U|/max|A| of the cached factor
          against the current matrix values
          ({!Cml_numerics.Sparse_lu.health}); 0 without one *)
  lu_condition : float;
      (** cheap condition estimate from the U-diagonal extremes; 0
          without a sparse factor *)
}

val solver_stats : sim -> solver_stats
(** Cumulative counters since {!compile}; the factorization counters
    are zero for the dense backend. *)

val zero_stats : solver_stats
(** All-zero record, the [~since] of a fresh sim. *)

val set_introspect : sim -> Introspect.t option -> unit
(** Attach (or detach) a solver-introspection recorder.  With [None]
    — the default — every introspection hook on the Newton/transient
    hot path costs one load and one branch; with [Some r] the
    recorder captures per-iteration delta norms with worst-unknown
    and worst-device attribution, LU fallback reasons and (via
    {!Transient}) LTE blame and the dt timeline.  Attaching a
    recorder never changes simulation results — bit-identical
    waveforms, qcheck-enforced. *)

val introspect : sim -> Introspect.t option

val device_label : sim -> int -> string
(** Human-readable label for a device index reported by
    {!Introspect} worst-device attribution: the BJT's netlist name,
    or [diode[a-k]] terminals; out-of-range indices render as
    [device[i]]. *)

val lu_fill : sim -> (int * int) option
(** [(nnz L, nnz U)] of the cached sparse LU factor, [None] for the
    dense backend or before the first factorization. *)

val share_symbolic : donor:sim -> sim -> unit
(** Offer the donor's cached sparse symbolic analysis (column
    ordering, L/U patterns, pivot order) to [sim], to be adopted at
    its first factorization if the Jacobian patterns match — the
    batch scheduler calls this so K lanes of one design run one
    symbolic analysis and K numeric refactorizations.  A stale or
    mismatched offer is harmless: adoption silently falls back to a
    full factorization.  No-op unless both sims use the sparse
    backend and the donor has factored. *)

val publish_metrics : ?since:solver_stats -> sim -> unit
(** Fold this sim's counter movement since [since] (default: a fresh
    sim) into the global {!Cml_telemetry.Metrics} registry
    ([solver.newton_iters], [engine.device_loads],
    [engine.bypassed_loads], per-class [engine.diode_*] /
    [engine.bjt_*], [solver.*_refactorizations],
    [solver.reused_factorizations], [solver.skipped_solves],
    [solver.shared_symbolic], [solver.fallback.*],
    [solver.lu_fill_nnz], [solver.lu_fill_ratio],
    [solver.lu_pivot_growth], [solver.lu_condition],
    [solver.ordering.*]).  Called at run boundaries, never inside the
    Newton loop. *)

val ac_system :
  sim -> float array -> (int * int * float) list * (int * int * float) list
(** Small-signal system at the given (converged) operating point:
    [(g_entries, c_entries)] such that the AC response solves
    [(G + j*omega*C) x = b].  [G] is the Newton Jacobian at the
    operating point (junctions linearised, independent sources
    zeroed structurally — their rows stay, their excitation comes
    from the caller's [b]); [C] collects every capacitor stamp.
    Ground rows/columns are already dropped; entries may repeat and
    must be accumulated. *)

type bjt_op = {
  q_name : string;  (** device name; dual-emitter devices report one
                        entry per emitter, suffixed [#e<k>] *)
  vbe : float;
  vce : float;
  ic : float;  (** collector current (A) *)
  ib : float;
}

val bjt_report : sim -> float array -> bjt_op list
(** SPICE-style operating-point report: bias point of every
    transistor at the given solution, in netlist order. *)
