type config = {
  tstop : float;
  max_step : float;
  min_step : float;
  lte_control : bool;
  record_every : int;
}

let config ?max_step ?min_step ?(lte_control = true) ?(record_every = 1) ~tstop () =
  let max_step = match max_step with Some h -> h | None -> tstop /. 200.0 in
  let min_step = match min_step with Some h -> h | None -> max_step /. 1e6 in
  { tstop; max_step; min_step; lte_control; record_every }

type stats = {
  accepted_steps : int;
  rejected_steps : int;
  lte_rejections : int;
  newton_iters : int;
  device_loads : int;
  bypassed_loads : int;
  guided_seeds : int;
  cold_fallbacks : int;
}

type result = {
  times : float array;
  data : float array array;
  sim : Engine.sim;
  stats : stats;
}

let collect_breakpoints net ~tstop =
  let acc = ref [] in
  Netlist.iter_devices net (fun d ->
      match d with
      | Netlist.Vsource { wave; _ } | Netlist.Isource { wave; _ } ->
          acc := List.rev_append (Waveform.breakpoints wave ~tstop) !acc
      | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Diode _ | Netlist.Bjt _
      | Netlist.Vcvs _ | Netlist.Vccs _ -> ());
  Array.of_list (List.sort_uniq compare (tstop :: !acc))

(* Acceptance test for the predictor-based step control: the
   trapezoidal corrector must stay within a generous band around the
   linear prediction from the two previous points. *)
let lte_ok opts xpred x =
  let band = ref true in
  let reltol = opts.Engine.lte_reltol_factor *. opts.Engine.reltol
  and abstol = opts.Engine.lte_abstol in
  Array.iteri
    (fun i xp ->
      let tol = abstol +. (reltol *. Float.max (Float.abs xp) (Float.abs x.(i))) in
      if Float.abs (x.(i) -. xp) > tol then band := false)
    xpred;
  !band

(* Recorded snapshots live in one flat row-major matrix that doubles
   on demand — one blit per accepted step instead of an [Array.copy]
   cons onto a list; rows are only materialised once at the end. *)
type recorder = {
  rnunk : int;
  mutable rbuf : float array;
  mutable rcap : int;  (** rows the buffer can hold *)
  mutable rlen : int;  (** rows recorded *)
}

let recorder_create nunk =
  let cap = 256 in
  { rnunk = nunk; rbuf = Array.make (cap * nunk) 0.0; rcap = cap; rlen = 0 }

let recorder_push r x =
  if r.rlen = r.rcap then begin
    let cap = 2 * r.rcap in
    let buf = Array.make (cap * r.rnunk) 0.0 in
    Array.blit r.rbuf 0 buf 0 (r.rlen * r.rnunk);
    r.rbuf <- buf;
    r.rcap <- cap
  end;
  Array.blit x 0 r.rbuf (r.rlen * r.rnunk) r.rnunk;
  r.rlen <- r.rlen + 1

let recorder_rows r =
  Array.init r.rlen (fun k -> Array.sub r.rbuf (k * r.rnunk) r.rnunk)

(* Streaming observers: a probe set that samples selected unknowns at
   every *accepted* step — including the ones [record_every]
   discards — without materialising the dense [times]/[data] matrix.
   Each probe streams into its own growable [Fbuf]; the shared time
   axis is recorded once.  The disabled cost is the [observe] option
   match, gated in bench/perf.ml next to the telemetry hooks. *)
type probe = {
  pb_name : string;
  pb_index : int;  (* unknown index; -1 (ground) streams zeros *)
  pb_values : Cml_numerics.Fbuf.t;
}

type observers = {
  ob_times : Cml_numerics.Fbuf.t;
  ob_probes : probe array;
  ob_on_step : (float -> float array -> unit) option;
}

let observers ?on_step probes =
  let mk (name, index) =
    if index < -1 then
      invalid_arg (Printf.sprintf "Transient.observers: bad unknown index %d for %s" index name);
    { pb_name = name; pb_index = index; pb_values = Cml_numerics.Fbuf.create () }
  in
  {
    ob_times = Cml_numerics.Fbuf.create ();
    ob_probes = Array.of_list (List.map mk probes);
    ob_on_step = on_step;
  }

let observe obs t x =
  match obs with
  | None -> ()
  | Some o ->
      Cml_numerics.Fbuf.push o.ob_times t;
      Array.iter
        (fun p ->
          Cml_numerics.Fbuf.push p.pb_values
            (if p.pb_index < 0 then 0.0 else Array.unsafe_get x p.pb_index))
        o.ob_probes;
      (match o.ob_on_step with None -> () | Some f -> f t x)

let probe_names o = Array.to_list (Array.map (fun p -> p.pb_name) o.ob_probes)

let probe_length o = Cml_numerics.Fbuf.length o.ob_times

let probe_samples o name =
  match Array.find_opt (fun p -> p.pb_name = name) o.ob_probes with
  | None -> raise Not_found
  | Some p -> (Cml_numerics.Fbuf.to_array o.ob_times, Cml_numerics.Fbuf.to_array p.pb_values)

let probe_list o =
  let times = Cml_numerics.Fbuf.to_array o.ob_times in
  Array.to_list
    (Array.map (fun p -> (p.pb_name, times, Cml_numerics.Fbuf.to_array p.pb_values)) o.ob_probes)

(* Run-boundary telemetry: one registry publish and one span per
   transient run — nothing inside the step loop. *)
module M = Cml_telemetry.Metrics

let m_runs = M.counter "transient.runs"
let m_accepted = M.counter "transient.accepted_steps"
let m_rejected = M.counter "transient.rejected_steps"
let m_lte = M.counter "transient.lte_rejections"
let m_guided = M.counter "transient.guided_seeds"
let m_cold = M.counter "transient.cold_fallbacks"
let m_seconds = M.histogram "transient.run_seconds"

let publish_run ~stats0 ~t_begin sim stats span =
  M.incr m_runs;
  M.add m_accepted stats.accepted_steps;
  M.add m_rejected stats.rejected_steps;
  M.add m_lte stats.lte_rejections;
  M.add m_guided stats.guided_seeds;
  M.add m_cold stats.cold_fallbacks;
  M.observe m_seconds
    (Cml_telemetry.Clock.ns_to_s (Int64.sub (Cml_telemetry.Clock.now_ns ()) t_begin));
  Engine.publish_metrics ~since:stats0 sim;
  Cml_telemetry.Trace.finish ~cat:"sim" "transient" span

(* Index of the guide sample closest to [t] (guide times are sorted). *)
let nearest_index times t =
  let n = Array.length times in
  let lo = ref 0 and hi = ref (n - 1) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if times.(mid) <= t then lo := mid else hi := mid
  done;
  if Float.abs (times.(!hi) -. t) < Float.abs (times.(!lo) -. t) then !hi else !lo

(* ------------------------------------------------------------------ *)
(* The resumable stepper.

   The step loop is written against an explicit state record instead
   of loop-local refs so that a caller can advance a simulation to an
   intermediate target time, hand control elsewhere, and resume — the
   primitive the variant-lockstep batch scheduler is built on.  A
   classic [run] is [stepper_create] + one [stepper_advance] to
   [tstop] + [stepper_finish], and is bit-identical to the former
   monolithic loop because the breakpoint schedule always ends at
   [tstop]: the target never clips a step the breakpoints would not
   have clipped. *)

type stepper = {
  st_sim : Engine.sim;
  st_cfg : config;
  st_opts : Engine.options;
  st_nunk : int;
  st_breakpoints : float array;
  st_guide : (float array * float array array) option;
  st_observers : observers option;
  st_stats0 : Engine.solver_stats;
  st_t_begin : int64;
  st_span : int64;  (** Trace.start token *)
  st_times : Cml_numerics.Fbuf.t;
  st_rec : recorder option;  (** [None] when [record_every = 0]: probes only *)
  st_introspect : Introspect.t option;
      (** the sim's recorder, cached at creation; every hook below is
          one match when [None] *)
  mutable st_streak : int;  (** consecutive rejections at the current instant *)
  mutable st_nsnap : int;
  mutable st_accepted : int;
  mutable st_rejected : int;
  mutable st_lte : int;
  mutable st_guided : int;
  mutable st_cold : int;
  mutable st_x_n : float array;  (** last committed solution *)
  mutable st_x_nm1 : float array;
  st_xpred : float array;
  mutable st_h_prev : float;
  mutable st_t : float;
  mutable st_h : float;
  mutable st_bp_index : int;
  mutable st_force_be : bool;
}

let stepper_create ?x0 ?guide ?breakpoints ?observers sim net cfg =
  let opts = Engine.options sim in
  let nunk = Engine.unknown_count sim in
  let breakpoints =
    match breakpoints with
    | Some bps -> bps
    | None -> collect_breakpoints net ~tstop:cfg.tstop
  in
  (* a guide trajectory (typically the nominal run of a defect
     campaign) seeds each step's Newton solve with the nominal
     solution nearest in time; it must come from a layout-compatible
     sim, otherwise it is ignored *)
  let guide =
    match guide with
    | Some g when Array.length g.times > 0 && Array.length g.data > 0
                  && Array.length g.data.(0) = nunk ->
        Some (g.times, g.data)
    | Some _ | None -> None
  in
  let stats0 = Engine.solver_stats sim in
  let t_begin = Cml_telemetry.Clock.now_ns () in
  let span = Cml_telemetry.Trace.start () in
  let guided_seeds = ref 0 and cold_fallbacks = ref 0 in
  let x_start =
    match x0 with
    | Some x -> x
    | None -> (
        match guide with
        | Some (_, gdata) -> (
            (* warm DC start from the guide's initial point, falling
               back to the full homotopy ladder if it diverges *)
            match Engine.newton sim ~time:0.0 ~integ:Engine.Dcop gdata.(0) with
            | Some (x, _) ->
                incr guided_seeds;
                x
            | None ->
                incr cold_fallbacks;
                Engine.dc_operating_point ~time:0.0 sim)
        | None -> Engine.dc_operating_point ~time:0.0 sim)
  in
  Engine.init_capacitor_states sim x_start;
  let st =
    {
      st_sim = sim;
      st_cfg = cfg;
      st_opts = opts;
      st_nunk = nunk;
      st_breakpoints = breakpoints;
      st_guide = guide;
      st_observers = observers;
      st_stats0 = stats0;
      st_t_begin = t_begin;
      st_span = span;
      st_times = Cml_numerics.Fbuf.create ();
      st_rec = (if cfg.record_every > 0 then Some (recorder_create nunk) else None);
      st_introspect = Engine.introspect sim;
      st_streak = 0;
      st_nsnap = 0;
      st_accepted = 0;
      st_rejected = 0;
      st_lte = 0;
      st_guided = !guided_seeds;
      st_cold = !cold_fallbacks;
      st_x_n = x_start;
      st_x_nm1 = x_start;
      st_xpred = Array.make nunk 0.0;
      st_h_prev = 0.0;
      st_t = 0.0;
      st_h = cfg.max_step /. 10.0;
      st_bp_index = 0;
      st_force_be = true;
    }
  in
  (* skip any breakpoint at or before t = 0 *)
  while
    st.st_bp_index < Array.length st.st_breakpoints
    && st.st_breakpoints.(st.st_bp_index) <= 0.0
  do
    st.st_bp_index <- st.st_bp_index + 1
  done;
  st

(* observers see every accepted step; [record_every] only thins the
   dense matrix *)
let stepper_record st t x =
  observe st.st_observers t x;
  (match st.st_rec with
  | Some r ->
      if st.st_nsnap mod st.st_cfg.record_every = 0 then begin
        Cml_numerics.Fbuf.push st.st_times t;
        recorder_push r x
      end
  | None -> ());
  st.st_nsnap <- st.st_nsnap + 1

(* Advance committed time to [target] (clamped to [tstop]).  A stop at
   a source breakpoint keeps the classic semantics (force a BE restart
   with a cautious step); a stop that is only the caller's target is a
   plain clamp — the step commits normally and the step size keeps
   growing, so re-syncing a batch lane at a macro grid point does not
   poison its local step control.
   @raise Engine.No_convergence when a step fails at [min_step]. *)
let stepper_advance st target =
  let cfg = st.st_cfg and sim = st.st_sim in
  let target = Float.min target cfg.tstop in
  while st.st_t < target -. (1e-12 *. cfg.tstop) do
    let next_bp =
      if st.st_bp_index < Array.length st.st_breakpoints then
        st.st_breakpoints.(st.st_bp_index)
      else cfg.tstop
    in
    let next_stop, is_bp = if next_bp <= target then (next_bp, true) else (target, false) in
    let hitting = st.st_t +. st.st_h >= next_stop -. (0.01 *. st.st_h) in
    let t_next = if hitting then next_stop else st.st_t +. st.st_h in
    let h_step = t_next -. st.st_t in
    let trap = (not st.st_force_be) && st.st_h_prev > 0.0 in
    let geq = if trap then 2.0 /. h_step else 1.0 /. h_step in
    let integ = Engine.Tran { geq; trap } in
    (* Seed order matters for speed, not correctness.  The previous
       accepted point is this trajectory's own best predictor: it keeps
       the junction voltages within the bypass window, so most device
       loads replay their caches and Newton converges in the minimum
       number of iterations.  Seeding from the guide instead (the
       nominal trajectory of a defect campaign) re-settles every
       junction against a foreign operating point each step — measured
       2.4x slower over a defect campaign — so the guide is demoted to
       a rescue: it only seeds a retry after the own-point seed failed,
       where a known-good nearby solution genuinely helps.
       [attempt_guided] travels alongside the solution so
       [guided_seeds] only counts *accepted* guide-rescued steps: an
       LTE rejection retries the same instant with a smaller step, and
       counting each retry would overstate the guide's contribution. *)
    let attempt, attempt_guided =
      match Engine.newton sim ~time:t_next ~integ st.st_x_n with
      | Some _ as ok -> (ok, false)
      | None -> begin
          match st.st_guide with
          | Some (gtimes, gdata) ->
              st.st_cold <- st.st_cold + 1;
              let seed = gdata.(nearest_index gtimes t_next) in
              (Engine.newton sim ~time:t_next ~integ seed, true)
          | None -> (None, false)
        end
    in
    let accepted =
      match attempt with
      | None -> None
      | Some (x, _iters) ->
          if cfg.lte_control && st.st_h_prev > 0.0 && not st.st_force_be then begin
            let scale = h_step /. st.st_h_prev in
            let xn = st.st_x_n and xnm1 = st.st_x_nm1 in
            let xpred = st.st_xpred in
            for i = 0 to st.st_nunk - 1 do
              xpred.(i) <- xn.(i) +. ((xn.(i) -. xnm1.(i)) *. scale)
            done;
            if lte_ok st.st_opts xpred x then Some x
            else begin
              st.st_lte <- st.st_lte + 1;
              (* blame scan only; the accept/reject decision above is
                 [lte_ok]'s alone, so recording cannot flip a step *)
              Introspect.note_lte st.st_introspect ~time:t_next ~h:h_step ~xpred ~x
                ~reltol:(st.st_opts.Engine.lte_reltol_factor *. st.st_opts.Engine.reltol)
                ~abstol:st.st_opts.Engine.lte_abstol ~cascade:(st.st_streak + 1);
              None
            end
          end
          else Some x
    in
    match accepted with
    | Some x ->
        if attempt_guided then st.st_guided <- st.st_guided + 1;
        st.st_streak <- 0;
        Engine.update_capacitor_states sim x ~h:h_step ~trap;
        st.st_x_nm1 <- st.st_x_n;
        st.st_x_n <- x;
        st.st_h_prev <- h_step;
        st.st_t <- t_next;
        st.st_accepted <- st.st_accepted + 1;
        (* live-progress hook: one atomic load + branch when no run is
           being observed (gated by `make telemetry-overhead`) *)
        Cml_telemetry.Progress.note_step ();
        Introspect.note_dt st.st_introspect ~t:t_next ~h:h_step
          ~cause:
            (if attempt_guided then Introspect.cause_guide
             else if hitting && is_bp then Introspect.cause_breakpoint
             else Introspect.cause_accept);
        stepper_record st st.st_t x;
        if hitting && is_bp then begin
          st.st_bp_index <- st.st_bp_index + 1;
          st.st_force_be <- true;
          (* restart cautiously after a slope discontinuity *)
          st.st_h <- Float.max cfg.min_step (Float.min st.st_h (cfg.max_step /. 10.0))
        end
        else begin
          st.st_force_be <- false;
          st.st_h <- Float.min cfg.max_step (st.st_h *. 1.4)
        end
    | None ->
        st.st_rejected <- st.st_rejected + 1;
        st.st_streak <- st.st_streak + 1;
        Introspect.note_dt st.st_introspect ~t:t_next ~h:h_step
          ~cause:
            (match attempt with
            | None -> Introspect.cause_newton_fail
            | Some _ -> Introspect.cause_lte);
        let h' = h_step /. 4.0 in
        if h' < cfg.min_step then
          raise
            (Engine.No_convergence
               (Printf.sprintf "transient step failed at t = %.6g s (h = %.3g)" st.st_t h_step));
        st.st_h <- h';
        st.st_force_be <- true
  done

let stepper_finish st =
  let stats1 = Engine.solver_stats st.st_sim in
  let stats0 = st.st_stats0 in
  let stats =
    {
      accepted_steps = st.st_accepted;
      rejected_steps = st.st_rejected;
      lte_rejections = st.st_lte;
      newton_iters = stats1.Engine.newton_iters - stats0.Engine.newton_iters;
      device_loads = stats1.Engine.device_loads - stats0.Engine.device_loads;
      bypassed_loads = stats1.Engine.bypassed_loads - stats0.Engine.bypassed_loads;
      guided_seeds = st.st_guided;
      cold_fallbacks = st.st_cold;
    }
  in
  publish_run ~stats0 ~t_begin:st.st_t_begin st.st_sim stats st.st_span;
  {
    times = Cml_numerics.Fbuf.to_array st.st_times;
    data = (match st.st_rec with Some r -> recorder_rows r | None -> [||]);
    sim = st.st_sim;
    stats;
  }

let run ?x0 ?guide ?breakpoints ?observers sim net cfg =
  let st = stepper_create ?x0 ?guide ?breakpoints ?observers sim net cfg in
  stepper_record st 0.0 st.st_x_n;
  stepper_advance st cfg.tstop;
  stepper_finish st

(* ------------------------------------------------------------------ *)
(* Variant-lockstep batch runs.

   K lanes (variant sims of one stimulus) advance through a shared
   macro time grid; between grid points each lane sub-steps with its
   own adaptive control, and at each grid point the committed lane
   states are staged through a flat Bigarray batch plane.  Lanes that
   fail Newton below [min_step] retire from the batch without
   stalling the others. *)

type lane_result =
  | Lane_done of result
  | Lane_failed of string
  | Lane_incompatible

let m_batch_runs = M.counter "transient.batch_runs"
let m_batch_lanes = M.counter "transient.batch_lanes"
let m_batch_macro_steps = M.counter "transient.batch_macro_steps"
let m_batch_diverged = M.counter "transient.batch_retired_diverged"
let m_batch_incompatible = M.counter "transient.batch_retired_incompatible"
let m_batch_size = M.histogram "transient.batch_size"

(* The macro grid the lanes re-synchronise on: a thinned copy of the
   guide's accepted instants when warm-starting (a re-sync point per
   accepted step would force every lane to clamp at instants it would
   not otherwise visit — measured a few percent of extra steps over a
   campaign — and retiring a lane a few steps later is cheap),
   otherwise the source breakpoints padded with a coarse uniform
   grid. *)
let macro_sync_stride = 16

let macro_grid ?guide ~breakpoints cfg =
  let interior t = t > 0.0 && t < cfg.tstop in
  let pts =
    match guide with
    | Some g when Array.length g.times > 1 ->
        List.filteri (fun i _ -> i mod macro_sync_stride = 0)
          (List.filter interior (Array.to_list g.times))
    | _ ->
        let coarse = ref [] in
        let step = 16.0 *. cfg.max_step in
        let t = ref step in
        while !t < cfg.tstop do
          coarse := !t :: !coarse;
          t := !t +. step
        done;
        List.filter interior (Array.to_list breakpoints) @ !coarse
  in
  Array.of_list (List.sort_uniq compare (cfg.tstop :: pts))

let run_batch ?guide ?breakpoints lanes net cfg =
  let module Batch = Cml_numerics.Batch in
  let n = Array.length lanes in
  if n = 0 then [||]
  else begin
    let breakpoints =
      match breakpoints with
      | Some bps -> bps
      | None -> collect_breakpoints net ~tstop:cfg.tstop
    in
    let grid = macro_grid ?guide ~breakpoints cfg in
    let width = Engine.unknown_count (fst lanes.(0)) in
    let batch = Batch.create ~lanes:n ~width in
    M.incr m_batch_runs;
    M.add m_batch_lanes n;
    M.observe m_batch_size (float_of_int n);
    let steppers = Array.make n None in
    let failures = Array.make n "" in
    (* lanes of one design share one sparse symbolic analysis: the
       first lane to factor (stepper creation runs the initial DC
       solve) becomes the donor for every later lane, which then only
       refactorizes numerically on the adopted ordering + patterns *)
    let donor = ref None in
    Array.iteri
      (fun lane (sim, observers) ->
        if Engine.unknown_count sim <> width then
          Batch.retire batch lane Batch.Incompatible
        else begin
          (match !donor with Some d -> Engine.share_symbolic ~donor:d sim | None -> ());
          match stepper_create ?guide ~breakpoints ?observers sim net cfg with
          | st ->
              stepper_record st 0.0 st.st_x_n;
              Batch.write_lane batch lane st.st_x_n;
              steppers.(lane) <- Some st;
              if !donor = None then donor := Some sim
          | exception Engine.No_convergence msg ->
              failures.(lane) <- msg;
              Batch.retire batch lane Batch.Diverged
        end)
      lanes;
    Array.iter
      (fun target ->
        if Batch.live_count batch > 0 then begin
          M.incr m_batch_macro_steps;
          Batch.iter_live
            (fun lane ->
              match steppers.(lane) with
              | None -> ()
              | Some st -> (
                  try
                    stepper_advance st target;
                    Batch.write_lane batch lane st.st_x_n
                  with Engine.No_convergence msg ->
                    failures.(lane) <- msg;
                    Batch.retire batch lane Batch.Diverged))
            batch
        end)
      grid;
    let results =
      Array.init n (fun lane ->
          match Batch.status batch lane with
          | Some Batch.Diverged -> Lane_failed failures.(lane)
          | Some Batch.Incompatible -> Lane_incompatible
          | Some Batch.Done | None -> (
              match steppers.(lane) with
              | Some st ->
                  Batch.retire batch lane Batch.Done;
                  Lane_done (stepper_finish st)
              | None -> assert false))
    in
    M.add m_batch_diverged (Batch.retired_count batch Batch.Diverged);
    M.add m_batch_incompatible (Batch.retired_count batch Batch.Incompatible);
    results
  end

let node_trace r nd =
  let idx = Engine.node_unknown nd in
  Array.map (fun x -> if idx < 0 then 0.0 else x.(idx)) r.data

let diff_trace r a b =
  let ia = Engine.node_unknown a and ib = Engine.node_unknown b in
  let v x i = if i < 0 then 0.0 else x.(i) in
  Array.map (fun x -> v x ia -. v x ib) r.data
