type config = {
  tstop : float;
  max_step : float;
  min_step : float;
  lte_control : bool;
  record_every : int;
}

let config ?max_step ?min_step ?(lte_control = true) ?(record_every = 1) ~tstop () =
  let max_step = match max_step with Some h -> h | None -> tstop /. 200.0 in
  let min_step = match min_step with Some h -> h | None -> max_step /. 1e6 in
  { tstop; max_step; min_step; lte_control; record_every }

type stats = {
  accepted_steps : int;
  rejected_steps : int;
  lte_rejections : int;
  newton_iters : int;
  device_loads : int;
  bypassed_loads : int;
  guided_seeds : int;
  cold_fallbacks : int;
}

type result = {
  times : float array;
  data : float array array;
  sim : Engine.sim;
  stats : stats;
}

let collect_breakpoints net ~tstop =
  let acc = ref [] in
  Netlist.iter_devices net (fun d ->
      match d with
      | Netlist.Vsource { wave; _ } | Netlist.Isource { wave; _ } ->
          acc := List.rev_append (Waveform.breakpoints wave ~tstop) !acc
      | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Diode _ | Netlist.Bjt _
      | Netlist.Vcvs _ | Netlist.Vccs _ -> ());
  Array.of_list (List.sort_uniq compare (tstop :: !acc))

(* Acceptance test for the predictor-based step control: the
   trapezoidal corrector must stay within a generous band around the
   linear prediction from the two previous points. *)
let lte_ok opts xpred x =
  let band = ref true in
  let reltol = opts.Engine.lte_reltol_factor *. opts.Engine.reltol
  and abstol = opts.Engine.lte_abstol in
  Array.iteri
    (fun i xp ->
      let tol = abstol +. (reltol *. Float.max (Float.abs xp) (Float.abs x.(i))) in
      if Float.abs (x.(i) -. xp) > tol then band := false)
    xpred;
  !band

(* Recorded snapshots live in one flat row-major matrix that doubles
   on demand — one blit per accepted step instead of an [Array.copy]
   cons onto a list; rows are only materialised once at the end. *)
type recorder = {
  rnunk : int;
  mutable rbuf : float array;
  mutable rcap : int;  (** rows the buffer can hold *)
  mutable rlen : int;  (** rows recorded *)
}

let recorder_create nunk =
  let cap = 256 in
  { rnunk = nunk; rbuf = Array.make (cap * nunk) 0.0; rcap = cap; rlen = 0 }

let recorder_push r x =
  if r.rlen = r.rcap then begin
    let cap = 2 * r.rcap in
    let buf = Array.make (cap * r.rnunk) 0.0 in
    Array.blit r.rbuf 0 buf 0 (r.rlen * r.rnunk);
    r.rbuf <- buf;
    r.rcap <- cap
  end;
  Array.blit x 0 r.rbuf (r.rlen * r.rnunk) r.rnunk;
  r.rlen <- r.rlen + 1

let recorder_rows r =
  Array.init r.rlen (fun k -> Array.sub r.rbuf (k * r.rnunk) r.rnunk)

(* Streaming observers: a probe set that samples selected unknowns at
   every *accepted* step — including the ones [record_every]
   discards — without materialising the dense [times]/[data] matrix.
   Each probe streams into its own growable [Fbuf]; the shared time
   axis is recorded once.  The disabled cost is the [observe] option
   match, gated in bench/perf.ml next to the telemetry hooks. *)
type probe = {
  pb_name : string;
  pb_index : int;  (* unknown index; -1 (ground) streams zeros *)
  pb_values : Cml_numerics.Fbuf.t;
}

type observers = {
  ob_times : Cml_numerics.Fbuf.t;
  ob_probes : probe array;
  ob_on_step : (float -> float array -> unit) option;
}

let observers ?on_step probes =
  let mk (name, index) =
    if index < -1 then
      invalid_arg (Printf.sprintf "Transient.observers: bad unknown index %d for %s" index name);
    { pb_name = name; pb_index = index; pb_values = Cml_numerics.Fbuf.create () }
  in
  {
    ob_times = Cml_numerics.Fbuf.create ();
    ob_probes = Array.of_list (List.map mk probes);
    ob_on_step = on_step;
  }

let observe obs t x =
  match obs with
  | None -> ()
  | Some o ->
      Cml_numerics.Fbuf.push o.ob_times t;
      Array.iter
        (fun p ->
          Cml_numerics.Fbuf.push p.pb_values
            (if p.pb_index < 0 then 0.0 else Array.unsafe_get x p.pb_index))
        o.ob_probes;
      (match o.ob_on_step with None -> () | Some f -> f t x)

let probe_names o = Array.to_list (Array.map (fun p -> p.pb_name) o.ob_probes)

let probe_length o = Cml_numerics.Fbuf.length o.ob_times

let probe_samples o name =
  match Array.find_opt (fun p -> p.pb_name = name) o.ob_probes with
  | None -> raise Not_found
  | Some p -> (Cml_numerics.Fbuf.to_array o.ob_times, Cml_numerics.Fbuf.to_array p.pb_values)

let probe_list o =
  let times = Cml_numerics.Fbuf.to_array o.ob_times in
  Array.to_list
    (Array.map (fun p -> (p.pb_name, times, Cml_numerics.Fbuf.to_array p.pb_values)) o.ob_probes)

(* Run-boundary telemetry: one registry publish and one span per
   transient run — nothing inside the step loop. *)
module M = Cml_telemetry.Metrics

let m_runs = M.counter "transient.runs"
let m_accepted = M.counter "transient.accepted_steps"
let m_rejected = M.counter "transient.rejected_steps"
let m_lte = M.counter "transient.lte_rejections"
let m_guided = M.counter "transient.guided_seeds"
let m_cold = M.counter "transient.cold_fallbacks"
let m_seconds = M.histogram "transient.run_seconds"

let publish_run ~stats0 ~t_begin sim stats span =
  M.incr m_runs;
  M.add m_accepted stats.accepted_steps;
  M.add m_rejected stats.rejected_steps;
  M.add m_lte stats.lte_rejections;
  M.add m_guided stats.guided_seeds;
  M.add m_cold stats.cold_fallbacks;
  M.observe m_seconds
    (Cml_telemetry.Clock.ns_to_s (Int64.sub (Cml_telemetry.Clock.now_ns ()) t_begin));
  Engine.publish_metrics ~since:stats0 sim;
  Cml_telemetry.Trace.finish ~cat:"sim" "transient" span

(* Index of the guide sample closest to [t] (guide times are sorted). *)
let nearest_index times t =
  let n = Array.length times in
  let lo = ref 0 and hi = ref (n - 1) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if times.(mid) <= t then lo := mid else hi := mid
  done;
  if Float.abs (times.(!hi) -. t) < Float.abs (times.(!lo) -. t) then !hi else !lo

let run ?x0 ?guide ?breakpoints ?observers sim net cfg =
  let opts = Engine.options sim in
  let nunk = Engine.unknown_count sim in
  let breakpoints =
    match breakpoints with
    | Some bps -> bps
    | None -> collect_breakpoints net ~tstop:cfg.tstop
  in
  (* a guide trajectory (typically the nominal run of a defect
     campaign) seeds each step's Newton solve with the nominal
     solution nearest in time; it must come from a layout-compatible
     sim, otherwise it is ignored *)
  let guide =
    match guide with
    | Some g when Array.length g.times > 0 && Array.length g.data > 0
                  && Array.length g.data.(0) = nunk ->
        Some (g.times, g.data)
    | Some _ | None -> None
  in
  let stats0 = Engine.solver_stats sim in
  let t_begin = Cml_telemetry.Clock.now_ns () in
  let span = Cml_telemetry.Trace.start () in
  let accepted_steps = ref 0
  and rejected_steps = ref 0
  and lte_rejections = ref 0
  and guided_seeds = ref 0
  and cold_fallbacks = ref 0 in
  let x_start =
    match x0 with
    | Some x -> x
    | None -> (
        match guide with
        | Some (_, gdata) -> (
            (* warm DC start from the guide's initial point, falling
               back to the full homotopy ladder if it diverges *)
            match Engine.newton sim ~time:0.0 ~integ:Engine.Dcop gdata.(0) with
            | Some (x, _) ->
                incr guided_seeds;
                x
            | None ->
                incr cold_fallbacks;
                Engine.dc_operating_point ~time:0.0 sim)
        | None -> Engine.dc_operating_point ~time:0.0 sim)
  in
  Engine.init_capacitor_states sim x_start;
  let times = Cml_numerics.Fbuf.create () in
  let rec_ = recorder_create nunk in
  let nsnap = ref 0 in
  let record t x =
    (* observers see every accepted step; [record_every] only thins
       the dense matrix below *)
    observe observers t x;
    if !nsnap mod cfg.record_every = 0 then begin
      Cml_numerics.Fbuf.push times t;
      recorder_push rec_ x
    end;
    incr nsnap
  in
  record 0.0 x_start;
  (* state for the predictor *)
  let x_n = ref x_start and x_nm1 = ref x_start in
  let xpred = Array.make nunk 0.0 in
  let h_prev = ref 0.0 in
  let t = ref 0.0 in
  let h = ref (cfg.max_step /. 10.0) in
  let bp_index = ref 0 in
  let force_be = ref true in
  (* skip any breakpoint at or before t = 0 *)
  while !bp_index < Array.length breakpoints && breakpoints.(!bp_index) <= 0.0 do
    incr bp_index
  done;
  while !t < cfg.tstop -. (1e-12 *. cfg.tstop) do
    let next_bp =
      if !bp_index < Array.length breakpoints then breakpoints.(!bp_index) else cfg.tstop
    in
    let hitting_bp = !t +. !h >= next_bp -. (0.01 *. !h) in
    let t_next = if hitting_bp then next_bp else !t +. !h in
    let h_step = t_next -. !t in
    let trap = (not !force_be) && !h_prev > 0.0 in
    let geq = if trap then 2.0 /. h_step else 1.0 /. h_step in
    let integ = Engine.Tran { geq; trap } in
    (* [attempt_guided] travels alongside the solution so [guided_seeds]
       only counts *accepted* guided steps: an LTE rejection retries
       the same instant with a smaller step, and counting each retry
       used to overstate how much work the guide saved *)
    let attempt, attempt_guided =
      match guide with
      | Some (gtimes, gdata) -> begin
          let seed = gdata.(nearest_index gtimes t_next) in
          match Engine.newton sim ~time:t_next ~integ seed with
          | Some _ as ok -> (ok, true)
          | None ->
              (* nominal trajectory too far from this variant at this
                 instant: fall back to the classic cold seed (the
                 previous accepted point) before giving up the step *)
              incr cold_fallbacks;
              (Engine.newton sim ~time:t_next ~integ !x_n, false)
        end
      | None -> (Engine.newton sim ~time:t_next ~integ !x_n, false)
    in
    let accepted =
      match attempt with
      | None -> None
      | Some (x, _iters) ->
          if cfg.lte_control && !h_prev > 0.0 && not !force_be then begin
            let scale = h_step /. !h_prev in
            let xn = !x_n and xnm1 = !x_nm1 in
            for i = 0 to nunk - 1 do
              xpred.(i) <- xn.(i) +. ((xn.(i) -. xnm1.(i)) *. scale)
            done;
            if lte_ok opts xpred x then Some x
            else begin
              incr lte_rejections;
              None
            end
          end
          else Some x
    in
    match accepted with
    | Some x ->
        if attempt_guided then incr guided_seeds;
        Engine.update_capacitor_states sim x ~h:h_step ~trap;
        x_nm1 := !x_n;
        x_n := x;
        h_prev := h_step;
        t := t_next;
        incr accepted_steps;
        record !t x;
        if hitting_bp then begin
          incr bp_index;
          force_be := true;
          (* restart cautiously after a slope discontinuity *)
          h := Float.max cfg.min_step (Float.min !h (cfg.max_step /. 10.0))
        end
        else begin
          force_be := false;
          h := Float.min cfg.max_step (!h *. 1.4)
        end
    | None ->
        incr rejected_steps;
        let h' = h_step /. 4.0 in
        if h' < cfg.min_step then
          raise
            (Engine.No_convergence
               (Printf.sprintf "transient step failed at t = %.6g s (h = %.3g)" !t h_step));
        h := h';
        force_be := true
  done;
  let stats1 = Engine.solver_stats sim in
  let stats =
    {
      accepted_steps = !accepted_steps;
      rejected_steps = !rejected_steps;
      lte_rejections = !lte_rejections;
      newton_iters = stats1.Engine.newton_iters - stats0.Engine.newton_iters;
      device_loads = stats1.Engine.device_loads - stats0.Engine.device_loads;
      bypassed_loads = stats1.Engine.bypassed_loads - stats0.Engine.bypassed_loads;
      guided_seeds = !guided_seeds;
      cold_fallbacks = !cold_fallbacks;
    }
  in
  publish_run ~stats0 ~t_begin sim stats span;
  { times = Cml_numerics.Fbuf.to_array times; data = recorder_rows rec_; sim; stats }

let node_trace r nd =
  let idx = Engine.node_unknown nd in
  Array.map (fun x -> if idx < 0 then 0.0 else x.(idx)) r.data

let diff_trace r a b =
  let ia = Engine.node_unknown a and ib = Engine.node_unknown b in
  let v x i = if i < 0 then 0.0 else x.(i) in
  Array.map (fun x -> v x ia -. v x ib) r.data
