type config = {
  tstop : float;
  max_step : float;
  min_step : float;
  lte_control : bool;
  record_every : int;
}

let config ?max_step ?min_step ?(lte_control = true) ?(record_every = 1) ~tstop () =
  let max_step = match max_step with Some h -> h | None -> tstop /. 200.0 in
  let min_step = match min_step with Some h -> h | None -> max_step /. 1e6 in
  { tstop; max_step; min_step; lte_control; record_every }

type result = {
  times : float array;
  data : float array array;
  sim : Engine.sim;
}

let collect_breakpoints net ~tstop =
  let acc = ref [] in
  Netlist.iter_devices net (fun d ->
      match d with
      | Netlist.Vsource { wave; _ } | Netlist.Isource { wave; _ } ->
          acc := List.rev_append (Waveform.breakpoints wave ~tstop) !acc
      | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Diode _ | Netlist.Bjt _
      | Netlist.Vcvs _ | Netlist.Vccs _ -> ());
  Array.of_list (List.sort_uniq compare (tstop :: !acc))

(* Acceptance test for the predictor-based step control: the
   trapezoidal corrector must stay within a generous band around the
   linear prediction from the two previous points. *)
let lte_ok opts xpred x =
  let band = ref true in
  let reltol = 30.0 *. opts.Engine.reltol and abstol = 1e-4 in
  Array.iteri
    (fun i xp ->
      let tol = abstol +. (reltol *. Float.max (Float.abs xp) (Float.abs x.(i))) in
      if Float.abs (x.(i) -. xp) > tol then band := false)
    xpred;
  !band

let run ?x0 sim net cfg =
  let opts = Engine.options sim in
  let breakpoints = collect_breakpoints net ~tstop:cfg.tstop in
  let x_start =
    match x0 with Some x -> x | None -> Engine.dc_operating_point ~time:0.0 sim
  in
  Engine.init_capacitor_states sim x_start;
  let times = Cml_numerics.Fbuf.create () in
  let snapshots = ref [] in
  let nsnap = ref 0 in
  let record t x =
    if !nsnap mod cfg.record_every = 0 then begin
      Cml_numerics.Fbuf.push times t;
      snapshots := Array.copy x :: !snapshots
    end;
    incr nsnap
  in
  record 0.0 x_start;
  (* state for the predictor *)
  let x_n = ref x_start and x_nm1 = ref x_start in
  let h_prev = ref 0.0 in
  let t = ref 0.0 in
  let h = ref (cfg.max_step /. 10.0) in
  let bp_index = ref 0 in
  let force_be = ref true in
  (* skip any breakpoint at or before t = 0 *)
  while !bp_index < Array.length breakpoints && breakpoints.(!bp_index) <= 0.0 do
    incr bp_index
  done;
  while !t < cfg.tstop -. (1e-12 *. cfg.tstop) do
    let next_bp =
      if !bp_index < Array.length breakpoints then breakpoints.(!bp_index) else cfg.tstop
    in
    let hitting_bp = !t +. !h >= next_bp -. (0.01 *. !h) in
    let t_next = if hitting_bp then next_bp else !t +. !h in
    let h_step = t_next -. !t in
    let trap = (not !force_be) && !h_prev > 0.0 in
    let geq = if trap then 2.0 /. h_step else 1.0 /. h_step in
    let attempt = Engine.newton sim ~time:t_next ~integ:(Engine.Tran { geq; trap }) !x_n in
    let accepted =
      match attempt with
      | None -> None
      | Some (x, _iters) ->
          if cfg.lte_control && !h_prev > 0.0 && not !force_be then begin
            let scale = h_step /. !h_prev in
            let xpred =
              Array.mapi (fun i v -> v +. ((v -. !x_nm1.(i)) *. scale)) !x_n
            in
            if lte_ok opts xpred x then Some x else None
          end
          else Some x
    in
    match accepted with
    | Some x ->
        Engine.update_capacitor_states sim x ~h:h_step ~trap;
        x_nm1 := !x_n;
        x_n := x;
        h_prev := h_step;
        t := t_next;
        record !t x;
        if hitting_bp then begin
          incr bp_index;
          force_be := true;
          (* restart cautiously after a slope discontinuity *)
          h := Float.max cfg.min_step (Float.min !h (cfg.max_step /. 10.0))
        end
        else begin
          force_be := false;
          h := Float.min cfg.max_step (!h *. 1.4)
        end
    | None ->
        let h' = h_step /. 4.0 in
        if h' < cfg.min_step then
          raise
            (Engine.No_convergence
               (Printf.sprintf "transient step failed at t = %.6g s (h = %.3g)" !t h_step));
        h := h';
        force_be := true
  done;
  let snaps = Array.of_list (List.rev !snapshots) in
  { times = Cml_numerics.Fbuf.to_array times; data = snaps; sim }

let node_trace r nd =
  let idx = Engine.node_unknown nd in
  Array.map (fun x -> if idx < 0 then 0.0 else x.(idx)) r.data

let diff_trace r a b =
  let ia = Engine.node_unknown a and ib = Engine.node_unknown b in
  let v x i = if i < 0 then 0.0 else x.(i) in
  Array.map (fun x -> v x ia -. v x ib) r.data
