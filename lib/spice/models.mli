(** Device model parameters and the primitive pn-junction maths shared
    by the diode and BJT evaluators. *)

val boltzmann_vt : float
(** Thermal voltage kT/q at 300 K (about 25.85 mV). *)

type diode = {
  d_is : float;  (** saturation current (A) *)
  d_n : float;  (** emission coefficient *)
  d_cj : float;  (** junction capacitance (F), treated as constant *)
}

val default_diode : diode

type bjt = {
  q_is : float;  (** transport saturation current (A) *)
  q_bf : float;  (** forward beta *)
  q_br : float;  (** reverse beta *)
  q_cje : float;  (** base-emitter capacitance (F) *)
  q_cjc : float;  (** base-collector capacitance (F) *)
}

val default_bjt : bjt

val limexp : float -> float
(** [limexp x] is [exp x] for [x <= 80] and a linear continuation
    above, so device evaluation never overflows. *)

val junction_current : is:float -> nvt:float -> float -> float * float
(** [junction_current ~is ~nvt v] is the pn-junction current and its
    conductance [(i, g)] at bias [v] (no gmin included). *)

val vcrit : is:float -> nvt:float -> float
(** Critical voltage for junction limiting (SPICE definition). *)

val pnjlim : vnew:float -> vold:float -> nvt:float -> vcrit:float -> float
(** SPICE junction-voltage limiting: clamp the Newton update of a
    junction voltage to avoid overflow-driven divergence. *)
