(** Optional per-simulation solver introspection.

    A recorder captures, per attached {!Engine.sim}: per-Newton-
    iteration delta norms with worst-unknown and worst-junction-device
    attribution, per-rejection LTE blame (which node forced the step
    down, and the rejection cascade depth), the step-size controller's
    dt timeline with cause tags, and the reasons for every LU
    stability fallback.  Batched lanes each own a sim, so attaching
    one recorder per lane tags everything per lane.

    Contract (the same as {!Cml_telemetry.Progress.note_step}): every
    [note_*] entry point takes a [t option] and costs one call and one
    match when the option is [None] — all scanning work lives inside
    the [Some] arm.  A recorder only reads solver state; attaching one
    never changes a bit of the simulated waveform (qcheck-enforced). *)

type t

val create : ?label:string -> unit -> t
(** Fresh empty recorder; [label] names the lane/variant it is
    attached to (post-mortem display only). *)

val label : t -> string

(** {2 dt-timeline cause tags} *)

val cause_accept : int

val cause_breakpoint : int
(** accepted, cautious restart at a breakpoint *)

val cause_guide : int
(** accepted only after the guide-trajectory rescue *)

val cause_lte : int
(** rejected: local truncation error *)

val cause_newton_fail : int
(** rejected: Newton did not converge *)

val cause_name : int -> string

(** {2 LU fallback reason codes} *)

val lu_small_pivot : int
val lu_unstable_pivot : int
val lu_pattern : int

(** {2 Hot-path notes} — one match when the recorder is [None]. *)

val note_newton :
  t option ->
  time:float ->
  iter:int ->
  x:float array ->
  xn:float array ->
  junction_error:float ->
  junction_worst:int ->
  unit
(** Record one Newton iteration that solved a system: scans [x]/[xn]
    for the worst delta (inside the [Some] arm only). *)

val note_newton_fail : t option -> time:float -> unit
(** Record a Newton solve that gave up; blames the worst unknown of
    its final recorded iteration. *)

val note_lte :
  t option ->
  time:float ->
  h:float ->
  xpred:float array ->
  x:float array ->
  reltol:float ->
  abstol:float ->
  cascade:int ->
  unit
(** Record an LTE rejection: recomputes per-node ratios purely for
    attribution (the accept/reject decision is the caller's). *)

val note_dt : t option -> t:float -> h:float -> cause:int -> unit
val note_lu_fallback : t option -> reason:int -> unit

(** {2 Analysis accessors} (post-mortem time) *)

type newton_row = {
  nr_time : float;
  nr_iter : int;
  nr_delta : float;  (** max_i |xn_i - x_i| for this iteration *)
  nr_worst : int;  (** unknown index attaining the max, -1 if none *)
  nr_jerr : float;  (** junction-limiting error after the device load *)
  nr_jworst : int;  (** device index of the worst junction, -1 *)
}

val newton_rows : t -> newton_row list

type fail_row = { fr_time : float; fr_worst : int; fr_delta : float }

val fail_rows : t -> fail_row list

type lte_row = {
  lr_time : float;
  lr_h : float;
  lr_worst : int;
  lr_ratio : float;  (** |x - xpred| / tol at the worst node *)
  lr_cascade : int;  (** consecutive rejections ending at this one *)
}

val lte_rows : t -> lte_row list

type dt_row = { dr_t : float; dr_h : float; dr_cause : int }

val dt_rows : t -> dt_row list

val lu_fallbacks : t -> int * int * int
(** [(small_pivot, unstable_pivot, pattern_mismatch)] counts. *)

val newton_failures : t -> int
