(** DC sweeps with continuation (each point warm-starts from the
    previous solution), as needed to trace the hysteresis of the
    variant-3 comparator (paper Fig. 12). *)

val vsource_sweep_full :
  ?options:Engine.options ->
  ?warm_start:bool ->
  Netlist.t ->
  source:string ->
  values:float array ->
  Engine.sim * float array array
(** [vsource_sweep_full net ~source ~values] solves the DC operating
    point for each value of the named voltage source, in order, each
    point warm-started from the previous one (continuation) —
    sweeping up then down therefore traces both hysteresis branches.
    Returns the compiled sim (for index lookups) and the solution
    vector at every point.  The input netlist is not modified (the
    sweep runs on a copy).

    [warm_start:false] cold-starts every point from the homotopy
    ladder instead: no continuation, so a hysteresis loop collapses to
    whichever state each point's homotopy lands in — useful to
    distinguish genuine bistability from sweep memory.
    @raise Not_found if [source] is not a voltage source.
    @raise Engine.No_convergence if a point fails to converge. *)

val vsource_sweep :
  ?options:Engine.options ->
  ?warm_start:bool ->
  Netlist.t ->
  source:string ->
  values:float array ->
  float array array
(** {!vsource_sweep_full} without the sim. *)
